// Package trace defines Pilgrim's on-disk trace format: one file for
// the whole job, holding the globally merged call signature table, the
// set of unique per-rank grammars with a (grammar-compressed) rank →
// grammar mapping, and optionally the per-rank timing grammars of the
// non-aggregated mode.
//
// Internally everything is arrays of integers (as in the paper), so
// identity checks during merging are flat comparisons, and the file is
// a straightforward binary dump with varint framing.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// Timing modes.
const (
	TimingAggregated = 0 // mean duration per CST entry only (default)
	TimingLossy      = 1 // per-call duration+interval grammars, error < base-1
)

const magic = "PILGRIM1"

// File is a complete compressed trace.
type File struct {
	NumRanks   int
	TimingMode uint8
	TimingBase float64

	CST *cst.Table

	// Grammars holds the unique per-rank grammars after the identity
	// dedup of §3.5.2; RankMap is a grammar over unique-grammar
	// indices whose expansion has one terminal per rank.
	Grammars []sequitur.Serialized
	RankMap  sequitur.Serialized

	// Packed, if non-nil, is the final Sequitur pass over the unique
	// grammars (§3.5.2): the serialized form stores it instead of
	// Grammars when smaller. Readers repopulate Grammars from it.
	Packed sequitur.Serialized

	// Lossy timing (optional): unique timing grammars plus per-rank
	// indices. PackedDur/PackedInt, when non-nil, are final Sequitur
	// passes over the timing grammars, stored instead when smaller.
	DurGrammars []sequitur.Serialized
	DurIndex    []int32
	IntGrammars []sequitur.Serialized
	IntIndex    []int32
	PackedDur   sequitur.Serialized
	PackedInt   sequitur.Serialized

	// Salvage, if non-nil, marks this as a partial trace recovered from
	// a failed run: it names the failure and the ranks whose streams
	// are truncated. Written as a trailing optional section, so normal
	// traces are byte-identical to the pre-salvage format and old
	// readers simply ignore the tail.
	Salvage *SalvageInfo
}

// SalvageInfo tags a partial trace produced by SalvageFinalize.
type SalvageInfo struct {
	// FailedRanks lists the ranks that crashed or aborted; their call
	// streams end at the failure point. Ranks not listed survived to
	// the halt and their streams are complete up to it.
	FailedRanks []int32
	// Reason is a one-line description of the failure that halted the
	// run (crash, abort, or deadlock diagnosis).
	Reason string
	// Calls holds every rank's recorded call count at salvage time.
	Calls []int64
}

// GrammarIndex expands the rank map and returns, per rank, the index
// of its grammar in Grammars.
func (f *File) GrammarIndex() ([]int32, error) {
	if n := f.RankMap.InputLen(); n != int64(f.NumRanks) {
		return nil, fmt.Errorf("trace: rank map expands to %d entries for %d ranks", n, f.NumRanks)
	}
	idx := f.RankMap.Expand(int64(f.NumRanks) + 1)
	if len(idx) != f.NumRanks {
		return nil, fmt.Errorf("trace: rank map expands to %d entries for %d ranks", len(idx), f.NumRanks)
	}
	for _, i := range idx {
		if int(i) >= len(f.Grammars) {
			return nil, fmt.Errorf("trace: rank map references grammar %d of %d", i, len(f.Grammars))
		}
	}
	return idx, nil
}

// maxCallsPerRank bounds in-memory expansion of one rank's call
// stream (a corrupted trace could otherwise claim astronomically large
// run-length exponents and exhaust memory).
const maxCallsPerRank = 1 << 28

// Terms expands rank r's grammar into its terminal sequence.
func (f *File) Terms(rank int) ([]int32, error) {
	if rank < 0 || rank >= f.NumRanks {
		return nil, fmt.Errorf("trace: rank %d out of range", rank)
	}
	idx, err := f.GrammarIndex()
	if err != nil {
		return nil, err
	}
	g := f.Grammars[idx[rank]]
	if n := g.InputLen(); n > maxCallsPerRank {
		return nil, fmt.Errorf("trace: rank %d stream of %d calls exceeds the in-memory cap", rank, n)
	}
	return g.Expand(maxCallsPerRank), nil
}

// --- serialization -----------------------------------------------------------

func writeBytes(w *bufio.Writer, b []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeGrammar(w *bufio.Writer, g sequitur.Serialized) error {
	buf := make([]byte, 0, len(g)*3)
	buf = binary.AppendUvarint(buf, uint64(len(g)))
	for _, v := range g {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return writeBytes(w, buf)
}

func writeGrammarSet(w *bufio.Writer, gs []sequitur.Serialized) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(gs)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	for _, g := range gs {
		if err := writeGrammar(w, g); err != nil {
			return err
		}
	}
	return nil
}

func writeIndex(w *bufio.Writer, idx []int32) error {
	buf := make([]byte, 0, len(idx)*2+8)
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	for _, v := range idx {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return writeBytes(w, buf)
}

// WriteTo serializes the trace.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(magic); err != nil {
		return cw.n, err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(f.NumRanks))
	hdr = append(hdr, f.TimingMode)
	hdr = binary.AppendUvarint(hdr, uint64(math.Float64bits(f.TimingBase)))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}
	if err := writeBytes(bw, f.CST.Serialize()); err != nil {
		return cw.n, err
	}
	// Grammars section: packed (final Sequitur pass) when beneficial.
	rawInts := 0
	for _, g := range f.Grammars {
		rawInts += len(g)
	}
	if f.Packed != nil && len(f.Packed) < rawInts {
		if err := bw.WriteByte(1); err != nil {
			return cw.n, err
		}
		if err := writeGrammar(bw, f.Packed); err != nil {
			return cw.n, err
		}
	} else {
		if err := bw.WriteByte(0); err != nil {
			return cw.n, err
		}
		if err := writeGrammarSet(bw, f.Grammars); err != nil {
			return cw.n, err
		}
	}
	if err := writeGrammar(bw, f.RankMap); err != nil {
		return cw.n, err
	}
	if err := writePackable(bw, f.DurGrammars, f.PackedDur); err != nil {
		return cw.n, err
	}
	if err := writeIndex(bw, f.DurIndex); err != nil {
		return cw.n, err
	}
	if err := writePackable(bw, f.IntGrammars, f.PackedInt); err != nil {
		return cw.n, err
	}
	if err := writeIndex(bw, f.IntIndex); err != nil {
		return cw.n, err
	}
	if f.Salvage != nil {
		if err := bw.WriteByte(1); err != nil {
			return cw.n, err
		}
		if err := writeBytes(bw, f.Salvage.serialize()); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func (s *SalvageInfo) serialize() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(s.FailedRanks)))
	for _, r := range s.FailedRanks {
		buf = binary.AppendVarint(buf, int64(r))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Reason)))
	buf = append(buf, s.Reason...)
	buf = binary.AppendUvarint(buf, uint64(len(s.Calls)))
	for _, c := range s.Calls {
		buf = binary.AppendVarint(buf, c)
	}
	return buf
}

func deserializeSalvage(data []byte) (*SalvageInfo, error) {
	rd := bytes.NewReader(data)
	s := &SalvageInfo{}
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("trace: truncated salvage rank count")
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("trace: salvage claims %d failed ranks in %d bytes", n, len(data))
	}
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated salvage rank %d", i)
		}
		s.FailedRanks = append(s.FailedRanks, int32(v))
	}
	l, err := binary.ReadUvarint(rd)
	if err != nil || l > uint64(rd.Len()) {
		return nil, fmt.Errorf("trace: truncated salvage reason")
	}
	reason := make([]byte, l)
	if _, err := io.ReadFull(rd, reason); err != nil {
		return nil, fmt.Errorf("trace: truncated salvage reason")
	}
	s.Reason = string(reason)
	n, err = binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("trace: truncated salvage call counts")
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("trace: salvage claims %d call counts in %d bytes", n, len(data))
	}
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated salvage call count %d", i)
		}
		s.Calls = append(s.Calls, v)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("trace: %d trailing salvage bytes", rd.Len())
	}
	return s, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writePackable writes a grammar set either raw or as its pack,
// whichever is smaller, behind a selector byte.
func writePackable(w *bufio.Writer, gs []sequitur.Serialized, pack sequitur.Serialized) error {
	rawInts := 0
	for _, g := range gs {
		rawInts += len(g)
	}
	if pack != nil && len(pack) < rawInts {
		if err := w.WriteByte(1); err != nil {
			return err
		}
		return writeGrammar(w, pack)
	}
	if err := w.WriteByte(0); err != nil {
		return err
	}
	return writeGrammarSet(w, gs)
}

// readPackable mirrors writePackable. max bounds the grammar count of
// an unpacked set (see grammarSet).
func (br byteReader) readPackable(max int) ([]sequitur.Serialized, sequitur.Serialized, error) {
	flag, err := br.r.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	if flag == 1 {
		pack, err := br.grammar()
		if err != nil {
			return nil, nil, err
		}
		gs, err := unpackBounded(pack, max)
		if err != nil {
			return nil, nil, err
		}
		return gs, pack, nil
	}
	gs, err := br.grammarSet(max)
	return gs, nil, err
}

// maxPackExpansion bounds the expanded symbol count of a grammar pack
// (a structurally valid pack can still encode an exponential
// expansion — run-length exponents nest multiplicatively).
const maxPackExpansion = 1 << 28

// unpackBounded is sequitur.Unpack with the expansion and set-size
// caps every untrusted read path needs.
func unpackBounded(pack sequitur.Serialized, max int) ([]sequitur.Serialized, error) {
	if n := pack.InputLen(); n > maxPackExpansion {
		return nil, fmt.Errorf("trace: grammar pack expands to %d symbols", n)
	}
	gs, err := sequitur.Unpack(pack)
	if err != nil {
		return nil, err
	}
	if len(gs) > max {
		return nil, fmt.Errorf("trace: packed grammar set of %d exceeds %d ranks", len(gs), max)
	}
	return gs, nil
}

// SizeBytes returns the serialized size of the trace — the "trace file
// size" every figure reports.
func (f *File) SizeBytes() int {
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		return -1
	}
	return int(n)
}

// SectionSizes reports the main sections' serialized sizes (CST,
// call grammars incl. rank map, timing grammars), for the overhead
// and Figure 10 style breakdowns.
func (f *File) SectionSizes() (cstB, cfgB, durB, intB int) {
	cstB = len(f.CST.Serialize())
	cfgB = len(f.RankMap) * 4
	rawInts := 0
	for _, g := range f.Grammars {
		rawInts += len(g)
	}
	if f.Packed != nil && len(f.Packed) < rawInts {
		cfgB += len(f.Packed) * 4
	} else {
		cfgB += rawInts * 4
	}
	durB = packableInts(f.DurGrammars, f.PackedDur) * 4
	intB = packableInts(f.IntGrammars, f.PackedInt) * 4
	return
}

// UncompressedEstimate returns the approximate size of the raw
// (uncompressed) signature stream this trace represents: every call
// replayed as its full signature bytes, summed over all ranks. The
// global CST carries per-entry call counts, so the estimate survives
// compression and is available to any reader of the file.
func (f *File) UncompressedEstimate() int64 {
	if f.CST == nil {
		return 0
	}
	return f.CST.RawBytes()
}

func packableInts(gs []sequitur.Serialized, pack sequitur.Serialized) int {
	raw := 0
	for _, g := range gs {
		raw += len(g)
	}
	if pack != nil && len(pack) < raw {
		return len(pack)
	}
	return raw
}

// --- reading -----------------------------------------------------------------

type byteReader struct {
	r *bufio.Reader
}

func (br byteReader) bytes() ([]byte, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, err
	}
	// Never trust a length from the wire: read in bounded chunks so a
	// corrupt huge length fails at EOF instead of exhausting memory.
	const chunk = 1 << 20
	var b []byte
	for remaining := n; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(b)
		b = append(b, make([]byte, step)...)
		if _, err := io.ReadFull(br.r, b[start:]); err != nil {
			return nil, err
		}
		remaining -= step
	}
	return b, nil
}

func (br byteReader) grammar() (sequitur.Serialized, error) {
	b, err := br.bytes()
	if err != nil {
		return nil, err
	}
	rd := bytes.NewReader(b)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) { // every int costs at least one byte
		return nil, fmt.Errorf("trace: grammar claims %d ints in %d bytes", n, len(b))
	}
	g := make(sequitur.Serialized, n)
	for i := range g {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return nil, err
		}
		g[i] = int32(v)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("trace: trailing grammar bytes")
	}
	if len(g) > 0 {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (br byteReader) grammarSet(max int) ([]sequitur.Serialized, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, err
	}
	// Grammars are deduped per rank, so a set can never exceed the rank
	// count; without the cap a corrupt count allocates gigabytes of
	// slice headers before the first grammar parse can fail.
	if n > uint64(max) {
		return nil, fmt.Errorf("trace: grammar set of %d exceeds %d ranks", n, max)
	}
	gs := make([]sequitur.Serialized, n)
	for i := range gs {
		if gs[i], err = br.grammar(); err != nil {
			return nil, err
		}
	}
	return gs, nil
}

func (br byteReader) index() ([]int32, error) {
	b, err := br.bytes()
	if err != nil {
		return nil, err
	}
	rd := bytes.NewReader(b)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("trace: index claims %d entries in %d bytes", n, len(b))
	}
	idx := make([]int32, n)
	for i := range idx {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return nil, err
		}
		idx[i] = int32(v)
	}
	return idx, nil
}

// Read parses a trace file.
func Read(r io.Reader) (*File, error) {
	br := byteReader{r: bufio.NewReader(r)}
	m := make([]byte, len(magic))
	if _, err := io.ReadFull(br.r, m); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if string(m) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	f := &File{}
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, err
	}
	const maxRanks = 1 << 24
	if n > maxRanks {
		return nil, fmt.Errorf("trace: implausible rank count %d", n)
	}
	f.NumRanks = int(n)
	mode, err := br.r.ReadByte()
	if err != nil {
		return nil, err
	}
	f.TimingMode = mode
	baseBits, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, err
	}
	f.TimingBase = math.Float64frombits(baseBits)
	cstBytes, err := br.bytes()
	if err != nil {
		return nil, err
	}
	if f.CST, err = cst.Deserialize(cstBytes); err != nil {
		return nil, err
	}
	packedFlag, err := br.r.ReadByte()
	if err != nil {
		return nil, err
	}
	if packedFlag == 1 {
		if f.Packed, err = br.grammar(); err != nil {
			return nil, err
		}
		if f.Grammars, err = unpackBounded(f.Packed, f.NumRanks); err != nil {
			return nil, err
		}
	} else {
		if f.Grammars, err = br.grammarSet(f.NumRanks); err != nil {
			return nil, err
		}
	}
	if f.RankMap, err = br.grammar(); err != nil {
		return nil, err
	}
	if f.DurGrammars, f.PackedDur, err = br.readPackable(f.NumRanks); err != nil {
		return nil, err
	}
	if f.DurIndex, err = br.index(); err != nil {
		return nil, err
	}
	if f.IntGrammars, f.PackedInt, err = br.readPackable(f.NumRanks); err != nil {
		return nil, err
	}
	if f.IntIndex, err = br.index(); err != nil {
		return nil, err
	}
	// Optional trailing salvage section: absent (EOF here) in normal
	// traces and in files from older writers.
	flag, err := br.r.ReadByte()
	if err == io.EOF {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if flag != 1 {
		return nil, fmt.Errorf("trace: bad trailing section flag %d", flag)
	}
	sb, err := br.bytes()
	if err != nil {
		return nil, err
	}
	if f.Salvage, err = deserializeSalvage(sb); err != nil {
		return nil, err
	}
	return f, nil
}

// Save writes the trace to a file path.
func (f *File) Save(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if _, err := f.WriteTo(fh); err != nil {
		return err
	}
	return fh.Close()
}

// Load reads a trace from a file path.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Read(fh)
}
