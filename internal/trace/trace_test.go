package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

func mkGrammar(seq []int32) sequitur.Serialized {
	g := sequitur.New()
	for _, v := range seq {
		g.Append(v)
	}
	return sequitur.Serialized(g.Serialize())
}

func mkFile(t *testing.T) *File {
	t.Helper()
	table := cst.New()
	table.Add([]byte("sigA"), 100)
	table.Add([]byte("sigB"), 200)
	table.Add([]byte("sigC"), 300)
	g0 := mkGrammar([]int32{0, 1, 0, 1, 2})
	g1 := mkGrammar([]int32{2, 2, 2})
	rankMap := mkGrammar([]int32{0, 1, 0, 0})
	return &File{
		NumRanks: 4, TimingMode: TimingAggregated, TimingBase: 1.2,
		CST: table, Grammars: []sequitur.Serialized{g0, g1}, RankMap: rankMap,
	}
}

func TestRoundtrip(t *testing.T) {
	f := mkFile(t)
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != buf.Len() {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRanks != 4 || got.CST.Len() != 3 || len(got.Grammars) != 2 {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for r := 0; r < 4; r++ {
		a, err1 := f.Terms(r)
		b, err2 := got.Terms(r)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("rank %d terms differ", r)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d term %d differs", r, i)
			}
		}
	}
}

func TestPackedRoundtrip(t *testing.T) {
	f := mkFile(t)
	// Force a pack and make it profitable by duplicating rules.
	f.Packed = sequitur.Pack(f.Grammars)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Grammars) != len(f.Grammars) {
		t.Fatalf("packed read produced %d grammars", len(got.Grammars))
	}
	for i := range f.Grammars {
		a := f.Grammars[i].Expand(0)
		b := got.Grammars[i].Expand(0)
		if len(a) != len(b) {
			t.Fatalf("grammar %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("grammar %d differs at %d", i, j)
			}
		}
	}
}

func TestTermsErrors(t *testing.T) {
	f := mkFile(t)
	if _, err := f.Terms(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := f.Terms(4); err == nil {
		t.Error("out-of-range rank accepted")
	}
	// Rank map referencing a missing grammar.
	f.RankMap = mkGrammar([]int32{0, 1, 2, 0}) // grammar 2 does not exist
	if _, err := f.Terms(0); err == nil {
		t.Error("dangling grammar reference accepted")
	}
	// Rank map of the wrong length.
	f2 := mkFile(t)
	f2.RankMap = mkGrammar([]int32{0, 1})
	if _, err := f2.Terms(0); err == nil {
		t.Error("short rank map accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("NOTAPILG rest"))); err == nil {
		t.Error("bad magic accepted")
	}
	f := mkFile(t)
	var buf bytes.Buffer
	f.WriteTo(&buf)
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	f := mkFile(t)
	path := t.TempDir() + "/x.pilgrim"
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRanks != f.NumRanks {
		t.Fatal("load mismatch")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSizeBytesMatchesWrite(t *testing.T) {
	f := mkFile(t)
	var buf bytes.Buffer
	f.WriteTo(&buf)
	if f.SizeBytes() != buf.Len() {
		t.Fatalf("SizeBytes %d != written %d", f.SizeBytes(), buf.Len())
	}
}

func TestSectionSizesConsistent(t *testing.T) {
	f := mkFile(t)
	cstB, cfgB, durB, intB := f.SectionSizes()
	if cstB <= 0 || cfgB <= 0 {
		t.Fatalf("sections: %d %d", cstB, cfgB)
	}
	if durB != 0 || intB != 0 {
		t.Fatalf("unexpected timing sections: %d %d", durB, intB)
	}
}

func TestReadNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Random garbage with the right magic prefix, to reach the parsers.
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(400)
		data := make([]byte, n+8)
		copy(data, "PILGRIM1")
		rng.Read(data[8:])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on random input: %v", r)
				}
			}()
			Read(bytes.NewReader(data))
		}()
	}
}

func TestReadNeverPanicsOnTruncations(t *testing.T) {
	f := mkFile(t)
	f.Packed = sequitur.Pack(f.Grammars)
	var buf bytes.Buffer
	f.WriteTo(&buf)
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked at truncation %d: %v", cut, r)
				}
			}()
			Read(bytes.NewReader(data[:cut]))
		}()
	}
	// Single-byte corruptions of a valid file.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on corruption: %v", r)
				}
			}()
			if got, err := Read(bytes.NewReader(mut)); err == nil && got != nil {
				// Accepted: the decode surface must still be safe.
				for r := 0; r < got.NumRanks && r < 4; r++ {
					got.Terms(r)
				}
			}
		}()
	}
}
