package trace

import (
	"bytes"
	"testing"
)

func TestSalvageRoundtrip(t *testing.T) {
	f := mkFile(t)
	f.Salvage = &SalvageInfo{
		FailedRanks: []int32{1, 3},
		Reason:      "mpi: rank 1 crashed at MPI call 10 (injected fault)",
		Calls:       []int64{100, 9, 100, 42},
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Salvage
	if s == nil {
		t.Fatal("salvage section lost on roundtrip")
	}
	if len(s.FailedRanks) != 2 || s.FailedRanks[0] != 1 || s.FailedRanks[1] != 3 {
		t.Errorf("failed ranks = %v, want [1 3]", s.FailedRanks)
	}
	if s.Reason != f.Salvage.Reason {
		t.Errorf("reason = %q, want %q", s.Reason, f.Salvage.Reason)
	}
	if len(s.Calls) != 4 || s.Calls[1] != 9 || s.Calls[3] != 42 {
		t.Errorf("calls = %v, want [100 9 100 42]", s.Calls)
	}
}

func TestSalvageAbsentKeepsOldFormat(t *testing.T) {
	// A normal trace must serialize byte-identically with or without
	// the salvage-aware writer: no trailing section, readable as before.
	f := mkFile(t)
	var withNil bytes.Buffer
	if _, err := f.WriteTo(&withNil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(withNil.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Salvage != nil {
		t.Errorf("phantom salvage info on a clean trace: %+v", got.Salvage)
	}

	// An old-format stream is exactly the salvage-free serialization;
	// appending the section must grow the stream, not change its prefix.
	f.Salvage = &SalvageInfo{FailedRanks: []int32{0}, Reason: "x", Calls: []int64{1, 1, 1, 1}}
	var withInfo bytes.Buffer
	if _, err := f.WriteTo(&withInfo); err != nil {
		t.Fatal(err)
	}
	if withInfo.Len() <= withNil.Len() {
		t.Fatalf("salvage section did not grow the stream (%d vs %d)", withInfo.Len(), withNil.Len())
	}
	if !bytes.Equal(withInfo.Bytes()[:withNil.Len()], withNil.Bytes()) {
		t.Error("salvage section changed the preceding byte layout")
	}
}

func TestSalvageSizeBytesMatchesWrite(t *testing.T) {
	f := mkFile(t)
	f.Salvage = &SalvageInfo{FailedRanks: []int32{2}, Reason: "crash", Calls: []int64{5, 5, 5, 0}}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if f.SizeBytes() != buf.Len() {
		t.Fatalf("SizeBytes()=%d, wrote %d", f.SizeBytes(), buf.Len())
	}
}
