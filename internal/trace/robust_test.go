package trace

import (
	"bytes"
	"math"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// Robustness of the reader against hostile or damaged inputs: Read
// (and the decode entry points behind it) must return an error on any
// corruption, never panic — a tool for salvaging traces from crashed
// runs will routinely be pointed at half-written files.

// richFile builds a trace exercising every optional section: packed
// grammar sets, lossy timing grammars with per-rank indices, and a
// trailing salvage section.
func richFile(tb testing.TB) *File {
	tb.Helper()
	table := cst.New()
	table.Add([]byte("sigA"), 100)
	table.Add([]byte("sigB"), 200)
	table.Add([]byte("sigC"), 300)
	g0 := mkGrammar([]int32{0, 1, 0, 1, 0, 1, 2, 2})
	g1 := mkGrammar([]int32{2, 2, 2, 0, 1, 0, 1})
	dur := mkGrammar([]int32{5, 5, 5, 5, 7, 7})
	intv := mkGrammar([]int32{3, 3, 3, 3, 3, 9})
	f := &File{
		NumRanks:   4,
		TimingMode: TimingLossy,
		TimingBase: 1.01,
		CST:        table,
		Grammars:   []sequitur.Serialized{g0, g1},
		RankMap:    mkGrammar([]int32{0, 1, 0, 0}),

		DurGrammars: []sequitur.Serialized{dur},
		DurIndex:    []int32{0, 0, 0, 0},
		IntGrammars: []sequitur.Serialized{intv},
		IntIndex:    []int32{0, 0, 0, 0},

		Salvage: &SalvageInfo{
			FailedRanks: []int32{2},
			Reason:      "injected crash",
			Calls:       []int64{8, 8, 3, 8},
		},
	}
	f.Packed = sequitur.Pack(f.Grammars)
	f.PackedDur = sequitur.Pack(f.DurGrammars)
	f.PackedInt = sequitur.Pack(f.IntGrammars)
	return f
}

func serialize(tb testing.TB, f *File) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// readAndProbe runs Read and, when the input is accepted, drives the
// decode surface that a reader of the file would hit next. Every path
// must end in a value or an error — never a panic.
func readAndProbe(data []byte) {
	f, err := Read(bytes.NewReader(data))
	if err != nil || f == nil {
		return
	}
	f.GrammarIndex()
	for r := 0; r < f.NumRanks && r < 8; r++ {
		f.Terms(r)
	}
	f.SectionSizes()
	f.UncompressedEstimate()
}

func TestReadExhaustiveTruncations(t *testing.T) {
	full := richFile(t)
	data := serialize(t, full)
	// The salvage section is an optional tail: cutting exactly where it
	// starts leaves a valid (salvage-less) file. Every other truncation
	// must be rejected.
	noSalvage := richFile(t)
	noSalvage.Salvage = nil
	boundary := len(serialize(t, noSalvage))
	for cut := 0; cut <= len(data); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d/%d: %v", cut, len(data), r)
				}
			}()
			readAndProbe(data[:cut])
		}()
		if cut < len(data) && cut != boundary {
			if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("truncation at %d/%d accepted", cut, len(data))
			}
		}
	}
}

func TestReadExhaustiveBitFlips(t *testing.T) {
	data := serialize(t, richFile(t))
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at byte %d bit %d: %v", pos, bit, r)
					}
				}()
				readAndProbe(mut)
			}()
		}
	}
}

// TestTermsRejectsOverflowingGrammar: a hand-crafted grammar whose
// expansion (2^40 repetitions of a rule that itself expands 2^40
// terminals) overflows int64. It passes structural validation, so it
// can arrive via a corrupt-but-parseable file; the expansion length
// must saturate rather than wrap negative under the size cap.
func TestTermsRejectsOverflowingGrammar(t *testing.T) {
	lo, hi := int32(0), int32(512) // exponent 2^40 split at bit 31
	huge := sequitur.Serialized{
		2,             // two rules
		1, -2, lo, hi, // rule 0: rule-1 ref, 2^40 times
		1, 0, lo, hi, // rule 1: terminal 0, 2^40 times
	}
	if err := huge.Validate(); err != nil {
		t.Fatalf("overflow grammar should be structurally valid: %v", err)
	}
	if n := huge.InputLen(); n != math.MaxInt64 {
		t.Fatalf("InputLen = %d, want saturation at MaxInt64", n)
	}
	f := mkFile(t)
	f.Grammars[0] = huge
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Terms panicked on overflowing grammar: %v", r)
		}
	}()
	if _, err := f.Terms(0); err == nil {
		t.Fatal("overflowing grammar accepted")
	}
}

func FuzzTraceRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(serialize(f, mkFileTB(f)))
	f.Add(serialize(f, richFile(f)))
	f.Fuzz(func(t *testing.T, data []byte) {
		readAndProbe(data)
	})
}

// mkFileTB is mkFile for any testing.TB (the fuzz seed corpus is
// built from an *testing.F).
func mkFileTB(tb testing.TB) *File {
	tb.Helper()
	table := cst.New()
	table.Add([]byte("sigA"), 100)
	table.Add([]byte("sigB"), 200)
	table.Add([]byte("sigC"), 300)
	return &File{
		NumRanks: 4, TimingMode: TimingAggregated, TimingBase: 1.2,
		CST:      table,
		Grammars: []sequitur.Serialized{mkGrammar([]int32{0, 1, 0, 1, 2}), mkGrammar([]int32{2, 2, 2})},
		RankMap:  mkGrammar([]int32{0, 1, 0, 0}),
	}
}
