package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/spill"
)

// TestFinalizeMemBounded is the memory-bounded finalize gate: it
// measures the in-memory finalize's peak heap at a rank count, then
// sets a Go memory limit (GOMEMLIMIT's runtime form) to half that
// peak — a budget the in-memory path provably exceeded — and runs the
// streamed finalize under it, asserting success, byte identity, and a
// peak under the limit. CI scales the rank count up with
// PILGRIM_MEMBOUND_RANKS=4096; the default keeps the tier-1 run fast.
func TestFinalizeMemBounded(t *testing.T) {
	procs := 512
	if v := os.Getenv("PILGRIM_MEMBOUND_RANKS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			t.Fatalf("PILGRIM_MEMBOUND_RANKS=%q", v)
		}
		procs = n
	}

	var want []byte
	inmemPeak, _, err := measurePeak(func() error {
		snaps := SyntheticSnapshots(procs)
		f, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		want = b.Bytes()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The budget the in-memory path exceeded. Guard against tiny rank
	// counts where runtime overhead (stacks, metadata) would dominate a
	// half-peak budget and make the limit meaningless.
	limit := int64(inmemPeak) / 2
	limited := limit > 16<<20
	if limited {
		prev := debug.SetMemoryLimit(limit)
		defer debug.SetMemoryLimit(prev)
	} else {
		t.Logf("in-memory peak %d B too small for a meaningful limit; checking identity only", inmemPeak)
	}

	var streamed []byte
	streamedPeak, _, err := measurePeak(func() error {
		w, err := spill.NewWriter(filepath.Join(t.TempDir(), "bounded"), "bounded", procs, core.Options{})
		if err != nil {
			return err
		}
		defer w.Close()
		for r := 0; r < procs; r++ {
			if err := w.Add(SyntheticSnapshot(r)); err != nil {
				return err
			}
		}
		f, _, err := core.FinalizeStreamed(procs, w.Fetch,
			core.Options{MaxResidentSnapshots: memBatch}, nil)
		if err != nil {
			return err
		}
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		streamed = b.Bytes()
		return nil
	})
	if err != nil {
		t.Fatalf("streamed finalize under memory limit: %v", err)
	}
	if !bytes.Equal(streamed, want) {
		t.Fatalf("streamed trace differs from in-memory (%d vs %d bytes)", len(streamed), len(want))
	}
	if limited {
		if int64(streamedPeak) >= limit {
			t.Fatalf("streamed peak heap %d B exceeded the %d B limit (in-memory peaked at %d B)",
				streamedPeak, limit, inmemPeak)
		}
		t.Logf("%d ranks: in-memory peak %d B > limit %d B > streamed peak %d B (%.2fx)",
			procs, inmemPeak, limit, streamedPeak, float64(streamedPeak)/float64(inmemPeak))
	}
}
