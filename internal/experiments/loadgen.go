package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/loadgen"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// LoadgenPoint profiles the collector at one amplification level: a
// flat-out replay (recorded gaps collapsed) measures the ingest
// ceiling and ack round-trip percentiles, then an open-loop replay at
// half that ceiling checks the pacer holds its offered rate without
// the collector falling behind.
type LoadgenPoint struct {
	Amplify int   `json:"amplify"`
	Streams int   `json:"streams"`
	Pairs   int64 `json:"pairs_planned"`

	// flat-out replay: the ingest ceiling
	MaxPps     float64 `json:"max_pairs_per_sec"`
	AckP50Ms   float64 `json:"ack_latency_p50_ms"`
	AckP95Ms   float64 `json:"ack_latency_p95_ms"`
	AckP99Ms   float64 `json:"ack_latency_p99_ms"`
	ElapsedSec float64 `json:"flatout_elapsed_sec"`

	// open-loop replay at half the measured ceiling
	OfferedPps  float64 `json:"offered_rate_pairs_per_sec"`
	AchievedPps float64 `json:"achieved_rate_pairs_per_sec"`

	Acks  int64 `json:"acks"`
	Nacks int64 `json:"nacks"`
}

// LoadgenResult is the "loadgen" experiment: replay-amplification
// throughput of the collector subsystem (BENCH_loadgen.json).
type LoadgenResult struct {
	Workload string         `json:"workload"`
	World    int            `json:"world"`
	Iters    int            `json:"iters"`
	Points   []LoadgenPoint `json:"points"`
}

// RunLoadgen captures one real run's wire journal, then replays it
// against fresh collectors at increasing amplification.
func RunLoadgen(scale Scale) (*LoadgenResult, error) {
	res := &LoadgenResult{Workload: "stencil2d", World: 4, Iters: 10}
	jdir, cleanup, err := loadgenCapture(res.Workload, res.World, res.Iters)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	for _, amp := range scale.capSweep([]int{8, 32, 128, 512}) {
		pt, err := loadgenPoint(jdir, amp)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// loadgenCapture traces the workload and ships it through a
// capture-mode collector, returning the run's journal directory.
func loadgenCapture(name string, procs, iters int) (string, func(), error) {
	body, err := workloads.Get(name, iters, procs)
	if err != nil {
		return "", nil, err
	}
	tracers := make([]*core.Tracer, procs)
	ics := make([]mpi.Interceptor, procs)
	for i := range tracers {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	err = mpi.RunOpt(procs, mpi.Options{Interceptors: ics, Timeout: runTimeout}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		return "", nil, fmt.Errorf("%s/%d: %w", name, procs, err)
	}
	snaps := make([]*core.Snapshot, procs)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	dir, err := os.MkdirTemp("", "pilgrim-bench-loadgen-")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: dir, KeepJournalFrames: true})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	c := &collect.Client{
		Addr: srv.Addr(),
		Run:  collect.RunInfo{RunID: "bench-src", WorldSize: procs},
	}
	_, err = c.Collect(snaps)
	srv.Close()
	if err != nil {
		cleanup()
		return "", nil, fmt.Errorf("capture %s/%d: %w", name, procs, err)
	}
	return filepath.Join(dir, "journal", "bench-src"), cleanup, nil
}

func loadgenPoint(jdir string, amplify int) (LoadgenPoint, error) {
	replay := func(rate float64) (*loadgen.Report, error) {
		target, err := collect.Start(collect.Config{Listen: "127.0.0.1:0"})
		if err != nil {
			return nil, err
		}
		defer target.Close()
		r, err := loadgen.New(loadgen.Config{
			Addr:     target.Addr(),
			Journals: []string{jdir},
			Amplify:  amplify,
			Speedup:  1e9, // collapse recorded gaps: flat-out unless rate paces
			Rate:     rate,
			Wait:     true,
		})
		if err != nil {
			return nil, err
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			return nil, err
		}
		if rep.SendErrs > 0 || rep.AckErrs > 0 {
			return nil, fmt.Errorf("amplify %d: %d send errors, %d ack errors", amplify, rep.SendErrs, rep.AckErrs)
		}
		return rep, nil
	}

	flat, err := replay(0)
	if err != nil {
		return LoadgenPoint{}, err
	}
	pt := LoadgenPoint{
		Amplify:    amplify,
		Streams:    flat.Streams,
		Pairs:      flat.PairsPlanned,
		MaxPps:     flat.AchievedRatePps,
		AckP50Ms:   flat.AckLatencyP50Ms,
		AckP95Ms:   flat.AckLatencyP95Ms,
		AckP99Ms:   flat.AckLatencyP99Ms,
		ElapsedSec: flat.ElapsedSec,
		Acks:       flat.Acks,
		Nacks:      flat.Nacks,
	}
	// Offer half the measured ceiling open-loop: achieved should track
	// offered when the collector has headroom. Floor the target so a
	// noisy ceiling measurement cannot stall the sweep.
	target := flat.AchievedRatePps / 2
	if target < 50 {
		target = 50
	}
	paced, err := replay(target)
	if err != nil {
		return LoadgenPoint{}, err
	}
	pt.OfferedPps = paced.OfferedRatePps
	pt.AchievedPps = paced.AchievedRatePps
	pt.Acks += paced.Acks
	pt.Nacks += paced.Nacks
	return pt, nil
}

// Print renders the amplification sweep.
func (r *LoadgenResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("loadgen: replay amplification (%s, world %d)", r.Workload, r.World))
	fmt.Fprintf(w, "%8s %8s %8s %10s %9s %9s %9s %11s %11s\n",
		"amplify", "streams", "pairs", "max p/s", "p50 ms", "p95 ms", "p99 ms", "offered", "achieved")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %8d %8d %10.0f %9.2f %9.2f %9.2f %11.0f %11.0f\n",
			p.Amplify, p.Streams, p.Pairs, p.MaxPps,
			p.AckP50Ms, p.AckP95Ms, p.AckP99Ms, p.OfferedPps, p.AchievedPps)
	}
}
