package experiments

import (
	"fmt"
	"io"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/sig"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// AblationResult quantifies the §3.3-3.4 design choices by disabling
// each optimization in turn and re-measuring trace sizes.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one (workload, configuration) measurement.
type AblationRow struct {
	Workload string
	Config   string
	Bytes    int
	CSTLen   int
	UCFGs    int
}

// irregularCompletion is the §3.4.3 stress: every rank keeps a
// sliding window of outstanding Irecvs over cycling sources and drains
// it with Waitany, immediately reposting. A freed request id is
// retaken by whichever signature posts next, so with a single shared
// pool the (signature, id) pairing depends on the non-deterministic
// completion order; per-signature pools keep it stable.
func irregularCompletion(total int) func(p *mpi.Proc) {
	const window = 4
	return func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		n := p.Size()
		buf := p.Alloc(1 << 14)
		peers := n - 1
		if peers < 1 {
			peers = 1
		}
		post := func(j int) *mpi.Request {
			k := j % peers
			src := (p.Rank() + 1 + k) % n
			// Zero-byte messages: the signature stays deterministic
			// (same buffer, same count on every post) and outstanding
			// receives never alias each other's payload regions, so the
			// only completion-order-dependent quantity is the request
			// id itself — exactly what §3.4.3 is about.
			r, err := p.Irecv(buf.Ptr(0), 0, mpi.Int, src, 60+k, w)
			if err != nil {
				panic(err)
			}
			return r
		}
		reqs := make([]*mpi.Request, window)
		next := 0
		for ; next < window && next < total; next++ {
			reqs[next%window] = post(next)
		}
		sent := 0
		completed := 0
		for completed < total {
			// Interleave the matching sends with jitter so message
			// arrival races the Waitany scans.
			if sent < total {
				k := sent % peers
				dst := (p.Rank() - 1 - k + 2*n) % n
				p.Compute(int64(1000 + (sent*2654435761)%5000))
				if err := p.Send(buf.Ptr(1<<13), 0, mpi.Int, dst, 60+k, w); err != nil {
					panic(err)
				}
				sent++
			}
			idx, err := p.Waitany(reqs, nil)
			if err != nil {
				panic(err)
			}
			if idx >= 0 {
				completed++
				if next < total {
					reqs[idx] = post(next)
					next++
				} else {
					reqs[idx] = nil
				}
			}
		}
		for sent < total {
			k := sent % peers
			dst := (p.Rank() - 1 - k + 2*n) % n
			if err := p.Send(buf.Ptr(1<<13), 0, mpi.Int, dst, 60+k, w); err != nil {
				panic(err)
			}
			sent++
		}
		p.Finalize()
	}
}

// RunAblation measures each encoding optimization's contribution.
func RunAblation(scale Scale) (AblationResult, error) {
	var res AblationResult
	procs := 36
	if scale == Quick {
		procs = 16
	}
	configs := []struct {
		name string
		enc  sig.Options
	}{
		{"full", sig.Options{}},
		{"-relative-ranks", sig.Options{NoRelativeRanks: true}},
		{"-request-pools", sig.Options{SharedRequestPool: true}},
		{"-pointer-tracking", sig.Options{NoPointerTracking: true}},
	}
	cases := []struct {
		name string
		body func(p *mpi.Proc)
	}{
		{"stencil2d", workloads.Stencil2D(workloads.StencilConfig{Iters: 50})},
		{"waitany-loop", irregularCompletion(50)},
	}
	for _, cs := range cases {
		for _, cfg := range configs {
			file, stats, err := pilgrim.RunSim(procs,
				pilgrim.Options{Encoding: cfg.enc},
				mpi.Options{Timeout: 5 * time.Minute}, cs.body)
			if err != nil {
				return res, fmt.Errorf("ablation %s/%s: %w", cs.name, cfg.name, err)
			}
			res.Rows = append(res.Rows, AblationRow{
				Workload: cs.name, Config: cfg.name,
				Bytes: file.SizeBytes(), CSTLen: stats.GlobalCST, UCFGs: stats.UniqueCFGs,
			})
		}
	}
	return res, nil
}

// Print renders the ablation table.
func (r AblationResult) Print(w io.Writer) {
	header(w, "Ablation: contribution of each encoding optimization (§3.3-3.4)")
	fmt.Fprintf(w, "%-14s %-20s %12s %10s %8s\n", "workload", "config", "bytes", "CST", "uCFGs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-20s %12d %10d %8d\n",
			row.Workload, row.Config, row.Bytes, row.CSTLen, row.UCFGs)
	}
}
