package experiments

import (
	"fmt"
	"io"

	pilgrim "github.com/hpcrepro/pilgrim"
)

// SizeSeries is one workload's trace-size curve over a sweep variable.
type SizeSeries struct {
	Workload string
	XLabel   string // "procs" or "iters"
	Points   []Point
}

// Print renders the series as the figure's data table.
func (s SizeSeries) Print(w io.Writer) {
	fmt.Fprintf(w, "%-10s  %8s  %12s  %12s  %12s  %10s  %8s\n",
		s.Workload, s.XLabel, "calls", "Pilgrim(KB)", "Scala(KB)", "ratio", "uCFGs")
	for _, p := range s.Points {
		x := p.Procs
		if s.XLabel == "iters" {
			x = p.Iters
		}
		ratio := "-"
		if p.PilgrimB > 0 && p.ScalaB > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(p.ScalaB)/float64(p.PilgrimB))
		}
		scala := "-"
		if p.ScalaB > 0 {
			scala = kb(p.ScalaB)
		}
		fmt.Fprintf(w, "%-10s  %8d  %12d  %12s  %12s  %10s  %8d\n",
			"", x, p.Calls, kb(p.PilgrimB), scala, ratio, p.UniqueCFGs)
	}
}

// --- §4.1: stencils and OSU ---------------------------------------------------

// StencilResult holds the §4.1 experiment output.
type StencilResult struct {
	D2, D3 SizeSeries // process sweeps
	D2I    SizeSeries // iteration sweep at fixed P
}

// RunStencil reproduces §4.1: constant trace size beyond 9 (2D) / 27
// (3D) processes and across iteration counts.
func RunStencil(scale Scale) (StencilResult, error) {
	var res StencilResult
	res.D2 = SizeSeries{Workload: "stencil2d", XLabel: "procs"}
	for _, n := range scale.capSweep([]int{4, 9, 16, 36, 64, 144, 256}) {
		pt, err := RunPilgrim("stencil2d", n, 20, pilgrim.Options{})
		if err != nil {
			return res, err
		}
		res.D2.Points = append(res.D2.Points, pt)
	}
	res.D3 = SizeSeries{Workload: "stencil3d", XLabel: "procs"}
	for _, n := range scale.capSweep([]int{8, 27, 64, 125, 216}) {
		pt, err := RunPilgrim("stencil3d", n, 10, pilgrim.Options{})
		if err != nil {
			return res, err
		}
		res.D3.Points = append(res.D3.Points, pt)
	}
	res.D2I = SizeSeries{Workload: "stencil2d", XLabel: "iters"}
	for _, it := range []int{10, 100, 1000} {
		pt, err := RunPilgrim("stencil2d", 16, it, pilgrim.Options{})
		if err != nil {
			return res, err
		}
		res.D2I.Points = append(res.D2I.Points, pt)
	}
	return res, nil
}

// Print renders the §4.1 results.
func (r StencilResult) Print(w io.Writer) {
	header(w, "§4.1 Stencils: trace size constant beyond 9 (2D) / 27 (3D) procs")
	r.D2.Print(w)
	r.D3.Print(w)
	fmt.Fprintln(w, "-- iteration sweep (16 procs):")
	r.D2I.Print(w)
}

// OSUResult holds the §4.1 OSU microbenchmark sizes.
type OSUResult struct{ Series []SizeSeries }

// RunOSU traces each OSU microbenchmark; the paper reports "a few
// kilobytes" for every one.
func RunOSU(scale Scale) (OSUResult, error) {
	var res OSUResult
	names := []string{"osu_latency", "osu_bw", "osu_allreduce", "osu_alltoall", "osu_bcast"}
	for _, name := range names {
		s := SizeSeries{Workload: name, XLabel: "procs"}
		for _, n := range scale.capSweep([]int{2, 8, 32}) {
			pt, err := RunPilgrim(name, n, 20, pilgrim.Options{})
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Print renders the OSU sizes.
func (r OSUResult) Print(w io.Writer) {
	header(w, "§4.1 OSU microbenchmarks: trace sizes (paper: a few KB each)")
	for _, s := range r.Series {
		s.Print(w)
	}
}

// --- Figure 5: NPB, Pilgrim vs ScalaTrace --------------------------------------

// Fig5Result holds the NPB comparison series.
type Fig5Result struct{ Series []SizeSeries }

// RunFig5 reproduces Figure 5: trace file size for six NPB kernels,
// Pilgrim vs the ScalaTrace baseline, over a process sweep.
func RunFig5(scale Scale) (Fig5Result, error) {
	var res Fig5Result
	type bench struct {
		name  string
		sweep []int
		iters int
	}
	benches := []bench{
		{"lu", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 30},
		{"mg", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 10},
		{"is", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 10},
		{"cg", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 15},
		{"sp", []int{16, 64, 256, 1024}, 10},
		{"bt", []int{16, 64, 256, 1024}, 10},
	}
	for _, b := range benches {
		s := SizeSeries{Workload: b.name, XLabel: "procs"}
		for _, n := range scale.capSweep(b.sweep) {
			pt, err := RunBoth(b.name, n, b.iters)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Print renders Figure 5's data.
func (r Fig5Result) Print(w io.Writer) {
	header(w, "Figure 5: NPB trace sizes, Pilgrim vs ScalaTrace")
	for _, s := range r.Series {
		s.Print(w)
	}
}

// --- Figure 6: FLASH sizes ------------------------------------------------------

// Fig6Result holds the six FLASH panels.
type Fig6Result struct {
	ByProcs []SizeSeries // (a) Sedov, (b) Cellular, (c) StirTurb
	ByIters []SizeSeries // (d) Sedov, (e) Cellular, (f) StirTurb
}

// RunFig6 reproduces Figure 6: FLASH trace sizes versus process count
// and versus iteration count (plus traced call counts).
func RunFig6(scale Scale) (Fig6Result, error) {
	var res Fig6Result
	apps := []string{"sedov", "cellular", "stirturb"}
	for _, app := range apps {
		s := SizeSeries{Workload: app, XLabel: "procs"}
		for _, n := range scale.capSweep([]int{8, 16, 32, 64, 128, 256, 512, 1024}) {
			pt, err := RunBoth(app, n, 100)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.ByProcs = append(res.ByProcs, s)
	}
	itersProcs := 32
	if scale == Quick {
		itersProcs = 16
	}
	for _, app := range apps {
		s := SizeSeries{Workload: app, XLabel: "iters"}
		for _, it := range []int{100, 200, 400, 600, 800, 1000} {
			pt, err := RunBoth(app, itersProcs, it)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.ByIters = append(res.ByIters, s)
	}
	return res, nil
}

// Print renders Figure 6's data.
func (r Fig6Result) Print(w io.Writer) {
	header(w, "Figure 6(a-c): FLASH trace size vs processes")
	for _, s := range r.ByProcs {
		s.Print(w)
	}
	header(w, "Figure 6(d-f): FLASH trace size vs iterations")
	for _, s := range r.ByIters {
		s.Print(w)
	}
}

// --- Figure 9: MILC -------------------------------------------------------------

// Fig9Result holds the MILC strong and weak scaling series.
type Fig9Result struct {
	Strong SizeSeries
	Weak   SizeSeries
}

// RunFig9 reproduces Figure 9: MILC trace size under strong scaling
// (fixed 64³×32-like global lattice) and weak scaling (fixed
// per-process block).
func RunFig9(scale Scale) (Fig9Result, error) {
	var res Fig9Result
	res.Strong = SizeSeries{Workload: "milc-strong", XLabel: "procs"}
	res.Weak = SizeSeries{Workload: "milc-weak", XLabel: "procs"}
	// MILC ranks are cheap (a few hundred calls each), and the paper's
	// headline is the 16K weak-scaling run, so this sweep goes 4x
	// beyond the scale cap (Full reaches 4096; 16384 verified by hand,
	// see EXPERIMENTS.md).
	sweep := []int{16, 64, 256, 1024, 4096}
	capN := scale.cap() * 4
	var capped []int
	for _, n := range sweep {
		if n <= capN {
			capped = append(capped, n)
		}
	}
	sweep = capped
	for _, n := range sweep {
		pt, err := runMILC(n, true)
		if err != nil {
			return res, err
		}
		res.Strong.Points = append(res.Strong.Points, pt)
	}
	for _, n := range sweep {
		pt, err := runMILC(n, false)
		if err != nil {
			return res, err
		}
		res.Weak.Points = append(res.Weak.Points, pt)
	}
	return res, nil
}

// Print renders Figure 9's data.
func (r Fig9Result) Print(w io.Writer) {
	header(w, "Figure 9: MILC trace size vs processes")
	r.Strong.Print(w)
	r.Weak.Print(w)
}
