package experiments

import (
	"fmt"
	"io"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// Table1 reproduces the paper's Table 1: how many MPI functions each
// tool records, and which popular parameter classes are preserved.
type Table1 struct {
	Total      int
	Cypress    int
	ScalaTrace int
	Pilgrim    int
}

// RunTable1 counts coverage from the modeled MPI surface.
func RunTable1() Table1 {
	return Table1{
		Total:      len(mpispec.AllNames),
		Cypress:    mpispec.CypressCoverage().Count(),
		ScalaTrace: mpispec.ScalaTraceCoverage().Count(),
		Pilgrim:    mpispec.PilgrimCoverage().Count(),
	}
}

// Print renders the table in the paper's layout.
func (t Table1) Print(w io.Writer) {
	header(w, "Table 1: information collected by tracing tools")
	fmt.Fprintf(w, "%-24s %10s %12s %10s\n", "Functions supported", "Cypress", "ScalaTrace", "Pilgrim")
	fmt.Fprintf(w, "%-24s %10d %12d %10d\n", fmt.Sprintf("Total: %d", t.Total), t.Cypress, t.ScalaTrace, t.Pilgrim)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s %14s %20s %20s\n", "Parameter", "Cypress", "ScalaTrace", "Pilgrim")
	rows := [][4]string{
		{"MPI_Status", "yes", "yes", "yes"},
		{"MPI_Request", "no", "yes", "yes"},
		{"MPI_Comm", "intra", "intra and inter", "intra and inter"},
		{"MPI_Datatype", "only the size", "yes", "yes"},
		{"src/dst/tag", "yes", "yes", "yes"},
		{"memory pointer", "no", "no", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %14s %20s %20s\n", r[0], r[1], r[2], r[3])
	}
	fmt.Fprintf(w, "(paper: 56 / 125 / 446 of 446 modeled functions; this build models %d)\n", t.Total)
}
