package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/spill"
)

// The finalize_mem experiment measures what the streaming finalize is
// for: peak memory. At each rank count it finalizes the same synthetic
// snapshot population twice — once the classic way (materialize all P
// snapshots, finalize in memory) and once streamed (generate one rank
// at a time into an internal/spill writer, then merge back from disk
// in MaxResidentSnapshots-sized batches) — and records the peak live
// heap and peak process RSS of each phase, asserting the two traces
// are byte-identical. The in-memory peak grows O(P); the streamed peak
// grows O(K + log P) in resident tables and should stay sublinear in P
// (the acceptance bar: the largest point's streamed peak RSS under 4x
// the 2048-rank point's).

// memBatch is the resident-snapshot bound K used for every streamed
// run: small enough that the bound, not the rank count, dominates the
// resident set, and fixed so points are comparable across the sweep.
const memBatch = 64

// FinalizeMemPoint is one rank count's in-memory vs streamed peak
// comparison.
type FinalizeMemPoint struct {
	Procs int `json:"procs"`
	Batch int `json:"batch"` // MaxResidentSnapshots of the streamed run

	InMemPeakHeap    uint64 `json:"inmem_peak_heap_bytes"`
	InMemPeakRSS     uint64 `json:"inmem_peak_rss_bytes,omitempty"`
	StreamedPeakHeap uint64 `json:"streamed_peak_heap_bytes"`
	StreamedPeakRSS  uint64 `json:"streamed_peak_rss_bytes,omitempty"`

	// PeakRatio is streamed/in-memory peak heap: how much of the
	// in-memory footprint the streaming path still needs.
	PeakRatio float64 `json:"peak_ratio"`
	Identical bool    `json:"identical"` // streamed trace byte-identical to in-memory
	TraceB    int     `json:"trace_bytes"`
}

// FinalizeMemResult is the "finalize_mem" experiment
// (BENCH_finalize_mem.json).
type FinalizeMemResult struct {
	Points []FinalizeMemPoint `json:"points"`
}

// RunFinalizeMem sweeps rank counts, comparing in-memory and streamed
// finalize peak memory and verifying byte identity at every point.
func RunFinalizeMem(scale Scale) (*FinalizeMemResult, error) {
	var sweep []int
	switch scale {
	case Quick:
		sweep = []int{128, 512}
	case Standard:
		sweep = []int{512, 2048, 4096}
	default:
		sweep = []int{512, 2048, 4096, 8192, 16384}
	}
	dir, err := os.MkdirTemp("", "pilgrim-finalize-mem-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &FinalizeMemResult{}
	for _, procs := range sweep {
		pt, err := finalizeMemPoint(procs, filepath.Join(dir, strconv.Itoa(procs)))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func finalizeMemPoint(procs int, dir string) (FinalizeMemPoint, error) {
	pt := FinalizeMemPoint{Procs: procs, Batch: memBatch}

	// Streamed phase first: peak RSS comes from the kernel's VmHWM
	// high-water mark, which only resets forward — measuring the
	// smaller phase first keeps both readings meaningful even if the
	// reset below is unavailable.
	var streamed []byte
	heap, rss, err := measurePeak(func() error {
		w, err := spill.NewWriter(dir, "membench", procs, core.Options{})
		if err != nil {
			return err
		}
		defer w.Close()
		// Generate -> spill -> free one rank at a time: the whole point
		// is that no more than one generated snapshot is ever resident
		// on the producer side.
		for r := 0; r < procs; r++ {
			if err := w.Add(SyntheticSnapshot(r)); err != nil {
				return err
			}
		}
		f, _, err := core.FinalizeStreamed(procs, w.Fetch,
			core.Options{MaxResidentSnapshots: memBatch}, nil)
		if err != nil {
			return err
		}
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		streamed = b.Bytes()
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("finalize_mem/%d streamed: %w", procs, err)
	}
	pt.StreamedPeakHeap, pt.StreamedPeakRSS = heap, rss

	var inmem []byte
	heap, rss, err = measurePeak(func() error {
		snaps := SyntheticSnapshots(procs)
		f, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		inmem = b.Bytes()
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("finalize_mem/%d in-memory: %w", procs, err)
	}
	pt.InMemPeakHeap, pt.InMemPeakRSS = heap, rss

	pt.Identical = bytes.Equal(streamed, inmem)
	pt.TraceB = len(inmem)
	if pt.InMemPeakHeap > 0 {
		pt.PeakRatio = float64(pt.StreamedPeakHeap) / float64(pt.InMemPeakHeap)
	}
	if !pt.Identical {
		return pt, fmt.Errorf("finalize_mem/%d: streamed trace differs from in-memory (%d vs %d bytes)",
			procs, len(streamed), len(inmem))
	}
	return pt, nil
}

// measurePeak runs f and returns the peak live heap (max HeapAlloc
// polled at 2ms) and peak process RSS (Linux VmHWM; 0 elsewhere) it
// reached. The heap is settled with a GC and the RSS high-water mark
// reset before f starts, so each phase is measured from its own
// baseline; HeapAlloc includes garbage not yet collected, which is
// exactly the memory pressure a bounded-memory finalize must bound.
func measurePeak(f func() error) (peakHeap, peakRSS uint64, err error) {
	debug.FreeOSMemory() // settle the heap and return freed pages first
	resetPeakRSS()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	peakHeap = ms.HeapAlloc

	done := make(chan struct{})
	polled := make(chan uint64, 1)
	go func() {
		peak := peakHeap
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				polled <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	err = f()
	runtime.ReadMemStats(&ms) // catch a final spike the ticker missed
	close(done)
	if p := <-polled; p > peakHeap {
		peakHeap = p
	}
	if ms.HeapAlloc > peakHeap {
		peakHeap = ms.HeapAlloc
	}
	peakRSS = readPeakRSS()
	return peakHeap, peakRSS, err
}

// resetPeakRSS clears the kernel's per-process RSS high-water mark
// (Linux: write 5 to /proc/self/clear_refs). Best-effort: on other
// platforms readPeakRSS reports 0 and the heap numbers carry the
// comparison.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// readPeakRSS returns VmHWM from /proc/self/status in bytes, or 0.
func readPeakRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// Print renders the sweep as the evaluation table.
func (r *FinalizeMemResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("finalize_mem: in-memory vs streamed peak memory (batch=%d)", memBatch))
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s %7s %10s\n",
		"procs", "inmem heap MB", "stream heap MB", "inmem rss MB", "stream rss MB", "ratio", "identical")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d %14s %14s %14s %14s %6.2fx %10v\n",
			p.Procs, mb(p.InMemPeakHeap), mb(p.StreamedPeakHeap),
			mb(p.InMemPeakRSS), mb(p.StreamedPeakRSS), p.PeakRatio, p.Identical)
	}
}

func mb(b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(b)/(1024*1024))
}
