// Package experiments regenerates every table and figure of the
// paper's evaluation (§4): trace sizes versus process count and
// iteration count for the benchmarks, NPB comparisons against the
// ScalaTrace baseline, FLASH scaling and overhead decompositions, MILC
// strong/weak scaling, and the timing-grammar sizes. Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md holds
// the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/scalatrace"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// Scale selects how far the process-count sweeps go. The paper runs up
// to 16K ranks on clusters; goroutine ranks on one machine sweep lower
// by default.
type Scale int

const (
	// Quick caps sweeps at 64 ranks (CI-friendly).
	Quick Scale = iota
	// Standard caps sweeps at 256 ranks.
	Standard
	// Full caps sweeps at 1024 (4096 for the MILC weak scaling).
	Full
)

func (s Scale) cap() int {
	switch s {
	case Quick:
		return 64
	case Standard:
		return 256
	default:
		return 1024
	}
}

// capSweep filters a process-count sweep by the scale cap.
func (s Scale) capSweep(sweep []int) []int {
	var out []int
	for _, n := range sweep {
		if n <= s.cap() {
			out = append(out, n)
		}
	}
	return out
}

const runTimeout = 10 * time.Minute

// sharedCollector, when set via SetCollector, observes every traced
// run an experiment performs (pilgrim-bench -json attaches one per
// experiment and emits its final report alongside the table rows).
var sharedCollector *pilgrim.MetricsCollector

// SetCollector attaches (or, with nil, detaches) a metrics collector
// to all subsequent experiment runs. Not safe to call concurrently
// with a running experiment.
func SetCollector(c *pilgrim.MetricsCollector) { sharedCollector = c }

// Point is one measurement of one (workload, procs, iters) cell.
type Point struct {
	Workload   string
	Procs      int
	Iters      int
	Calls      int64 // MPI calls traced (all ranks)
	PilgrimB   int   // Pilgrim trace bytes
	ScalaB     int   // ScalaTrace-model trace bytes
	UniqueCFGs int
	GlobalCST  int

	// wall-clock times (Figure 7/8)
	BaseNs    int64 // run without tracing
	PilgrimNs int64 // run with Pilgrim attached
	ScalaNs   int64 // run with the baseline attached

	// Pilgrim overhead decomposition (Figure 8)
	IntraNs    int64
	CSTMergeNs int64
	CFGMergeNs int64

	// lossy-timing grammar sizes (Figure 10)
	DurB int
	IntB int
}

// RunPilgrim traces the workload with Pilgrim and fills the size
// columns.
func RunPilgrim(name string, procs, iters int, opts pilgrim.Options) (Point, error) {
	return RunPilgrimSim(name, procs, iters, opts, mpi.Options{Timeout: runTimeout})
}

// RunPilgrimSim is RunPilgrim with explicit simulator options.
func RunPilgrimSim(name string, procs, iters int, opts pilgrim.Options, simOpts mpi.Options) (Point, error) {
	body, err := workloads.Get(name, iters, procs)
	if err != nil {
		return Point{}, err
	}
	if simOpts.Timeout == 0 {
		simOpts.Timeout = runTimeout
	}
	if opts.Collector == nil {
		opts.Collector = sharedCollector
	}
	t0 := time.Now()
	file, stats, err := pilgrim.RunSim(procs, opts, simOpts, body)
	if err != nil {
		return Point{}, fmt.Errorf("%s/%d: %w", name, procs, err)
	}
	pt := Point{
		Workload: name, Procs: procs, Iters: iters,
		Calls: stats.TotalCalls, PilgrimB: stats.TraceBytes,
		UniqueCFGs: stats.UniqueCFGs, GlobalCST: stats.GlobalCST,
		PilgrimNs:  time.Since(t0).Nanoseconds(),
		IntraNs:    stats.IntraNs,
		CSTMergeNs: stats.CSTMergeNs,
		CFGMergeNs: stats.CFGMergeNs,
	}
	if opts.TimingMode == pilgrim.TimingLossy {
		_, _, pt.DurB, pt.IntB = file.SectionSizes()
	}
	return pt, nil
}

// RunScala traces the workload with the ScalaTrace model.
func RunScala(name string, procs, iters int) (int, int64, error) {
	return RunScalaSim(name, procs, iters, mpi.Options{Timeout: runTimeout})
}

// RunScalaSim is RunScala with explicit simulator options.
func RunScalaSim(name string, procs, iters int, simOpts mpi.Options) (int, int64, error) {
	body, err := workloads.Get(name, iters, procs)
	if err != nil {
		return 0, 0, err
	}
	if simOpts.Timeout == 0 {
		simOpts.Timeout = runTimeout
	}
	tracers := make([]*scalatrace.Tracer, procs)
	ics := make([]mpi.Interceptor, procs)
	for i := range tracers {
		tracers[i] = scalatrace.NewTracer(i)
		ics[i] = tracers[i]
	}
	simOpts.Interceptors = ics
	t0 := time.Now()
	err = mpi.RunOpt(procs, simOpts, body)
	if err != nil {
		return 0, 0, fmt.Errorf("%s/%d (scalatrace): %w", name, procs, err)
	}
	st := scalatrace.Finalize(tracers)
	return st.TraceBytes, time.Since(t0).Nanoseconds(), nil
}

// RunBase runs the workload with no tracer attached and returns the
// wall time.
func RunBase(name string, procs, iters int) (int64, error) {
	return RunBaseSim(name, procs, iters, mpi.Options{Timeout: runTimeout})
}

// RunBaseSim is RunBase with explicit simulator options.
func RunBaseSim(name string, procs, iters int, simOpts mpi.Options) (int64, error) {
	body, err := workloads.Get(name, iters, procs)
	if err != nil {
		return 0, err
	}
	if simOpts.Timeout == 0 {
		simOpts.Timeout = runTimeout
	}
	t0 := time.Now()
	if err := mpi.RunOpt(procs, simOpts, body); err != nil {
		return 0, fmt.Errorf("%s/%d (untraced): %w", name, procs, err)
	}
	return time.Since(t0).Nanoseconds(), nil
}

// RunBoth measures Pilgrim and the baseline for one cell.
func RunBoth(name string, procs, iters int) (Point, error) {
	pt, err := RunPilgrim(name, procs, iters, pilgrim.Options{})
	if err != nil {
		return pt, err
	}
	sb, sns, err := RunScala(name, procs, iters)
	if err != nil {
		return pt, err
	}
	pt.ScalaB = sb
	pt.ScalaNs = sns
	return pt, nil
}

// kb formats bytes as KB with one decimal.
func kb(b int) string { return fmt.Sprintf("%.1f", float64(b)/1024) }

func ms(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
