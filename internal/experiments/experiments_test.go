package experiments

import (
	"strings"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
)

func TestTable1(t *testing.T) {
	t1 := RunTable1()
	if t1.Pilgrim != t1.Total {
		t.Fatalf("Pilgrim covers %d of %d", t1.Pilgrim, t1.Total)
	}
	if !(t1.Cypress < t1.ScalaTrace && t1.ScalaTrace < t1.Pilgrim) {
		t.Fatalf("coverage ordering wrong: %+v", t1)
	}
	var sb strings.Builder
	t1.Print(&sb)
	if !strings.Contains(sb.String(), "memory pointer") {
		t.Fatal("Table 1 rendering incomplete")
	}
}

func TestRunBothProducesComparableSizes(t *testing.T) {
	pt, err := RunBoth("lu", 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pt.PilgrimB <= 0 || pt.ScalaB <= 0 {
		t.Fatalf("sizes: %d %d", pt.PilgrimB, pt.ScalaB)
	}
	if pt.PilgrimB >= pt.ScalaB {
		t.Fatalf("Pilgrim (%d) should beat the baseline (%d) on LU", pt.PilgrimB, pt.ScalaB)
	}
	if pt.Calls <= 0 {
		t.Fatal("no calls counted")
	}
}

func TestScaleCaps(t *testing.T) {
	full := []int{8, 64, 256, 1024, 4096}
	if got := Quick.capSweep(full); got[len(got)-1] != 64 {
		t.Fatalf("Quick cap: %v", got)
	}
	if got := Standard.capSweep(full); got[len(got)-1] != 256 {
		t.Fatalf("Standard cap: %v", got)
	}
	if got := Full.capSweep(full); got[len(got)-1] != 1024 {
		t.Fatalf("Full cap: %v", got)
	}
}

func TestStencilExperimentClaims(t *testing.T) {
	r, err := RunStencil(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond 9 procs the 2D trace must be flat apart from the widening
	// of aggregated call counters (varints, logarithmic).
	var at9, atMax int
	for _, p := range r.D2.Points {
		if p.Procs == 9 {
			at9 = p.PilgrimB
		}
		atMax = p.PilgrimB
	}
	if d := atMax - at9; d > 64 || d < -64 {
		t.Errorf("2D stencil grew beyond 9 procs: %d -> %d", at9, atMax)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "stencil2d") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig5QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	r, err := RunFig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.PilgrimB >= p.ScalaB {
				t.Errorf("%s at %d procs: Pilgrim %d >= baseline %d",
					s.Workload, p.Procs, p.PilgrimB, p.ScalaB)
			}
		}
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	r, err := RunAblation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AblationRow{}
	for _, row := range r.Rows {
		byKey[row.Workload+"/"+row.Config] = row
	}
	if full, abl := byKey["stencil2d/full"], byKey["stencil2d/-relative-ranks"]; abl.Bytes <= full.Bytes {
		t.Errorf("relative ranks show no benefit: %d vs %d", full.Bytes, abl.Bytes)
	}
	if full, abl := byKey["stencil2d/full"], byKey["stencil2d/-pointer-tracking"]; abl.Bytes <= full.Bytes {
		t.Errorf("pointer tracking shows no benefit: %d vs %d", full.Bytes, abl.Bytes)
	}
	if full, abl := byKey["waitany-loop/full"], byKey["waitany-loop/-request-pools"]; abl.CSTLen <= full.CSTLen {
		t.Errorf("request pools show no benefit: CST %d vs %d", full.CSTLen, abl.CSTLen)
	}
}

func TestFig10TimingSizesPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	opts := pilgrim.Options{TimingMode: pilgrim.TimingLossy, TimingBase: 1.2}
	pt, err := RunPilgrim("lu", 8, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pt.DurB <= 0 || pt.IntB <= 0 {
		t.Fatalf("timing grammar sizes missing: %d %d", pt.DurB, pt.IntB)
	}
}

func TestRunMILCStrongVsWeak(t *testing.T) {
	s, err := runMILC(16, true)
	if err != nil {
		t.Fatal(err)
	}
	w, err := runMILC(16, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Calls != w.Calls {
		t.Fatalf("call structure should match: %d vs %d", s.Calls, w.Calls)
	}
	if s.Workload == w.Workload {
		t.Fatal("labels should differ")
	}
}
