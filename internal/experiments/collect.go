package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/wire"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// CollectPoint measures the networked collection path at one rank
// count: how many bytes cross the wire per rank (snapshot encoding)
// versus the raw uncompressed trace and the final merged trace, and
// how fast an in-process collector ingests and finalizes the run.
type CollectPoint struct {
	Procs int   `json:"procs"`
	Calls int64 `json:"calls"`

	WireB  int   `json:"wire_bytes"`  // encoded snapshots, all ranks
	TraceB int   `json:"trace_bytes"` // finalized trace
	RawB   int64 `json:"raw_bytes"`   // uncompressed per-call estimate

	EncodeNs  int64 `json:"encode_ns"`         // wire-encode all snapshots
	IngestNs  int64 `json:"ingest_ns"`         // stream + merge + finalize + fetch
	JournalNs int64 `json:"journal_ingest_ns"` // same, with -journal-sync=off journaling
	ObsNs     int64 `json:"obs_ingest_ns"`     // same, with flight-recorder spans on

	SnapsPerSec float64 `json:"snaps_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	// JournalPct is the journaled-ingest overhead relative to the plain
	// ingest, in percent (positive = journaling slower). The durability
	// budget: -journal-sync=off should stay within single digits.
	JournalPct float64 `json:"journal_overhead_pct"`
	// ObsPct is the span-tracing overhead relative to the plain ingest,
	// in percent. The observability budget: under 5%.
	ObsPct float64 `json:"obs_overhead_pct"`
	// E2eP95Ns is the clock-corrected client→collector one-way snapshot
	// latency p95, read from the obs-enabled run's collector (0 when no
	// echo round trip completed within the polling window).
	E2eP95Ns int64 `json:"e2e_latency_p95_ns"`
}

// CollectResult is the "collect" experiment: the wire-format and
// ingest-throughput profile of the collector subsystem across a rank
// sweep (BENCH_collect.json).
type CollectResult struct {
	Workload string         `json:"workload"`
	Iters    int            `json:"iters"`
	Points   []CollectPoint `json:"points"`
}

// RunCollect sweeps rank counts, tracing the stencil workload once per
// cell and then pushing its snapshots through a loopback collector.
func RunCollect(scale Scale) (*CollectResult, error) {
	res := &CollectResult{Workload: "stencil2d", Iters: 10}
	for _, procs := range scale.capSweep([]int{8, 16, 32, 64, 128, 256, 512, 1024}) {
		pt, err := collectPoint(res.Workload, procs, res.Iters)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func collectPoint(name string, procs, iters int) (CollectPoint, error) {
	body, err := workloads.Get(name, iters, procs)
	if err != nil {
		return CollectPoint{}, err
	}
	tracers := make([]*core.Tracer, procs)
	ics := make([]mpi.Interceptor, procs)
	for i := range tracers {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	err = mpi.RunOpt(procs, mpi.Options{Interceptors: ics, Timeout: runTimeout}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		return CollectPoint{}, fmt.Errorf("%s/%d: %w", name, procs, err)
	}
	snaps := make([]*core.Snapshot, procs)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	pt := CollectPoint{Procs: procs}
	for _, s := range snaps {
		pt.Calls += s.Calls
	}

	t0 := time.Now()
	for _, s := range snaps {
		pt.WireB += len(wire.EncodeSnapshot(s))
	}
	pt.EncodeNs = time.Since(t0).Nanoseconds()

	srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		return CollectPoint{}, err
	}
	defer srv.Close()
	c := &collect.Client{
		Addr: srv.Addr(),
		Run:  collect.RunInfo{RunID: fmt.Sprintf("bench-%d", procs), WorldSize: procs},
	}
	t1 := time.Now()
	file, err := c.Collect(snaps)
	if err != nil {
		return CollectPoint{}, fmt.Errorf("collect %s/%d: %w", name, procs, err)
	}
	pt.IngestNs = time.Since(t1).Nanoseconds()
	pt.TraceB = file.SizeBytes()
	pt.RawB = file.UncompressedEstimate()
	sec := float64(pt.IngestNs) / 1e9
	if sec > 0 {
		pt.SnapsPerSec = float64(procs) / sec
		pt.MBPerSec = float64(pt.WireB) / 1e6 / sec
	}

	// The same run against a journaling collector (-journal-sync=off):
	// the delta is the pure journaling overhead — frame copies and
	// queued appends, no fsyncs.
	jdir, err := os.MkdirTemp("", "pilgrim-bench-journal-")
	if err != nil {
		return CollectPoint{}, err
	}
	defer os.RemoveAll(jdir)
	jsrv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: jdir, JournalSync: collect.SyncOff})
	if err != nil {
		return CollectPoint{}, err
	}
	defer jsrv.Close()
	jc := &collect.Client{
		Addr: jsrv.Addr(),
		Run:  collect.RunInfo{RunID: fmt.Sprintf("bench-j-%d", procs), WorldSize: procs},
	}
	t2 := time.Now()
	if _, err := jc.Collect(snaps); err != nil {
		return CollectPoint{}, fmt.Errorf("journaled collect %s/%d: %w", name, procs, err)
	}
	pt.JournalNs = time.Since(t2).Nanoseconds()
	if pt.IngestNs > 0 {
		pt.JournalPct = (float64(pt.JournalNs)/float64(pt.IngestNs) - 1) * 100
	}

	// And once more with the flight recorder on both ends: the delta is
	// the pure span-tracing overhead — one ring write per instrumented
	// site, no journaling in the way.
	osrv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", Obs: obs.NewSink(0)})
	if err != nil {
		return CollectPoint{}, err
	}
	defer osrv.Close()
	oc := &collect.Client{
		Addr: osrv.Addr(),
		Run:  collect.RunInfo{RunID: fmt.Sprintf("bench-o-%d", procs), WorldSize: procs},
		Obs:  obs.NewSink(0),
	}
	t3 := time.Now()
	if _, err := oc.Collect(snaps); err != nil {
		return CollectPoint{}, fmt.Errorf("obs collect %s/%d: %w", name, procs, err)
	}
	pt.ObsNs = time.Since(t3).Nanoseconds()
	if pt.IngestNs > 0 {
		pt.ObsPct = (float64(pt.ObsNs)/float64(pt.IngestNs) - 1) * 100
	}
	// The clock-echo flush that feeds the e2e histogram trails the last
	// ack on each connection, so give the samples a moment to land.
	for i := 0; i < 20; i++ {
		if osrv.Metrics().E2eLatency.Snapshot().Count > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	pt.E2eP95Ns = int64(osrv.Metrics().E2eLatency.Snapshot().Quantile(0.95))
	return pt, nil
}

// Print renders the sweep as the evaluation table.
func (r *CollectResult) Print(w io.Writer) {
	header(w, "collect: wire format and ingest throughput (stencil2d)")
	fmt.Fprintf(w, "%6s %10s %10s %10s %10s %9s %10s %9s %9s %9s\n",
		"procs", "calls", "raw KB", "wire KB", "trace KB", "ratio", "snaps/s", "MB/s", "jrnl +%", "obs +%")
	for _, p := range r.Points {
		ratio := "-"
		if p.TraceB > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(p.WireB)/float64(p.TraceB))
		}
		fmt.Fprintf(w, "%6d %10d %10s %10s %10s %9s %10.0f %9.1f %9.1f %9.1f\n",
			p.Procs, p.Calls, kb(int(p.RawB)), kb(p.WireB), kb(p.TraceB),
			ratio, p.SnapsPerSec, p.MBPerSec, p.JournalPct, p.ObsPct)
	}
}
