package experiments

import (
	"fmt"
	"io"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/mpi"
)

// Fig7Result holds the execution-time comparison (no tracing /
// Pilgrim / ScalaTrace) for the FLASH skeletons.
type Fig7Result struct {
	ByProcs []SizeSeries
	ByIters []SizeSeries
}

// fig7Compute makes Proc.Compute burn real CPU, so overhead is
// measured against a realistic application denominator (the skeletons'
// virtual compute is otherwise free and would inflate the ratios).
const fig7Compute = 0.25

// RunFig7 reproduces Figure 7: wall-clock execution time of the FLASH
// skeletons untraced, with Pilgrim, and with the ScalaTrace baseline.
// Unlike the size experiments these numbers are real measurements of
// this implementation's overhead.
func RunFig7(scale Scale) (Fig7Result, error) {
	var res Fig7Result
	simOpts := func() mpi.Options {
		return mpi.Options{Timeout: runTimeout, ComputeFactor: fig7Compute}
	}
	measure := func(app string, n, iters int) (Point, error) {
		pt, err := RunPilgrimSim(app, n, iters, pilgrim.Options{}, simOpts())
		if err != nil {
			return pt, err
		}
		sb, sns, err := RunScalaSim(app, n, iters, simOpts())
		if err != nil {
			return pt, err
		}
		pt.ScalaB, pt.ScalaNs = sb, sns
		pt.BaseNs, err = RunBaseSim(app, n, iters, simOpts())
		return pt, err
	}
	apps := []string{"sedov", "cellular", "stirturb"}
	for _, app := range apps {
		s := SizeSeries{Workload: app, XLabel: "procs"}
		for _, n := range scale.capSweep([]int{8, 16, 32, 64, 128}) {
			pt, err := measure(app, n, 60)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.ByProcs = append(res.ByProcs, s)
	}
	itersProcs := 16
	for _, app := range apps {
		s := SizeSeries{Workload: app, XLabel: "iters"}
		for _, it := range []int{100, 300, 600, 1000} {
			pt, err := measure(app, itersProcs, it)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.ByIters = append(res.ByIters, s)
	}
	return res, nil
}

func printTimes(w io.Writer, series []SizeSeries) {
	for _, s := range series {
		fmt.Fprintf(w, "%-10s  %8s  %12s  %12s  %12s  %9s\n",
			s.Workload, s.XLabel, "none(ms)", "Pilgrim(ms)", "Scala(ms)", "Povhd")
		for _, p := range s.Points {
			x := p.Procs
			if s.XLabel == "iters" {
				x = p.Iters
			}
			ovhd := "-"
			if p.BaseNs > 0 {
				ovhd = fmt.Sprintf("%.0f%%", 100*float64(p.PilgrimNs-p.BaseNs)/float64(p.BaseNs))
			}
			fmt.Fprintf(w, "%-10s  %8d  %12s  %12s  %12s  %9s\n",
				"", x, ms(p.BaseNs), ms(p.PilgrimNs), ms(p.ScalaNs), ovhd)
		}
	}
}

// Print renders Figure 7's data.
func (r Fig7Result) Print(w io.Writer) {
	header(w, "Figure 7: FLASH execution time (none / Pilgrim / ScalaTrace)")
	printTimes(w, r.ByProcs)
	fmt.Fprintln(w, "-- iteration sweeps:")
	printTimes(w, r.ByIters)
}

// Fig8Result holds Pilgrim's overhead decomposition per FLASH app.
type Fig8Result struct{ Points []Point }

// RunFig8 reproduces Figure 8: the fraction of Pilgrim's compression
// time spent in intra-process compression versus the inter-process CST
// and CFG merges.
func RunFig8(scale Scale) (Fig8Result, error) {
	var res Fig8Result
	n := 64
	if scale == Quick {
		n = 32
	}
	for _, app := range []string{"sedov", "cellular", "stirturb"} {
		pt, err := RunPilgrim(app, n, 100, pilgrim.Options{})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Print renders Figure 8's decomposition.
func (r Fig8Result) Print(w io.Writer) {
	header(w, "Figure 8: Pilgrim overhead decomposition")
	fmt.Fprintf(w, "%-10s  %10s  %10s  %10s  %8s  %8s  %8s\n",
		"app", "intra(ms)", "CST(ms)", "CFG(ms)", "intra%", "CST%", "CFG%")
	for _, p := range r.Points {
		tot := p.IntraNs + p.CSTMergeNs + p.CFGMergeNs
		if tot == 0 {
			tot = 1
		}
		fmt.Fprintf(w, "%-10s  %10s  %10s  %10s  %7.1f%%  %7.1f%%  %7.1f%%\n",
			p.Workload, ms(p.IntraNs), ms(p.CSTMergeNs), ms(p.CFGMergeNs),
			100*float64(p.IntraNs)/float64(tot),
			100*float64(p.CSTMergeNs)/float64(tot),
			100*float64(p.CFGMergeNs)/float64(tot))
	}
}
