package experiments

import (
	"fmt"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// runMILC traces the MILC skeleton under strong scaling (fixed global
// lattice, as in the paper's 64³×32 runs) or weak scaling (fixed
// per-process block).
func runMILC(procs int, strong bool) (Point, error) {
	cfg := workloads.MILCConfig{}
	if strong {
		cfg.Lattice = [4]int{32, 32, 32, 32}
	}
	body := workloads.MILC(cfg)
	t0 := time.Now()
	_, stats, err := pilgrim.RunSim(procs, pilgrim.Options{}, mpi.Options{Timeout: runTimeout}, body)
	if err != nil {
		return Point{}, fmt.Errorf("milc/%d: %w", procs, err)
	}
	name := "milc-weak"
	if strong {
		name = "milc-strong"
	}
	return Point{
		Workload: name, Procs: procs,
		Calls: stats.TotalCalls, PilgrimB: stats.TraceBytes,
		UniqueCFGs: stats.UniqueCFGs, GlobalCST: stats.GlobalCST,
		PilgrimNs: time.Since(t0).Nanoseconds(),
	}, nil
}
