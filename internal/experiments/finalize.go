package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// SyntheticSnapshots builds deterministic per-rank snapshots shaped
// like a stencil run without spinning up the simulator: every rank
// shares a common phase, falls into one of nine signature classes
// (the paper's 2-D stencil count), and a sparse subset of ranks adds
// rank-unique signatures so the global CST keeps growing with scale.
// Deterministic: the same procs always yields byte-identical
// snapshots, so finalize timings and identity checks are repeatable.
func SyntheticSnapshots(procs int) []*core.Snapshot {
	snaps := make([]*core.Snapshot, procs)
	for r := 0; r < procs; r++ {
		snaps[r] = SyntheticSnapshot(r)
	}
	return snaps
}

// SyntheticSnapshot builds rank r's snapshot alone, so bounded-memory
// experiments can generate → spill → free one rank at a time without
// ever materializing the full O(procs) snapshot set.
func SyntheticSnapshot(r int) *core.Snapshot {
	tbl := cst.New()
	g := sequitur.New()
	record := func(sig string, dur int64) {
		g.Append(tbl.Add([]byte(sig), dur))
	}
	// Common phase: identical on every rank (init + collectives).
	for i := 0; i < 256; i++ {
		record(fmt.Sprintf("shared/%d", i%16), int64(100+i))
	}
	// Class phase: nine neighbour-exchange classes with loop
	// structure Sequitur can fold.
	cls := r % 9
	for i := 0; i < 1024; i++ {
		record(fmt.Sprintf("class%d/%d", cls, i%48), int64(200+i%64))
	}
	// Unique tail: every 17th rank sees rank-specific signatures
	// (e.g. I/O on a subset), so merges keep discovering terminals.
	if r%17 == 0 {
		for i := 0; i < 64; i++ {
			record(fmt.Sprintf("rank%d/%d", r, i%8), int64(300+i))
		}
	}
	return &core.Snapshot{
		Rank:    r,
		Calls:   tbl.Calls(),
		Table:   tbl,
		Grammar: sequitur.Serialized(g.Serialize()),
	}
}

// FinalizePoint compares sequential and parallel finalize at one rank
// count.
type FinalizePoint struct {
	Procs      int     `json:"procs"`
	Workers    int     `json:"workers"` // pool size of the parallel run
	SeqNs      int64   `json:"seq_ns"`
	ParNs      int64   `json:"par_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"` // parallel trace byte-identical to sequential
	GlobalCST  int     `json:"global_cst"`
	UniqueCFGs int     `json:"unique_cfgs"`
	TraceB     int     `json:"trace_bytes"`
}

// FinalizeResult is the "finalize" experiment: wall-clock of the
// sequential versus parallel finalize pipeline over a rank sweep, plus
// the CST hit-path allocation count the lean hot path guarantees
// (BENCH_finalize.json).
type FinalizeResult struct {
	Workers   int             `json:"workers"`        // GOMAXPROCS pool used for parallel runs
	HitAllocs float64         `json:"cst_hit_allocs"` // allocs per Table.Add hit (want 0)
	Points    []FinalizePoint `json:"points"`
}

// RunFinalize sweeps rank counts over synthetic snapshots, finalizing
// each set sequentially (workers=1) and in parallel (workers=0, i.e.
// GOMAXPROCS) and verifying the two traces are byte-identical.
func RunFinalize(scale Scale) (*FinalizeResult, error) {
	res := &FinalizeResult{Workers: runtime.GOMAXPROCS(0)}

	// Pin the allocation-lean CST hit path alongside the timings.
	tbl := cst.New()
	sig := []byte("hot/signature")
	tbl.Add(sig, 1)
	res.HitAllocs = testing.AllocsPerRun(1000, func() { tbl.Add(sig, 1) })

	sweep := scale.capSweep([]int{64, 256, 1024})
	if scale == Full {
		sweep = append(sweep, 4096)
	}
	for _, procs := range sweep {
		pt, err := finalizePoint(procs)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func finalizePoint(procs int) (FinalizePoint, error) {
	snaps := SyntheticSnapshots(procs)
	pt := FinalizePoint{Procs: procs, Workers: runtime.GOMAXPROCS(0)}

	var seqBytes, parBytes []byte
	const reps = 3
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f, _ := core.FinalizeSnapshots(snaps, core.Options{FinalizeWorkers: 1}, nil)
		ns := time.Since(t0).Nanoseconds()
		if pt.SeqNs == 0 || ns < pt.SeqNs {
			pt.SeqNs = ns
		}
		if i == 0 {
			var b bytes.Buffer
			if _, err := f.WriteTo(&b); err != nil {
				return pt, err
			}
			seqBytes = b.Bytes()
			pt.GlobalCST = f.CST.Len()
			pt.UniqueCFGs = len(f.Grammars)
			pt.TraceB = f.SizeBytes()
		}
	}
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f, _ := core.FinalizeSnapshots(snaps, core.Options{FinalizeWorkers: 0}, nil)
		ns := time.Since(t0).Nanoseconds()
		if pt.ParNs == 0 || ns < pt.ParNs {
			pt.ParNs = ns
		}
		if i == 0 {
			var b bytes.Buffer
			if _, err := f.WriteTo(&b); err != nil {
				return pt, err
			}
			parBytes = b.Bytes()
		}
	}
	pt.Identical = bytes.Equal(seqBytes, parBytes)
	if pt.ParNs > 0 {
		pt.Speedup = float64(pt.SeqNs) / float64(pt.ParNs)
	}
	if !pt.Identical {
		return pt, fmt.Errorf("finalize/%d: parallel trace differs from sequential", procs)
	}
	return pt, nil
}

// Print renders the sweep as the evaluation table.
func (r *FinalizeResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("finalize: sequential vs parallel pipeline (%d workers)", r.Workers))
	fmt.Fprintf(w, "CST hit path: %.0f allocs/Add\n", r.HitAllocs)
	fmt.Fprintf(w, "%6s %10s %10s %8s %10s %7s %10s %10s\n",
		"procs", "seq ms", "par ms", "speedup", "identical", "CST", "CFGs", "trace KB")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d %10s %10s %7.2fx %10v %7d %10d %10s\n",
			p.Procs, ms(p.SeqNs), ms(p.ParNs), p.Speedup, p.Identical,
			p.GlobalCST, p.UniqueCFGs, kb(p.TraceB))
	}
}
