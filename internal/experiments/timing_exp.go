package experiments

import (
	"fmt"
	"io"

	pilgrim "github.com/hpcrepro/pilgrim"
)

// Fig10Result holds the non-aggregated timing grammar sizes for NPB.
type Fig10Result struct{ Series []SizeSeries }

// RunFig10 reproduces Figure 10: the interval- and duration-grammar
// sizes when Pilgrim stores non-aggregated timing with b = 1.2 (20%
// relative error), over the NPB kernels.
func RunFig10(scale Scale) (Fig10Result, error) {
	var res Fig10Result
	opts := pilgrim.Options{TimingMode: pilgrim.TimingLossy, TimingBase: 1.2}
	type bench struct {
		name  string
		sweep []int
		iters int
	}
	benches := []bench{
		{"is", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 10},
		{"mg", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 10},
		{"cg", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 15},
		{"lu", []int{8, 16, 32, 64, 128, 256, 512, 1024}, 30},
		{"bt", []int{16, 64, 256, 1024}, 10},
		{"sp", []int{16, 64, 256, 1024}, 10},
	}
	for _, b := range benches {
		s := SizeSeries{Workload: b.name, XLabel: "procs"}
		for _, n := range scale.capSweep(b.sweep) {
			pt, err := RunPilgrim(b.name, n, b.iters, opts)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, pt)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Print renders Figure 10's data.
func (r Fig10Result) Print(w io.Writer) {
	header(w, "Figure 10: timing grammar sizes (b = 1.2)")
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-10s  %8s  %12s  %14s  %14s\n",
			s.Workload, "procs", "calls", "interval(KB)", "duration(KB)")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-10s  %8d  %12d  %14s  %14s\n",
				"", p.Procs, p.Calls, kb(p.IntB), kb(p.DurB))
		}
	}
}
