package workloads

import (
	"fmt"
	"sort"

	"github.com/hpcrepro/pilgrim/mpi"
)

// Info describes a registered workload.
type Info struct {
	Name        string
	Description string
	// Build constructs the SPMD body; iters <= 0 selects the default.
	Build func(iters int) func(p *mpi.Proc)
	// ProcsOK validates a process count (nil = any).
	ProcsOK func(n int) error
}

var registry = map[string]Info{
	"stencil2d": {
		Name:        "stencil2d",
		Description: "2D 5-point stencil, non-periodic boundaries (§4.1)",
		Build:       func(it int) func(p *mpi.Proc) { return Stencil2D(StencilConfig{Iters: it}) },
	},
	"stencil3d": {
		Name:        "stencil3d",
		Description: "3D 7-point stencil, periodic boundaries (§4.1)",
		Build:       func(it int) func(p *mpi.Proc) { return Stencil3D(StencilConfig{Iters: it}) },
	},
	"osu_latency": {
		Name:        "osu_latency",
		Description: "OSU ping-pong latency",
		Build:       func(it int) func(p *mpi.Proc) { return OSULatency(OSUConfig{Iters: it}) },
		ProcsOK:     atLeast(2),
	},
	"osu_bw": {
		Name:        "osu_bw",
		Description: "OSU windowed bandwidth",
		Build:       func(it int) func(p *mpi.Proc) { return OSUBandwidth(OSUConfig{Iters: it}) },
		ProcsOK:     atLeast(2),
	},
	"osu_allreduce": {
		Name:        "osu_allreduce",
		Description: "OSU allreduce latency",
		Build:       func(it int) func(p *mpi.Proc) { return OSUAllreduce(OSUConfig{Iters: it}) },
	},
	"osu_alltoall": {
		Name:        "osu_alltoall",
		Description: "OSU alltoall latency",
		Build:       func(it int) func(p *mpi.Proc) { return OSUAlltoall(OSUConfig{Iters: it}) },
	},
	"osu_bcast": {
		Name:        "osu_bcast",
		Description: "OSU broadcast latency",
		Build:       func(it int) func(p *mpi.Proc) { return OSUBcast(OSUConfig{Iters: it}) },
	},
	"is": {
		Name:        "is",
		Description: "NPB IS: bucketed integer sort (allreduce/alltoall/alltoallv)",
		Build:       func(it int) func(p *mpi.Proc) { return IS(NPBConfig{Iters: it}) },
	},
	"mg": {
		Name:        "mg",
		Description: "NPB MG: multigrid V-cycles with level-strided halos",
		Build:       func(it int) func(p *mpi.Proc) { return MG(NPBConfig{Iters: it}) },
	},
	"cg": {
		Name:        "cg",
		Description: "NPB CG: transpose exchange + row reductions",
		Build:       func(it int) func(p *mpi.Proc) { return CG(NPBConfig{Iters: it}) },
	},
	"lu": {
		Name:        "lu",
		Description: "NPB LU: SSOR wavefront sweeps",
		Build:       func(it int) func(p *mpi.Proc) { return LU(NPBConfig{Iters: it}) },
	},
	"bt": {
		Name:        "bt",
		Description: "NPB BT: ADI multi-partition sweeps (square P)",
		Build:       func(it int) func(p *mpi.Proc) { return BT(NPBConfig{Iters: it}) },
		ProcsOK:     square(),
	},
	"sp": {
		Name:        "sp",
		Description: "NPB SP: ADI multi-partition sweeps (square P)",
		Build:       func(it int) func(p *mpi.Proc) { return SP(NPBConfig{Iters: it}) },
		ProcsOK:     square(),
	},
	"sedov": {
		Name:        "sedov",
		Description: "FLASH Sedov blast wave (AMR off, drifting dt owner)",
		Build:       func(it int) func(p *mpi.Proc) { return Sedov(FlashConfig{Iters: it}) },
	},
	"cellular": {
		Name:        "cellular",
		Description: "FLASH Cellular detonation (PARAMESH AMR, Morton rebalancing)",
		Build:       func(it int) func(p *mpi.Proc) { return Cellular(FlashConfig{Iters: it}) },
	},
	"stirturb": {
		Name:        "stirturb",
		Description: "FLASH StirTurb (AMR off, fixed pattern)",
		Build:       func(it int) func(p *mpi.Proc) { return StirTurb(FlashConfig{Iters: it}) },
	},
	"milc": {
		Name:        "milc",
		Description: "MILC su3_rmd (4D lattice, weak scaling block)",
		Build: func(it int) func(p *mpi.Proc) {
			cfg := MILCConfig{}
			if it > 0 {
				cfg.Trajectories = it
			}
			return MILC(cfg)
		},
	},
}

func atLeast(k int) func(int) error {
	return func(n int) error {
		if n < k {
			return fmt.Errorf("requires at least %d processes", k)
		}
		return nil
	}
}

func square() func(int) error {
	return func(n int) error {
		s := 1
		for s*s < n {
			s++
		}
		if s*s != n {
			return fmt.Errorf("requires a square process count, got %d", n)
		}
		return nil
	}
}

// Get returns a workload body by name.
func Get(name string, iters int, procs int) (func(p *mpi.Proc), error) {
	info, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (see List)", name)
	}
	if info.ProcsOK != nil {
		if err := info.ProcsOK(procs); err != nil {
			return nil, fmt.Errorf("workload %s: %w", name, err)
		}
	}
	return info.Build(iters), nil
}

// List returns all registered workloads sorted by name.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
