// Package workloads contains communication skeletons of the codes the
// paper evaluates (Table 2): 2D/3D stencils, the OSU microbenchmarks,
// the NAS Parallel Benchmarks, the FLASH simulations (Sedov, Cellular,
// StirTurb) and MILC su3_rmd. Each skeleton reproduces the code's
// communication *pattern* — which MPI functions are called, with which
// argument regularities or per-rank irregularities — because trace
// size and compressibility depend only on that pattern, not on the
// numerics (see DESIGN.md §1).
package workloads

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/mpi"
)

// must panics on error: workload bodies run under mpi.Run, which
// converts rank panics into errors.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must1[T any](v T, err error) T {
	must(err)
	return v
}

// StencilConfig parameterizes the stencil skeletons.
type StencilConfig struct {
	Iters  int // time steps
	Points int // interior points per dimension per rank (message size driver)
}

func (c StencilConfig) withDefaults() StencilConfig {
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.Points == 0 {
		c.Points = 64
	}
	return c
}

// Stencil2D is the paper's 2D 5-point stencil with non-periodic
// boundaries (§4.1): a block-distributed mesh where each process
// exchanges halos with its four neighbours via Isend/Irecv/Waitall.
// Boundary processes talk to MPI_PROC_NULL, giving the 9 communication
// classes (4 corners, 4 sides, interior) the paper counts.
func Stencil2D(cfg StencilConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		dims := make([]int, 2)
		must(p.DimsCreate(p.Size(), 2, dims))
		cart := must1(p.CartCreate(p.World(), dims, []bool{false, false}, false))
		if cart == nil {
			must(p.Finalize())
			return
		}
		haloBytes := cfg.Points * 8
		send := p.Alloc(haloBytes * 4)
		recv := p.Alloc(haloBytes * 4)
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(int64(cfg.Points) * int64(cfg.Points) * 20)
			var reqs []*mpi.Request
			face := 0
			for dim := 0; dim < 2; dim++ {
				for _, disp := range []int{1, -1} {
					src, dst, err := p.CartShift(cart, dim, disp)
					must(err)
					reqs = append(reqs,
						must1(p.Irecv(recv.Ptr(face*haloBytes), cfg.Points, mpi.Double, src, 100+dim, cart)),
						must1(p.Isend(send.Ptr(face*haloBytes), cfg.Points, mpi.Double, dst, 100+dim, cart)))
					face++
				}
			}
			must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
		}
		send.Free()
		recv.Free()
		must(p.Finalize())
	}
}

// Stencil3D is the paper's 3D 7-point stencil with periodic
// boundaries: every process has six neighbours (wrap-around), giving
// at most 27 distinct communication classes under relative-rank
// encoding.
func Stencil3D(cfg StencilConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		dims := make([]int, 3)
		must(p.DimsCreate(p.Size(), 3, dims))
		cart := must1(p.CartCreate(p.World(), dims, []bool{true, true, true}, false))
		if cart == nil {
			must(p.Finalize())
			return
		}
		haloBytes := cfg.Points * cfg.Points * 8
		send := p.Alloc(haloBytes * 6)
		recv := p.Alloc(haloBytes * 6)
		count := cfg.Points * cfg.Points
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(int64(cfg.Points) * int64(cfg.Points) * int64(cfg.Points) * 8)
			var reqs []*mpi.Request
			face := 0
			for dim := 0; dim < 3; dim++ {
				for _, disp := range []int{1, -1} {
					src, dst, err := p.CartShift(cart, dim, disp)
					must(err)
					reqs = append(reqs,
						must1(p.Irecv(recv.Ptr(face*haloBytes), count, mpi.Double, src, 200+dim, cart)),
						must1(p.Isend(send.Ptr(face*haloBytes), count, mpi.Double, dst, 200+dim, cart)))
					face++
				}
			}
			must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
		}
		send.Free()
		recv.Free()
		must(p.Finalize())
	}
}

// hash64 is a small deterministic mixer used by skeletons that need
// reproducible pseudo-random per-rank parameters.
func hash64(vs ...int64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range vs {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func checkSquare(p *mpi.Proc, name string) int {
	n := p.Size()
	s := 1
	for s*s < n {
		s++
	}
	if s*s != n {
		panic(fmt.Sprintf("%s requires a square process count, got %d", name, n))
	}
	return s
}
