package workloads

import "github.com/hpcrepro/pilgrim/mpi"

// MILCConfig parameterizes the su3_rmd (refreshed molecular dynamics)
// skeleton from MILC's clover_dynamical application.
type MILCConfig struct {
	Trajectories int // MD trajectories
	Steps        int // MD steps per trajectory
	CGIters      int // conjugate-gradient iterations per step
	// Lattice is the global lattice (x,y,z,t). Zero means weak scaling
	// with a fixed 16×16×16×32 per-process block (as in the paper).
	Lattice [4]int
}

func (c MILCConfig) withDefaults() MILCConfig {
	if c.Trajectories == 0 {
		c.Trajectories = 2
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.CGIters == 0 {
		c.CGIters = 10
	}
	return c
}

// MILC is the su3_rmd communication skeleton: a 4D periodic lattice
// decomposition. Each MD step does a gauge-force halo exchange in all
// eight directions, then a CG solve whose iterations each perform a
// halo exchange plus two dot-product all-reduces, then a global
// plaquette reduction per trajectory.
//
// Under weak scaling the per-process block is constant, so every rank
// sees the same message sizes and the trace is constant in P; under
// strong scaling the local block dimensions change with the process
// grid, producing the paper's "stages" of unique grammars (Figure 9).
func MILC(cfg MILCConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		dims := make([]int, 4)
		must(p.DimsCreate(n, 4, dims))
		// Local block: fixed for weak scaling, divided for strong.
		local := [4]int{16, 16, 16, 32}
		if cfg.Lattice != [4]int{} {
			for i := 0; i < 4; i++ {
				local[i] = cfg.Lattice[i] / dims[i]
				if local[i] < 2 {
					local[i] = 2
				}
			}
		}
		// 4D periodic neighbours via row-major rank arithmetic.
		coords := make([]int, 4)
		r := p.Rank()
		for i := 3; i >= 0; i-- {
			coords[i] = r % dims[i]
			r /= dims[i]
		}
		rankOf := func(cs []int) int {
			rank := 0
			for i, c := range cs {
				c = ((c % dims[i]) + dims[i]) % dims[i]
				rank = rank*dims[i] + c
			}
			return rank
		}
		neighbour := func(dim, disp int) int {
			cs := make([]int, 4)
			copy(cs, coords)
			cs[dim] += disp
			return rankOf(cs)
		}
		// Face sizes: product of the other three local dims (surface
		// volume), in su3 matrices (18 doubles each, scaled down).
		faceCount := func(dim int) int {
			c := 1
			for i := 0; i < 4; i++ {
				if i != dim {
					c *= local[i]
				}
			}
			c /= 16 // scale the skeleton's message volume down
			if c < 4 {
				c = 4
			}
			return c
		}
		buf := p.Alloc(1 << 18)
		haloExchange := func(tag int) {
			var reqs []*mpi.Request
			off := 0
			for dim := 0; dim < 4; dim++ {
				cnt := faceCount(dim)
				for _, disp := range []int{1, -1} {
					peerF := neighbour(dim, disp)
					peerB := neighbour(dim, -disp)
					reqs = append(reqs,
						must1(p.Irecv(buf.Ptr(off%(1<<17)), cnt, mpi.Double, peerB, tag+dim, w)),
						must1(p.Isend(buf.Ptr((off+65536)%(1<<17)), cnt, mpi.Double, peerF, tag+dim, w)))
					off += 8192
				}
			}
			must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
		}
		for traj := 0; traj < cfg.Trajectories; traj++ {
			for step := 0; step < cfg.Steps; step++ {
				p.Compute(600000)
				haloExchange(1100) // gauge force
				for cg := 0; cg < cfg.CGIters; cg++ {
					haloExchange(1200) // dslash
					must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 1, mpi.Double, mpi.OpSum, w))
					must(p.Allreduce(buf.Ptr(128), buf.Ptr(192), 1, mpi.Double, mpi.OpSum, w))
				}
			}
			must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 2, mpi.Double, mpi.OpSum, w)) // plaquette
		}
		buf.Free()
		must(p.Finalize())
	}
}
