package workloads_test

import (
	"testing"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// traceVerified runs a workload under the tracer with verification on
// and checks the lossless property end to end.
func traceVerified(t *testing.T, name string, n, iters int) (*pilgrim.TraceFile, pilgrim.FinalizeStats) {
	t.Helper()
	body, err := workloads.Get(name, iters, n)
	if err != nil {
		t.Fatal(err)
	}
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{Verify: true})
		ics[i] = tracers[i]
	}
	err = mpi.RunOpt(n, mpi.Options{Interceptors: ics, Timeout: 90 * time.Second}, func(p *mpi.Proc) {
		pilgrimBind(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	file, stats := pilgrim.Finalize(tracers)
	if err := pilgrim.VerifyLossless(file, tracers); err != nil {
		t.Fatalf("%s: lossless verification failed: %v", name, err)
	}
	if stats.TotalCalls == 0 {
		t.Fatalf("%s: no calls traced", name)
	}
	return file, stats
}

func pilgrimBind(tr *pilgrim.Tracer, p *mpi.Proc) {
	// BindOOB is re-exported through the facade's RunSim; tests attach
	// manually, so reach it via the package helper.
	pilgrim.BindOOB(tr, p)
}

func TestAllWorkloadsRunAndTraceLosslessly(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		iters int
	}{
		{"stencil2d", 6, 10},
		{"stencil3d", 8, 5},
		{"osu_latency", 2, 10},
		{"osu_bw", 2, 4},
		{"osu_allreduce", 4, 5},
		{"osu_alltoall", 4, 5},
		{"osu_bcast", 4, 5},
		{"is", 4, 5},
		{"mg", 8, 5},
		{"cg", 8, 5},
		{"lu", 6, 10},
		{"bt", 4, 3},
		{"sp", 9, 3},
		{"sedov", 8, 20},
		{"cellular", 8, 60},
		{"stirturb", 8, 10},
		{"milc", 16, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			traceVerified(t, c.name, c.n, c.iters)
		})
	}
}

func TestStencil2DNinePatternClasses(t *testing.T) {
	// §4.1: all 9 classes (4 corners, 4 sides, interior) appear on a
	// 3x3 grid and the class count stays 9 on larger grids.
	_, stats9 := traceVerified(t, "stencil2d", 9, 8)
	_, stats16 := traceVerified(t, "stencil2d", 16, 8)
	_, stats36 := traceVerified(t, "stencil2d", 36, 8)
	if stats9.UniqueCFGs != 9 {
		t.Errorf("3x3 grid: %d unique grammars, want 9", stats9.UniqueCFGs)
	}
	if stats16.UniqueCFGs != 9 || stats36.UniqueCFGs != 9 {
		t.Errorf("larger grids changed class count: %d, %d", stats16.UniqueCFGs, stats36.UniqueCFGs)
	}
}

func TestStencil2DConstantSizeBeyondNine(t *testing.T) {
	f9, _ := traceVerified(t, "stencil2d", 9, 8)
	f36, _ := traceVerified(t, "stencil2d", 36, 8)
	// Allow only the logarithmic counter drift.
	if d := f36.SizeBytes() - f9.SizeBytes(); d > 32 || d < -32 {
		t.Errorf("2D stencil trace grew beyond 9 procs: %d -> %d", f9.SizeBytes(), f36.SizeBytes())
	}
}

func TestStencil3DClassesBounded(t *testing.T) {
	// Periodic 3D stencil: at most 27 classes (§4.1).
	_, stats := traceVerified(t, "stencil3d", 27, 4)
	if stats.UniqueCFGs > 27 {
		t.Errorf("3D stencil has %d classes, must be <= 27", stats.UniqueCFGs)
	}
	_, stats64 := traceVerified(t, "stencil3d", 64, 4)
	if stats64.UniqueCFGs > 27 {
		t.Errorf("3D stencil at 64 procs has %d classes", stats64.UniqueCFGs)
	}
}

func TestStirTurbConstantTrace(t *testing.T) {
	f1, _ := traceVerified(t, "stirturb", 8, 10)
	f2, _ := traceVerified(t, "stirturb", 8, 100)
	// Only run-length counters and aggregated duration sums may widen
	// (both logarithmic); the grammar structure must not grow.
	if d := f2.SizeBytes() - f1.SizeBytes(); d > 128 {
		t.Errorf("StirTurb grew with iterations: %d -> %d", f1.SizeBytes(), f2.SizeBytes())
	}
}

func TestCellularGrowsWithIterations(t *testing.T) {
	f1, _ := traceVerified(t, "cellular", 8, 100)
	f2, _ := traceVerified(t, "cellular", 8, 400)
	if f2.SizeBytes() <= f1.SizeBytes() {
		t.Errorf("Cellular (AMR) should grow with iterations: %d -> %d", f1.SizeBytes(), f2.SizeBytes())
	}
}

func TestLUTraceConstantInP(t *testing.T) {
	f1, _ := traceVerified(t, "lu", 16, 20)
	f2, _ := traceVerified(t, "lu", 64, 20)
	if d := f2.SizeBytes() - f1.SizeBytes(); d > 64 {
		t.Errorf("LU should be ~constant in P: %d -> %d", f1.SizeBytes(), f2.SizeBytes())
	}
}

func TestMILCWeakScalingConstant(t *testing.T) {
	// The wrap/interior class structure saturates at 3 classes per
	// dimension (81 total for 4D); grids of 4^4 and 5^4 both have all
	// classes, so their traces must be nearly identical (the wrap
	// deltas differ in value, not in count).
	if testing.Short() {
		t.Skip("hundreds of ranks")
	}
	f1, s1 := traceVerified(t, "milc", 256, 1)
	f2, s2 := traceVerified(t, "milc", 625, 1)
	if s1.UniqueCFGs > 81 || s2.UniqueCFGs > 81 {
		t.Errorf("MILC unique grammars exceed class bound: %d, %d", s1.UniqueCFGs, s2.UniqueCFGs)
	}
	d := f2.SizeBytes() - f1.SizeBytes()
	if d < 0 {
		d = -d
	}
	if d*10 > f1.SizeBytes() {
		t.Errorf("MILC weak scaling trace changed by >10%%: %d -> %d", f1.SizeBytes(), f2.SizeBytes())
	}
}

func TestRegistry(t *testing.T) {
	names := workloads.List()
	if len(names) < 15 {
		t.Fatalf("registry too small: %d", len(names))
	}
	if _, err := workloads.Get("nope", 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := workloads.Get("bt", 1, 3); err == nil {
		t.Fatal("BT must reject non-square process counts")
	}
	if _, err := workloads.Get("osu_latency", 1, 1); err == nil {
		t.Fatal("osu_latency must require 2 procs")
	}
}
