package workloads

import "github.com/hpcrepro/pilgrim/mpi"

// FlashConfig parameterizes the FLASH simulation skeletons.
type FlashConfig struct {
	Iters int
}

func (c FlashConfig) def(iters int) FlashConfig {
	if c.Iters == 0 {
		c.Iters = 200
	}
	return c
}

// flashSetup models the common initialization: parameter broadcasts
// and an initial block-count allgather.
func flashSetup(p *mpi.Proc, buf *mpi.Buffer) {
	w := p.World()
	for i := 0; i < 8; i++ {
		must(p.Bcast(buf.Ptr(i*8), 1, mpi.Double, 0, w))
	}
	must(p.Allgather(buf.Ptr(0), 1, mpi.Int, buf.Ptr(1024), 1, mpi.Int, w))
	must(p.Barrier(w))
}

// guard-cell message geometry: one message per block face, 16 doubles.
const (
	gcCount = 16
	gcMsgB  = gcCount * 8
	// gcBufB accommodates 6 directions x 12 blocks of either sends or
	// receives without any region overlapping another outstanding one.
	gcBufB = 6 * 12 * gcMsgB
)

// guardCellFill is the PARAMESH-style guard cell exchange: each rank
// sends one message per local block to each of its six grid
// neighbours and posts one receive per *neighbour* block, via
// Isend/Irecv/Waitall. Block counts vary per rank (load balancing), so
// the posting pattern must honour the neighbour's count — nblocksOf
// computes any rank's count from shared state, as PARAMESH's block
// tree does. Outstanding receives each get a disjoint region of recvB.
func guardCellFill(p *mpi.Proc, cart *mpi.Comm, recvB, sendB *mpi.Buffer, nblocksOf func(rank int) int) {
	var reqs []*mpi.Request
	ri, si := 0, 0
	mine := nblocksOf(p.Rank())
	for dim := 0; dim < 3; dim++ {
		for _, disp := range []int{1, -1} {
			src, dst, err := p.CartShift(cart, dim, disp)
			must(err)
			nrecv := 0
			if src != mpi.ProcNull {
				// src is a rank within the cart comm, whose group is
				// world-rank ordered in this runtime.
				nrecv = nblocksOf(cart.GroupRanks()[src])
			}
			for b := 0; b < nrecv; b++ {
				reqs = append(reqs, must1(p.Irecv(recvB.Ptr(ri*gcMsgB), gcCount, mpi.Double, src, 800+b, cart)))
				ri++
			}
			nsend := mine
			if dst == mpi.ProcNull {
				nsend = 0
			}
			for b := 0; b < nsend; b++ {
				reqs = append(reqs, must1(p.Isend(sendB.Ptr(si*gcMsgB), gcCount, mpi.Double, dst, 800+b, cart)))
				si++
			}
		}
	}
	must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
}

// Sedov is the Sedov blast-wave skeleton (fixed grid, AMR disabled):
// per step a guard-cell fill, a dt all-reduce, and the output path
// where rank 0 fetches the minimum-dt datum from its owner — an owner
// that drifts every few hundred steps, which is what makes the Sedov
// trace grow slowly with iteration count (Figure 6d).
func Sedov(cfg FlashConfig) func(p *mpi.Proc) {
	cfg = cfg.def(200)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		dims := make([]int, 3)
		must(p.DimsCreate(n, 3, dims))
		cart := must1(p.CartCreate(w, dims, []bool{false, false, false}, false))
		buf := p.Alloc(1 << 13)
		recvB := p.Alloc(gcBufB)
		sendB := p.Alloc(gcBufB)
		flashSetup(p, buf)
		nblocksOf := func(rank int) int { return 2 + int(hash64(int64(rank))%3) }
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(400000)
			guardCellFill(p, cart, recvB, sendB, nblocksOf)
			must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 1, mpi.Double, mpi.OpMin, w)) // dt
			// Output path: rank 0 pulls the min-dt datum; its owner
			// changes every ~300 iterations.
			owner := int(hash64(int64(it/300))%uint64(n-1)) + 1
			if n > 1 {
				if p.Rank() == 0 {
					must(p.Recv(buf.Ptr(128), 1, mpi.Double, owner, 900, w, nil))
				} else if p.Rank() == owner {
					must(p.Send(buf.Ptr(128), 1, mpi.Double, 0, 900, w))
				}
			}
		}
		buf.Free()
		recvB.Free()
		sendB.Free()
		must(p.Finalize())
	}
}

// Cellular is the cellular detonation skeleton with AMR enabled: the
// PARAMESH block tree refines every refineInterval steps, after which
// Morton-order rebalancing moves blocks between ranks with
// point-to-point transfers whose partners and counts change at every
// refinement epoch — the trace grows with both iterations and process
// count (Figures 6b/6e).
func Cellular(cfg FlashConfig) func(p *mpi.Proc) {
	cfg = cfg.def(200)
	const refineInterval = 50
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		dims := make([]int, 3)
		must(p.DimsCreate(n, 3, dims))
		cart := must1(p.CartCreate(w, dims, []bool{false, false, false}, false))
		buf := p.Alloc(1 << 13)
		recvB := p.Alloc(gcBufB)
		sendB := p.Alloc(gcBufB)
		flashSetup(p, buf)
		for it := 0; it < cfg.Iters; it++ {
			epoch := it / refineInterval
			nblocksOf := func(rank int) int {
				nb := 2 + epoch + int(hash64(int64(rank), int64(epoch))%2)
				if nb > 12 {
					nb = 12
				}
				return nb
			}
			p.Compute(500000)
			guardCellFill(p, cart, recvB, sendB, nblocksOf)
			must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 1, mpi.Double, mpi.OpMin, w))
			if it%refineInterval == refineInterval-1 && n > 1 {
				// Refinement: gather per-rank block counts, then Morton
				// rebalancing moves blocks to an epoch-dependent partner.
				must(p.Allgather(buf.Ptr(0), 1, mpi.Int, buf.Ptr(2048), 1, mpi.Int, w))
				shift := int(hash64(int64(epoch))%uint64(n-1)) + 1
				dst := (p.Rank() + shift) % n
				src := (p.Rank() - shift + n) % n
				moved := 32 * (1 + int(hash64(int64(p.Rank()), int64(epoch), 7)%4))
				var reqs []*mpi.Request
				reqs = append(reqs,
					must1(p.Irecv(recvB.Ptr(0), 128, mpi.Double, src, 950+epoch, w)),
					must1(p.Isend(sendB.Ptr(0), moved, mpi.Double, dst, 950+epoch, w)))
				must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
			}
		}
		buf.Free()
		recvB.Free()
		sendB.Free()
		must(p.Finalize())
	}
}

// StirTurb is the stirred-turbulence skeleton with AMR disabled: a
// fixed uniform grid, a fixed stencil exchange, and a forcing-term
// reduction — a perfectly regular pattern whose trace stays a few KB
// regardless of scale (Figures 6c/6f).
func StirTurb(cfg FlashConfig) func(p *mpi.Proc) {
	cfg = cfg.def(200)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		dims := make([]int, 3)
		must(p.DimsCreate(p.Size(), 3, dims))
		cart := must1(p.CartCreate(w, dims, []bool{true, true, true}, false))
		buf := p.Alloc(1 << 13)
		recvB := p.Alloc(gcBufB)
		sendB := p.Alloc(gcBufB)
		flashSetup(p, buf)
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(450000)
			guardCellFill(p, cart, recvB, sendB, func(int) int { return 2 })
			must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 4, mpi.Double, mpi.OpSum, w)) // forcing terms
			must(p.Allreduce(buf.Ptr(128), buf.Ptr(192), 1, mpi.Double, mpi.OpMin, w))
		}
		buf.Free()
		recvB.Free()
		sendB.Free()
		must(p.Finalize())
	}
}
