package workloads

import "github.com/hpcrepro/pilgrim/mpi"

// NPBConfig parameterizes the NAS Parallel Benchmark skeletons. Iters
// counts outer iterations (defaults approximate the class-C iteration
// structure, scaled down).
type NPBConfig struct {
	Iters int
}

func (c NPBConfig) def(iters int) NPBConfig {
	if c.Iters == 0 {
		c.Iters = iters
	}
	return c
}

// IS is the integer-sort skeleton: per iteration an MPI_Allreduce of
// bucket totals, an MPI_Alltoall exchanging send counts, and the key
// redistribution MPI_Alltoallv (uniform counts: IS distributes keys
// evenly), followed by a neighbour verification exchange whose count
// carries the per-rank, per-iteration redistribution jitter — the
// irregularity that defeats identity-based inter-process merging.
func IS(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(10)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		const buckets = 256
		keysPer := 1 << 12
		bucketBuf := p.Alloc(buckets * 4)
		bucketOut := p.Alloc(buckets * 4)
		countsBuf := p.Alloc(n * 4)
		countsOut := p.Alloc(n * 4)
		keys := p.Alloc(keysPer * 4)
		keysOut := p.Alloc(keysPer * 4 * 2)
		counts := make([]int, n)
		displs := make([]int, n)
		for i := range counts {
			counts[i] = keysPer / n
			displs[i] = i * (keysPer / n)
		}
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(int64(keysPer) * 30)
			must(p.Allreduce(bucketBuf.Ptr(0), bucketOut.Ptr(0), buckets, mpi.Int, mpi.OpSum, w))
			must(p.Alltoall(countsBuf.Ptr(0), 1, mpi.Int, countsOut.Ptr(0), 1, mpi.Int, w))
			must(p.Alltoallv(keys.Ptr(0), counts, displs, mpi.Int,
				keysOut.Ptr(0), counts, displs, mpi.Int, w))
			// Post-redistribution verification with the neighbour: the
			// received key count varies slightly per rank and step.
			jitter := int(hash64(int64(p.Rank()), int64(it)) % 4)
			vc := keysPer/n + jitter
			right := (p.Rank() + 1) % n
			left := (p.Rank() - 1 + n) % n
			must(p.Sendrecv(keys.Ptr(0), vc, mpi.Int, right, 1000,
				keysOut.Ptr(0), keysPer/n+3, mpi.Int, left, 1000, w, nil))
		}
		must(p.Allreduce(bucketBuf.Ptr(0), bucketOut.Ptr(0), 1, mpi.Int, mpi.OpSum, w))
		must(p.Finalize())
	}
}

// MG is the multigrid skeleton: V-cycles over grid levels. At level L
// only every 2^L-th rank participates, exchanging halos with its
// neighbours at stride 2^L; message sizes shrink with depth. The
// participation pattern is what differentiates ranks.
func MG(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(20)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		levels := 1
		for 1<<levels < n && levels < 8 {
			levels++
		}
		buf := p.Alloc(1 << 16)
		exchange := func(lev int) {
			stride := 1 << lev
			if p.Rank()%stride != 0 {
				return
			}
			count := 256 >> lev
			if count < 8 {
				count = 8
			}
			var reqs []*mpi.Request
			up := p.Rank() + stride
			down := p.Rank() - stride
			if up >= n {
				up = mpi.ProcNull
			}
			if down < 0 {
				down = mpi.ProcNull
			}
			reqs = append(reqs,
				must1(p.Irecv(buf.Ptr(0), count, mpi.Double, down, 300+lev, w)),
				must1(p.Irecv(buf.Ptr(8*count), count, mpi.Double, up, 301+lev, w)),
				must1(p.Isend(buf.Ptr(16*count), count, mpi.Double, up, 300+lev, w)),
				must1(p.Isend(buf.Ptr(24*count), count, mpi.Double, down, 301+lev, w)))
			must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
		}
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(200000)
			for lev := 0; lev < levels; lev++ { // restriction
				exchange(lev)
			}
			for lev := levels - 1; lev >= 0; lev-- { // prolongation
				exchange(lev)
			}
			must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 1, mpi.Double, mpi.OpMax, w)) // residual norm
		}
		must(p.Finalize())
	}
}

// CG is the conjugate-gradient skeleton: ranks form a 2D grid; each
// iteration exchanges a vector segment with the transpose partner (a
// per-rank-unique peer, the source of CG's gentle per-rank growth) and
// performs two dot-product reductions within the row communicator.
func CG(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(25)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		// Row/col decomposition: npcols x nprows with npcols >= nprows.
		nprows := 1
		for (nprows*2)*(nprows*2) <= n {
			nprows *= 2
		}
		for n%nprows != 0 {
			nprows /= 2
		}
		npcols := n / nprows
		row := p.Rank() / npcols
		col := p.Rank() % npcols
		rowComm := must1(p.CommSplit(w, row, col))
		// Exchange partner (modeled on NPB CG's reduce_exch_proc): a
		// per-rank-unique peer. Pairing must be an involution so the
		// Sendrecv matches; mirror pairing gives every rank a distinct
		// offset while partner(partner(r)) == r.
		partner := n - 1 - p.Rank()
		seg := p.Alloc(8 * 1024)
		tmp := p.Alloc(8 * 1024)
		for it := 0; it < cfg.Iters; it++ {
			p.Compute(150000)
			must(p.Sendrecv(seg.Ptr(0), 512, mpi.Double, partner, 500,
				tmp.Ptr(0), 512, mpi.Double, partner, 500, w, nil))
			must(p.Allreduce(seg.Ptr(0), tmp.Ptr(0), 1, mpi.Double, mpi.OpSum, rowComm))
			must(p.Allreduce(seg.Ptr(8), tmp.Ptr(8), 1, mpi.Double, mpi.OpSum, rowComm))
		}
		must(p.CommFree(rowComm))
		must(p.Finalize())
	}
}

// LU is the SSOR wavefront skeleton on a 2D grid: blocking receives
// from north/west, compute, blocking sends to south/east, swept in
// both diagonal directions, with a residual reduction every few
// iterations. All peers are at fixed relative offsets, which is why LU
// compresses to a constant for both tools (Figure 5).
func LU(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(50)
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		// 2D decomposition as square as possible.
		dims := make([]int, 2)
		must(p.DimsCreate(n, 2, dims))
		rows, cols := dims[0], dims[1]
		r, c := p.Rank()/cols, p.Rank()%cols
		north, south, west, east := mpi.ProcNull, mpi.ProcNull, mpi.ProcNull, mpi.ProcNull
		if r > 0 {
			north = p.Rank() - cols
		}
		if r < rows-1 {
			south = p.Rank() + cols
		}
		if c > 0 {
			west = p.Rank() - 1
		}
		if c < cols-1 {
			east = p.Rank() + 1
		}
		buf := p.Alloc(8 * 512)
		sweep := func(recvA, recvB, sendA, sendB int) {
			must(p.Recv(buf.Ptr(0), 128, mpi.Double, recvA, 600, w, nil))
			must(p.Recv(buf.Ptr(1024), 128, mpi.Double, recvB, 601, w, nil))
			p.Compute(80000)
			must(p.Send(buf.Ptr(2048), 128, mpi.Double, sendA, 600, w))
			must(p.Send(buf.Ptr(3072), 128, mpi.Double, sendB, 601, w))
		}
		for it := 0; it < cfg.Iters; it++ {
			sweep(north, west, south, east) // lower-triangular sweep
			sweep(south, east, north, west) // upper-triangular sweep
			if it%5 == 0 {
				must(p.Allreduce(buf.Ptr(0), buf.Ptr(64), 5, mpi.Double, mpi.OpSum, w))
			}
		}
		must(p.Finalize())
	}
}

// adi builds the BT/SP ADI skeleton: a square process grid, three
// sweep dimensions per iteration, each sweep running `stages`
// successive Isend/Irecv/Waitall steps along rows or columns with
// cell sizes that vary per rank and stage (the multi-partition
// scheme), which makes every rank's stream unique — both tools grow
// near-linearly on BT/SP (Figure 5), with Pilgrim ahead on constant.
func adi(iters, faces int) func(p *mpi.Proc) {
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		s := checkSquare(p, "BT/SP")
		row := p.Rank() / s
		col := p.Rank() % s
		buf := p.Alloc(1 << 16)
		for it := 0; it < iters; it++ {
			p.Compute(300000)
			for dim := 0; dim < 3; dim++ {
				for stage := 0; stage < s; stage++ {
					// Neighbour along the sweep direction.
					var peerFwd, peerBack int
					if dim%2 == 0 {
						peerFwd = row*s + (col+1)%s
						peerBack = row*s + (col-1+s)%s
					} else {
						peerFwd = ((row+1)%s)*s + col
						peerBack = ((row-1+s)%s)*s + col
					}
					// Multi-partition cell size: depends on rank & stage.
					count := 64 + int(hash64(int64(p.Rank()), int64(stage), int64(dim))%3)*16
					var reqs []*mpi.Request
					for f := 0; f < faces; f++ {
						reqs = append(reqs,
							must1(p.Irecv(buf.Ptr(f*4096), count, mpi.Double, peerBack, 700+dim, w)),
							must1(p.Isend(buf.Ptr(f*4096+2048), count, mpi.Double, peerFwd, 700+dim, w)))
					}
					must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
				}
			}
		}
		must(p.Finalize())
	}
}

// BT is the block-tridiagonal skeleton (square process count).
func BT(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(20)
	return adi(cfg.Iters, 2)
}

// SP is the scalar-pentadiagonal skeleton (square process count).
func SP(cfg NPBConfig) func(p *mpi.Proc) {
	cfg = cfg.def(20)
	return adi(cfg.Iters, 1)
}
