package workloads

import "github.com/hpcrepro/pilgrim/mpi"

// OSUConfig parameterizes the OSU microbenchmark skeletons.
type OSUConfig struct {
	Iters   int // iterations per message size
	MaxSize int // largest message in bytes (sweep doubles from 1)
}

func (c OSUConfig) withDefaults() OSUConfig {
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.MaxSize == 0 {
		c.MaxSize = 1 << 16
	}
	return c
}

// OSULatency is osu_latency: rank 0 and rank 1 ping-pong messages of
// doubling sizes; other ranks only synchronize on the final barrier.
func OSULatency(cfg OSUConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		buf := p.Alloc(cfg.MaxSize)
		for size := 1; size <= cfg.MaxSize; size *= 2 {
			for i := 0; i < cfg.Iters; i++ {
				if p.Rank() == 0 {
					must(p.Send(buf.Ptr(0), size, mpi.Byte, 1, 1, w))
					must(p.Recv(buf.Ptr(0), size, mpi.Byte, 1, 1, w, nil))
				} else if p.Rank() == 1 {
					must(p.Recv(buf.Ptr(0), size, mpi.Byte, 0, 1, w, nil))
					must(p.Send(buf.Ptr(0), size, mpi.Byte, 0, 1, w))
				}
			}
		}
		must(p.Barrier(w))
		buf.Free()
		must(p.Finalize())
	}
}

// OSUBandwidth is osu_bw: rank 0 posts a window of non-blocking sends,
// rank 1 a window of receives, then an ack flows back.
func OSUBandwidth(cfg OSUConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	const window = 64
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		buf := p.Alloc(cfg.MaxSize)
		ack := p.Alloc(4)
		for size := 1; size <= cfg.MaxSize; size *= 4 {
			for i := 0; i < cfg.Iters/4+1; i++ {
				switch p.Rank() {
				case 0:
					reqs := make([]*mpi.Request, window)
					for k := range reqs {
						reqs[k] = must1(p.Isend(buf.Ptr(0), size, mpi.Byte, 1, 2, w))
					}
					must(p.Waitall(reqs, make([]mpi.Status, window)))
					must(p.Recv(ack.Ptr(0), 1, mpi.Int, 1, 3, w, nil))
				case 1:
					reqs := make([]*mpi.Request, window)
					for k := range reqs {
						reqs[k] = must1(p.Irecv(buf.Ptr(0), size, mpi.Byte, 0, 2, w))
					}
					must(p.Waitall(reqs, make([]mpi.Status, window)))
					must(p.Send(ack.Ptr(0), 1, mpi.Int, 0, 3, w))
				}
			}
		}
		must(p.Barrier(w))
		buf.Free()
		ack.Free()
		must(p.Finalize())
	}
}

// OSUAllreduce is osu_allreduce: allreduce latency over doubling
// message sizes, all ranks participating.
func OSUAllreduce(cfg OSUConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		s := p.Alloc(cfg.MaxSize)
		r := p.Alloc(cfg.MaxSize)
		for size := 8; size <= cfg.MaxSize; size *= 2 {
			for i := 0; i < cfg.Iters; i++ {
				must(p.Allreduce(s.Ptr(0), r.Ptr(0), size/8, mpi.Double, mpi.OpSum, w))
			}
		}
		s.Free()
		r.Free()
		must(p.Finalize())
	}
}

// OSUAlltoall is osu_alltoall.
func OSUAlltoall(cfg OSUConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		n := p.Size()
		maxPer := cfg.MaxSize / n
		if maxPer < 8 {
			maxPer = 8
		}
		s := p.Alloc(maxPer * n)
		r := p.Alloc(maxPer * n)
		for size := 8; size <= maxPer; size *= 2 {
			for i := 0; i < cfg.Iters/2+1; i++ {
				must(p.Alltoall(s.Ptr(0), size, mpi.Byte, r.Ptr(0), size, mpi.Byte, w))
			}
		}
		s.Free()
		r.Free()
		must(p.Finalize())
	}
}

// OSUBcast is osu_bcast.
func OSUBcast(cfg OSUConfig) func(p *mpi.Proc) {
	cfg = cfg.withDefaults()
	return func(p *mpi.Proc) {
		must(p.Init())
		w := p.World()
		buf := p.Alloc(cfg.MaxSize)
		for size := 1; size <= cfg.MaxSize; size *= 2 {
			for i := 0; i < cfg.Iters; i++ {
				must(p.Bcast(buf.Ptr(0), size, mpi.Byte, 0, w))
			}
		}
		buf.Free()
		must(p.Finalize())
	}
}
