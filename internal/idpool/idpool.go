// Package idpool implements Pilgrim's symbolic-id allocation (§3.3):
// each MPI object type gets locally unique small ids from a pool of
// free ids; releasing an object returns its id for reuse, so programs
// that recycle objects use only a handful of ids, and processes that
// create objects in the same order get identical id sequences.
//
// For MPI_Request objects a single per-type pool would make ids depend
// on the (non-deterministic) completion order, so the tracer keeps a
// separate pool per call signature (§3.4.3); RequestPools provides
// that keyed collection.
package idpool

import "container/heap"

// Pool hands out small non-negative int32 ids, always choosing the
// smallest free id so that allocation order is deterministic.
type Pool struct {
	free intHeap
	next int32
	used map[int32]bool
}

// New returns an empty pool whose first id is 0.
func New() *Pool {
	return &Pool{used: make(map[int32]bool)}
}

// Get returns the smallest unused id.
func (p *Pool) Get() int32 {
	var id int32
	if p.free.Len() > 0 {
		id = heap.Pop(&p.free).(int32)
	} else {
		id = p.next
		p.next++
	}
	p.used[id] = true
	return id
}

// Put returns id to the pool. Releasing an id that is not currently
// allocated is a no-op (matching MPI's tolerance of double frees of
// null handles).
func (p *Pool) Put(id int32) {
	if !p.used[id] {
		return
	}
	delete(p.used, id)
	heap.Push(&p.free, id)
}

// InUse returns the number of ids currently allocated.
func (p *Pool) InUse() int { return len(p.used) }

// HighWater returns the smallest n such that every id ever handed out
// is < n — the total id space the process needed.
func (p *Pool) HighWater() int32 { return p.next }

type intHeap []int32

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int32)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RequestPools keeps one Pool per call signature (§3.4.3). The key is
// the encoded signature of the creating call, excluding the request
// argument itself.
type RequestPools struct {
	pools map[string]*Pool
}

// NewRequestPools returns an empty keyed pool set.
func NewRequestPools() *RequestPools {
	return &RequestPools{pools: make(map[string]*Pool)}
}

// Get allocates an id from the pool for signature key, creating the
// pool on first use.
func (rp *RequestPools) Get(key string) int32 {
	p := rp.pools[key]
	if p == nil {
		p = New()
		rp.pools[key] = p
	}
	return p.Get()
}

// Put releases an id back to the pool for signature key.
func (rp *RequestPools) Put(key string, id int32) {
	if p := rp.pools[key]; p != nil {
		p.Put(id)
	}
}

// NumPools returns how many distinct signatures have pools.
func (rp *RequestPools) NumPools() int { return len(rp.pools) }
