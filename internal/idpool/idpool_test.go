package idpool

import (
	"testing"
	"testing/quick"
)

func TestSequentialIDs(t *testing.T) {
	p := New()
	for i := int32(0); i < 10; i++ {
		if got := p.Get(); got != i {
			t.Fatalf("Get #%d = %d", i, got)
		}
	}
}

func TestReuseSmallest(t *testing.T) {
	p := New()
	ids := make([]int32, 5)
	for i := range ids {
		ids[i] = p.Get()
	}
	p.Put(3)
	p.Put(1)
	if got := p.Get(); got != 1 {
		t.Fatalf("expected smallest freed id 1, got %d", got)
	}
	if got := p.Get(); got != 3 {
		t.Fatalf("expected 3 next, got %d", got)
	}
	if got := p.Get(); got != 5 {
		t.Fatalf("expected fresh id 5, got %d", got)
	}
}

func TestPutUnallocatedNoop(t *testing.T) {
	p := New()
	p.Put(7) // never allocated
	if got := p.Get(); got != 0 {
		t.Fatalf("Get after bogus Put = %d, want 0", got)
	}
	p.Put(0)
	p.Put(0) // double free
	if got := p.Get(); got != 0 {
		t.Fatalf("double free corrupted pool: got %d", got)
	}
	if got := p.Get(); got != 1 {
		t.Fatalf("double free duplicated id: got %d", got)
	}
}

func TestHighWaterBoundedByLiveObjects(t *testing.T) {
	// The paper's observation: apps that free before reallocating use
	// only a few ids. Simulate 1000 alloc/free cycles with <= 3 live.
	p := New()
	for i := 0; i < 1000; i++ {
		a, b, c := p.Get(), p.Get(), p.Get()
		p.Put(a)
		p.Put(b)
		p.Put(c)
	}
	if hw := p.HighWater(); hw != 3 {
		t.Fatalf("high water %d, want 3", hw)
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d", p.InUse())
	}
}

func TestQuickNoDuplicateLiveIDs(t *testing.T) {
	f := func(ops []bool) bool {
		p := New()
		live := map[int32]bool{}
		var stack []int32
		for _, get := range ops {
			if get || len(stack) == 0 {
				id := p.Get()
				if live[id] {
					return false // duplicate live id
				}
				live[id] = true
				stack = append(stack, id)
			} else {
				id := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				p.Put(id)
				delete(live, id)
			}
		}
		return p.InUse() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestPoolsIsolation(t *testing.T) {
	rp := NewRequestPools()
	// Two signatures allocate independently: both start at 0, which is
	// exactly what makes request ids stable across completion orders.
	a0 := rp.Get("irecv:src=+1")
	b0 := rp.Get("irecv:src=+2")
	if a0 != 0 || b0 != 0 {
		t.Fatalf("per-signature pools must be independent: %d %d", a0, b0)
	}
	a1 := rp.Get("irecv:src=+1")
	if a1 != 1 {
		t.Fatalf("second id in pool a = %d", a1)
	}
	rp.Put("irecv:src=+1", a0)
	if got := rp.Get("irecv:src=+1"); got != 0 {
		t.Fatalf("freed id not reused: %d", got)
	}
	if rp.NumPools() != 2 {
		t.Fatalf("NumPools = %d", rp.NumPools())
	}
}

func TestRequestPoolsStableAcrossCompletionOrder(t *testing.T) {
	// The §3.4.3 scenario: three Irecvs with distinct signatures are
	// freed in varying orders across iterations; the ids assigned at
	// the start of each iteration must not change.
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}}
	rp := NewRequestPools()
	keys := []string{"sigA", "sigB", "sigC"}
	for iter, order := range orders {
		ids := make([]int32, 3)
		for i, k := range keys {
			ids[i] = rp.Get(k)
		}
		for i, k := range keys {
			if ids[i] != 0 {
				t.Fatalf("iter %d: key %s got id %d, want 0", iter, k, ids[i])
			}
		}
		for _, i := range order { // free in a different order each time
			rp.Put(keys[i], ids[i])
		}
	}
}

func TestRequestPoolsPutUnknownKey(t *testing.T) {
	rp := NewRequestPools()
	rp.Put("never-seen", 0) // must not panic
}
