package genapp_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/genapp"
	"github.com/hpcrepro/pilgrim/internal/workloads"
)

func mkTrace(t *testing.T) *pilgrim.TraceFile {
	t.Helper()
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 25})
	file, _, err := pilgrim.Run(9, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	return file
}

func TestGenerateStructure(t *testing.T) {
	file := mkTrace(t)
	src, err := genapp.Generate(file)
	if err != nil {
		t.Fatal(err)
	}
	code := string(src)
	for _, want := range []string{
		"package main",
		"var sigTable = []string{",
		"func g0r0(in *replay.Interp)",
		"var grammarOf = []func(in *replay.Interp){",
		"mpi.Run(9, func(p *mpi.Proc)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// The stencil's 25 iterations must appear as a loop bound, not as
	// 25 repeated statements: that is the grammar structure showing.
	if !strings.Contains(code, "i < 25") && !strings.Contains(code, "i < 24") {
		t.Error("iteration loop not reconstructed from the grammar")
	}
	// Rendered calls appear as comments for readability.
	if !strings.Contains(code, "// ") || !strings.Contains(code, "MPI_Isend") {
		t.Error("call comments missing")
	}
}

func TestGeneratedProgramCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	file := mkTrace(t)
	src, err := genapp.Generate(file)
	if err != nil {
		t.Fatal(err)
	}
	// The generated code imports this module's packages, so it must be
	// built from inside the repository.
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(repoRoot, "genapp_test_tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./genapp_test_tmp")
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated app failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "replayed 9 ranks successfully") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestGenerateMILC(t *testing.T) {
	body := workloads.MILC(workloads.MILCConfig{Trajectories: 1})
	file, _, err := pilgrim.Run(16, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	src, err := genapp.Generate(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "MPI_Allreduce") {
		t.Error("MILC proxy missing reductions")
	}
}
