package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetInt(7)
	g.Add(0.5)
	if got := g.Load(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
	// Re-registering the same name returns the same instrument.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "help")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Exponential buckets: the p50 estimate must land within the
	// bucket containing 500 (bound 511), p99 within the one for 990+.
	p50 := s.Quantile(0.5)
	if p50 < 255 || p50 > 1023 {
		t.Fatalf("p50 = %v, want within [255,1023]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 511 || p99 > 1023 {
		t.Fatalf("p99 = %v, want within [511,1023]", p99)
	}
	if q := s.Quantile(0); q < 0 {
		t.Fatalf("q0 = %v", q)
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help")
	h.Observe(0)
	h.Observe(-5) // clamps to bucket 0
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("last bucket = %d, want 1", s.Buckets[len(s.Buckets)-1])
	}
}

func TestVecsResolveAndSum(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("msgs_total", "help", "rank")
	cv.With("0").Add(3)
	cv.With("1").Add(4)
	if cv.With("0") != cv.With("0") {
		t.Fatal("With not idempotent")
	}
	if got := cv.Sum(); got != 7 {
		t.Fatalf("sum = %d, want 7", got)
	}
	gv := r.GaugeVec("bytes", "help", "section")
	gv.With("cst").SetInt(10)
	gv.With("cfg").SetInt(20)
	if got := gv.With("cst").Load(); got != 10 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	h := r.Histogram("h_ns", "help")
	cv := r.CounterVec("v_total", "help", "rank")
	handles := []*Counter{cv.With("0"), cv.With("1"), cv.With("2"), cv.With("3")}
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				handles[w%len(handles)].Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not perturb totals.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				r.WritePrometheus(&sb)
				r.Report()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*perWorker)
	}
	if got := cv.Sum(); got != workers*perWorker {
		t.Fatalf("vec sum = %d, want %d", got, workers*perWorker)
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "a counter").Add(5)
	r.Gauge("y", "a gauge").Set(1.5)
	r.CounterVec("z_total", "labeled", "rank").With("3").Add(2)
	r.Histogram("h_ns", "a histogram").Observe(100)
	r.GaugeFunc("live", "computed", func() float64 { return 9 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP x_total a counter",
		"# TYPE x_total counter",
		"x_total 5",
		"# TYPE y gauge",
		"y 1.5",
		`z_total{rank="3"} 2`,
		"# TYPE h_ns histogram",
		`h_ns_bucket{le="+Inf"} 1`,
		"h_ns_sum 100",
		"h_ns_count 1",
		"live 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// A bucket line must carry a cumulative count for the value 100.
	if !strings.Contains(out, `h_ns_bucket{le="127"} 1`) {
		t.Errorf("expected cumulative bucket le=127 for value 100:\n%s", out)
	}
}

func TestCounterFuncAndInfo(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("dropped_total", "scrape-time counter", func() int64 { return n })
	r.Info("build_info", "build metadata", "version", "1.0.0", "goversion", "go1.x")
	n = 7

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE dropped_total counter",
		"dropped_total 7",
		"# TYPE build_info gauge",
		`build_info{version="1.0.0",goversion="go1.x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	// Re-registration replaces, like GaugeFunc: a single series, the
	// latest function/labels.
	r.CounterFunc("dropped_total", "scrape-time counter", func() int64 { return 42 })
	r.Info("build_info", "build metadata", "version", "2.0.0")
	sb.Reset()
	r.WritePrometheus(&sb)
	out = sb.String()
	if !strings.Contains(out, "dropped_total 42") || strings.Contains(out, "dropped_total 7") {
		t.Errorf("CounterFunc re-registration did not replace:\n%s", out)
	}
	if !strings.Contains(out, `build_info{version="2.0.0"} 1`) ||
		strings.Contains(out, "1.0.0") {
		t.Errorf("Info re-registration did not replace:\n%s", out)
	}

	// Expvar output stays valid JSON and carries both.
	sb.Reset()
	r.WriteExpvar(&sb)
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, sb.String())
	}
	if m["dropped_total"].(float64) != 42 {
		t.Fatalf("dropped_total = %v", m["dropped_total"])
	}
	if m[`build_info{version="2.0.0"}`].(float64) != 1 {
		t.Fatalf("build_info = %v", m)
	}

	// Report includes the scrape-time counter and the info series.
	rep := r.Report()
	if rep.Counters["dropped_total"] != 42 {
		t.Fatalf("report counters = %v", rep.Counters)
	}
	if rep.Gauges[`build_info{version="2.0.0"}`] != 1 {
		t.Fatalf("report gauges = %v", rep.Gauges)
	}
}

func TestExpvarOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h").Add(3)
	r.CounterVec("b_total", "h", "rank").With("1").Add(4)
	var sb strings.Builder
	r.WriteExpvar(&sb)
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, sb.String())
	}
	if m["a_total"].(float64) != 3 {
		t.Fatalf("a_total = %v", m["a_total"])
	}
	if m[`b_total{rank="1"}`].(float64) != 4 {
		t.Fatalf("b_total{rank=1} = %v", m[`b_total{rank="1"}`])
	}
}

func TestReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(2)
	r.Gauge("g", "h").Set(0.5)
	h := r.Histogram("h_ns", "h")
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	rep := r.Report()
	if rep.Counters["c_total"] != 2 {
		t.Fatalf("counters = %v", rep.Counters)
	}
	if rep.Gauges["g"] != 0.5 {
		t.Fatalf("gauges = %v", rep.Gauges)
	}
	hs, ok := rep.Histograms["h_ns"]
	if !ok || hs.Count != 100 || hs.Sum != 1000 {
		t.Fatalf("histograms = %+v", rep.Histograms)
	}
	// Round-trips through JSON.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 2 {
		t.Fatalf("round-trip lost counters: %v", back.Counters)
	}
}

func TestCollectorReportAndProbes(t *testing.T) {
	c := NewCollector()
	c.TracerCalls.Add(10)
	c.CSTHits.Add(8)
	c.PostNs.Observe(100)
	remove := c.AddTracerProbe(func() TracerStats {
		return TracerStats{CSTEntries: 5, GrammarRules: 3, GrammarSymbols: 7, LiveSegments: 2}
	})
	rep := c.Report()
	if rep.Counters["pilgrim_tracer_calls_total"] != 10 {
		t.Fatalf("calls = %v", rep.Counters)
	}
	if rep.Gauges["pilgrim_tracer_cst_entries"] != 5 {
		t.Fatalf("cst gauge = %v", rep.Gauges["pilgrim_tracer_cst_entries"])
	}
	remove()
	// Probe caches expire after ~20ms; after removal the gauge drops.
	time.Sleep(25 * time.Millisecond)
	rep = c.Report()
	if rep.Gauges["pilgrim_tracer_cst_entries"] != 0 {
		t.Fatalf("cst gauge after remove = %v", rep.Gauges["pilgrim_tracer_cst_entries"])
	}
}

func TestRecordTraceSections(t *testing.T) {
	c := NewCollector()
	c.RecordTraceSections(100, 200, 0, 0, 400, 4000, 123)
	rep := c.Report()
	if rep.Gauges["pilgrim_trace_bytes"] != 400 {
		t.Fatalf("trace bytes = %v", rep.Gauges["pilgrim_trace_bytes"])
	}
	if rep.Gauges["pilgrim_trace_compression_ratio"] != 10 {
		t.Fatalf("ratio = %v", rep.Gauges["pilgrim_trace_compression_ratio"])
	}
	if rep.Gauges["pilgrim_trace_total_calls"] != 123 {
		t.Fatalf("calls = %v", rep.Gauges["pilgrim_trace_total_calls"])
	}
}

func TestProgressLine(t *testing.T) {
	c := NewCollector()
	c.TracerCalls.Add(5)
	line := c.ProgressLine()
	if !strings.Contains(line, "calls=5") {
		t.Fatalf("progress line = %q", line)
	}
}

func TestReporterEmits(t *testing.T) {
	c := NewCollector()
	c.TracerCalls.Add(1)
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	stop := c.StartReporter(w, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	if !strings.Contains(out, "calls=1") {
		t.Fatalf("reporter output = %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeEndpoints(t *testing.T) {
	c := NewCollector()
	c.TracerCalls.Add(7)
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "pilgrim_tracer_calls_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, `"pilgrim_tracer_calls_total": 7`) {
		t.Fatalf("/debug/vars missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Fatalf("index missing links:\n%s", out)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", NewCollector()); err == nil {
		t.Fatal("expected listen error")
	}
}

func TestShardHintDistinctStacks(t *testing.T) {
	// Different goroutines should usually land on different shards; at
	// minimum the hint must be stable within one goroutine.
	a := shardHint() & (histShards - 1)
	b := shardHint() & (histShards - 1)
	if a != b {
		t.Fatalf("shard hint unstable within goroutine: %d vs %d", a, b)
	}
}
