// Package metrics is Pilgrim's self-observability layer: a
// dependency-free, allocation-conscious metrics registry. The paper's
// headline claims are about the tracer's own behaviour — per-call
// overhead, fixed memory footprint, sub-linear trace growth (§4) — and
// this package makes those quantities visible while a job runs instead
// of only through the offline experiment harness.
//
// Primitives:
//
//   - Counter: a monotonically increasing atomic int64.
//   - Gauge: an atomic float64 (set/add), for sizes and ratios.
//   - GaugeFunc: a gauge evaluated at scrape time, for values that live
//     in someone else's data structure (CST length, grammar size).
//   - Histogram: lock-free and sharded, with exponential power-of-two
//     buckets — the same binning idea as internal/timing's ⌈log_b v⌉
//     compression, fixed at b = 2 so the hot path bins with
//     bits.Len64 instead of a logarithm.
//
// The hot path (Inc/Add/Observe) performs no allocations and takes no
// locks; registration and scraping are mutex-guarded. Output formats
// are Prometheus text exposition and an expvar-compatible JSON object.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// --- Counter -----------------------------------------------------------------

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// --- Gauge -------------------------------------------------------------------

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// --- Histogram ---------------------------------------------------------------

const (
	// histShards spreads concurrent observers over independent
	// cache-line-padded bucket arrays; the shard is picked from the
	// observer's stack address, so distinct goroutines tend to land on
	// distinct shards without any shared rendezvous state.
	histShards = 8

	// histBuckets power-of-two buckets: bucket i counts values v with
	// bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i. 40 buckets cover
	// nanosecond observations up to ~18 minutes; larger values clamp
	// into the last bucket.
	histBuckets = 40
)

type histShard struct {
	// No separate observation counter: the count is the sum of the
	// bucket counts, paid for at scrape time instead of per-observe.
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	_       [64]byte // keep shards on separate cache lines
}

// Histogram is a lock-free sharded histogram with exponential
// (power-of-two) buckets.
type Histogram struct {
	shards [histShards]histShard
}

// shardHint derives a shard index from the caller's stack address:
// goroutine stacks are distinct allocations, so concurrent observers
// scatter across shards with zero coordination.
func shardHint() uint64 {
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	return (p >> 10) ^ (p >> 17)
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1, i) - 1 // 2^i - 1
}

// Observe records one value. Lock-free and allocation-free: one
// bucket increment and one sum add on a stack-address-picked shard.
func (h *Histogram) Observe(v int64) {
	h.observeShard(shardHint()&(histShards-1), v)
}

func (h *Histogram) observeShard(i uint64, v int64) {
	s := &h.shards[i]
	s.sum.Add(v)
	s.buckets[bucketOf(v)].Add(1)
}

// HistogramSnapshot is a point-in-time merge of all shards.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Snapshot merges all shards. Each shard is read atomically; the merge
// across shards is not a single atomic cut, which is fine for
// monitoring (counts only ever grow).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1),
// resolved to the containing bucket's bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

// --- Registry ----------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
	kindInfo
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge" // gauges, gauge funcs, and info metrics
}

// family is one named metric family, scalar or with one label key.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label key; "" for scalar families

	mu       sync.Mutex
	children map[string]any // label value ("" for scalar) -> metric
	order    []string
}

func (f *family) child(labelValue string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	c := mk()
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Registry holds metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("metrics: %q re-registered as %v/%q (was %v/%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label,
		children: make(map[string]any)}
	r.fams[name] = f
	return f
}

// Counter registers (or returns the existing) scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, "")
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, "")
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge evaluated at scrape time. Re-registering
// the same name replaces the function (a new run re-binds its probes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, "")
	f.mu.Lock()
	if _, ok := f.children[""]; !ok {
		f.order = append(f.order, "")
	}
	f.children[""] = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter evaluated at scrape time, for
// monotonic values that live in someone else's data structure (the
// flight recorder's dropped count). Re-registering the same name
// replaces the function, like GaugeFunc.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.family(name, help, kindCounterFunc, "")
	f.mu.Lock()
	if _, ok := f.children[""]; !ok {
		f.order = append(f.order, "")
	}
	f.children[""] = fn
	f.mu.Unlock()
}

// Info registers a constant gauge of value 1 whose labels carry the
// information — the Prometheus build-info idiom (pilgrim_build_info).
// kv is an ordered key, value, key, value... list, formatted into the
// label set once at registration. Re-registering replaces the labels.
func (r *Registry) Info(name, help string, kv ...string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: Info %q called with odd key/value list", name))
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	labels := strings.Join(parts, ",")
	f := r.family(name, help, kindInfo, "")
	f.mu.Lock()
	if _, ok := f.children[""]; !ok {
		f.order = append(f.order, "")
	}
	f.children[""] = labels
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) scalar histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.family(name, help, kindHistogram, "")
	return f.child("", func() any { return &Histogram{} }).(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, label)}
}

// With returns the child counter for a label value, creating it on
// first use. Callers on hot paths should resolve children up front.
func (v *CounterVec) With(value string) *Counter {
	return v.f.child(value, func() any { return &Counter{} }).(*Counter)
}

// Sum returns the total over all children.
func (v *CounterVec) Sum() int64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var n int64
	for _, c := range v.f.children {
		n += c.(*Counter).Load()
	}
	return n
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, label)}
}

// With returns the child gauge for a label value.
func (v *GaugeVec) With(value string) *Gauge {
	return v.f.child(value, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, label)}
}

// With returns the child histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.child(value, func() any { return &Histogram{} }).(*Histogram)
}

// sortedFamilies returns the families in name order (deterministic
// output for scrapes and tests).
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// snapshotChildren returns a family's children in insertion order.
func (f *family) snapshotChildren() (values []string, children []any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	values = append(values, f.order...)
	for _, v := range values {
		children = append(children, f.children[v])
	}
	return
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelPair renders {key="value"} (or "" for scalars), with extra
// appended inside the braces (for histogram le bounds).
func labelPair(key, value, extra string) string {
	switch {
	case key == "" && extra == "":
		return ""
	case key == "":
		return "{" + extra + "}"
	case extra == "":
		return fmt.Sprintf("{%s=%q}", key, escapeLabel(value))
	default:
		return fmt.Sprintf("{%s=%q,%s}", key, escapeLabel(value), extra)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		values, children := f.snapshotChildren()
		for i, lv := range values {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name,
					labelPair(f.label, lv, ""), children[i].(*Counter).Load())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name,
					labelPair(f.label, lv, ""), formatFloat(children[i].(*Gauge).Load()))
			case kindGaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name,
					labelPair(f.label, lv, ""), formatFloat(children[i].(func() float64)()))
			case kindCounterFunc:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name,
					labelPair(f.label, lv, ""), children[i].(func() int64)())
			case kindInfo:
				_, err = fmt.Fprintf(w, "%s%s 1\n", f.name,
					labelPair("", "", children[i].(string)))
			case kindHistogram:
				err = writePromHistogram(w, f, lv, children[i].(*Histogram))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, f *family, labelValue string, h *Histogram) error {
	s := h.Snapshot()
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if c == 0 && i != histBuckets-1 {
			continue // keep the exposition small: skip interior empty buckets
		}
		le := fmt.Sprintf("le=%q", formatFloat(bucketBound(i)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelPair(f.label, labelValue, le), cum); err != nil {
			return err
		}
	}
	lp := labelPair(f.label, labelValue, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lp, s.Count); err != nil {
		return err
	}
	lp = labelPair(f.label, labelValue, "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, lp, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, lp, s.Count)
	return err
}

// WriteExpvar renders the registry as one JSON object in the shape
// expvar serves at /debug/vars: {"name{label}": value, ...}.
// Histograms become {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,
// "p99":..}.
func (r *Registry) WriteExpvar(w io.Writer) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	first := true
	emit := func(key, val string) error {
		sep := ",\n"
		if first {
			sep = "\n"
			first = false
		}
		_, err := fmt.Fprintf(w, "%s%q: %s", sep, key, val)
		return err
	}
	for _, f := range r.sortedFamilies() {
		values, children := f.snapshotChildren()
		for i, lv := range values {
			key := f.name + labelPair(f.label, lv, "")
			var err error
			switch f.kind {
			case kindCounter:
				err = emit(key, strconv.FormatInt(children[i].(*Counter).Load(), 10))
			case kindGauge:
				err = emit(key, jsonFloat(children[i].(*Gauge).Load()))
			case kindGaugeFunc:
				err = emit(key, jsonFloat(children[i].(func() float64)()))
			case kindCounterFunc:
				err = emit(key, strconv.FormatInt(children[i].(func() int64)(), 10))
			case kindInfo:
				err = emit(f.name+labelPair("", "", children[i].(string)), "1")
			case kindHistogram:
				s := children[i].(*Histogram).Snapshot()
				err = emit(key, fmt.Sprintf(
					`{"count": %d, "sum": %d, "mean": %s, "p50": %s, "p95": %s, "p99": %s}`,
					s.Count, s.Sum, jsonFloat(s.Mean()),
					jsonFloat(s.Quantile(0.50)), jsonFloat(s.Quantile(0.95)), jsonFloat(s.Quantile(0.99))))
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// jsonFloat renders a float as valid JSON (NaN/Inf become 0).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return formatFloat(v)
}

// --- Report ------------------------------------------------------------------

// HistogramSummary is the JSON-friendly digest of one histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Report is a machine-readable snapshot of every metric, keyed by
// "name" or `name{label="value"}`. It is what pilgrim.RunSim returns
// in FinalizeStats.Metrics, pilgrim-trace -metrics-json writes, and
// pilgrim-bench embeds into BENCH_*.json.
type Report struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

func summarize(h *Histogram) HistogramSummary {
	s := h.Snapshot()
	return HistogramSummary{
		Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
		P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
	}
}

// Report snapshots every metric in the registry.
func (r *Registry) Report() *Report {
	rep := &Report{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	for _, f := range r.sortedFamilies() {
		values, children := f.snapshotChildren()
		for i, lv := range values {
			key := f.name + labelPair(f.label, lv, "")
			switch f.kind {
			case kindCounter:
				rep.Counters[key] = children[i].(*Counter).Load()
			case kindGauge:
				rep.Gauges[key] = children[i].(*Gauge).Load()
			case kindGaugeFunc:
				rep.Gauges[key] = children[i].(func() float64)()
			case kindCounterFunc:
				rep.Counters[key] = children[i].(func() int64)()
			case kindInfo:
				rep.Gauges[f.name+labelPair("", "", children[i].(string))] = 1
			case kindHistogram:
				rep.Histograms[key] = summarize(children[i].(*Histogram))
			}
		}
	}
	return rep
}
