package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live observability endpoint: Prometheus text at
// /metrics, an expvar-compatible JSON dump at /debug/vars, and the
// standard net/http/pprof handlers under /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr (host:port; port 0 picks a free
// one — read the bound address back with Addr). It returns as soon as
// the listener is up; requests are served in the background.
func Serve(addr string, c *Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		c.reg.WriteExpvar(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("pilgrim self-observability\n  /metrics      Prometheus text\n  /debug/vars   expvar JSON\n  /debug/pprof/ pprof\n"))
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
