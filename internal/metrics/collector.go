package metrics

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TracerStats is one tracer's live structural state, evaluated by a
// probe at scrape time (under the tracer's own lock, so scrapes are
// consistent with concurrent interception and Snapshot calls).
type TracerStats struct {
	Calls          int64
	CSTEntries     int
	GrammarRules   int
	GrammarSymbols int
	LiveSegments   int
}

func (a TracerStats) add(b TracerStats) TracerStats {
	a.Calls += b.Calls
	a.CSTEntries += b.CSTEntries
	a.GrammarRules += b.GrammarRules
	a.GrammarSymbols += b.GrammarSymbols
	a.LiveSegments += b.LiveSegments
	return a
}

// Collector is a run-scoped bundle of every Pilgrim metric family:
// pre-resolved hot-path handles for the tracer pipeline, the MPI
// runtime, and the trace writer, plus scrape-time probes into live
// tracer state. One Collector observes one run (or one experiment's
// sweep of runs — counters accumulate).
type Collector struct {
	reg   *Registry
	start time.Time

	// Tracer pipeline (internal/core hot path).
	TracerCalls   *Counter
	CSTHits       *Counter
	CSTMisses     *Counter
	PostNs        *Histogram
	StageEncodeNs *Histogram
	StageCSTNs    *Histogram
	StageCFGNs    *Histogram
	Snapshots     *Counter
	Salvages      *Counter

	// MPI runtime (mpi package).
	MsgsSent     *CounterVec // label: rank
	BytesSent    *CounterVec // label: rank
	Collectives  *CounterVec // label: rank
	BlockedNs    *Histogram
	FaultEvents  *CounterVec // label: kind (crash, delay-msg, drop-msg, coll-fail)
	RankFailures *CounterVec // label: kind (crash, abort, panic, revoked, other)
	Deadlocks    *Counter

	// Trace writer (finalize).
	SectionBytes     *GaugeVec // label: section (cst, cfg, duration, interval)
	TraceBytes       *Gauge
	RawBytes         *Gauge
	CompressionRatio *Gauge
	FinalizeNs       *GaugeVec // label: phase (intra, cst_merge, cfg_merge)
	FinalizedCalls   *Gauge

	// Scrape-time probes into live tracers. A short cache keeps one
	// scrape from walking every grammar once per gauge family.
	probeMu  sync.Mutex
	probes   map[int64]func() TracerStats
	probeSeq int64
	cached   TracerStats
	cachedAt time.Time
}

// NewCollector builds a collector with every family registered.
func NewCollector() *Collector {
	reg := NewRegistry()
	c := &Collector{
		reg:    reg,
		start:  time.Now(),
		probes: make(map[int64]func() TracerStats),

		TracerCalls:   reg.Counter("pilgrim_tracer_calls_total", "MPI calls intercepted and compressed (all ranks)"),
		CSTHits:       reg.Counter("pilgrim_tracer_cst_hits_total", "calls whose signature was already in the CST"),
		CSTMisses:     reg.Counter("pilgrim_tracer_cst_misses_total", "calls that created a new CST entry"),
		PostNs:        reg.Histogram("pilgrim_tracer_post_ns", "per-call tracing overhead, whole pipeline (ns)"),
		StageEncodeNs: reg.Histogram("pilgrim_tracer_encode_ns", "per-call parameter encoding time (ns)"),
		StageCSTNs:    reg.Histogram("pilgrim_tracer_cst_ns", "per-call CST lookup/insert time (ns)"),
		StageCFGNs:    reg.Histogram("pilgrim_tracer_cfg_ns", "per-call grammar growth time (ns)"),
		Snapshots:     reg.Counter("pilgrim_tracer_snapshots_total", "crash-consistent tracer snapshots taken"),
		Salvages:      reg.Counter("pilgrim_trace_salvages_total", "failure-path (salvage) finalizes performed"),

		MsgsSent:     reg.CounterVec("pilgrim_mpi_messages_total", "point-to-point messages posted", "rank"),
		BytesSent:    reg.CounterVec("pilgrim_mpi_bytes_total", "point-to-point payload bytes posted", "rank"),
		Collectives:  reg.CounterVec("pilgrim_mpi_collectives_total", "collective rendezvous participations", "rank"),
		BlockedNs:    reg.Histogram("pilgrim_mpi_blocked_ns", "wall time spent blocked in MPI operations (ns)"),
		FaultEvents:  reg.CounterVec("pilgrim_mpi_fault_events_total", "injected fault activations", "kind"),
		RankFailures: reg.CounterVec("pilgrim_mpi_rank_failures_total", "rank failures by classified kind", "kind"),
		Deadlocks:    reg.Counter("pilgrim_mpi_deadlocks_total", "runs halted by the deadlock/quiescence watchdog"),

		SectionBytes:     reg.GaugeVec("pilgrim_trace_section_bytes", "serialized trace section sizes at finalize", "section"),
		TraceBytes:       reg.Gauge("pilgrim_trace_bytes", "total serialized trace size at finalize"),
		RawBytes:         reg.Gauge("pilgrim_trace_raw_bytes", "estimated uncompressed signature-stream size"),
		CompressionRatio: reg.Gauge("pilgrim_trace_compression_ratio", "raw_bytes / trace_bytes at finalize"),
		FinalizeNs:       reg.GaugeVec("pilgrim_core_finalize_ns", "finalize time decomposition (ns)", "phase"),
		FinalizedCalls:   reg.Gauge("pilgrim_trace_total_calls", "calls covered by the finalized trace"),
	}
	reg.GaugeFunc("pilgrim_tracer_cst_entries", "live unique call signatures (all ranks)",
		func() float64 { return float64(c.probeTotals().CSTEntries) })
	reg.GaugeFunc("pilgrim_tracer_grammar_rules", "live grammar production rules (all ranks)",
		func() float64 { return float64(c.probeTotals().GrammarRules) })
	reg.GaugeFunc("pilgrim_tracer_grammar_symbols", "live grammar right-hand-side symbols (all ranks)",
		func() float64 { return float64(c.probeTotals().GrammarSymbols) })
	reg.GaugeFunc("pilgrim_tracer_mem_segments", "live tracked memory segments in the AVL trees (all ranks)",
		func() float64 { return float64(c.probeTotals().LiveSegments) })
	return c
}

// ObservePost records one intercepted call's stage decomposition into
// the four tracer histograms with a single shard pick — the batched
// form the tracer hot path uses instead of four Observe calls.
func (c *Collector) ObservePost(encNs, cstNs, cfgNs, totalNs int64) {
	i := shardHint() & (histShards - 1)
	c.StageEncodeNs.observeShard(i, encNs)
	c.StageCSTNs.observeShard(i, cstNs)
	c.StageCFGNs.observeShard(i, cfgNs)
	c.PostNs.observeShard(i, totalNs)
}

// Registry exposes the underlying registry (for serving and tests).
func (c *Collector) Registry() *Registry { return c.reg }

// Report snapshots every metric.
func (c *Collector) Report() *Report { return c.reg.Report() }

// AddTracerProbe registers a scrape-time probe into one tracer's live
// state and returns its removal function. pilgrim.RunSim registers one
// probe per rank and removes them after finalize, so a reused
// collector's gauges never double-count finished runs.
func (c *Collector) AddTracerProbe(f func() TracerStats) (remove func()) {
	c.probeMu.Lock()
	c.probeSeq++
	id := c.probeSeq
	c.probes[id] = f
	c.cachedAt = time.Time{}
	c.probeMu.Unlock()
	return func() {
		c.probeMu.Lock()
		delete(c.probes, id)
		c.cachedAt = time.Time{}
		c.probeMu.Unlock()
	}
}

// probeTotals sums every live probe, caching the walk briefly so one
// scrape evaluating four gauge families pays for it once.
func (c *Collector) probeTotals() TracerStats {
	c.probeMu.Lock()
	defer c.probeMu.Unlock()
	if !c.cachedAt.IsZero() && time.Since(c.cachedAt) < 20*time.Millisecond {
		return c.cached
	}
	var tot TracerStats
	for _, f := range c.probes {
		tot = tot.add(f())
	}
	c.cached = tot
	c.cachedAt = time.Now()
	return tot
}

// RecordTraceSections publishes the trace writer's per-section byte
// breakdown and compression ratio at finalize.
func (c *Collector) RecordTraceSections(cstB, cfgB, durB, intB, totalB int, rawB, totalCalls int64) {
	c.SectionBytes.With("cst").SetInt(int64(cstB))
	c.SectionBytes.With("cfg").SetInt(int64(cfgB))
	c.SectionBytes.With("duration").SetInt(int64(durB))
	c.SectionBytes.With("interval").SetInt(int64(intB))
	c.TraceBytes.SetInt(int64(totalB))
	c.RawBytes.SetInt(rawB)
	c.FinalizedCalls.SetInt(totalCalls)
	if totalB > 0 {
		c.CompressionRatio.Set(float64(rawB) / float64(totalB))
	}
}

// RecordFinalize publishes the finalize time decomposition.
func (c *Collector) RecordFinalize(intraNs, cstMergeNs, cfgMergeNs int64) {
	c.FinalizeNs.With("intra").SetInt(intraNs)
	c.FinalizeNs.With("cst_merge").SetInt(cstMergeNs)
	c.FinalizeNs.With("cfg_merge").SetInt(cfgMergeNs)
}

// StartReporter emits a one-line progress summary to w every interval
// until the returned stop function is called. Intended for long runs:
// the line compresses the tracer, MPI, and blocked-time families into
// something a human can tail.
func (c *Collector) StartReporter(w io.Writer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, c.ProgressLine())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ProgressLine renders the current one-line run summary.
func (c *Collector) ProgressLine() string {
	p := c.probeTotals()
	blocked := c.BlockedNs.Snapshot()
	return fmt.Sprintf(
		"pilgrim: +%.1fs calls=%d cst=%d rules=%d syms=%d segs=%d msgs=%d sentMB=%.2f colls=%d blocked.p95=%.2fms",
		time.Since(c.start).Seconds(),
		c.TracerCalls.Load(), p.CSTEntries, p.GrammarRules, p.GrammarSymbols, p.LiveSegments,
		c.MsgsSent.Sum(), float64(c.BytesSent.Sum())/1e6, c.Collectives.Sum(),
		blocked.Quantile(0.95)/1e6)
}
