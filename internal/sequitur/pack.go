package sequitur

import "fmt"

// Pack runs the paper's final Sequitur pass over a set of merged
// grammars (§3.5.2): the serialized integer arrays of all unique
// grammars are concatenated (with separators) into one symbol stream
// and compressed by another Sequitur grammar. Grammars from different
// ranks that share rules compress against each other even when they
// are not bytewise identical.
//
// Each int32 is split into two 16-bit halves (offset by +1) so the
// pack's terminals stay in [0, 65536]: terminal 0 is the grammar
// separator.
func Pack(gs []Serialized) Serialized {
	pg := New()
	for _, g := range gs {
		for _, v := range g {
			u := uint32(v)
			pg.Append(int32(u>>16) + 1)
			pg.Append(int32(u&0xFFFF) + 1)
		}
		pg.Append(0)
	}
	return pg.Serialize()
}

// Unpack reverses Pack.
func Unpack(pack Serialized) ([]Serialized, error) {
	var out []Serialized
	var cur []int32
	var hi int32 = -1
	bad := false
	pack.Walk(func(t int32, k int64) bool {
		for i := int64(0); i < k; i++ {
			switch {
			case t == 0:
				if hi >= 0 {
					bad = true
					return false
				}
				out = append(out, Serialized(cur))
				cur = nil
			case hi < 0:
				hi = t - 1
			default:
				cur = append(cur, int32(uint32(hi)<<16|uint32(t-1)))
				hi = -1
			}
		}
		return true
	})
	if bad || hi >= 0 || len(cur) != 0 {
		return nil, fmt.Errorf("sequitur: malformed grammar pack")
	}
	for i, g := range out {
		if len(g) == 0 {
			return nil, fmt.Errorf("sequitur: empty grammar %d in pack", i)
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("sequitur: pack grammar %d: %w", i, err)
		}
	}
	return out, nil
}
