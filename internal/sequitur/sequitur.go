// Package sequitur implements the Sequitur grammar-inference algorithm
// (Nevill-Manning & Witten, 1997) extended with the run-length
// ("repetition count") optimization used by Pilgrim (SC '21, §2.2):
// grammar symbols carry exponents, so a production A → B B becomes
// A → B², and a loop of N identical iterations compresses to a single
// O(1)-size rule A → Bᴺ instead of an O(log N) rule chain.
//
// The grammar is built incrementally, one terminal at a time, in
// amortized linear time. Two invariants are maintained, mirroring the
// paper:
//
//	P1 (digram uniqueness): no pair of adjacent symbols appears more
//	    than once in the grammar. Because adjacent equal symbols merge
//	    into one run-length symbol, a digram always joins two distinct
//	    symbols, so occurrences can never overlap.
//	P2 (rule utility): every rule is referenced either from more than
//	    one site, or from a single site with exponent > 1.
//
// Terminals are non-negative int32 values (Pilgrim uses CST terminal
// ids). Exponents are int64.
package sequitur

import "fmt"

// symbol is a node in a doubly linked rule body. A symbol is either a
// terminal (rule == nil) or a reference to a rule (rule != nil). Guard
// nodes delimit rule bodies; they are identified by owner != nil.
type symbol struct {
	next, prev *symbol
	value      int32 // terminal id when rule == nil
	exp        int64 // repetition count, >= 1
	rule       *Rule // referenced rule for non-terminals
	owner      *Rule // non-nil for guard nodes only
}

func (s *symbol) isGuard() bool { return s.owner != nil }

// alive reports whether s is still spliced into some rule body.
// Symbols removed by unlink have their links cleared.
func (s *symbol) alive() bool { return s.prev != nil && s.next != nil }

// sameKind reports whether two symbols refer to the same terminal or
// the same rule, ignoring exponents.
func (s *symbol) sameKind(o *symbol) bool {
	if s.rule != nil || o.rule != nil {
		return s.rule == o.rule
	}
	return s.value == o.value
}

// digram is the hash key for an adjacent symbol pair. Exponents are
// part of the identity: a³b and a²b are different digrams.
type digram struct {
	v1, v2 int32
	e1, e2 int64
	r1, r2 *Rule
}

func makeDigram(a, b *symbol) digram {
	return digram{v1: a.value, v2: b.value, e1: a.exp, e2: b.exp, r1: a.rule, r2: b.rule}
}

// Rule is a grammar production. The body is a circular doubly linked
// list threaded through a guard node.
type Rule struct {
	guard *symbol
	users map[*symbol]struct{} // occurrence sites (excludes the start rule, which has none)
	id    int                  // stable creation index, for deterministic serialization
	dead  bool
}

func (r *Rule) first() *symbol { return r.guard.next }
func (r *Rule) last() *symbol  { return r.guard.prev }

func (r *Rule) bodyLen() int {
	n := 0
	for s := r.first(); !s.isGuard(); s = s.next {
		n++
	}
	return n
}

// Grammar is an incrementally built context-free grammar that uniquely
// generates the sequence of terminals appended to it.
type Grammar struct {
	start   *Rule
	digrams map[digram]*symbol // digram -> first symbol of its unique occurrence
	nextID  int
	nTerms  int64 // number of terminals appended (uncompressed length)
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{digrams: make(map[digram]*symbol)}
	g.start = g.newRule()
	return g
}

func (g *Grammar) newRule() *Rule {
	r := &Rule{users: make(map[*symbol]struct{}), id: g.nextID}
	g.nextID++
	guard := &symbol{owner: r}
	guard.next = guard
	guard.prev = guard
	r.guard = guard
	return r
}

// InputLen returns the number of terminals appended so far (the length
// of the uncompressed sequence the grammar generates).
func (g *Grammar) InputLen() int64 { return g.nTerms }

// Append adds one terminal to the end of the sequence.
func (g *Grammar) Append(t int32) { g.AppendRun(t, 1) }

// AppendRun adds k consecutive copies of terminal t.
func (g *Grammar) AppendRun(t int32, k int64) {
	if k <= 0 {
		return
	}
	if t < 0 {
		panic("sequitur: negative terminal")
	}
	g.nTerms += k
	s := &symbol{value: t, exp: k}
	g.insertAfter(g.start.last(), s)
	g.linkMade(s.prev, s)
}

// insertAfter splices s into the list after pos. It does not perform
// digram bookkeeping; callers use linkMade / removeDigram around it.
func (g *Grammar) insertAfter(pos, s *symbol) {
	s.prev = pos
	s.next = pos.next
	pos.next.prev = s
	pos.next = s
}

// unlink removes s from its list, removes the digrams it participates
// in from the index, and clears s's links so alive() turns false. The
// link formed between its old neighbours is NOT checked here.
func (g *Grammar) unlink(s *symbol) {
	g.removeDigram(s.prev, s)
	g.removeDigram(s, s.next)
	s.prev.next = s.next
	s.next.prev = s.prev
	s.prev = nil
	s.next = nil
}

// removeDigram deletes the digram (a,b) from the index if the indexed
// occurrence is exactly this one.
func (g *Grammar) removeDigram(a, b *symbol) {
	if a == nil || b == nil || a.isGuard() || b.isGuard() {
		return
	}
	d := makeDigram(a, b)
	if g.digrams[d] == a {
		delete(g.digrams, d)
	}
}

// deref removes s from the user set of the rule it references and
// inlines / eliminates that rule if it became useless (P2).
func (g *Grammar) deref(s *symbol) {
	r := s.rule
	if r == nil {
		return
	}
	delete(r.users, s)
	g.maybeInline(r)
}

// maybeInline enforces P2: if r has exactly one remaining use with
// exponent 1, the rule body is spliced in at that use and r deleted.
func (g *Grammar) maybeInline(r *Rule) {
	if r == g.start || r.dead || len(r.users) != 1 {
		return
	}
	var use *symbol
	for u := range r.users {
		use = u
	}
	if use.exp != 1 || !use.alive() {
		return
	}
	prev := use.prev
	next := use.next
	g.unlink(use)
	delete(r.users, use)
	r.dead = true
	first := r.first()
	last := r.last()
	if first.isGuard() {
		// Empty body (cannot normally happen); just close the gap.
		g.linkMade(prev, next)
		return
	}
	// Splice r's body between prev and next. Interior digrams stay
	// indexed and valid; only the two boundary links are new.
	prev.next = first
	first.prev = prev
	last.next = next
	next.prev = last
	if !g.linkMade(prev, first) && next.alive() {
		g.linkMade(next.prev, next)
	}
}

// linkMade is the heart of the algorithm: called whenever two symbols
// become adjacent. It merges equal neighbours (run-length) and
// otherwise enforces digram uniqueness (P1). It reports whether it
// restructured the grammar (merged, substituted, or cascaded); callers
// holding neighbouring pointers must treat them as stale when true.
func (g *Grammar) linkMade(a, b *symbol) bool {
	if a == nil || b == nil || a.isGuard() || b.isGuard() {
		return false
	}
	if !a.alive() || !b.alive() || a.next != b {
		return false
	}
	if a.sameKind(b) {
		g.mergeRun(a, b)
		return true
	}
	d := makeDigram(a, b)
	match, ok := g.digrams[d]
	if !ok {
		g.digrams[d] = a
		return false
	}
	if match == a {
		return false
	}
	if !match.alive() || match.next == nil || makeDigram(match, match.next) != d {
		// Stale index entry; repoint at the live occurrence.
		g.digrams[d] = a
		return false
	}
	g.processMatch(a, match)
	return true
}

// mergeRun implements the run-length optimization: aᶦ aʲ → aᶦ⁺ʲ.
func (g *Grammar) mergeRun(a, b *symbol) {
	// Digrams touching either symbol change identity; drop them first.
	g.removeDigram(a.prev, a)
	g.unlink(b) // removes (a,b) and (b,b.next) entries
	if b.rule != nil {
		delete(b.rule.users, b)
	}
	a.exp += b.exp
	// A body that collapsed to a single symbol makes its rule a unit
	// rule; eliminate it.
	if a.prev.isGuard() && a.next.isGuard() && a.prev.owner != g.start && !a.prev.owner.dead {
		g.eliminateUnitRule(a.prev.owner)
		return
	}
	if !g.linkMade(a.prev, a) && a.alive() {
		g.linkMade(a, a.next)
	}
}

// eliminateUnitRule removes a rule whose body is a single symbol Xᵉ by
// rewriting every use Rᵏ as Xᵉᵏ.
func (g *Grammar) eliminateUnitRule(r *Rule) {
	body := r.first()
	if body.isGuard() || !body.next.isGuard() {
		return // not a unit rule
	}
	r.dead = true
	inner := body
	users := make([]*symbol, 0, len(r.users))
	for u := range r.users {
		users = append(users, u)
	}
	for _, u := range users {
		delete(r.users, u)
		if !u.alive() {
			continue
		}
		g.removeDigram(u.prev, u)
		g.removeDigram(u, u.next)
		u.rule = inner.rule
		u.value = inner.value
		u.exp *= inner.exp
		if inner.rule != nil {
			inner.rule.users[u] = struct{}{}
		}
		if !g.linkMade(u.prev, u) && u.alive() {
			g.linkMade(u, u.next)
		}
	}
	// Drop the body symbol's own reference.
	if inner.rule != nil {
		delete(inner.rule.users, inner)
		g.maybeInline(inner.rule)
	}
}

// processMatch handles a repeated digram: (a, a.next) matches (m,
// m.next) elsewhere. Either reuse an existing 2-symbol rule or create
// a new one.
func (g *Grammar) processMatch(a, m *symbol) {
	if m.prev.isGuard() && m.next.next.isGuard() && !m.prev.owner.dead && m.prev.owner != g.start {
		// The match is the complete body of an existing rule: reuse it.
		g.substitute(a, m.prev.owner)
		return
	}
	// Create a new rule from copies of the digram.
	r := g.newRule()
	c1 := &symbol{value: a.value, exp: a.exp, rule: a.rule}
	c2 := &symbol{value: a.next.value, exp: a.next.exp, rule: a.next.rule}
	if c1.rule != nil {
		c1.rule.users[c1] = struct{}{}
	}
	if c2.rule != nil {
		c2.rule.users[c2] = struct{}{}
	}
	g.insertAfter(r.guard, c1)
	g.insertAfter(c1, c2)
	d := makeDigram(c1, c2)
	g.digrams[d] = c1 // rule body becomes the canonical occurrence
	// Replace the new occurrence first (its pointers are known live),
	// then the older one if cascades have not already consumed it.
	g.substitute(a, r)
	if m.alive() && m.next != nil && !m.next.isGuard() && makeDigram(m, m.next) == d && !r.dead {
		g.substitute(m, r)
	}
	if !r.dead {
		g.maybeInline(r)
	}
}

// substitute replaces the digram starting at s with a reference to
// rule r.
func (g *Grammar) substitute(s *symbol, r *Rule) {
	prev := s.prev
	b := s.next
	g.unlink(s)
	g.unlink(b)
	g.deref(s)
	g.deref(b)
	ref := &symbol{rule: r, exp: 1}
	r.users[ref] = struct{}{}
	g.insertAfter(prev, ref)
	// A 2-symbol body shrank to 1: unit rule, eliminate it.
	if prev.isGuard() && ref.next.isGuard() && prev.owner != g.start && !prev.owner.dead {
		g.eliminateUnitRule(prev.owner)
		return
	}
	if !g.linkMade(prev, ref) && ref.alive() {
		g.linkMade(ref, ref.next)
	}
}

// Walk streams the uncompressed sequence as (terminal, runLength)
// pairs. Consecutive pairs may repeat the same terminal (runs are not
// re-coalesced across rule boundaries). Walking stops early if yield
// returns false.
func (g *Grammar) Walk(yield func(t int32, k int64) bool) {
	g.walkRule(g.start, 1, yield)
}

func (g *Grammar) walkRule(r *Rule, times int64, yield func(int32, int64) bool) bool {
	for i := int64(0); i < times; i++ {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				if !g.walkRule(s.rule, s.exp, yield) {
					return false
				}
			} else if !yield(s.value, s.exp) {
				return false
			}
		}
	}
	return true
}

// Expand returns the full uncompressed terminal sequence. It panics if
// the sequence exceeds max elements (pass max <= 0 for no limit); use
// Walk for streaming access to huge sequences.
func (g *Grammar) Expand(max int64) []int32 {
	if max > 0 && g.nTerms > max {
		panic(fmt.Sprintf("sequitur: expansion of %d terminals exceeds cap %d", g.nTerms, max))
	}
	out := make([]int32, 0, g.nTerms)
	g.Walk(func(t int32, k int64) bool {
		for i := int64(0); i < k; i++ {
			out = append(out, t)
		}
		return true
	})
	return out
}

// Stats describes the size of a grammar.
type Stats struct {
	Rules       int   // number of productions, including the start rule
	Symbols     int   // total symbols on all right-hand sides
	InputLen    int64 // uncompressed sequence length
	SerializedB int   // size in bytes of Serialize() output
}

// Stats returns size statistics for the grammar.
func (g *Grammar) Stats() Stats {
	var st Stats
	st.InputLen = g.nTerms
	for _, r := range g.rulesInOrder() {
		st.Rules++
		st.Symbols += r.bodyLen()
	}
	st.SerializedB = len(g.Serialize()) * 4
	return st
}

// rulesInOrder returns the rules reachable from the start rule, start
// first, in deterministic DFS order.
func (g *Grammar) rulesInOrder() []*Rule {
	var order []*Rule
	seen := map[*Rule]bool{}
	var visit func(r *Rule)
	visit = func(r *Rule) {
		if seen[r] {
			return
		}
		seen[r] = true
		order = append(order, r)
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				visit(s.rule)
			}
		}
	}
	visit(g.start)
	return order
}
