package sequitur

import (
	"math/rand"
	"slices"
	"testing"
)

func mkSer(seq []int32) Serialized {
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	return Serialized(g.Serialize())
}

func TestPackUnpackRoundtrip(t *testing.T) {
	gs := []Serialized{
		mkSer([]int32{1, 2, 1, 2, 3}),
		mkSer([]int32{4}),
		mkSer(nil),
		mkSer([]int32{1, 2, 1, 2, 3}), // duplicate compresses in the pack
	}
	// Replace the empty grammar with a tiny one: packs of empty
	// grammars are legal too, but keep one realistic case.
	pack := Pack(gs)
	back, err := Unpack(pack)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(gs) {
		t.Fatalf("unpacked %d grammars, want %d", len(back), len(gs))
	}
	for i := range gs {
		if !slices.Equal(gs[i].Expand(0), back[i].Expand(0)) {
			t.Fatalf("grammar %d changed through pack", i)
		}
	}
}

func TestPackCompressesSimilarGrammars(t *testing.T) {
	// 64 grammars identical except the final terminal: the pack must
	// be much smaller than the raw concatenation.
	var gs []Serialized
	base := make([]int32, 0, 200)
	for i := 0; i < 100; i++ {
		base = append(base, int32(i%5), int32(i%3))
	}
	rawInts := 0
	for r := 0; r < 64; r++ {
		seq := append(append([]int32(nil), base...), int32(1000+r))
		g := mkSer(seq)
		gs = append(gs, g)
		rawInts += len(g)
	}
	pack := Pack(gs)
	if len(pack) >= rawInts {
		t.Fatalf("pack did not compress: %d ints vs raw %d", len(pack), rawInts)
	}
	if len(pack)*3 > rawInts {
		t.Fatalf("pack only reached %d of %d ints; expected >3x on near-identical grammars", len(pack), rawInts)
	}
	back, err := Unpack(pack)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if !slices.Equal(gs[i].Expand(0), back[i].Expand(0)) {
			t.Fatalf("grammar %d corrupted", i)
		}
	}
}

func TestPackRandomGrammars(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		var gs []Serialized
		for k := 0; k < 1+rng.Intn(8); k++ {
			n := rng.Intn(300)
			seq := make([]int32, n)
			for i := range seq {
				seq[i] = int32(rng.Intn(10))
			}
			gs = append(gs, mkSer(seq))
		}
		back, err := Unpack(Pack(gs))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(back) != len(gs) {
			t.Fatalf("trial %d: count mismatch", trial)
		}
		for i := range gs {
			if !slices.Equal(gs[i].Expand(0), back[i].Expand(0)) {
				t.Fatalf("trial %d grammar %d corrupted", trial, i)
			}
		}
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	// A grammar over odd half-symbols (missing low half).
	g := New()
	g.Append(5) // hi half with no lo half before separator
	g.Append(0)
	if _, err := Unpack(Serialized(g.Serialize())); err == nil {
		t.Error("dangling half-symbol accepted")
	}
	// Trailing partial grammar (no separator).
	g2 := New()
	g2.Append(1)
	g2.Append(1)
	if _, err := Unpack(Serialized(g2.Serialize())); err == nil {
		t.Error("missing final separator accepted")
	}
}

func TestPackEmptySet(t *testing.T) {
	back, err := Unpack(Pack(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("expected no grammars, got %d", len(back))
	}
}
