package sequitur

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"
)

// build appends seq to a fresh grammar.
func build(t *testing.T, seq []int32) *Grammar {
	t.Helper()
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	return g
}

// roundtrip asserts that the grammar regenerates exactly seq, both
// from the live structure and from the serialized form.
func roundtrip(t *testing.T, seq []int32) *Grammar {
	t.Helper()
	g := build(t, seq)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants after %d symbols: %v", len(seq), err)
	}
	got := g.Expand(0)
	if !slices.Equal(got, seq) {
		t.Fatalf("expand mismatch:\n got %v\nwant %v", got, seq)
	}
	sg := Serialized(g.Serialize())
	if err := sg.Validate(); err != nil {
		t.Fatalf("serialized validate: %v", err)
	}
	if got := sg.Expand(0); !slices.Equal(got, seq) {
		t.Fatalf("serialized expand mismatch:\n got %v\nwant %v", got, seq)
	}
	if n := sg.InputLen(); n != int64(len(seq)) {
		t.Fatalf("InputLen = %d, want %d", n, len(seq))
	}
	if n := g.InputLen(); n != int64(len(seq)) {
		t.Fatalf("grammar InputLen = %d, want %d", n, len(seq))
	}
	return g
}

func TestEmpty(t *testing.T) {
	g := New()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := g.Expand(0); len(got) != 0 {
		t.Fatalf("expected empty expansion, got %v", got)
	}
	sg := Serialized(g.Serialize())
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSymbol(t *testing.T) {
	roundtrip(t, []int32{7})
}

func TestTwoDistinct(t *testing.T) {
	roundtrip(t, []int32{1, 2})
}

func TestRunMerging(t *testing.T) {
	g := roundtrip(t, []int32{5, 5, 5, 5, 5, 5, 5})
	st := g.Stats()
	if st.Rules != 1 || st.Symbols != 1 {
		t.Fatalf("a^7 should be a single run symbol, got %+v", st)
	}
}

func TestAppendRun(t *testing.T) {
	g := New()
	g.AppendRun(3, 4)
	g.AppendRun(3, 6)
	g.Append(9)
	want := []int32{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 9}
	if got := g.Expand(0); !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Symbols != 2 {
		t.Fatalf("3^10 9 should be two symbols, got %+v", st)
	}
}

func TestAppendRunZeroIgnored(t *testing.T) {
	g := New()
	g.AppendRun(1, 0)
	g.AppendRun(1, -3)
	if g.InputLen() != 0 {
		t.Fatal("non-positive runs must be ignored")
	}
}

func TestNegativeTerminalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative terminal")
		}
	}()
	New().Append(-1)
}

func TestSimpleLoop(t *testing.T) {
	// (a b)^64 must compress to O(1) rules thanks to run-length.
	var seq []int32
	for i := 0; i < 64; i++ {
		seq = append(seq, 1, 2)
	}
	g := roundtrip(t, seq)
	st := g.Stats()
	if st.Rules > 3 || st.Symbols > 6 {
		t.Fatalf("(ab)^64 should be O(1) size, got %+v", st)
	}
}

func TestLoopConstantSpace(t *testing.T) {
	// The paper's claim: a loop of N identical iterations takes O(1)
	// rules (exponents hold the count). Sizes must not grow with N.
	sizes := map[int]int{}
	for _, n := range []int{16, 256, 4096, 65536} {
		g := New()
		for i := 0; i < n; i++ {
			g.Append(1)
			g.Append(2)
			g.Append(3)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sizes[n] = g.Stats().Symbols
	}
	if sizes[65536] != sizes[16] {
		t.Fatalf("grammar size grew with iteration count: %v", sizes)
	}
}

func TestNestedLoops(t *testing.T) {
	// ((a b)^8 c)^32: outer and inner loops both collapse.
	var seq []int32
	for o := 0; o < 32; o++ {
		for i := 0; i < 8; i++ {
			seq = append(seq, 1, 2)
		}
		seq = append(seq, 3)
	}
	g := roundtrip(t, seq)
	if st := g.Stats(); st.Symbols > 10 {
		t.Fatalf("nested loop grammar too large: %+v", st)
	}
}

func TestRuleReuse(t *testing.T) {
	// abcdbc: bc should become one rule reused.
	roundtrip(t, []int32{1, 2, 3, 4, 2, 3})
}

func TestRuleInlining(t *testing.T) {
	// Classic P2 exercise: abcdbcabcd — intermediate rules get formed
	// and partially inlined.
	roundtrip(t, []int32{1, 2, 3, 4, 2, 3, 1, 2, 3, 4})
}

func TestPaperExample(t *testing.T) {
	// Figure 1, rank 0: terminals 1 2 3 then 4^10.
	seq := []int32{1, 2, 3}
	for i := 0; i < 10; i++ {
		seq = append(seq, 4)
	}
	g := roundtrip(t, seq)
	if st := g.Stats(); st.Rules != 1 || st.Symbols != 4 {
		t.Fatalf("expected a single rule with 4 symbols, got %+v", st)
	}
}

func TestAlternatingPhases(t *testing.T) {
	// Two different loop bodies interleaved in phases, like an app
	// alternating compute/communicate epochs.
	var seq []int32
	for p := 0; p < 10; p++ {
		for i := 0; i < 20; i++ {
			seq = append(seq, 1, 2, 3)
		}
		for i := 0; i < 5; i++ {
			seq = append(seq, 7, 8)
		}
	}
	g := roundtrip(t, seq)
	if st := g.Stats(); st.Symbols > 20 {
		t.Fatalf("phase pattern should compress, got %+v", st)
	}
}

func TestRandomSmallAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		alpha := 1 + rng.Intn(5)
		seq := make([]int32, n)
		for i := range seq {
			seq[i] = int32(rng.Intn(alpha))
		}
		roundtrip(t, seq)
	}
}

func TestRandomRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := New()
		var want []int32
		for i := 0; i < 100; i++ {
			v := int32(rng.Intn(4))
			k := 1 + rng.Intn(6)
			g.AppendRun(v, int64(k))
			for j := 0; j < k; j++ {
				want = append(want, v)
			}
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := g.Expand(0); !slices.Equal(got, want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestInvariantsAfterEveryAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := make([]int32, 200)
	g := New()
	for i := range seq {
		seq[i] = int32(rng.Intn(3))
		g.Append(seq[i])
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("after symbol %d (%v): %v", i, seq[:i+1], err)
		}
	}
	if got := g.Expand(0); !slices.Equal(got, seq) {
		t.Fatal("final expansion mismatch")
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]int32, len(raw))
		for i, b := range raw {
			seq[i] = int32(b % 6)
		}
		g := New()
		for _, v := range seq {
			g.Append(v)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if !slices.Equal(g.Expand(0), seq) {
			return false
		}
		sg := Serialized(g.Serialize())
		return slices.Equal(sg.Expand(0), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicSerialization(t *testing.T) {
	// Same input sequence => identical serialized grammar (needed for
	// the inter-process identity fast path).
	f := func(raw []byte) bool {
		seq := make([]int32, len(raw))
		for i, b := range raw {
			seq[i] = int32(b % 5)
		}
		g1, g2 := New(), New()
		for _, v := range seq {
			g1.Append(v)
			g2.Append(v)
		}
		return reflect.DeepEqual(g1.Serialize(), g2.Serialize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	g := build(t, []int32{1, 2, 1, 2, 1, 2, 3})
	count := 0
	g.Walk(func(t int32, k int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walk did not stop early: %d", count)
	}
}

func TestExpandCap(t *testing.T) {
	g := build(t, []int32{1, 2, 3, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when exceeding cap")
		}
	}()
	g.Expand(2)
}

func TestSerializedRelabel(t *testing.T) {
	seq := []int32{0, 1, 0, 1, 2}
	g := build(t, seq)
	sg := Serialized(g.Serialize())
	m := []int32{10, 11, 12}
	rl, err := sg.Relabel(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{10, 11, 10, 11, 12}
	if got := rl.Expand(0); !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := sg.Relabel([]int32{1}); err == nil {
		t.Fatal("expected error for missing mapping")
	}
}

func TestConcatIdenticalAndDistinct(t *testing.T) {
	a := Serialized(build(t, []int32{1, 2, 1, 2}).Serialize())
	b := Serialized(build(t, []int32{3, 4}).Serialize())
	merged := Concat(a, b, a)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 1, 2, 3, 4, 1, 2, 1, 2}
	if got := merged.Expand(0); !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestConcatEmptyParts(t *testing.T) {
	empty := Serialized(New().Serialize())
	merged := Concat(empty, empty)
	if got := merged.Expand(0); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestRebuild(t *testing.T) {
	// Concat of many identical grammars should recompress massively.
	var seq []int32
	for i := 0; i < 50; i++ {
		seq = append(seq, 1, 2, 3)
	}
	one := Serialized(build(t, seq).Serialize())
	parts := make([]Serialized, 64)
	for i := range parts {
		parts[i] = one
	}
	merged := Concat(parts...)
	rebuilt := merged.Rebuild()
	if err := rebuilt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := rebuilt.InputLen(), int64(64*len(seq)); got != want {
		t.Fatalf("rebuilt InputLen %d want %d", got, want)
	}
	if rebuilt.Bytes() >= merged.Bytes() {
		t.Fatalf("rebuild did not shrink: %d -> %d", merged.Bytes(), rebuilt.Bytes())
	}
	if !slices.Equal(rebuilt.Expand(0), merged.Expand(0)) {
		t.Fatal("rebuild changed the sequence")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	bad := []Serialized{
		{},
		{0},
		{1, 2, 5, 1, 0}, // truncated
		{1, 1, -5, 1, 0},
		{1, 1, 3, 0, 0}, // exponent 0
		{2, 1, -1, 1, 0, 1, 4, 1, 0, 99},
	}
	for i, sg := range bad {
		if err := sg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestLongRandomStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		n := 20000
		alpha := 2 + rng.Intn(8)
		seq := make([]int32, n)
		for i := range seq {
			// Mix of random and looped regions to stress both paths.
			if rng.Intn(4) == 0 {
				seq[i] = int32(rng.Intn(alpha))
			} else {
				seq[i] = int32(i % 3)
			}
		}
		g := New()
		for _, v := range seq {
			g.Append(v)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !slices.Equal(g.Expand(0), seq) {
			t.Fatalf("trial %d: roundtrip failed", trial)
		}
	}
}
