package sequitur

import "fmt"

// CheckInvariants verifies the structural health of the grammar plus
// the two Sequitur properties. It is intended for tests; it is O(size
// of grammar).
func (g *Grammar) CheckInvariants() error {
	rules := g.rulesInOrder()
	type occ struct {
		rule int
		pos  int
	}
	digramsSeen := map[digram]occ{}
	refCount := map[*Rule]int{}
	refExpGT1 := map[*Rule]bool{}
	for ri, r := range rules {
		if r.dead {
			return fmt.Errorf("rule %d is dead but reachable", ri)
		}
		pos := 0
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.next.prev != s || s.prev.next != s {
				return fmt.Errorf("rule %d pos %d: broken links", ri, pos)
			}
			if s.exp < 1 {
				return fmt.Errorf("rule %d pos %d: exponent %d < 1", ri, pos, s.exp)
			}
			if s.rule != nil {
				if s.rule.dead {
					return fmt.Errorf("rule %d pos %d: references dead rule", ri, pos)
				}
				if _, ok := s.rule.users[s]; !ok {
					return fmt.Errorf("rule %d pos %d: missing from users set", ri, pos)
				}
				refCount[s.rule]++
				if s.exp > 1 {
					refExpGT1[s.rule] = true
				}
			}
			if !s.next.isGuard() {
				if s.sameKind(s.next) {
					return fmt.Errorf("rule %d pos %d: adjacent equal symbols not merged", ri, pos)
				}
				d := makeDigram(s, s.next)
				if prev, dup := digramsSeen[d]; dup {
					return fmt.Errorf("P1 violated: digram repeated (rule %d pos %d and rule %d pos %d)",
						prev.rule, prev.pos, ri, pos)
				}
				digramsSeen[d] = occ{ri, pos}
				if idx, ok := g.digrams[d]; ok && idx != s {
					return fmt.Errorf("rule %d pos %d: digram indexed at wrong occurrence", ri, pos)
				}
			}
			pos++
		}
		if r != g.start && pos == 0 {
			return fmt.Errorf("rule %d: empty body", ri)
		}
	}
	for i, r := range rules {
		if r == g.start {
			continue
		}
		if len(r.users) != refCount[r] {
			return fmt.Errorf("rule %d: users set size %d != observed references %d", i, len(r.users), refCount[r])
		}
		if refCount[r] == 0 {
			return fmt.Errorf("P2 violated: rule %d unreferenced", i)
		}
		if refCount[r] == 1 && !refExpGT1[r] {
			return fmt.Errorf("P2 violated: rule %d referenced once with exponent 1", i)
		}
		if refCount[r] == 1 && r.bodyLen() == 1 {
			return fmt.Errorf("rule %d: unreduced unit rule", i)
		}
	}
	return nil
}
