package sequitur

import (
	"fmt"
	"math"
)

// Serialized grammar layout (all int32, matching the paper's "array of
// integers" internal representation whose identity check is a memcmp):
//
//	[0]              number of rules R (start rule is rule 0)
//	then, per rule:  bodyLen N, then N symbol triples
//	symbol triple:   value, expLo, expHi
//
// value >= 0 is a terminal id; value < 0 is a rule reference encoding
// rule index i as -(i+1). The exponent is a 64-bit count split into two
// int32 halves (low 31 bits in expLo, rest in expHi) so the whole
// grammar remains a flat []int32 comparable with slices.Equal.

const expBase = 1 << 31

func encExp(e int64) (lo, hi int32) {
	return int32(e % expBase), int32(e / expBase)
}

func decExp(lo, hi int32) int64 {
	return int64(hi)*expBase + int64(lo)
}

// Serialize flattens the grammar into an []int32. Two grammars built
// from the same sequence of operations serialize identically, so the
// inter-process identity check is a plain slice comparison.
func (g *Grammar) Serialize() []int32 {
	rules := g.rulesInOrder()
	index := make(map[*Rule]int32, len(rules))
	for i, r := range rules {
		index[r] = int32(i)
	}
	out := make([]int32, 0, 1+len(rules)*4)
	out = append(out, int32(len(rules)))
	for _, r := range rules {
		n := int32(r.bodyLen())
		out = append(out, n)
		for s := r.first(); !s.isGuard(); s = s.next {
			v := s.value
			if s.rule != nil {
				v = -(index[s.rule] + 1)
			}
			lo, hi := encExp(s.exp)
			out = append(out, v, lo, hi)
		}
	}
	return out
}

// Serialized is a flattened grammar, the unit of inter-process
// compression: identical ranks compare equal bytewise.
type Serialized []int32

// Validate checks structural sanity of a serialized grammar.
func (sg Serialized) Validate() error {
	if len(sg) == 0 {
		return fmt.Errorf("sequitur: empty serialized grammar")
	}
	nRules := int(sg[0])
	if nRules < 1 {
		return fmt.Errorf("sequitur: %d rules", nRules)
	}
	p := 1
	for r := 0; r < nRules; r++ {
		if p >= len(sg) {
			return fmt.Errorf("sequitur: truncated at rule %d", r)
		}
		n := int(sg[p])
		p++
		if n < 0 {
			return fmt.Errorf("sequitur: rule %d negative body length", r)
		}
		for i := 0; i < n; i++ {
			if p+2 >= len(sg)+1 && p+2 > len(sg) {
				return fmt.Errorf("sequitur: truncated symbol in rule %d", r)
			}
			if p+3 > len(sg) {
				return fmt.Errorf("sequitur: truncated symbol in rule %d", r)
			}
			v := sg[p]
			if v < 0 {
				ref := int(-v - 1)
				if ref >= nRules {
					return fmt.Errorf("sequitur: rule %d references rule %d of %d", r, ref, nRules)
				}
			}
			if decExp(sg[p+1], sg[p+2]) < 1 {
				return fmt.Errorf("sequitur: rule %d symbol %d exponent < 1", r, i)
			}
			p += 3
		}
	}
	if p != len(sg) {
		return fmt.Errorf("sequitur: %d trailing ints", len(sg)-p)
	}
	// A valid grammar is acyclic (a cyclic one would make Walk/Expand
	// recurse forever — untrusted inputs must be rejected here).
	rules := sg.rules()
	state := make([]uint8, len(rules)) // 0 unvisited, 1 in-stack, 2 done
	var visit func(r int) error
	visit = func(r int) error {
		switch state[r] {
		case 1:
			return fmt.Errorf("sequitur: grammar is cyclic at rule %d", r)
		case 2:
			return nil
		}
		state[r] = 1
		for _, s := range rules[r] {
			if s.val < 0 {
				if err := visit(int(-s.val - 1)); err != nil {
					return err
				}
			}
		}
		state[r] = 2
		return nil
	}
	return visit(0)
}

// Bytes returns the serialized size in bytes.
func (sg Serialized) Bytes() int { return len(sg) * 4 }

// sym is a decoded serialized symbol.
type sym struct {
	val int32 // terminal >= 0, or rule ref encoded negative
	exp int64
}

// rules decodes the serialized form into per-rule symbol slices.
func (sg Serialized) rules() [][]sym {
	nRules := int(sg[0])
	out := make([][]sym, nRules)
	p := 1
	for r := 0; r < nRules; r++ {
		n := int(sg[p])
		p++
		body := make([]sym, n)
		for i := 0; i < n; i++ {
			body[i] = sym{val: sg[p], exp: decExp(sg[p+1], sg[p+2])}
			p += 3
		}
		out[r] = body
	}
	return out
}

func flatten(rules [][]sym) Serialized {
	out := make([]int32, 0, 1+len(rules)*4)
	out = append(out, int32(len(rules)))
	for _, body := range rules {
		out = append(out, int32(len(body)))
		for _, s := range body {
			lo, hi := encExp(s.exp)
			out = append(out, s.val, lo, hi)
		}
	}
	return out
}

// Relabel rewrites every terminal t as mapping[t], where mapping is
// the dense relabel slice the inter-process CST merge produced
// (terminals are contiguous, so index = old terminal). Terminals past
// the end of the mapping are an error.
func (sg Serialized) Relabel(mapping []int32) (Serialized, error) {
	rules := sg.rules()
	for _, body := range rules {
		for i, s := range body {
			if s.val >= 0 {
				if int(s.val) >= len(mapping) {
					return nil, fmt.Errorf("sequitur: relabel: no mapping for terminal %d", s.val)
				}
				body[i].val = mapping[s.val]
			}
		}
	}
	return flatten(rules), nil
}

// WalkSerialized streams the uncompressed terminal sequence of a
// serialized grammar without rebuilding the linked structure.
func (sg Serialized) Walk(yield func(t int32, k int64) bool) {
	rules := sg.rules()
	var walk func(r int, times int64) bool
	walk = func(r int, times int64) bool {
		for i := int64(0); i < times; i++ {
			for _, s := range rules[r] {
				if s.val < 0 {
					if !walk(int(-s.val-1), s.exp) {
						return false
					}
				} else if !yield(s.val, s.exp) {
					return false
				}
			}
		}
		return true
	}
	walk(0, 1)
}

// InputLen returns the uncompressed length generated by a serialized
// grammar (computed bottom-up, so exponential expansions stay cheap).
// Arithmetic saturates at MaxInt64: a corrupt grammar can encode
// expansions past int64, and a wrapped-negative length would slip
// under every size cap downstream.
func (sg Serialized) InputLen() int64 {
	rules := sg.rules()
	memo := make([]int64, len(rules))
	for i := range memo {
		memo[i] = -1
	}
	var size func(r int) int64
	size = func(r int) int64 {
		if memo[r] >= 0 {
			return memo[r]
		}
		memo[r] = 0 // break cycles defensively; valid grammars are acyclic
		var n int64
		for _, s := range rules[r] {
			if s.val < 0 {
				n = satAdd(n, satMul(s.exp, size(int(-s.val-1))))
			} else {
				n = satAdd(n, s.exp)
			}
		}
		memo[r] = n
		return n
	}
	return size(0)
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Expand materializes the uncompressed sequence (panics above max
// elements; max <= 0 disables the cap).
func (sg Serialized) Expand(max int64) []int32 {
	n := sg.InputLen()
	if max > 0 && n > max {
		panic(fmt.Sprintf("sequitur: expansion of %d terminals exceeds cap %d", n, max))
	}
	out := make([]int32, 0, n)
	sg.Walk(func(t int32, k int64) bool {
		for i := int64(0); i < k; i++ {
			out = append(out, t)
		}
		return true
	})
	return out
}

// Concat merges serialized grammars by renaming rule ids and creating
// a fresh start rule S → S₁ S₂ … Sₙ, the rename-and-concatenate step
// of Pilgrim's inter-process grammar merge (§3.5.2, Figure 4). The
// inputs' start rules become ordinary rules referenced once each.
func Concat(parts ...Serialized) Serialized {
	merged := make([][]sym, 1) // slot 0: new start rule
	start := make([]sym, 0, len(parts))
	for _, p := range parts {
		off := int32(len(merged))
		rules := p.rules()
		for _, body := range rules {
			nb := make([]sym, len(body))
			for i, s := range body {
				if s.val < 0 {
					nb[i] = sym{val: -((-s.val - 1 + off) + 1), exp: s.exp}
				} else {
					nb[i] = s
				}
			}
			merged = append(merged, nb)
		}
		start = append(start, sym{val: -(off + 1), exp: 1})
	}
	merged[0] = start
	return flatten(merged)
}

// Rebuild runs a fresh Sequitur pass over the terminal stream of a
// serialized grammar, the paper's "final Sequitur pass" after merging.
// It is only safe for sequences of moderate expanded length; callers
// that merged identical grammars avoid it by construction.
func (sg Serialized) Rebuild() Serialized {
	g := New()
	sg.Walk(func(t int32, k int64) bool {
		g.AppendRun(t, k)
		return true
	})
	return g.Serialize()
}

// Sym is the exported form of a serialized grammar symbol: Val is a
// terminal id when >= 0, otherwise a rule reference encoding rule
// index i as -(i+1); Exp is the repetition count.
type Sym struct {
	Val int32
	Exp int64
}

// Rules decodes the serialized grammar into per-rule symbol slices
// (rule 0 is the start rule). Used by consumers that mirror the
// grammar's structure, e.g. the mini-app source generator.
func (sg Serialized) Rules() [][]Sym {
	rs := sg.rules()
	out := make([][]Sym, len(rs))
	for i, body := range rs {
		ob := make([]Sym, len(body))
		for j, s := range body {
			ob[j] = Sym{Val: s.val, Exp: s.exp}
		}
		out[i] = ob
	}
	return out
}
