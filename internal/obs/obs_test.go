package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/traceevent"
)

func TestRecordAndSnapshotOrder(t *testing.T) {
	s := NewSink(64)
	for i := 0; i < 10; i++ {
		s.Start("cat", "ev").WithRun("run-a", i, 7).WithAttr("i", int64(i)).End()
	}
	s.Start("other", "blip").Emit()
	evs := s.Events()
	if len(evs) != 11 {
		t.Fatalf("got %d events, want 11", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[0].Run != "run-a" || evs[0].Rank != 0 || evs[0].Epoch != 7 {
		t.Fatalf("run identity lost: %+v", evs[0])
	}
	if evs[0].Phase != 'X' || evs[10].Phase != 'i' {
		t.Fatalf("phases wrong: %c %c", evs[0].Phase, evs[10].Phase)
	}
	if got := s.EventsForRun("run-a"); len(got) != 10 {
		t.Fatalf("EventsForRun: got %d, want 10", len(got))
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped %d without overflow", s.Dropped())
	}
}

func TestOverflowDropsOldest(t *testing.T) {
	const cap = 16
	s := NewSink(cap)
	for i := 0; i < 3*cap; i++ {
		s.Start("c", "e").WithAttr("i", int64(i)).End()
	}
	evs := s.Events()
	if len(evs) != cap {
		t.Fatalf("ring holds %d, want %d", len(evs), cap)
	}
	if got := s.Dropped(); got != 2*cap {
		t.Fatalf("dropped = %d, want %d", got, 2*cap)
	}
	// What survives is the newest events: every retained seq must be
	// from the last window per shard, so all attrs are >= cap.
	for _, ev := range evs {
		if ev.Attrs[0].Int < cap {
			t.Fatalf("oldest event %d survived a full overwrite cycle", ev.Attrs[0].Int)
		}
	}
	if s.Len() != cap {
		t.Fatalf("Len = %d, want %d", s.Len(), cap)
	}
}

// TestDisabledSinkZeroAllocs pins the disabled path: a nil sink must
// cost one nil check and zero allocations per call site, the same
// contract internal/metrics gives the tracer hot path.
func TestDisabledSinkZeroAllocs(t *testing.T) {
	var s *Sink
	n := testing.AllocsPerRun(1000, func() {
		sp := s.Start("cat", "name").WithRun("run", 3, 9).WithAttr("k", 1).WithStr("s", "v")
		sp.End()
		s.Start("cat", "instant").Emit()
		_ = s.Events()
		_ = s.Dropped()
		_ = s.Len()
	})
	if n != 0 {
		t.Fatalf("disabled sink allocates %.1f per op, want 0", n)
	}
}

// TestEnabledRecordZeroAllocs pins the enabled record path: the ring
// slot is preallocated, so Start/attrs/End allocate nothing.
func TestEnabledRecordZeroAllocs(t *testing.T) {
	s := NewSink(1024)
	n := testing.AllocsPerRun(1000, func() {
		s.Start("cat", "name").WithRun("run", 3, 9).WithAttr("k", 1).End()
	})
	if n != 0 {
		t.Fatalf("enabled record path allocates %.1f per op, want 0", n)
	}
}

func TestConcurrentRecord(t *testing.T) {
	s := NewSink(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Start("conc", "e").WithRun("r", g, 1).WithAttr("i", int64(i)).End()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 256 {
		t.Fatalf("Len = %d, want full ring 256", s.Len())
	}
	if s.Dropped() != 8*500-256 {
		t.Fatalf("dropped = %d, want %d", s.Dropped(), 8*500-256)
	}
	evs := s.Events()
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestTraceDocWellFormed(t *testing.T) {
	s := NewSink(8) // force drops so the drop marker is exercised
	for i := 0; i < 20; i++ {
		s.Start("collect", "ingest.snapshot").WithRun("run-x", i%4, 2).WithAttr("bytes", 100).End()
	}
	s.Start("client", "send").WithStr("result", "ok").Emit()

	var buf bytes.Buffer
	if err := s.TraceDoc().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceevent.Doc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid trace-event JSON: %v", err)
	}
	var spans, instants, metas int
	var sawDropMarker bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts < 0 {
				t.Fatalf("negative rebased timestamp: %+v", ev)
			}
		case "i":
			instants++
			if ev.Name == "obs.dropped" {
				sawDropMarker = true
			}
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans == 0 || instants == 0 || metas < 3 { // process + 2 category tracks
		t.Fatalf("doc shape wrong: %d spans, %d instants, %d metas", spans, instants, metas)
	}
	if !sawDropMarker {
		t.Fatal("overflowed ring produced no obs.dropped marker")
	}
}

func TestDumpFileAndAutoDump(t *testing.T) {
	dir := t.TempDir()
	s := NewSink(64)
	s.Start("collect", "conn").WithAttr("frames", 3).End()

	path := filepath.Join(dir, "flight-test.json")
	if err := s.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	validateDump(t, path)

	live := filepath.Join(dir, "flight-live.json")
	stop := s.AutoDump(live, 10*time.Millisecond)
	s.Start("collect", "ingest.snapshot").WithRun("r", 0, 1).End()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(live); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("autodump never wrote the live file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	validateDump(t, live)

	// stop() is idempotent and leaves a final consistent dump.
	stop()
	var doc traceevent.Doc
	data, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "ingest.snapshot" {
			found = true
		}
	}
	if !found {
		t.Fatal("final dump missing the event recorded after AutoDump started")
	}
}

func validateDump(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceevent.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s is not valid trace-event JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("%s has no events", path)
	}
}
