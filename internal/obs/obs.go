// Package obs is the pipeline's own observability spine: a
// low-overhead span tracer feeding a fixed-size, sharded ring-buffer
// flight recorder. Where internal/metrics answers "how much, how
// fast" in aggregate, obs keeps the causal record — what the
// collection pipeline itself was doing, per run, per rank, per epoch
// — in the same Chrome trace-event shape internal/analysis emits for
// MPI traces, so a slow finalize or a dead daemon is debugged with
// the same Perfetto timeline as the application it traced.
//
// Discipline mirrors internal/metrics: a nil *Sink disables
// everything at a single pointer check, the enabled record path takes
// one shard mutex and performs zero allocations, and the ring
// overwrites oldest-first on overflow (each overwrite counts into a
// dropped counter surfaced as pilgrim_obs_dropped_total).
package obs

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/traceevent"
)

// Attr is one typed span attribute: an int64 or a short string.
type Attr struct {
	Key string
	Int int64
	Str string
}

// maxAttrs bounds per-event attributes so Event stays a fixed-size,
// allocation-free value.
const maxAttrs = 4

// Event is one flight-recorder record: a completed span (Phase 'X')
// or an instant (Phase 'i'), stamped with the pipeline identity
// attributes (run, rank, epoch) when the site knows them.
type Event struct {
	Seq   uint64 // global record order (recording order, not start order)
	TsNs  int64  // start time, unix nanoseconds
	DurNs int64  // span duration; 0 for instants
	Phase byte   // 'X' complete span, 'i' instant
	Cat   string
	Name  string

	Run   string // "" when the event is not run-scoped
	Rank  int32  // -1 when not rank-scoped
	Epoch uint64

	NAttrs uint8
	Attrs  [maxAttrs]Attr
}

const shardCount = 4

// shard is one ring segment. head counts total writes; the next slot
// is head % len(buf), so once head passes len(buf) every write
// overwrites (drops) the shard's oldest event.
type shard struct {
	mu   sync.Mutex
	buf  []Event
	head uint64
	_    [64]byte // keep shard locks on separate cache lines
}

// Sink is the flight recorder. A nil *Sink is a valid, disabled sink:
// every method nil-checks first, so call sites carry no conditionals.
type Sink struct {
	shards  [shardCount]shard
	seq     atomic.Uint64
	dropped atomic.Int64
	created time.Time
}

// DefaultBuf is the default flight-recorder capacity in events.
const DefaultBuf = 4096

// NewSink builds a flight recorder holding up to bufEvents events
// (<= 0 means DefaultBuf). Memory is allocated up front and never
// grows: overflow drops oldest.
func NewSink(bufEvents int) *Sink {
	if bufEvents <= 0 {
		bufEvents = DefaultBuf
	}
	per := (bufEvents + shardCount - 1) / shardCount
	if per < 1 {
		per = 1
	}
	s := &Sink{created: time.Now()}
	for i := range s.shards {
		s.shards[i].buf = make([]Event, per)
	}
	return s
}

// record stamps the sequence number and writes ev into a ring shard.
// Shards are picked round-robin off the sequence counter, so
// concurrent recorders contend on different locks.
func (s *Sink) record(ev Event) {
	ev.Seq = s.seq.Add(1)
	sh := &s.shards[ev.Seq%shardCount]
	sh.mu.Lock()
	if sh.head >= uint64(len(sh.buf)) {
		s.dropped.Add(1) // the slot being overwritten held a live event
	}
	sh.buf[sh.head%uint64(len(sh.buf))] = ev
	sh.head++
	sh.mu.Unlock()
}

// Span is an in-flight event builder. The zero Span (from a nil Sink)
// is inert: every method returns immediately on the nil receiver
// inside, so disabled call sites cost one pointer check per call and
// zero allocations.
type Span struct {
	s  *Sink
	ev Event
}

// Start opens a span. End records it as a complete ('X') event; Emit
// records it as an instant instead (ignoring the elapsed time).
func (s *Sink) Start(cat, name string) Span {
	if s == nil {
		return Span{}
	}
	return Span{s: s, ev: Event{TsNs: time.Now().UnixNano(), Phase: 'X', Cat: cat, Name: name, Rank: -1}}
}

// WithRun stamps the span with pipeline identity: run ID, rank
// (negative for "not rank-scoped"), and epoch.
func (sp Span) WithRun(run string, rank int, epoch uint64) Span {
	if sp.s == nil {
		return sp
	}
	sp.ev.Run, sp.ev.Rank, sp.ev.Epoch = run, int32(rank), epoch
	return sp
}

// WithAttr attaches one integer attribute (silently dropped past
// maxAttrs — the recorder never allocates to accommodate more).
func (sp Span) WithAttr(key string, v int64) Span {
	if sp.s == nil || int(sp.ev.NAttrs) >= maxAttrs {
		return sp
	}
	sp.ev.Attrs[sp.ev.NAttrs] = Attr{Key: key, Int: v}
	sp.ev.NAttrs++
	return sp
}

// Attribute keys for cross-process span linking: a producer stamps
// its send span with AttrSpanID and propagates the same ID over the
// wire; the consumer stamps its spans with AttrParentSpan. BuildDoc
// turns matching pairs into Perfetto flow arrows.
const (
	AttrSpanID     = "span_id"
	AttrParentSpan = "parent_span"
)

// spanSeq + spanBase generate process-unique span IDs: a per-process
// random-ish base (clock and PID mixed through a Weyl constant) plus
// an atomic counter, masked to 62 bits so the ID survives an int64
// round trip through Attr and JSON untouched.
var (
	spanSeq  atomic.Uint64
	spanBase = (uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32) * 0x9e3779b97f4a7c15
)

// NextSpanID returns a fresh nonzero span ID, unique within the
// process and overwhelmingly likely unique across the fleet.
func NextSpanID() uint64 {
	id := (spanBase + spanSeq.Add(1)*0x9e3779b97f4a7c15) & (1<<62 - 1)
	if id == 0 {
		id = 1
	}
	return id
}

// WithSpanID stamps the span with its own propagatable identity
// (AttrSpanID). A zero ID is a no-op.
func (sp Span) WithSpanID(id uint64) Span {
	if id == 0 {
		return sp
	}
	return sp.WithAttr(AttrSpanID, int64(id))
}

// WithParent links the span to a remote parent span whose ID arrived
// over the wire (AttrParentSpan). A zero ID is a no-op.
func (sp Span) WithParent(id uint64) Span {
	if id == 0 {
		return sp
	}
	return sp.WithAttr(AttrParentSpan, int64(id))
}

// WithStr attaches one string attribute. The string must not be
// rebuilt per call on hot paths (use static literals or pre-interned
// values) or the call site, not the recorder, pays the allocation.
func (sp Span) WithStr(key, v string) Span {
	if sp.s == nil || int(sp.ev.NAttrs) >= maxAttrs {
		return sp
	}
	sp.ev.Attrs[sp.ev.NAttrs] = Attr{Key: key, Str: v}
	sp.ev.NAttrs++
	return sp
}

// End completes the span and records it.
func (sp Span) End() {
	if sp.s == nil {
		return
	}
	sp.ev.DurNs = time.Now().UnixNano() - sp.ev.TsNs
	sp.s.record(sp.ev)
}

// Emit records the span as an instant event at its start time.
func (sp Span) Emit() {
	if sp.s == nil {
		return
	}
	sp.ev.Phase = 'i'
	sp.s.record(sp.ev)
}

// Dropped returns how many events the ring overwrote before they were
// ever read (the pilgrim_obs_dropped_total value).
func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Len returns how many events the ring currently holds.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		c := sh.head
		if c > uint64(len(sh.buf)) {
			c = uint64(len(sh.buf))
		}
		n += int(c)
		sh.mu.Unlock()
	}
	return n
}

// Events snapshots the ring's current contents in recording order
// (ascending Seq). Scrape path: allocates freely.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		count := sh.head
		if count > n {
			count = n
		}
		start := sh.head - count
		for k := uint64(0); k < count; k++ {
			out = append(out, sh.buf[(start+k)%n])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EventsForRun snapshots only the events stamped with run (WithRun).
func (s *Sink) EventsForRun(run string) []Event {
	evs := s.Events()
	out := evs[:0]
	for _, ev := range evs {
		if ev.Run == run {
			out = append(out, ev)
		}
	}
	return out
}

// --- trace-event export ------------------------------------------------------

// TraceDoc renders the current ring contents as a Chrome trace-event
// document: one pid ("pilgrim-pipeline"), one tid per category (plus
// a drop marker when the ring has overwritten events). Timestamps are
// rebased to the earliest event so Perfetto opens at t=0.
func (s *Sink) TraceDoc() *traceevent.Doc {
	return BuildDoc(s.Events(), s.Dropped())
}

// BuildDoc renders an explicit event slice (e.g. one run's) as a
// trace-event document.
func BuildDoc(evs []Event, dropped int64) *traceevent.Doc {
	doc := traceevent.NewDoc()
	doc.Add(traceevent.ProcessName(0, "pilgrim-pipeline"))

	cats := map[string]int{}
	var catNames []string
	for _, ev := range evs {
		if _, ok := cats[ev.Cat]; !ok {
			cats[ev.Cat] = 0
			catNames = append(catNames, ev.Cat)
		}
	}
	sort.Strings(catNames)
	for i, c := range catNames {
		cats[c] = i
		doc.Add(traceevent.ThreadName(0, i, c))
	}

	var base int64
	for i, ev := range evs {
		if i == 0 || ev.TsNs < base {
			base = ev.TsNs
		}
	}
	// Cross-process span links: events carrying AttrSpanID are flow
	// sources (the producer's send span), events carrying AttrParentSpan
	// are flow destinations. Matching pairs become Perfetto flow arrows.
	type flowPoint struct {
		ts  float64
		tid int
	}
	flowSrc := map[int64]flowPoint{}
	type flowDst struct {
		id int64
		at flowPoint
	}
	var flowDsts []flowDst
	for _, ev := range evs {
		args := map[string]any{"seq": ev.Seq}
		if ev.Run != "" {
			args["run"] = ev.Run
			args["epoch"] = ev.Epoch
		}
		if ev.Rank >= 0 {
			args["rank"] = ev.Rank
		}
		for i := 0; i < int(ev.NAttrs); i++ {
			a := ev.Attrs[i]
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Int
			}
			switch a.Key {
			case AttrSpanID:
				// Anchor the arrow at the span's end: the frame left the
				// producer no earlier than the send span completed.
				flowSrc[a.Int] = flowPoint{traceevent.US(ev.TsNs - base + ev.DurNs), cats[ev.Cat]}
			case AttrParentSpan:
				flowDsts = append(flowDsts, flowDst{a.Int, flowPoint{traceevent.US(ev.TsNs - base), cats[ev.Cat]}})
			}
		}
		te := traceevent.Event{
			Name: ev.Name,
			Ts:   traceevent.US(ev.TsNs - base),
			Pid:  0, Tid: cats[ev.Cat],
			Cat:  ev.Cat,
			Args: args,
		}
		if ev.Phase == 'i' {
			te.Ph, te.S = "i", "t"
		} else {
			te.Ph, te.Dur = "X", traceevent.US(ev.DurNs)
		}
		doc.Add(te)
	}
	flowID := 0
	for _, dst := range flowDsts {
		src, ok := flowSrc[dst.id]
		if !ok {
			continue // producer span not in this ring (separate process dump)
		}
		flowID++
		doc.Add(
			traceevent.Event{Name: "span", Ph: "s", ID: flowID, Cat: "flow",
				Ts: src.ts, Pid: 0, Tid: src.tid},
			traceevent.Event{Name: "span", Ph: "f", BP: "e", ID: flowID, Cat: "flow",
				Ts: dst.at.ts, Pid: 0, Tid: dst.at.tid},
		)
	}
	if dropped > 0 {
		doc.Add(traceevent.Event{
			Name: "obs.dropped", Ph: "i", S: "p", Cat: "obs",
			Ts: 0, Pid: 0, Tid: 0,
			Args: map[string]any{"dropped_total": dropped},
		})
	}
	return doc
}

// DumpFile writes the flight recorder as trace-event JSON to path,
// atomically (tmp + rename), so a reader never observes a torn dump
// even if the writer dies mid-write.
func (s *Sink) DumpFile(path string) error {
	if s == nil {
		return nil
	}
	tmp := path + ".tmp." + strconv.Itoa(os.Getpid())
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	werr := s.TraceDoc().Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return os.Rename(tmp, path)
}

// AutoDump persists the flight recorder to path every interval until
// the returned stop func is called. This is what makes the recorder
// crash-dumpable through SIGKILL: the last completed dump survives no
// matter how the process dies. Dump errors are silently retried next
// tick — the recorder must never take the pipeline down.
func (s *Sink) AutoDump(path string, every time.Duration) (stop func()) {
	if s == nil || path == "" {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	os.MkdirAll(filepath.Dir(path), 0o755)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.DumpFile(path)
			case <-done:
				s.DumpFile(path) // final consistent dump on graceful stop
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
