// Package scalatrace is a model of ScalaTrace V4 used as the
// comparison baseline in the Figure 5-7 experiments, reproducing the
// design properties the paper attributes to it:
//
//   - it records only its supported function subset (~125 functions,
//     Table 1) — in particular no MPI_Test* family — and only a subset
//     of each call's parameters (no request tracking, no memory
//     pointers, datatypes by size only);
//   - source/destination ranks are location-independent (encoded
//     relative to the caller), which is why purely stencil-shaped
//     codes like LU compress to a constant;
//   - intra-process compression uses RSD-style loop folding over the
//     event stream (repeating blocks become (body, count) nodes);
//   - inter-process compression merges ranks only when their whole
//     compressed streams are identical; any per-rank parameter
//     variation forces per-rank storage, which is what drives the
//     near-linear growth the paper observes;
//   - events are stored as fixed-layout verbose records rather than
//     Pilgrim's deduplicated varint signatures.
//
// The tracer deliberately loses the information ScalaTrace loses: its
// output cannot reproduce completion orders (no Test*/request ids) nor
// buffer identities.
package scalatrace

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// eventBytes is the modeled verbose per-event record size before loop
// folding: a fixed header (function id, count, type size, peer, tag,
// comm) as stored by ScalaTrace's RSD nodes.
const eventBytes = 24

// loopNodeOverhead models the RSD bookkeeping per folded loop.
const loopNodeOverhead = 8

// event is one recorded call, already parameter-reduced. arrB is the
// byte volume of array-valued parameters (counts/displacements), which
// ScalaTrace stores verbatim in the event record.
type event struct {
	fn   mpispec.FuncID
	a, b int64 // count-like, peer/tag-like summaries
	c    int64
	arrB int64
}

// node is an RSD: either a single event (count==1, body nil) or a loop
// of a repeated block.
type node struct {
	ev    event
	body  []node
	count int64
}

func (n *node) isLoop() bool { return n.body != nil }

func nodesEqual(a, b []node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].count != b[i].count || a[i].isLoop() != b[i].isLoop() {
			return false
		}
		if a[i].isLoop() {
			if !nodesEqual(a[i].body, b[i].body) {
				return false
			}
		} else if a[i].ev != b[i].ev {
			return false
		}
	}
	return true
}

// maxWindow bounds the RSD loop-body length searched on each append.
// Application time-step bodies commonly span dozens of events (a
// StirTurb step is 33), so the window must comfortably exceed that.
const maxWindow = 128

// Tracer is one rank's ScalaTrace-model state. It implements
// mpispec.Interceptor.
type Tracer struct {
	Rank    int
	nodes   []node
	covered map[mpispec.FuncID]bool

	IntraNs  int64
	NCalls   int64 // calls seen (recorded or not)
	NDropped int64 // calls outside the supported subset
}

// NewTracer builds the baseline tracer for one rank.
func NewTracer(rank int) *Tracer {
	cov := mpispec.ScalaTraceCoverage()
	covered := make(map[mpispec.FuncID]bool, int(mpispec.NumFuncs))
	for id := mpispec.FuncID(0); id < mpispec.NumFuncs; id++ {
		covered[id] = cov.Supported[mpispec.Spec[id].Name]
	}
	return &Tracer{Rank: rank, covered: covered}
}

// Pre implements mpispec.Interceptor.
func (t *Tracer) Pre(rec *mpispec.CallRecord) {}

// MemAlloc implements mpispec.Interceptor (ScalaTrace does not track
// allocations).
func (t *Tracer) MemAlloc(addr, size uint64, device int32) {}

// MemFree implements mpispec.Interceptor.
func (t *Tracer) MemFree(addr uint64) {}

// Post implements mpispec.Interceptor: reduce the call to ScalaTrace's
// parameter subset and fold it into the RSD stream.
func (t *Tracer) Post(rec *mpispec.CallRecord) {
	w0 := time.Now()
	t.NCalls++
	if !t.covered[rec.Func] {
		t.NDropped++
		t.IntraNs += time.Since(w0).Nanoseconds()
		return
	}
	ev := t.reduce(rec)
	t.append(node{ev: ev, count: 1})
	t.IntraNs += time.Since(w0).Nanoseconds()
}

// reduce keeps the modeled parameter subset: function id, a count/size
// summary, a location-independent peer summary, and a tag/aux value.
// Array-valued parameters (e.g. alltoallv counts) are folded into a
// hash — they are per-rank data ScalaTrace stores in its event.
func (t *Tracer) reduce(rec *mpispec.CallRecord) event {
	spec := mpispec.Spec[rec.Func]
	base := int64(t.Rank)
	for _, a := range rec.Args {
		if a.Kind == mpispec.KComm && len(a.Arr) > 0 {
			base = a.Arr[0]
			break
		}
	}
	ev := event{fn: rec.Func}
	h := fnv.New64a()
	var scratch [8]byte
	for i, a := range rec.Args {
		var pname string
		if i < len(spec.Params) {
			pname = spec.Params[i].Name
		}
		switch a.Kind {
		case mpispec.KInt:
			ev.a = ev.a*31 + a.I
		case mpispec.KRank:
			// Location independent: store the delta.
			switch pname {
			case "dest", "source", "rank_source", "rank_dest":
				if a.I >= 0 {
					ev.b = ev.b*31 + (a.I - base)
				} else {
					ev.b = ev.b*31 + a.I
				}
			default:
				ev.b = ev.b*31 + a.I
			}
		case mpispec.KTag:
			ev.c = ev.c*31 + a.I // tags retained (our configuration)
		case mpispec.KDatatype:
			ev.a = ev.a*31 + a.I // "only the size": handle stands in
		case mpispec.KIntArray, mpispec.KIndexArray:
			ev.arrB += int64(4 * len(a.Arr))
			for _, v := range a.Arr {
				binary.LittleEndian.PutUint64(scratch[:], uint64(v))
				h.Write(scratch[:])
			}
		case mpispec.KComm:
			ev.a = ev.a*31 + a.I
			// KRequest, KReqArray, KStatus, KStatArray, KPtr, KString,
			// KColor, KKey: not preserved by the baseline.
		}
	}
	ev.c = ev.c*31 + int64(h.Sum64()&0xFFFFFFF)
	return ev
}

// append adds a node and greedily folds trailing repetitions (RSD
// construction): first extending an existing trailing loop, then
// searching for a new repeated block up to maxWindow nodes long.
func (t *Tracer) append(n node) {
	t.nodes = append(t.nodes, n)
	for t.fold() {
	}
}

// fold attempts one folding step on the tail; reports whether it
// changed anything.
func (t *Tracer) fold() bool {
	ns := t.nodes
	ln := len(ns)
	if ln >= 2 {
		// Merge equal neighbours (a loop of body length 1, or extend).
		a, b := &ns[ln-2], &ns[ln-1]
		if a.isLoop() && !b.isLoop() && len(a.body) == 1 && !a.body[0].isLoop() && a.body[0].ev == b.ev && b.count == 1 {
			a.count++
			t.nodes = ns[:ln-1]
			return true
		}
		if !a.isLoop() && !b.isLoop() && a.ev == b.ev {
			merged := node{body: []node{{ev: a.ev, count: 1}}, count: a.count + b.count}
			t.nodes = append(ns[:ln-2], merged)
			return true
		}
	}
	// Extend a loop when the block after it repeats its body.
	for w := 1; w <= maxWindow; w++ {
		if ln < w+1 {
			break
		}
		cand := ns[ln-w-1]
		if !cand.isLoop() || len(cand.body) != w {
			continue
		}
		if nodesEqual(cand.body, ns[ln-w:]) {
			cand.count++
			t.nodes = append(ns[:ln-w-1], cand)
			return true
		}
	}
	// Form a new loop from two adjacent equal blocks of width w >= 2.
	last := &ns[ln-1]
	for w := 2; w <= maxWindow; w++ {
		if ln < 2*w {
			break
		}
		// Cheap precheck: the block ends must match before paying for
		// the full O(w) comparison.
		cand := &ns[ln-w-1]
		if cand.isLoop() != last.isLoop() || cand.count != last.count ||
			(!cand.isLoop() && cand.ev != last.ev) {
			continue
		}
		if nodesEqual(ns[ln-2*w:ln-w], ns[ln-w:]) {
			body := make([]node, w)
			copy(body, ns[ln-2*w:ln-w])
			loop := node{body: body, count: 2}
			t.nodes = append(ns[:ln-2*w], loop)
			return true
		}
	}
	return false
}

// Bytes returns the modeled compressed size of this rank's stream.
func (t *Tracer) Bytes() int {
	return nodesBytes(t.nodes)
}

func nodesBytes(ns []node) int {
	total := 0
	for _, n := range ns {
		if n.isLoop() {
			total += loopNodeOverhead + nodesBytes(n.body)
		} else {
			total += eventBytes + int(n.ev.arrB)
		}
	}
	return total
}

// NumNodes returns the RSD node count (diagnostics).
func (t *Tracer) NumNodes() int { return len(t.nodes) }

// streamKey returns a canonical byte key of the compressed stream for
// the identity merge.
func (t *Tracer) streamKey() string {
	h := fnv.New64a()
	var buf [8]byte
	var walk func(ns []node)
	walk = func(ns []node) {
		for _, n := range ns {
			binary.LittleEndian.PutUint64(buf[:], uint64(n.count))
			h.Write(buf[:])
			if n.isLoop() {
				h.Write([]byte{1})
				walk(n.body)
				h.Write([]byte{2})
			} else {
				binary.LittleEndian.PutUint64(buf[:], uint64(n.ev.fn))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], uint64(n.ev.a))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], uint64(n.ev.b))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], uint64(n.ev.c))
				h.Write(buf[:])
			}
		}
	}
	walk(t.nodes)
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], h.Sum64())
	return string(out[:])
}

// Stats summarizes a finalized baseline trace.
type Stats struct {
	TraceBytes    int
	UniqueStreams int
	TotalCalls    int64
	Dropped       int64
	IntraNs       int64
	MergeNs       int64
}

// Finalize performs the baseline's inter-process compression: ranks
// with bytewise-identical compressed streams are stored once; all
// others are stored in full.
func Finalize(tracers []*Tracer) Stats {
	var st Stats
	t0 := time.Now()
	seen := map[string]bool{}
	for _, tr := range tracers {
		st.TotalCalls += tr.NCalls
		st.Dropped += tr.NDropped
		st.IntraNs += tr.IntraNs
		key := tr.streamKey()
		if seen[key] {
			st.TraceBytes += 4 // rank -> stream reference
			continue
		}
		seen[key] = true
		st.TraceBytes += tr.Bytes() + 16
	}
	st.UniqueStreams = len(seen)
	st.MergeNs = time.Since(t0).Nanoseconds()
	return st
}
