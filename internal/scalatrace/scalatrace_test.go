package scalatrace

import (
	"testing"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

func sendRec(rank int, dest, tag int64) *mpispec.CallRecord {
	return &mpispec.CallRecord{Func: mpispec.FSend, Rank: rank, Args: []mpispec.Value{
		{Kind: mpispec.KPtr, I: 0x1000},
		{Kind: mpispec.KInt, I: 4},
		{Kind: mpispec.KDatatype, I: 18},
		{Kind: mpispec.KRank, I: dest},
		{Kind: mpispec.KTag, I: tag},
		{Kind: mpispec.KComm, I: 1, Arr: []int64{int64(rank)}},
	}}
}

func testsomeRec(rank int) *mpispec.CallRecord {
	return &mpispec.CallRecord{Func: mpispec.FTestsome, Rank: rank, Args: []mpispec.Value{
		{Kind: mpispec.KInt, I: 3},
		{Kind: mpispec.KReqArray, Arr: []int64{1, 2, 3}},
		{Kind: mpispec.KInt, I: 1},
		{Kind: mpispec.KIndexArray, Arr: []int64{0}},
		{Kind: mpispec.KStatArray, Arr: []int64{1, 0}},
	}}
}

func TestDropsUncoveredFunctions(t *testing.T) {
	tr := NewTracer(0)
	tr.Post(testsomeRec(0))
	if tr.NDropped != 1 || tr.NumNodes() != 0 {
		t.Fatalf("Testsome must be dropped: dropped=%d nodes=%d", tr.NDropped, tr.NumNodes())
	}
	tr.Post(sendRec(0, 1, 0))
	if tr.NDropped != 1 || tr.NumNodes() != 1 {
		t.Fatal("Send must be recorded")
	}
}

func TestLoopFolding(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 1000; i++ {
		tr.Post(sendRec(0, 1, 0))
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("identical sends should fold into one loop: %d nodes", tr.NumNodes())
	}
	if tr.Bytes() > eventBytes+loopNodeOverhead {
		t.Fatalf("folded loop too large: %d bytes", tr.Bytes())
	}
}

func TestMultiEventLoopFolding(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 200; i++ {
		tr.Post(sendRec(0, 1, 0))
		tr.Post(sendRec(0, 2, 0))
		tr.Post(sendRec(0, 3, 0))
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("ABC loop should fold to one node, got %d", tr.NumNodes())
	}
	if tr.Bytes() > 3*eventBytes+2*loopNodeOverhead {
		t.Fatalf("ABC loop size %d", tr.Bytes())
	}
}

func TestRelativeEncodingInBaseline(t *testing.T) {
	// Stencil sends to rank+1 must produce identical streams across
	// ranks (ScalaTrace is location independent too).
	a := NewTracer(3)
	b := NewTracer(9)
	for i := 0; i < 10; i++ {
		a.Post(sendRec(3, 4, 0))
		b.Post(sendRec(9, 10, 0))
	}
	if a.streamKey() != b.streamKey() {
		t.Fatal("location-independent streams must match")
	}
}

func TestIdentityMergeOnly(t *testing.T) {
	// Ranks whose parameters differ (count arrays) are stored in full:
	// the source of the baseline's linear growth.
	mkAlltoallv := func(rank int, counts []int64) *mpispec.CallRecord {
		return &mpispec.CallRecord{Func: mpispec.FAlltoallv, Rank: rank, Args: []mpispec.Value{
			{Kind: mpispec.KPtr, I: 0x1000},
			{Kind: mpispec.KIntArray, Arr: counts},
			{Kind: mpispec.KIntArray, Arr: []int64{0, 1, 2}},
			{Kind: mpispec.KDatatype, I: 18},
			{Kind: mpispec.KPtr, I: 0x2000},
			{Kind: mpispec.KIntArray, Arr: counts},
			{Kind: mpispec.KIntArray, Arr: []int64{0, 1, 2}},
			{Kind: mpispec.KDatatype, I: 18},
			{Kind: mpispec.KComm, I: 1, Arr: []int64{int64(rank)}},
		}}
	}
	var tracers []*Tracer
	for r := 0; r < 8; r++ {
		tr := NewTracer(r)
		tr.Post(mkAlltoallv(r, []int64{int64(r), int64(r + 1), int64(r + 2)}))
		tracers = append(tracers, tr)
	}
	st := Finalize(tracers)
	if st.UniqueStreams != 8 {
		t.Fatalf("per-rank varying arrays must defeat the identity merge: %d unique", st.UniqueStreams)
	}
	// Identical ranks do merge.
	var same []*Tracer
	for r := 0; r < 8; r++ {
		tr := NewTracer(r)
		tr.Post(mkAlltoallv(r, []int64{5, 5, 5}))
		same = append(same, tr)
	}
	st2 := Finalize(same)
	if st2.UniqueStreams != 1 {
		t.Fatalf("identical ranks should merge: %d unique", st2.UniqueStreams)
	}
	if st2.TraceBytes >= st.TraceBytes {
		t.Fatal("merged trace should be smaller")
	}
}

func TestLinearGrowthWithVaryingRanks(t *testing.T) {
	size := func(n int) int {
		var tracers []*Tracer
		for r := 0; r < n; r++ {
			tr := NewTracer(r)
			for i := 0; i < 50; i++ {
				tr.Post(sendRec(r, int64(r+1), int64(r*100))) // rank-unique tag
			}
			tracers = append(tracers, tr)
		}
		return Finalize(tracers).TraceBytes
	}
	s8, s64 := size(8), size(64)
	if s64 < 6*s8 {
		t.Fatalf("expected near-linear growth: %d -> %d", s8, s64)
	}
}

func TestNestedLoopFolding(t *testing.T) {
	tr := NewTracer(0)
	for outer := 0; outer < 20; outer++ {
		for inner := 0; inner < 10; inner++ {
			tr.Post(sendRec(0, 1, 0))
			tr.Post(sendRec(0, 2, 0))
		}
		tr.Post(sendRec(0, 3, 7777))
	}
	if tr.NumNodes() > 2 {
		t.Fatalf("nested loops should fold: %d nodes", tr.NumNodes())
	}
}
