// Package mpispec is the machine-readable description of the MPI
// interface that drives Pilgrim's interception layer. The real tool
// generates its PMPI wrappers from the MPI 4.0 standard's LaTeX
// sources so that every function and every parameter (with its
// direction) is captured (§3.1); this package plays that role for the
// Go reproduction: it enumerates the full MPI 4.0 C function surface
// (for the Table 1 coverage comparison) and carries precise parameter
// metadata for the subset realized by the mpi simulator.
//
// It also defines the data contract between the simulator and any
// tracer: CallRecord (one fully-populated intercepted call) and the
// Interceptor/OOB interfaces (the prologue/epilogue hooks and the
// PMPI-level out-of-band collectives the tracer itself may issue).
package mpispec

// ParamKind classifies a parameter value for signature encoding.
// Kinds matter because Pilgrim encodes different kinds differently:
// ranks get relative encoding, object handles get symbolic ids,
// pointers get (segment, offset) pairs, and plain values are stored
// as-is.
type ParamKind uint8

const (
	KInt        ParamKind = iota // plain integer value (counts, sizes, flags…)
	KRank                        // a process rank: relative-encoded (§3.4.2)
	KTag                         // a message tag: relative-encodable
	KColor                       // split color: relative-encodable
	KKey                         // split key: relative-encodable
	KComm                        // communicator handle → global symbolic id (§3.3.1)
	KDatatype                    // datatype handle → symbolic id
	KOp                          // reduction op handle → symbolic id
	KGroup                       // group handle → symbolic id
	KRequest                     // request handle → per-signature symbolic id (§3.4.3)
	KReqArray                    // array of request handles
	KStatus                      // status: only SOURCE and TAG kept (§3.3.2)
	KStatArray                   // array of statuses
	KPtr                         // memory buffer pointer → (segment id, offset) (§3.3.3)
	KString                      // NUL-terminated string value
	KIntArray                    // array of integers (counts, displs, ranks…)
	KIndexArray                  // output array of completion indices
)

// String returns the kind name.
func (k ParamKind) String() string {
	names := [...]string{"Int", "Rank", "Tag", "Color", "Key", "Comm", "Datatype",
		"Op", "Group", "Request", "ReqArray", "Status", "StatArray", "Ptr",
		"String", "IntArray", "IndexArray"}
	if int(k) < len(names) {
		return names[k]
	}
	return "Unknown"
}

// Dir is a parameter direction as given by the MPI standard.
type Dir uint8

const (
	In Dir = iota
	Out
	InOut
)

// Param describes one formal parameter of an MPI function.
type Param struct {
	Name string
	Kind ParamKind
	Dir  Dir
}

// Value is one runtime argument captured at interception time. Exactly
// one of the payload fields is meaningful, chosen by Kind:
// scalars/handles use I, arrays use Arr, strings use S, statuses use
// Arr as [source, tag] pairs.
type Value struct {
	Kind ParamKind
	I    int64
	Arr  []int64
	S    string
}

// CallRecord is one intercepted MPI call with all argument values
// populated (input values at the prologue, output values by the
// epilogue), plus timing. Args follow the Spec parameter order.
type Value64 = int64

type CallRecord struct {
	Func   FuncID
	Args   []Value
	TStart int64 // call entry, virtual ns
	TEnd   int64 // call exit, virtual ns
	Rank   int   // calling rank in the world
}

// Interceptor is the PMPI-analog hook set. The simulator invokes Pre
// before executing a call and Post after outputs are filled in; rec is
// shared between the two. MemAlloc/MemFree mirror the malloc/free
// interception of §3.3.3.
type Interceptor interface {
	Pre(rec *CallRecord)
	Post(rec *CallRecord)
	MemAlloc(addr, size uint64, device int32)
	MemFree(addr uint64)
}

// ObjEvent describes object lifecycle for symbolic-id management:
// which argument positions of a call create or destroy objects.
type ObjEvent struct {
	Arg     int  // index into Args
	Creates bool // true: handle becomes live after the call
}

// OOB gives a tracer access to unintercepted ("PMPI-level")
// collectives for its own bookkeeping, e.g. agreeing on communicator
// symbolic ids (§3.3.1). Handles are the simulator's comm handles as
// seen in CallRecord values.
type OOB interface {
	// AllreduceMaxInt32 performs a blocking max-allreduce over the
	// group(s) of the communicator identified by handle. For
	// inter-communicators it operates over the union of both groups
	// (the "merge then allreduce" trick of §3.3.1).
	AllreduceMaxInt32(commHandle int64, v int32) int32
	// IAllreduceMaxInt32 starts a non-blocking max-allreduce and
	// returns a token to poll with PollOOB. Used for MPI_Comm_idup.
	IAllreduceMaxInt32(commHandle int64, v int32) int64
	// PollOOB reports whether the non-blocking OOB operation has
	// completed and, if so, its result.
	PollOOB(token int64) (done bool, result int32)
}
