package mpispec

// FuncID identifies an MPI function. Ids are stable: they index the
// Spec table and appear in call signatures and trace files.
type FuncID uint16

// Supported function ids (the subset realized by the mpi simulator;
// the tracer handles every one of these with full parameters).
const (
	FInit FuncID = iota
	FFinalize
	FInitialized
	FFinalized
	FAbort
	FCommSize
	FCommRank
	FGetProcessorName

	FSend
	FBsend
	FSsend
	FRsend
	FRecv
	FIsend
	FIbsend
	FIssend
	FIrsend
	FIrecv
	FSendrecv
	FSendrecvReplace
	FProbe
	FIprobe

	FWait
	FTest
	FWaitall
	FWaitany
	FWaitsome
	FTestall
	FTestany
	FTestsome
	FRequestFree
	FRequestGetStatus
	FCancel
	FSendInit
	FBsendInit
	FSsendInit
	FRsendInit
	FRecvInit
	FStart
	FStartall

	FBarrier
	FBcast
	FGather
	FGatherv
	FScatter
	FScatterv
	FAllgather
	FAllgatherv
	FAlltoall
	FAlltoallv
	FReduce
	FAllreduce
	FReduceScatter
	FReduceScatterBlock
	FScan
	FExscan
	FIbarrier
	FIbcast
	FIgather
	FIscatter
	FIallgather
	FIalltoall
	FIreduce
	FIallreduce

	FCommDup
	FCommIdup
	FCommSplit
	FCommSplitType
	FCommCreate
	FCommFree
	FCommGroup
	FCommCompare
	FCommSetName
	FCommGetName
	FCommTestInter
	FCommRemoteSize
	FIntercommCreate
	FIntercommMerge

	FGroupSize
	FGroupRank
	FGroupIncl
	FGroupExcl
	FGroupFree
	FGroupTranslateRanks
	FGroupUnion
	FGroupIntersection
	FGroupDifference

	FTypeContiguous
	FTypeVector
	FTypeIndexed
	FTypeCreateStruct
	FTypeCommit
	FTypeFree
	FTypeSize
	FTypeGetExtent
	FTypeDup
	FGetCount
	FGetElements

	FCartCreate
	FCartCoords
	FCartRank
	FCartShift
	FCartGet
	FCartdimGet
	FCartSub
	FDimsCreate

	FOpCreate
	FOpFree

	NumFuncs // sentinel: number of supported functions
)

// FuncSpec is the generated-wrapper metadata for one function.
type FuncSpec struct {
	ID     FuncID
	Name   string
	Params []Param
}

// p is a short constructor for Param literals.
func p(name string, kind ParamKind, dir Dir) Param { return Param{name, kind, dir} }

// Spec is the parameter table, indexed by FuncID. The parameter order
// matches the MPI C bindings; directions follow the standard.
var Spec = [NumFuncs]FuncSpec{
	FInit:             {FInit, "MPI_Init", nil},
	FFinalize:         {FFinalize, "MPI_Finalize", nil},
	FInitialized:      {FInitialized, "MPI_Initialized", []Param{p("flag", KInt, Out)}},
	FFinalized:        {FFinalized, "MPI_Finalized", []Param{p("flag", KInt, Out)}},
	FAbort:            {FAbort, "MPI_Abort", []Param{p("comm", KComm, In), p("errorcode", KInt, In)}},
	FCommSize:         {FCommSize, "MPI_Comm_size", []Param{p("comm", KComm, In), p("size", KInt, Out)}},
	FCommRank:         {FCommRank, "MPI_Comm_rank", []Param{p("comm", KComm, In), p("rank", KRank, Out)}},
	FGetProcessorName: {FGetProcessorName, "MPI_Get_processor_name", []Param{p("name", KString, Out), p("resultlen", KInt, Out)}},

	FSend:   {FSend, "MPI_Send", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In)}},
	FBsend:  {FBsend, "MPI_Bsend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In)}},
	FSsend:  {FSsend, "MPI_Ssend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In)}},
	FRsend:  {FRsend, "MPI_Rsend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In)}},
	FRecv:   {FRecv, "MPI_Recv", []Param{p("buf", KPtr, Out), p("count", KInt, In), p("datatype", KDatatype, In), p("source", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("status", KStatus, Out)}},
	FIsend:  {FIsend, "MPI_Isend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIbsend: {FIbsend, "MPI_Ibsend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIssend: {FIssend, "MPI_Issend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIrsend: {FIrsend, "MPI_Irsend", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIrecv:  {FIrecv, "MPI_Irecv", []Param{p("buf", KPtr, Out), p("count", KInt, In), p("datatype", KDatatype, In), p("source", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FSendrecv: {FSendrecv, "MPI_Sendrecv", []Param{
		p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In), p("dest", KRank, In), p("sendtag", KTag, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("source", KRank, In), p("recvtag", KTag, In),
		p("comm", KComm, In), p("status", KStatus, Out)}},
	FSendrecvReplace: {FSendrecvReplace, "MPI_Sendrecv_replace", []Param{
		p("buf", KPtr, InOut), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("sendtag", KTag, In),
		p("source", KRank, In), p("recvtag", KTag, In), p("comm", KComm, In), p("status", KStatus, Out)}},
	FProbe:  {FProbe, "MPI_Probe", []Param{p("source", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("status", KStatus, Out)}},
	FIprobe: {FIprobe, "MPI_Iprobe", []Param{p("source", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("flag", KInt, Out), p("status", KStatus, Out)}},

	FWait:    {FWait, "MPI_Wait", []Param{p("request", KRequest, InOut), p("status", KStatus, Out)}},
	FTest:    {FTest, "MPI_Test", []Param{p("request", KRequest, InOut), p("flag", KInt, Out), p("status", KStatus, Out)}},
	FWaitall: {FWaitall, "MPI_Waitall", []Param{p("count", KInt, In), p("requests", KReqArray, InOut), p("statuses", KStatArray, Out)}},
	FWaitany: {FWaitany, "MPI_Waitany", []Param{p("count", KInt, In), p("requests", KReqArray, InOut), p("index", KInt, Out), p("status", KStatus, Out)}},
	FWaitsome: {FWaitsome, "MPI_Waitsome", []Param{p("incount", KInt, In), p("requests", KReqArray, InOut),
		p("outcount", KInt, Out), p("indices", KIndexArray, Out), p("statuses", KStatArray, Out)}},
	FTestall: {FTestall, "MPI_Testall", []Param{p("count", KInt, In), p("requests", KReqArray, InOut), p("flag", KInt, Out), p("statuses", KStatArray, Out)}},
	FTestany: {FTestany, "MPI_Testany", []Param{p("count", KInt, In), p("requests", KReqArray, InOut), p("index", KInt, Out), p("flag", KInt, Out), p("status", KStatus, Out)}},
	FTestsome: {FTestsome, "MPI_Testsome", []Param{p("incount", KInt, In), p("requests", KReqArray, InOut),
		p("outcount", KInt, Out), p("indices", KIndexArray, Out), p("statuses", KStatArray, Out)}},
	FRequestFree:      {FRequestFree, "MPI_Request_free", []Param{p("request", KRequest, InOut)}},
	FRequestGetStatus: {FRequestGetStatus, "MPI_Request_get_status", []Param{p("request", KRequest, In), p("flag", KInt, Out), p("status", KStatus, Out)}},
	FCancel:           {FCancel, "MPI_Cancel", []Param{p("request", KRequest, In)}},
	FSendInit:         {FSendInit, "MPI_Send_init", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FBsendInit:        {FBsendInit, "MPI_Bsend_init", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FSsendInit:        {FSsendInit, "MPI_Ssend_init", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FRsendInit:        {FRsendInit, "MPI_Rsend_init", []Param{p("buf", KPtr, In), p("count", KInt, In), p("datatype", KDatatype, In), p("dest", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FRecvInit:         {FRecvInit, "MPI_Recv_init", []Param{p("buf", KPtr, Out), p("count", KInt, In), p("datatype", KDatatype, In), p("source", KRank, In), p("tag", KTag, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FStart:            {FStart, "MPI_Start", []Param{p("request", KRequest, InOut)}},
	FStartall:         {FStartall, "MPI_Startall", []Param{p("count", KInt, In), p("requests", KReqArray, InOut)}},

	FBarrier: {FBarrier, "MPI_Barrier", []Param{p("comm", KComm, In)}},
	FBcast:   {FBcast, "MPI_Bcast", []Param{p("buffer", KPtr, InOut), p("count", KInt, In), p("datatype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In)}},
	FGather: {FGather, "MPI_Gather", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In)}},
	FGatherv: {FGatherv, "MPI_Gatherv", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcounts", KIntArray, In), p("displs", KIntArray, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In)}},
	FScatter: {FScatter, "MPI_Scatter", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In)}},
	FScatterv: {FScatterv, "MPI_Scatterv", []Param{p("sendbuf", KPtr, In), p("sendcounts", KIntArray, In), p("displs", KIntArray, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In)}},
	FAllgather: {FAllgather, "MPI_Allgather", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("comm", KComm, In)}},
	FAllgatherv: {FAllgatherv, "MPI_Allgatherv", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcounts", KIntArray, In), p("displs", KIntArray, In), p("recvtype", KDatatype, In), p("comm", KComm, In)}},
	FAlltoall: {FAlltoall, "MPI_Alltoall", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("comm", KComm, In)}},
	FAlltoallv: {FAlltoallv, "MPI_Alltoallv", []Param{p("sendbuf", KPtr, In), p("sendcounts", KIntArray, In), p("sdispls", KIntArray, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcounts", KIntArray, In), p("rdispls", KIntArray, In), p("recvtype", KDatatype, In), p("comm", KComm, In)}},
	FReduce: {FReduce, "MPI_Reduce", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("root", KRank, In), p("comm", KComm, In)}},
	FAllreduce: {FAllreduce, "MPI_Allreduce", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In)}},
	FReduceScatter: {FReduceScatter, "MPI_Reduce_scatter", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("recvcounts", KIntArray, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In)}},
	FReduceScatterBlock: {FReduceScatterBlock, "MPI_Reduce_scatter_block", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("recvcount", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In)}},
	FScan: {FScan, "MPI_Scan", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In)}},
	FExscan: {FExscan, "MPI_Exscan", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In)}},
	FIbarrier: {FIbarrier, "MPI_Ibarrier", []Param{p("comm", KComm, In), p("request", KRequest, Out)}},
	FIbcast: {FIbcast, "MPI_Ibcast", []Param{p("buffer", KPtr, InOut), p("count", KInt, In), p("datatype", KDatatype, In),
		p("root", KRank, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIgather: {FIgather, "MPI_Igather", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIscatter: {FIscatter, "MPI_Iscatter", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("root", KRank, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIallgather: {FIallgather, "MPI_Iallgather", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIalltoall: {FIalltoall, "MPI_Ialltoall", []Param{p("sendbuf", KPtr, In), p("sendcount", KInt, In), p("sendtype", KDatatype, In),
		p("recvbuf", KPtr, Out), p("recvcount", KInt, In), p("recvtype", KDatatype, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIreduce: {FIreduce, "MPI_Ireduce", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("root", KRank, In), p("comm", KComm, In), p("request", KRequest, Out)}},
	FIallreduce: {FIallreduce, "MPI_Iallreduce", []Param{p("sendbuf", KPtr, In), p("recvbuf", KPtr, Out), p("count", KInt, In),
		p("datatype", KDatatype, In), p("op", KOp, In), p("comm", KComm, In), p("request", KRequest, Out)}},

	FCommDup:        {FCommDup, "MPI_Comm_dup", []Param{p("comm", KComm, In), p("newcomm", KComm, Out)}},
	FCommIdup:       {FCommIdup, "MPI_Comm_idup", []Param{p("comm", KComm, In), p("newcomm", KComm, Out), p("request", KRequest, Out)}},
	FCommSplit:      {FCommSplit, "MPI_Comm_split", []Param{p("comm", KComm, In), p("color", KColor, In), p("key", KKey, In), p("newcomm", KComm, Out)}},
	FCommSplitType:  {FCommSplitType, "MPI_Comm_split_type", []Param{p("comm", KComm, In), p("split_type", KInt, In), p("key", KKey, In), p("newcomm", KComm, Out)}},
	FCommCreate:     {FCommCreate, "MPI_Comm_create", []Param{p("comm", KComm, In), p("group", KGroup, In), p("newcomm", KComm, Out)}},
	FCommFree:       {FCommFree, "MPI_Comm_free", []Param{p("comm", KComm, InOut)}},
	FCommGroup:      {FCommGroup, "MPI_Comm_group", []Param{p("comm", KComm, In), p("group", KGroup, Out)}},
	FCommCompare:    {FCommCompare, "MPI_Comm_compare", []Param{p("comm1", KComm, In), p("comm2", KComm, In), p("result", KInt, Out)}},
	FCommSetName:    {FCommSetName, "MPI_Comm_set_name", []Param{p("comm", KComm, In), p("comm_name", KString, In)}},
	FCommGetName:    {FCommGetName, "MPI_Comm_get_name", []Param{p("comm", KComm, In), p("comm_name", KString, Out), p("resultlen", KInt, Out)}},
	FCommTestInter:  {FCommTestInter, "MPI_Comm_test_inter", []Param{p("comm", KComm, In), p("flag", KInt, Out)}},
	FCommRemoteSize: {FCommRemoteSize, "MPI_Comm_remote_size", []Param{p("comm", KComm, In), p("size", KInt, Out)}},
	FIntercommCreate: {FIntercommCreate, "MPI_Intercomm_create", []Param{p("local_comm", KComm, In), p("local_leader", KRank, In),
		p("peer_comm", KComm, In), p("remote_leader", KRank, In), p("tag", KTag, In), p("newintercomm", KComm, Out)}},
	FIntercommMerge: {FIntercommMerge, "MPI_Intercomm_merge", []Param{p("intercomm", KComm, In), p("high", KInt, In), p("newintracomm", KComm, Out)}},

	FGroupSize:           {FGroupSize, "MPI_Group_size", []Param{p("group", KGroup, In), p("size", KInt, Out)}},
	FGroupRank:           {FGroupRank, "MPI_Group_rank", []Param{p("group", KGroup, In), p("rank", KRank, Out)}},
	FGroupIncl:           {FGroupIncl, "MPI_Group_incl", []Param{p("group", KGroup, In), p("n", KInt, In), p("ranks", KIntArray, In), p("newgroup", KGroup, Out)}},
	FGroupExcl:           {FGroupExcl, "MPI_Group_excl", []Param{p("group", KGroup, In), p("n", KInt, In), p("ranks", KIntArray, In), p("newgroup", KGroup, Out)}},
	FGroupFree:           {FGroupFree, "MPI_Group_free", []Param{p("group", KGroup, InOut)}},
	FGroupTranslateRanks: {FGroupTranslateRanks, "MPI_Group_translate_ranks", []Param{p("group1", KGroup, In), p("n", KInt, In), p("ranks1", KIntArray, In), p("group2", KGroup, In), p("ranks2", KIntArray, Out)}},
	FGroupUnion:          {FGroupUnion, "MPI_Group_union", []Param{p("group1", KGroup, In), p("group2", KGroup, In), p("newgroup", KGroup, Out)}},
	FGroupIntersection:   {FGroupIntersection, "MPI_Group_intersection", []Param{p("group1", KGroup, In), p("group2", KGroup, In), p("newgroup", KGroup, Out)}},
	FGroupDifference:     {FGroupDifference, "MPI_Group_difference", []Param{p("group1", KGroup, In), p("group2", KGroup, In), p("newgroup", KGroup, Out)}},

	FTypeContiguous:   {FTypeContiguous, "MPI_Type_contiguous", []Param{p("count", KInt, In), p("oldtype", KDatatype, In), p("newtype", KDatatype, Out)}},
	FTypeVector:       {FTypeVector, "MPI_Type_vector", []Param{p("count", KInt, In), p("blocklength", KInt, In), p("stride", KInt, In), p("oldtype", KDatatype, In), p("newtype", KDatatype, Out)}},
	FTypeIndexed:      {FTypeIndexed, "MPI_Type_indexed", []Param{p("count", KInt, In), p("blocklengths", KIntArray, In), p("displacements", KIntArray, In), p("oldtype", KDatatype, In), p("newtype", KDatatype, Out)}},
	FTypeCreateStruct: {FTypeCreateStruct, "MPI_Type_create_struct", []Param{p("count", KInt, In), p("blocklengths", KIntArray, In), p("displacements", KIntArray, In), p("types", KIntArray, In), p("newtype", KDatatype, Out)}},
	FTypeCommit:       {FTypeCommit, "MPI_Type_commit", []Param{p("datatype", KDatatype, InOut)}},
	FTypeFree:         {FTypeFree, "MPI_Type_free", []Param{p("datatype", KDatatype, InOut)}},
	FTypeSize:         {FTypeSize, "MPI_Type_size", []Param{p("datatype", KDatatype, In), p("size", KInt, Out)}},
	FTypeGetExtent:    {FTypeGetExtent, "MPI_Type_get_extent", []Param{p("datatype", KDatatype, In), p("lb", KInt, Out), p("extent", KInt, Out)}},
	FTypeDup:          {FTypeDup, "MPI_Type_dup", []Param{p("oldtype", KDatatype, In), p("newtype", KDatatype, Out)}},
	FGetCount:         {FGetCount, "MPI_Get_count", []Param{p("status", KStatus, In), p("datatype", KDatatype, In), p("count", KInt, Out)}},
	FGetElements:      {FGetElements, "MPI_Get_elements", []Param{p("status", KStatus, In), p("datatype", KDatatype, In), p("count", KInt, Out)}},

	FCartCreate: {FCartCreate, "MPI_Cart_create", []Param{p("comm_old", KComm, In), p("ndims", KInt, In), p("dims", KIntArray, In),
		p("periods", KIntArray, In), p("reorder", KInt, In), p("comm_cart", KComm, Out)}},
	FCartCoords: {FCartCoords, "MPI_Cart_coords", []Param{p("comm", KComm, In), p("rank", KRank, In), p("maxdims", KInt, In), p("coords", KIntArray, Out)}},
	FCartRank:   {FCartRank, "MPI_Cart_rank", []Param{p("comm", KComm, In), p("coords", KIntArray, In), p("rank", KRank, Out)}},
	FCartShift:  {FCartShift, "MPI_Cart_shift", []Param{p("comm", KComm, In), p("direction", KInt, In), p("disp", KInt, In), p("rank_source", KRank, Out), p("rank_dest", KRank, Out)}},
	FCartGet:    {FCartGet, "MPI_Cart_get", []Param{p("comm", KComm, In), p("maxdims", KInt, In), p("dims", KIntArray, Out), p("periods", KIntArray, Out), p("coords", KIntArray, Out)}},
	FCartdimGet: {FCartdimGet, "MPI_Cartdim_get", []Param{p("comm", KComm, In), p("ndims", KInt, Out)}},
	FCartSub:    {FCartSub, "MPI_Cart_sub", []Param{p("comm", KComm, In), p("remain_dims", KIntArray, In), p("newcomm", KComm, Out)}},
	FDimsCreate: {FDimsCreate, "MPI_Dims_create", []Param{p("nnodes", KInt, In), p("ndims", KInt, In), p("dims", KIntArray, InOut)}},

	FOpCreate: {FOpCreate, "MPI_Op_create", []Param{p("user_fn", KInt, In), p("commute", KInt, In), p("op", KOp, Out)}},
	FOpFree:   {FOpFree, "MPI_Op_free", []Param{p("op", KOp, InOut)}},
}

// Name returns the MPI C name of a supported function.
func (id FuncID) Name() string {
	if int(id) < len(Spec) {
		return Spec[id].Name
	}
	return "MPI_<unknown>"
}

// byName maps MPI C names to ids for the supported subset.
var byName = func() map[string]FuncID {
	m := make(map[string]FuncID, NumFuncs)
	for _, s := range Spec {
		m[s.Name] = s.ID
	}
	return m
}()

// Lookup returns the FuncID for an MPI C function name.
func Lookup(name string) (FuncID, bool) {
	id, ok := byName[name]
	return id, ok
}
