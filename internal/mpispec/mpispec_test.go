package mpispec

import "testing"

func TestSpecComplete(t *testing.T) {
	for id := FuncID(0); id < NumFuncs; id++ {
		s := Spec[id]
		if s.Name == "" {
			t.Fatalf("func id %d has no spec entry", id)
		}
		if s.ID != id {
			t.Fatalf("spec[%d].ID = %d", id, s.ID)
		}
		if got, ok := Lookup(s.Name); !ok || got != id {
			t.Fatalf("Lookup(%s) = %d,%v want %d", s.Name, got, ok, id)
		}
	}
}

func TestSpecParamNamesUnique(t *testing.T) {
	for _, s := range Spec {
		seen := map[string]bool{}
		for _, pp := range s.Params {
			if pp.Name == "" {
				t.Fatalf("%s: unnamed parameter", s.Name)
			}
			if seen[pp.Name] {
				t.Fatalf("%s: duplicate parameter %q", s.Name, pp.Name)
			}
			seen[pp.Name] = true
		}
	}
}

func TestAllNamesNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range AllNames {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
	if len(AllNames) < 400 {
		t.Fatalf("modeled MPI surface too small: %d functions", len(AllNames))
	}
	t.Logf("modeled MPI function count: %d (paper: 446)", len(AllNames))
}

func TestSupportedSubsetOfAllNames(t *testing.T) {
	all := map[string]bool{}
	for _, n := range AllNames {
		all[n] = true
	}
	for _, s := range Spec {
		if !all[s.Name] {
			t.Errorf("supported function %s missing from AllNames", s.Name)
		}
	}
}

func TestCoverageOrdering(t *testing.T) {
	p := PilgrimCoverage().Count()
	s := ScalaTraceCoverage().Count()
	c := CypressCoverage().Count()
	if p != len(AllNames) {
		t.Fatalf("Pilgrim must cover all %d functions, got %d", len(AllNames), p)
	}
	if !(c < s && s < p) {
		t.Fatalf("expected Cypress < ScalaTrace < Pilgrim, got %d %d %d", c, s, p)
	}
	// Paper reports 56 / 125 / 446; the model should be in the same regime.
	if c < 30 || c > 90 {
		t.Errorf("Cypress model count %d far from paper's 56", c)
	}
	if s < 90 || s > 170 {
		t.Errorf("ScalaTrace model count %d far from paper's 125", s)
	}
	t.Logf("coverage: Cypress=%d ScalaTrace=%d Pilgrim=%d (paper: 56/125/446)", c, s, p)
}

func TestCoverageSubsets(t *testing.T) {
	st := ScalaTraceCoverage().Supported
	cy := CypressCoverage().Supported
	all := map[string]bool{}
	for _, n := range AllNames {
		all[n] = true
	}
	for n := range st {
		if !all[n] {
			t.Errorf("ScalaTrace covers unknown function %s", n)
		}
	}
	for n := range cy {
		if !all[n] {
			t.Errorf("Cypress covers unknown function %s", n)
		}
	}
	// The paper's Testxxx example: neither baseline records MPI_Testsome.
	for _, tool := range []map[string]bool{st, cy} {
		if tool["MPI_Testsome"] || tool["MPI_Testany"] || tool["MPI_Test"] {
			t.Error("baseline tools must not record MPI_Test* (paper §1)")
		}
	}
}

func TestParamKindString(t *testing.T) {
	if KRank.String() != "Rank" || KPtr.String() != "Ptr" {
		t.Fatal("ParamKind.String broken")
	}
	if ParamKind(200).String() != "Unknown" {
		t.Fatal("out-of-range kind should be Unknown")
	}
}
