package mpispec

// This file enumerates the MPI 4.0 C function surface (excluding
// MPI_Wtime and MPI_Wtick, as in the paper's Table 1) and models which
// functions each tracing tool records. The list is generated
// systematically from category tables plus variant expansion
// (nonblocking "I" prefixes, persistent "_init" suffixes), mirroring
// how Pilgrim generates wrappers from the standard's sources. The
// exact Cypress/ScalaTrace memberships in the paper were obtained by
// reading those tools' sources; here they are modeled by function
// class, which reproduces the paper's headline (Pilgrim: everything;
// ScalaTrace: ~1/4; Cypress: ~1/8).

// collectiveBases are the collectives that exist in blocking,
// nonblocking (I...) and persistent (..._init) forms in MPI 4.0.
var collectiveBases = []string{
	"Barrier", "Bcast", "Gather", "Gatherv", "Scatter", "Scatterv",
	"Allgather", "Allgatherv", "Alltoall", "Alltoallv", "Alltoallw",
	"Reduce", "Allreduce", "Reduce_scatter", "Reduce_scatter_block",
	"Scan", "Exscan",
}

var neighborBases = []string{
	"Neighbor_allgather", "Neighbor_allgatherv",
	"Neighbor_alltoall", "Neighbor_alltoallv", "Neighbor_alltoallw",
}

var p2pNames = []string{
	"MPI_Send", "MPI_Bsend", "MPI_Ssend", "MPI_Rsend", "MPI_Recv",
	"MPI_Isend", "MPI_Ibsend", "MPI_Issend", "MPI_Irsend", "MPI_Irecv",
	"MPI_Sendrecv", "MPI_Sendrecv_replace", "MPI_Isendrecv", "MPI_Isendrecv_replace",
	"MPI_Probe", "MPI_Iprobe", "MPI_Mprobe", "MPI_Improbe", "MPI_Mrecv", "MPI_Imrecv",
	"MPI_Send_init", "MPI_Bsend_init", "MPI_Ssend_init", "MPI_Rsend_init", "MPI_Recv_init",
	"MPI_Start", "MPI_Startall",
	"MPI_Psend_init", "MPI_Precv_init", "MPI_Pready", "MPI_Pready_list", "MPI_Pready_range", "MPI_Parrived",
	"MPI_Buffer_attach", "MPI_Buffer_detach",
}

var completionNames = []string{
	"MPI_Wait", "MPI_Test", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome",
	"MPI_Testall", "MPI_Testany", "MPI_Testsome",
	"MPI_Request_free", "MPI_Request_get_status", "MPI_Cancel", "MPI_Test_cancelled",
	"MPI_Grequest_start", "MPI_Grequest_complete",
}

var commGroupNames = []string{
	"MPI_Comm_size", "MPI_Comm_rank", "MPI_Comm_dup", "MPI_Comm_idup",
	"MPI_Comm_dup_with_info", "MPI_Comm_idup_with_info",
	"MPI_Comm_split", "MPI_Comm_split_type", "MPI_Comm_create", "MPI_Comm_create_group",
	"MPI_Comm_create_from_group", "MPI_Comm_free", "MPI_Comm_group", "MPI_Comm_compare",
	"MPI_Comm_set_name", "MPI_Comm_get_name", "MPI_Comm_set_info", "MPI_Comm_get_info",
	"MPI_Comm_set_attr", "MPI_Comm_get_attr", "MPI_Comm_delete_attr",
	"MPI_Comm_create_keyval", "MPI_Comm_free_keyval",
	"MPI_Comm_test_inter", "MPI_Comm_remote_size", "MPI_Comm_remote_group",
	"MPI_Intercomm_create", "MPI_Intercomm_create_from_groups", "MPI_Intercomm_merge",
	"MPI_Group_size", "MPI_Group_rank", "MPI_Group_incl", "MPI_Group_excl",
	"MPI_Group_range_incl", "MPI_Group_range_excl", "MPI_Group_free",
	"MPI_Group_translate_ranks", "MPI_Group_compare", "MPI_Group_union",
	"MPI_Group_intersection", "MPI_Group_difference", "MPI_Group_from_session_pset",
}

var datatypeNames = []string{
	"MPI_Type_contiguous", "MPI_Type_vector", "MPI_Type_create_hvector",
	"MPI_Type_indexed", "MPI_Type_create_hindexed", "MPI_Type_create_hindexed_block",
	"MPI_Type_create_indexed_block", "MPI_Type_create_struct", "MPI_Type_create_subarray",
	"MPI_Type_create_darray", "MPI_Type_create_resized", "MPI_Type_commit", "MPI_Type_free",
	"MPI_Type_dup", "MPI_Type_size", "MPI_Type_size_x", "MPI_Type_get_extent",
	"MPI_Type_get_extent_x", "MPI_Type_get_true_extent", "MPI_Type_get_true_extent_x",
	"MPI_Type_get_envelope", "MPI_Type_get_contents", "MPI_Type_get_name", "MPI_Type_set_name",
	"MPI_Type_set_attr", "MPI_Type_get_attr", "MPI_Type_delete_attr",
	"MPI_Type_create_keyval", "MPI_Type_free_keyval", "MPI_Type_match_size",
	"MPI_Get_count", "MPI_Get_elements", "MPI_Get_elements_x",
	"MPI_Pack", "MPI_Unpack", "MPI_Pack_size",
	"MPI_Pack_external", "MPI_Unpack_external", "MPI_Pack_external_size",
	"MPI_Get_address", "MPI_Aint_add", "MPI_Aint_diff",
	"MPI_Register_datarep",
}

var topologyNames = []string{
	"MPI_Cart_create", "MPI_Cart_coords", "MPI_Cart_rank", "MPI_Cart_shift",
	"MPI_Cart_get", "MPI_Cartdim_get", "MPI_Cart_sub", "MPI_Cart_map",
	"MPI_Dims_create", "MPI_Graph_create", "MPI_Graph_get", "MPI_Graphdims_get",
	"MPI_Graph_neighbors", "MPI_Graph_neighbors_count", "MPI_Graph_map",
	"MPI_Dist_graph_create", "MPI_Dist_graph_create_adjacent",
	"MPI_Dist_graph_neighbors", "MPI_Dist_graph_neighbors_count",
	"MPI_Topo_test",
}

var rmaNames = []string{
	"MPI_Win_create", "MPI_Win_create_dynamic", "MPI_Win_allocate",
	"MPI_Win_allocate_shared", "MPI_Win_shared_query", "MPI_Win_free",
	"MPI_Win_attach", "MPI_Win_detach", "MPI_Win_get_group",
	"MPI_Win_fence", "MPI_Win_start", "MPI_Win_complete", "MPI_Win_post", "MPI_Win_wait",
	"MPI_Win_test", "MPI_Win_lock", "MPI_Win_lock_all", "MPI_Win_unlock", "MPI_Win_unlock_all",
	"MPI_Win_flush", "MPI_Win_flush_all", "MPI_Win_flush_local", "MPI_Win_flush_local_all",
	"MPI_Win_sync", "MPI_Win_set_name", "MPI_Win_get_name",
	"MPI_Win_set_attr", "MPI_Win_get_attr", "MPI_Win_delete_attr",
	"MPI_Win_create_keyval", "MPI_Win_free_keyval",
	"MPI_Win_set_info", "MPI_Win_get_info",
	"MPI_Win_set_errhandler", "MPI_Win_get_errhandler", "MPI_Win_call_errhandler",
	"MPI_Win_create_errhandler",
	"MPI_Put", "MPI_Get", "MPI_Accumulate", "MPI_Get_accumulate",
	"MPI_Fetch_and_op", "MPI_Compare_and_swap",
	"MPI_Rput", "MPI_Rget", "MPI_Raccumulate", "MPI_Rget_accumulate",
}

var fileNames = []string{
	"MPI_File_open", "MPI_File_close", "MPI_File_delete", "MPI_File_set_size",
	"MPI_File_preallocate", "MPI_File_get_size", "MPI_File_get_group", "MPI_File_get_amode",
	"MPI_File_set_info", "MPI_File_get_info", "MPI_File_set_view", "MPI_File_get_view",
	"MPI_File_read_at", "MPI_File_read_at_all", "MPI_File_write_at", "MPI_File_write_at_all",
	"MPI_File_iread_at", "MPI_File_iwrite_at", "MPI_File_iread_at_all", "MPI_File_iwrite_at_all",
	"MPI_File_read", "MPI_File_read_all", "MPI_File_write", "MPI_File_write_all",
	"MPI_File_iread", "MPI_File_iwrite", "MPI_File_iread_all", "MPI_File_iwrite_all",
	"MPI_File_seek", "MPI_File_get_position", "MPI_File_get_byte_offset",
	"MPI_File_read_shared", "MPI_File_write_shared", "MPI_File_iread_shared", "MPI_File_iwrite_shared",
	"MPI_File_read_ordered", "MPI_File_write_ordered", "MPI_File_seek_shared",
	"MPI_File_get_position_shared", "MPI_File_read_at_all_begin", "MPI_File_read_at_all_end",
	"MPI_File_write_at_all_begin", "MPI_File_write_at_all_end",
	"MPI_File_read_all_begin", "MPI_File_read_all_end",
	"MPI_File_write_all_begin", "MPI_File_write_all_end",
	"MPI_File_read_ordered_begin", "MPI_File_read_ordered_end",
	"MPI_File_write_ordered_begin", "MPI_File_write_ordered_end",
	"MPI_File_get_type_extent", "MPI_File_set_atomicity", "MPI_File_get_atomicity", "MPI_File_sync",
	"MPI_File_set_errhandler", "MPI_File_get_errhandler", "MPI_File_call_errhandler",
	"MPI_File_create_errhandler",
}

var toolNames = []string{
	"MPI_T_init_thread", "MPI_T_finalize",
	"MPI_T_cvar_get_num", "MPI_T_cvar_get_info", "MPI_T_cvar_get_index",
	"MPI_T_cvar_handle_alloc", "MPI_T_cvar_handle_free", "MPI_T_cvar_read", "MPI_T_cvar_write",
	"MPI_T_pvar_get_num", "MPI_T_pvar_get_info", "MPI_T_pvar_get_index",
	"MPI_T_pvar_session_create", "MPI_T_pvar_session_free",
	"MPI_T_pvar_handle_alloc", "MPI_T_pvar_handle_free",
	"MPI_T_pvar_start", "MPI_T_pvar_stop", "MPI_T_pvar_read", "MPI_T_pvar_write",
	"MPI_T_pvar_reset", "MPI_T_pvar_readreset",
	"MPI_T_category_get_num", "MPI_T_category_get_info", "MPI_T_category_get_index",
	"MPI_T_category_get_cvars", "MPI_T_category_get_pvars", "MPI_T_category_get_categories",
	"MPI_T_category_changed", "MPI_T_category_get_num_events", "MPI_T_category_get_events",
	"MPI_T_enum_get_info", "MPI_T_enum_get_item",
	"MPI_T_event_get_num", "MPI_T_event_get_info", "MPI_T_event_get_index",
	"MPI_T_event_handle_alloc", "MPI_T_event_handle_set_info", "MPI_T_event_handle_get_info",
	"MPI_T_event_handle_free", "MPI_T_event_register_callback", "MPI_T_event_callback_set_info",
	"MPI_T_event_callback_get_info", "MPI_T_event_set_dropped_handler",
	"MPI_T_event_read", "MPI_T_event_copy", "MPI_T_event_get_timestamp",
	"MPI_T_event_get_source", "MPI_T_source_get_num", "MPI_T_source_get_info",
	"MPI_T_source_get_timestamp",
}

var envNames = []string{
	"MPI_Init", "MPI_Init_thread", "MPI_Finalize", "MPI_Initialized", "MPI_Finalized",
	"MPI_Abort", "MPI_Get_processor_name", "MPI_Get_version", "MPI_Get_library_version",
	"MPI_Query_thread", "MPI_Is_thread_main", "MPI_Pcontrol",
	"MPI_Get_hw_resource_info",
	"MPI_Session_init", "MPI_Session_finalize", "MPI_Session_get_num_psets",
	"MPI_Session_get_nth_pset", "MPI_Session_get_info", "MPI_Session_get_pset_info",
	"MPI_Session_set_errhandler", "MPI_Session_get_errhandler",
	"MPI_Session_call_errhandler", "MPI_Session_create_errhandler",
	"MPI_Info_create", "MPI_Info_create_env", "MPI_Info_delete", "MPI_Info_dup",
	"MPI_Info_free", "MPI_Info_get_nkeys", "MPI_Info_get_nthkey",
	"MPI_Info_get_string", "MPI_Info_set",
	"MPI_Errhandler_free", "MPI_Error_class", "MPI_Error_string",
	"MPI_Add_error_class", "MPI_Add_error_code", "MPI_Add_error_string",
	"MPI_Comm_set_errhandler", "MPI_Comm_get_errhandler", "MPI_Comm_call_errhandler",
	"MPI_Comm_create_errhandler",
	"MPI_Op_create", "MPI_Op_free", "MPI_Op_commutative", "MPI_Reduce_local",
	"MPI_Status_set_cancelled", "MPI_Status_set_elements", "MPI_Status_set_elements_x",
	"MPI_Status_f2c", "MPI_Status_c2f",
	"MPI_Comm_spawn", "MPI_Comm_spawn_multiple", "MPI_Comm_get_parent",
	"MPI_Comm_join", "MPI_Comm_accept", "MPI_Comm_connect", "MPI_Comm_disconnect",
	"MPI_Open_port", "MPI_Close_port", "MPI_Publish_name", "MPI_Unpublish_name",
	"MPI_Lookup_name",
}

// AllNames is the modeled MPI 4.0 C function list (excluding
// MPI_Wtime/MPI_Wtick).
var AllNames = buildAllNames()

func buildAllNames() []string {
	var out []string
	out = append(out, envNames...)
	out = append(out, p2pNames...)
	out = append(out, completionNames...)
	for _, b := range collectiveBases {
		out = append(out, "MPI_"+b, "MPI_I"+lower1(b), "MPI_"+b+"_init")
	}
	for _, b := range neighborBases {
		out = append(out, "MPI_"+b, "MPI_I"+lower1(b), "MPI_"+b+"_init")
	}
	out = append(out, commGroupNames...)
	out = append(out, datatypeNames...)
	out = append(out, topologyNames...)
	out = append(out, rmaNames...)
	out = append(out, fileNames...)
	out = append(out, toolNames...)
	return out
}

func lower1(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}

// Coverage models which tool records which functions, used by the
// Table 1 experiment.
type Coverage struct {
	Tool      string
	Supported map[string]bool
}

// PilgrimCoverage: every function.
func PilgrimCoverage() Coverage {
	m := make(map[string]bool, len(AllNames))
	for _, n := range AllNames {
		m[n] = true
	}
	return Coverage{Tool: "Pilgrim", Supported: m}
}

// ScalaTraceCoverage models ScalaTrace's ~125-function subset: p2p
// including nonblocking and waits, blocking collectives, basic comm,
// group and datatype management — but no MPI_Test* family, no RMA, no
// IO, no MPI_T.
func ScalaTraceCoverage() Coverage {
	m := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			m[n] = true
		}
	}
	add("MPI_Init", "MPI_Init_thread", "MPI_Finalize", "MPI_Abort",
		"MPI_Comm_size", "MPI_Comm_rank", "MPI_Get_processor_name")
	add(p2pNames[:27]...) // classic p2p incl. persistent, no partitioned
	add("MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome",
		"MPI_Request_free", "MPI_Cancel")
	for _, b := range collectiveBases {
		add("MPI_"+b, "MPI_I"+lower1(b))
	}
	add("MPI_Comm_dup", "MPI_Comm_split", "MPI_Comm_create", "MPI_Comm_free",
		"MPI_Comm_group", "MPI_Comm_compare", "MPI_Comm_test_inter",
		"MPI_Intercomm_create", "MPI_Intercomm_merge",
		"MPI_Group_size", "MPI_Group_rank", "MPI_Group_incl", "MPI_Group_excl",
		"MPI_Group_free", "MPI_Group_translate_ranks",
		"MPI_Group_union", "MPI_Group_intersection", "MPI_Group_difference")
	add("MPI_Type_contiguous", "MPI_Type_vector", "MPI_Type_indexed",
		"MPI_Type_create_struct", "MPI_Type_commit", "MPI_Type_free",
		"MPI_Type_size", "MPI_Type_get_extent", "MPI_Get_count",
		"MPI_Pack", "MPI_Unpack", "MPI_Pack_size")
	add("MPI_Cart_create", "MPI_Cart_coords", "MPI_Cart_rank", "MPI_Cart_shift",
		"MPI_Cart_get", "MPI_Cartdim_get", "MPI_Cart_sub", "MPI_Dims_create",
		"MPI_Graph_create", "MPI_Graph_neighbors", "MPI_Graph_neighbors_count")
	add("MPI_Op_create", "MPI_Op_free", "MPI_Scan", "MPI_Exscan")
	return Coverage{Tool: "ScalaTrace", Supported: m}
}

// CypressCoverage models Cypress's ~56-function subset: blocking and
// nonblocking p2p, Waitall/Wait, and the common blocking collectives.
// No MPI_Test*, no MPI_Request tracking, no persistent requests, no
// derived-type recreation (it keeps only the size).
func CypressCoverage() Coverage {
	m := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			m[n] = true
		}
	}
	add("MPI_Init", "MPI_Finalize", "MPI_Abort",
		"MPI_Comm_size", "MPI_Comm_rank")
	add("MPI_Send", "MPI_Bsend", "MPI_Ssend", "MPI_Rsend", "MPI_Recv",
		"MPI_Isend", "MPI_Ibsend", "MPI_Issend", "MPI_Irsend", "MPI_Irecv",
		"MPI_Sendrecv", "MPI_Sendrecv_replace", "MPI_Probe", "MPI_Iprobe")
	add("MPI_Wait", "MPI_Waitall", "MPI_Waitany")
	for _, b := range collectiveBases {
		add("MPI_" + b)
	}
	add("MPI_Comm_dup", "MPI_Comm_split", "MPI_Comm_create", "MPI_Comm_free")
	add("MPI_Type_contiguous", "MPI_Type_vector", "MPI_Type_commit", "MPI_Type_free",
		"MPI_Type_size", "MPI_Get_count")
	add("MPI_Cart_create", "MPI_Cart_shift", "MPI_Dims_create",
		"MPI_Barrier", "MPI_Op_create", "MPI_Op_free")
	return Coverage{Tool: "Cypress", Supported: m}
}

// Count returns how many of the modeled MPI functions the tool covers.
func (c Coverage) Count() int {
	n := 0
	for _, name := range AllNames {
		if c.Supported[name] {
			n++
		}
	}
	return n
}
