package otf_test

import (
	"bytes"
	"strings"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/otf"
	"github.com/hpcrepro/pilgrim/internal/workloads"
)

func TestConvertParseRoundtrip(t *testing.T) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 5})
	file, stats, err := pilgrim.Run(4, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := otf.Convert(file, &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "HDR\tpilgrim-otf\t1\t4") {
		t.Fatalf("bad header: %q", text[:40])
	}
	if !strings.Contains(text, "DEF\tFUNC") {
		t.Fatal("missing function definitions")
	}
	ranks, events, err := otf.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ranks != 4 {
		t.Fatalf("parsed %d ranks", ranks)
	}
	if int64(len(events)) != stats.TotalCalls {
		t.Fatalf("parsed %d events, traced %d calls", len(events), stats.TotalCalls)
	}
	// Events must be ordered per rank and reference known functions.
	lastSeq := map[int]int{}
	for _, ev := range events {
		if prev, ok := lastSeq[ev.Rank]; ok && ev.Seq != prev+1 {
			t.Fatalf("rank %d events out of order: %d after %d", ev.Rank, ev.Seq, prev)
		}
		lastSeq[ev.Rank] = ev.Seq
		if ev.Text == "" || !strings.HasPrefix(ev.Text, "MPI_") {
			t.Fatalf("bad event text %q", ev.Text)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := otf.Parse(strings.NewReader("XXX\tnope\n")); err == nil {
		t.Error("unknown record accepted")
	}
	if _, _, err := otf.Parse(strings.NewReader("HDR\twrong-format\t1\t4\t0\n")); err == nil {
		t.Error("wrong format name accepted")
	}
	if _, _, err := otf.Parse(strings.NewReader("EVT\t0\t0\n")); err == nil {
		t.Error("short event accepted")
	}
}
