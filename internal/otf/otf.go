// Package otf converts Pilgrim traces into a flat, OTF-inspired text
// event format, one event per line, so existing line-oriented analysis
// tooling can consume them. This realizes the conversion direction the
// paper lists as future work ("a converter that converts Pilgrim
// traces into some existing trace formats (e.g., OTF)").
//
// Format (tab separated):
//
//	HDR	pilgrim-otf	1	<ranks>	<timingMode>
//	DEF	FUNC	<id>	<name>
//	EVT	<rank>	<seq>	<tStart>	<tEnd>	<funcId>	<rendered call>
package otf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// Convert writes the whole trace as OTF-style text.
func Convert(f *trace.File, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "HDR\tpilgrim-otf\t1\t%d\t%d\n", f.NumRanks, f.TimingMode)
	// Function definitions used anywhere in the trace.
	used := map[mpispec.FuncID]bool{}
	perRank := make([][]core.DecodedCall, f.NumRanks)
	for r := 0; r < f.NumRanks; r++ {
		calls, err := core.DecodeRank(f, r)
		if err != nil {
			return err
		}
		perRank[r] = calls
		for _, c := range calls {
			used[c.Func] = true
		}
	}
	for id := mpispec.FuncID(0); id < mpispec.NumFuncs; id++ {
		if used[id] {
			fmt.Fprintf(bw, "DEF\tFUNC\t%d\t%s\n", id, id.Name())
		}
	}
	for r, calls := range perRank {
		for i, c := range calls {
			fmt.Fprintf(bw, "EVT\t%d\t%d\t%d\t%d\t%d\t%s\n",
				r, i, c.TStart, c.TEnd, c.Func, c.Decoded)
		}
	}
	return bw.Flush()
}

// Event is one parsed OTF-style event line.
type Event struct {
	Rank   int
	Seq    int
	TStart int64
	TEnd   int64
	Func   mpispec.FuncID
	Text   string
}

// Parse reads back the text format (used by tests and downstream
// tools that want structured access).
func Parse(r io.Reader) (ranks int, events []Event, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fields := strings.SplitN(line, "\t", 7)
		switch fields[0] {
		case "HDR":
			if len(fields) < 5 {
				return 0, nil, fmt.Errorf("otf: bad header at line %d", lineNo)
			}
			if fields[1] != "pilgrim-otf" {
				return 0, nil, fmt.Errorf("otf: unknown format %q", fields[1])
			}
			ranks, err = strconv.Atoi(fields[3])
			if err != nil {
				return 0, nil, fmt.Errorf("otf: bad rank count at line %d", lineNo)
			}
		case "DEF":
			// definitions are informational
		case "EVT":
			if len(fields) < 7 {
				return 0, nil, fmt.Errorf("otf: bad event at line %d", lineNo)
			}
			var ev Event
			ev.Rank, _ = strconv.Atoi(fields[1])
			ev.Seq, _ = strconv.Atoi(fields[2])
			ev.TStart, _ = strconv.ParseInt(fields[3], 10, 64)
			ev.TEnd, _ = strconv.ParseInt(fields[4], 10, 64)
			fid, _ := strconv.Atoi(fields[5])
			ev.Func = mpispec.FuncID(fid)
			ev.Text = fields[6]
			events = append(events, ev)
		default:
			return 0, nil, fmt.Errorf("otf: unknown record %q at line %d", fields[0], lineNo)
		}
	}
	return ranks, events, sc.Err()
}
