package traceevent

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestDocRoundtrip(t *testing.T) {
	doc := NewDoc()
	doc.Add(ProcessName(0, "pilgrim"))
	doc.Add(ThreadName(0, 3, "rank 3"))
	doc.Add(Event{Name: "MPI_Send", Ph: "X", Ts: US(1500), Dur: US(250), Tid: 3,
		Args: map[string]any{"call": 7}})
	doc.Add(Event{Name: "drop", Ph: "i", Ts: US(2000), Tid: 3, S: "t"})

	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got Doc
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(got.TraceEvents))
	}
	if got.TraceEvents[2].Ts != 1.5 || got.TraceEvents[2].Dur != 0.25 {
		t.Fatalf("µs conversion broken: ts=%v dur=%v", got.TraceEvents[2].Ts, got.TraceEvents[2].Dur)
	}
	for _, ev := range got.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", ev)
		}
	}
}
