// Package traceevent is the shared Chrome trace-event JSON writer:
// the lingua franca of timeline tooling (Perfetto, chrome://tracing,
// Pipit-style dataframe loaders). Two producers emit it — the
// post-mortem MPI analysis (internal/analysis) and the pipeline's own
// span tracer (internal/obs) — so the document shape lives here once.
//
// Timestamps are microseconds with fractional nanosecond resolution,
// per the trace-event spec.
package traceevent

import (
	"encoding/json"
	"io"
)

// Event is one trace-event record. The field set is the subset of the
// spec both producers use: complete spans ("X"), instants ("i"),
// metadata ("M"), and flow arrows ("s"/"f").
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: t(hread), p(rocess), g(lobal)
	Args map[string]any `json:"args,omitempty"`
}

// Doc is a complete trace-event document (the JSON-object form, which
// Perfetto and chrome://tracing both load).
type Doc struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// NewDoc returns an empty document displaying nanoseconds.
func NewDoc() *Doc { return &Doc{DisplayTimeUnit: "ns"} }

// Add appends events.
func (d *Doc) Add(evs ...Event) { d.TraceEvents = append(d.TraceEvents, evs...) }

// Write encodes the document as JSON.
func (d *Doc) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(d)
}

// US converts nanoseconds to the spec's microsecond unit.
func US(ns int64) float64 { return float64(ns) / 1e3 }

// ThreadName returns the metadata event naming a (pid, tid) track.
func ThreadName(pid, tid int, name string) Event {
	return Event{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

// ProcessName returns the metadata event naming a pid.
func ProcessName(pid int, name string) Event {
	return Event{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}
