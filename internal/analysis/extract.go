package analysis

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/sig"
)

// Point-to-point operation extraction: walks one rank's event stream
// and produces every posted send and receive with absolute (world)
// peer ranks, payload bytes, and post/completion times. Nonblocking
// operations are tracked through the request id space exactly as the
// replay interpreter does — FIFO per symbolic id, with persistent
// templates instantiated by Start/Startall — so completion calls
// (Wait/Test families) attach their times and recorded statuses to
// the right posts.

// SendOp is one posted point-to-point send.
type SendOp struct {
	Rank      int // sender world rank
	Index     int // posting call's position in the sender's stream
	DoneIndex int // completing call's position (== Index for blocking)
	Dst       int // receiver world rank
	Tag       int64
	CommID    int64
	Comm      *commView
	Count     int64
	Bytes     int64
	TPost     int64 // posting call start
	TDone     int64 // completing call end
	Func      mpispec.FuncID
	Cancelled bool
}

func (s *SendOp) key() (int, int) { return s.Rank, s.Index }

// RecvOp is one posted point-to-point receive. Src and Tag hold the
// posted values (mpi.AnySource / mpi.AnyTag for wildcards) until the
// completing call's recorded status resolves them.
type RecvOp struct {
	Rank      int
	Index     int
	DoneIndex int
	Src       int // sender world rank; valAnySource until resolved
	Tag       int64
	CommID    int64
	Comm      *commView
	Count     int64
	Capacity  int64 // posted buffer capacity in bytes
	TPost     int64
	TDone     int64
	Func      mpispec.FuncID
	Completed bool
	Cancelled bool
}

func (r *RecvOp) key() (int, int) { return r.Rank, r.Index }

// predefSizes mirrors the byte sizes of the runtime's predefined
// datatypes in symbolic-id order (handle − hTypeBase).
var predefSizes = []int64{1, 1, 4, 8, 4, 8, 2, 4, 8, 1, 2, 4, 8, 1, 16}

// predefHandleBase mirrors mpi's hTypeBase (predefined datatype
// handles 16..47; symbolic id = handle − 16).
const predefHandleBase = 16

// reqInstance is one in-flight nonblocking operation.
type reqInstance struct {
	send *SendOp
	recv *RecvOp
}

// persistentReq is an inactive Send_init/Recv_init template.
type persistentReq struct {
	isSend bool
	peer   sig.DecodedValue // dest or source field as recorded
	tag    sig.DecodedValue
	commID int64
	count  int64
	dtype  int64
	fn     mpispec.FuncID
}

// extractor is the per-rank walk state.
type extractor struct {
	rank  int
	views map[int64]*commView

	dtSizes map[int64]int64
	pending map[int64][]*reqInstance
	templ   map[int64]*persistentReq

	sends []*SendOp
	recvs []*RecvOp
}

// extractRank derives every send and recv of one rank from its event
// stream (events must be the rank's full stream in call order).
func extractRank(events []Event, views map[int64]*commView) ([]*SendOp, []*RecvOp, error) {
	if len(events) == 0 {
		return nil, nil, nil
	}
	x := &extractor{
		rank:    events[0].Rank,
		views:   views,
		dtSizes: map[int64]int64{},
		pending: map[int64][]*reqInstance{},
		templ:   map[int64]*persistentReq{},
	}
	for i, sz := range predefSizes {
		x.dtSizes[int64(i)] = sz
	}
	for _, ev := range events {
		if err := x.step(ev); err != nil {
			return nil, nil, fmt.Errorf("call %d (%s): %w", ev.Index, ev.Func().Name(), err)
		}
	}
	return x.sends, x.recvs, nil
}

func (x *extractor) view(commID int64) (*commView, error) {
	v, ok := x.views[commID]
	if !ok {
		return nil, fmt.Errorf("unknown comm id %d", commID)
	}
	return v, nil
}

// typeSize returns the byte size of a symbolic datatype id.
func (x *extractor) typeSize(id int64) int64 { return x.dtSizes[id] }

// tagOf resolves a recorded tag value (selAnyTag wires as the
// wildcard selector, which DecodedValue.Resolve reports as AnySource;
// tags share the selector but mean AnyTag = −1).
func tagOf(v sig.DecodedValue, base int64) int64 {
	if v.IsWildcard() {
		return -1 // mpi.AnyTag
	}
	return v.Resolve(base)
}

func (x *extractor) step(ev Event) error {
	a := ev.Call.Args
	switch f := ev.Func(); f {

	// Blocking sends.
	case mpispec.FSend, mpispec.FBsend, mpispec.FSsend, mpispec.FRsend:
		s, err := x.makeSend(ev, a[3], a[4], a[5].I, a[1].I, a[2].I, false)
		if err != nil || s == nil {
			return err
		}
		s.TDone, s.DoneIndex = ev.TEnd, ev.Index
		x.sends = append(x.sends, s)

	// Blocking receive.
	case mpispec.FRecv:
		r, err := x.makeRecv(ev, a[3], a[4], a[5].I, a[1].I, a[2].I)
		if err != nil || r == nil {
			return err
		}
		x.recvs = append(x.recvs, r)
		x.completeRecv(r, ev, &a[6], int64(r.Comm.myRank))

	// Nonblocking posts.
	case mpispec.FIsend, mpispec.FIbsend, mpispec.FIssend, mpispec.FIrsend:
		s, err := x.makeSend(ev, a[3], a[4], a[5].I, a[1].I, a[2].I, false)
		if err != nil {
			return err
		}
		if s != nil {
			x.sends = append(x.sends, s)
			x.push(a[6].I, &reqInstance{send: s})
		}
	case mpispec.FIrecv:
		r, err := x.makeRecv(ev, a[3], a[4], a[5].I, a[1].I, a[2].I)
		if err != nil {
			return err
		}
		if r != nil {
			x.recvs = append(x.recvs, r)
			x.push(a[6].I, &reqInstance{recv: r})
		}

	// Combined send+recv.
	case mpispec.FSendrecv:
		s, err := x.makeSend(ev, a[3], a[4], a[10].I, a[1].I, a[2].I, false)
		if err != nil {
			return err
		}
		if s != nil {
			s.TDone, s.DoneIndex = ev.TEnd, ev.Index
			x.sends = append(x.sends, s)
		}
		r, err := x.makeRecv(ev, a[8], a[9], a[10].I, a[6].I, a[7].I)
		if err != nil {
			return err
		}
		if r != nil {
			x.recvs = append(x.recvs, r)
			x.completeRecv(r, ev, &a[11], int64(r.Comm.myRank))
		}
	case mpispec.FSendrecvReplace:
		s, err := x.makeSend(ev, a[3], a[4], a[7].I, a[1].I, a[2].I, false)
		if err != nil {
			return err
		}
		if s != nil {
			s.TDone, s.DoneIndex = ev.TEnd, ev.Index
			x.sends = append(x.sends, s)
		}
		r, err := x.makeRecv(ev, a[5], a[6], a[7].I, a[1].I, a[2].I)
		if err != nil {
			return err
		}
		if r != nil {
			x.recvs = append(x.recvs, r)
			x.completeRecv(r, ev, &a[8], int64(r.Comm.myRank))
		}

	// Persistent templates and activation.
	case mpispec.FSendInit, mpispec.FBsendInit, mpispec.FSsendInit, mpispec.FRsendInit:
		x.templ[a[6].I] = &persistentReq{isSend: true, peer: a[3], tag: a[4],
			commID: a[5].I, count: a[1].I, dtype: a[2].I, fn: f}
	case mpispec.FRecvInit:
		x.templ[a[6].I] = &persistentReq{isSend: false, peer: a[3], tag: a[4],
			commID: a[5].I, count: a[1].I, dtype: a[2].I, fn: f}
	case mpispec.FStart:
		return x.start(ev, a[0].I)
	case mpispec.FStartall:
		for _, rv := range a[1].Arr {
			if err := x.start(ev, rv.I); err != nil {
				return err
			}
		}

	// Completions. The recorded statuses resolve wildcard sources and
	// tags; Wait-family calls carry no comm argument, so their status
	// fields were encoded against the caller's world rank.
	case mpispec.FWait:
		x.complete(ev, a[0].I, &a[1])
	case mpispec.FTest:
		if a[1].I != 0 {
			x.complete(ev, a[0].I, &a[2])
		}
	case mpispec.FWaitall:
		x.completeSlots(ev, a[1].Arr, nil, a[2].Arr)
	case mpispec.FTestall:
		if a[2].I != 0 {
			x.completeSlots(ev, a[1].Arr, nil, a[3].Arr)
		}
	case mpispec.FWaitany:
		x.completeAt(ev, a[1].Arr, a[2].I, &a[3])
	case mpispec.FTestany:
		if a[3].I != 0 {
			x.completeAt(ev, a[1].Arr, a[2].I, &a[4])
		}
	case mpispec.FWaitsome, mpispec.FTestsome:
		x.completeSlots(ev, a[1].Arr, a[3].Arr, a[4].Arr)

	case mpispec.FRequestFree:
		id := a[0].I
		if q := x.pending[id]; len(q) > 0 {
			// The operation still completes under the covers; take the
			// free call as the last point it is known to exist.
			x.finish(q[0], ev, nil, 0)
			x.pending[id] = q[1:]
		} else {
			delete(x.templ, id)
		}
	case mpispec.FCancel:
		if q := x.pending[a[0].I]; len(q) > 0 {
			inst := q[len(q)-1]
			if inst.send != nil {
				inst.send.Cancelled = true
			}
			if inst.recv != nil {
				inst.recv.Cancelled = true
			}
		}

	// Datatype lifecycle (needed for payload byte accounting).
	case mpispec.FTypeContiguous:
		x.dtSizes[a[2].I] = a[0].I * x.typeSize(a[1].I)
	case mpispec.FTypeVector:
		x.dtSizes[a[4].I] = a[0].I * a[1].I * x.typeSize(a[3].I)
	case mpispec.FTypeIndexed:
		var total int64
		for _, bl := range a[1].Arr {
			total += bl.I * x.typeSize(a[3].I)
		}
		x.dtSizes[a[4].I] = total
	case mpispec.FTypeCreateStruct:
		// The member types array carries raw runtime handles (it is a
		// plain int array on the wire); only predefined handles are
		// resolvable post-mortem.
		var total int64
		for i, bl := range a[1].Arr {
			if i < len(a[3].Arr) {
				h := a[3].Arr[i].I
				if h >= predefHandleBase && h-predefHandleBase < int64(len(predefSizes)) {
					total += bl.I * predefSizes[h-predefHandleBase]
				}
			}
		}
		x.dtSizes[a[4].I] = total
	case mpispec.FTypeDup:
		x.dtSizes[a[1].I] = x.typeSize(a[0].I)
	case mpispec.FTypeFree:
		delete(x.dtSizes, a[0].I)
	}
	return nil
}

// makeSend builds a SendOp from a posting call's fields. ProcNull
// destinations return (nil, nil): the runtime completes them without
// posting an envelope, and the metrics layer does not count them.
func (x *extractor) makeSend(ev Event, dst, tag sig.DecodedValue, commID, count, dtype int64, persistent bool) (*SendOp, error) {
	if dst.IsProcNull() {
		return nil, nil
	}
	v, err := x.view(commID)
	if err != nil {
		return nil, err
	}
	base := int64(v.myRank)
	peer := dst.Resolve(base)
	if peer < 0 || int(peer) >= len(v.group) {
		return nil, fmt.Errorf("send dest %d outside comm of %d", peer, len(v.group))
	}
	return &SendOp{
		Rank: ev.Rank, Index: ev.Index, DoneIndex: ev.Index,
		Dst: v.group[peer], Tag: tagOf(tag, base), CommID: commID, Comm: v,
		Count: count, Bytes: count * x.typeSize(dtype),
		TPost: ev.TStart, TDone: ev.TEnd, Func: ev.Func(),
	}, nil
}

// makeRecv builds a RecvOp. ProcNull sources return (nil, nil).
func (x *extractor) makeRecv(ev Event, src, tag sig.DecodedValue, commID, count, dtype int64) (*RecvOp, error) {
	if src.IsProcNull() {
		return nil, nil
	}
	v, err := x.view(commID)
	if err != nil {
		return nil, err
	}
	base := int64(v.myRank)
	r := &RecvOp{
		Rank: ev.Rank, Index: ev.Index, DoneIndex: ev.Index,
		Src: valAnySource, Tag: tagOf(tag, base), CommID: commID, Comm: v,
		Count: count, Capacity: count * x.typeSize(dtype),
		TPost: ev.TStart, TDone: ev.TEnd, Func: ev.Func(),
	}
	if !src.IsWildcard() {
		peer := src.Resolve(base)
		if peer < 0 || int(peer) >= len(v.group) {
			return nil, fmt.Errorf("recv source %d outside comm of %d", peer, len(v.group))
		}
		r.Src = v.group[peer]
	}
	return r, nil
}

func (x *extractor) push(reqID int64, inst *reqInstance) {
	x.pending[reqID] = append(x.pending[reqID], inst)
}

// start instantiates a persistent template as an in-flight op.
func (x *extractor) start(ev Event, reqID int64) error {
	t, ok := x.templ[reqID]
	if !ok {
		return fmt.Errorf("Start on unknown persistent request %d", reqID)
	}
	if t.isSend {
		s, err := x.makeSend(ev, t.peer, t.tag, t.commID, t.count, t.dtype, true)
		if err != nil {
			return err
		}
		if s != nil {
			s.Func = t.fn
			x.sends = append(x.sends, s)
			x.push(reqID, &reqInstance{send: s})
		}
		return nil
	}
	r, err := x.makeRecv(ev, t.peer, t.tag, t.commID, t.count, t.dtype)
	if err != nil {
		return err
	}
	if r != nil {
		r.Func = t.fn
		x.recvs = append(x.recvs, r)
		x.push(reqID, &reqInstance{recv: r})
	}
	return nil
}

// complete pops the oldest in-flight op of a request id. An empty
// queue is not an error: ProcNull posts and probe-style requests
// complete without ever entering it.
func (x *extractor) complete(ev Event, reqID int64, status *sig.DecodedValue) {
	q := x.pending[reqID]
	if len(q) == 0 {
		return
	}
	x.finish(q[0], ev, status, int64(ev.Rank))
	x.pending[reqID] = q[1:]
}

// completeAt completes the request at one slot of a request array
// (Waitany/Testany record the completed index).
func (x *extractor) completeAt(ev Event, reqs []sig.DecodedValue, slot int64, status *sig.DecodedValue) {
	if slot < 0 || int(slot) >= len(reqs) {
		return // Undefined: nothing was active
	}
	x.complete(ev, reqs[slot].I, status)
}

// completeSlots completes several slots of a request array. With an
// indices array (Waitsome/Testsome) statuses parallel the indices;
// without one (Waitall/Testall) they parallel the full array.
func (x *extractor) completeSlots(ev Event, reqs, indices, statuses []sig.DecodedValue) {
	pick := func(i int) *sig.DecodedValue {
		if i < len(statuses) {
			return &statuses[i]
		}
		return nil
	}
	if indices == nil {
		for i := range reqs {
			x.complete(ev, reqs[i].I, pick(i))
		}
		return
	}
	for i, iv := range indices {
		if iv.I >= 0 && int(iv.I) < len(reqs) {
			x.complete(ev, reqs[iv.I].I, pick(i))
		}
	}
}

// finish stamps completion on an in-flight op and resolves wildcard
// receive fields from the recorded status. statusBase is the rank the
// status fields were encoded against (the caller's rank in the
// completing call's communicator; world rank for Wait-family calls,
// which have no comm argument).
func (x *extractor) finish(inst *reqInstance, ev Event, status *sig.DecodedValue, statusBase int64) {
	if inst.send != nil {
		inst.send.TDone, inst.send.DoneIndex = ev.TEnd, ev.Index
	}
	if inst.recv != nil {
		x.completeRecv(inst.recv, ev, status, statusBase)
	}
}

// completeRecv marks a receive complete and fills wildcard source/tag
// from the recorded status.
func (x *extractor) completeRecv(r *RecvOp, ev Event, status *sig.DecodedValue, statusBase int64) {
	r.TDone, r.DoneIndex, r.Completed = ev.TEnd, ev.Index, true
	if status == nil || len(status.Arr) != 2 {
		return
	}
	if r.Src == valAnySource {
		if observed := status.Arr[0].Resolve(statusBase); observed >= 0 && int(observed) < len(r.Comm.group) {
			r.Src = r.Comm.group[observed]
		}
	}
	if r.Tag < 0 {
		r.Tag = status.Arr[1].I
	}
}
