package analysis

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// Point-to-point matching and the analyses built on it: late-sender /
// late-receiver statistics and a longest-path critical-path estimate.

// Match pairs one send with the receive that consumed it.
type Match struct {
	Send *SendOp
	Recv *RecvOp
}

// channelKey identifies an ordered message channel. MPI guarantees
// non-overtaking per (source, dest, communicator, tag), so matching
// within a channel is a positional zip of send posts against receive
// posts. The communicator is identified by id plus membership
// fingerprint: symbolic ids alone can alias across disjoint groups.
type channelKey struct {
	src, dst int
	comm     string
	tag      int64
}

func commFingerprint(v *commView) string {
	return fmt.Sprint(v.group)
}

// matchP2P zips sends against completed receives channel by channel.
// Receives still carrying a wildcard source (never completed, or
// cancelled before a message arrived) cannot be placed on a channel
// and are reported unmatched.
func (a *Analysis) matchP2P() {
	sortOps(a.Sends)
	sortOps(a.Recvs)

	sendQ := map[channelKey][]*SendOp{}
	for _, s := range a.Sends {
		if s.Cancelled {
			a.UnmatchedSends = append(a.UnmatchedSends, s)
			continue
		}
		k := channelKey{src: s.Rank, dst: s.Dst, comm: commFingerprint(s.Comm), tag: s.Tag}
		sendQ[k] = append(sendQ[k], s)
	}

	matched := map[*RecvOp]bool{}
	for _, r := range a.Recvs {
		if !r.Completed || r.Cancelled || r.Src < 0 || r.Tag < 0 {
			continue
		}
		k := channelKey{src: r.Src, dst: r.Rank, comm: commFingerprint(r.Comm), tag: r.Tag}
		if q := sendQ[k]; len(q) > 0 {
			a.Matches = append(a.Matches, Match{Send: q[0], Recv: r})
			sendQ[k] = q[1:]
			matched[r] = true
		}
	}

	for _, q := range sendQ {
		a.UnmatchedSends = append(a.UnmatchedSends, q...)
	}
	sortOps(a.UnmatchedSends)
	for _, r := range a.Recvs {
		if !matched[r] {
			a.UnmatchedRecvs = append(a.UnmatchedRecvs, r)
		}
	}
}

// LateStats summarizes sender/receiver arrival skew over matched
// pairs. A late sender posted after its receive was already waiting
// (receiver idle); a late receiver posted after the send (sender-side
// buffering or blocking). Wait totals are the summed skews.
type LateStats struct {
	Matched       int
	LateSenders   int
	LateReceivers int

	RecvWaitNs    int64 // total receiver idle time (late senders)
	MaxRecvWaitNs int64
	SendWaitNs    int64 // total sender-ahead time (late receivers)
	MaxSendWaitNs int64
}

func lateStats(matches []Match) LateStats {
	var st LateStats
	st.Matched = len(matches)
	for _, m := range matches {
		skew := m.Send.TPost - m.Recv.TPost
		if skew > 0 {
			st.LateSenders++
			st.RecvWaitNs += skew
			if skew > st.MaxRecvWaitNs {
				st.MaxRecvWaitNs = skew
			}
		} else if skew < 0 {
			st.LateReceivers++
			st.SendWaitNs -= skew
			if -skew > st.MaxSendWaitNs {
				st.MaxSendWaitNs = -skew
			}
		}
	}
	return st
}

// CritStep is one event on the estimated critical path.
type CritStep struct {
	Rank   int
	Index  int
	Func   mpispec.FuncID
	TStart int64
	TEnd   int64
	ViaMsg bool // reached from the previous step through a matched message
	WaitNs int64
}

// CriticalPath estimates the execution's critical path: starting from
// the globally latest event end, it walks backwards choosing at each
// event the latest-finishing predecessor — the previous call on the
// same rank, or, at a receive completion, the posting call of the
// matched send. The result is in forward (chronological) order. The
// estimate only considers MPI calls (computation between calls rides
// on the same-rank edges implicitly) and requires per-call timing to
// be meaningful across ranks (lossy timing mode).
func (a *Analysis) CriticalPath() []CritStep {
	// Message edges indexed by the receive's completing event.
	type edgeKey struct{ rank, index int }
	edges := map[edgeKey][]*SendOp{}
	for _, m := range a.Matches {
		k := edgeKey{m.Recv.Rank, m.Recv.DoneIndex}
		edges[k] = append(edges[k], m.Send)
	}

	// Start at the global latest event end.
	curRank, curIdx := -1, -1
	var latest int64 = -1
	for r, evs := range a.Events {
		if n := len(evs); n > 0 && evs[n-1].TEnd > latest {
			latest, curRank, curIdx = evs[n-1].TEnd, r, n-1
		}
	}
	if curRank < 0 {
		return nil
	}

	var rev []CritStep
	total := 0
	for _, evs := range a.Events {
		total += len(evs)
	}
	for steps := 0; steps <= total; steps++ {
		ev := a.Events[curRank][curIdx]
		rev = append(rev, CritStep{Rank: ev.Rank, Index: ev.Index, Func: ev.Func(),
			TStart: ev.TStart, TEnd: ev.TEnd})

		// Candidate predecessors: previous call on the same rank, or the
		// posting call of a message this event completed.
		prevRank, prevIdx := -1, -1
		var prevEnd int64 = -1
		msg := false
		if curIdx > 0 {
			p := a.Events[curRank][curIdx-1]
			prevRank, prevIdx, prevEnd = curRank, curIdx-1, p.TEnd
		}
		for _, s := range edges[edgeKey{curRank, curIdx}] {
			se := a.Events[s.Rank][s.Index]
			// Reconstructed per-rank clocks carry independent relative
			// error, so a send can appear to end after the receive that
			// consumed it; such edges are skew artifacts — a real
			// predecessor never outlives its successor.
			if se.TEnd > ev.TEnd {
				continue
			}
			if se.TEnd > prevEnd {
				prevRank, prevIdx, prevEnd, msg = s.Rank, s.Index, se.TEnd, true
			}
		}
		if prevRank < 0 {
			break
		}
		// The edge into the event just appended crosses ranks if it is a
		// message edge.
		rev[len(rev)-1].ViaMsg = msg
		curRank, curIdx = prevRank, prevIdx
	}

	// Reverse into chronological order and annotate the wait portion of
	// each step (time between the predecessor's end and this call's
	// end — the slack the path is actually made of).
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for i := 1; i < len(rev); i++ {
		if w := rev[i].TEnd - rev[i-1].TEnd; w > 0 {
			rev[i].WaitNs = w
		}
	}
	return rev
}
