package analysis_test

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

const stencilRanks = 16

func runStencil(t *testing.T, mode uint8) (*pilgrim.TraceFile, *metrics.Collector) {
	t.Helper()
	col := metrics.NewCollector()
	file, _, err := pilgrim.Run(stencilRanks,
		pilgrim.Options{TimingMode: mode, Collector: col},
		workloads.Stencil2D(workloads.StencilConfig{Iters: 5, Points: 16}))
	if err != nil {
		t.Fatal(err)
	}
	return file, col
}

// TestStencilStructuralInvariants checks the analysis of a 16-rank 2D
// stencil trace against properties the workload guarantees by
// construction: a count-symmetric halo-exchange matrix, per-rank MPI
// time within the wall time, and a perfect 1:1 send/recv matching.
func TestStencilStructuralInvariants(t *testing.T) {
	file, _ := runStencil(t, pilgrim.TimingLossy)
	a, err := pilgrim.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}

	if len(a.Sends) == 0 || len(a.Recvs) == 0 {
		t.Fatal("stencil trace produced no p2p operations")
	}

	// Halo exchange: every src→dst channel has the mirror dst→src
	// channel with the same message count.
	m := a.Matrix
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if m.Count[s][d] != m.Count[d][s] {
				t.Errorf("matrix not count-symmetric: [%d][%d]=%d, [%d][%d]=%d",
					s, d, m.Count[s][d], d, s, m.Count[d][s])
			}
		}
	}
	if m.TotalMsgs() == 0 || m.TotalBytes() == 0 {
		t.Fatal("empty communication matrix")
	}

	// Time sanity: per-rank MPI time cannot exceed the wall time (rank
	// events are sequential on a recovered timeline that starts at 0).
	wall := a.WallNs()
	if wall <= 0 {
		t.Fatal("non-positive wall time")
	}
	for r, tot := range a.Profile.RankTotalNs {
		if tot > wall {
			t.Errorf("rank %d MPI time %d exceeds wall %d", r, tot, wall)
		}
	}

	// Matching: every send pairs with exactly one recv and vice versa.
	if len(a.Matches) != len(a.Sends) || len(a.Matches) != len(a.Recvs) {
		t.Errorf("matched %d of %d sends / %d recvs", len(a.Matches), len(a.Sends), len(a.Recvs))
	}
	if len(a.UnmatchedSends) != 0 || len(a.UnmatchedRecvs) != 0 {
		t.Errorf("%d unmatched sends, %d unmatched recvs", len(a.UnmatchedSends), len(a.UnmatchedRecvs))
	}
	seen := map[any]bool{}
	for _, mt := range a.Matches {
		if seen[mt.Send] || seen[mt.Recv] {
			t.Fatal("an op appears in more than one match")
		}
		seen[mt.Send], seen[mt.Recv] = true, true
		if mt.Send.Bytes > mt.Recv.Capacity {
			t.Errorf("matched send of %dB into recv capacity %dB", mt.Send.Bytes, mt.Recv.Capacity)
		}
		if mt.Send.Dst != mt.Recv.Rank || mt.Send.Rank != mt.Recv.Src {
			t.Errorf("match endpoints disagree: send %d→%d vs recv %d←%d",
				mt.Send.Rank, mt.Send.Dst, mt.Recv.Rank, mt.Recv.Src)
		}
	}

	// The cartesian comm's membership must resolve on every rank.
	for r := 0; r < file.NumRanks; r++ {
		found := false
		for id := int64(2); id < 8 && !found; id++ {
			if g := a.CommGroup(r, id); len(g) == stencilRanks {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d: cartesian communicator membership not resolved", r)
		}
	}
}

// TestStencilMetricsParity cross-checks the analysis-side matrix
// against the runtime's live per-rank counters: both count messages
// and payload bytes at send post time, so they must agree exactly.
func TestStencilMetricsParity(t *testing.T) {
	for _, mode := range []uint8{pilgrim.TimingAggregated, pilgrim.TimingLossy} {
		file, col := runStencil(t, mode)
		a, err := pilgrim.Analyze(file)
		if err != nil {
			t.Fatal(err)
		}
		msgs, bytes := a.Matrix.SentMsgsByRank(), a.Matrix.SentBytesByRank()
		for r := 0; r < stencilRanks; r++ {
			label := strconv.Itoa(r)
			if live := col.MsgsSent.With(label).Load(); msgs[r] != live {
				t.Errorf("mode %d rank %d: matrix says %d msgs, metrics counted %d", mode, r, msgs[r], live)
			}
			if live := col.BytesSent.With(label).Load(); bytes[r] != live {
				t.Errorf("mode %d rank %d: matrix says %d bytes, metrics counted %d", mode, r, bytes[r], live)
			}
		}
	}
}

// TestStencilPerfettoExport validates the Chrome trace-event JSON:
// parseable, one named track per rank, and one flow-event pair per
// matched message.
func TestStencilPerfettoExport(t *testing.T) {
	file, _ := runStencil(t, pilgrim.TimingLossy)
	a, err := pilgrim.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   int            `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}

	tracks := map[int]bool{}
	flowStarts, flowEnds := map[int]int{}, map[int]int{}
	complete := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Tid] = true
			}
		case "X":
			complete++
			if ev.Tid < 0 || ev.Tid >= stencilRanks {
				t.Fatalf("complete event on track %d, want 0..%d", ev.Tid, stencilRanks-1)
			}
			if ev.Dur < 0 {
				t.Fatalf("negative duration %f", ev.Dur)
			}
		case "s":
			flowStarts[ev.ID]++
		case "f":
			flowEnds[ev.ID]++
		}
	}
	if len(tracks) != stencilRanks {
		t.Errorf("%d named tracks, want %d", len(tracks), stencilRanks)
	}
	if complete == 0 {
		t.Fatal("no complete events")
	}
	if len(flowStarts) != len(a.Matches) {
		t.Errorf("%d flow starts for %d matched pairs", len(flowStarts), len(a.Matches))
	}
	for id, n := range flowStarts {
		if n != 1 || flowEnds[id] != 1 {
			t.Fatalf("flow id %d has %d starts / %d ends", id, n, flowEnds[id])
		}
	}
}

// TestStencilCriticalPath sanity-checks the longest-path estimate:
// non-empty, chronologically ordered, ending at the latest event.
func TestStencilCriticalPath(t *testing.T) {
	file, _ := runStencil(t, pilgrim.TimingLossy)
	a, err := pilgrim.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	path := a.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// Every consecutive pair must be joined by a real dependency edge:
	// program order on one rank, or a matched message. (Recovered
	// timestamps carry independent per-signature error, so strict time
	// monotonicity is not an invariant; the graph structure is.)
	msgEdge := map[[4]int]bool{}
	for _, m := range a.Matches {
		msgEdge[[4]int{m.Send.Rank, m.Send.Index, m.Recv.Rank, m.Recv.DoneIndex}] = true
	}
	for i := 1; i < len(path); i++ {
		prev, cur := path[i-1], path[i]
		if cur.ViaMsg {
			if !msgEdge[[4]int{prev.Rank, prev.Index, cur.Rank, cur.Index}] {
				t.Fatalf("step %d claims a message edge %v→%v that matches no pair",
					i, prev, cur)
			}
		} else if cur.Rank != prev.Rank || cur.Index != prev.Index+1 {
			t.Fatalf("step %d is not the program-order successor of step %d", i, i-1)
		}
	}
	if got, want := path[len(path)-1].TEnd, a.WallNs(); got != want {
		t.Errorf("critical path ends at %d, wall is %d", got, want)
	}
	if path[0].Index != 0 {
		t.Errorf("critical path starts mid-stream at call %d of rank %d", path[0].Index, path[0].Rank)
	}
}

// TestSplitAndWildcardAnalysis exercises the comm resolver on
// CommSplit subcommunicators and the extractor on AnySource/AnyTag
// receives resolved from recorded statuses.
func TestSplitAndWildcardAnalysis(t *testing.T) {
	const n = 8
	file, _, err := pilgrim.Run(n, pilgrim.Options{TimingMode: pilgrim.TimingLossy}, func(p *mpi.Proc) {
		if err := p.Init(); err != nil {
			panic(err)
		}
		// Even/odd subcommunicators of 4 ranks each; both get symbolic
		// id agreement across disjoint groups.
		sub, err := p.CommSplit(p.World(), p.Rank()%2, p.Rank())
		if err != nil {
			panic(err)
		}
		buf := p.Alloc(64)
		me, sz := sub.Rank(), sub.Size()
		// Ring within the subcomm: send to the next, receive from
		// anyone (wildcard source and tag).
		var st mpi.Status
		if me%2 == 0 {
			if err := p.Send(buf.Ptr(0), 4, mpi.Int, (me+1)%sz, 7, sub); err != nil {
				panic(err)
			}
			if err := p.Recv(buf.Ptr(32), 4, mpi.Int, (me+sz-1)%sz, 7, sub, &st); err != nil {
				panic(err)
			}
		} else {
			if err := p.Recv(buf.Ptr(32), 4, mpi.Int, mpi.AnySource, mpi.AnyTag, sub, &st); err != nil {
				panic(err)
			}
			if err := p.Send(buf.Ptr(0), 4, mpi.Int, (me+1)%sz, 7, sub); err != nil {
				panic(err)
			}
		}
		buf.Free()
		if err := p.Finalize(); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pilgrim.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(a.Sends) || len(a.UnmatchedRecvs) != 0 {
		t.Fatalf("matched %d of %d sends, %d unmatched recvs",
			len(a.Matches), len(a.Sends), len(a.UnmatchedRecvs))
	}
	// Wildcards must resolve to the even-rank sender one ring slot
	// back in the same parity class.
	for _, m := range a.Matches {
		if m.Recv.Src != m.Send.Rank {
			t.Fatalf("recv source %d, sender was %d", m.Recv.Src, m.Send.Rank)
		}
		if m.Send.Rank%2 != m.Recv.Rank%2 {
			t.Fatalf("message crossed parity classes: %d→%d", m.Send.Rank, m.Recv.Rank)
		}
		if m.Send.Bytes != 16 {
			t.Fatalf("send bytes %d, want 16", m.Send.Bytes)
		}
	}
	// Each subcomm id must resolve to a 4-member group of one parity.
	for r := 0; r < n; r++ {
		found := false
		for id := int64(2); id < 6 && !found; id++ {
			if g := a.CommGroup(r, id); len(g) == 4 {
				found = true
				for _, w := range g {
					if w%2 != r%2 {
						t.Fatalf("rank %d subcomm contains rank %d of other parity", r, w)
					}
				}
			}
		}
		if !found {
			t.Errorf("rank %d: subcomm membership not resolved", r)
		}
	}
}

// TestAggregatedModeAnalyze ensures aggregated-mode traces (no
// per-call timing) still analyze: synthesized timelines, full
// matching, and a nonzero profile.
func TestAggregatedModeAnalyze(t *testing.T) {
	file, _ := runStencil(t, pilgrim.TimingAggregated)
	a, err := pilgrim.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(a.Sends) {
		t.Errorf("matched %d of %d sends", len(a.Matches), len(a.Sends))
	}
	if a.WallNs() <= 0 {
		t.Error("synthesized wall time is zero")
	}
	if len(a.Profile.Funcs) == 0 {
		t.Error("empty profile")
	}
}
