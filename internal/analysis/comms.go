package analysis

import (
	"fmt"
	"sort"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// Communicator-membership reconstruction.
//
// Signatures carry symbolic communicator ids agreed across ranks at
// record time, but the id alone does not identify membership: disjoint
// groups can legitimately agree on the same id (each side's group-max
// allreduce runs independently). Membership is therefore re-derived by
// replaying the communicator-creating *collectives* across all rank
// streams in lockstep: a creation resolves once every member of the
// parent communicator has reached a matching call, exactly the
// rendezvous discipline of the traced program.

// Special symbolic comm ids (mirroring the encoder's reserved space).
const (
	commWorld = 0
	commSelf  = 1
	commNil   = -1
)

// Wire sentinels for rank-like values (mpi.ProcNull / mpi.AnySource /
// mpi.Undefined as sig.DecodedValue.Resolve returns them).
const (
	valProcNull  = -1
	valAnySource = -2
	valUndefined = -3
)

// simNodeSize mirrors the simulator's CommSplitType locality rule
// (CommTypeShared groups 16 ranks per node); the trace records only
// the split type, so the analysis re-derives colors the same way.
const simNodeSize = 16

// commTypeShared mirrors mpi.CommTypeShared.
const commTypeShared = 1

// commView is one rank's view of a communicator: member world ranks in
// comm-rank order, the owner's rank within it, and (for Cartesian
// communicators) the grid dims so CartSub can be resolved.
type commView struct {
	group    []int
	myRank   int
	cartDims []int
}

func (v *commView) contains(world int) bool { return v.indexOf(world) >= 0 }

func (v *commView) indexOf(world int) int {
	for i, w := range v.group {
		if w == world {
			return i
		}
	}
	return -1
}

// commEvent is one comm- or group-affecting call of one rank.
type commEvent struct {
	idx  int // call index in the rank's stream
	call core.DecodedCall
}

// isCommCollective reports whether a call creates a communicator and
// must rendezvous with the rest of the parent comm to be resolved.
func isCommCollective(f mpispec.FuncID) bool {
	switch f {
	case mpispec.FCommDup, mpispec.FCommIdup, mpispec.FCommSplit, mpispec.FCommSplitType,
		mpispec.FCommCreate, mpispec.FCartCreate, mpispec.FCartSub:
		return true
	}
	return false
}

// isGroupLocal reports whether a call manipulates group objects with
// purely local semantics.
func isGroupLocal(f mpispec.FuncID) bool {
	switch f {
	case mpispec.FCommGroup, mpispec.FGroupIncl, mpispec.FGroupExcl,
		mpispec.FGroupUnion, mpispec.FGroupIntersection, mpispec.FGroupDifference,
		mpispec.FGroupFree:
		return true
	}
	return false
}

// parentCommArg returns the index of the parent communicator argument
// of a comm-creating collective.
func parentCommArg(f mpispec.FuncID) int {
	// Every supported collective carries the parent comm first.
	return 0
}

// newCommArg mirrors the encoder's commCreatingArg for the supported
// collectives.
func newCommArg(f mpispec.FuncID) int {
	switch f {
	case mpispec.FCommDup, mpispec.FCommIdup:
		return 1
	case mpispec.FCommSplit, mpispec.FCommSplitType:
		return 3
	case mpispec.FCommCreate, mpispec.FCartSub:
		return 2
	case mpispec.FCartCreate:
		return 5
	}
	return -1
}

// resolverState is the per-rank state of the lockstep resolution.
type resolverState struct {
	views  map[int64]*commView
	groups map[int64][]int // group id → member world ranks
	events []commEvent
	cursor int
}

// resolveComms derives every rank's comm id → membership view from the
// decoded streams. Streams that create communicators this resolver
// does not model (intercommunicators) produce an error.
func resolveComms(perRank [][]core.DecodedCall) ([]map[int64]*commView, error) {
	n := len(perRank)
	states := make([]*resolverState, n)
	for r := 0; r < n; r++ {
		st := &resolverState{
			views:  map[int64]*commView{},
			groups: map[int64][]int{},
		}
		world := make([]int, n)
		for i := range world {
			world[i] = i
		}
		st.views[commWorld] = &commView{group: world, myRank: r}
		st.views[commSelf] = &commView{group: []int{r}, myRank: 0}
		for i, c := range perRank[r] {
			switch {
			case isCommCollective(c.Func), isGroupLocal(c.Func):
				st.events = append(st.events, commEvent{idx: i, call: c})
			case c.Func == mpispec.FIntercommCreate || c.Func == mpispec.FIntercommMerge:
				return nil, fmt.Errorf("analysis: rank %d call %d: intercommunicators are not supported", r, i)
			}
		}
		states[r] = st
	}

	for {
		progress := false
		// Drain local group bookkeeping first so collectives always see
		// up-to-date group contents.
		for r, st := range states {
			for st.cursor < len(st.events) && isGroupLocal(st.events[st.cursor].call.Func) {
				if err := st.applyGroupLocal(st.events[st.cursor].call); err != nil {
					return nil, fmt.Errorf("analysis: rank %d: %w", r, err)
				}
				st.cursor++
				progress = true
			}
		}
		// Resolve one ready collective per round.
		for r, st := range states {
			if st.cursor >= len(st.events) {
				continue
			}
			e := st.events[st.cursor]
			if !isCommCollective(e.call.Func) {
				continue
			}
			ready, members, err := collectiveReady(states, r, e)
			if err != nil {
				return nil, err
			}
			if !ready {
				continue
			}
			if err := resolveCollective(states, members, e.call.Func); err != nil {
				return nil, err
			}
			for _, m := range members {
				states[m].cursor++
			}
			progress = true
			break
		}
		if !progress {
			break
		}
	}

	for r, st := range states {
		if st.cursor < len(st.events) {
			e := st.events[st.cursor]
			return nil, fmt.Errorf("analysis: rank %d call %d (%s): unresolvable communicator rendezvous (mismatched collective order?)",
				r, e.idx, e.call.Func.Name())
		}
	}

	out := make([]map[int64]*commView, n)
	for r, st := range states {
		out[r] = st.views
	}
	return out, nil
}

// collectiveReady checks whether every member of rank r's parent comm
// has reached a matching creation call. It returns the member world
// ranks in parent comm-rank order.
func collectiveReady(states []*resolverState, r int, e commEvent) (bool, []int, error) {
	st := states[r]
	parentID := e.call.Args[parentCommArg(e.call.Func)].I
	parent, ok := st.views[parentID]
	if !ok {
		return false, nil, fmt.Errorf("analysis: rank %d call %d (%s): unknown parent comm id %d",
			r, e.idx, e.call.Func.Name(), parentID)
	}
	for _, m := range parent.group {
		ms := states[m]
		if ms.cursor >= len(ms.events) {
			return false, nil, nil
		}
		me := ms.events[ms.cursor]
		if me.call.Func != e.call.Func {
			return false, nil, nil
		}
		if me.call.Args[parentCommArg(me.call.Func)].I != parentID {
			return false, nil, nil
		}
		// Guard against id aliasing: the member must see the same group.
		mp, ok := ms.views[parentID]
		if !ok || !sameGroup(mp.group, parent.group) {
			return false, nil, nil
		}
	}
	return true, parent.group, nil
}

func sameGroup(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resolveCollective computes every member's view of the created
// communicator(s) and installs them under the recorded symbolic ids.
func resolveCollective(states []*resolverState, members []int, f mpispec.FuncID) error {
	type part struct {
		world      int
		parentRank int
		call       core.DecodedCall
	}
	parts := make([]part, len(members))
	parentID := int64(0)
	for i, m := range members {
		c := states[m].events[states[m].cursor].call
		parts[i] = part{world: m, parentRank: i, call: c}
		parentID = c.Args[parentCommArg(f)].I
	}
	parent := states[members[0]].views[parentID]

	install := func(world int, newID int64, group []int, cartDims []int) {
		if newID == commNil || newID >= int64(1<<31-1) { // nil or still-pending id
			return
		}
		v := &commView{group: group, cartDims: cartDims}
		v.myRank = v.indexOf(world)
		states[world].views[newID] = v
	}

	switch f {
	case mpispec.FCommDup, mpispec.FCommIdup:
		for _, p := range parts {
			install(p.world, p.call.Args[newCommArg(f)].I, parent.group, parent.cartDims)
		}

	case mpispec.FCommSplit, mpispec.FCommSplitType:
		type contrib struct {
			part
			color, key int64
		}
		byColor := map[int64][]contrib{}
		var colors []int64
		for _, p := range parts {
			var color, key int64
			if f == mpispec.FCommSplit {
				color = p.call.Args[1].Resolve(int64(p.parentRank))
				key = p.call.Args[2].Resolve(int64(p.parentRank))
			} else {
				// Split-by-locality: re-derive the simulator's node color.
				color = valUndefined
				if p.call.Args[1].I == commTypeShared {
					color = int64(p.world / simNodeSize)
				}
				key = p.call.Args[2].Resolve(int64(p.parentRank))
			}
			if color == valUndefined {
				continue
			}
			if _, seen := byColor[color]; !seen {
				colors = append(colors, color)
			}
			byColor[color] = append(byColor[color], contrib{part: p, color: color, key: key})
		}
		sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
		for _, col := range colors {
			cs := byColor[col]
			sort.SliceStable(cs, func(i, j int) bool {
				if cs[i].key != cs[j].key {
					return cs[i].key < cs[j].key
				}
				return cs[i].parentRank < cs[j].parentRank
			})
			group := make([]int, len(cs))
			for i, c := range cs {
				group[i] = c.world
			}
			for _, c := range cs {
				install(c.world, c.call.Args[newCommArg(f)].I, group, nil)
			}
		}

	case mpispec.FCartCreate:
		total := 1
		for _, d := range parts[0].call.Args[2].Arr {
			total *= int(d.I)
		}
		if total <= 0 || total > len(parent.group) {
			return fmt.Errorf("analysis: CartCreate grid of %d on comm of %d", total, len(parent.group))
		}
		dims := make([]int, len(parts[0].call.Args[2].Arr))
		for i, d := range parts[0].call.Args[2].Arr {
			dims[i] = int(d.I)
		}
		group := append([]int(nil), parent.group[:total]...)
		for _, p := range parts {
			if p.parentRank < total {
				install(p.world, p.call.Args[newCommArg(f)].I, group, dims)
			}
		}

	case mpispec.FCartSub:
		if parent.cartDims == nil {
			return fmt.Errorf("analysis: CartSub on non-Cartesian communicator")
		}
		dims := parent.cartDims
		remain := parts[0].call.Args[1].Arr
		if len(remain) != len(dims) {
			return fmt.Errorf("analysis: CartSub remain_dims length %d for %d dims", len(remain), len(dims))
		}
		// Members sharing coordinates on every dropped dimension form a
		// sub-communicator; parent-rank (row-major) order within the
		// class is row-major order over the remaining dims.
		classOf := func(parentRank int) string {
			coords := coordsOf(parentRank, dims)
			key := ""
			for d, rv := range remain {
				if rv.I == 0 {
					key += fmt.Sprintf("%d,", coords[d])
				}
			}
			return key
		}
		var subDims []int
		for d, rv := range remain {
			if rv.I != 0 {
				subDims = append(subDims, dims[d])
			}
		}
		classes := map[string][]part{}
		for _, p := range parts {
			k := classOf(p.parentRank)
			classes[k] = append(classes[k], p)
		}
		for _, cs := range classes {
			group := make([]int, len(cs))
			for i, c := range cs {
				group[i] = c.world
			}
			for _, c := range cs {
				install(c.world, c.call.Args[newCommArg(f)].I, group, subDims)
			}
		}

	case mpispec.FCommCreate:
		for _, p := range parts {
			gid := p.call.Args[1].I
			group, ok := states[p.world].groups[gid]
			if !ok {
				continue
			}
			if containsInt(group, p.world) {
				install(p.world, p.call.Args[newCommArg(f)].I, append([]int(nil), group...), nil)
			}
		}

	default:
		return fmt.Errorf("analysis: unsupported comm collective %s", f.Name())
	}
	return nil
}

// applyGroupLocal tracks group-object contents (world-rank lists).
func (st *resolverState) applyGroupLocal(c core.DecodedCall) error {
	a := c.Args
	switch c.Func {
	case mpispec.FCommGroup:
		v, ok := st.views[a[0].I]
		if !ok {
			return fmt.Errorf("CommGroup on unknown comm id %d", a[0].I)
		}
		st.groups[a[1].I] = append([]int(nil), v.group...)
	case mpispec.FGroupIncl:
		src := st.groups[a[0].I]
		var out []int
		for _, iv := range a[2].Arr {
			if int(iv.I) < 0 || int(iv.I) >= len(src) {
				return fmt.Errorf("GroupIncl index %d out of range", iv.I)
			}
			out = append(out, src[iv.I])
		}
		st.groups[a[3].I] = out
	case mpispec.FGroupExcl:
		src := st.groups[a[0].I]
		excl := map[int]bool{}
		for _, iv := range a[2].Arr {
			excl[int(iv.I)] = true
		}
		var out []int
		for i, w := range src {
			if !excl[i] {
				out = append(out, w)
			}
		}
		st.groups[a[3].I] = out
	case mpispec.FGroupUnion:
		g1, g2 := st.groups[a[0].I], st.groups[a[1].I]
		out := append([]int(nil), g1...)
		for _, w := range g2 {
			if !containsInt(out, w) {
				out = append(out, w)
			}
		}
		st.groups[a[2].I] = out
	case mpispec.FGroupIntersection:
		g1, g2 := st.groups[a[0].I], st.groups[a[1].I]
		var out []int
		for _, w := range g1 {
			if containsInt(g2, w) {
				out = append(out, w)
			}
		}
		st.groups[a[2].I] = out
	case mpispec.FGroupDifference:
		g1, g2 := st.groups[a[0].I], st.groups[a[1].I]
		var out []int
		for _, w := range g1 {
			if !containsInt(g2, w) {
				out = append(out, w)
			}
		}
		st.groups[a[2].I] = out
	case mpispec.FGroupFree:
		delete(st.groups, a[0].I)
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// coordsOf converts a row-major rank to grid coordinates.
func coordsOf(rank int, dims []int) []int {
	coords := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		coords[i] = rank % dims[i]
		rank /= dims[i]
	}
	return coords
}
