// Package analysis is Pilgrim's post-mortem trace analysis subsystem:
// it decodes a compressed trace back into per-rank event timelines and
// computes derived views on top of them — a rank×rank communication
// matrix, a per-function time profile with load-imbalance factors,
// late-sender/late-receiver diagnosis over matched point-to-point
// pairs, a longest-path critical-path estimate, and exporters to
// Chrome trace-event JSON (Perfetto-loadable) and CSV.
//
// Wall-clock times come from the trace's timing section: in lossy mode
// every call's start and duration are recovered from the interval and
// duration grammars (relative error ≤ base−1, see internal/timing); in
// aggregated mode each rank's timeline is synthesized by accumulating
// the CST mean durations, so within-rank ordering and durations are
// meaningful while inter-rank alignment is approximate.
//
// Peer ranks in signatures are symbolic (relative to the caller's rank
// in the call's communicator), so the package re-derives communicator
// membership by resolving communicator-creating collectives across all
// rank streams in lockstep — the analysis-side mirror of the id
// agreement the tracer performs at record time.
package analysis

import (
	"fmt"
	"sort"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// Event is one decoded call of one rank with resolved wall-clock
// times (nanoseconds since the rank's first call).
type Event struct {
	Rank   int
	Index  int // position in the rank's call stream
	TStart int64
	TEnd   int64
	Call   core.DecodedCall
}

// Func returns the event's MPI function id.
func (e Event) Func() mpispec.FuncID { return e.Call.Func }

// Duration returns the call's wall-clock duration.
func (e Event) Duration() int64 { return e.TEnd - e.TStart }

// EachEvent streams one rank's events in call order, resolving times
// per the trace's timing mode. The callback's error aborts the walk.
func EachEvent(f *trace.File, rank int, yield func(Event) error) error {
	calls, err := core.DecodeRank(f, rank)
	if err != nil {
		return err
	}
	var clock int64
	for i, c := range calls {
		ev := Event{Rank: rank, Index: i, Call: c}
		if f.TimingMode == trace.TimingLossy {
			ev.TStart, ev.TEnd = c.TStart, c.TEnd
		} else {
			ev.TStart = clock
			ev.TEnd = clock + c.AvgDuration
			clock = ev.TEnd
		}
		if err := yield(ev); err != nil {
			return err
		}
	}
	return nil
}

// Analysis holds every derived view of one trace.
type Analysis struct {
	File   *trace.File
	Events [][]Event // per rank, in call order

	Sends []*SendOp
	Recvs []*RecvOp

	Matches        []Match
	UnmatchedSends []*SendOp
	UnmatchedRecvs []*RecvOp

	Matrix  *CommMatrix
	Profile *Profile
	Late    LateStats

	comms []map[int64]*commView // per rank: comm id → resolved view
}

// Analyze decodes the whole trace and computes every derived view.
// The per-rank stages (grammar decode, event timeline build, p2p op
// extraction) fan out over a worker pool; each writes only its own
// rank's slot, so the result is identical to the sequential order.
func Analyze(f *trace.File) (*Analysis, error) {
	a := &Analysis{File: f}
	a.Events = make([][]Event, f.NumRanks)
	perRank := make([][]core.DecodedCall, f.NumRanks)
	errs := make([]error, f.NumRanks)
	workers := par.Workers(0)
	par.For(f.NumRanks, workers, func(r int) {
		calls, err := core.DecodeRank(f, r)
		if err != nil {
			errs[r] = fmt.Errorf("analysis: decode rank %d: %w", r, err)
			return
		}
		perRank[r] = calls
		evs := make([]Event, len(calls))
		var clock int64
		for i, c := range calls {
			evs[i] = Event{Rank: r, Index: i, Call: c}
			if f.TimingMode == trace.TimingLossy {
				evs[i].TStart, evs[i].TEnd = c.TStart, c.TEnd
			} else {
				evs[i].TStart = clock
				evs[i].TEnd = clock + c.AvgDuration
				clock = evs[i].TEnd
			}
		}
		a.Events[r] = evs
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}

	comms, err := resolveComms(perRank)
	if err != nil {
		return nil, err
	}
	a.comms = comms

	// Extraction is per-rank independent (each rank reads only its own
	// events and comm views); the sends/recvs concatenate in rank order
	// afterward so downstream matching sees the sequential layout.
	sendsBy := make([][]*SendOp, f.NumRanks)
	recvsBy := make([][]*RecvOp, f.NumRanks)
	par.For(f.NumRanks, workers, func(r int) {
		sends, recvs, err := extractRank(a.Events[r], comms[r])
		if err != nil {
			errs[r] = fmt.Errorf("analysis: rank %d: %w", r, err)
			return
		}
		sendsBy[r], recvsBy[r] = sends, recvs
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for r := 0; r < f.NumRanks; r++ {
		a.Sends = append(a.Sends, sendsBy[r]...)
		a.Recvs = append(a.Recvs, recvsBy[r]...)
	}

	a.matchP2P()
	a.Matrix = buildMatrix(f.NumRanks, a.Sends)
	a.Profile = buildProfile(a.Events)
	a.Late = lateStats(a.Matches)
	return a, nil
}

// CommGroup returns the world ranks of a communicator as resolved from
// rank r's stream (comm rank i ↔ world rank group[i]), or nil if the
// comm id is unknown on that rank.
func (a *Analysis) CommGroup(rank int, commID int64) []int {
	if rank < 0 || rank >= len(a.comms) {
		return nil
	}
	if v, ok := a.comms[rank][commID]; ok {
		return v.group
	}
	return nil
}

// WallNs returns the trace's wall time: the latest event end across
// all ranks (timelines start at 0 per rank).
func (a *Analysis) WallNs() int64 {
	var wall int64
	for _, evs := range a.Events {
		if n := len(evs); n > 0 && evs[n-1].TEnd > wall {
			wall = evs[n-1].TEnd
		}
	}
	return wall
}

// firstErr returns the lowest-rank error of a parallel stage, keeping
// error identity independent of goroutine scheduling.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortOps orders ops deterministically for matching: by receiver (or
// sender) stream position.
func sortOps[T interface{ key() (int, int) }](ops []T) {
	sort.SliceStable(ops, func(i, j int) bool {
		ri, ii := ops[i].key()
		rj, ij := ops[j].key()
		if ri != rj {
			return ri < rj
		}
		return ii < ij
	})
}
