package analysis

import (
	"sort"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// CommMatrix is the rank×rank point-to-point traffic matrix, counted
// at send post time (the same instant the runtime's metrics layer
// counts MsgsSent/BytesSent), so its per-rank totals are directly
// comparable with the live counters. Collectives are excluded — the
// runtime accounts them separately — and ProcNull sends never post.
type CommMatrix struct {
	Ranks int
	Count [][]int64 // [src][dst] messages
	Bytes [][]int64 // [src][dst] payload bytes
}

func buildMatrix(n int, sends []*SendOp) *CommMatrix {
	m := &CommMatrix{Ranks: n, Count: make([][]int64, n), Bytes: make([][]int64, n)}
	for i := range m.Count {
		m.Count[i] = make([]int64, n)
		m.Bytes[i] = make([]int64, n)
	}
	for _, s := range sends {
		if s.Rank < n && s.Dst < n {
			m.Count[s.Rank][s.Dst]++
			m.Bytes[s.Rank][s.Dst] += s.Bytes
		}
	}
	return m
}

// SentMsgsByRank returns each rank's outbound message count (row sums).
func (m *CommMatrix) SentMsgsByRank() []int64 {
	out := make([]int64, m.Ranks)
	for r, row := range m.Count {
		for _, c := range row {
			out[r] += c
		}
	}
	return out
}

// SentBytesByRank returns each rank's outbound payload bytes.
func (m *CommMatrix) SentBytesByRank() []int64 {
	out := make([]int64, m.Ranks)
	for r, row := range m.Bytes {
		for _, b := range row {
			out[r] += b
		}
	}
	return out
}

// TotalMsgs returns the matrix-wide message count.
func (m *CommMatrix) TotalMsgs() int64 {
	var t int64
	for _, c := range m.SentMsgsByRank() {
		t += c
	}
	return t
}

// TotalBytes returns the matrix-wide payload bytes.
func (m *CommMatrix) TotalBytes() int64 {
	var t int64
	for _, b := range m.SentBytesByRank() {
		t += b
	}
	return t
}

// FuncProfile is one MPI function's time profile across ranks.
type FuncProfile struct {
	Func      mpispec.FuncID
	Calls     int64
	TotalNs   int64
	MinRankNs int64   // smallest per-rank time among ranks that call it
	MaxRankNs int64   // largest per-rank time
	MeanNs    float64 // mean per-rank time over all ranks
	Imbalance float64 // MaxRankNs / MeanNs (1.0 = perfectly balanced)
	PerRankNs []int64
}

// Profile aggregates time spent inside MPI per function and per rank.
type Profile struct {
	Ranks       int
	Funcs       []FuncProfile // sorted by TotalNs descending
	RankTotalNs []int64       // total MPI time per rank, all functions
}

func buildProfile(events [][]Event) *Profile {
	n := len(events)
	p := &Profile{Ranks: n, RankTotalNs: make([]int64, n)}
	perFunc := map[mpispec.FuncID][]int64{}
	calls := map[mpispec.FuncID]int64{}
	for r, evs := range events {
		for _, ev := range evs {
			d := ev.Duration()
			f := ev.Func()
			if perFunc[f] == nil {
				perFunc[f] = make([]int64, n)
			}
			perFunc[f][r] += d
			calls[f]++
			p.RankTotalNs[r] += d
		}
	}
	for f, perRank := range perFunc {
		fp := FuncProfile{Func: f, Calls: calls[f], PerRankNs: perRank, MinRankNs: -1}
		for _, t := range perRank {
			fp.TotalNs += t
			if t > fp.MaxRankNs {
				fp.MaxRankNs = t
			}
			if t > 0 && (fp.MinRankNs < 0 || t < fp.MinRankNs) {
				fp.MinRankNs = t
			}
		}
		if fp.MinRankNs < 0 {
			fp.MinRankNs = 0
		}
		if n > 0 {
			fp.MeanNs = float64(fp.TotalNs) / float64(n)
		}
		if fp.MeanNs > 0 {
			fp.Imbalance = float64(fp.MaxRankNs) / fp.MeanNs
		}
		p.Funcs = append(p.Funcs, fp)
	}
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].TotalNs != p.Funcs[j].TotalNs {
			return p.Funcs[i].TotalNs > p.Funcs[j].TotalNs
		}
		return p.Funcs[i].Func < p.Funcs[j].Func
	})
	return p
}
