package analysis

import (
	"fmt"
	"io"

	"github.com/hpcrepro/pilgrim/internal/traceevent"
)

// Exporters: Chrome trace-event JSON (loadable in Perfetto and
// chrome://tracing, document shape shared via internal/traceevent)
// and CSV tables.

// WritePerfetto emits the analysis as Chrome trace-event JSON: one
// track (tid) per rank under a single process, a complete ("X") event
// per MPI call, and a flow arrow per matched message from the send's
// posting call to the receive's completing call.
func (a *Analysis) WritePerfetto(w io.Writer) error {
	doc := traceevent.NewDoc()
	for r := range a.Events {
		doc.Add(traceevent.ThreadName(0, r, fmt.Sprintf("rank %d", r)))
	}
	for r, evs := range a.Events {
		for _, ev := range evs {
			doc.Add(traceevent.Event{
				Name: ev.Func().Name(), Ph: "X",
				Ts: traceevent.US(ev.TStart), Dur: traceevent.US(ev.TEnd - ev.TStart),
				Pid: 0, Tid: r,
				Args: map[string]any{"call": ev.Index},
			})
		}
	}
	for i, m := range a.Matches {
		doc.Add(traceevent.Event{
			Name: "msg", Ph: "s", Cat: "p2p", ID: i + 1,
			Ts: traceevent.US(m.Send.TPost), Pid: 0, Tid: m.Send.Rank,
			Args: map[string]any{"bytes": m.Send.Bytes, "tag": m.Send.Tag},
		}, traceevent.Event{
			Name: "msg", Ph: "f", BP: "e", Cat: "p2p", ID: i + 1,
			Ts: traceevent.US(m.Recv.TDone), Pid: 0, Tid: m.Recv.Rank,
		})
	}
	return doc.Write(w)
}

// WriteCommMatrixCSV emits the traffic matrix as one row per
// (src, dst) pair with a message and a byte column.
func (a *Analysis) WriteCommMatrixCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,messages,bytes"); err != nil {
		return err
	}
	m := a.Matrix
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if m.Count[s][d] == 0 && m.Bytes[s][d] == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d\n", s, d, m.Count[s][d], m.Bytes[s][d]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteProfileCSV emits the per-function time profile.
func (a *Analysis) WriteProfileCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "function,calls,total_ns,min_rank_ns,mean_rank_ns,max_rank_ns,imbalance"); err != nil {
		return err
	}
	for _, fp := range a.Profile.Funcs {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.1f,%d,%.3f\n",
			fp.Func.Name(), fp.Calls, fp.TotalNs, fp.MinRankNs, fp.MeanNs, fp.MaxRankNs, fp.Imbalance); err != nil {
			return err
		}
	}
	return nil
}

// WriteMessagesCSV emits one row per matched message, with post and
// completion times on both sides (nanoseconds since each rank's
// timeline origin).
func (a *Analysis) WriteMessagesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,tag,bytes,send_post_ns,send_done_ns,recv_post_ns,recv_done_ns"); err != nil {
		return err
	}
	for _, m := range a.Matches {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			m.Send.Rank, m.Recv.Rank, m.Send.Tag, m.Send.Bytes,
			m.Send.TPost, m.Send.TDone, m.Recv.TPost, m.Recv.TDone); err != nil {
			return err
		}
	}
	return nil
}
