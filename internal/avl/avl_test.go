package avl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertFind(t *testing.T) {
	var tr Tree
	tr.Insert(Segment{Addr: 100, Size: 50, ID: 1})
	tr.Insert(Segment{Addr: 200, Size: 10, ID: 2})
	tr.Insert(Segment{Addr: 10, Size: 5, ID: 3})

	cases := []struct {
		p      uint64
		id     int32
		wantOK bool
	}{
		{100, 1, true}, {149, 1, true}, {150, 0, false},
		{200, 2, true}, {209, 2, true}, {210, 0, false},
		{10, 3, true}, {14, 3, true}, {15, 0, false},
		{9, 0, false}, {99, 0, false}, {0, 0, false},
	}
	for _, c := range cases {
		seg, ok := tr.Find(c.p)
		if ok != c.wantOK || (ok && seg.ID != c.id) {
			t.Errorf("Find(%d) = (%+v,%v), want id %d ok %v", c.p, seg, ok, c.id, c.wantOK)
		}
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	for i := uint64(0); i < 100; i++ {
		tr.Insert(Segment{Addr: i * 10, Size: 10, ID: int32(i)})
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 100; i += 2 {
		if !tr.Delete(i * 10) {
			t.Fatalf("Delete(%d) failed", i*10)
		}
	}
	if tr.Delete(5) {
		t.Fatal("deleted nonexistent address")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d after deletes", tr.Len())
	}
	for i := uint64(0); i < 100; i++ {
		seg, ok := tr.Find(i*10 + 3)
		if i%2 == 0 {
			if ok {
				t.Fatalf("found deleted segment %d: %+v", i, seg)
			}
		} else if !ok || seg.ID != int32(i) {
			t.Fatalf("lost segment %d", i)
		}
	}
	if !tr.CheckBalance() {
		t.Fatal("unbalanced after deletes")
	}
}

func TestReplaceSameAddr(t *testing.T) {
	var tr Tree
	tr.Insert(Segment{Addr: 42, Size: 8, ID: 1})
	tr.Insert(Segment{Addr: 42, Size: 16, ID: 2})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	seg, ok := tr.Find(50)
	if !ok || seg.ID != 2 {
		t.Fatalf("replacement not visible: %+v %v", seg, ok)
	}
}

func TestLookupExact(t *testing.T) {
	var tr Tree
	tr.Insert(Segment{Addr: 7, Size: 3, ID: 9})
	if _, ok := tr.Lookup(8); ok {
		t.Fatal("Lookup must match start address only")
	}
	seg, ok := tr.Lookup(7)
	if !ok || seg.ID != 9 {
		t.Fatal("Lookup(7) failed")
	}
}

func TestWalkOrder(t *testing.T) {
	var tr Tree
	addrs := []uint64{50, 10, 90, 30, 70, 20}
	for _, a := range addrs {
		tr.Insert(Segment{Addr: a, Size: 1})
	}
	var got []uint64
	tr.Walk(func(s Segment) bool {
		got = append(got, s.Addr)
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("walk not sorted: %v", got)
		}
	}
	if len(got) != len(addrs) {
		t.Fatalf("walk visited %d of %d", len(got), len(addrs))
	}
}

func TestBalanceHeight(t *testing.T) {
	var tr Tree
	const n = 1 << 12
	for i := 0; i < n; i++ {
		tr.Insert(Segment{Addr: uint64(i), Size: 1})
	}
	// AVL height bound: 1.44 log2(n+2).
	if h := tr.Height(); h > 20 {
		t.Fatalf("height %d too large for %d sequential inserts", h, n)
	}
	if !tr.CheckBalance() {
		t.Fatal("unbalanced")
	}
}

func TestQuickRandomOps(t *testing.T) {
	f := func(ops []uint16) bool {
		var tr Tree
		ref := map[uint64]Segment{}
		for i, op := range ops {
			addr := uint64(op%512) * 8
			if i%3 == 2 {
				delete(ref, addr)
				tr.Delete(addr)
			} else {
				seg := Segment{Addr: addr, Size: 8, ID: int32(i)}
				ref[addr] = seg
				tr.Insert(seg)
			}
		}
		if !tr.CheckBalance() || tr.Len() != len(ref) {
			return false
		}
		for addr, want := range ref {
			seg, ok := tr.Find(addr + 4)
			if !ok || seg.ID != want.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeSegment(t *testing.T) {
	var tr Tree
	tr.Insert(Segment{Addr: 5, Size: 0, ID: 1})
	if _, ok := tr.Find(5); !ok {
		t.Fatal("zero-size segment should contain its own address")
	}
	if _, ok := tr.Find(6); ok {
		t.Fatal("zero-size segment must not contain other addresses")
	}
}

func BenchmarkFindIn10k(b *testing.B) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tr.Insert(Segment{Addr: uint64(i) * 64, Size: 64, ID: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := uint64(rng.Intn(10000*64 + 100))
		tr.Find(p)
	}
}
