// Package avl provides an AVL tree over memory segments, ordered by
// starting address. Pilgrim (§3.3.3) uses it to map a pointer used in
// an MPI call to the allocation that contains it, in O(log N).
package avl

// Segment is one tracked memory allocation.
type Segment struct {
	Addr   uint64 // starting address
	Size   uint64 // length in bytes; stack fallbacks use 1
	ID     int32  // symbolic id assigned by the tracer
	Device int32  // device location (0 = host), for CUDA-style allocations
}

// Contains reports whether address p falls inside the segment.
func (s Segment) Contains(p uint64) bool {
	return p >= s.Addr && (s.Size == 0 && p == s.Addr || p-s.Addr < s.Size)
}

type node struct {
	seg         Segment
	left, right *node
	height      int
}

// Tree is an AVL tree of non-overlapping segments keyed by Addr.
type Tree struct {
	root *node
	n    int
}

// Len returns the number of segments currently tracked.
func (t *Tree) Len() int { return t.n }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) *node {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

// Insert adds a segment. An existing segment with the same Addr is
// replaced (matching realloc-in-place semantics).
func (t *Tree) Insert(seg Segment) {
	var ins func(n *node) *node
	added := true
	ins = func(n *node) *node {
		if n == nil {
			return &node{seg: seg, height: 1}
		}
		switch {
		case seg.Addr < n.seg.Addr:
			n.left = ins(n.left)
		case seg.Addr > n.seg.Addr:
			n.right = ins(n.right)
		default:
			n.seg = seg
			added = false
			return n
		}
		return fix(n)
	}
	t.root = ins(t.root)
	if added {
		t.n++
	}
}

// Delete removes the segment starting exactly at addr and reports
// whether one was found.
func (t *Tree) Delete(addr uint64) bool {
	var deleted bool
	var del func(n *node, addr uint64) *node
	del = func(n *node, addr uint64) *node {
		if n == nil {
			return nil
		}
		switch {
		case addr < n.seg.Addr:
			n.left = del(n.left, addr)
		case addr > n.seg.Addr:
			n.right = del(n.right, addr)
		default:
			deleted = true
			if n.left == nil {
				return n.right
			}
			if n.right == nil {
				return n.left
			}
			m := n.right
			for m.left != nil {
				m = m.left
			}
			n.seg = m.seg
			n.right = del(n.right, m.seg.Addr)
		}
		return fix(n)
	}
	t.root = del(t.root, addr)
	if deleted {
		t.n--
	}
	return deleted
}

// Lookup returns the segment starting exactly at addr.
func (t *Tree) Lookup(addr uint64) (Segment, bool) {
	n := t.root
	for n != nil {
		switch {
		case addr < n.seg.Addr:
			n = n.left
		case addr > n.seg.Addr:
			n = n.right
		default:
			return n.seg, true
		}
	}
	return Segment{}, false
}

// Find returns the segment containing address p, i.e. the segment with
// the greatest Addr <= p whose extent covers p.
func (t *Tree) Find(p uint64) (Segment, bool) {
	var best *node
	n := t.root
	for n != nil {
		if n.seg.Addr <= p {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best != nil && best.seg.Contains(p) {
		return best.seg, true
	}
	return Segment{}, false
}

// Walk visits segments in address order until fn returns false.
func (t *Tree) Walk(fn func(Segment) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.seg) && walk(n.right)
	}
	walk(t.root)
}

// Height returns the tree height (for balance tests).
func (t *Tree) Height() int { return height(t.root) }

// CheckBalance verifies AVL balance and ordering invariants.
func (t *Tree) CheckBalance() bool {
	ok := true
	var last *Segment
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		hl := walk(n.left)
		if last != nil && last.Addr >= n.seg.Addr {
			ok = false
		}
		seg := n.seg
		last = &seg
		hr := walk(n.right)
		if hl-hr > 1 || hr-hl > 1 {
			ok = false
		}
		h := 1 + max(hl, hr)
		if h != n.height {
			ok = false
		}
		return h
	}
	walk(t.root)
	return ok
}
