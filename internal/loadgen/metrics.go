package loadgen

import "github.com/hpcrepro/pilgrim/internal/metrics"

// Metrics bundles the load generator's instrument handles, on the same
// registry primitives as the tracer and collector so one scrape
// endpoint (or one JSON report) covers the whole replay.
type Metrics struct {
	Reg *metrics.Registry

	ActiveStreams *metrics.Gauge   // replay streams currently sending
	PairsSent     *metrics.Counter // (hello, snapshot) pairs put on the wire
	BytesSent     *metrics.Counter // raw frame bytes sent (framing included)

	Acks     *metrics.Counter // pairs acked AckOK
	AckDups  *metrics.Counter // pairs acked AckDuplicate (chaos dup/resend hits)
	AckErrs  *metrics.Counter // pairs acked AckError (collector said no)
	Nacks    *metrics.Counter // admission NACKs (stream aborts, run counted not fatal)
	SendErrs *metrics.Counter // transport failures after retries

	ChaosDropped   *metrics.Counter // pairs skipped by -drop
	ChaosDuped     *metrics.Counter // extra sends injected by -dup
	ChaosReordered *metrics.Counter // adjacent pair swaps injected by -reorder
	ChaosHeld      *metrics.Counter // pairs withheld by straggler hold-back

	AckLatency *metrics.Histogram // per-pair send→ack round trip (ns)
	WaitedRuns *metrics.Counter   // finalized traces awaited and received
	TraceBytes *metrics.Counter   // trace bytes received by the wait phase
}

// NewMetrics registers the loadgen families on reg (a fresh registry
// when nil).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Metrics{
		Reg:           reg,
		ActiveStreams: reg.Gauge("pilgrim_loadgen_active_streams", "replay streams currently sending"),
		PairsSent:     reg.Counter("pilgrim_loadgen_pairs_sent_total", "(hello, snapshot) frame pairs put on the wire"),
		BytesSent:     reg.Counter("pilgrim_loadgen_bytes_sent_total", "raw frame bytes sent, framing included"),

		Acks:     reg.Counter("pilgrim_loadgen_acks_total", "pairs acknowledged AckOK"),
		AckDups:  reg.Counter("pilgrim_loadgen_ack_duplicates_total", "pairs acknowledged AckDuplicate"),
		AckErrs:  reg.Counter("pilgrim_loadgen_ack_errors_total", "pairs rejected with AckError"),
		Nacks:    reg.Counter("pilgrim_loadgen_nacks_total", "admission NACKs received (stream aborted, counted not fatal)"),
		SendErrs: reg.Counter("pilgrim_loadgen_send_errors_total", "pairs lost to transport failures after retries"),

		ChaosDropped:   reg.Counter("pilgrim_loadgen_chaos_dropped_total", "pairs skipped by the drop probability"),
		ChaosDuped:     reg.Counter("pilgrim_loadgen_chaos_duplicated_total", "extra duplicate sends injected"),
		ChaosReordered: reg.Counter("pilgrim_loadgen_chaos_reordered_total", "adjacent pair swaps injected"),
		ChaosHeld:      reg.Counter("pilgrim_loadgen_chaos_held_total", "pairs withheld by straggler hold-back"),

		AckLatency: reg.Histogram("pilgrim_loadgen_ack_latency_ns", "per-pair send-to-ack round trip"),
		WaitedRuns: reg.Counter("pilgrim_loadgen_waited_runs_total", "finalized traces awaited and received"),
		TraceBytes: reg.Counter("pilgrim_loadgen_trace_bytes_total", "trace bytes received by the wait phase"),
	}
}
