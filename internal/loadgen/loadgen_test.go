package loadgen_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/loadgen"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// traceWorkload runs a real workload on n simulated ranks and returns
// every rank's snapshot (same helper shape as the collect tests).
func traceWorkload(t *testing.T, n int) []*core.Snapshot {
	t.Helper()
	tracers := make([]*core.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := 0; i < n; i++ {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	body, err := workloads.Get("stencil2d", 3, n)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.RunOpt(n, mpi.Options{Interceptors: ics}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]*core.Snapshot, n)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	return snaps
}

// captureJournal ships snaps through a capture-mode collector and
// returns the run's journal directory.
func captureJournal(t *testing.T, runID string, snaps []*core.Snapshot) string {
	t.Helper()
	dir := t.TempDir()
	src, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: dir, KeepJournalFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	c := &collect.Client{
		Addr:  src.Addr(),
		Run:   collect.RunInfo{RunID: runID, WorldSize: len(snaps)},
		Retry: collect.RetryPolicy{Seed: 1},
	}
	if _, err := c.Collect(snaps); err != nil {
		t.Fatal(err)
	}
	src.Close()
	return filepath.Join(dir, "journal", runID)
}

func startTarget(t *testing.T, cfg collect.Config) *collect.Server {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	srv, err := collect.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestAmplifyByteIdentity is the tentpole's acceptance test: a journal
// captured from an N-rank run, replayed with amplify 8 at 50× speed,
// must yield 8 finalized runs on a fresh collector, each byte-identical
// to the original local finalize output.
func TestAmplifyByteIdentity(t *testing.T) {
	const world = 3
	snaps := traceWorkload(t, world)
	jdir := captureJournal(t, "src", snaps)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	var want bytes.Buffer
	if _, err := local.WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	target := startTarget(t, collect.Config{})
	r, err := loadgen.New(loadgen.Config{
		Addr:     target.Addr(),
		Journals: []string{jdir},
		Amplify:  8,
		Speedup:  50,
		Wait:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams != 8 || rep.Acks != 8*world || rep.Nacks != 0 || rep.SendErrs != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.WaitedRuns != 8 {
		t.Fatalf("waited %d runs, want 8", rep.WaitedRuns)
	}
	runs := target.Runs()
	if len(runs) != 8 {
		t.Fatalf("target holds %d runs, want 8", len(runs))
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("src-lg%04d", i)
		st, ok := target.Run(id)
		if !ok || st.State != "finalized" {
			t.Fatalf("run %s: %+v (ok=%v)", id, st, ok)
		}
		data, ok := target.TraceBytes(id)
		if !ok || !bytes.Equal(data, want.Bytes()) {
			t.Fatalf("run %s trace differs from local finalize (%d vs %d bytes)", id, len(data), want.Len())
		}
	}
}

// TestStragglerHoldbackSalvage: withholding the highest rank entirely
// must land every amplified run in the salvaged phase, with the held
// rank listed in the trace's salvage metadata.
func TestStragglerHoldbackSalvage(t *testing.T) {
	const world = 3
	snaps := traceWorkload(t, world)
	jdir := captureJournal(t, "hold", snaps)

	target := startTarget(t, collect.Config{StragglerDeadline: 300 * time.Millisecond})
	r, err := loadgen.New(loadgen.Config{
		Addr:      target.Addr(),
		Journals:  []string{jdir},
		Amplify:   4,
		Speedup:   50,
		HoldRanks: 1,
		Wait:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Held != 4 { // one held pair per stream
		t.Fatalf("held %d pairs, want 4", rep.Held)
	}
	if rep.Acks != 4*(world-1) {
		t.Fatalf("acks %d, want %d", rep.Acks, 4*(world-1))
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("hold-lg%04d", i)
		st, ok := target.Run(id)
		if !ok || st.State != "salvaged" {
			t.Fatalf("run %s state %q, want salvaged", id, st.State)
		}
		h, _ := target.Health(id)
		if h.Phase != "salvaged" {
			t.Fatalf("run %s phase %q", id, h.Phase)
		}
		data, ok := target.TraceBytes(id)
		if !ok {
			t.Fatalf("run %s has no trace", id)
		}
		f, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if f.Salvage == nil || len(f.Salvage.FailedRanks) != 1 || f.Salvage.FailedRanks[0] != world-1 {
			t.Fatalf("run %s salvage metadata = %+v", id, f.Salvage)
		}
	}
}

// TestHoldForCompletes: a straggler held for a delay (not withheld)
// must still complete its run once the hold releases.
func TestHoldForCompletes(t *testing.T) {
	snaps := traceWorkload(t, 2)
	jdir := captureJournal(t, "late", snaps)
	target := startTarget(t, collect.Config{})
	r, err := loadgen.New(loadgen.Config{
		Addr:      target.Addr(),
		Journals:  []string{jdir},
		Amplify:   2,
		Speedup:   50,
		HoldRanks: 1,
		HoldFor:   50 * time.Millisecond,
		Wait:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acks != 4 || rep.WaitedRuns != 2 {
		t.Fatalf("report: %+v", rep)
	}
	for _, st := range target.Runs() {
		if st.State != "finalized" {
			t.Fatalf("run %s state %q", st.ID, st.State)
		}
	}
}

// TestNackCountedNotFatal: amplification past the collector's max-runs
// cap must abort the excess streams with counted NACKs and still
// return a nil error — admission pressure is a result, not a failure.
func TestNackCountedNotFatal(t *testing.T) {
	const world = 2
	snaps := traceWorkload(t, world)
	jdir := captureJournal(t, "cap", snaps)

	// MaxRuns 2 and one rank withheld per stream: admitted runs never
	// leave stateCollecting, so every stream past the first two is
	// deterministically NACKed.
	target := startTarget(t, collect.Config{MaxRuns: 2})
	r, err := loadgen.New(loadgen.Config{
		Addr:      target.Addr(),
		Journals:  []string{jdir},
		Amplify:   6,
		Speedup:   50,
		HoldRanks: 1,
		MaxConns:  1, // serialize streams so admission order is deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nacks != 4 || rep.NackedStreams != 4 {
		t.Fatalf("nacks %d (streams %d), want 4", rep.Nacks, rep.NackedStreams)
	}
	if rep.Acks != 2 { // two admitted streams × one unheld rank
		t.Fatalf("acks %d, want 2", rep.Acks)
	}
}

// TestChaosDeterministic: the same seed must inject exactly the same
// chaos, and drops surface as missing ranks (duplicates as dup-acks).
func TestChaosDeterministic(t *testing.T) {
	snaps := traceWorkload(t, 4)
	jdir := captureJournal(t, "chaos", snaps)
	run := func() *loadgen.Report {
		target := startTarget(t, collect.Config{StragglerDeadline: 400 * time.Millisecond})
		r, err := loadgen.New(loadgen.Config{
			Addr:     target.Addr(),
			Journals: []string{jdir},
			Amplify:  3,
			Speedup:  50,
			Seed:     7,
			Drop:     0.3,
			Dup:      0.3,
			Reorder:  0.3,
			Jitter:   0.2,
			Wait:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Dropped != b.Dropped || a.Duped != b.Duped || a.Reordered != b.Reordered {
		t.Fatalf("chaos not deterministic: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duped == 0 {
		t.Fatalf("chaos probabilities 0.3 over 12 pairs injected nothing: %+v", a)
	}
	if a.AckDups == 0 {
		t.Fatalf("duplicate sends earned no AckDuplicate: %+v", a)
	}
}

// TestOpenLoopRate: open-loop pacing must stretch the replay to
// roughly the offered rate when the collector can keep up.
func TestOpenLoopRate(t *testing.T) {
	snaps := traceWorkload(t, 2)
	jdir := captureJournal(t, "rate", snaps)
	target := startTarget(t, collect.Config{})
	r, err := loadgen.New(loadgen.Config{
		Addr:     target.Addr(),
		Journals: []string{jdir},
		Amplify:  5,
		Rate:     100, // 10 pairs at 100/s ≈ 100ms floor
		Wait:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OfferedRatePps != 100 {
		t.Fatalf("offered rate %v", rep.OfferedRatePps)
	}
	if rep.Acks != 10 {
		t.Fatalf("acks %d, want 10", rep.Acks)
	}
	if el := time.Since(t0); el < 80*time.Millisecond {
		t.Fatalf("open-loop replay of 10 pairs at 100/s took only %s", el)
	}
}

func TestNewRejectsEmptyJournal(t *testing.T) {
	snaps := traceWorkload(t, 2)
	dir := t.TempDir()
	src, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: dir}) // no capture mode
	if err != nil {
		t.Fatal(err)
	}
	c := &collect.Client{Addr: src.Addr(), Run: collect.RunInfo{RunID: "empty", WorldSize: 2}}
	if _, err := c.Collect(snaps); err != nil {
		t.Fatal(err)
	}
	src.Close()
	_, err = loadgen.New(loadgen.Config{Addr: "127.0.0.1:1", Journals: []string{filepath.Join(dir, "journal", "empty")}})
	if err == nil {
		t.Fatal("New accepted a frameless journal")
	}
}
