// Package loadgen is Pilgrim's wire-stream replay load generator: it
// reads captured collector journals (a complete wire-format recording
// of a run's ingest stream — see internal/collect's journal) and fires
// them back at a live collector with controlled pacing, chaos
// injection, and N-way amplification.
//
// Amplification is the trick that makes one capture soak a fleet: the
// same frame pairs are re-keyed onto thousands of synthetic run IDs by
// patching the run-ID field of each Hello frame and recomputing its
// CRC32C trailer (wire.RekeyHelloFrame) — no decode, no re-encode, and
// the (much larger) snapshot frames are shared verbatim across every
// amplified copy. Pacing is either closed-loop (the capture's recorded
// inter-frame timing divided by Speedup) or open-loop (a global slot
// pacer offering Rate pairs/sec regardless of how fast the collector
// acks). Chaos — jitter, drops, duplicates, reorders, per-rank
// straggler hold-back — drives exactly the degraded paths the
// collector grew in earlier PRs: idempotent dedupe, admission NACKs,
// straggler-deadline salvage.
package loadgen

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// Config parameterizes one replay campaign.
type Config struct {
	// Addr is the collector's TCP ingest address.
	Addr string
	// Journals are run journal directories to replay (each holding
	// MANIFEST.json + frames.jnl; resolve with collect.FindJournals).
	Journals []string

	// Amplify is how many synthetic copies of each journal to replay
	// (<= 1 replays once under the original run ID; > 1 re-keys every
	// copy onto "<orig>-lg<i>").
	Amplify int
	// RunPrefix overrides the synthetic ID base: IDs become
	// "<RunPrefix>-<orig>-lg<i>". Also forces re-keying at Amplify 1, so
	// a capture can be re-offered to the collector that made it without
	// colliding with the original run.
	RunPrefix string

	// Speedup divides the capture's recorded inter-frame gaps
	// (closed-loop pacing; <= 0 means 1). Ignored when Rate is set.
	Speedup float64
	// Rate switches to open-loop pacing: a global pacer offers this many
	// pairs/sec across all streams, never slowing down for a lagging
	// collector — the gap between offered and achieved rate IS the
	// measurement. 0 keeps closed-loop pacing.
	Rate float64

	// Chaos. All probabilities are per frame pair in [0,1]; Seed makes a
	// campaign reproducible (0 derives per-stream seeds from IDs alone).
	Seed    int64
	Jitter  float64 // extra pacing noise: each delay scaled by ±Jitter
	Drop    float64 // probability a pair is silently skipped (gap)
	Dup     float64 // probability a pair is sent twice back to back
	Reorder float64 // probability a pair swaps with its successor
	// HoldRanks holds back each stream's highest N ranks — the synthetic
	// stragglers. With HoldFor > 0 their pairs land late, after the rest
	// of the stream plus HoldFor; with HoldFor == 0 they never land and
	// the run must finish through the collector's straggler-deadline
	// salvage path.
	HoldRanks int
	HoldFor   time.Duration

	// Wait, when set, blocks on each surviving stream's run after its
	// pairs are sent and receives the finalized trace (the closed-loop
	// end-to-end completion check; bytes are counted then discarded).
	Wait bool

	// MaxConns bounds concurrently replaying streams (default 64).
	MaxConns int
	// IOTimeout bounds each dial/read/write (default 30s).
	IOTimeout time.Duration

	// Metrics receives the campaign's instrumentation; nil creates a
	// private registry (reachable via Runner.Metrics).
	Metrics *Metrics
	// Obs, when non-nil, records stream-level replay spans.
	Obs  *obs.Sink
	Logf func(format string, args ...any)
}

// Report is a campaign's JSON run report — also the payload of the
// experiment harness's BENCH_loadgen.json.
type Report struct {
	Journals int `json:"journals"`
	Streams  int `json:"streams"`
	Amplify  int `json:"amplify"`

	PairsPlanned int64 `json:"pairs_planned"` // streams × pairs per capture
	PairsSent    int64 `json:"pairs_sent"`
	BytesSent    int64 `json:"bytes_sent"`

	Acks     int64 `json:"acks"`
	AckDups  int64 `json:"ack_duplicates"`
	AckErrs  int64 `json:"ack_errors"`
	Nacks    int64 `json:"nacks"`
	SendErrs int64 `json:"send_errors"`

	Dropped   int64 `json:"chaos_dropped"`
	Duped     int64 `json:"chaos_duplicated"`
	Reordered int64 `json:"chaos_reordered"`
	Held      int64 `json:"chaos_held"`

	NackedStreams int `json:"nacked_streams"` // aborted by admission control
	FailedStreams int `json:"failed_streams"` // aborted by transport errors

	ElapsedSec      float64 `json:"elapsed_sec"`
	OfferedRatePps  float64 `json:"offered_rate_pairs_per_sec"`
	AchievedRatePps float64 `json:"achieved_rate_pairs_per_sec"`

	AckLatencyP50Ms float64 `json:"ack_latency_p50_ms"`
	AckLatencyP95Ms float64 `json:"ack_latency_p95_ms"`
	AckLatencyP99Ms float64 `json:"ack_latency_p99_ms"`

	WaitedRuns int64 `json:"waited_runs,omitempty"`
	TraceBytes int64 `json:"trace_bytes,omitempty"`
}

// capture is one journal loaded into memory, shared read-only by every
// stream amplified from it.
type capture struct {
	man     collect.JournalManifest
	entries []*collect.JournalEntry
}

// stream is one amplified replay of one capture: its own run ID, its
// own connection, its own deterministic chaos RNG.
type stream struct {
	cap   *capture
	runID string
	rekey bool
}

// Runner executes one campaign. Create with New, drive with Run.
type Runner struct {
	cfg     Config
	m       *Metrics
	obs     *obs.Sink
	streams []*stream
	planned int64

	doneStreams   atomic.Int64
	nackedStreams atomic.Int64
	failedStreams atomic.Int64
}

// New loads the configured journals and lays out the stream plan.
// Journals whose frames were dropped at finalize (captured without
// -keep-journal) are an error: there is nothing to replay.
func New(cfg Config) (*Runner, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: no collector address")
	}
	if len(cfg.Journals) == 0 {
		return nil, fmt.Errorf("loadgen: no journals to replay")
	}
	if cfg.Amplify < 1 {
		cfg.Amplify = 1
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	r := &Runner{cfg: cfg, m: cfg.Metrics, obs: cfg.Obs}
	if r.m == nil {
		r.m = NewMetrics(nil)
	}
	for _, dir := range cfg.Journals {
		jr, err := collect.OpenJournal(dir)
		if err != nil {
			return nil, err
		}
		entries, err := jr.ReadAll()
		jr.Close()
		if err != nil {
			return nil, err
		}
		if torn, trunc := jr.Torn(); torn {
			r.logf("journal %s: torn tail (%d bytes ignored)", dir, trunc)
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("loadgen: journal %s holds no frames (captured without -keep-journal?)", dir)
		}
		cp := &capture{man: jr.Manifest(), entries: entries}
		for i := 0; i < cfg.Amplify; i++ {
			st := &stream{cap: cp, runID: cp.man.RunID}
			if cfg.Amplify > 1 || cfg.RunPrefix != "" {
				base := cp.man.RunID
				if cfg.RunPrefix != "" {
					base = cfg.RunPrefix + "-" + base
				}
				st.runID = fmt.Sprintf("%s-lg%04d", base, i)
				st.rekey = true
			}
			if len(st.runID) > wire.MaxRunID {
				return nil, fmt.Errorf("loadgen: synthetic run id %q exceeds %d bytes", st.runID, wire.MaxRunID)
			}
			r.streams = append(r.streams, st)
			r.planned += int64(len(entries))
		}
	}
	return r, nil
}

// Metrics returns the campaign's instrumentation bundle.
func (r *Runner) Metrics() *Metrics { return r.m }

// Planned returns the stream count and total planned pairs — the
// denominator for a live progress display.
func (r *Runner) Planned() (streams int, pairs int64) {
	return len(r.streams), r.planned
}

// DoneStreams returns how many streams have finished (any outcome).
func (r *Runner) DoneStreams() int64 { return r.doneStreams.Load() }

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

func (r *Runner) ioTimeout() time.Duration {
	if r.cfg.IOTimeout > 0 {
		return r.cfg.IOTimeout
	}
	return 30 * time.Second
}

// pacer is the open-loop clock: stream goroutines claim globally
// numbered send slots and sleep until their slot's scheduled instant.
// A collector that acks slowly does not slow the offered rate — the
// senders just fall behind their slots and stop sleeping, and the
// achieved rate sags below the offered one.
type pacer struct {
	start    time.Time
	interval float64 // ns between slots
	slot     atomic.Int64
}

func (p *pacer) wait(ctx context.Context) {
	s := p.slot.Add(1) - 1
	target := p.start.Add(time.Duration(float64(s) * p.interval))
	if d := time.Until(target); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
}

// Run executes the campaign and blocks until every stream finishes.
// Admission NACKs and transport failures abort their own stream and
// are counted, never returned — the report is the result. The error
// path is reserved for ctx cancellation.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	var pc *pacer
	if r.cfg.Rate > 0 {
		pc = &pacer{start: time.Now(), interval: 1e9 / r.cfg.Rate}
	}
	rsp := r.obs.Start("loadgen", "loadgen.run").
		WithAttr("streams", int64(len(r.streams))).WithAttr("pairs_planned", r.planned)
	t0 := time.Now()
	sem := make(chan struct{}, r.cfg.MaxConns)
	var wg sync.WaitGroup
	for _, st := range r.streams {
		wg.Add(1)
		go func(st *stream) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			r.m.ActiveStreams.Add(1)
			r.replayStream(ctx, st, pc)
			r.m.ActiveStreams.Add(-1)
			r.doneStreams.Add(1)
		}(st)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	rsp.WithAttr("acks", r.m.Acks.Load()).WithAttr("nacks", r.m.Nacks.Load()).End()
	rep := r.report(elapsed)
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// streamSeed derives a stream's chaos RNG seed: deterministic per
// (campaign seed, run ID), distinct across amplified copies.
func streamSeed(seed int64, runID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(runID))
	return seed ^ int64(h.Sum64())
}

// replayStream sends one stream's frame pairs in capture order,
// applying pacing and chaos, over one connection (re-dialed on
// transport errors). Aborts on NACK or exhausted retries; both are
// counted, not fatal.
func (r *Runner) replayStream(ctx context.Context, st *stream, pc *pacer) {
	cfg := &r.cfg
	man := st.cap.man
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, st.runID)))
	ssp := r.obs.Start("loadgen", "loadgen.stream").WithRun(st.runID, -1, man.Epoch).
		WithAttr("pairs", int64(len(st.cap.entries)))

	// Partition out the synthetic stragglers: the stream's HoldRanks
	// highest ranks are either delayed (HoldFor > 0) or withheld.
	holdFrom := man.World // ranks >= holdFrom are held
	if cfg.HoldRanks > 0 {
		holdFrom = man.World - cfg.HoldRanks
		if holdFrom < 1 {
			holdFrom = 1 // always let rank 0 through so the run exists
		}
	}
	var normal, held []*collect.JournalEntry
	for _, e := range st.cap.entries {
		if e.Hello.Rank >= holdFrom {
			held = append(held, e)
		} else {
			normal = append(normal, e)
		}
	}

	conn, ok := r.sendEntries(ctx, st, nil, normal, rng, pc, true)
	if ok && len(held) > 0 {
		if cfg.HoldFor > 0 {
			select {
			case <-time.After(cfg.HoldFor):
			case <-ctx.Done():
			}
			conn, ok = r.sendEntries(ctx, st, conn, held, rng, pc, false)
		} else {
			r.m.ChaosHeld.Add(int64(len(held)))
			ssp = ssp.WithAttr("held", int64(len(held)))
		}
	}
	if !ok {
		ssp.WithStr("result", "aborted").End()
		return
	}
	if cfg.Wait {
		if conn == nil {
			conn, _ = collect.DialRaw(cfg.Addr, r.ioTimeout())
		}
		if conn != nil {
			r.waitRun(conn, st.runID)
		}
	}
	if conn != nil {
		conn.Close()
	}
	ssp.End()
}

// sendEntries ships entries in order over conn (dialing when nil),
// returning the live connection for reuse (nil if every pair was
// dropped before a dial happened) and whether the stream survived —
// false means it aborted on a NACK, an AckError, or exhausted
// transport retries. chaos gates drop/dup/reorder: the held-rank flush
// at the end of a stream replays clean so a HoldFor test
// deterministically completes its run.
func (r *Runner) sendEntries(ctx context.Context, st *stream, conn *collect.RawConn, entries []*collect.JournalEntry, rng *rand.Rand, pc *pacer, chaos bool) (*collect.RawConn, bool) {
	cfg := &r.cfg
	var rekeyBuf []byte
	var prevSendNs int64
	abort := func() (*collect.RawConn, bool) {
		if conn != nil {
			conn.Close()
		}
		return nil, false
	}
	for i := 0; i < len(entries); i++ {
		if ctx.Err() != nil {
			return abort()
		}
		e := entries[i]
		// Reorder: swap this pair with its successor (send i+1 now, the
		// current one on the next iteration).
		if chaos && cfg.Reorder > 0 && i+1 < len(entries) && rng.Float64() < cfg.Reorder {
			entries[i], entries[i+1] = entries[i+1], entries[i]
			e = entries[i]
			r.m.ChaosReordered.Inc()
		}
		// Pacing: open-loop slot, or recorded gap ÷ speedup. The recorded
		// clock is the producer's hello send timestamp; captures from v1
		// producers (SendNs 0) replay back to back.
		var delay time.Duration
		if pc != nil {
			pc.wait(ctx)
		} else {
			if prevSendNs > 0 && e.Hello.SendNs > prevSendNs {
				delay = time.Duration(float64(e.Hello.SendNs-prevSendNs) / cfg.Speedup)
			}
			if e.Hello.SendNs > 0 {
				prevSendNs = e.Hello.SendNs
			}
		}
		if chaos && cfg.Jitter > 0 && delay > 0 {
			delay = time.Duration(float64(delay) * (1 + cfg.Jitter*(2*rng.Float64()-1)))
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return abort()
			}
		}
		if chaos && cfg.Drop > 0 && rng.Float64() < cfg.Drop {
			r.m.ChaosDropped.Inc()
			continue
		}
		hello := e.HelloRaw
		if st.rekey {
			var err error
			rekeyBuf, err = wire.RekeyHelloFrame(rekeyBuf[:0], e.HelloRaw, st.runID)
			if err != nil {
				// A journal entry that read back with a valid CRC cannot fail
				// the re-key; treat it as a broken capture and abort.
				r.logf("stream %s: rekey: %v", st.runID, err)
				r.failedStreams.Add(1)
				r.m.SendErrs.Inc()
				return abort()
			}
			hello = rekeyBuf
		}
		sends := 1
		if chaos && cfg.Dup > 0 && rng.Float64() < cfg.Dup {
			sends = 2
			r.m.ChaosDuped.Inc()
		}
		for s := 0; s < sends; s++ {
			var ok bool
			conn, ok = r.sendPair(ctx, st, conn, hello, e.SnapRaw)
			if !ok {
				return nil, false
			}
		}
	}
	return conn, true
}

// sendPair ships one pair with bounded reconnect retries. Returns the
// (possibly re-dialed) connection and false when the stream must abort
// — an admission NACK, an AckError, or exhausted transport retries.
func (r *Runner) sendPair(ctx context.Context, st *stream, conn *collect.RawConn, hello, snap []byte) (*collect.RawConn, bool) {
	const attempts = 3
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if ctx.Err() != nil {
			if conn != nil {
				conn.Close()
			}
			return nil, false
		}
		if conn == nil {
			c, err := collect.DialRaw(r.cfg.Addr, r.ioTimeout())
			if err != nil {
				lastErr = err
				time.Sleep(time.Duration(a) * 50 * time.Millisecond)
				continue
			}
			conn = c
		}
		t0 := time.Now()
		ack, nack, err := conn.SendPair(hello, snap)
		if err != nil {
			// Transport trouble: the connection is suspect, re-dial and
			// re-send the same pair — ingest dedupes on (run, rank, epoch).
			conn.Close()
			conn = nil
			lastErr = err
			continue
		}
		r.m.PairsSent.Inc()
		r.m.BytesSent.Add(int64(len(hello) + len(snap)))
		r.m.AckLatency.Observe(time.Since(t0).Nanoseconds())
		if nack != nil {
			// Admission said no; the answer is permanent for this stream.
			r.m.Nacks.Inc()
			r.nackedStreams.Add(1)
			r.obs.Start("loadgen", "loadgen.nack").WithRun(st.runID, -1, st.cap.man.Epoch).
				WithStr("code", wire.NackCodeString(nack.Code)).Emit()
			conn.Close()
			return nil, false
		}
		switch ack.Status {
		case wire.AckOK:
			r.m.Acks.Inc()
		case wire.AckDuplicate:
			r.m.AckDups.Inc()
		default:
			r.m.AckErrs.Inc()
			r.logf("stream %s: collector rejected pair: %s", st.runID, ack.Detail)
			conn.Close()
			r.failedStreams.Add(1)
			return nil, false
		}
		return conn, true
	}
	r.m.SendErrs.Inc()
	r.failedStreams.Add(1)
	r.logf("stream %s: %d transport attempts exhausted: %v", st.runID, attempts, lastErr)
	return nil, false
}

// waitRun blocks for the stream's finalized trace on the live
// connection — the closed-loop completion check.
func (r *Runner) waitRun(conn *collect.RawConn, runID string) {
	data, err := conn.WaitTrace(runID)
	if err != nil {
		r.logf("stream %s: wait: %v", runID, err)
		return
	}
	r.m.WaitedRuns.Inc()
	r.m.TraceBytes.Add(int64(len(data)))
}

// report assembles the campaign report from the metric counters.
func (r *Runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		Journals: len(r.cfg.Journals),
		Streams:  len(r.streams),
		Amplify:  r.cfg.Amplify,

		PairsPlanned: r.planned,
		PairsSent:    r.m.PairsSent.Load(),
		BytesSent:    r.m.BytesSent.Load(),

		Acks:     r.m.Acks.Load(),
		AckDups:  r.m.AckDups.Load(),
		AckErrs:  r.m.AckErrs.Load(),
		Nacks:    r.m.Nacks.Load(),
		SendErrs: r.m.SendErrs.Load(),

		Dropped:   r.m.ChaosDropped.Load(),
		Duped:     r.m.ChaosDuped.Load(),
		Reordered: r.m.ChaosReordered.Load(),
		Held:      r.m.ChaosHeld.Load(),

		NackedStreams: int(r.nackedStreams.Load()),
		FailedStreams: int(r.failedStreams.Load()),

		ElapsedSec: elapsed.Seconds(),

		WaitedRuns: r.m.WaitedRuns.Load(),
		TraceBytes: r.m.TraceBytes.Load(),
	}
	if elapsed > 0 {
		rep.AchievedRatePps = float64(rep.Acks+rep.AckDups) / elapsed.Seconds()
	}
	rep.OfferedRatePps = r.offeredRate(rep, elapsed)
	lat := r.m.AckLatency.Snapshot()
	rep.AckLatencyP50Ms = lat.Quantile(0.50) / 1e6
	rep.AckLatencyP95Ms = lat.Quantile(0.95) / 1e6
	rep.AckLatencyP99Ms = lat.Quantile(0.99) / 1e6
	return rep
}

// offeredRate is what the campaign tried to inject per second: the
// configured open-loop rate, or for closed-loop pacing the planned
// pairs over the capture's recorded span divided by Speedup.
func (r *Runner) offeredRate(rep *Report, elapsed time.Duration) float64 {
	if r.cfg.Rate > 0 {
		return r.cfg.Rate
	}
	var spanNs int64
	for _, st := range r.streams {
		es := st.cap.entries
		first, last := es[0].Hello.SendNs, es[len(es)-1].Hello.SendNs
		if first > 0 && last > first && last-first > spanNs {
			spanNs = last - first
		}
	}
	if spanNs == 0 {
		// No recorded clock (v1 capture): back-to-back replay offers
		// whatever the wire achieved.
		return rep.AchievedRatePps
	}
	return float64(rep.PairsPlanned) / (float64(spanNs) / r.cfg.Speedup / 1e9)
}
