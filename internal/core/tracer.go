// Package core is Pilgrim's primary contribution: the per-process
// tracing pipeline (intercept → encode parameters → update CST → grow
// CFG, §3) and the inter-process compression at finalize (§3.5). It
// also contains the decoder that recovers per-rank call streams from a
// compressed trace, used to validate that compression is lossless.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
	"github.com/hpcrepro/pilgrim/internal/sig"
	"github.com/hpcrepro/pilgrim/internal/timing"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// Options configures a Tracer.
type Options struct {
	// TimingMode selects trace.TimingAggregated (default: only mean
	// durations per CST entry) or trace.TimingLossy (per-call
	// duration/interval grammars with relative error < TimingBase-1).
	TimingMode uint8
	// TimingBase is the exponential-bin base b (default 1.2 = 20%).
	TimingBase float64
	// Verify keeps the raw signature stream in memory so tests can
	// compare it with the decoded trace. Costs O(calls) memory.
	Verify bool
	// Encoding disables individual encoding optimizations (ablations).
	Encoding sig.Options

	// Collector, when non-nil, receives live self-observability
	// metrics: per-stage tracing overhead histograms, CST hit/miss
	// counters, and finalize/trace-writer gauges. Nil (the default)
	// keeps the hot path on a metrics-free code path whose only cost
	// is one pointer comparison per call.
	Collector *metrics.Collector
	// MetricsAddr, when non-empty, makes pilgrim.RunSim serve the
	// collector (Prometheus text, expvar JSON, pprof) on this
	// host:port for the duration of the run, creating a Collector if
	// none was supplied. The core package itself does not serve.
	MetricsAddr string
	// ProgressEvery, when positive, makes pilgrim.RunSim emit a
	// one-line progress summary to stderr at this interval.
	ProgressEvery time.Duration

	// CollectorAddr, when non-empty, makes pilgrim.RunSim stream every
	// rank's finalize-time snapshot to the pilgrim-collectd at this
	// host:port instead of merging locally; the merged trace is fetched
	// back from the collector, so callers see the same *trace.File
	// either way. If the collector is unreachable (or dies mid-run) the
	// run falls back to the local merge. The core package itself never
	// dials; the wiring lives in pilgrim.RunSim.
	CollectorAddr string
	// CollectorRunID names the run at the collector (admin API, output
	// file). Empty means pilgrim.RunSim generates a unique one.
	CollectorRunID string

	// FinalizeWorkers caps the worker pool the finalize pipeline (§3.5)
	// fans out on: the level-parallel pairwise CST merge, the per-rank
	// grammar relabel, snapshotting, and grammar hashing. 0 (the
	// default) means GOMAXPROCS; 1 forces the fully sequential path.
	// The produced trace is byte-identical for every worker count — the
	// merge tree's shape is fixed by the rank count and all cross-rank
	// ordering decisions are taken in deterministic sequential passes.
	FinalizeWorkers int

	// ObsSink, when non-nil, receives pipeline span tracing: every
	// finalize stage (snapshot, CST merge, relabel, grammar dedup/pack,
	// timing branch) records a span into the flight recorder, and
	// pilgrim.RunSim forwards the same sink to the collector client so
	// the networked path is covered end to end. Nil (the default) costs
	// one pointer check per instrumented site and zero allocations —
	// the same discipline as Collector.
	ObsSink *obs.Sink

	// SpillDir, when non-empty, makes pilgrim.RunSim finalize through
	// an on-disk spill instead of holding every rank's snapshot in
	// memory: snapshots are written to a journal-format spill under
	// this directory (the same MANIFEST.json + frames.jnl layout the
	// collector journals, readable by pilgrim-dump -journal) and
	// streamed back in batches of MaxResidentSnapshots. The produced
	// trace is byte-identical to the in-memory finalize; peak resident
	// snapshots drop from O(ranks) to O(MaxResidentSnapshots). The
	// core package itself never touches the filesystem; the wiring
	// lives in internal/spill and pilgrim.RunSim.
	SpillDir string
	// MaxResidentSnapshots bounds how many rank snapshots the streamed
	// finalize (SpillDir, or the collector's journal-backed finalize)
	// keeps in memory at once — the batch size K of the bounded-batch
	// merge. 0 (the default) means unbounded (all ranks resident,
	// byte-identical output either way).
	MaxResidentSnapshots int
}

func (o Options) withDefaults() Options {
	if o.TimingBase == 0 {
		o.TimingBase = 1.2
	}
	return o
}

// Tracer is the per-rank interceptor: it implements
// mpispec.Interceptor and accumulates the rank's CST and CFG.
//
// The interception hooks run on the rank's goroutine; mu additionally
// makes the accumulated state readable from outside it (Snapshot), so
// a monitor can serialize a crash-consistent copy while the rank runs.
type Tracer struct {
	Rank int
	opts Options

	// m is the attached metrics collector; nil means disabled, and
	// the interception hot path branches on that single nil check.
	m *metrics.Collector

	mu     sync.Mutex
	enc    *sig.Encoder
	table  *cst.Table
	cfg    *sequitur.Grammar
	tcomp  *timing.Compressor
	sigBuf []byte // per-call signature scratch; alloc-free once warm

	// Overhead accounting (intra-process tracing cost, wall time).
	// Guarded by mu while the rank is live.
	IntraNs int64
	NCalls  int64

	// Verification capture (Options.Verify).
	rawSigs  []string
	rawTimes [][2]int64
}

// NewTracer builds the tracing state for one rank. oob provides the
// PMPI-level collectives used to agree on communicator ids; it may be
// nil only if no communicator-creating calls occur.
func NewTracer(rank int, oob mpispec.OOB, opts Options) *Tracer {
	opts = opts.withDefaults()
	t := &Tracer{
		Rank:  rank,
		opts:  opts,
		m:     opts.Collector,
		enc:   sig.NewEncoderOpts(rank, oob, opts.Encoding),
		table: cst.New(),
		cfg:   sequitur.New(),
	}
	if opts.TimingMode == trace.TimingLossy {
		t.tcomp = timing.New(opts.TimingBase)
	}
	return t
}

// Pre implements mpispec.Interceptor (the prologue records timestamps
// via the CallRecord itself; nothing else to do before the call).
func (t *Tracer) Pre(rec *mpispec.CallRecord) {}

// Post implements mpispec.Interceptor: the steps 3-5 of Figure 2.
func (t *Tracer) Post(rec *mpispec.CallRecord) {
	if t.m != nil {
		t.postInstrumented(rec)
		return
	}
	w0 := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.enc.EncodeTo(t.sigBuf[:0], rec)
	t.sigBuf = s
	term := t.table.Add(s, rec.TEnd-rec.TStart)
	t.cfg.Append(term)
	if t.tcomp != nil {
		t.tcomp.Record(term, rec.Func, rec.TStart, rec.TEnd)
	}
	if t.opts.Verify {
		t.rawSigs = append(t.rawSigs, string(s))
		t.rawTimes = append(t.rawTimes, [2]int64{rec.TStart, rec.TEnd})
	}
	t.IntraNs += time.Since(w0).Nanoseconds()
	t.NCalls++
}

// postInstrumented is Post with per-stage overhead histograms and CST
// hit/miss counters. Stage boundaries are timed with monotonic reads;
// observations happen after the tracer lock is released so a slow
// scrape never extends the critical section.
func (t *Tracer) postInstrumented(rec *mpispec.CallRecord) {
	w0 := time.Now()
	t.mu.Lock()
	s := t.enc.EncodeTo(t.sigBuf[:0], rec)
	t.sigBuf = s
	tEnc := time.Now()
	before := t.table.Len()
	term := t.table.Add(s, rec.TEnd-rec.TStart)
	tCST := time.Now()
	t.cfg.Append(term)
	tCFG := time.Now()
	// The CFG boundary doubles as the end timestamp unless lossy
	// timing or verification adds work after it — clock reads are the
	// dominant instrumentation cost on virtualized clocksources.
	wEnd := tCFG
	if t.tcomp != nil || t.opts.Verify {
		if t.tcomp != nil {
			t.tcomp.Record(term, rec.Func, rec.TStart, rec.TEnd)
		}
		if t.opts.Verify {
			t.rawSigs = append(t.rawSigs, string(s))
			t.rawTimes = append(t.rawTimes, [2]int64{rec.TStart, rec.TEnd})
		}
		wEnd = time.Now()
	}
	miss := t.table.Len() != before
	t.IntraNs += wEnd.Sub(w0).Nanoseconds()
	t.NCalls++
	t.mu.Unlock()

	m := t.m
	m.ObservePost(tEnc.Sub(w0).Nanoseconds(), tCST.Sub(tEnc).Nanoseconds(),
		tCFG.Sub(tCST).Nanoseconds(), wEnd.Sub(w0).Nanoseconds())
	m.TracerCalls.Inc()
	if miss {
		m.CSTMisses.Inc()
	} else {
		m.CSTHits.Inc()
	}
}

// ProbeStats evaluates the tracer's live structural state under its
// lock, for scrape-time metrics gauges. Safe to call from any
// goroutine while the rank keeps tracing.
func (t *Tracer) ProbeStats() metrics.TracerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	gs := t.cfg.Stats()
	return metrics.TracerStats{
		Calls:          t.NCalls,
		CSTEntries:     t.table.Len(),
		GrammarRules:   gs.Rules,
		GrammarSymbols: gs.Symbols,
		LiveSegments:   t.enc.LiveSegments(),
	}
}

// MemAlloc implements mpispec.Interceptor (malloc interception).
func (t *Tracer) MemAlloc(addr, size uint64, device int32) {
	w0 := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.MemAlloc(addr, size, device)
	t.IntraNs += time.Since(w0).Nanoseconds()
}

// MemFree implements mpispec.Interceptor (free interception).
func (t *Tracer) MemFree(addr uint64) {
	w0 := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.MemFree(addr)
	t.IntraNs += time.Since(w0).Nanoseconds()
}

// BindOOB late-binds the tracer's out-of-band collective interface
// (used when the runtime rank object is created after the tracer).
func BindOOB(t *Tracer, oob mpispec.OOB) { t.enc.SetOOB(oob) }

// CSTLen returns the number of unique call signatures seen so far.
func (t *Tracer) CSTLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.table.Len()
}

// GrammarStats returns the current CFG size statistics.
func (t *Tracer) GrammarStats() sequitur.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.Stats()
}

// RawSignatures returns the captured uncompressed signature stream
// (Verify mode only).
func (t *Tracer) RawSignatures() []string { return t.rawSigs }

// RawTimes returns the captured per-call (tStart, tEnd) pairs (Verify
// mode only).
func (t *Tracer) RawTimes() [][2]int64 { return t.rawTimes }

// FinalizeStats reports where finalize time went (Figure 8's
// decomposition) plus structural counts.
type FinalizeStats struct {
	IntraNs    int64 // summed per-rank intra-process compression time
	CSTMergeNs int64 // inter-process compression of CSTs (incl. relabel)
	CFGMergeNs int64 // inter-process compression of CFGs (identity check + final pass)
	UniqueCSTs int
	UniqueCFGs int
	TotalCalls int64
	GlobalCST  int // entries in the merged table
	TraceBytes int

	// Metrics is the final self-observability report, populated when
	// the run had a metrics Collector attached (Options.Collector or
	// Options.MetricsAddr); nil otherwise.
	Metrics *metrics.Report
}

// Snapshot is a crash-consistent copy of one rank's tracing state: an
// immutable CST clone plus the serialized grammars. It can be taken
// from any goroutine while the rank keeps tracing, and is the unit the
// salvage path merges when a run fails before MPI_Finalize.
type Snapshot struct {
	Rank    int
	Calls   int64
	IntraNs int64

	Table      *cst.Table
	Grammar    sequitur.Serialized
	DurGrammar sequitur.Serialized // lossy timing mode only
	IntGrammar sequitur.Serialized // lossy timing mode only

	// Verification capture copies (Options.Verify).
	RawSigs  []string
	RawTimes [][2]int64
}

// Snapshot serializes the tracer's current state under its lock. Safe
// to call concurrently with interception from the rank goroutine.
func (t *Tracer) Snapshot() *Snapshot {
	if t.m != nil {
		t.m.Snapshots.Inc()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Snapshot{
		Rank:     t.Rank,
		Calls:    t.NCalls,
		IntraNs:  t.IntraNs,
		Table:    t.table.Clone(),
		Grammar:  sequitur.Serialized(t.cfg.Serialize()),
		RawSigs:  append([]string(nil), t.rawSigs...),
		RawTimes: append([][2]int64(nil), t.rawTimes...),
	}
	if t.tcomp != nil {
		s.DurGrammar = t.tcomp.DurationGrammar()
		s.IntGrammar = t.tcomp.IntervalGrammar()
	}
	return s
}

// TakeSnapshot is Snapshot with move semantics: the rank's CST and
// grammar state transfer into the returned snapshot without cloning,
// and the tracer resets to empty, so a streaming finalize can spill
// rank i's snapshot to disk and free it before touching rank i+1.
// Only the verification capture (Options.Verify) is shared rather
// than moved — the tracer keeps its reference so post-run lossless
// verification still works. Must only be called once the rank has
// stopped tracing (end of run or salvage).
func (t *Tracer) TakeSnapshot() *Snapshot {
	if t.m != nil {
		t.m.Snapshots.Inc()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Snapshot{
		Rank:     t.Rank,
		Calls:    t.NCalls,
		IntraNs:  t.IntraNs,
		Table:    t.table,
		Grammar:  sequitur.Serialized(t.cfg.Serialize()),
		RawSigs:  t.rawSigs,
		RawTimes: t.rawTimes,
	}
	if t.tcomp != nil {
		s.DurGrammar = t.tcomp.DurationGrammar()
		s.IntGrammar = t.tcomp.IntervalGrammar()
	}
	t.table = cst.New()
	t.cfg = sequitur.New()
	if t.tcomp != nil {
		t.tcomp = timing.New(t.opts.TimingBase)
	}
	return s
}

// Finalize performs the inter-process compression over all ranks'
// tracers and produces the trace file (§3.5). It corresponds to the
// work Pilgrim does inside MPI_Finalize.
func Finalize(tracers []*Tracer) (*trace.File, FinalizeStats) {
	var opts Options
	if len(tracers) > 0 {
		opts = tracers[0].opts
	}
	return finalizeSnapshots(snapshotAll(tracers, opts), opts, nil)
}

// SalvageFinalize is the failure-path finalize: it snapshots every
// tracer (the ranks may be dead or unwound; any still running are
// snapshotted consistently), runs the same §3.5 inter-process merge
// over the survivors' full streams and the failed ranks' partial ones,
// and tags the resulting trace with the failure. failed maps a rank to
// its fatal error (crash/abort/panic); ranks absent from it survived
// to the halt. reason is a one-line description of what stopped the
// run.
func SalvageFinalize(tracers []*Tracer, failed map[int]error, reason string) (*trace.File, FinalizeStats) {
	var opts Options
	if len(tracers) > 0 {
		opts = tracers[0].opts
	}
	if opts.Collector != nil {
		opts.Collector.Salvages.Inc()
	}
	snaps := snapshotAll(tracers, opts)
	info := &trace.SalvageInfo{Reason: reason, Calls: make([]int64, len(snaps))}
	ranks := make([]int, 0, len(failed))
	for r := range failed {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		info.FailedRanks = append(info.FailedRanks, int32(r))
	}
	for i, s := range snaps {
		info.Calls[i] = s.Calls
	}
	return finalizeSnapshots(snaps, opts, info)
}

// FinalizeSnapshots merges explicit snapshots (e.g. collected
// incrementally by a monitor) into a trace tagged with salvage info.
func FinalizeSnapshots(snaps []*Snapshot, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats) {
	return finalizeSnapshots(snaps, opts.withDefaults(), info)
}

// snapshotAll snapshots every tracer, fanning out on the finalize
// worker pool: each Snapshot serializes that rank's grammars (and, in
// lossy timing mode, its two timing grammars) under the rank's own
// lock, so the per-rank serialization loop parallelizes trivially.
func snapshotAll(tracers []*Tracer, opts Options) []*Snapshot {
	sp := opts.ObsSink.Start("finalize", "finalize.snapshot").WithAttr("ranks", int64(len(tracers)))
	snaps := make([]*Snapshot, len(tracers))
	par.For(len(tracers), par.Workers(opts.FinalizeWorkers), func(i int) {
		snaps[i] = tracers[i].Snapshot()
	})
	sp.End()
	return snaps
}

func finalizeSnapshots(snaps []*Snapshot, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats) {
	if len(snaps) == 0 {
		return &trace.File{CST: cst.New(), RankMap: sequitur.Serialized(sequitur.New().Serialize()), Salvage: info}, FinalizeStats{}
	}
	t0 := time.Now()
	sp := opts.ObsSink.Start("finalize", "finalize.cst_merge").WithAttr("ranks", int64(len(snaps)))
	tables := make([]*cst.Table, len(snaps))
	for i, s := range snaps {
		tables[i] = s.Table
	}
	merged := cst.MergePairwiseN(tables, par.Workers(opts.FinalizeWorkers))
	sp.WithAttr("global_cst", int64(merged.Table.Len())).End()
	return finalizeMerged(snaps, merged, time.Since(t0).Nanoseconds(), opts, info)
}

// FinalizePremerged finishes the §3.5 merge over snapshots whose CSTs
// were already unified — the collector daemon merges tables
// incrementally (cst.Incremental) as ranks report and calls this once
// the run completes. merged must cover exactly snaps in order (rank i
// of the merge is snaps[i]); cstMergeNs is the time the caller spent
// producing it. The resulting trace is identical to finalizing the
// same snapshots locally, because cst.Incremental reproduces
// MergePairwise exactly.
func FinalizePremerged(snaps []*Snapshot, merged cst.Merged, cstMergeNs int64, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats) {
	if len(snaps) == 0 {
		return &trace.File{CST: cst.New(), RankMap: sequitur.Serialized(sequitur.New().Serialize()), Salvage: info}, FinalizeStats{}
	}
	return finalizeMerged(snaps, merged, cstMergeNs, opts.withDefaults(), info)
}

// finalizeMerged is the back half of the §3.5 merge: grammar relabel
// against the global terminals (§3.5.1) plus the inter-process grammar
// compression (§3.5.2). It is the all-resident special case of
// finalizeMergedStreamed — one batch covering every rank, fetched by
// slicing the snapshot array — so the in-memory and streamed paths
// share one implementation and stay byte-identical by construction.
func finalizeMerged(snaps []*Snapshot, merged cst.Merged, cstMergeNs int64, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats) {
	fetch := func(start, n int) ([]*Snapshot, error) {
		return snaps[start : start+n], nil
	}
	f, st, err := finalizeMergedStreamed(len(snaps), len(snaps), fetch, merged, cstMergeNs, opts, info)
	if err != nil {
		// The slice fetch cannot fail; an error here is a broken
		// invariant, not an I/O condition the caller can handle.
		panic(fmt.Sprintf("core: in-memory finalize: %v", err))
	}
	return f, st
}

func grammarKey(g sequitur.Serialized) string {
	b := make([]byte, len(g)*4)
	for i, v := range g {
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}
