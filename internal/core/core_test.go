package core

import (
	"strings"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// feed pushes a synthetic call through a tracer.
func feed(t *Tracer, f mpispec.FuncID, args []mpispec.Value, ts, te int64) {
	rec := &mpispec.CallRecord{Func: f, Args: args, TStart: ts, TEnd: te, Rank: t.Rank}
	t.Pre(rec)
	t.Post(rec)
}

func sendArgs(dest, tag int64, rank int64) []mpispec.Value {
	return []mpispec.Value{
		{Kind: mpispec.KPtr, I: 0x1000},
		{Kind: mpispec.KInt, I: 1},
		{Kind: mpispec.KDatatype, I: 18},
		{Kind: mpispec.KRank, I: dest},
		{Kind: mpispec.KTag, I: tag},
		{Kind: mpispec.KComm, I: 1, Arr: []int64{rank}},
	}
}

func TestFinalizeIdenticalRanks(t *testing.T) {
	tracers := make([]*Tracer, 8)
	for r := range tracers {
		tracers[r] = NewTracer(r, nil, Options{Verify: true})
		tracers[r].MemAlloc(0x1000, 64, 0)
		for i := 0; i < 100; i++ {
			feed(tracers[r], mpispec.FSend, sendArgs(int64(r+1), 999, int64(r)), int64(i*10), int64(i*10+5))
		}
	}
	f, stats := Finalize(tracers)
	if stats.UniqueCFGs != 1 {
		t.Fatalf("identical ranks: %d unique grammars", stats.UniqueCFGs)
	}
	if stats.GlobalCST != 1 {
		t.Fatalf("identical signatures: CST = %d", stats.GlobalCST)
	}
	if stats.TotalCalls != 800 {
		t.Fatalf("TotalCalls = %d", stats.TotalCalls)
	}
	if err := VerifyLossless(f, tracers); err != nil {
		t.Fatal(err)
	}
	// Aggregated duration survived: mean of 5ns calls.
	calls, err := DecodeRank(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls[0].AvgDuration != 5 {
		t.Fatalf("avg duration = %d", calls[0].AvgDuration)
	}
}

func TestFinalizeDistinctRanks(t *testing.T) {
	tracers := make([]*Tracer, 4)
	for r := range tracers {
		tracers[r] = NewTracer(r, nil, Options{Verify: true})
		tracers[r].MemAlloc(0x1000, 64, 0)
		// Rank-unique tag -> distinct signatures and grammars.
		feed(tracers[r], mpispec.FSend, sendArgs(int64(r+1), int64(1000*(r+1)), int64(r)), 0, 10)
	}
	f, stats := Finalize(tracers)
	if stats.UniqueCFGs != 4 || stats.GlobalCST != 4 {
		t.Fatalf("distinct ranks: uCFG=%d CST=%d", stats.UniqueCFGs, stats.GlobalCST)
	}
	if err := VerifyLossless(f, tracers); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyLosslessDetectsCorruption(t *testing.T) {
	tracers := []*Tracer{NewTracer(0, nil, Options{Verify: true})}
	tracers[0].MemAlloc(0x1000, 64, 0)
	feed(tracers[0], mpispec.FSend, sendArgs(1, 5, 0), 0, 10)
	f, _ := Finalize(tracers)
	// Corrupt the raw capture to simulate a mismatch.
	tracers[0].rawSigs[0] = "corrupted"
	err := VerifyLossless(f, tracers)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestVerifyLosslessRankCountMismatch(t *testing.T) {
	tracers := []*Tracer{NewTracer(0, nil, Options{Verify: true})}
	feed(tracers[0], mpispec.FInit, nil, 0, 1)
	f, _ := Finalize(tracers)
	if err := VerifyLossless(f, nil); err == nil {
		t.Fatal("rank count mismatch not detected")
	}
}

func TestDecodeRankErrors(t *testing.T) {
	tracers := []*Tracer{NewTracer(0, nil, Options{})}
	feed(tracers[0], mpispec.FInit, nil, 0, 1)
	f, _ := Finalize(tracers)
	if _, err := DecodeRank(f, 5); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestLossyTimingLengthMismatchDetected(t *testing.T) {
	tr := NewTracer(0, nil, Options{TimingMode: trace.TimingLossy, TimingBase: 1.2})
	feed(tr, mpispec.FInit, nil, 100, 200)
	f, _ := Finalize([]*Tracer{tr})
	// Sabotage the duration index.
	f.DurIndex = nil
	if _, err := DecodeRank(f, 0); err == nil {
		t.Fatal("timing stream mismatch not detected")
	}
}

func TestCallCounts(t *testing.T) {
	tr := NewTracer(0, nil, Options{})
	tr.MemAlloc(0x1000, 64, 0)
	feed(tr, mpispec.FInit, nil, 0, 1)
	for i := 0; i < 3; i++ {
		feed(tr, mpispec.FSend, sendArgs(1, 5, 0), 0, 1)
	}
	f, _ := Finalize([]*Tracer{tr})
	calls, err := DecodeRank(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := CallCounts(calls)
	if counts[mpispec.FInit] != 1 || counts[mpispec.FSend] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTracerStatsAccumulate(t *testing.T) {
	tr := NewTracer(0, nil, Options{})
	tr.MemAlloc(0x1000, 64, 0)
	for i := 0; i < 10; i++ {
		feed(tr, mpispec.FSend, sendArgs(1, 5, 0), 0, 1)
	}
	if tr.NCalls != 10 {
		t.Fatalf("NCalls = %d", tr.NCalls)
	}
	if tr.CSTLen() != 1 {
		t.Fatalf("CSTLen = %d", tr.CSTLen())
	}
	if st := tr.GrammarStats(); st.InputLen != 10 {
		t.Fatalf("grammar InputLen = %d", st.InputLen)
	}
}
