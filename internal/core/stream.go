// Streamed, bounded-memory finalize: the same §3.5 inter-process
// compression as finalizeSnapshots/finalizeMerged, but consuming rank
// snapshots in bounded batches of K through a fetch callback instead
// of holding all P in memory. Peak resident snapshots is O(K), peak
// resident CST tables is O(K + log P) (cst.AddBatch releases absorbed
// tables eagerly), and the produced trace is byte-identical to the
// in-memory path for every K and worker count: the merge tree's shape
// is a pure function of the rank count, each node's table is a pure
// function of its descendant leaves in fixed left-right order, and
// every cross-rank ordering decision (grammar first-seen dedup, rank
// map append) runs in a sequential pass in rank order — batching only
// changes when work happens, never what it computes.
//
// The in-memory finalizeMerged is a thin wrapper over this code with
// a fetch that slices the resident snapshot array and K = P, so the
// two paths cannot drift apart.
package core

import (
	"fmt"
	"time"

	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// SnapshotFetch returns snapshots for the contiguous rank range
// [start, start+n), in rank order. The finalize owns what it returns:
// tables may be absorbed into the merge in place and released, so a
// disk-backed fetch must decode fresh copies (the collector's journal
// and internal/spill both do). A fetch may be called more than once
// for the same range — the CST merge pass and the grammar pass each
// stream the ranks once.
type SnapshotFetch func(start, n int) ([]*Snapshot, error)

// emptyTrace is the zero-rank finalize result shared by every
// finalize entry point.
func emptyTrace(info *trace.SalvageInfo) (*trace.File, FinalizeStats) {
	return &trace.File{CST: cst.New(), RankMap: sequitur.Serialized(sequitur.New().Serialize()), Salvage: info}, FinalizeStats{}
}

// batchSize resolves Options.MaxResidentSnapshots against the world
// size: 0 (unbounded) and anything over world mean one batch.
func batchSize(opts Options, world int) int {
	k := opts.MaxResidentSnapshots
	if k <= 0 || k > world {
		return world
	}
	return k
}

// FinalizeStreamed runs the full §3.5 finalize over world ranks
// streamed through fetch in batches of Options.MaxResidentSnapshots:
// first the pairwise CST merge (batched cst.Incremental.AddBatch with
// owned, eagerly-released leaf tables), then the grammar
// relabel/dedup/pack pass over a second stream of the same ranks.
// Output is byte-identical to FinalizeSnapshots over the same
// snapshots. The only error source is fetch itself.
func FinalizeStreamed(world int, fetch SnapshotFetch, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats, error) {
	opts = opts.withDefaults()
	if world == 0 {
		f, st := emptyTrace(info)
		return f, st, nil
	}
	batch := batchSize(opts, world)
	workers := par.Workers(opts.FinalizeWorkers)
	t0 := time.Now()
	sp := opts.ObsSink.Start("finalize", "finalize.cst_merge").
		WithAttr("ranks", int64(world)).WithAttr("batch", int64(batch))
	inc := cst.NewIncremental(world)
	for start := 0; start < world; start += batch {
		n := batch
		if start+n > world {
			n = world - start
		}
		snaps, err := fetchRange(fetch, start, n)
		if err != nil {
			sp.End()
			return nil, FinalizeStats{}, err
		}
		bsp := opts.ObsSink.Start("finalize", "finalize.batch_merge").
			WithAttr("start", int64(start)).WithAttr("ranks", int64(n))
		tables := make([]*cst.Table, n)
		for i, s := range snaps {
			tables[i] = s.Table
		}
		if err := inc.AddBatch(start, tables, workers); err != nil {
			bsp.End()
			sp.End()
			return nil, FinalizeStats{}, err
		}
		bsp.End()
	}
	merged := inc.Result()
	sp.WithAttr("global_cst", int64(merged.Table.Len())).End()
	return finalizeMergedStreamed(world, batch, fetch, merged, time.Since(t0).Nanoseconds(), opts, info)
}

// FinalizePremergedStreamed is FinalizeStreamed for callers whose CSTs
// were already unified incrementally (the collector daemon): only the
// grammar pass streams, against the supplied merge result. It relates
// to FinalizePremerged exactly as FinalizeStreamed relates to
// FinalizeSnapshots.
func FinalizePremergedStreamed(world int, fetch SnapshotFetch, merged cst.Merged, cstMergeNs int64, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats, error) {
	opts = opts.withDefaults()
	if world == 0 {
		f, st := emptyTrace(info)
		return f, st, nil
	}
	return finalizeMergedStreamed(world, batchSize(opts, world), fetch, merged, cstMergeNs, opts, info)
}

// fetchRange calls fetch and validates its contract (length and rank
// order), so a buggy spill reader fails loudly instead of silently
// misattributing grammars to ranks.
func fetchRange(fetch SnapshotFetch, start, n int) ([]*Snapshot, error) {
	snaps, err := fetch(start, n)
	if err != nil {
		return nil, err
	}
	if len(snaps) != n {
		return nil, fmt.Errorf("core: snapshot fetch [%d,%d) returned %d snapshots", start, start+n, len(snaps))
	}
	for i, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("core: snapshot fetch [%d,%d) returned nil snapshot at rank %d", start, start+n, start+i)
		}
		if s.Rank != start+i {
			return nil, fmt.Errorf("core: snapshot fetch [%d,%d) returned rank %d at position %d", start, start+n, s.Rank, i)
		}
	}
	return snaps, nil
}

// dedupState is the incremental form of dedupGrammars: batches append
// through it sequentially in rank order, so first-seen numbering is
// identical to one sequential pass over all ranks.
type dedupState struct {
	seen map[string]int32
	uniq []sequitur.Serialized
}

func newDedupState() *dedupState { return &dedupState{seen: map[string]int32{}} }

func (d *dedupState) add(key string, g sequitur.Serialized) int32 {
	j, ok := d.seen[key]
	if !ok {
		j = int32(len(d.uniq))
		d.seen[key] = j
		d.uniq = append(d.uniq, g)
	}
	return j
}

// finalizeMergedStreamed is the unified back half of the §3.5 merge
// (grammar relabel against the global terminals, §3.5.1, plus the
// inter-process grammar compression, §3.5.2), streaming ranks through
// fetch in batches of batch. Within a batch the relabel and key
// hashing fan out across workers; every ordering-sensitive step (the
// first-seen grammar dedup and the rank-map append) runs sequentially
// in rank order across batches, which is what keeps the output
// byte-identical for any batch size and worker count.
func finalizeMergedStreamed(world, batch int, fetch SnapshotFetch, merged cst.Merged, cstMergeNs int64, opts Options, info *trace.SalvageInfo) (*trace.File, FinalizeStats, error) {
	workers := par.Workers(opts.FinalizeWorkers)
	lossy := opts.TimingMode == trace.TimingLossy
	var st FinalizeStats
	st.CSTMergeNs = cstMergeNs
	st.GlobalCST = merged.Table.Len()

	calls := newDedupState()
	rankMap := sequitur.New()
	var durState, intState *dedupState
	var durIdx, intIdx []int32
	if lossy {
		durState, intState = newDedupState(), newDedupState()
		durIdx = make([]int32, 0, world)
		intIdx = make([]int32, 0, world)
	}

	var cfgNs int64
	for start := 0; start < world; start += batch {
		n := batch
		if start+n > world {
			n = world - start
		}
		snaps, err := fetchRange(fetch, start, n)
		if err != nil {
			return nil, FinalizeStats{}, err
		}
		// The grammar pass never reads tables — fetched snapshots (and
		// any tables a disk-backed fetch decoded) are dropped wholesale
		// when the batch ends, so a batch's resident cost is bounded.
		// Snapshots are not mutated: the in-memory wrapper hands the
		// caller's own array through here.
		for _, s := range snaps {
			st.IntraNs += s.IntraNs
			st.TotalCalls += s.Calls
		}
		// Per-rank relabel against the global terminals (§3.5.1): each
		// rank rewrites only its own grammar, so the loop fans out freely.
		t0 := time.Now()
		rsp := opts.ObsSink.Start("finalize", "finalize.relabel").
			WithAttr("start", int64(start)).WithAttr("ranks", int64(n))
		relabeled := make([]sequitur.Serialized, n)
		relabelErrs := make([]error, n)
		par.For(n, workers, func(i int) {
			relabeled[i], relabelErrs[i] = snaps[i].Grammar.Relabel(merged.Relabels[start+i])
		})
		rsp.End()
		for i, err := range relabelErrs {
			if err != nil {
				panic(fmt.Sprintf("core: relabel rank %d: %v", start+i, err))
			}
		}
		st.CSTMergeNs += time.Since(t0).Nanoseconds()

		// Identity keys fan out; the first-seen pass below stays
		// sequential in rank order (the §3.5.2 memcmp identity check).
		t1 := time.Now()
		keys := make([]string, n)
		var durKeys, intKeys []string
		par.For(n, workers, func(i int) {
			keys[i] = grammarKey(relabeled[i])
		})
		if lossy {
			durKeys, intKeys = make([]string, n), make([]string, n)
			par.For(n, workers, func(i int) {
				durKeys[i] = grammarKey(snaps[i].DurGrammar)
				intKeys[i] = grammarKey(snaps[i].IntGrammar)
			})
		}
		for i := 0; i < n; i++ {
			rankMap.Append(calls.add(keys[i], relabeled[i]))
			if lossy {
				durIdx = append(durIdx, durState.add(durKeys[i], snaps[i].DurGrammar))
				intIdx = append(intIdx, intState.add(intKeys[i], snaps[i].IntGrammar))
			}
		}
		cfgNs += time.Since(t1).Nanoseconds()
	}

	// Final Sequitur pass over the non-identical grammars (§3.5.2):
	// compresses shared rules across similar ranks and dominates the
	// inter-process CFG compression time when many unique grammars
	// survive the identity check.
	t2 := time.Now()
	dsp := opts.ObsSink.Start("finalize", "finalize.dedup_pack").WithAttr("ranks", int64(world))
	packed := sequitur.Pack(calls.uniq)
	dsp.WithAttr("unique_cfgs", int64(len(calls.uniq))).End()
	st.CFGMergeNs = cfgNs + time.Since(t2).Nanoseconds()
	st.UniqueCFGs = len(calls.uniq)

	f := &trace.File{
		NumRanks:   world,
		TimingMode: opts.TimingMode,
		TimingBase: opts.TimingBase,
		CST:        merged.Table,
		Grammars:   calls.uniq,
		Packed:     packed,
		RankMap:    sequitur.Serialized(rankMap.Serialize()),
		Salvage:    info,
	}
	if lossy {
		t3 := time.Now()
		tsp := opts.ObsSink.Start("finalize", "finalize.timing").WithAttr("ranks", int64(world))
		f.DurGrammars, f.DurIndex = durState.uniq, durIdx
		f.IntGrammars, f.IntIndex = intState.uniq, intIdx
		// The duration and interval streams are independent: pack them
		// as two parallel branches.
		par.For(2, workers, func(branch int) {
			if branch == 0 {
				f.PackedDur = sequitur.Pack(f.DurGrammars)
			} else {
				f.PackedInt = sequitur.Pack(f.IntGrammars)
			}
		})
		tsp.End()
		st.CFGMergeNs += time.Since(t3).Nanoseconds()
	}
	st.TraceBytes = f.SizeBytes()
	if c := opts.Collector; c != nil {
		cstB, cfgB, durB, intB := f.SectionSizes()
		c.RecordTraceSections(cstB, cfgB, durB, intB, st.TraceBytes,
			f.UncompressedEstimate(), st.TotalCalls)
		c.RecordFinalize(st.IntraNs, st.CSTMergeNs, st.CFGMergeNs)
		st.Metrics = c.Report()
	}
	return f, st, nil
}
