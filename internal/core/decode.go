package core

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/sig"
	"github.com/hpcrepro/pilgrim/internal/timing"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// DecodedCall is one reconstructed call of one rank, with optional
// recovered timing.
type DecodedCall struct {
	sig.Decoded
	TStart, TEnd int64 // recovered wall-clock (lossy mode); 0 otherwise
	AvgDuration  int64 // aggregated-mode mean duration for the signature
}

// DecodeRank expands rank r's grammar, resolves terminals through the
// global CST, and decodes every signature. This is the decompressor
// the paper uses to check correctness ("comparing uncompressed traces
// to compressed next decompressed traces").
func DecodeRank(f *trace.File, rank int) ([]DecodedCall, error) {
	terms, err := f.Terms(rank)
	if err != nil {
		return nil, err
	}
	out := make([]DecodedCall, 0, len(terms))
	for i, term := range terms {
		if int(term) >= f.CST.Len() {
			return nil, fmt.Errorf("core: rank %d call %d references CST entry %d of %d",
				rank, i, term, f.CST.Len())
		}
		d, err := sig.Decode(f.CST.Sig(term))
		if err != nil {
			return nil, fmt.Errorf("core: rank %d call %d: %w", rank, i, err)
		}
		out = append(out, DecodedCall{Decoded: d, AvgDuration: f.CST.AvgDuration(term)})
	}

	if f.TimingMode == trace.TimingLossy {
		times, err := ReconstructTimes(f, rank, terms, out)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i].TStart, out[i].TEnd = times[i].Start, times[i].End
		}
	}
	return out, nil
}

// ReconstructTimes recovers the per-call wall-clock timeline of one
// rank from the trace's duration and interval grammars (lossy timing
// mode only), via timing.Reconstructor.Series. Every recovered start
// and duration is within TimingBase−1 relative error of the original
// wall clock. terms and calls must describe the rank's stream, as
// returned by f.Terms and the signature decode.
func ReconstructTimes(f *trace.File, rank int, terms []int32, calls []DecodedCall) ([]timing.CallTime, error) {
	if f.TimingMode != trace.TimingLossy {
		return nil, fmt.Errorf("core: trace has no per-call timing (aggregated mode)")
	}
	var durSeq, intSeq []int32
	if rank < len(f.DurIndex) && int(f.DurIndex[rank]) < len(f.DurGrammars) {
		durSeq = f.DurGrammars[f.DurIndex[rank]].Expand(0)
	}
	if rank < len(f.IntIndex) && int(f.IntIndex[rank]) < len(f.IntGrammars) {
		intSeq = f.IntGrammars[f.IntIndex[rank]].Expand(0)
	}
	if len(durSeq) != len(terms) || len(intSeq) != len(terms) {
		return nil, fmt.Errorf("core: rank %d timing streams (%d/%d) do not match %d calls",
			rank, len(durSeq), len(intSeq), len(terms))
	}
	funcs := make([]mpispec.FuncID, len(calls))
	for i, c := range calls {
		funcs[i] = c.Func
	}
	return timing.NewReconstructor(f.TimingBase).Series(terms, funcs, durSeq, intSeq)
}

// RankSignatures returns rank r's raw signature byte stream (the
// uncompressed per-call encoding), used for lossless verification.
func RankSignatures(f *trace.File, rank int) ([]string, error) {
	terms, err := f.Terms(rank)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(terms))
	for i, term := range terms {
		if int(term) >= f.CST.Len() {
			return nil, fmt.Errorf("core: rank %d call %d references CST entry %d", rank, i, term)
		}
		out[i] = string(f.CST.Sig(term))
	}
	return out, nil
}

// VerifyLossless checks that the compressed trace decodes to exactly
// the signature streams the tracers observed (requires Options.Verify
// on every tracer). Timing is excluded, as in the paper ("the
// compression is lossless (except timing)"), but in lossy timing mode
// the recovered wall-clock times are checked against the configured
// relative error bound.
func VerifyLossless(f *trace.File, tracers []*Tracer) error {
	if f.NumRanks != len(tracers) {
		return fmt.Errorf("core: %d ranks in trace, %d tracers", f.NumRanks, len(tracers))
	}
	for r, tr := range tracers {
		got, err := RankSignatures(f, r)
		if err != nil {
			return err
		}
		want := tr.RawSignatures()
		if len(got) != len(want) {
			return fmt.Errorf("core: rank %d decoded %d calls, traced %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				gd, _ := sig.Decode([]byte(got[i]))
				wd, _ := sig.Decode([]byte(want[i]))
				return fmt.Errorf("core: rank %d call %d mismatch:\n  decoded %s\n  traced  %s", r, i, gd, wd)
			}
		}
		if f.TimingMode == trace.TimingLossy {
			if err := verifyTiming(f, r, tr); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifySalvaged checks a salvaged trace: it must carry salvage info,
// its per-rank recorded call counts must match what each tracer
// actually captured, and the decoded streams must be lossless up to
// each rank's failure point (survivors' full streams, failed ranks'
// streams to their last intercepted call).
func VerifySalvaged(f *trace.File, tracers []*Tracer) error {
	if f.Salvage == nil {
		return fmt.Errorf("core: trace carries no salvage info")
	}
	if len(f.Salvage.Calls) != len(tracers) {
		return fmt.Errorf("core: salvage records %d ranks, %d tracers", len(f.Salvage.Calls), len(tracers))
	}
	for r, tr := range tracers {
		if want := tr.Snapshot().Calls; f.Salvage.Calls[r] != want {
			return fmt.Errorf("core: salvage records %d calls for rank %d, tracer captured %d",
				f.Salvage.Calls[r], r, want)
		}
	}
	return VerifyLossless(f, tracers)
}

func verifyTiming(f *trace.File, rank int, tr *Tracer) error {
	calls, err := DecodeRank(f, rank)
	if err != nil {
		return err
	}
	times := tr.RawTimes()
	if len(calls) != len(times) {
		return fmt.Errorf("core: rank %d timing length mismatch", rank)
	}
	bound := f.TimingBase - 1 + 1e-9
	for i, c := range calls {
		ts, te := times[i][0], times[i][1]
		if relErr(float64(c.TStart), float64(ts)) > bound {
			return fmt.Errorf("core: rank %d call %d tStart error %.4f exceeds %.4f (got %d want %d)",
				rank, i, relErr(float64(c.TStart), float64(ts)), bound, c.TStart, ts)
		}
		if relErr(float64(c.TEnd-c.TStart), float64(te-ts)) > bound {
			return fmt.Errorf("core: rank %d call %d duration error exceeds bound", rank, i)
		}
	}
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// CallCounts tallies decoded calls per MPI function for one rank
// (handy for dump tools and tests).
func CallCounts(calls []DecodedCall) map[mpispec.FuncID]int {
	m := map[mpispec.FuncID]int{}
	for _, c := range calls {
		m[c.Func]++
	}
	return m
}
