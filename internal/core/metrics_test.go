package core

import (
	"runtime"
	"sync"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// TestTracerMetricsCounts checks the instrumented Post path: every call
// is either a CST hit or a miss, the stage histograms see every call,
// and the final report carries the trace-writer gauges.
func TestTracerMetricsCounts(t *testing.T) {
	col := metrics.NewCollector()
	tr := NewTracer(0, nil, Options{Collector: col})
	tr.MemAlloc(0x1000, 64, 0)
	const calls = 500
	const distinct = 10
	for i := 0; i < calls; i++ {
		feed(tr, mpispec.FSend, sendArgs(int64(i%distinct), 999, 0), int64(i*10), int64(i*10+5))
	}
	rep := col.Report()
	if got := rep.Counters["pilgrim_tracer_calls_total"]; got != calls {
		t.Fatalf("calls = %d, want %d", got, calls)
	}
	misses := rep.Counters["pilgrim_tracer_cst_misses_total"]
	hits := rep.Counters["pilgrim_tracer_cst_hits_total"]
	if misses != distinct {
		t.Fatalf("misses = %d, want %d", misses, distinct)
	}
	if hits+misses != calls {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, calls)
	}
	for _, name := range []string{
		"pilgrim_tracer_post_ns",
		"pilgrim_tracer_encode_ns",
		"pilgrim_tracer_cst_ns",
		"pilgrim_tracer_cfg_ns",
	} {
		h, ok := rep.Histograms[name]
		if !ok || h.Count != calls {
			t.Fatalf("%s count = %+v, want %d observations", name, h, calls)
		}
	}

	f, stats := Finalize([]*Tracer{tr})
	if stats.Metrics == nil {
		t.Fatal("FinalizeStats.Metrics nil with collector attached")
	}
	if got := stats.Metrics.Gauges["pilgrim_trace_bytes"]; got != float64(f.SizeBytes()) {
		t.Fatalf("trace bytes gauge = %v, want %d", got, f.SizeBytes())
	}
	if stats.Metrics.Gauges["pilgrim_trace_compression_ratio"] <= 1 {
		t.Fatalf("compression ratio = %v, want > 1", stats.Metrics.Gauges["pilgrim_trace_compression_ratio"])
	}
	if got := stats.Metrics.Gauges["pilgrim_trace_total_calls"]; got != calls {
		t.Fatalf("total calls gauge = %v", got)
	}
}

// TestProbeMatchesTracerState checks that the live-state probe agrees
// with the tracer's own accessors once the stream is quiescent.
func TestProbeMatchesTracerState(t *testing.T) {
	col := metrics.NewCollector()
	tr := NewTracer(0, nil, Options{Collector: col})
	tr.MemAlloc(0x1000, 64, 0)
	for i := 0; i < 200; i++ {
		feed(tr, mpispec.FSend, sendArgs(int64(i%7), int64(i%3), 0), int64(i*10), int64(i*10+5))
	}
	st := tr.ProbeStats()
	if st.Calls != 200 {
		t.Fatalf("probe calls = %d", st.Calls)
	}
	if st.CSTEntries != tr.CSTLen() {
		t.Fatalf("probe CST = %d, tracer CST = %d", st.CSTEntries, tr.CSTLen())
	}
	gs := tr.GrammarStats()
	if st.GrammarRules != gs.Rules || st.GrammarSymbols != gs.Symbols {
		t.Fatalf("probe grammar = %d/%d, tracer = %d/%d", st.GrammarRules, st.GrammarSymbols, gs.Rules, gs.Symbols)
	}
	if st.LiveSegments != 1 {
		t.Fatalf("live segments = %d, want 1", st.LiveSegments)
	}
}

// TestSnapshotConcurrentWithProbes hammers Snapshot and ProbeStats
// (and full collector scrapes) from background goroutines while the
// rank goroutine keeps posting. Run under -race this checks the
// locking; afterwards the counters must account for every call exactly
// once — concurrent observation must never skew them.
func TestSnapshotConcurrentWithProbes(t *testing.T) {
	col := metrics.NewCollector()
	tr := NewTracer(0, nil, Options{Collector: col})
	remove := col.AddTracerProbe(tr.ProbeStats)
	defer remove()
	tr.MemAlloc(0x1000, 64, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Snapshot()
					tr.ProbeStats()
					col.Report()
				}
			}
		}()
	}

	const calls = 2000
	for i := 0; i < calls; i++ {
		feed(tr, mpispec.FSend, sendArgs(int64(i%13), 999, 0), int64(i*10), int64(i*10+5))
		if i%50 == 0 {
			// Yield so the observers interleave even on GOMAXPROCS=1.
			runtime.Gosched()
		}
	}
	// One snapshot from this goroutine so the counter assertion below
	// cannot depend on scheduling.
	tr.Snapshot()
	close(stop)
	wg.Wait()

	rep := col.Report()
	if got := rep.Counters["pilgrim_tracer_calls_total"]; got != calls {
		t.Fatalf("calls = %d, want %d (skewed by concurrent observation)", got, calls)
	}
	hits := rep.Counters["pilgrim_tracer_cst_hits_total"]
	misses := rep.Counters["pilgrim_tracer_cst_misses_total"]
	if hits+misses != calls {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, calls)
	}
	if misses != 13 {
		t.Fatalf("misses = %d, want 13", misses)
	}
	st := tr.ProbeStats()
	if st.Calls != calls || st.CSTEntries != 13 {
		t.Fatalf("final probe = %+v", st)
	}
	if rep.Counters["pilgrim_tracer_snapshots_total"] == 0 {
		t.Fatal("snapshot counter did not move")
	}
}

// TestSalvageIncrementsCounter checks the failure-path finalize
// counter.
func TestSalvageIncrementsCounter(t *testing.T) {
	col := metrics.NewCollector()
	tr := NewTracer(0, nil, Options{Collector: col})
	tr.MemAlloc(0x1000, 64, 0)
	feed(tr, mpispec.FSend, sendArgs(1, 999, 0), 0, 5)
	_, stats := SalvageFinalize([]*Tracer{tr}, map[int]error{}, "test failure")
	if stats.Metrics == nil {
		t.Fatal("salvage finalize produced no metrics report")
	}
	if got := stats.Metrics.Counters["pilgrim_trace_salvages_total"]; got != 1 {
		t.Fatalf("salvages = %d, want 1", got)
	}
}
