// Package replay re-executes a decoded Pilgrim trace against the
// simulated MPI runtime. It realizes the paper's future-work
// "mini-app generator": a proxy program with the same communication
// pattern as the traced application. Replaying a trace under a fresh
// tracer and comparing the two trace files is the strongest
// end-to-end losslessness check in this repository.
//
// Fidelity notes:
//
//   - Relative ranks are resolved against the replayed communicator's
//     actual rank, so communicator-dependent peers come out right.
//   - Buffers are materialized per symbolic segment id before replay
//     (in id order), matching the original allocation order for
//     programs that allocate before communicating and free at exit.
//   - Waitany/Waitsome/Test* are replayed by waiting for exactly the
//     requests the trace says completed (a Waitall over that subset):
//     the message flow is reproduced, the polling pattern is not.
//   - Request arrays resolve symbolic ids positionally in creation
//     order. Two live requests from different per-signature pools can
//     share an id (§3.4.3); if the application ordered them in an
//     array differently from their creation order, the replay pairs
//     slots with the other request of the same id — the message flow
//     is identical, but per-slot status bookkeeping may permute.
//   - MPI_Comm_idup is not supported (its id agreement is deferred);
//     replay traces should use blocking communicator creation.
package replay

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/sig"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/mpi"
)

// Interp is the per-rank replay interpreter: it resolves symbolic ids
// (communicators, datatypes, groups, ops, buffers, requests) back to
// live runtime objects and executes decoded calls. It is exported so
// generated mini-apps (internal/genapp) can drive it directly.
type Interp struct {
	p     *mpi.Proc
	comms map[int64]*mpi.Comm
	types map[int64]*mpi.Datatype
	grps  map[int64]*mpi.Group
	ops   map[int64]*mpi.Op
	segs  map[int64]*mpi.Buffer
	stack map[int64]mpi.Ptr
	// live requests: per symbolic id, FIFO of outstanding requests
	// (per-signature pools can reuse an id across distinct pools).
	reqs map[int64][]*mpi.Request
	// persistent requests never leave reqs on completion; track them.
	persistent map[*mpi.Request]bool
}

// Body builds the SPMD body that replays the trace. It decodes each
// rank's stream lazily inside the rank's goroutine.
func Body(f *trace.File) func(p *mpi.Proc) {
	return func(p *mpi.Proc) {
		if err := Rank(f, p); err != nil {
			panic(err)
		}
	}
}

// DecodeAll decodes every rank's call stream over a bounded worker
// pool. Grammar expansion is the replay's CPU-heavy prefix and is
// independent per rank, so decoding up front on GOMAXPROCS workers
// beats leaving it to the simulator's rank goroutines, whose real
// concurrency is at the mercy of simulation synchronization.
func DecodeAll(f *trace.File) ([][]core.DecodedCall, error) {
	perRank := make([][]core.DecodedCall, f.NumRanks)
	errs := make([]error, f.NumRanks)
	par.For(f.NumRanks, par.Workers(0), func(r int) {
		perRank[r], errs[r] = core.DecodeRank(f, r)
	})
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("replay: decode rank %d: %w", r, err)
		}
	}
	return perRank, nil
}

// Run replays a trace on a fresh simulated world of the same size,
// pre-decoding every rank in parallel.
func Run(f *trace.File, simOpts mpi.Options) error {
	perRank, err := DecodeAll(f)
	if err != nil {
		return err
	}
	return mpi.RunOpt(f.NumRanks, simOpts, func(p *mpi.Proc) {
		if err := RankCalls(perRank[p.Rank()], p); err != nil {
			panic(err)
		}
	})
}

// NewInterp builds a fresh interpreter for one rank.
func NewInterp(p *mpi.Proc) *Interp {
	return &Interp{
		p:          p,
		comms:      map[int64]*mpi.Comm{0: p.World(), 1: p.Self()},
		types:      predefTypes(),
		grps:       map[int64]*mpi.Group{},
		ops:        predefOps(),
		segs:       map[int64]*mpi.Buffer{},
		stack:      map[int64]mpi.Ptr{},
		reqs:       map[int64][]*mpi.Request{},
		persistent: map[*mpi.Request]bool{},
	}
}

// Exec replays one decoded call.
func (st *Interp) Exec(c core.DecodedCall) error { return st.exec(c) }

// Prealloc materializes the buffers a call stream references; call it
// once before the first Exec.
func (st *Interp) Prealloc(calls []core.DecodedCall) { st.preallocate(calls) }

// Rank replays one rank's stream on an existing Proc, decoding it
// first.
func Rank(f *trace.File, p *mpi.Proc) error {
	calls, err := core.DecodeRank(f, p.Rank())
	if err != nil {
		return err
	}
	return RankCalls(calls, p)
}

// RankCalls replays one rank's pre-decoded stream on an existing Proc.
func RankCalls(calls []core.DecodedCall, p *mpi.Proc) error {
	st := NewInterp(p)
	st.preallocate(calls)
	for i, c := range calls {
		if err := st.exec(c); err != nil {
			return fmt.Errorf("replay rank %d call %d (%s): %w", p.Rank(), i, c.Decoded, err)
		}
	}
	return nil
}

func predefTypes() map[int64]*mpi.Datatype {
	list := []*mpi.Datatype{mpi.Byte, mpi.Char, mpi.Int, mpi.Long, mpi.Float, mpi.Double,
		mpi.Short, mpi.Unsigned, mpi.LongLong, mpi.Int8T, mpi.Int16T, mpi.Int32T,
		mpi.Int64T, mpi.UnsignedChar, mpi.DoubleInt}
	m := map[int64]*mpi.Datatype{}
	for i, dt := range list {
		m[int64(i)] = dt
	}
	return m
}

func predefOps() map[int64]*mpi.Op {
	list := []*mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd,
		mpi.OpLand, mpi.OpLor, mpi.OpBand, mpi.OpBor}
	m := map[int64]*mpi.Op{}
	for i, op := range list {
		m[int64(i)] = op
	}
	return m
}

// preallocate materializes every heap segment and stack variable the
// stream references, sized to its largest use, in symbolic-id order so
// a re-trace assigns the same ids.
func (st *Interp) preallocate(calls []core.DecodedCall) {
	segSize := map[int64]uint64{}
	stackIDs := map[int64]bool{}
	for _, c := range calls {
		spec := mpispec.Spec[c.Func]
		for i, a := range c.Args {
			if a.Kind != mpispec.KPtr || i >= len(spec.Params) {
				continue
			}
			switch a.Sel {
			case 0: // heap
				// Extent estimate: offset + a generous payload bound.
				need := a.Off + 1<<16
				if segSize[a.I] < need {
					segSize[a.I] = need
				}
			case 1: // stack
				stackIDs[a.I] = true
			}
		}
	}
	for id := int64(0); id < int64(len(segSize))+64; id++ {
		if size, ok := segSize[id]; ok {
			st.segs[id] = st.p.Alloc(int(size))
		}
	}
	for id := range stackIDs {
		st.stack[id] = st.p.StackVar(1 << 12)
	}
}

// --- argument resolution ------------------------------------------------------

func (st *Interp) comm(v sig.DecodedValue) (*mpi.Comm, error) {
	c, ok := st.comms[v.I]
	if !ok {
		return nil, fmt.Errorf("unknown comm id %d", v.I)
	}
	return c, nil
}

func (st *Interp) datatype(v sig.DecodedValue) (*mpi.Datatype, error) {
	dt, ok := st.types[v.I]
	if !ok {
		return nil, fmt.Errorf("unknown datatype id %d", v.I)
	}
	return dt, nil
}

func (st *Interp) op(v sig.DecodedValue) (*mpi.Op, error) {
	op, ok := st.ops[v.I]
	if !ok {
		return nil, fmt.Errorf("unknown op id %d", v.I)
	}
	return op, nil
}

func (st *Interp) group(v sig.DecodedValue) (*mpi.Group, error) {
	g, ok := st.grps[v.I]
	if !ok {
		return nil, fmt.Errorf("unknown group id %d", v.I)
	}
	return g, nil
}

func (st *Interp) ptr(v sig.DecodedValue) (mpi.Ptr, error) {
	switch v.Sel {
	case 0:
		b, ok := st.segs[v.I]
		if !ok {
			return mpi.NilPtr, fmt.Errorf("unknown segment id %d", v.I)
		}
		return b.Ptr(int(v.Off)), nil
	case 1:
		p, ok := st.stack[v.I]
		if !ok {
			return mpi.NilPtr, fmt.Errorf("unknown stack id %d", v.I)
		}
		return p, nil
	default:
		return mpi.NilPtr, nil
	}
}

// rank resolves a rank-like value against the communicator's rank.
func (st *Interp) rank(v sig.DecodedValue, c *mpi.Comm) int {
	return int(v.Resolve(int64(c.Rank())))
}

func ints(v sig.DecodedValue) []int {
	out := make([]int, len(v.Arr))
	for i, x := range v.Arr {
		out[i] = int(x.I)
	}
	return out
}

// pushReq registers a created request under its symbolic id.
func (st *Interp) pushReq(id int64, r *mpi.Request, persistent bool) {
	st.reqs[id] = append(st.reqs[id], r)
	if persistent {
		st.persistent[r] = true
	}
}

// popReq takes the oldest live request with the symbolic id.
func (st *Interp) popReq(id int64) (*mpi.Request, error) {
	q := st.reqs[id]
	if len(q) == 0 {
		return nil, fmt.Errorf("no live request with id %d", id)
	}
	r := q[0]
	if !st.persistent[r] {
		st.reqs[id] = q[1:]
	}
	return r, nil
}

// popReqs resolves a request-id array positionally (oldest first per
// id), without consuming persistent entries.
func (st *Interp) popReqs(v sig.DecodedValue) ([]*mpi.Request, error) {
	taken := map[int64]int{}
	out := make([]*mpi.Request, len(v.Arr))
	for i, idv := range v.Arr {
		id := idv.I
		if id < 0 {
			continue // null request slot
		}
		q := st.reqs[id]
		k := taken[id]
		if k >= len(q) {
			return nil, fmt.Errorf("request array slot %d: no live request with id %d", i, id)
		}
		out[i] = q[k]
		taken[id] = k + 1
	}
	// Consume the non-persistent ones.
	for id, k := range taken {
		q := st.reqs[id]
		var rest []*mpi.Request
		for j, r := range q {
			if j < k && !st.persistent[r] {
				continue
			}
			rest = append(rest, r)
		}
		st.reqs[id] = rest
	}
	return out, nil
}

// peekReqs resolves a request-id array positionally without consuming
// anything (for Waitany/Waitsome style calls that complete a subset).
func (st *Interp) peekReqs(v sig.DecodedValue) ([]*mpi.Request, error) {
	taken := map[int64]int{}
	out := make([]*mpi.Request, len(v.Arr))
	for i, idv := range v.Arr {
		id := idv.I
		if id < 0 {
			continue // null request slot
		}
		q := st.reqs[id]
		k := taken[id]
		if k >= len(q) {
			return nil, fmt.Errorf("request array slot %d: no live request with id %d", i, id)
		}
		out[i] = q[k]
		taken[id] = k + 1
	}
	return out, nil
}

// consume removes one specific request from its id queue (persistent
// requests stay).
func (st *Interp) consume(id int64, r *mpi.Request) {
	if st.persistent[r] {
		return
	}
	st.dropReq(id, r)
}

// dropReq removes a request from its queue unconditionally.
func (st *Interp) dropReq(id int64, r *mpi.Request) {
	q := st.reqs[id]
	for i, x := range q {
		if x == r {
			st.reqs[id] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}
