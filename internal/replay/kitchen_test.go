package replay_test

import (
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/mpi"
)

// TestRoundTripKitchenSink exercises nearly every replayable call in
// one deterministic SPMD program and requires the replayed trace to be
// call-for-call identical — the widest single losslessness test in the
// repository.
func TestRoundTripKitchenSink(t *testing.T) {
	const n = 6
	body := func(p *mpi.Proc) {
		p.Init()
		p.Initialized()
		p.GetProcessorName()
		w := p.World()
		p.CommSize(w)
		p.CommRank(w)
		rank := p.Rank()

		send := p.Alloc(4096)
		recv := p.Alloc(4096)
		big := p.Alloc(4096 * n)

		// -- point-to-point flavours, fixed ring partners.
		right := (rank + 1) % n
		left := (rank - 1 + n) % n
		must := func(err error) {
			if err != nil {
				panic(err)
			}
		}
		must(p.Send(send.Ptr(0), 8, mpi.Int, right, 1, w))
		var st mpi.Status
		must(p.Recv(recv.Ptr(0), 8, mpi.Int, left, 1, w, &st))
		p.GetCount(st, mpi.Int)
		p.GetElements(st, mpi.Int)
		must(p.Bsend(send.Ptr(0), 4, mpi.Int, right, 2, w))
		must(p.Recv(recv.Ptr(0), 4, mpi.Int, left, 2, w, nil))
		must(p.Rsend(send.Ptr(0), 2, mpi.Int, right, 3, w))
		must(p.Recv(recv.Ptr(0), 2, mpi.Int, left, 3, w, nil))
		// Synchronous send paired with a probe on the receiving side.
		if rank%2 == 0 {
			must(p.Ssend(send.Ptr(64), 4, mpi.Int, right, 4, w))
			must(p.Recv(recv.Ptr(64), 4, mpi.Int, left, 4, w, nil))
		} else {
			must(p.Probe(left, 4, w, &st))
			must(p.Recv(recv.Ptr(64), 4, mpi.Int, left, 4, w, nil))
			must(p.Ssend(send.Ptr(64), 4, mpi.Int, right, 4, w))
		}
		must(p.SendrecvReplace(send.Ptr(128), 4, mpi.Int, right, 5, left, 5, w, nil))
		// Issend + Waitall. The request array is in creation order:
		// with per-signature pools both requests carry symbolic id 0,
		// and the replayer resolves equal ids positionally by creation
		// order (see the replay package docs).
		r1, err := p.Issend(send.Ptr(256), 4, mpi.Int, right, 6, w)
		must(err)
		r2, err := p.Irecv(recv.Ptr(256), 4, mpi.Int, left, 6, w)
		must(err)
		must(p.Waitall([]*mpi.Request{r1, r2}, make([]mpi.Status, 2)))

		// -- collectives, dense and vector.
		must(p.Bcast(big.Ptr(0), 16, mpi.Double, 0, w))
		must(p.Gather(send.Ptr(0), 4, mpi.Int, big.Ptr(0), 4, mpi.Int, 1, w))
		must(p.Scatter(big.Ptr(0), 4, mpi.Int, recv.Ptr(0), 4, mpi.Int, 1, w))
		counts := make([]int, n)
		displs := make([]int, n)
		off := 0
		for i := range counts {
			counts[i] = i + 1
			displs[i] = off
			off += i + 1
		}
		must(p.Gatherv(send.Ptr(0), rank+1, mpi.Int, big.Ptr(0), counts, displs, mpi.Int, 0, w))
		must(p.Scatterv(big.Ptr(0), counts, displs, mpi.Int, recv.Ptr(0), rank+1, mpi.Int, 0, w))
		must(p.Allgatherv(send.Ptr(0), rank+1, mpi.Int, big.Ptr(0), counts, displs, mpi.Int, w))
		must(p.Alltoallv(send.Ptr(0), counts, displs, mpi.Int, big.Ptr(0), counts, displs, mpi.Int, w))
		must(p.Reduce(send.Ptr(0), recv.Ptr(0), 4, mpi.Double, mpi.OpMax, 2, w))
		must(p.ReduceScatter(send.Ptr(0), recv.Ptr(0), counts, mpi.Int, mpi.OpSum, w))
		must(p.ReduceScatterBlock(send.Ptr(0), recv.Ptr(0), 2, mpi.Int, mpi.OpSum, w))
		must(p.Scan(send.Ptr(0), recv.Ptr(0), 2, mpi.Double, mpi.OpSum, w))
		must(p.Exscan(send.Ptr(0), recv.Ptr(0), 2, mpi.Double, mpi.OpSum, w))

		// -- non-blocking collectives.
		var reqs []*mpi.Request
		r, err := p.Ibarrier(w)
		must(err)
		reqs = append(reqs, r)
		r, err = p.Ibcast(big.Ptr(0), 8, mpi.Double, 0, w)
		must(err)
		reqs = append(reqs, r)
		must(p.Waitall(reqs, make([]mpi.Status, len(reqs))))
		r, err = p.Igather(send.Ptr(0), 2, mpi.Int, big.Ptr(0), 2, mpi.Int, 0, w)
		must(err)
		must(p.Wait(r, nil))
		r, err = p.Iscatter(big.Ptr(0), 2, mpi.Int, recv.Ptr(0), 2, mpi.Int, 0, w)
		must(err)
		must(p.Wait(r, nil))
		r, err = p.Iallgather(send.Ptr(0), 2, mpi.Int, big.Ptr(0), 2, mpi.Int, w)
		must(err)
		must(p.Wait(r, nil))
		r, err = p.Ialltoall(send.Ptr(0), 2, mpi.Int, big.Ptr(0), 2, mpi.Int, w)
		must(err)
		must(p.Wait(r, nil))
		r, err = p.Ireduce(send.Ptr(0), recv.Ptr(0), 2, mpi.Int, mpi.OpMin, 0, w)
		must(err)
		must(p.Wait(r, nil))
		r, err = p.Iallreduce(send.Ptr(0), recv.Ptr(0), 2, mpi.Int, mpi.OpSum, w)
		must(err)
		must(p.Wait(r, nil))

		// -- datatypes.
		idx, err := p.TypeIndexed([]int{1, 2}, []int{0, 4}, mpi.Int)
		must(err)
		must(p.TypeCommit(idx))
		p.TypeSize(idx)
		p.TypeGetExtent(idx)
		dup, err := p.TypeDup(idx)
		must(err)
		must(p.Send(send.Ptr(512), 1, dup, mpi.ProcNull, 9, w))
		must(p.TypeFree(dup))
		must(p.TypeFree(idx))
		stru, err := p.TypeCreateStruct([]int{2, 1}, []int{0, 16}, []*mpi.Datatype{mpi.Int, mpi.Double})
		must(err)
		must(p.TypeCommit(stru))
		must(p.Send(send.Ptr(1024), 1, stru, mpi.ProcNull, 9, w))
		must(p.TypeFree(stru))

		// -- user-defined reduction.
		op, err := p.OpCreate(func(dst, src []byte, dt *mpi.Datatype) {}, true)
		must(err)
		must(p.Allreduce(send.Ptr(0), recv.Ptr(0), 1, mpi.Int, op, w))
		must(p.OpFree(op))

		// -- groups.
		g, err := p.CommGroup(w)
		must(err)
		p.GroupSize(g)
		p.GroupRank(g)
		evens, err := p.GroupIncl(g, []int{0, 2, 4})
		must(err)
		odds, err := p.GroupExcl(g, []int{0, 2, 4})
		must(err)
		u, err := p.GroupUnion(evens, odds)
		must(err)
		i2, err := p.GroupIntersection(u, evens)
		must(err)
		d2, err := p.GroupDifference(u, odds)
		must(err)
		_, err = p.GroupTranslateRanks(evens, []int{0, 1}, g)
		must(err)
		sub, err := p.CommCreate(w, evens)
		must(err)
		if sub != nil {
			must(p.Barrier(sub))
			must(p.CommFree(sub))
		}
		for _, gg := range []*mpi.Group{evens, odds, u, i2, d2, g} {
			must(p.GroupFree(gg))
		}

		// -- communicators.
		dupc, err := p.CommDup(w)
		must(err)
		if rank == 0 {
			must(p.CommSetName(dupc, "kitchen"))
			_, err = p.CommGetName(dupc)
			must(err)
		}
		_, err = p.CommCompare(w, dupc)
		must(err)
		_, err = p.CommTestInter(dupc)
		must(err)
		split, err := p.CommSplit(w, rank%2, rank)
		must(err)
		must(p.Allreduce(send.Ptr(0), recv.Ptr(0), 1, mpi.Double, mpi.OpSum, split))
		nodec, err := p.CommSplitType(w, mpi.CommTypeShared, rank)
		must(err)
		must(p.Barrier(nodec))

		// -- inter-communicators: halves bridged by world leaders 0/3.
		half, err := p.CommSplit(w, rank/3, rank)
		must(err)
		remoteLeader := 3
		if rank >= 3 {
			remoteLeader = 0
		}
		inter, err := p.IntercommCreate(half, 0, w, remoteLeader, 77)
		must(err)
		_, err = p.CommRemoteSize(inter)
		must(err)
		peer := inter.Rank()
		if rank < 3 {
			must(p.Send(send.Ptr(0), 1, mpi.Int, peer, 8, inter))
			must(p.Recv(recv.Ptr(0), 1, mpi.Int, peer, 8, inter, nil))
		} else {
			must(p.Recv(recv.Ptr(0), 1, mpi.Int, peer, 8, inter, nil))
			must(p.Send(send.Ptr(0), 1, mpi.Int, peer, 8, inter))
		}
		merged, err := p.IntercommMerge(inter, rank >= 3)
		must(err)
		must(p.Barrier(merged))

		// -- Cartesian topology.
		dims := make([]int, 2)
		must(p.DimsCreate(n, 2, dims))
		cart, err := p.CartCreate(w, dims, []bool{true, false}, false)
		must(err)
		if cart != nil {
			_, err = p.CartCoords(cart, cart.Rank())
			must(err)
			_, _, err = p.CartShift(cart, 0, 1)
			must(err)
			_, _, _, err = p.CartGet(cart)
			must(err)
			_, err = p.CartdimGet(cart)
			must(err)
			row, err := p.CartSub(cart, []bool{false, true})
			must(err)
			if row != nil {
				must(p.Barrier(row))
			}
		}

		// -- persistent requests.
		var pr *mpi.Request
		if rank == 0 {
			pr, err = p.SsendInit(send.Ptr(0), 1, mpi.Int, 1, 11, w)
		} else if rank == 1 {
			pr, err = p.RecvInit(recv.Ptr(0), 1, mpi.Int, 0, 11, w)
		}
		must(err)
		if pr != nil {
			for k := 0; k < 3; k++ {
				must(p.Startall([]*mpi.Request{pr}))
				must(p.Wait(pr, nil))
			}
			must(p.RequestFree(pr))
		}

		send.Free()
		recv.Free()
		big.Free()
		p.Finalize()
		p.Finalized()
	}

	orig, _, err := pilgrim.RunSim(n, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	re := retrace(t, orig)
	assertSameDecodedStreams(t, orig, re)
}
