package replay_test

import (
	"testing"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/replay"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

func simOpts() mpi.Options { return mpi.Options{Timeout: 60 * time.Second} }

// traceWorkload traces a named workload and returns the file.
func traceWorkload(t *testing.T, name string, n, iters int) *pilgrim.TraceFile {
	t.Helper()
	body, err := workloads.Get(name, iters, n)
	if err != nil {
		t.Fatal(err)
	}
	file, _, err := pilgrim.RunSim(n, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	return file
}

// retrace replays a trace under a fresh tracer and returns the new
// trace file.
func retrace(t *testing.T, f *pilgrim.TraceFile) *pilgrim.TraceFile {
	t.Helper()
	f2, _, err := pilgrim.RunSim(f.NumRanks, pilgrim.Options{}, simOpts(), replay.Body(f))
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	return f2
}

// assertSameDecodedStreams compares two traces call by call.
func assertSameDecodedStreams(t *testing.T, a, b *pilgrim.TraceFile) {
	t.Helper()
	if a.NumRanks != b.NumRanks {
		t.Fatalf("rank counts differ: %d vs %d", a.NumRanks, b.NumRanks)
	}
	for r := 0; r < a.NumRanks; r++ {
		ca, err := pilgrim.DecodeRank(a, r)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := pilgrim.DecodeRank(b, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ca) != len(cb) {
			t.Fatalf("rank %d: %d vs %d calls", r, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i].String() != cb[i].String() {
				t.Fatalf("rank %d call %d differs:\n  original: %s\n  replayed: %s",
					r, i, ca[i].Decoded, cb[i].Decoded)
			}
		}
	}
}

// TestRoundTrip traces deterministic workloads, replays them, re-traces
// the replay, and requires call-for-call identical streams — the
// paper's losslessness claim exercised end to end through the
// mini-app-generator path.
func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		iters int
	}{
		{"stencil2d", 9, 5},
		{"stencil3d", 8, 3},
		{"lu", 6, 5},
		{"is", 4, 3},
		{"cg", 8, 4},
		{"mg", 8, 4},
		{"bt", 4, 2},
		{"sp", 9, 2},
		{"sedov", 8, 10},
		{"cellular", 8, 60},
		{"stirturb", 8, 5},
		{"milc", 16, 1},
		{"osu_allreduce", 4, 3},
		{"osu_bcast", 4, 3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			orig := traceWorkload(t, c.name, c.n, c.iters)
			re := retrace(t, orig)
			assertSameDecodedStreams(t, orig, re)
		})
	}
}

// TestReplayNondeterministicCompletes checks that traces containing
// Waitany-style completion calls replay without deadlock (the message
// flow is reproduced; the polling pattern is normalized).
func TestReplayNondeterministicCompletes(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		n := p.Size()
		buf := p.Alloc(4 * n)
		if p.Rank() == 0 {
			reqs := make([]*mpi.Request, n-1)
			for i := 1; i < n; i++ {
				reqs[i-1], _ = p.Irecv(buf.Ptr(4*i), 1, mpi.Int, i, 5, w)
			}
			for done := 0; done < n-1; {
				idx, _ := p.Waitany(reqs, nil)
				if idx >= 0 {
					reqs[idx] = nil
					done++
					// Keep array shape stable for replay by replacing
					// the completed slot with a fresh null; Waitany over
					// remaining requests continues.
				}
			}
		} else {
			p.Send(buf.Ptr(0), 1, mpi.Int, 0, 5, w)
		}
		p.Finalize()
	}
	file, _, err := pilgrim.RunSim(4, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.Run(file, simOpts()); err != nil {
		t.Fatalf("replay of nondeterministic trace failed: %v", err)
	}
}

// TestReplayPersistentRequests covers Send_init/Recv_init/Start chains.
func TestReplayPersistentRequests(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		buf := p.Alloc(16)
		other := 1 - p.Rank()
		var req *mpi.Request
		if p.Rank() == 0 {
			req, _ = p.SendInit(buf.Ptr(0), 1, mpi.Int, other, 3, w)
		} else {
			req, _ = p.RecvInit(buf.Ptr(0), 1, mpi.Int, other, 3, w)
		}
		for i := 0; i < 5; i++ {
			p.Start(req)
			p.Wait(req, nil)
		}
		p.RequestFree(req)
		p.Finalize()
	}
	orig, _, err := pilgrim.RunSim(2, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	re := retrace(t, orig)
	assertSameDecodedStreams(t, orig, re)
}

// TestReplayDerivedTypesAndGroups covers datatype/group/op recreation.
func TestReplayDerivedTypesAndGroups(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		vec, _ := p.TypeVector(3, 2, 4, mpi.Int)
		p.TypeCommit(vec)
		buf := p.Alloc(1024)
		p.Send(buf.Ptr(0), 1, vec, mpi.ProcNull, 0, w)
		p.TypeFree(vec)
		g, _ := p.CommGroup(w)
		sub, _ := p.GroupIncl(g, []int{0, 1})
		nc, _ := p.CommCreate(w, sub)
		if nc != nil {
			p.Barrier(nc)
		}
		p.GroupFree(sub)
		p.GroupFree(g)
		p.Finalize()
	}
	orig, _, err := pilgrim.RunSim(3, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	re := retrace(t, orig)
	assertSameDecodedStreams(t, orig, re)
}

// TestReplaySplitComms covers communicator reconstruction with
// relative color/key resolution against the replayed comm rank.
func TestReplaySplitComms(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		sub, _ := p.CommSplit(w, p.Rank()%2, 0)
		buf := p.Alloc(8)
		out := p.Alloc(8)
		p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, mpi.Double, mpi.OpSum, sub)
		row, _ := p.CommDup(sub)
		p.Barrier(row)
		p.CommFree(row)
		p.CommFree(sub)
		p.Finalize()
	}
	orig, _, err := pilgrim.RunSim(6, pilgrim.Options{}, simOpts(), body)
	if err != nil {
		t.Fatal(err)
	}
	re := retrace(t, orig)
	assertSameDecodedStreams(t, orig, re)
}
