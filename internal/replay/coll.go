package replay

import (
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/mpi"
)

// replayDense handles Gather/Scatter/Allgather/Alltoall, which share
// the (sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
// [root,] comm) layout.
func (st *Interp) replayDense(c core.DecodedCall) error {
	a := c.Args
	hasRoot := c.Func == mpispec.FGather || c.Func == mpispec.FScatter
	commIdx := 6
	if hasRoot {
		commIdx = 7
	}
	cm, err := st.comm(a[commIdx])
	if err != nil {
		return err
	}
	sb, err := st.ptr(a[0])
	if err != nil {
		return err
	}
	rb, err := st.ptr(a[3])
	if err != nil {
		return err
	}
	sdt, err := st.datatype(a[2])
	if err != nil {
		return err
	}
	rdt, err := st.datatype(a[5])
	if err != nil {
		return err
	}
	sc, rc := int(a[1].I), int(a[4].I)
	switch c.Func {
	case mpispec.FGather:
		return st.p.Gather(sb, sc, sdt, rb, rc, rdt, st.rank(a[6], cm), cm)
	case mpispec.FScatter:
		return st.p.Scatter(sb, sc, sdt, rb, rc, rdt, st.rank(a[6], cm), cm)
	case mpispec.FAllgather:
		return st.p.Allgather(sb, sc, sdt, rb, rc, rdt, cm)
	default:
		return st.p.Alltoall(sb, sc, sdt, rb, rc, rdt, cm)
	}
}

// replayVector handles the vector collectives.
func (st *Interp) replayVector(c core.DecodedCall) error {
	a := c.Args
	p := st.p
	switch c.Func {
	case mpispec.FGatherv:
		cm, err := st.comm(a[8])
		if err != nil {
			return err
		}
		sb, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		rb, err := st.ptr(a[3])
		if err != nil {
			return err
		}
		sdt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		rdt, err := st.datatype(a[6])
		if err != nil {
			return err
		}
		return p.Gatherv(sb, int(a[1].I), sdt, rb, ints(a[4]), ints(a[5]), rdt, st.rank(a[7], cm), cm)
	case mpispec.FScatterv:
		cm, err := st.comm(a[8])
		if err != nil {
			return err
		}
		sb, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		rb, err := st.ptr(a[4])
		if err != nil {
			return err
		}
		sdt, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		rdt, err := st.datatype(a[6])
		if err != nil {
			return err
		}
		return p.Scatterv(sb, ints(a[1]), ints(a[2]), sdt, rb, int(a[5].I), rdt, st.rank(a[7], cm), cm)
	case mpispec.FAllgatherv:
		cm, err := st.comm(a[7])
		if err != nil {
			return err
		}
		sb, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		rb, err := st.ptr(a[3])
		if err != nil {
			return err
		}
		sdt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		rdt, err := st.datatype(a[6])
		if err != nil {
			return err
		}
		return p.Allgatherv(sb, int(a[1].I), sdt, rb, ints(a[4]), ints(a[5]), rdt, cm)
	default: // Alltoallv
		cm, err := st.comm(a[8])
		if err != nil {
			return err
		}
		sb, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		rb, err := st.ptr(a[4])
		if err != nil {
			return err
		}
		sdt, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		rdt, err := st.datatype(a[7])
		if err != nil {
			return err
		}
		return p.Alltoallv(sb, ints(a[1]), ints(a[2]), sdt, rb, ints(a[5]), ints(a[6]), rdt, cm)
	}
}

// replayReduce handles the reduction collectives.
func (st *Interp) replayReduce(c core.DecodedCall) error {
	a := c.Args
	p := st.p
	sb, err := st.ptr(a[0])
	if err != nil {
		return err
	}
	rb, err := st.ptr(a[1])
	if err != nil {
		return err
	}
	switch c.Func {
	case mpispec.FReduce:
		cm, err := st.comm(a[6])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		op, err := st.op(a[4])
		if err != nil {
			return err
		}
		return p.Reduce(sb, rb, int(a[2].I), dt, op, st.rank(a[5], cm), cm)
	case mpispec.FReduceScatter:
		cm, err := st.comm(a[5])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		op, err := st.op(a[4])
		if err != nil {
			return err
		}
		return p.ReduceScatter(sb, rb, ints(a[2]), dt, op, cm)
	default:
		cm, err := st.comm(a[5])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		op, err := st.op(a[4])
		if err != nil {
			return err
		}
		count := int(a[2].I)
		switch c.Func {
		case mpispec.FAllreduce:
			return p.Allreduce(sb, rb, count, dt, op, cm)
		case mpispec.FScan:
			return p.Scan(sb, rb, count, dt, op, cm)
		case mpispec.FExscan:
			return p.Exscan(sb, rb, count, dt, op, cm)
		default: // ReduceScatterBlock
			return p.ReduceScatterBlock(sb, rb, count, dt, op, cm)
		}
	}
}

// replayIColl handles the non-blocking collectives, registering the
// resulting request.
func (st *Interp) replayIColl(c core.DecodedCall) error {
	a := c.Args
	p := st.p
	var r *mpi.Request
	var err error
	var reqID int64
	switch c.Func {
	case mpispec.FIbarrier:
		cm, e := st.comm(a[0])
		if e != nil {
			return e
		}
		r, err = p.Ibarrier(cm)
		reqID = a[1].I
	case mpispec.FIbcast:
		cm, e := st.comm(a[4])
		if e != nil {
			return e
		}
		buf, e := st.ptr(a[0])
		if e != nil {
			return e
		}
		dt, e := st.datatype(a[2])
		if e != nil {
			return e
		}
		r, err = p.Ibcast(buf, int(a[1].I), dt, st.rank(a[3], cm), cm)
		reqID = a[5].I
	case mpispec.FIgather, mpispec.FIscatter:
		cm, e := st.comm(a[7])
		if e != nil {
			return e
		}
		sb, e := st.ptr(a[0])
		if e != nil {
			return e
		}
		rb, e := st.ptr(a[3])
		if e != nil {
			return e
		}
		sdt, e := st.datatype(a[2])
		if e != nil {
			return e
		}
		rdt, e := st.datatype(a[5])
		if e != nil {
			return e
		}
		if c.Func == mpispec.FIgather {
			r, err = p.Igather(sb, int(a[1].I), sdt, rb, int(a[4].I), rdt, st.rank(a[6], cm), cm)
		} else {
			r, err = p.Iscatter(sb, int(a[1].I), sdt, rb, int(a[4].I), rdt, st.rank(a[6], cm), cm)
		}
		reqID = a[8].I
	case mpispec.FIallgather, mpispec.FIalltoall:
		cm, e := st.comm(a[6])
		if e != nil {
			return e
		}
		sb, e := st.ptr(a[0])
		if e != nil {
			return e
		}
		rb, e := st.ptr(a[3])
		if e != nil {
			return e
		}
		sdt, e := st.datatype(a[2])
		if e != nil {
			return e
		}
		rdt, e := st.datatype(a[5])
		if e != nil {
			return e
		}
		if c.Func == mpispec.FIallgather {
			r, err = p.Iallgather(sb, int(a[1].I), sdt, rb, int(a[4].I), rdt, cm)
		} else {
			r, err = p.Ialltoall(sb, int(a[1].I), sdt, rb, int(a[4].I), rdt, cm)
		}
		reqID = a[7].I
	case mpispec.FIreduce:
		cm, e := st.comm(a[6])
		if e != nil {
			return e
		}
		sb, e := st.ptr(a[0])
		if e != nil {
			return e
		}
		rb, e := st.ptr(a[1])
		if e != nil {
			return e
		}
		dt, e := st.datatype(a[3])
		if e != nil {
			return e
		}
		op, e := st.op(a[4])
		if e != nil {
			return e
		}
		r, err = p.Ireduce(sb, rb, int(a[2].I), dt, op, st.rank(a[5], cm), cm)
		reqID = a[7].I
	default: // FIallreduce
		cm, e := st.comm(a[5])
		if e != nil {
			return e
		}
		sb, e := st.ptr(a[0])
		if e != nil {
			return e
		}
		rb, e := st.ptr(a[1])
		if e != nil {
			return e
		}
		dt, e := st.datatype(a[3])
		if e != nil {
			return e
		}
		op, e := st.op(a[4])
		if e != nil {
			return e
		}
		r, err = p.Iallreduce(sb, rb, int(a[2].I), dt, op, cm)
		reqID = a[6].I
	}
	if err != nil {
		return err
	}
	st.pushReq(reqID, r, false)
	return nil
}
