package replay

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/mpi"
)

// exec replays one decoded call.
func (st *Interp) exec(c core.DecodedCall) error {
	p := st.p
	a := c.Args
	switch c.Func {
	case mpispec.FInit:
		return p.Init()
	case mpispec.FFinalize:
		return p.Finalize()
	case mpispec.FInitialized:
		p.Initialized()
	case mpispec.FFinalized:
		p.Finalized()
	case mpispec.FGetProcessorName:
		p.GetProcessorName()
	case mpispec.FCommSize:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		p.CommSize(cm)
	case mpispec.FCommRank:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		p.CommRank(cm)

	case mpispec.FSend, mpispec.FBsend, mpispec.FSsend, mpispec.FRsend:
		cm, err := st.comm(a[5])
		if err != nil {
			return err
		}
		buf, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		dest := st.rank(a[3], cm)
		tag := int(a[4].Resolve(int64(cm.Rank())))
		switch c.Func {
		case mpispec.FSsend:
			return p.Ssend(buf, int(a[1].I), dt, dest, tag, cm)
		case mpispec.FBsend:
			return p.Bsend(buf, int(a[1].I), dt, dest, tag, cm)
		case mpispec.FRsend:
			return p.Rsend(buf, int(a[1].I), dt, dest, tag, cm)
		default:
			return p.Send(buf, int(a[1].I), dt, dest, tag, cm)
		}

	case mpispec.FRecv:
		cm, err := st.comm(a[5])
		if err != nil {
			return err
		}
		buf, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		return p.Recv(buf, int(a[1].I), dt, st.rank(a[3], cm),
			int(a[4].Resolve(int64(cm.Rank()))), cm, nil)

	case mpispec.FIsend, mpispec.FIbsend, mpispec.FIssend, mpispec.FIrsend, mpispec.FIrecv,
		mpispec.FSendInit, mpispec.FBsendInit, mpispec.FSsendInit, mpispec.FRsendInit, mpispec.FRecvInit:
		cm, err := st.comm(a[5])
		if err != nil {
			return err
		}
		buf, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		peer := st.rank(a[3], cm)
		tag := int(a[4].Resolve(int64(cm.Rank())))
		count := int(a[1].I)
		var r *mpi.Request
		persistent := false
		switch c.Func {
		case mpispec.FIsend:
			r, err = p.Isend(buf, count, dt, peer, tag, cm)
		case mpispec.FIbsend:
			r, err = p.Ibsend(buf, count, dt, peer, tag, cm)
		case mpispec.FIssend:
			r, err = p.Issend(buf, count, dt, peer, tag, cm)
		case mpispec.FIrsend:
			r, err = p.Irsend(buf, count, dt, peer, tag, cm)
		case mpispec.FIrecv:
			r, err = p.Irecv(buf, count, dt, peer, tag, cm)
		case mpispec.FSendInit:
			r, err = p.SendInit(buf, count, dt, peer, tag, cm)
			persistent = true
		case mpispec.FBsendInit:
			r, err = p.BsendInit(buf, count, dt, peer, tag, cm)
			persistent = true
		case mpispec.FSsendInit:
			r, err = p.SsendInit(buf, count, dt, peer, tag, cm)
			persistent = true
		case mpispec.FRsendInit:
			r, err = p.RsendInit(buf, count, dt, peer, tag, cm)
			persistent = true
		case mpispec.FRecvInit:
			r, err = p.RecvInit(buf, count, dt, peer, tag, cm)
			persistent = true
		}
		if err != nil {
			return err
		}
		st.pushReq(a[6].I, r, persistent)

	case mpispec.FSendrecv:
		cm, err := st.comm(a[10])
		if err != nil {
			return err
		}
		sb, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		rb, err := st.ptr(a[5])
		if err != nil {
			return err
		}
		sdt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		rdt, err := st.datatype(a[7])
		if err != nil {
			return err
		}
		return p.Sendrecv(sb, int(a[1].I), sdt, st.rank(a[3], cm), int(a[4].Resolve(int64(cm.Rank()))),
			rb, int(a[6].I), rdt, st.rank(a[8], cm), int(a[9].Resolve(int64(cm.Rank()))), cm, nil)

	case mpispec.FSendrecvReplace:
		cm, err := st.comm(a[7])
		if err != nil {
			return err
		}
		buf, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		return p.SendrecvReplace(buf, int(a[1].I), dt,
			st.rank(a[3], cm), int(a[4].Resolve(int64(cm.Rank()))),
			st.rank(a[5], cm), int(a[6].Resolve(int64(cm.Rank()))), cm, nil)

	case mpispec.FProbe:
		// Blocking probe: re-execute it (the matching message will
		// arrive, as it did originally).
		cm, err := st.comm(a[2])
		if err != nil {
			return err
		}
		return p.Probe(st.rank(a[0], cm), int(a[1].Resolve(int64(cm.Rank()))), cm, nil)
	case mpispec.FIprobe:
		// Non-blocking polling: replay is a no-op (its outcome depends
		// on arrival timing, which replay does not reproduce).
		return nil

	case mpispec.FWait:
		r, err := st.popReq(a[0].I)
		if err != nil {
			return err
		}
		return p.Wait(r, nil)
	case mpispec.FWaitall:
		rs, err := st.popReqs(a[1])
		if err != nil {
			return err
		}
		return p.Waitall(rs, make([]mpi.Status, len(rs)))
	case mpispec.FTest:
		// Completed only if the recorded flag is set.
		if a[1].I != 0 {
			r, err := st.popReq(a[0].I)
			if err != nil {
				return err
			}
			return p.Wait(r, nil)
		}
	case mpispec.FWaitany, mpispec.FTestany:
		idxArg := 2
		completed := a[idxArg].I >= 0
		if c.Func == mpispec.FTestany {
			completed = a[3].I != 0 && a[2].I >= 0
		}
		if completed {
			// The trace tells us which slot completed; wait for the
			// request occupying that position in the live window.
			rs, err := st.peekReqs(a[1])
			if err != nil {
				return err
			}
			slot := int(a[2].I)
			if slot < 0 || slot >= len(rs) || rs[slot] == nil {
				return fmt.Errorf("completed slot %d out of range", slot)
			}
			st.consume(a[1].Arr[slot].I, rs[slot])
			return p.Wait(rs[slot], nil)
		}
	case mpispec.FWaitsome, mpispec.FTestsome:
		rs, err := st.peekReqs(a[1])
		if err != nil {
			return err
		}
		for _, iv := range a[3].Arr {
			slot := int(iv.I)
			if slot < 0 || slot >= len(rs) || rs[slot] == nil {
				return fmt.Errorf("completed slot %d out of range", slot)
			}
			st.consume(a[1].Arr[slot].I, rs[slot])
			if err := p.Wait(rs[slot], nil); err != nil {
				return err
			}
		}
	case mpispec.FTestall:
		if a[2].I != 0 {
			rs, err := st.popReqs(a[1])
			if err != nil {
				return err
			}
			return p.Waitall(rs, make([]mpi.Status, len(rs)))
		}
	case mpispec.FRequestFree:
		r, err := st.popReq(a[0].I)
		if err != nil {
			return err
		}
		delete(st.persistent, r)
		st.dropReq(a[0].I, r)
		return p.RequestFree(r)
	case mpispec.FRequestGetStatus, mpispec.FCancel:
		return nil // polling/cancellation: structural no-op on replay

	case mpispec.FStart:
		r, err := st.popReq(a[0].I) // persistent: not consumed
		if err != nil {
			return err
		}
		return p.Start(r)
	case mpispec.FStartall:
		rs, err := st.popReqs(a[1])
		if err != nil {
			return err
		}
		return p.Startall(rs)

	case mpispec.FBarrier:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		return p.Barrier(cm)
	case mpispec.FBcast:
		cm, err := st.comm(a[4])
		if err != nil {
			return err
		}
		buf, err := st.ptr(a[0])
		if err != nil {
			return err
		}
		dt, err := st.datatype(a[2])
		if err != nil {
			return err
		}
		return p.Bcast(buf, int(a[1].I), dt, st.rank(a[3], cm), cm)
	case mpispec.FGather, mpispec.FScatter, mpispec.FAllgather, mpispec.FAlltoall:
		return st.replayDense(c)
	case mpispec.FGatherv, mpispec.FScatterv, mpispec.FAllgatherv, mpispec.FAlltoallv:
		return st.replayVector(c)
	case mpispec.FReduce, mpispec.FAllreduce, mpispec.FScan, mpispec.FExscan,
		mpispec.FReduceScatter, mpispec.FReduceScatterBlock:
		return st.replayReduce(c)
	case mpispec.FIbarrier, mpispec.FIbcast, mpispec.FIgather, mpispec.FIscatter,
		mpispec.FIallgather, mpispec.FIalltoall, mpispec.FIreduce, mpispec.FIallreduce:
		return st.replayIColl(c)

	case mpispec.FCommDup:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		nc, err := p.CommDup(cm)
		if err != nil {
			return err
		}
		st.comms[a[1].I] = nc
	case mpispec.FCommSplit:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		color := int(a[1].Resolve(int64(cm.Rank())))
		key := int(a[2].Resolve(int64(cm.Rank())))
		nc, err := p.CommSplit(cm, color, key)
		if err != nil {
			return err
		}
		if nc != nil {
			st.comms[a[3].I] = nc
		}
	case mpispec.FCommSplitType:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		nc, err := p.CommSplitType(cm, int(a[1].I), int(a[2].Resolve(int64(cm.Rank()))))
		if err != nil {
			return err
		}
		if nc != nil {
			st.comms[a[3].I] = nc
		}
	case mpispec.FCommCreate:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		g, err := st.group(a[1])
		if err != nil {
			return err
		}
		nc, err := p.CommCreate(cm, g)
		if err != nil {
			return err
		}
		if nc != nil {
			st.comms[a[2].I] = nc
		}
	case mpispec.FCommFree:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		return p.CommFree(cm)
	case mpispec.FCommGroup:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		g, err := p.CommGroup(cm)
		if err != nil {
			return err
		}
		st.grps[a[1].I] = g
	case mpispec.FCommCompare:
		c1, err := st.comm(a[0])
		if err != nil {
			return err
		}
		c2, err := st.comm(a[1])
		if err != nil {
			return err
		}
		_, err = p.CommCompare(c1, c2)
		return err
	case mpispec.FCommSetName:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		return p.CommSetName(cm, a[1].S)
	case mpispec.FCommGetName:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CommGetName(cm)
		return err
	case mpispec.FCommTestInter:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CommTestInter(cm)
		return err
	case mpispec.FCommRemoteSize:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CommRemoteSize(cm)
		return err
	case mpispec.FIntercommCreate:
		local, err := st.comm(a[0])
		if err != nil {
			return err
		}
		peer, err := st.comm(a[2])
		if err != nil {
			return err
		}
		nc, err := p.IntercommCreate(local, int(a[1].Resolve(int64(local.Rank()))),
			peer, int(a[3].Resolve(int64(local.Rank()))), int(a[4].Resolve(int64(local.Rank()))))
		if err != nil {
			return err
		}
		st.comms[a[5].I] = nc
	case mpispec.FIntercommMerge:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		nc, err := p.IntercommMerge(cm, a[1].I != 0)
		if err != nil {
			return err
		}
		st.comms[a[2].I] = nc
	case mpispec.FCommIdup:
		return fmt.Errorf("MPI_Comm_idup replay is not supported")

	case mpispec.FGroupSize:
		g, err := st.group(a[0])
		if err != nil {
			return err
		}
		p.GroupSize(g)
	case mpispec.FGroupRank:
		g, err := st.group(a[0])
		if err != nil {
			return err
		}
		p.GroupRank(g)
	case mpispec.FGroupIncl, mpispec.FGroupExcl:
		g, err := st.group(a[0])
		if err != nil {
			return err
		}
		var ng *mpi.Group
		if c.Func == mpispec.FGroupIncl {
			ng, err = p.GroupIncl(g, ints(a[2]))
		} else {
			ng, err = p.GroupExcl(g, ints(a[2]))
		}
		if err != nil {
			return err
		}
		st.grps[a[3].I] = ng
	case mpispec.FGroupFree:
		g, err := st.group(a[0])
		if err != nil {
			return err
		}
		return p.GroupFree(g)
	case mpispec.FGroupTranslateRanks:
		g1, err := st.group(a[0])
		if err != nil {
			return err
		}
		g2, err := st.group(a[3])
		if err != nil {
			return err
		}
		_, err = p.GroupTranslateRanks(g1, ints(a[2]), g2)
		return err
	case mpispec.FGroupUnion, mpispec.FGroupIntersection, mpispec.FGroupDifference:
		g1, err := st.group(a[0])
		if err != nil {
			return err
		}
		g2, err := st.group(a[1])
		if err != nil {
			return err
		}
		var ng *mpi.Group
		switch c.Func {
		case mpispec.FGroupUnion:
			ng, err = p.GroupUnion(g1, g2)
		case mpispec.FGroupIntersection:
			ng, err = p.GroupIntersection(g1, g2)
		default:
			ng, err = p.GroupDifference(g1, g2)
		}
		if err != nil {
			return err
		}
		st.grps[a[2].I] = ng

	case mpispec.FTypeContiguous:
		old, err := st.datatype(a[1])
		if err != nil {
			return err
		}
		nt, err := p.TypeContiguous(int(a[0].I), old)
		if err != nil {
			return err
		}
		st.types[a[2].I] = nt
	case mpispec.FTypeVector:
		old, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		nt, err := p.TypeVector(int(a[0].I), int(a[1].I), int(a[2].I), old)
		if err != nil {
			return err
		}
		st.types[a[4].I] = nt
	case mpispec.FTypeIndexed:
		old, err := st.datatype(a[3])
		if err != nil {
			return err
		}
		nt, err := p.TypeIndexed(ints(a[1]), ints(a[2]), old)
		if err != nil {
			return err
		}
		st.types[a[4].I] = nt
	case mpispec.FTypeCreateStruct:
		handles := ints(a[3])
		members := make([]*mpi.Datatype, len(handles))
		for i, h := range handles {
			// Struct member handles were recorded as raw values; map
			// predefined ones (the common case in traces we replay).
			dt, ok := st.types[int64(h)-16]
			if !ok {
				return fmt.Errorf("struct member type %d unknown", h)
			}
			members[i] = dt
		}
		nt, err := p.TypeCreateStruct(ints(a[1]), ints(a[2]), members)
		if err != nil {
			return err
		}
		st.types[a[4].I] = nt
	case mpispec.FTypeCommit:
		dt, err := st.datatype(a[0])
		if err != nil {
			return err
		}
		return p.TypeCommit(dt)
	case mpispec.FTypeFree:
		dt, err := st.datatype(a[0])
		if err != nil {
			return err
		}
		delete(st.types, a[0].I)
		return p.TypeFree(dt)
	case mpispec.FTypeSize:
		dt, err := st.datatype(a[0])
		if err != nil {
			return err
		}
		p.TypeSize(dt)
	case mpispec.FTypeGetExtent:
		dt, err := st.datatype(a[0])
		if err != nil {
			return err
		}
		p.TypeGetExtent(dt)
	case mpispec.FTypeDup:
		dt, err := st.datatype(a[0])
		if err != nil {
			return err
		}
		nt, err := p.TypeDup(dt)
		if err != nil {
			return err
		}
		st.types[a[1].I] = nt
	case mpispec.FGetCount, mpispec.FGetElements:
		// Local status queries: re-execute with a status carrying the
		// byte count implied by the recorded result, so the re-traced
		// record reproduces the original outputs.
		dt, err := st.datatype(a[1])
		if err != nil {
			return err
		}
		stat := mpi.Status{}
		if len(a[0].Arr) == 2 {
			stat.Source = int(a[0].Arr[0].Resolve(int64(p.Rank())))
			stat.Tag = int(a[0].Arr[1].I)
		}
		if c.Func == mpispec.FGetCount {
			stat.Count = int(a[2].I) * dt.Size()
			p.GetCount(stat, dt)
		} else {
			stat.Count = int(a[2].I) * dt.LaneSize()
			p.GetElements(stat, dt)
		}
		return nil

	case mpispec.FCartCreate:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		dims := ints(a[2])
		perInts := ints(a[3])
		periods := make([]bool, len(perInts))
		for i, v := range perInts {
			periods[i] = v != 0
		}
		nc, err := p.CartCreate(cm, dims, periods, a[4].I != 0)
		if err != nil {
			return err
		}
		if nc != nil {
			st.comms[a[5].I] = nc
		}
	case mpispec.FCartCoords:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CartCoords(cm, st.rank(a[1], cm))
		return err
	case mpispec.FCartRank:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CartRank(cm, ints(a[1]))
		return err
	case mpispec.FCartShift:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, _, err = p.CartShift(cm, int(a[1].I), int(a[2].I))
		return err
	case mpispec.FCartGet:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, _, _, err = p.CartGet(cm)
		return err
	case mpispec.FCartdimGet:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		_, err = p.CartdimGet(cm)
		return err
	case mpispec.FCartSub:
		cm, err := st.comm(a[0])
		if err != nil {
			return err
		}
		remInts := ints(a[1])
		rem := make([]bool, len(remInts))
		for i, v := range remInts {
			rem[i] = v != 0
		}
		nc, err := p.CartSub(cm, rem)
		if err != nil {
			return err
		}
		if nc != nil {
			st.comms[a[2].I] = nc
		}
	case mpispec.FDimsCreate:
		// Replay the computed output to keep local state consistent.
		dims := make([]int, int(a[1].I))
		return p.DimsCreate(int(a[0].I), int(a[1].I), dims)

	case mpispec.FOpCreate:
		op, err := p.OpCreate(func(dst, src []byte, dt *mpi.Datatype) {}, a[1].I != 0)
		if err != nil {
			return err
		}
		st.ops[a[2].I] = op
	case mpispec.FOpFree:
		op, err := st.op(a[0])
		if err != nil {
			return err
		}
		delete(st.ops, a[0].I)
		return p.OpFree(op)
	case mpispec.FAbort:
		return fmt.Errorf("trace contains MPI_Abort; refusing to replay it")
	default:
		return fmt.Errorf("replay of %s not implemented", c.Func.Name())
	}
	return nil
}
