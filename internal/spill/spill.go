// Package spill is the local half of the streaming, bounded-memory
// finalize: it writes rank snapshots to an on-disk spill in the
// collector's journal format (MANIFEST.json + a frames.jnl of
// CRC32C-framed (Hello, Snapshot) wire pairs — readable by
// pilgrim-dump -journal and collect.JournalReader) and streams them
// back in rank ranges for core.FinalizeStreamed. A local run with
// core.Options.SpillDir set finalizes through here: each rank's
// tracer state moves into a snapshot (core.Tracer.TakeSnapshot),
// lands on disk, and is freed before the next rank is touched, so
// peak resident snapshots is O(MaxResidentSnapshots) instead of
// O(ranks) while the produced trace stays byte-identical to the
// in-memory finalize.
package spill

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

const (
	manifestName = "MANIFEST.json"
	framesName   = "frames.jnl"
)

// manifest mirrors the collector journal's MANIFEST.json so the spill
// directory is inspectable with the same tooling.
type manifest struct {
	RunID      string  `json:"run"`
	Epoch      uint64  `json:"epoch"`
	World      int     `json:"nranks"`
	TimingMode uint8   `json:"timing_mode"`
	TimingBase float64 `json:"timing_base"`
	CreatedSec float64 `json:"created_unix"`
	State      string  `json:"state"` // collecting | finalized | salvaged
	Reason     string  `json:"reason,omitempty"`
}

// Writer spills snapshots for one run and serves them back by rank
// range. Not safe for concurrent use.
type Writer struct {
	dir   string
	f     *os.File
	man   manifest
	world int
	off   int64
	refs  [][2]int64 // rank -> (offset, length) of its frame pair; length 0 = not spilled
}

// NewWriter creates (or truncates) the spill for runID under dir,
// writing a collecting-state manifest up front so a crash mid-spill
// leaves a self-describing directory behind.
func NewWriter(dir, runID string, world int, opts core.Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, framesName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	w := &Writer{
		dir: dir,
		f:   f,
		man: manifest{
			RunID:      runID,
			Epoch:      uint64(time.Now().UnixNano()),
			World:      world,
			TimingMode: opts.TimingMode,
			TimingBase: opts.TimingBase,
			CreatedSec: float64(time.Now().UnixNano()) / 1e9,
			State:      "collecting",
		},
		world: world,
		refs:  make([][2]int64, world),
	}
	if err := w.writeManifest(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeManifest() error {
	data, err := json.MarshalIndent(&w.man, "", "  ")
	if err != nil {
		return fmt.Errorf("spill: manifest: %w", err)
	}
	tmp := filepath.Join(w.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("spill: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, manifestName)); err != nil {
		return fmt.Errorf("spill: manifest: %w", err)
	}
	return nil
}

// Add appends one rank's snapshot as a (Hello, Snapshot) wire frame
// pair — the exact bytes a producer would put on the wire — and
// records its offset for Fetch.
func (w *Writer) Add(s *core.Snapshot) error {
	if s.Rank < 0 || s.Rank >= w.world {
		return fmt.Errorf("spill: rank %d out of range [0,%d)", s.Rank, w.world)
	}
	if w.refs[s.Rank][1] != 0 {
		return fmt.Errorf("spill: rank %d spilled twice", s.Rank)
	}
	h := wire.Hello{
		Version:    wire.Version,
		RunID:      w.man.RunID,
		WorldSize:  w.world,
		Rank:       s.Rank,
		Epoch:      w.man.Epoch,
		TimingMode: w.man.TimingMode,
		TimingBase: w.man.TimingBase,
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.TypeHello, h.Encode()); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	if err := wire.WriteFrame(&buf, wire.TypeSnapshot, wire.EncodeSnapshot(s)); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	if _, err := w.f.WriteAt(buf.Bytes(), w.off); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	w.refs[s.Rank] = [2]int64{w.off, int64(buf.Len())}
	w.off += int64(buf.Len())
	return nil
}

// Fetch implements core.SnapshotFetch: it re-reads and CRC-validates
// the spilled frame pairs for [start, start+n), returning fresh
// snapshots the finalize may absorb in place.
func (w *Writer) Fetch(start, n int) ([]*core.Snapshot, error) {
	if start < 0 || start+n > w.world {
		return nil, fmt.Errorf("spill: fetch [%d,%d) out of range [0,%d)", start, start+n, w.world)
	}
	snaps := make([]*core.Snapshot, n)
	for i := 0; i < n; i++ {
		ref := w.refs[start+i]
		if ref[1] == 0 {
			return nil, fmt.Errorf("spill: rank %d was never spilled", start+i)
		}
		s, err := w.readOne(ref[0], ref[1], start+i)
		if err != nil {
			return nil, err
		}
		snaps[i] = s
	}
	return snaps, nil
}

func (w *Writer) readOne(off, length int64, rank int) (*core.Snapshot, error) {
	r := io.NewSectionReader(w.f, off, length)
	typ, body, err := wire.ReadFrame(r)
	if err != nil {
		return nil, fmt.Errorf("spill: rank %d hello: %w", rank, err)
	}
	if typ != wire.TypeHello {
		return nil, fmt.Errorf("spill: rank %d: frame type 0x%02x where hello expected", rank, typ)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		return nil, fmt.Errorf("spill: rank %d hello: %w", rank, err)
	}
	if h.Rank != rank {
		return nil, fmt.Errorf("spill: frame at offset %d holds rank %d, expected %d", off, h.Rank, rank)
	}
	typ, body, err = wire.ReadFrame(r)
	if err != nil {
		return nil, fmt.Errorf("spill: rank %d snapshot: %w", rank, err)
	}
	if typ != wire.TypeSnapshot {
		return nil, fmt.Errorf("spill: rank %d: frame type 0x%02x where snapshot expected", rank, typ)
	}
	s, err := wire.DecodeSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("spill: rank %d snapshot: %w", rank, err)
	}
	return s, nil
}

// Finish rewrites the manifest with the run's terminal state. The
// frames are retained — the spill directory doubles as a replayable
// wire recording (pilgrim-dump -journal, pilgrim-loadgen).
func (w *Writer) Finish(state, reason string) error {
	w.man.State, w.man.Reason = state, reason
	return w.writeManifest()
}

// Close releases the spill's file handle.
func (w *Writer) Close() error { return w.f.Close() }

// Finalize runs the streaming finalize over every tracer: snapshots
// move out of the tracers (TakeSnapshot) and spill to
// opts.SpillDir/<run> in batches of opts.MaxResidentSnapshots, then
// core.FinalizeStreamed merges them back from disk in the same
// batches. failed and reason tag a salvage finalize exactly as
// core.SalvageFinalize does; pass failed == nil for a clean run. The
// trace is byte-identical to the in-memory path.
func Finalize(tracers []*core.Tracer, failed map[int]error, reason string, opts core.Options) (*trace.File, core.FinalizeStats, error) {
	world := len(tracers)
	runID := opts.CollectorRunID
	if runID == "" {
		runID = "local"
	}
	var info *trace.SalvageInfo
	if failed != nil || reason != "" {
		if opts.Collector != nil {
			opts.Collector.Salvages.Inc()
		}
		info = &trace.SalvageInfo{Reason: reason, Calls: make([]int64, world)}
		ranks := make([]int, 0, len(failed))
		for r := range failed {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			info.FailedRanks = append(info.FailedRanks, int32(r))
		}
	}
	w, err := NewWriter(filepath.Join(opts.SpillDir, runID), runID, world, opts)
	if err != nil {
		return nil, core.FinalizeStats{}, err
	}
	defer w.Close()
	// Spill pass: move each rank's state to disk and free it before
	// touching the next, in MaxResidentSnapshots-sized strides so the
	// obs timeline shows the same batching the merge passes use.
	batch := opts.MaxResidentSnapshots
	if batch <= 0 || batch > world {
		batch = world
	}
	for start := 0; start < world; start += batch {
		n := batch
		if start+n > world {
			n = world - start
		}
		sp := opts.ObsSink.Start("finalize", "finalize.spill").
			WithAttr("start", int64(start)).WithAttr("ranks", int64(n))
		for i := start; i < start+n; i++ {
			s := tracers[i].TakeSnapshot()
			if info != nil {
				info.Calls[i] = s.Calls
			}
			if err := w.Add(s); err != nil {
				sp.End()
				return nil, core.FinalizeStats{}, err
			}
		}
		sp.End()
	}
	f, st, err := core.FinalizeStreamed(world, w.Fetch, opts, info)
	if err != nil {
		return nil, core.FinalizeStats{}, err
	}
	state := "finalized"
	if info != nil {
		state = "salvaged"
	}
	if err := w.Finish(state, reason); err != nil {
		return nil, core.FinalizeStats{}, err
	}
	return f, st, nil
}
