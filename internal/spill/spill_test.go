package spill

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// mkSnapshot builds a small deterministic rank snapshot with a shared
// phase and rank-specific entries.
func mkSnapshot(r int) *core.Snapshot {
	tbl := cst.New()
	g := sequitur.New()
	for i := 0; i < 20; i++ {
		g.Append(tbl.Add([]byte(fmt.Sprintf("shared/%d", i%4)), int64(100+i)))
	}
	for i := 0; i < 3+r%5; i++ {
		g.Append(tbl.Add([]byte(fmt.Sprintf("rank%d/%d", r, i)), int64(200+i)))
	}
	return &core.Snapshot{
		Rank:    r,
		Calls:   tbl.Calls(),
		Table:   tbl,
		Grammar: sequitur.Serialized(g.Serialize()),
	}
}

// TestRoundTrip spills snapshots and fetches them back in several
// range shapes, checking each decoded snapshot is wire-identical to
// the original and that repeated fetches of the same range keep
// working (the finalize streams the ranks twice).
func TestRoundTrip(t *testing.T) {
	const world = 9
	w, err := NewWriter(t.TempDir(), "rt", world, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	want := make([][]byte, world)
	// Out-of-rank-order spill: offsets are per rank, not positional.
	for _, r := range []int{4, 0, 8, 2, 6, 1, 7, 3, 5} {
		s := mkSnapshot(r)
		want[r] = wire.EncodeSnapshot(s)
		if err := w.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, rng := range [][2]int{{0, world}, {0, 1}, {8, 1}, {3, 4}, {0, world}} {
		snaps, err := w.Fetch(rng[0], rng[1])
		if err != nil {
			t.Fatalf("fetch [%d,%d): %v", rng[0], rng[0]+rng[1], err)
		}
		if len(snaps) != rng[1] {
			t.Fatalf("fetch [%d,%d): got %d snapshots", rng[0], rng[0]+rng[1], len(snaps))
		}
		for i, s := range snaps {
			r := rng[0] + i
			if s.Rank != r {
				t.Fatalf("fetch [%d,%d): rank %d at position %d", rng[0], rng[0]+rng[1], s.Rank, i)
			}
			if !bytes.Equal(wire.EncodeSnapshot(s), want[r]) {
				t.Fatalf("rank %d: fetched snapshot differs from spilled", r)
			}
		}
	}
}

func TestWriterRejectsBadAdds(t *testing.T) {
	w, err := NewWriter(t.TempDir(), "bad", 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Add(mkSnapshot(3)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := w.Add(&core.Snapshot{Rank: -1}); err == nil {
		t.Fatal("negative rank accepted")
	}
	if err := w.Add(mkSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mkSnapshot(1)); err == nil {
		t.Fatal("double spill of a rank accepted")
	}
	if _, err := w.Fetch(0, 2); err == nil {
		t.Fatal("fetch of a never-spilled rank succeeded")
	}
	if _, err := w.Fetch(2, 2); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
}

// TestManifestLifecycle checks the spill directory is self-describing
// through its life: collecting while open, terminal after Finish, in
// the collector journal's manifest schema.
func TestManifestLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "life", 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	read := func() map[string]any {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := read()
	if m["state"] != "collecting" || m["run"] != "life" || m["nranks"] != float64(2) {
		t.Fatalf("fresh manifest = %v", m)
	}
	for r := 0; r < 2; r++ {
		if err := w.Add(mkSnapshot(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish("finalized", ""); err != nil {
		t.Fatal(err)
	}
	if m := read(); m["state"] != "finalized" {
		t.Fatalf("finished manifest state = %v", m["state"])
	}
}

// TestFetchDetectsCorruption flips a byte in the frames file and
// checks the CRC-framed read fails loudly instead of decoding garbage.
func TestFetchDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "crc", 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Add(mkSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "frames.jnl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fetch(0, 1); err == nil {
		t.Fatal("fetch of a corrupted frame succeeded")
	}
}
