package cst

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddDedup(t *testing.T) {
	tb := New()
	a := tb.Add([]byte("sigA"), 100)
	b := tb.Add([]byte("sigB"), 200)
	a2 := tb.Add([]byte("sigA"), 300)
	if a != a2 {
		t.Fatalf("duplicate signature got different terminal: %d %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct signatures share a terminal")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.Calls() != 3 {
		t.Fatalf("Calls = %d", tb.Calls())
	}
	if avg := tb.AvgDuration(a); avg != 200 {
		t.Fatalf("avg duration = %d, want 200", avg)
	}
	if !bytes.Equal(tb.Sig(b), []byte("sigB")) {
		t.Fatal("Sig roundtrip failed")
	}
}

func TestLookupNoInsert(t *testing.T) {
	tb := New()
	if _, ok := tb.Lookup([]byte("x")); ok {
		t.Fatal("lookup of absent signature succeeded")
	}
	tb.Add([]byte("x"), 1)
	if term, ok := tb.Lookup([]byte("x")); !ok || term != 0 {
		t.Fatal("lookup failed after insert")
	}
}

func TestMergeFigure3(t *testing.T) {
	// The paper's Figure 3: rank 0 has {comm1, comm2}, rank 1 has
	// {comm1, comm3}; merged has 3 entries, comm3 relabelled.
	r0 := New()
	r0.Add([]byte("barrier(comm1)"), 10)
	r0.Add([]byte("barrier(comm2)"), 10)
	r1 := New()
	r1.Add([]byte("barrier(comm1)"), 10)
	r1.Add([]byte("barrier(comm3)"), 10)

	m := Merge([]*Table{r0, r1})
	if m.Table.Len() != 3 {
		t.Fatalf("merged table has %d entries, want 3", m.Table.Len())
	}
	// Rank 0's terminals unchanged.
	if m.Relabels[0][0] != 0 || m.Relabels[0][1] != 1 {
		t.Errorf("rank 0 relabels: %v", m.Relabels[0])
	}
	// Rank 1: comm1 keeps 0, comm3 becomes 2.
	if m.Relabels[1][0] != 0 || m.Relabels[1][1] != 2 {
		t.Errorf("rank 1 relabels: %v", m.Relabels[1])
	}
	// Counts aggregated.
	if m.Table.Calls() != 4 {
		t.Errorf("merged calls = %d", m.Table.Calls())
	}
}

func TestMergeIdenticalTablesIsIdentity(t *testing.T) {
	mk := func() *Table {
		tb := New()
		for i := 0; i < 10; i++ {
			tb.Add([]byte{byte(i)}, int64(i))
		}
		return tb
	}
	tables := []*Table{mk(), mk(), mk(), mk()}
	m := Merge(tables)
	if m.Table.Len() != 10 {
		t.Fatalf("merged size %d", m.Table.Len())
	}
	for r := range tables {
		for old, nw := range m.Relabels[r] {
			if int32(old) != nw {
				t.Fatalf("rank %d: identical tables should relabel identically (%d->%d)", r, old, nw)
			}
		}
	}
}

func TestMergePairwiseEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tables []*Table
	for r := 0; r < 9; r++ { // odd count exercises the stray-node path
		tb := New()
		for i := 0; i < 20; i++ {
			sig := []byte(fmt.Sprintf("sig-%d", rng.Intn(12)))
			tb.Add(sig, int64(i))
		}
		tables = append(tables, tb)
	}
	flat := Merge(tables)
	tree := MergePairwise(tables)
	if flat.Table.Len() != tree.Table.Len() {
		t.Fatalf("flat %d entries vs tree %d", flat.Table.Len(), tree.Table.Len())
	}
	// Both must map every rank's old terminal to a terminal holding
	// the same signature bytes.
	for r, tb := range tables {
		for old := int32(0); old < int32(tb.Len()); old++ {
			sigFlat := flat.Table.Sig(flat.Relabels[r][old])
			sigTree := tree.Table.Sig(tree.Relabels[r][old])
			if !bytes.Equal(sigFlat, sigTree) {
				t.Fatalf("rank %d term %d: signature mismatch between merge strategies", r, old)
			}
			if !bytes.Equal(sigFlat, tb.Sig(old)) {
				t.Fatalf("rank %d term %d: merged signature differs from original", r, old)
			}
		}
	}
	if flat.Table.Calls() != tree.Table.Calls() {
		t.Fatal("call counts diverge between merge strategies")
	}
}

// TestMergePairwiseWorkersIdentical pins the determinism argument the
// parallel finalize rests on: the pairwise tree's shape is a pure
// function of the rank count, so any worker count yields the same
// global table (bytes) and the same relabel slices.
func TestMergePairwiseWorkersIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 64} {
		tables := mkTables(n)
		want := MergePairwiseN(tables, 1)
		for _, workers := range []int{2, 3, 8, 0} {
			got := MergePairwiseN(tables, workers)
			if !bytes.Equal(got.Table.SerializeExact(), want.Table.SerializeExact()) {
				t.Fatalf("n=%d workers=%d: merged table differs from sequential", n, workers)
			}
			for r := 0; r < n; r++ {
				if len(got.Relabels[r]) != len(want.Relabels[r]) {
					t.Fatalf("n=%d workers=%d rank %d: relabel length differs", n, workers, r)
				}
				for old, nw := range want.Relabels[r] {
					if got.Relabels[r][old] != nw {
						t.Fatalf("n=%d workers=%d rank %d: relabel[%d]=%d, want %d",
							n, workers, r, old, got.Relabels[r][old], nw)
					}
				}
			}
		}
	}
}

// TestMergePairwiseLeavesInputsIntact guards the in-place absorb
// optimization: input (leaf) tables are the caller's — snapshots that
// may be finalized again — and must survive the merge unchanged.
func TestMergePairwiseLeavesInputsIntact(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		tables := mkTables(n)
		before := make([][]byte, n)
		for i, tb := range tables {
			before[i] = tb.SerializeExact()
		}
		MergePairwiseN(tables, 4)
		for i, tb := range tables {
			if !bytes.Equal(tb.SerializeExact(), before[i]) {
				t.Fatalf("n=%d: input table %d mutated by merge", n, i)
			}
		}
	}
}

// TestAddHitPathAllocFree pins the tracing fast path at zero
// allocations once a signature is in the table (the map probe uses a
// compiler-elided string conversion).
func TestAddHitPathAllocFree(t *testing.T) {
	tb := New()
	sig := []byte("MPI_Send(comm=0,dest=+1,tag=42)")
	tb.Add(sig, 10)
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Add(sig, 7)
	})
	if allocs != 0 {
		t.Fatalf("CST hit path allocates %.1f times per call, want 0", allocs)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	tb := New()
	tb.Add([]byte("alpha"), 5)
	tb.Add([]byte{0, 1, 2, 255}, 7)
	tb.Add([]byte(""), 9)
	data := tb.Serialize()
	got, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() || got.Calls() != tb.Calls() {
		t.Fatal("shape mismatch after roundtrip")
	}
	for i := int32(0); i < int32(tb.Len()); i++ {
		if !bytes.Equal(got.Sig(i), tb.Sig(i)) {
			t.Fatalf("entry %d differs", i)
		}
		if got.AvgDuration(i) != tb.AvgDuration(i) {
			t.Fatalf("entry %d duration differs", i)
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{5},              // promises 5 entries, has none
		{1, 10, 1, 2, 3}, // truncated signature
	}
	for i, data := range cases {
		if _, err := Deserialize(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Trailing bytes.
	tb := New()
	tb.Add([]byte("x"), 1)
	if _, err := Deserialize(append(tb.Serialize(), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestQuickMergePreservesSignatures(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		var tables []*Table
		for _, chunk := range raw {
			tb := New()
			for _, b := range chunk {
				tb.Add([]byte{b % 8}, 1)
			}
			tables = append(tables, tb)
		}
		m := Merge(tables)
		for r, tb := range tables {
			if len(m.Relabels[r]) != tb.Len() {
				return false
			}
			for old := int32(0); old < int32(tb.Len()); old++ {
				nw := m.Relabels[r][old]
				if !bytes.Equal(m.Table.Sig(nw), tb.Sig(old)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTermsSortedStable(t *testing.T) {
	tb := New()
	tb.Add([]byte("zz"), 1)
	tb.Add([]byte("aa"), 1)
	tb.Add([]byte("mm"), 1)
	sorted := tb.TermsSorted()
	if string(tb.Sig(sorted[0])) != "aa" || string(tb.Sig(sorted[2])) != "zz" {
		t.Fatalf("sorted order wrong: %v", sorted)
	}
}
