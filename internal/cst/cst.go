// Package cst implements Pilgrim's call signature table (§2.1): the
// per-process mapping from encoded call signatures to grammar terminal
// symbols, with aggregated timing per entry (§3.2), plus the
// inter-process merge that unifies all tables into one global table
// and relabels each rank's terminals (§3.5.1, Figure 3).
package cst

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/hpcrepro/pilgrim/internal/par"
)

// Table is one process's call signature table.
type Table struct {
	bySig map[string]int32
	sigs  []string // terminal -> signature bytes

	// aggregated timing (default mode, §3.2): per-entry call count and
	// duration sum, so the average duration survives compression.
	count  []int64
	durSum []int64
}

// New returns an empty table.
func New() *Table {
	return &Table{bySig: make(map[string]int32)}
}

// Add returns the terminal for sig, creating a new entry on first
// sight, and accumulates the call's duration into the entry. The hit
// path — by far the common case once an application's signature set
// has been seen — is allocation-free: the map is probed with a
// compiler-elided string conversion, and the key string is only
// materialized for a genuinely new signature.
func (t *Table) Add(sig []byte, duration int64) int32 {
	if term, ok := t.bySig[string(sig)]; ok {
		t.count[term]++
		t.durSum[term] += duration
		return term
	}
	key := string(sig)
	term := int32(len(t.sigs))
	t.bySig[key] = term
	t.sigs = append(t.sigs, key)
	t.count = append(t.count, 1)
	t.durSum = append(t.durSum, duration)
	return term
}

// Clone returns a deep copy of the table. Used by crash-consistent
// snapshots: the copy is immutable while the original keeps growing.
func (t *Table) Clone() *Table {
	c := &Table{
		bySig:  make(map[string]int32, len(t.bySig)),
		sigs:   append([]string(nil), t.sigs...),
		count:  append([]int64(nil), t.count...),
		durSum: append([]int64(nil), t.durSum...),
	}
	for k, v := range t.bySig {
		c.bySig[k] = v
	}
	return c
}

// Lookup returns the terminal for sig without inserting.
func (t *Table) Lookup(sig []byte) (int32, bool) {
	term, ok := t.bySig[string(sig)]
	return term, ok
}

// Sig returns the signature bytes of a terminal.
func (t *Table) Sig(term int32) []byte {
	return []byte(t.sigs[term])
}

// Len returns the number of unique signatures.
func (t *Table) Len() int { return len(t.sigs) }

// Count returns the number of calls recorded against a terminal.
func (t *Table) Count(term int32) int64 { return t.count[term] }

// RawBytes estimates the uncompressed signature-stream size: every
// recorded call replayed as its full signature bytes. The ratio of
// this to the serialized trace size is the compression ratio the
// metrics layer and pilgrim-dump report.
func (t *Table) RawBytes() int64 {
	var n int64
	for term, key := range t.sigs {
		n += t.count[term] * int64(len(key))
	}
	return n
}

// Calls returns the total number of calls recorded (sum of counts).
func (t *Table) Calls() int64 {
	var n int64
	for _, c := range t.count {
		n += c
	}
	return n
}

// AvgDuration returns the mean duration of a terminal's calls.
func (t *Table) AvgDuration(term int32) int64 {
	if t.count[term] == 0 {
		return 0
	}
	return t.durSum[term] / t.count[term]
}

// Merged is the result of the inter-process merge: a single global
// table plus, for each input rank, the dense old-terminal →
// new-terminal relabel slice to apply to its grammar (terminals are
// contiguous, so Relabels[rank][old] = new).
type Merged struct {
	Table    *Table
	Relabels [][]int32
}

// Merge unifies the tables of all ranks, keeping only globally unique
// call signatures. It emulates the paper's log₂P pairwise-merge tree;
// the result is identical to any merge order because entries are
// keyed by signature bytes. New terminals are assigned in (first-rank,
// first-occurrence) order, which makes the merged table deterministic.
func Merge(tables []*Table) Merged {
	g := New()
	relabels := make([][]int32, len(tables))
	for r, t := range tables {
		m := make([]int32, len(t.sigs))
		for old, key := range t.sigs {
			term, ok := g.bySig[key]
			if !ok {
				term = int32(len(g.sigs))
				g.bySig[key] = term
				g.sigs = append(g.sigs, key)
				g.count = append(g.count, 0)
				g.durSum = append(g.durSum, 0)
			}
			g.count[term] += t.count[old]
			g.durSum[term] += t.durSum[old]
			m[old] = term
		}
		relabels[r] = m
	}
	return Merged{Table: g, Relabels: relabels}
}

// node is one position in the pairwise merge tree's working set: a
// table plus the relabel slices of the ranks folded into it so far.
// owned reports whether the table belongs to the merge (an internal
// node) and may therefore be extended in place; leaf tables are the
// caller's and are never mutated.
type node struct {
	t     *Table
	ranks []int
	maps  [][]int32
	owned bool
}

// leafNode wraps one input table.
func leafNode(rank int, t *Table) *node {
	return &node{t: t, ranks: []int{rank}, maps: [][]int32{identity(t.Len())}}
}

func identity(n int) []int32 {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(i)
	}
	return m
}

// mergePair folds b into a, producing the parent node. a's terminals
// keep their numbering (its relabel slices transfer unchanged); b's
// entries are appended in first-occurrence order and its relabel
// slices are composed in place. Both children are consumed.
func mergePair(a, b *node) *node {
	dst := a.t
	if !a.owned {
		dst = a.t.Clone()
	}
	mapB := mergeInto(dst, b.t)
	nn := &node{t: dst, owned: true}
	nn.ranks = append(a.ranks, b.ranks...)
	nn.maps = a.maps
	for _, m := range b.maps {
		nn.maps = append(nn.maps, composeInPlace(m, mapB))
	}
	return nn
}

// MergePairwise performs the same merge with an explicit log₂P
// pairwise tree (the structure the paper times in Figure 8),
// sequentially. The resulting global table equals Merge's up to
// terminal numbering; the relabel slices are composed across rounds.
func MergePairwise(tables []*Table) Merged {
	return MergePairwiseN(tables, 1)
}

// MergePairwiseN is MergePairwise with each round's pair merges
// running on up to workers goroutines, mirroring the paper's §3.5
// observation that the log₂P rounds run in parallel across the
// machine. The tree shape is a pure function of len(tables), every
// pair merge is deterministic in its two inputs, and round k+1 only
// reads round k's outputs — so the result, including terminal
// numbering, is identical for every worker count. workers <= 0 means
// GOMAXPROCS.
func MergePairwiseN(tables []*Table, workers int) Merged {
	n := len(tables)
	if n == 0 {
		return Merged{Table: New()}
	}
	workers = par.Workers(workers)
	nodes := make([]*node, n)
	par.For(n, workers, func(i int) {
		nodes[i] = leafNode(i, tables[i])
	})
	for len(nodes) > 1 {
		pairs := len(nodes) / 2
		next := make([]*node, 0, pairs+1)
		merged := make([]*node, pairs)
		par.For(pairs, workers, func(i int) {
			merged[i] = mergePair(nodes[2*i], nodes[2*i+1])
		})
		next = append(next, merged...)
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	root := nodes[0]
	out := Merged{Table: root.t, Relabels: make([][]int32, n)}
	for j, r := range root.ranks {
		out.Relabels[r] = root.maps[j]
	}
	// The root may still be an unowned leaf (n == 1): hand the caller a
	// table it may treat as its own.
	if !root.owned {
		out.Table = root.t.Clone()
	}
	return out
}

// mergeInto absorbs src into dst, as in Figure 3: signatures already
// present keep their terminal, new ones get fresh terminals appended
// in src's first-occurrence order. Returns src's dense relabel slice;
// dst's existing terminals are unchanged (its relabel is the
// identity). src is only read.
func mergeInto(dst, src *Table) []int32 {
	mapB := make([]int32, len(src.sigs))
	for old, key := range src.sigs {
		term, ok := dst.bySig[key]
		if !ok {
			term = int32(len(dst.sigs))
			dst.bySig[key] = term
			dst.sigs = append(dst.sigs, key)
			dst.count = append(dst.count, 0)
			dst.durSum = append(dst.durSum, 0)
		}
		dst.count[term] += src.count[old]
		dst.durSum[term] += src.durSum[old]
		mapB[old] = term
	}
	return mapB
}

// composeInPlace rewrites first[k] = second[first[k]] and returns
// first. The caller owns first (it is a leaf identity or a prior
// composition private to this tree node).
func composeInPlace(first, second []int32) []int32 {
	for k, v := range first {
		first[k] = second[v]
	}
	return first
}

// --- incremental merge -------------------------------------------------------

// Incremental performs the MergePairwise tree merge one rank at a
// time, in any arrival order: a collector feeds tables as ranks report
// and each internal tree node merges as soon as both children are
// complete. The final Result is identical (including terminal
// numbering) to MergePairwise over the same tables in rank order,
// because the tree shape depends only on the rank count and mergeTwo
// is deterministic in its inputs.
type Incremental struct {
	n     int
	nodes []incNode
	leaf  []int // rank -> leaf node index
	root  int
	added atomic.Int64
}

type incNode struct {
	t     *Table
	ranks []int
	maps  [][]int32
	ready bool
	// owned reports the node's table belongs to the merge and may be
	// extended in place; leaf tables are the caller's and stay intact.
	owned bool
	// children; -1 for leaves. parent is -1 for the root.
	left, right, parent int
	// join is AddConcurrent's coordination state: on a leaf it is the
	// claimed flag (CAS 0->1 guards double adds), on an internal node
	// it counts completed children — the add that moves it to 2 owns
	// the merge of that node, so every node merges exactly once with
	// no lock. Sequential Add/AddBatch never touch it.
	join atomic.Int32
}

// NewIncremental builds the merge tree for n ranks (n >= 1).
func NewIncremental(n int) *Incremental {
	inc := &Incremental{n: n, leaf: make([]int, n)}
	current := make([]int, n)
	for r := 0; r < n; r++ {
		inc.nodes = append(inc.nodes, incNode{left: -1, right: -1, parent: -1})
		inc.leaf[r] = r
		current[r] = r
	}
	// Mirror MergePairwise's rounds: adjacent pairs merge, an odd
	// trailing node carries into the next round unchanged.
	for len(current) > 1 {
		var next []int
		for i := 0; i+1 < len(current); i += 2 {
			id := len(inc.nodes)
			inc.nodes = append(inc.nodes, incNode{left: current[i], right: current[i+1], parent: -1})
			inc.nodes[current[i]].parent = id
			inc.nodes[current[i+1]].parent = id
			next = append(next, id)
		}
		if len(current)%2 == 1 {
			next = append(next, current[len(current)-1])
		}
		current = next
	}
	inc.root = current[0]
	return inc
}

// setLeaf installs one rank's table on its leaf node. When owned, the
// table belongs to the merge and may be extended in place by the first
// pair merge (no clone); otherwise it stays intact.
func (inc *Incremental) setLeaf(rank int, t *Table, owned bool) {
	leaf := &inc.nodes[inc.leaf[rank]]
	leaf.t = t
	leaf.ranks = []int{rank}
	leaf.maps = [][]int32{identity(t.Len())}
	leaf.owned = owned
	leaf.ready = true
	inc.added.Add(1)
}

// mergeNode merges internal node p from its two complete children and
// releases their payloads. Deterministic in the children's tables, so
// the caller's scheduling (sequential climb, batch wave, or concurrent
// join) never changes the result.
func (inc *Incremental) mergeNode(p int) {
	pn := &inc.nodes[p]
	a, b := &inc.nodes[pn.left], &inc.nodes[pn.right]
	dst := a.t
	if !a.owned {
		dst = a.t.Clone()
	}
	mapB := mergeInto(dst, b.t)
	pn.t = dst
	pn.owned = true
	pn.ranks = append(a.ranks, b.ranks...)
	pn.maps = a.maps
	for _, m := range b.maps {
		pn.maps = append(pn.maps, composeInPlace(m, mapB))
	}
	pn.ready = true
	// Drop child payloads: only the relabel slices live on in pn.
	a.t, a.ranks, a.maps = nil, nil, nil
	b.t, b.ranks, b.maps = nil, nil, nil
}

// Add feeds one rank's table and merges every tree node that becomes
// complete. The table is not mutated or retained past the merge. Not
// safe for concurrent use; the collector's lock-free path is
// AddConcurrent.
func (inc *Incremental) Add(rank int, t *Table) error {
	if rank < 0 || rank >= inc.n {
		return fmt.Errorf("cst: incremental merge rank %d out of range [0,%d)", rank, inc.n)
	}
	if inc.nodes[inc.leaf[rank]].ready {
		return fmt.Errorf("cst: incremental merge rank %d added twice", rank)
	}
	inc.setLeaf(rank, t, false)
	// Propagate upward while both children of the parent are ready.
	for id := inc.leaf[rank]; inc.nodes[id].parent != -1; {
		p := inc.nodes[id].parent
		pn := &inc.nodes[p]
		if !inc.nodes[pn.left].ready || !inc.nodes[pn.right].ready {
			break
		}
		inc.mergeNode(p)
		id = p
	}
	return nil
}

// AddBatch feeds a contiguous rank range [start, start+len(tables)) in
// one call, merging every tree node that becomes complete with pair
// merges running on up to workers goroutines per wave. The tables are
// owned by the merge (absorbed in place, never cloned) — callers
// stream them from disk and must not reuse them. The result is
// byte-identical to feeding the same tables through Add one at a time:
// each internal node's table is a pure function of its descendant
// leaves in fixed left-right order, and wave scheduling only decides
// when a node merges, never what it merges.
func (inc *Incremental) AddBatch(start int, tables []*Table, workers int) error {
	if start < 0 || start+len(tables) > inc.n {
		return fmt.Errorf("cst: batch [%d,%d) out of range [0,%d)", start, start+len(tables), inc.n)
	}
	workers = par.Workers(workers)
	frontier := make([]int, 0, len(tables))
	for i, t := range tables {
		rank := start + i
		if inc.nodes[inc.leaf[rank]].ready {
			return fmt.Errorf("cst: incremental merge rank %d added twice", rank)
		}
		inc.setLeaf(rank, t, true)
		frontier = append(frontier, inc.leaf[rank])
	}
	// Wave propagation: collect every parent whose two children are now
	// complete, merge the wave in parallel, repeat with the merged
	// nodes as the new frontier. par.For's join is the barrier that
	// publishes one wave's ready flags to the next collection pass.
	queued := make(map[int]bool)
	for len(frontier) > 0 {
		var wave []int
		for _, id := range frontier {
			p := inc.nodes[id].parent
			if p == -1 || inc.nodes[p].ready || queued[p] {
				continue
			}
			if !inc.nodes[inc.nodes[p].left].ready || !inc.nodes[inc.nodes[p].right].ready {
				continue
			}
			queued[p] = true
			wave = append(wave, p)
		}
		par.For(len(wave), workers, func(i int) {
			inc.mergeNode(wave[i])
		})
		frontier = wave
	}
	return nil
}

// AddConcurrent feeds one rank's table from any goroutine with no
// external lock: the leaf is claimed by CAS, and the add climbs the
// tree bumping each parent's atomic join counter — the add that makes
// a counter reach 2 merges that node (both subtrees complete) and
// continues upward, so every node merges exactly once and concurrent
// adds only ever touch disjoint subtrees. Go's atomics order the
// children's payload writes before the counter increment, so the
// merging goroutine sees both subtrees complete. Returns true when
// this add completed the root (Result is valid). When owned, the
// table is absorbed in place rather than cloned.
func (inc *Incremental) AddConcurrent(rank int, t *Table, owned bool) (rootDone bool, err error) {
	if rank < 0 || rank >= inc.n {
		return false, fmt.Errorf("cst: incremental merge rank %d out of range [0,%d)", rank, inc.n)
	}
	id := inc.leaf[rank]
	if !inc.nodes[id].join.CompareAndSwap(0, 1) {
		return false, fmt.Errorf("cst: incremental merge rank %d added twice", rank)
	}
	inc.setLeaf(rank, t, owned)
	for {
		p := inc.nodes[id].parent
		if p == -1 {
			return true, nil
		}
		if inc.nodes[p].join.Add(1) != 2 {
			// Sibling subtree still incomplete; its last add will merge p.
			return false, nil
		}
		inc.mergeNode(p)
		id = p
	}
}

// Received returns how many ranks have been added.
func (inc *Incremental) Received() int { return int(inc.added.Load()) }

// Done reports whether every rank has been added (Result is valid).
func (inc *Incremental) Done() bool { return int(inc.added.Load()) == inc.n }

// Result returns the completed merge; it must not be called before
// Done reports true.
func (inc *Incremental) Result() Merged {
	root := &inc.nodes[inc.root]
	if !root.ready {
		panic("cst: Incremental.Result before all ranks added")
	}
	out := Merged{Table: root.t, Relabels: make([][]int32, inc.n)}
	for j, r := range root.ranks {
		out.Relabels[r] = root.maps[j]
	}
	// A single-rank merge never ran mergeInto: return a table the
	// caller may own without mutating the rank's snapshot table.
	if !root.owned {
		out.Table = root.t.Clone()
	}
	return out
}

// --- serialization -----------------------------------------------------------

// Serialize flattens the table: varint count, then per entry
// (len, bytes, callCount, avgDuration). Storing the average rather
// than the sum keeps entry width independent of run length, matching
// the paper's "we keep the average for calls' duration" (§3.2).
func (t *Table) Serialize() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(t.sigs)))
	for i, key := range t.sigs {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		buf = binary.AppendVarint(buf, t.count[i])
		buf = binary.AppendVarint(buf, t.AvgDuration(int32(i)))
	}
	return buf
}

// Deserialize parses a serialized table.
func Deserialize(data []byte) (*Table, error) {
	t := New()
	pos := 0
	n, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("cst: truncated count")
	}
	pos += k
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d length", i)
		}
		pos += k
		// Compare in uint64: int(l) may wrap negative and pos+int(l) may
		// overflow, either of which would slip past an int comparison and
		// panic on the slice below.
		if l > uint64(len(data)-pos) {
			return nil, fmt.Errorf("cst: truncated entry %d bytes", i)
		}
		key := string(data[pos : pos+int(l)])
		pos += int(l)
		cnt, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d count", i)
		}
		pos += k
		avg, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d duration", i)
		}
		pos += k
		if _, dup := t.bySig[key]; dup {
			return nil, fmt.Errorf("cst: duplicate signature in entry %d", i)
		}
		t.bySig[key] = int32(len(t.sigs))
		t.sigs = append(t.sigs, key)
		t.count = append(t.count, cnt)
		t.durSum = append(t.durSum, avg*cnt)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("cst: %d trailing bytes", len(data)-pos)
	}
	return t, nil
}

// SerializeExact flattens the table keeping exact duration sums:
// varint count, then per entry (len, bytes, callCount, durSum). The
// on-disk format (Serialize) stores the average, which rounds; a
// snapshot in flight to a collector must preserve the sum so the
// merged global table — and therefore the final trace file — is
// byte-identical to an in-process merge.
func (t *Table) SerializeExact() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(t.sigs)))
	for i, key := range t.sigs {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		buf = binary.AppendVarint(buf, t.count[i])
		buf = binary.AppendVarint(buf, t.durSum[i])
	}
	return buf
}

// DeserializeExact parses a SerializeExact-encoded table. It is the
// collector ingest path's decoder, so allocation is lean: the entry
// count is validated against the bytes present (each entry costs at
// least 3 bytes), then every slice and the signature index are sized
// exactly once — no append-growth churn per arriving snapshot.
func DeserializeExact(data []byte) (*Table, error) {
	t := New()
	pos := 0
	n, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("cst: truncated count")
	}
	pos += k
	if n > uint64(len(data)-pos)/3 {
		return nil, fmt.Errorf("cst: %d entries claimed in %d bytes", n, len(data)-pos)
	}
	if n > 0 {
		t.bySig = make(map[string]int32, n)
		t.sigs = make([]string, 0, n)
		t.count = make([]int64, 0, n)
		t.durSum = make([]int64, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d length", i)
		}
		pos += k
		// Same uint64 comparison as Deserialize: int(l) may wrap.
		if l > uint64(len(data)-pos) {
			return nil, fmt.Errorf("cst: truncated entry %d bytes", i)
		}
		key := string(data[pos : pos+int(l)])
		pos += int(l)
		cnt, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d count", i)
		}
		pos += k
		sum, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("cst: truncated entry %d duration sum", i)
		}
		pos += k
		if _, dup := t.bySig[key]; dup {
			return nil, fmt.Errorf("cst: duplicate signature in entry %d", i)
		}
		t.bySig[key] = int32(len(t.sigs))
		t.sigs = append(t.sigs, key)
		t.count = append(t.count, cnt)
		t.durSum = append(t.durSum, sum)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("cst: %d trailing bytes", len(data)-pos)
	}
	return t, nil
}

// Bytes returns the serialized size, the number the size experiments
// report for the CST section.
func (t *Table) Bytes() int { return len(t.Serialize()) }

// TermsSorted returns all terminals ordered by signature bytes
// (diagnostics/deterministic iteration).
func (t *Table) TermsSorted() []int32 {
	out := make([]int32, t.Len())
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(i, j int) bool { return t.sigs[out[i]] < t.sigs[out[j]] })
	return out
}
