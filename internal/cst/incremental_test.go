package cst

import (
	"bytes"
	"math/rand"
	"testing"
)

// mkTables builds n rank tables with a shared core plus per-rank
// entries, the shape the inter-process merge sees in practice.
func mkTables(n int) []*Table {
	rng := rand.New(rand.NewSource(int64(n)))
	tables := make([]*Table, n)
	for r := range tables {
		t := New()
		for i := 0; i < 10; i++ {
			t.Add([]byte{byte(i)}, int64(rng.Intn(1000)))
		}
		for i := 0; i < rng.Intn(6); i++ {
			t.Add([]byte{0xF0, byte(r), byte(i)}, int64(rng.Intn(1000)))
		}
		// Repeat hits so counts and duration sums accumulate.
		for i := 0; i < 10; i += 2 {
			t.Add([]byte{byte(i)}, int64(rng.Intn(1000)))
		}
		tables[r] = t
	}
	return tables
}

// TestIncrementalMatchesPairwise feeds ranks in random arrival orders
// and checks the result is identical — table bytes and relabel maps —
// to MergePairwise in rank order. This is the property the collector's
// byte-equivalence guarantee rests on.
func TestIncrementalMatchesPairwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 17} {
		tables := mkTables(n)
		want := MergePairwise(tables)
		for trial := 0; trial < 4; trial++ {
			order := rand.New(rand.NewSource(int64(n*100 + trial))).Perm(n)
			inc := NewIncremental(n)
			for i, r := range order {
				if inc.Done() {
					t.Fatalf("n=%d: Done before all ranks", n)
				}
				if err := inc.Add(r, tables[r]); err != nil {
					t.Fatalf("n=%d add rank %d: %v", n, r, err)
				}
				if inc.Received() != i+1 {
					t.Fatalf("n=%d: Received=%d after %d adds", n, inc.Received(), i+1)
				}
			}
			if !inc.Done() {
				t.Fatalf("n=%d: not Done after all ranks", n)
			}
			got := inc.Result()
			if !bytes.Equal(got.Table.SerializeExact(), want.Table.SerializeExact()) {
				t.Fatalf("n=%d order %v: merged table differs from MergePairwise", n, order)
			}
			for r := 0; r < n; r++ {
				if len(got.Relabels[r]) != len(want.Relabels[r]) {
					t.Fatalf("n=%d rank %d: relabel size %d != %d", n, r, len(got.Relabels[r]), len(want.Relabels[r]))
				}
				for old, nw := range want.Relabels[r] {
					if got.Relabels[r][old] != nw {
						t.Fatalf("n=%d rank %d: relabel[%d]=%d, want %d", n, r, old, got.Relabels[r][old], nw)
					}
				}
			}
		}
	}
}

func TestIncrementalRejectsBadAdds(t *testing.T) {
	inc := NewIncremental(2)
	tb := New()
	tb.Add([]byte("x"), 1)
	if err := inc.Add(2, tb); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := inc.Add(-1, tb); err == nil {
		t.Fatal("negative rank accepted")
	}
	if err := inc.Add(0, tb); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(0, tb); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

// TestSerializeExactRoundTrip checks the exact form preserves duration
// sums that the on-disk (average-storing) form would round away.
func TestSerializeExactRoundTrip(t *testing.T) {
	tb := New()
	tb.Add([]byte("a"), 3)
	tb.Add([]byte("a"), 4) // sum 7 over 2 calls: avg form would store 3
	tb.Add([]byte("b"), 5)
	got, err := DeserializeExact(tb.SerializeExact())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.SerializeExact(), tb.SerializeExact()) {
		t.Fatal("exact round trip not identical")
	}
	if got.durSum[0] != 7 {
		t.Fatalf("durSum = %d, want 7", got.durSum[0])
	}
	// The lossy path really is lossy here — guard that the exact path
	// is needed at all.
	lossy, err := Deserialize(tb.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if lossy.durSum[0] == 7 {
		t.Fatal("avg round trip unexpectedly exact; exact form redundant?")
	}
}

func TestDeserializeExactTruncated(t *testing.T) {
	tb := New()
	tb.Add([]byte("sig"), 123)
	full := tb.SerializeExact()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DeserializeExact(full[:cut]); err == nil && cut < len(full) {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DeserializeExact(append(full, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
