package cst

import (
	"encoding/binary"
	"testing"
)

// Deserialize parses attacker-controllable bytes (it sits on the
// trace.Read path); any malformed input must error, never panic.

// TestDeserializeOverflowLength: a signature length of 2^63 wraps
// negative when narrowed to int, which used to slip past the bounds
// check and panic slicing the data.
func TestDeserializeOverflowLength(t *testing.T) {
	for _, l := range []uint64{1 << 63, 1<<64 - 1, 1 << 62} {
		var data []byte
		data = binary.AppendUvarint(data, 1) // one entry
		data = binary.AppendUvarint(data, l) // absurd signature length
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Deserialize panicked on length %d: %v", l, r)
			}
		}()
		if _, err := Deserialize(data); err == nil {
			t.Fatalf("length %d accepted", l)
		}
	}
}

func TestDeserializeExhaustiveCorruption(t *testing.T) {
	tb := New()
	tb.Add([]byte("sigA"), 100)
	tb.Add([]byte("sigB"), 200)
	tb.Add([]byte("sigC"), 300)
	data := tb.Serialize()
	check := func(mut []byte, what string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Deserialize panicked on %s: %v", what, r)
			}
		}()
		Deserialize(mut)
	}
	for cut := 0; cut < len(data); cut++ {
		check(data[:cut], "truncation")
	}
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			check(mut, "bit flip")
		}
	}
}

func FuzzDeserialize(f *testing.F) {
	tb := New()
	tb.Add([]byte("sigA"), 100)
	tb.Add([]byte("sigB"), 200)
	f.Add(tb.Serialize())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Deserialize(data)
		if err != nil {
			return
		}
		// Accepted tables must be internally consistent.
		for i := int32(0); int(i) < got.Len(); i++ {
			got.Sig(i)
			got.AvgDuration(i)
		}
		got.Serialize()
	})
}
