package cst

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// checkMerged fails unless got matches want exactly: same table bytes,
// same relabel maps. This is the byte-equivalence property every
// alternative feed order/scheduling must preserve.
func checkMerged(t *testing.T, n int, got, want Merged) {
	t.Helper()
	if !bytes.Equal(got.Table.SerializeExact(), want.Table.SerializeExact()) {
		t.Fatalf("n=%d: merged table differs from MergePairwise", n)
	}
	for r := 0; r < n; r++ {
		if len(got.Relabels[r]) != len(want.Relabels[r]) {
			t.Fatalf("n=%d rank %d: relabel size %d != %d", n, r, len(got.Relabels[r]), len(want.Relabels[r]))
		}
		for old, nw := range want.Relabels[r] {
			if got.Relabels[r][old] != nw {
				t.Fatalf("n=%d rank %d: relabel[%d]=%d, want %d", n, r, old, got.Relabels[r][old], nw)
			}
		}
	}
}

// TestAddBatchMatchesPairwise feeds contiguous rank batches of several
// sizes at several worker counts and checks the result is identical to
// MergePairwise. AddBatch owns its tables, so each feed regenerates
// them (mkTables is deterministic in n).
func TestAddBatchMatchesPairwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 17, 33} {
		want := MergePairwise(mkTables(n))
		for _, k := range []int{1, 3, n} {
			for _, workers := range []int{1, 4} {
				tables := mkTables(n)
				inc := NewIncremental(n)
				for start := 0; start < n; start += k {
					end := start + k
					if end > n {
						end = n
					}
					if err := inc.AddBatch(start, tables[start:end], workers); err != nil {
						t.Fatalf("n=%d batch=%d: %v", n, k, err)
					}
				}
				if !inc.Done() {
					t.Fatalf("n=%d batch=%d: not Done after all batches", n, k)
				}
				checkMerged(t, n, inc.Result(), want)
			}
		}
	}
}

func TestAddBatchRejectsBadRanges(t *testing.T) {
	inc := NewIncremental(4)
	tb := func() *Table { t := New(); t.Add([]byte("x"), 1); return t }
	if err := inc.AddBatch(3, []*Table{tb(), tb()}, 1); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if err := inc.AddBatch(-1, []*Table{tb()}, 1); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := inc.AddBatch(1, []*Table{tb()}, 1); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddBatch(0, []*Table{tb(), tb()}, 1); err == nil {
		t.Fatal("batch overlapping an added rank accepted")
	}
}

// TestAddConcurrentMatchesPairwise hammers the lock-free path: all
// ranks fed at once from their own goroutines, in a different shuffled
// claim order per trial, must produce exactly MergePairwise's result,
// with the root completed exactly once. Run under -race this also pins
// the join-counter ordering argument.
func TestAddConcurrentMatchesPairwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 17, 33, 64} {
		want := MergePairwise(mkTables(n))
		for trial := 0; trial < 4; trial++ {
			tables := mkTables(n)
			order := rand.New(rand.NewSource(int64(n*1000 + trial))).Perm(n)
			inc := NewIncremental(n)
			var rootDone atomic.Int32
			var wg sync.WaitGroup
			for _, r := range order {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					done, err := inc.AddConcurrent(r, tables[r], true)
					if err != nil {
						t.Errorf("n=%d rank %d: %v", n, r, err)
					}
					if done {
						rootDone.Add(1)
					}
				}(r)
			}
			wg.Wait()
			if rootDone.Load() != 1 {
				t.Fatalf("n=%d: root completed %d times, want exactly 1", n, rootDone.Load())
			}
			if !inc.Done() {
				t.Fatalf("n=%d: not Done after all concurrent adds", n)
			}
			checkMerged(t, n, inc.Result(), want)
		}
	}
}

// TestAddConcurrentUnowned checks owned=false leaves the caller's
// tables intact (the merge clones before extending).
func TestAddConcurrentUnowned(t *testing.T) {
	const n = 5
	tables := mkTables(n)
	before := make([][]byte, n)
	for r, tb := range tables {
		before[r] = tb.SerializeExact()
	}
	want := MergePairwise(mkTables(n))
	inc := NewIncremental(n)
	for r := 0; r < n; r++ {
		if _, err := inc.AddConcurrent(r, tables[r], false); err != nil {
			t.Fatal(err)
		}
	}
	checkMerged(t, n, inc.Result(), want)
	for r, tb := range tables {
		if !bytes.Equal(tb.SerializeExact(), before[r]) {
			t.Fatalf("rank %d: unowned table mutated by the merge", r)
		}
	}
}

// TestAddConcurrentRejectsDuplicates races several goroutines claiming
// the same rank: the CAS admits exactly one.
func TestAddConcurrentRejectsDuplicates(t *testing.T) {
	inc := NewIncremental(2)
	const attempts = 8
	var ok, dup atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb := New()
			tb.Add([]byte("x"), 1)
			if _, err := inc.AddConcurrent(0, tb, true); err != nil {
				dup.Add(1)
			} else {
				ok.Add(1)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != 1 || dup.Load() != attempts-1 {
		t.Fatalf("duplicate claims: %d accepted, %d rejected; want 1/%d", ok.Load(), dup.Load(), attempts-1)
	}
	if _, err := inc.AddConcurrent(2, New(), true); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := inc.AddConcurrent(-1, New(), true); err == nil {
		t.Fatal("negative rank accepted")
	}
}
