package timing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

func TestBinRoundtripErrorBound(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw%1_000_000_000) + 1
		for _, b := range []float64{1.05, 1.2, 2.0} {
			got := valueOf(binOf(v, math.Log(b)), b)
			if got < v*0.999999 { // must never undershoot (ceil)
				return false
			}
			if got > v*b*1.000001 { // relative error < b-1
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegative(t *testing.T) {
	if binOf(0, math.Log(1.2)) != zeroTerm || binOf(-5, math.Log(1.2)) != zeroTerm {
		t.Fatal("non-positive values must map to the zero terminal")
	}
	if valueOf(zeroTerm, 1.2) != 0 {
		t.Fatal("zero terminal must recover 0")
	}
}

func TestRecordReconstructErrorBound(t *testing.T) {
	const base = 1.2
	rng := rand.New(rand.NewSource(42))
	c := New(base)

	type call struct {
		term   int32
		f      mpispec.FuncID
		ts, te int64
	}
	var calls []call
	now := int64(1000)
	for i := 0; i < 2000; i++ {
		term := int32(rng.Intn(5))
		dur := int64(500 + rng.Intn(100000))
		gap := int64(100 + rng.Intn(50000))
		now += gap
		calls = append(calls, call{term: term, f: mpispec.FSend, ts: now, te: now + dur})
		now += dur
	}
	for _, cl := range calls {
		c.Record(cl.term, cl.f, cl.ts, cl.te)
	}
	durSeq := c.DurationGrammar().Expand(0)
	intSeq := c.IntervalGrammar().Expand(0)
	if len(durSeq) != len(calls) || len(intSeq) != len(calls) {
		t.Fatalf("grammar lengths %d/%d, want %d", len(durSeq), len(intSeq), len(calls))
	}
	r := NewReconstructor(base)
	for i, cl := range calls {
		ts, te := r.Next(cl.term, cl.f, durSeq[i], intSeq[i])
		if relErr(float64(ts), float64(cl.ts)) > base-1+1e-9 {
			t.Fatalf("call %d: tStart error %.4f exceeds bound", i, relErr(float64(ts), float64(cl.ts)))
		}
		wantDur := float64(cl.te - cl.ts)
		gotDur := float64(te - ts)
		if relErr(gotDur, wantDur) > base-1+1e-9 {
			t.Fatalf("call %d: duration error %.4f exceeds bound", i, relErr(gotDur, wantDur))
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestSeriesEveryCallWithinBound(t *testing.T) {
	// The paper's §3.2 guarantee is per call, not on average: every
	// reconstructed start time and duration must be within base−1
	// relative error. Exercise the public batch API on a mixed stream
	// (several signatures, bursty gaps, two orders of magnitude of
	// durations) and assert the bound call by call.
	const base = 1.2
	rng := rand.New(rand.NewSource(7))
	c := New(base)

	var terms []int32
	var funcs []mpispec.FuncID
	var starts, durs []int64
	now := int64(500)
	fids := []mpispec.FuncID{mpispec.FSend, mpispec.FRecv, mpispec.FWaitall, mpispec.FAllreduce}
	for i := 0; i < 3000; i++ {
		term := int32(rng.Intn(7))
		f := fids[rng.Intn(len(fids))]
		dur := int64(200 + rng.Intn(200_000))
		gap := int64(50 + rng.Intn(80_000))
		if rng.Intn(20) == 0 { // occasional long silence (checkpoint-style)
			gap += 5_000_000
		}
		now += gap
		terms = append(terms, term)
		funcs = append(funcs, f)
		starts = append(starts, now)
		durs = append(durs, dur)
		c.Record(term, f, now, now+dur)
		now += dur
	}

	r := NewReconstructor(base)
	times, err := r.Series(terms, funcs, c.DurationGrammar().Expand(0), c.IntervalGrammar().Expand(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(terms) {
		t.Fatalf("Series returned %d times for %d calls", len(times), len(terms))
	}
	bound := r.Bound(mpispec.FSend) + 1e-9
	for i, ct := range times {
		if e := relErr(float64(ct.Start), float64(starts[i])); e > bound {
			t.Fatalf("call %d: start error %.4f exceeds per-call bound %.4f", i, e, bound)
		}
		if e := relErr(float64(ct.Duration()), float64(durs[i])); e > bound {
			t.Fatalf("call %d: duration error %.4f exceeds per-call bound %.4f", i, e, bound)
		}
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	r := NewReconstructor(1.2)
	if _, err := r.Series([]int32{0, 1}, []mpispec.FuncID{mpispec.FSend}, []int32{0, 0}, []int32{0, 0}); err == nil {
		t.Fatal("mismatched stream lengths must error")
	}
}

func TestRegularLoopTimingCompressesWell(t *testing.T) {
	// Identical durations and intervals in a loop: both grammars must
	// stay O(1) regardless of iteration count.
	c := New(1.2)
	now := int64(0)
	for i := 0; i < 100000; i++ {
		now += 10000
		c.Record(0, mpispec.FSend, now, now+5000)
		now += 5000
	}
	if n := len(c.DurationGrammar()); n > 64 {
		t.Errorf("duration grammar %d ints for a perfect loop", n)
	}
	// Intervals are measured against the reconstructed (overshooting)
	// clock, so their bins fluctuate even in a perfect loop; the
	// grammar must still be far sublinear (the paper's Figure 10 shows
	// interval grammars compress worst).
	if n := len(c.IntervalGrammar()); n > 1000 {
		t.Errorf("interval grammar %d ints for a perfect loop of 100k", n)
	}
}

func TestNoisyTimingStillBounded(t *testing.T) {
	// With ±5% noise the bins mostly coincide; the grammar grows but
	// the error bound must still hold.
	const base = 1.2
	rng := rand.New(rand.NewSource(3))
	c := New(base)
	var starts, ends []int64
	now := int64(100)
	for i := 0; i < 5000; i++ {
		dur := int64(float64(8000) * (1 + 0.05*rng.Float64()))
		gap := int64(float64(2000) * (1 + 0.05*rng.Float64()))
		now += gap
		starts = append(starts, now)
		ends = append(ends, now+dur)
		c.Record(1, mpispec.FRecv, now, now+dur)
		now += dur
	}
	durSeq := c.DurationGrammar().Expand(0)
	intSeq := c.IntervalGrammar().Expand(0)
	r := NewReconstructor(base)
	for i := range starts {
		ts, _ := r.Next(1, mpispec.FRecv, durSeq[i], intSeq[i])
		if relErr(float64(ts), float64(starts[i])) > base-1+1e-9 {
			t.Fatalf("call %d start error out of bound", i)
		}
	}
}

func TestPerFunctionBase(t *testing.T) {
	c := New(1.2)
	c.SetFuncBase(mpispec.FBarrier, 2.0)
	// A duration of 1000ns bins differently under base 2.
	c.Record(0, mpispec.FBarrier, 0, 1000)
	c.Record(1, mpispec.FSend, 0, 1000)
	seq := c.DurationGrammar().Expand(0)
	if seq[0] == seq[1] {
		t.Fatal("per-function base had no effect")
	}
	r := NewReconstructor(1.2)
	r.SetFuncBase(mpispec.FBarrier, 2.0)
	_, te := r.Next(0, mpispec.FBarrier, seq[0], 0)
	if relErr(float64(te), 1000) > 1.0+1e-9 { // base 2 → error < 1.0
		t.Fatalf("barrier duration error %f", relErr(float64(te), 1000))
	}
}

func TestInvalidBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for base <= 1")
		}
	}()
	New(1.0)
}

func TestGrammarSizesReported(t *testing.T) {
	c := New(1.2)
	for i := 0; i < 100; i++ {
		c.Record(0, mpispec.FSend, int64(i*100), int64(i*100+50))
	}
	if c.Recorded() != 100 {
		t.Fatalf("Recorded = %d", c.Recorded())
	}
	dg := c.DurationGrammar()
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
	if dg.Bytes() <= 0 {
		t.Fatal("empty serialized duration grammar")
	}
	ig := c.IntervalGrammar()
	if err := sequitur.Serialized(ig).Validate(); err != nil {
		t.Fatal(err)
	}
}
