// Package timing implements Pilgrim's lossy timing compression (§3.2).
//
// In the default (aggregated) mode only the mean duration per CST
// entry survives; that lives in the CST itself. This package provides
// the non-aggregated mode: every call's duration and interval are
// binned exponentially with a user-tunable base b (relative error at
// most b−1) and the two resulting bin sequences are compressed with
// two further Sequitur grammars, one for durations and one for
// intervals.
//
// Durations: a duration d is stored as ⌈log_b d⌉ and recovered as
// b^⌈log_b d⌉.
//
// Intervals: for each call signature, the stored intervals reconstruct
// the call's start time as the running sum Σ b^îⱼ. Each new interval
// is measured against that *reconstructed* time (not the true previous
// time), so the error in a recovered wall-clock time never compounds:
// it stays below b−1, relative.
package timing

import (
	"fmt"
	"math"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// binBias offsets bin indices so grammar terminals stay non-negative.
// Terminal 0 is reserved for the exact value 0.
const binBias = 128

const zeroTerm = 0

// expBase is one exponential-bin base with its logarithm cached: the
// binning hot path divides by log b on every recorded call, and
// recomputing math.Log(b) per call roughly doubles its cost. The
// cached value is exactly math.Log(b), so bins are bit-identical to
// the uncached computation.
type expBase struct {
	b    float64
	logB float64
}

func newExpBase(b float64) expBase { return expBase{b: b, logB: math.Log(b)} }

// Compressor builds the duration and interval grammars for one rank.
type Compressor struct {
	base    expBase
	perFunc map[mpispec.FuncID]expBase
	durG    *sequitur.Grammar
	intG    *sequitur.Grammar
	// perSig holds each signature terminal's Σ reconstructed intervals.
	// Terminals are contiguous small ints, so a dense slice (grown on
	// demand) replaces the former map: no hashing and no allocation on
	// the per-call path once the terminal has been seen.
	perSig   []float64
	recorded int64
}

// New returns a compressor with relative error bound base−1 (the
// paper evaluates base = 1.2, i.e. 20%).
func New(base float64) *Compressor {
	if base <= 1 {
		panic("timing: base must be > 1")
	}
	return &Compressor{
		base:    newExpBase(base),
		perFunc: map[mpispec.FuncID]expBase{},
		durG:    sequitur.New(),
		intG:    sequitur.New(),
	}
}

// SetFuncBase overrides the base for one MPI function (the paper
// allows per-function bases).
func (c *Compressor) SetFuncBase(f mpispec.FuncID, base float64) {
	if base <= 1 {
		panic("timing: base must be > 1")
	}
	c.perFunc[f] = newExpBase(base)
}

func (c *Compressor) baseFor(f mpispec.FuncID) expBase {
	if b, ok := c.perFunc[f]; ok {
		return b
	}
	return c.base
}

// binOf returns the grammar terminal for value v under the base whose
// cached logarithm is logB: 0 for v <= 0, otherwise ⌈log_b v⌉ +
// binBias.
func binOf(v float64, logB float64) int32 {
	if v <= 0 {
		return zeroTerm
	}
	bin := int32(math.Ceil(math.Log(v) / logB))
	// Values in (0,1] bin to 0 or below; clamp into the biased range.
	t := bin + binBias
	if t < 1 {
		t = 1
	}
	return t
}

// valueOf inverts binOf.
func valueOf(term int32, b float64) float64 {
	if term == zeroTerm {
		return 0
	}
	return math.Pow(b, float64(term-binBias))
}

// Record adds one call's timing: term is the call's CST terminal (the
// per-signature interval chains key on it), f its function id, and
// tStart/tEnd its wall-clock entry and exit in nanoseconds.
func (c *Compressor) Record(term int32, f mpispec.FuncID, tStart, tEnd int64) {
	b := c.baseFor(f)
	dur := float64(tEnd - tStart)
	c.durG.Append(binOf(dur, b.logB))

	c.perSig = growDense(c.perSig, term)
	recon := c.perSig[term]
	interval := float64(tStart) - recon
	it := binOf(interval, b.logB)
	c.intG.Append(it)
	c.perSig[term] = recon + valueOf(it, b.b)
	c.recorded++
}

// growDense extends a dense per-terminal slice to cover term.
func growDense(s []float64, term int32) []float64 {
	if int(term) < len(s) {
		return s
	}
	return append(s, make([]float64, int(term)+1-len(s))...)
}

// Recorded returns the number of calls recorded.
func (c *Compressor) Recorded() int64 { return c.recorded }

// DurationGrammar returns the serialized duration grammar.
func (c *Compressor) DurationGrammar() sequitur.Serialized {
	return sequitur.Serialized(c.durG.Serialize())
}

// IntervalGrammar returns the serialized interval grammar.
func (c *Compressor) IntervalGrammar() sequitur.Serialized {
	return sequitur.Serialized(c.intG.Serialize())
}

// Reconstructor recovers per-call (tStart, tEnd) from the main call
// sequence plus the two timing grammars.
type Reconstructor struct {
	base    expBase
	perFunc map[mpispec.FuncID]expBase
	perSig  []float64 // dense, like Compressor.perSig (post-merge terminals stay contiguous)
}

// NewReconstructor mirrors the compressor configuration.
func NewReconstructor(base float64) *Reconstructor {
	return &Reconstructor{base: newExpBase(base), perFunc: map[mpispec.FuncID]expBase{}}
}

// SetFuncBase mirrors Compressor.SetFuncBase.
func (r *Reconstructor) SetFuncBase(f mpispec.FuncID, base float64) { r.perFunc[f] = newExpBase(base) }

func (r *Reconstructor) baseFor(f mpispec.FuncID) expBase {
	if b, ok := r.perFunc[f]; ok {
		return b
	}
	return r.base
}

// Next recovers the k-th call's times given its CST terminal, function
// id, and the k-th terminals of the duration and interval grammars.
func (r *Reconstructor) Next(term int32, f mpispec.FuncID, durTerm, intTerm int32) (tStart, tEnd int64) {
	b := r.baseFor(f)
	r.perSig = growDense(r.perSig, term)
	recon := r.perSig[term] + valueOf(intTerm, b.b)
	r.perSig[term] = recon
	dur := valueOf(durTerm, b.b)
	return int64(recon), int64(recon + dur)
}

// CallTime is one call's recovered wall-clock interval, in nanoseconds
// since the rank's first recorded call.
type CallTime struct {
	Start, End int64
}

// Duration returns the recovered call duration.
func (t CallTime) Duration() int64 { return t.End - t.Start }

// Series recovers the full per-call timeline of one rank in a single
// pass: terms and funcs describe the rank's call stream (CST terminal
// and function id per call, in order), durTerms/intTerms are the
// expanded duration and interval grammars. All four slices must have
// equal length. Every recovered start time and duration carries the
// paper's guarantee: relative error at most base−1 against the
// original wall clock, never compounding across calls.
//
// The receiver is single-use for a given rank: it accumulates the
// per-signature reconstructed interval chains, so reuse across ranks
// (or interleaving with Next) corrupts the recovered times.
func (r *Reconstructor) Series(terms []int32, funcs []mpispec.FuncID, durTerms, intTerms []int32) ([]CallTime, error) {
	if len(funcs) != len(terms) || len(durTerms) != len(terms) || len(intTerms) != len(terms) {
		return nil, fmt.Errorf("timing: stream lengths differ (terms=%d funcs=%d dur=%d int=%d)",
			len(terms), len(funcs), len(durTerms), len(intTerms))
	}
	out := make([]CallTime, len(terms))
	for i := range terms {
		s, e := r.Next(terms[i], funcs[i], durTerms[i], intTerms[i])
		out[i] = CallTime{Start: s, End: e}
	}
	return out, nil
}

// Bound returns the reconstructor's relative-error guarantee (base−1):
// every CallTime Series or Next produces has |recovered−true|/true at
// most this, for both start times and durations. Per-function base
// overrides are reported by the function's own bound.
func (r *Reconstructor) Bound(f mpispec.FuncID) float64 { return r.baseFor(f).b - 1 }
