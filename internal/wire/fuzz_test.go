package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot hammers the snapshot decoder with mutated
// inputs. The invariants: never panic, never accept-and-crash later
// (anything returned must expand/relabel safely), and allocation stays
// bounded by the input size (enforced structurally: every count is
// checked against remaining bytes before allocation).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(testSnapshot()))
	f.Add(EncodeSnapshot(minimalSnapshot()))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// A decoded snapshot must be internally safe: the grammar
		// validated, so walking its input length cannot loop, and every
		// CST accessor stays in range.
		_ = s.Grammar.InputLen()
		for i := 0; i < s.Table.Len(); i++ {
			_ = s.Table.Sig(int32(i))
			_ = s.Table.AvgDuration(int32(i))
		}
	})
}

// FuzzRekeyHelloFrame hammers the load-generator re-key path: for any
// input bytes and replacement ID, RekeyHelloFrame must never panic, and
// anything it accepts must round-trip ReadFrame with a valid CRC and
// decode to the same hello modulo the run ID.
func FuzzRekeyHelloFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeHello, (&Hello{Version: Version, RunID: "fuzz", WorldSize: 8, Rank: 3, Epoch: 7, TimingBase: 1.2, SpanID: 9, SendNs: 123}).Encode())
	f.Add(buf.Bytes(), "amplified-000017")
	buf.Reset()
	WriteFrame(&buf, TypeHello, (&Hello{Version: 1, RunID: "r", WorldSize: 1, Rank: 0}).Encode())
	f.Add(buf.Bytes(), "x")
	f.Add([]byte{}, "id")
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, TypeHello, 0x00, 0x00, 0x00, 0x00}, "id")
	f.Fuzz(func(t *testing.T, frame []byte, runID string) {
		out, err := RekeyHelloFrame(nil, frame, runID)
		if err != nil {
			return
		}
		typ, body, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-keyed frame rejected by ReadFrame: %v", err)
		}
		if typ != TypeHello {
			t.Fatalf("re-keyed frame has type 0x%02x", typ)
		}
		got, err := DecodeHello(body)
		if err != nil {
			// The input was a valid *frame* but need not hold a decodable
			// hello beyond the version+ID prefix the splice parses; only
			// inputs that decoded before must decode after.
			if _, _, rerr := ReadFrame(bytes.NewReader(frame)); rerr == nil {
				if _, derr := DecodeHello(frame[5 : len(frame)-4]); derr == nil {
					t.Fatalf("re-key broke a decodable hello: %v", err)
				}
			}
			return
		}
		if got.RunID != runID {
			t.Fatalf("re-keyed hello carries run id %q, want %q", got.RunID, runID)
		}
		orig, derr := DecodeHello(frame[5 : len(frame)-4])
		if derr == nil {
			want := *orig
			want.RunID = runID
			if *got != want {
				t.Fatalf("re-key changed more than the run id: %+v vs %+v", got, &want)
			}
		}
	})
}

// FuzzReadFrame hammers the frame reader: no panic, and anything it
// accepts must re-frame to bytes the reader accepts again.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeHello, (&Hello{Version: Version, RunID: "fuzz", WorldSize: 2, Rank: 0, TimingBase: 1.2}).Encode())
	f.Add(buf.Bytes())
	buf.Reset()
	WriteFrame(&buf, TypeSnapshot, EncodeSnapshot(minimalSnapshot()))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, TypeSnapshot})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, body); err != nil {
			t.Fatalf("re-frame of accepted frame failed: %v", err)
		}
		typ2, body2, err := ReadFrame(&out)
		if err != nil || typ2 != typ || !bytes.Equal(body2, body) {
			t.Fatalf("re-framed frame not stable: %v", err)
		}
	})
}
