package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot hammers the snapshot decoder with mutated
// inputs. The invariants: never panic, never accept-and-crash later
// (anything returned must expand/relabel safely), and allocation stays
// bounded by the input size (enforced structurally: every count is
// checked against remaining bytes before allocation).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(testSnapshot()))
	f.Add(EncodeSnapshot(minimalSnapshot()))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// A decoded snapshot must be internally safe: the grammar
		// validated, so walking its input length cannot loop, and every
		// CST accessor stays in range.
		_ = s.Grammar.InputLen()
		for i := 0; i < s.Table.Len(); i++ {
			_ = s.Table.Sig(int32(i))
			_ = s.Table.AvgDuration(int32(i))
		}
	})
}

// FuzzReadFrame hammers the frame reader: no panic, and anything it
// accepts must re-frame to bytes the reader accepts again.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeHello, (&Hello{Version: Version, RunID: "fuzz", WorldSize: 2, Rank: 0, TimingBase: 1.2}).Encode())
	f.Add(buf.Bytes())
	buf.Reset()
	WriteFrame(&buf, TypeSnapshot, EncodeSnapshot(minimalSnapshot()))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, TypeSnapshot})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, body); err != nil {
			t.Fatalf("re-frame of accepted frame failed: %v", err)
		}
		typ2, body2, err := ReadFrame(&out)
		if err != nil || typ2 != typ || !bytes.Equal(body2, body) {
			t.Fatalf("re-framed frame not stable: %v", err)
		}
	})
}
