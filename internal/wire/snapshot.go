package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// Snapshot body layout (all integers varint unless noted):
//
//	rank, calls, intraNs
//	CST: length-prefixed cst.SerializeExact bytes (exact duration
//	     sums — the on-disk average form would break byte-equivalence
//	     of the collector-side merge)
//	call grammar (count + varints)
//	flags byte: bit0 = timing grammars present, bit1 = raw verify capture
//	[duration grammar, interval grammar]
//	[raw capture: n sigs, n × (len, bytes), n × (tStart, tEnd)]

const (
	flagTiming = 1 << 0
	flagRaw    = 1 << 1
)

// EncodeSnapshot serializes one rank's crash-consistent snapshot.
func EncodeSnapshot(s *core.Snapshot) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(s.Rank))
	b = binary.AppendVarint(b, s.Calls)
	b = binary.AppendVarint(b, s.IntraNs)
	tb := s.Table.SerializeExact()
	b = binary.AppendUvarint(b, uint64(len(tb)))
	b = append(b, tb...)
	b = appendGrammar(b, s.Grammar)
	var flags byte
	if s.DurGrammar != nil || s.IntGrammar != nil {
		flags |= flagTiming
	}
	if s.RawSigs != nil {
		flags |= flagRaw
	}
	b = append(b, flags)
	if flags&flagTiming != 0 {
		b = appendGrammar(b, s.DurGrammar)
		b = appendGrammar(b, s.IntGrammar)
	}
	if flags&flagRaw != 0 {
		b = binary.AppendUvarint(b, uint64(len(s.RawSigs)))
		for _, sig := range s.RawSigs {
			b = binary.AppendUvarint(b, uint64(len(sig)))
			b = append(b, sig...)
		}
		for _, t := range s.RawTimes {
			b = binary.AppendVarint(b, t[0])
			b = binary.AppendVarint(b, t[1])
		}
	}
	return b
}

func appendGrammar(b []byte, g sequitur.Serialized) []byte {
	b = binary.AppendUvarint(b, uint64(len(g)))
	for _, v := range g {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// grammar decodes a count-prefixed grammar, validating structure so a
// hostile snapshot cannot smuggle a cyclic or truncated grammar into
// the merge. Empty (count 0) is allowed only when optional is set —
// the call grammar of a rank that traced nothing is still the
// one-empty-rule grammar, never length zero.
func (d *dec) grammar(what string, optional bool) (sequitur.Serialized, error) {
	n, err := d.uvarint(what + " count")
	if err != nil {
		return nil, err
	}
	// Every serialized int costs at least one body byte.
	if n > uint64(d.remaining()) {
		return nil, fmt.Errorf("wire: %s claims %d ints in %d bytes", what, n, d.remaining())
	}
	if n == 0 {
		if optional {
			return nil, nil
		}
		return nil, fmt.Errorf("wire: empty %s", what)
	}
	g := make(sequitur.Serialized, n)
	for i := range g {
		v, err := d.varint(what)
		if err != nil {
			return nil, err
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return nil, fmt.Errorf("wire: %s int %d overflows int32", what, v)
		}
		g[i] = int32(v)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("wire: %s: %w", what, err)
	}
	return g, nil
}

// DecodeScratch owns the ingest path's reusable decode state: the
// frame-body buffer (fed to ReadFrameBuf) and the decoder cursor. One
// scratch per connection makes the per-frame cost of the collector's
// hot loop allocate only what the decoded snapshot itself retains —
// the same treatment sig.Encoder.EncodeTo gave the tracer's encode
// path. Not safe for concurrent use.
type DecodeScratch struct {
	frame []byte
	h     frameHdr
	d     dec
}

// ReadFrame reads one frame into the scratch's body buffer. The
// returned body is valid until the next ReadFrame on this scratch.
func (sc *DecodeScratch) ReadFrame(r io.Reader) (typ byte, body []byte, err error) {
	typ, body, err = readFrameInto(r, sc.frame, &sc.h)
	if cap(body) > cap(sc.frame) {
		sc.frame = body[:cap(body)]
	}
	return typ, body, err
}

// DecodeSnapshot parses a snapshot body using the scratch's decoder
// state. The returned snapshot owns all of its memory (nothing aliases
// the scratch or body), so it may be retained past the next call.
func (sc *DecodeScratch) DecodeSnapshot(body []byte) (*core.Snapshot, error) {
	sc.d = dec{b: body}
	return decodeSnapshot(&sc.d)
}

// DecodeSnapshot parses and validates a snapshot body. Allocation is
// bounded by the (already capped) body size: every claimed count is
// checked against the bytes actually present before anything sized by
// it is allocated.
func DecodeSnapshot(body []byte) (*core.Snapshot, error) {
	d := &dec{b: body}
	return decodeSnapshot(d)
}

func decodeSnapshot(d *dec) (*core.Snapshot, error) {
	s := &core.Snapshot{}
	rank, err := d.uvarint("snapshot rank")
	if err != nil {
		return nil, err
	}
	if rank >= MaxWorldSize {
		return nil, fmt.Errorf("wire: snapshot rank %d exceeds cap", rank)
	}
	s.Rank = int(rank)
	if s.Calls, err = d.varint("snapshot call count"); err != nil {
		return nil, err
	}
	if s.Calls < 0 {
		return nil, fmt.Errorf("wire: negative snapshot call count %d", s.Calls)
	}
	if s.IntraNs, err = d.varint("snapshot intra ns"); err != nil {
		return nil, err
	}
	tb, err := d.bytes("snapshot cst")
	if err != nil {
		return nil, err
	}
	if s.Table, err = cst.DeserializeExact(tb); err != nil {
		return nil, err
	}
	if s.Grammar, err = d.grammar("snapshot grammar", false); err != nil {
		return nil, err
	}
	flags, err := d.byteVal("snapshot flags")
	if err != nil {
		return nil, err
	}
	if flags&^(flagTiming|flagRaw) != 0 {
		return nil, fmt.Errorf("wire: unknown snapshot flags 0x%02x", flags)
	}
	if flags&flagTiming != 0 {
		if s.DurGrammar, err = d.grammar("snapshot duration grammar", true); err != nil {
			return nil, err
		}
		if s.IntGrammar, err = d.grammar("snapshot interval grammar", true); err != nil {
			return nil, err
		}
	}
	if flags&flagRaw != 0 {
		n, err := d.uvarint("snapshot raw capture count")
		if err != nil {
			return nil, err
		}
		// Each entry costs at least 3 body bytes: a one-byte signature
		// length prefix plus one varint byte per time value. A looser
		// bound would let a small hostile frame claim a huge count and
		// force ~32 bytes of slice headers per claimed entry below.
		if n > uint64(d.remaining())/3 {
			return nil, fmt.Errorf("wire: raw capture claims %d entries in %d bytes", n, d.remaining())
		}
		// Grow with append under a capped initial size: allocation then
		// tracks bytes actually decoded, never the claimed count alone.
		capHint := n
		if capHint > 4096 {
			capHint = 4096
		}
		s.RawSigs = make([]string, 0, capHint)
		for i := uint64(0); i < n; i++ {
			sig, err := d.bytes("raw signature")
			if err != nil {
				return nil, err
			}
			s.RawSigs = append(s.RawSigs, string(sig))
		}
		s.RawTimes = make([][2]int64, 0, capHint)
		for i := uint64(0); i < n; i++ {
			var t [2]int64
			if t[0], err = d.varint("raw start time"); err != nil {
				return nil, err
			}
			if t[1], err = d.varint("raw end time"); err != nil {
				return nil, err
			}
			s.RawTimes = append(s.RawTimes, t)
		}
	}
	return s, d.finish()
}
