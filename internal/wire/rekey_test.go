package wire_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/wire"
)

func helloFrame(t *testing.T, h *wire.Hello) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.TypeHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRekeyHelloFrame(t *testing.T) {
	orig := &wire.Hello{
		Version: wire.Version, RunID: "source-run", WorldSize: 64, Rank: 17,
		Epoch: 0xdeadbeef, TimingMode: 1, TimingBase: 1.07,
		SpanID: 42, SendNs: 1_700_000_000_123_456_789,
		Echo: wire.ClockEcho{T1: 1, T2: 2, T3: 3, T4: 4},
	}
	frame := helloFrame(t, orig)
	for _, newID := range []string{
		"x",                              // shorter than the original
		"source-run",                     // same length
		strings.Repeat("amplified-", 20), // much longer (multi-byte uvarint length)
	} {
		out, err := wire.RekeyHelloFrame(nil, frame, newID)
		if err != nil {
			t.Fatalf("rekey to %q: %v", newID, err)
		}
		typ, body, err := wire.ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("rekeyed frame to %q does not read back: %v", newID, err)
		}
		if typ != wire.TypeHello {
			t.Fatalf("rekeyed frame type 0x%02x", typ)
		}
		got, err := wire.DecodeHello(body)
		if err != nil {
			t.Fatalf("rekeyed hello to %q does not decode: %v", newID, err)
		}
		want := *orig
		want.RunID = newID
		if *got != want {
			t.Fatalf("rekeyed hello = %+v, want %+v", got, want)
		}
	}
}

func TestRekeyHelloFrameAppendsToDst(t *testing.T) {
	frame := helloFrame(t, &wire.Hello{Version: 1, RunID: "r", WorldSize: 2, Rank: 0})
	prefix := []byte("keepme")
	out, err := wire.RekeyHelloFrame(append([]byte(nil), prefix...), frame, "other")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("rekey did not append to dst")
	}
	if _, _, err := wire.ReadFrame(bytes.NewReader(out[len(prefix):])); err != nil {
		t.Fatalf("appended frame does not read back: %v", err)
	}
}

func TestRekeyHelloFrameRejects(t *testing.T) {
	frame := helloFrame(t, &wire.Hello{Version: 1, RunID: "ok", WorldSize: 2, Rank: 0})
	var snap bytes.Buffer
	wire.WriteFrame(&snap, wire.TypeSnapshot, []byte("body"))

	cases := []struct {
		name  string
		frame []byte
		runID string
	}{
		{"empty id", frame, ""},
		{"oversized id", frame, strings.Repeat("a", wire.MaxRunID+1)},
		{"short frame", frame[:4], "x"},
		{"not a hello", snap.Bytes(), "x"},
		{"truncated frame", frame[:len(frame)-2], "x"},
		{"corrupt crc", append(append([]byte(nil), frame[:len(frame)-1]...), frame[len(frame)-1]^0xff), "x"},
	}
	for _, tc := range cases {
		if _, err := wire.RekeyHelloFrame(nil, tc.frame, tc.runID); err == nil {
			t.Errorf("%s: rekey accepted", tc.name)
		}
	}
}

func TestReadFrameRaw(t *testing.T) {
	var buf bytes.Buffer
	h := &wire.Hello{Version: 1, RunID: "raw", WorldSize: 4, Rank: 2}
	if err := wire.WriteFrame(&buf, wire.TypeHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	wireBytes := append([]byte(nil), buf.Bytes()...)
	typ, raw, body, err := wire.ReadFrameRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeHello {
		t.Fatalf("type 0x%02x", typ)
	}
	if !bytes.Equal(raw, wireBytes) {
		t.Fatal("raw frame bytes differ from what was written")
	}
	if got, err := wire.DecodeHello(body); err != nil || got.RunID != "raw" {
		t.Fatalf("body decode: %v %+v", err, got)
	}
	// Corrupt one byte anywhere: the read must fail the checksum.
	bad := append([]byte(nil), wireBytes...)
	bad[7] ^= 0x01
	if _, _, _, err := wire.ReadFrameRaw(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt frame read back without error")
	}
}
