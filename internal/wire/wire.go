// Package wire is the network serialization of Pilgrim's trace
// collection protocol: a versioned, length-prefixed, CRC32C-framed
// binary encoding of crash-consistent tracer snapshots
// (core.Snapshot) plus the small control messages the collector
// protocol needs (hello, ack, wait, trace, error).
//
// Framing: every message on the stream is one frame
//
//	[4B little-endian body length][1B frame type][body][4B CRC32C]
//
// where the checksum (Castagnoli polynomial) covers the type byte and
// the body. The reader rejects unknown types, oversized lengths, and
// checksum mismatches, and reads bodies in bounded chunks so a
// corrupt length field fails at EOF instead of exhausting memory —
// the same discipline as the trace-file reader.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol version carried in every Hello; a collector
// rejects versions it does not speak. Version 2 appends the span
// context and clock-sample fields to Hello and Ack; a collector
// accepts any version down to MinVersion, replying in kind (a
// version-1 hello gets a version-1-shaped ack), so old producers keep
// working byte-identically against a new collector.
const Version = 2

// MinVersion is the oldest protocol version the collector accepts.
const MinVersion = 1

// Frame types.
const (
	TypeHello    = 0x01 // client → collector: announce (run, rank, epoch)
	TypeSnapshot = 0x02 // client → collector: one rank's snapshot
	TypeAck      = 0x03 // collector → client: per-snapshot outcome
	TypeWait     = 0x04 // client → collector: block until run finalizes
	TypeTrace    = 0x05 // collector → client: the finalized trace file bytes
	TypeError    = 0x06 // collector → client: terminal protocol error
	TypeNack     = 0x07 // collector → client: admission refusal (over a configured limit)
)

// MaxFrame bounds one frame's body. Snapshots of realistic runs are
// far smaller (the whole point of the tracer is that state stays
// compressed); anything larger is corruption or abuse.
const MaxFrame = 1 << 28 // 256 MiB

// MaxRunID bounds the run identifier string.
const MaxRunID = 256

// MaxWorldSize mirrors the trace reader's rank-count sanity cap.
const MaxWorldSize = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame body of %d bytes exceeds cap", len(body))
	}
	hdr := [5]byte{}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	crc := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// ReadFrame reads and verifies one frame. It never allocates more
// than a bounded chunk beyond what the stream actually delivers.
func ReadFrame(r io.Reader) (typ byte, body []byte, err error) {
	return ReadFrameBuf(r, nil)
}

// ReadFrameBuf is ReadFrame with a caller-owned scratch buffer: when
// buf has capacity for the frame body, the returned body aliases it
// and the read allocates nothing. A connection loop that passes the
// previous call's body back in amortizes the per-frame allocation to
// zero once the buffer has grown to the stream's frame sizes — the
// same scratch discipline as sig.Encoder.EncodeTo. The body is only
// valid until the next ReadFrameBuf call that reuses the buffer.
func ReadFrameBuf(r io.Reader, buf []byte) (typ byte, body []byte, err error) {
	var h frameHdr
	return readFrameInto(r, buf, &h)
}

// frameHdr is the fixed-size per-frame scratch: length/type header,
// CRC tail, and the one-byte checksum seed. These escape into
// io.ReadFull, so a caller that keeps one across frames (DecodeScratch
// does) makes the read itself allocation-free; a local works too, it
// just costs the escapes.
type frameHdr struct {
	hdr  [5]byte
	tail [4]byte
	seed [1]byte
}

func readFrameInto(r io.Reader, buf []byte, h *frameHdr) (typ byte, body []byte, err error) {
	if _, err := io.ReadFull(r, h.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(h.hdr[:4])
	typ = h.hdr[4]
	if typ < TypeHello || typ > TypeNack {
		return 0, nil, fmt.Errorf("wire: unknown frame type 0x%02x", typ)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame body of %d bytes exceeds cap", n)
	}
	// Chunked read: a lying length field under the cap but past the
	// stream's real end fails at EOF having allocated at most one
	// chunk too much. Scratch capacity is consumed before any growth,
	// so a warm buffer makes the whole read allocation-free.
	const chunk = 1 << 20
	body = buf[:0]
	for remaining := int(n); remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(body)
		if cap(body)-start >= step {
			body = body[:start+step]
		} else {
			body = append(body, make([]byte, step)...)
		}
		if _, err := io.ReadFull(r, body[start:]); err != nil {
			return 0, nil, err
		}
		remaining -= step
	}
	if _, err := io.ReadFull(r, h.tail[:]); err != nil {
		return 0, nil, err
	}
	want := binary.LittleEndian.Uint32(h.tail[:])
	h.seed[0] = typ
	got := crc32.Update(crc32.Checksum(h.seed[:], crcTable), crcTable, body)
	if got != want {
		return 0, nil, fmt.Errorf("wire: frame type 0x%02x checksum mismatch", typ)
	}
	return typ, body, nil
}

// --- bounded decoder ---------------------------------------------------------

// dec is a position-tracked reader over one frame body with the
// error-instead-of-panic discipline every untrusted-input path needs.
type dec struct {
	b   []byte
	pos int
}

func (d *dec) remaining() int { return len(d.b) - d.pos }

func (d *dec) uvarint(what string) (uint64, error) {
	v, k := binary.Uvarint(d.b[d.pos:])
	if k <= 0 {
		return 0, fmt.Errorf("wire: truncated %s", what)
	}
	d.pos += k
	return v, nil
}

func (d *dec) varint(what string) (int64, error) {
	v, k := binary.Varint(d.b[d.pos:])
	if k <= 0 {
		return 0, fmt.Errorf("wire: truncated %s", what)
	}
	d.pos += k
	return v, nil
}

// bytes reads a uvarint-length-prefixed byte string, bounded by what
// the body actually holds (so a corrupt length can never allocate
// past the frame).
func (d *dec) bytes(what string) ([]byte, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return nil, err
	}
	if n > uint64(d.remaining()) {
		return nil, fmt.Errorf("wire: %s of %d bytes exceeds %d remaining", what, n, d.remaining())
	}
	out := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

func (d *dec) byteVal(what string) (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("wire: truncated %s", what)
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *dec) finish() error {
	if d.pos != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.b)-d.pos)
	}
	return nil
}

// --- Hello -------------------------------------------------------------------

// ClockEcho is one completed NTP-style exchange reported back to the
// collector: T1 client hello send, T2 collector hello receipt, T3
// collector ack send (both from the ack's timestamps), T4 client ack
// receipt. All unix nanoseconds on the respective clocks; the zero
// value means "no sample".
type ClockEcho struct {
	T1, T2, T3, T4 int64
}

// Valid reports whether the echo carries a plausible sample: both
// clocks move forward within their own frame, and the round trip is
// not shorter than the server's hold time.
func (e ClockEcho) Valid() bool {
	return e.T1 > 0 && e.T2 > 0 && e.T4 >= e.T1 && e.T3 >= e.T2 &&
		(e.T4-e.T1) >= (e.T3-e.T2)
}

// Hello announces one rank's snapshot upload: which run it belongs
// to, the run's world size and tracing options (so the collector can
// finalize without out-of-band configuration), and the send epoch
// that keys idempotent re-sends.
//
// Version 2 adds the live-observability trailer: the client's span ID
// (so the collector can link its ingest spans to the producer's send
// span), the hello's send timestamp (T1 of the clock exchange), and
// the echo of the previously completed exchange, which feeds the
// collector's clock-offset estimator. Version-1 peers simply omit the
// trailer; all trailer fields decode as zero.
type Hello struct {
	Version    uint32
	RunID      string
	WorldSize  int
	Rank       int
	Epoch      uint64
	TimingMode uint8
	TimingBase float64

	SpanID uint64    // producer's send-span ID; 0 when absent
	SendNs int64     // client clock at hello send (T1); 0 when absent
	Echo   ClockEcho // previously completed exchange; zero when absent
}

// Encode serializes the hello body.
func (h *Hello) Encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(h.Version))
	b = binary.AppendUvarint(b, uint64(len(h.RunID)))
	b = append(b, h.RunID...)
	b = binary.AppendUvarint(b, uint64(h.WorldSize))
	b = binary.AppendUvarint(b, uint64(h.Rank))
	b = binary.AppendUvarint(b, h.Epoch)
	b = append(b, h.TimingMode)
	b = binary.AppendUvarint(b, math.Float64bits(h.TimingBase))
	if h.Version >= 2 {
		b = binary.AppendUvarint(b, h.SpanID)
		b = binary.AppendVarint(b, h.SendNs)
		b = binary.AppendVarint(b, h.Echo.T1)
		b = binary.AppendVarint(b, h.Echo.T2)
		b = binary.AppendVarint(b, h.Echo.T3)
		b = binary.AppendVarint(b, h.Echo.T4)
	}
	return b
}

// DecodeHello parses and validates a hello body.
func DecodeHello(body []byte) (*Hello, error) {
	d := &dec{b: body}
	h := &Hello{}
	v, err := d.uvarint("hello version")
	if err != nil {
		return nil, err
	}
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("wire: unsupported protocol version %d (speak %d..%d)", v, MinVersion, Version)
	}
	h.Version = uint32(v)
	id, err := d.bytes("hello run id")
	if err != nil {
		return nil, err
	}
	if len(id) == 0 || len(id) > MaxRunID {
		return nil, fmt.Errorf("wire: run id length %d outside [1,%d]", len(id), MaxRunID)
	}
	h.RunID = string(id)
	world, err := d.uvarint("hello world size")
	if err != nil {
		return nil, err
	}
	if world < 1 || world > MaxWorldSize {
		return nil, fmt.Errorf("wire: world size %d outside [1,%d]", world, MaxWorldSize)
	}
	h.WorldSize = int(world)
	rank, err := d.uvarint("hello rank")
	if err != nil {
		return nil, err
	}
	if rank >= world {
		return nil, fmt.Errorf("wire: rank %d outside world of %d", rank, world)
	}
	h.Rank = int(rank)
	if h.Epoch, err = d.uvarint("hello epoch"); err != nil {
		return nil, err
	}
	if h.TimingMode, err = d.byteVal("hello timing mode"); err != nil {
		return nil, err
	}
	bits, err := d.uvarint("hello timing base")
	if err != nil {
		return nil, err
	}
	h.TimingBase = math.Float64frombits(bits)
	if math.IsNaN(h.TimingBase) || math.IsInf(h.TimingBase, 0) || h.TimingBase < 0 {
		return nil, fmt.Errorf("wire: implausible timing base %v", h.TimingBase)
	}
	// The observability trailer is optional even at version 2: a v2
	// hello without it decodes with zero span context.
	if h.Version >= 2 && d.remaining() > 0 {
		if h.SpanID, err = d.uvarint("hello span id"); err != nil {
			return nil, err
		}
		if h.SendNs, err = d.varint("hello send ts"); err != nil {
			return nil, err
		}
		for _, p := range []*int64{&h.Echo.T1, &h.Echo.T2, &h.Echo.T3, &h.Echo.T4} {
			if *p, err = d.varint("hello clock echo"); err != nil {
				return nil, err
			}
		}
	}
	return h, d.finish()
}

// --- Ack ---------------------------------------------------------------------

// Ack statuses.
const (
	AckOK        = 0 // snapshot ingested
	AckDuplicate = 1 // (run, rank, epoch) already ingested — safe re-send
	AckError     = 2 // rejected; Detail explains
)

// Ack is the collector's per-snapshot response. The timestamps
// (collector clock, unix ns) are the NTP-style T2/T3 of the exchange:
// RecvNs is when the hello arrived, SendNs when the ack was written.
// The collector only appends them when the hello spoke version >= 2,
// so a version-1 client's DecodeAck (which rejects trailing bytes)
// keeps working unchanged.
type Ack struct {
	Status uint8
	Detail string
	RecvNs int64 // collector clock at hello receipt (T2); 0 when absent
	SendNs int64 // collector clock at ack send (T3); 0 when absent
}

// Encode serializes the ack body.
func (a *Ack) Encode() []byte {
	b := []byte{a.Status}
	b = binary.AppendUvarint(b, uint64(len(a.Detail)))
	b = append(b, a.Detail...)
	if a.RecvNs != 0 || a.SendNs != 0 {
		b = binary.AppendVarint(b, a.RecvNs)
		b = binary.AppendVarint(b, a.SendNs)
	}
	return b
}

// DecodeAck parses an ack body.
func DecodeAck(body []byte) (*Ack, error) {
	d := &dec{b: body}
	st, err := d.byteVal("ack status")
	if err != nil {
		return nil, err
	}
	if st > AckError {
		return nil, fmt.Errorf("wire: unknown ack status %d", st)
	}
	detail, err := d.bytes("ack detail")
	if err != nil {
		return nil, err
	}
	a := &Ack{Status: st, Detail: string(detail)}
	if d.remaining() > 0 {
		if a.RecvNs, err = d.varint("ack recv ts"); err != nil {
			return nil, err
		}
		if a.SendNs, err = d.varint("ack send ts"); err != nil {
			return nil, err
		}
	}
	return a, d.finish()
}

// --- Wait --------------------------------------------------------------------

// Wait asks the collector to respond with the run's finalized trace
// (a Trace frame) once every rank has reported or the straggler
// deadline salvaged the run.
type Wait struct {
	RunID string
}

// Encode serializes the wait body.
func (w *Wait) Encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(w.RunID)))
	return append(b, w.RunID...)
}

// DecodeWait parses a wait body.
func DecodeWait(body []byte) (*Wait, error) {
	d := &dec{b: body}
	id, err := d.bytes("wait run id")
	if err != nil {
		return nil, err
	}
	if len(id) == 0 || len(id) > MaxRunID {
		return nil, fmt.Errorf("wire: run id length %d outside [1,%d]", len(id), MaxRunID)
	}
	return &Wait{RunID: string(id)}, d.finish()
}

// --- Nack --------------------------------------------------------------------

// Nack codes: which admission limit the collector refused on.
const (
	NackMaxRuns  = 0 // concurrent-run cap reached, new run refused
	NackRunBytes = 1 // per-run ingest byte budget exhausted
	NackMaxConns = 2 // connection cap reached, connection refused
)

// Nack is the collector's typed admission refusal: the daemon is
// healthy but a configured limit is in force. Unlike a transport
// failure it must NOT be retried — the producer's correct degradation
// is local finalize — so the client surfaces it as a permanent,
// typed error instead of feeding it to the backoff loop.
type Nack struct {
	Code   uint8
	Detail string
}

// Encode serializes the nack body.
func (n *Nack) Encode() []byte {
	b := []byte{n.Code}
	b = binary.AppendUvarint(b, uint64(len(n.Detail)))
	return append(b, n.Detail...)
}

// DecodeNack parses a nack body.
func DecodeNack(body []byte) (*Nack, error) {
	d := &dec{b: body}
	code, err := d.byteVal("nack code")
	if err != nil {
		return nil, err
	}
	if code > NackMaxConns {
		return nil, fmt.Errorf("wire: unknown nack code %d", code)
	}
	detail, err := d.bytes("nack detail")
	if err != nil {
		return nil, err
	}
	return &Nack{Code: code, Detail: string(detail)}, d.finish()
}

// NackCodeString names a nack code for logs and errors.
func NackCodeString(code uint8) string {
	switch code {
	case NackMaxRuns:
		return "max-runs"
	case NackRunBytes:
		return "max-run-bytes"
	case NackMaxConns:
		return "max-conns"
	default:
		return fmt.Sprintf("code-%d", code)
	}
}
