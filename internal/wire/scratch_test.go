package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestNackRoundTrip(t *testing.T) {
	for code := uint8(0); code <= NackMaxConns; code++ {
		in := &Nack{Code: code, Detail: "limit reached"}
		out, err := DecodeNack(in.Encode())
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
		if NackCodeString(code) == "" || NackCodeString(code) == "unknown" {
			t.Fatalf("code %d has no name", code)
		}
	}
	if _, err := DecodeNack((&Nack{Code: NackMaxConns + 1}).Encode()); err == nil {
		t.Fatal("unknown nack code accepted")
	}
	if _, err := DecodeNack(nil); err == nil {
		t.Fatal("empty nack body accepted")
	}
}

// TestNackFrameRoundTrip: a Nack travels the frame layer like any
// other message type.
func TestNackFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Nack{Code: NackRunBytes, Detail: "run r at max-run-bytes=1024"}
	if err := WriteFrame(&buf, TypeNack, in.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil || typ != TypeNack {
		t.Fatalf("type 0x%02x err %v", typ, err)
	}
	out, err := DecodeNack(body)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v / %v", out, err)
	}
}

// TestReadFrameBufReuse: a caller-owned buffer with enough capacity is
// reused across frames instead of reallocated.
func TestReadFrameBufReuse(t *testing.T) {
	frame := func(body []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, TypeSnapshot, body); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	big := bytes.Repeat([]byte{7}, 4096)
	small := []byte{1, 2, 3}

	buf := make([]byte, 0, 8192)
	_, body, err := ReadFrameBuf(bytes.NewReader(frame(big)), buf)
	if err != nil || !bytes.Equal(body, big) {
		t.Fatalf("big frame: %v", err)
	}
	if &body[0] != &buf[:1][0] {
		t.Fatal("body not read into the caller's buffer")
	}
	_, body2, err := ReadFrameBuf(bytes.NewReader(frame(small)), buf)
	if err != nil || !bytes.Equal(body2, small) {
		t.Fatalf("small frame: %v", err)
	}
	if &body2[0] != &buf[:1][0] {
		t.Fatal("small frame reallocated despite sufficient capacity")
	}
}

// TestDecodeScratchMatchesDecodeSnapshot: the scratch path and the
// plain path decode identical snapshots, and the scratch result owns
// its memory (mutating the source body later changes nothing).
func TestDecodeScratchMatchesDecodeSnapshot(t *testing.T) {
	body := EncodeSnapshot(testSnapshot())
	want, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	var sc DecodeScratch
	mine := append([]byte(nil), body...)
	got, err := sc.DecodeSnapshot(mine)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mine {
		mine[i] = 0xAA // scribble: got must not alias the body
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scratch decode differs from plain decode")
	}
}

// TestScratchReadFrameAllocFree pins the ingest hot loop's per-frame
// cost: once the scratch buffer has grown to the frame size,
// ReadFrame allocates nothing.
func TestScratchReadFrameAllocFree(t *testing.T) {
	body := EncodeSnapshot(testSnapshot())
	var framed bytes.Buffer
	if err := WriteFrame(&framed, TypeSnapshot, body); err != nil {
		t.Fatal(err)
	}
	raw := framed.Bytes()

	var sc DecodeScratch
	rd := bytes.NewReader(raw)
	if _, _, err := sc.ReadFrame(rd); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(raw)
		if _, _, err := sc.ReadFrame(rd); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm scratch ReadFrame allocates %v objects/frame, want 0", allocs)
	}
}

// TestDecodeScratchAllocsNoWorse: the scratch decode path never
// allocates more than the plain path (the savings beyond the frame
// buffer are the reused decoder cursor).
func TestDecodeScratchAllocsNoWorse(t *testing.T) {
	body := EncodeSnapshot(testSnapshot())
	plain := testing.AllocsPerRun(100, func() {
		if _, err := DecodeSnapshot(body); err != nil {
			t.Fatal(err)
		}
	})
	var sc DecodeScratch
	scratch := testing.AllocsPerRun(100, func() {
		if _, err := sc.DecodeSnapshot(body); err != nil {
			t.Fatal(err)
		}
	})
	if scratch > plain {
		t.Fatalf("scratch decode allocates %v objects, plain %v", scratch, plain)
	}
}
