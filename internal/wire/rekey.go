package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Raw-frame helpers for replay tooling: a reader that preserves the
// verified frame bytes (so a captured journal can be re-sent verbatim,
// framing included), and the re-key patch that rewrites the run-ID
// field of a Hello frame — fixing the length header and recomputing
// the CRC32C trailer — without decoding anything past the ID. This is
// what lets the load generator amplify one captured stream onto
// thousands of synthetic run IDs at a cost of one small splice per
// hello, leaving the (much larger) snapshot frames untouched and
// shared across every amplified copy.

// frameOverhead is the fixed per-frame framing cost: the 4-byte length
// + 1-byte type header, plus the 4-byte CRC32C trailer.
const frameOverhead = 9

// ReadFrameRaw reads and verifies one frame like ReadFrame, but also
// returns the complete raw frame bytes (header + body + CRC). The body
// slice aliases raw; both are freshly allocated per call, so callers
// may retain them — this is the capture/replay path, not the zero-alloc
// ingest loop (ReadFrameBuf).
func ReadFrameRaw(r io.Reader) (typ byte, raw, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	typ = hdr[4]
	if typ < TypeHello || typ > TypeNack {
		return 0, nil, nil, fmt.Errorf("wire: unknown frame type 0x%02x", typ)
	}
	if n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("wire: frame body of %d bytes exceeds cap", n)
	}
	// Chunked growth, same discipline as ReadFrameBuf: a lying length
	// field under the cap fails at EOF having over-allocated at most one
	// chunk.
	const chunk = 1 << 20
	raw = make([]byte, 5, 5+min(int(n), chunk)+4)
	copy(raw, hdr[:])
	for remaining := int(n); remaining > 0; {
		step := min(remaining, chunk)
		start := len(raw)
		raw = append(raw, make([]byte, step)...)
		if _, err := io.ReadFull(r, raw[start:]); err != nil {
			return 0, nil, nil, err
		}
		remaining -= step
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, nil, err
	}
	raw = append(raw, tail[:]...)
	body = raw[5 : 5+int(n)]
	want := binary.LittleEndian.Uint32(tail[:])
	got := crc32.Update(crc32.Checksum(raw[4:5], crcTable), crcTable, body)
	if got != want {
		return 0, nil, nil, fmt.Errorf("wire: frame type 0x%02x checksum mismatch", typ)
	}
	return typ, raw, body, nil
}

// RekeyHelloFrame rewrites the run-ID field of a complete, valid Hello
// frame to runID, appending the re-keyed frame to dst and returning the
// extended slice. Only the framing prefix (length header), the version
// and run-ID fields, and the CRC32C trailer are touched; the remainder
// of the hello body — world size, rank, epoch, timing, span trailer —
// is copied verbatim without being decoded. The input frame's checksum
// is verified first, so a corrupt capture cannot be silently laundered
// into a frame with a fresh, valid CRC.
func RekeyHelloFrame(dst, frame []byte, runID string) ([]byte, error) {
	if len(runID) == 0 || len(runID) > MaxRunID {
		return nil, fmt.Errorf("wire: rekey run id length %d outside [1,%d]", len(runID), MaxRunID)
	}
	if len(frame) < frameOverhead {
		return nil, fmt.Errorf("wire: rekey: %d bytes is shorter than any frame", len(frame))
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	if frame[4] != TypeHello {
		return nil, fmt.Errorf("wire: rekey: frame type 0x%02x is not a hello", frame[4])
	}
	if uint64(len(frame)) != uint64(n)+frameOverhead {
		return nil, fmt.Errorf("wire: rekey: frame claims %d body bytes but holds %d", n, len(frame)-frameOverhead)
	}
	body := frame[5 : 5+int(n)]
	want := binary.LittleEndian.Uint32(frame[5+int(n):])
	if got := crc32.Update(crc32.Checksum(frame[4:5], crcTable), crcTable, body); got != want {
		return nil, fmt.Errorf("wire: rekey: input hello checksum mismatch")
	}
	// The hello body opens with: version uvarint, run-ID length uvarint,
	// run-ID bytes. Everything after the old ID passes through untouched.
	_, vn := binary.Uvarint(body)
	if vn <= 0 {
		return nil, fmt.Errorf("wire: rekey: truncated hello version")
	}
	oldLen, ln := binary.Uvarint(body[vn:])
	if ln <= 0 || oldLen > uint64(len(body)-vn-ln) {
		return nil, fmt.Errorf("wire: rekey: truncated hello run id")
	}
	rest := body[vn+ln+int(oldLen):]

	newLen := vn + len(binary.AppendUvarint(nil, uint64(len(runID)))) + len(runID) + len(rest)
	if newLen > MaxFrame {
		return nil, fmt.Errorf("wire: rekey: patched body of %d bytes exceeds cap", newLen)
	}
	start := len(dst)
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(newLen))
	hdr[4] = TypeHello
	dst = append(dst, hdr[:]...)
	dst = append(dst, body[:vn]...)
	dst = binary.AppendUvarint(dst, uint64(len(runID)))
	dst = append(dst, runID...)
	dst = append(dst, rest...)
	crc := crc32.Update(crc32.Checksum(dst[start+4:start+5], crcTable), crcTable, dst[start+5:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...), nil
}
