package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
)

// testSnapshot builds a representative snapshot: a CST with repeat
// hits (non-trivial duration sums), a grammar with structure, timing
// grammars, and a raw verify capture.
func testSnapshot() *core.Snapshot {
	table := cst.New()
	terms := []int32{
		table.Add([]byte("sig-send"), 3),
		table.Add([]byte("sig-recv"), 4),
		table.Add([]byte("sig-allreduce"), 11),
	}
	table.Add([]byte("sig-send"), 4) // sum 7 over 2 calls: avg form rounds
	g := sequitur.New()
	for i := 0; i < 6; i++ {
		g.Append(terms[i%3])
	}
	dg := sequitur.New()
	ig := sequitur.New()
	for i := 0; i < 4; i++ {
		dg.Append(int32(i % 2))
		ig.Append(int32(i % 3))
	}
	return &core.Snapshot{
		Rank:       5,
		Calls:      6,
		IntraNs:    12345,
		Table:      table,
		Grammar:    sequitur.Serialized(g.Serialize()),
		DurGrammar: sequitur.Serialized(dg.Serialize()),
		IntGrammar: sequitur.Serialized(ig.Serialize()),
		RawSigs:    []string{"sig-send", "sig-recv"},
		RawTimes:   [][2]int64{{10, 13}, {20, 24}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != want.Rank || got.Calls != want.Calls || got.IntraNs != want.IntraNs {
		t.Fatalf("header fields differ: %+v", got)
	}
	if !bytes.Equal(got.Table.SerializeExact(), want.Table.SerializeExact()) {
		t.Fatal("CST not exactly preserved")
	}
	if !reflect.DeepEqual(got.Grammar, want.Grammar) ||
		!reflect.DeepEqual(got.DurGrammar, want.DurGrammar) ||
		!reflect.DeepEqual(got.IntGrammar, want.IntGrammar) {
		t.Fatal("grammars differ")
	}
	if !reflect.DeepEqual(got.RawSigs, want.RawSigs) || !reflect.DeepEqual(got.RawTimes, want.RawTimes) {
		t.Fatal("raw capture differs")
	}
}

// minimalSnapshot is an empty rank's snapshot: empty table, the
// one-empty-rule grammar, no optional sections.
func minimalSnapshot() *core.Snapshot {
	return &core.Snapshot{
		Rank:    0,
		Table:   cst.New(),
		Grammar: sequitur.Serialized(sequitur.New().Serialize()),
	}
}

func TestSnapshotRoundTripMinimal(t *testing.T) {
	got, err := DecodeSnapshot(EncodeSnapshot(minimalSnapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if got.DurGrammar != nil || got.RawSigs != nil {
		t.Fatal("optional sections materialized from nothing")
	}
}

func TestSnapshotDecodeTruncation(t *testing.T) {
	full := EncodeSnapshot(testSnapshot())
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestSnapshotDecodeBitFlipsNeverPanic(t *testing.T) {
	full := EncodeSnapshot(testSnapshot())
	for i := range full {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[i] ^= byte(1 << bit)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on flip byte %d bit %d: %v", i, bit, r)
					}
				}()
				DecodeSnapshot(mut)
			}()
		}
	}
}

// TestSnapshotRawCountOverClaimRejected: the raw-capture count must be
// bounded by remaining/3 (each entry costs ≥3 body bytes), so a small
// frame claiming a huge count is rejected by the bound check itself —
// before any count-sized allocation — not by a later truncation error.
func TestSnapshotRawCountOverClaimRejected(t *testing.T) {
	base := EncodeSnapshot(minimalSnapshot())
	// Rewrite the trailing flags byte (0 for a minimal snapshot) to
	// announce a raw capture, then claim one entry per remaining byte —
	// the old ≤remaining bound accepted this and pre-allocated ~32
	// bytes of slice headers per claimed entry.
	body := append(append([]byte(nil), base[:len(base)-1]...), flagRaw)
	const filler = 300
	body = binary.AppendUvarint(body, filler)
	body = append(body, make([]byte, filler)...)
	_, err := DecodeSnapshot(body)
	if err == nil {
		t.Fatal("over-claimed raw capture count accepted")
	}
	if !strings.Contains(err.Error(), "raw capture claims") {
		t.Fatalf("rejected by %q, want the allocation bound check", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := map[byte][]byte{
		TypeHello:    (&Hello{Version: Version, RunID: "r", WorldSize: 4, Rank: 1, TimingBase: 1.2}).Encode(),
		TypeSnapshot: EncodeSnapshot(testSnapshot()),
		TypeAck:      (&Ack{Status: AckDuplicate, Detail: "already have rank 1"}).Encode(),
		TypeWait:     (&Wait{RunID: "r"}).Encode(),
		TypeTrace:    []byte("PILGRIM1..."),
		TypeError:    []byte("boom"),
	}
	for typ, body := range bodies {
		if err := WriteFrame(&buf, typ, body); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[byte][]byte{}
	for range bodies {
		typ, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		seen[typ] = body
	}
	for typ, want := range bodies {
		if !bytes.Equal(seen[typ], want) {
			t.Fatalf("type 0x%02x body mismatch", typ)
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeSnapshot, EncodeSnapshot(testSnapshot())); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload byte: CRC must catch it.
	mut := append([]byte(nil), raw...)
	mut[7] ^= 0x40
	if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	// Truncate at every prefix: must error, never panic or hang.
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(raw))
		}
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, MaxFrame+1)
	hdr[4] = TypeSnapshot
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized length accepted")
	}
	// A huge-but-capped length over a short stream must fail at EOF
	// without allocating the full claim.
	binary.LittleEndian.PutUint32(hdr, MaxFrame)
	if _, _, err := ReadFrame(bytes.NewReader(append(hdr, make([]byte, 64)...))); err == nil {
		t.Fatal("lying length accepted")
	}
}

func TestFrameUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0x7F, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}

func TestHelloRoundTripAndValidation(t *testing.T) {
	want := &Hello{Version: Version, RunID: "run-42", WorldSize: 16, Rank: 15,
		Epoch: 7, TimingMode: 1, TimingBase: 1.2}
	got, err := DecodeHello(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}

	bad := []*Hello{
		{Version: Version + 1, RunID: "r", WorldSize: 2, Rank: 0, TimingBase: 1},
		{Version: Version, RunID: "", WorldSize: 2, Rank: 0, TimingBase: 1},
		{Version: Version, RunID: "r", WorldSize: 2, Rank: 2, TimingBase: 1},
		{Version: Version, RunID: "r", WorldSize: 0, Rank: 0, TimingBase: 1},
		{Version: Version, RunID: "r", WorldSize: MaxWorldSize + 1, Rank: 0, TimingBase: 1},
		{Version: Version, RunID: "r", WorldSize: 2, Rank: 0, TimingBase: math.Inf(1)},
	}
	for i, h := range bad {
		if _, err := DecodeHello(h.Encode()); err == nil {
			t.Fatalf("bad hello %d accepted", i)
		}
	}
}

func TestAckWaitRoundTrip(t *testing.T) {
	a, err := DecodeAck((&Ack{Status: AckError, Detail: "epoch mismatch"}).Encode())
	if err != nil || a.Status != AckError || a.Detail != "epoch mismatch" {
		t.Fatalf("ack round trip: %+v, %v", a, err)
	}
	if _, err := DecodeAck([]byte{9, 0}); err == nil {
		t.Fatal("unknown ack status accepted")
	}
	w, err := DecodeWait((&Wait{RunID: "abc"}).Encode())
	if err != nil || w.RunID != "abc" {
		t.Fatalf("wait round trip: %+v, %v", w, err)
	}
	if _, err := DecodeWait([]byte{0}); err == nil {
		t.Fatal("empty wait run id accepted")
	}
}

// TestHelloSpanContextRoundTrip covers the Version-2 trailer: span ID,
// send timestamp, and the echoed clock 4-tuple all survive the trip.
func TestHelloSpanContextRoundTrip(t *testing.T) {
	want := &Hello{Version: Version, RunID: "spanrun", WorldSize: 4, Rank: 2,
		Epoch: 3, TimingBase: 1,
		SpanID: 0x1234abcd, SendNs: 987654321,
		Echo: ClockEcho{T1: 100, T2: 150, T3: 160, T4: 220}}
	got, err := DecodeHello(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("span context lost: %+v != %+v", got, want)
	}
}

// TestHelloV1Compat pins the backward-compat contract both ways: a
// Version-1 hello (no trailer bytes at all) still decodes, and a
// Version-2 encoder talking about a v1 struct emits no trailer.
func TestHelloV1Compat(t *testing.T) {
	v1 := &Hello{Version: 1, RunID: "old", WorldSize: 8, Rank: 3, TimingBase: 2.5}
	body := v1.Encode()
	got, err := DecodeHello(body)
	if err != nil {
		t.Fatalf("v1 hello rejected: %v", err)
	}
	if got.SpanID != 0 || got.SendNs != 0 || got.Echo != (ClockEcho{}) {
		t.Fatalf("v1 hello grew span context: %+v", got)
	}
	// Span fields set on a v1 struct must NOT leak onto the wire — a v1
	// peer's strict decoder would reject the trailing bytes.
	withSpan := &Hello{Version: 1, RunID: "old", WorldSize: 8, Rank: 3, TimingBase: 2.5,
		SpanID: 99, SendNs: 42}
	if len(withSpan.Encode()) != len(body) {
		t.Fatal("v1 hello encoded span-context trailer")
	}
	if _, err := DecodeHello((&Hello{Version: Version + 1, RunID: "r", WorldSize: 2,
		TimingBase: 1}).Encode()); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestAckTimestampsOptional: acks carry NTP timestamps only when
// stamped, and a bare ack (what a v1 collector sends) round-trips.
func TestAckTimestampsOptional(t *testing.T) {
	bare := (&Ack{Status: AckOK}).Encode()
	stamped := (&Ack{Status: AckOK, RecvNs: 1000, SendNs: 2000}).Encode()
	if len(stamped) <= len(bare) {
		t.Fatal("stamped ack not longer than bare ack")
	}
	a, err := DecodeAck(bare)
	if err != nil || a.RecvNs != 0 || a.SendNs != 0 {
		t.Fatalf("bare ack: %+v, %v", a, err)
	}
	a, err = DecodeAck(stamped)
	if err != nil || a.RecvNs != 1000 || a.SendNs != 2000 {
		t.Fatalf("stamped ack: %+v, %v", a, err)
	}
}

// TestClockEchoValid pins the causality checks that keep garbage
// tuples out of the offset estimator.
func TestClockEchoValid(t *testing.T) {
	cases := []struct {
		e    ClockEcho
		want bool
	}{
		{ClockEcho{}, false}, // zero: no sample
		{ClockEcho{T1: 10, T2: 20, T3: 25, T4: 40}, true},
		{ClockEcho{T1: 10, T2: 20, T3: 25, T4: 5}, false},  // T4 < T1
		{ClockEcho{T1: 10, T2: 30, T3: 20, T4: 40}, false}, // T3 < T2
		{ClockEcho{T1: 10, T2: 20, T3: 35, T4: 21}, false}, // hold > RTT
	}
	for i, c := range cases {
		if got := c.e.Valid(); got != c.want {
			t.Fatalf("case %d: Valid() = %v, want %v", i, got, c.want)
		}
	}
}
