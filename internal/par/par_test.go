package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSequentialIsInOrder(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential For out of order: %v", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero should resolve to GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
}
