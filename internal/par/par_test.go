package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSequentialIsInOrder(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential For out of order: %v", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero should resolve to GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
}

func TestQueueOrder(t *testing.T) {
	q := NewQueue(4)
	defer q.Close()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		if !q.Do(func() { got = append(got, i) }) {
			t.Fatalf("Do %d refused on open queue", i)
		}
	}
	q.Barrier()
	for i, v := range got {
		if i != v {
			t.Fatalf("tasks ran out of submission order: %v", got[:i+1])
		}
	}
}

func TestQueueBarrierWaits(t *testing.T) {
	q := NewQueue(1)
	defer q.Close()
	var done atomic.Bool
	q.Do(func() {
		time.Sleep(20 * time.Millisecond)
		done.Store(true)
	})
	q.Barrier()
	if !done.Load() {
		t.Fatal("Barrier returned before queued work finished")
	}
}

func TestQueueCloseDrainsAndIsIdempotent(t *testing.T) {
	q := NewQueue(8)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		q.Do(func() { n.Add(1) })
	}
	q.Close()
	if n.Load() != 50 {
		t.Fatalf("Close drained %d of 50 tasks", n.Load())
	}
	q.Close() // second Close must not panic or hang
	if q.Do(func() { n.Add(1) }) {
		t.Fatal("Do accepted work after Close")
	}
	q.Barrier() // Barrier on a closed queue must return, not hang
	if n.Load() != 50 {
		t.Fatal("task ran after Close")
	}
}

func TestQueueConcurrentClose(t *testing.T) {
	q := NewQueue(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
}
