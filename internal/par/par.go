// Package par is the finalize pipeline's tiny fork/join helper: a
// bounded worker pool over an index range. Every user of this package
// writes results into per-index slots, so the output of a parallel
// loop is identical to the sequential loop regardless of scheduling —
// the property the byte-identity guarantee of the parallel finalize
// rests on.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n > 0 is taken as-is,
// anything else means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Queue is a serial task executor: one worker goroutine runs submitted
// tasks in submission order. It is the asynchronous half of the
// collector's journal discipline — an ingest handler enqueues the disk
// append (preserving frame order, since submissions under one lock are
// ordered) and returns without ever doing I/O under that lock.
type Queue struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	done   chan struct{}
}

// NewQueue starts a queue whose channel buffers up to depth pending
// tasks (minimum 1); submitters block only when the worker is that far
// behind.
func NewQueue(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	q := &Queue{tasks: make(chan func(), depth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for f := range q.tasks {
			f()
		}
	}()
	return q
}

// Do submits a task; tasks run in submission order. Returns false
// (dropping the task) once the queue is closed.
func (q *Queue) Do(f func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.tasks <- f
	return true
}

// Barrier blocks until every task submitted before it has run (or the
// queue is closed).
func (q *Queue) Barrier() {
	fence := make(chan struct{})
	if !q.Do(func() { close(fence) }) {
		return
	}
	select {
	case <-fence:
	case <-q.done:
	}
}

// Close drains pending tasks, stops the worker, and waits for it.
// Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	close(q.tasks)
	q.mu.Unlock()
	<-q.done
}

// Pool is a long-lived bounded worker pool: workers goroutines drain a
// task channel of fixed depth, and Submit blocks while the channel is
// full. That blocking is the pool's backpressure contract — the
// collector's merge-on-arrival path leans on it to slow a producer's
// ack instead of dropping or buffering without bound. Unlike Queue,
// tasks run concurrently across workers with no ordering guarantee.
type Pool struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
}

// NewPool starts workers goroutines (<= 0 means GOMAXPROCS) draining a
// task channel that buffers up to depth pending tasks (minimum 1).
func NewPool(workers, depth int) *Pool {
	workers = Workers(workers)
	if depth < 1 {
		depth = 1
	}
	p := &Pool{tasks: make(chan func(), depth)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Submit enqueues a task, blocking while the pool is depth tasks
// behind. Returns false (dropping the task) once the pool is closed.
func (p *Pool) Submit(f func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.tasks <- f
	return true
}

// Close stops intake, runs every already-submitted task, and waits for
// the workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// For runs f(i) for every i in [0, n), on up to workers goroutines.
// workers <= 1 runs inline with zero overhead. Iterations are handed
// out by an atomic counter, so the assignment of iterations to
// goroutines is nondeterministic — callers must make f(i) write only
// to state owned by index i.
func For(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
