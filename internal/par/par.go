// Package par is the finalize pipeline's tiny fork/join helper: a
// bounded worker pool over an index range. Every user of this package
// writes results into per-index slots, so the output of a parallel
// loop is identical to the sequential loop regardless of scheduling —
// the property the byte-identity guarantee of the parallel finalize
// rests on.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n > 0 is taken as-is,
// anything else means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs f(i) for every i in [0, n), on up to workers goroutines.
// workers <= 1 runs inline with zero overhead. Iterations are handed
// out by an atomic counter, so the assignment of iterations to
// goroutines is nondeterministic — callers must make f(i) write only
// to state owned by index i.
func For(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
