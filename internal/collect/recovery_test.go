package collect_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// journalFrames returns the run's on-disk journal frame file path.
func journalFrames(dir, runID string) string {
	return filepath.Join(dir, "journal", runID, "frames.jnl")
}

// TestCrashRecoveryMidRun is the tentpole claim at its first crash
// point: SIGKILL the daemon after half the ranks reported, restart it
// over the same OutDir, let the remaining ranks send, and the
// finalized trace must be byte-identical to an uninterrupted local
// finalize of the same snapshots.
func TestCrashRecoveryMidRun(t *testing.T) {
	const n = 8
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
	c := client(srv, "crashmid", n)
	for i := 0; i < n/2; i++ {
		if err := c.SendSnapshot(snaps[i]); err != nil {
			t.Fatalf("send rank %d: %v", i, err)
		}
	}
	srv.CrashStop()

	srv2 := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
	rec, ok := srv2.Recovery("crashmid")
	if !ok || !rec.Recovered {
		t.Fatalf("run not recovered: ok=%v rec=%+v", ok, rec)
	}
	if rec.ReplayedFrames != n/2 {
		t.Fatalf("replayed %d frames, want %d", rec.ReplayedFrames, n/2)
	}
	if rec.TornTail {
		t.Fatalf("clean SyncAlways journal reported a torn tail: %+v", rec)
	}
	if got := srv2.Metrics().JournalReplayedFrames.Load(); got != int64(n/2) {
		t.Fatalf("replay metric %d, want %d", got, n/2)
	}
	st, ok := srv2.Run("crashmid")
	if !ok || st.State != "collecting" || st.Received != n/2 {
		t.Fatalf("recovered run status: %+v", st)
	}

	c2 := client(srv2, "crashmid", n)
	for i := n / 2; i < n; i++ {
		if err := c2.SendSnapshot(snaps[i]); err != nil {
			t.Fatalf("send rank %d after restart: %v", i, err)
		}
	}
	got, err := c2.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered trace differs from uninterrupted finalize: %d vs %d bytes", len(got), len(want))
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "crashmid.pilgrim"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("on-disk trace differs from uninterrupted finalize")
	}
	// Finalize drops the frame log (asynchronously, off the ack path);
	// only the manifest remains.
	removed := false
	for wait := time.Now().Add(2 * time.Second); time.Now().Before(wait); time.Sleep(5 * time.Millisecond) {
		if _, err := os.Stat(journalFrames(dir, "crashmid")); os.IsNotExist(err) {
			removed = true
			break
		}
	}
	if !removed {
		t.Fatal("frames.jnl still present after finalize")
	}
}

// TestCrashRecoveryAfterLastFrame is the second crash point: the
// daemon dies after the run finalized. The restarted daemon must
// re-register the run from its journal manifest and keep serving the
// identical trace to late waiters and duplicate re-sends.
func TestCrashRecoveryAfterLastFrame(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
	c := client(srv, "crashdone", n)
	for _, s := range snaps {
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.WaitTrace(); err != nil {
		t.Fatal(err)
	}
	srv.CrashStop()

	srv2 := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
	rec, ok := srv2.Recovery("crashdone")
	if !ok || !rec.Recovered || !rec.FromManifest {
		t.Fatalf("finalized run not recovered from manifest: ok=%v rec=%+v", ok, rec)
	}
	c2 := client(srv2, "crashdone", n)
	// A producer whose ack was lost in the crash re-sends: idempotent.
	if err := c2.SendSnapshot(snaps[0]); err != nil {
		t.Fatalf("re-send into recovered finalized run: %v", err)
	}
	got, err := c2.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trace served after restart differs from original")
	}
}

// TestCrashRecoveryTornTail crashes mid-run and then corrupts the
// journal the way a torn write would: once with a truncated frame
// pair, once with garbage bytes. Recovery must truncate at the last
// intact pair — never fail the run — and the completed run must still
// match the uninterrupted finalize byte for byte.
func TestCrashRecoveryTornTail(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	// A valid frame pair to tear: rank n-1's hello+snapshot.
	var pair bytes.Buffer
	hello := &wire.Hello{Version: wire.Version, RunID: "torn", WorldSize: n, Rank: n - 1}
	wire.WriteFrame(&pair, wire.TypeHello, hello.Encode())
	wire.WriteFrame(&pair, wire.TypeSnapshot, wire.EncodeSnapshot(snaps[n-1]))

	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"truncated-pair", pair.Bytes()[:pair.Len()/2]},
		{"garbage", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			srv := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
			c := client(srv, "torn", n)
			for i := 0; i < n-1; i++ {
				if err := c.SendSnapshot(snaps[i]); err != nil {
					t.Fatal(err)
				}
			}
			srv.CrashStop()

			fpath := journalFrames(dir, "torn")
			fi, err := os.Stat(fpath)
			if err != nil {
				t.Fatal(err)
			}
			intact := fi.Size()
			f, err := os.OpenFile(fpath, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			srv2 := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
			rec, ok := srv2.Recovery("torn")
			if !ok || !rec.Recovered {
				t.Fatalf("run not recovered: %+v", rec)
			}
			if !rec.TornTail || rec.ReplayedFrames != n-1 {
				t.Fatalf("torn tail not detected: %+v", rec)
			}
			if srv2.Metrics().JournalTornTails.Load() == 0 {
				t.Fatal("torn-tail metric not incremented")
			}
			if fi, err := os.Stat(fpath); err != nil || fi.Size() != intact {
				t.Fatalf("journal not truncated to last intact pair: size %d want %d (%v)", fi.Size(), intact, err)
			}

			c2 := client(srv2, "torn", n)
			if err := c2.SendSnapshot(snaps[n-1]); err != nil {
				t.Fatal(err)
			}
			got, err := c2.WaitTrace()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("trace after torn-tail recovery differs from uninterrupted finalize")
			}
		})
	}
}

// TestGracefulRestartReplaysBatchJournal covers the batch fsync mode
// across a clean shutdown: Close flushes the journal, and the next
// daemon replays the half-collected run from it.
func TestGracefulRestartReplaysBatchJournal(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncBatch})
	c := client(srv, "graceful", n)
	for i := 0; i < n-1; i++ {
		if err := c.SendSnapshot(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncBatch})
	rec, ok := srv2.Recovery("graceful")
	if !ok || rec.ReplayedFrames != n-1 || rec.TornTail {
		t.Fatalf("graceful restart recovery: %+v", rec)
	}
	c2 := client(srv2, "graceful", n)
	if err := c2.SendSnapshot(snaps[n-1]); err != nil {
		t.Fatal(err)
	}
	got, err := c2.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trace after graceful restart differs from uninterrupted finalize")
	}
}

// TestRecoverySkipsForeignEpochFrames: an epoch restart truncates the
// journal, so frames from the previous epoch can never replay into
// the new run.
func TestRecoveryEpochRestartTruncatesJournal(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	dir := t.TempDir()

	srv := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways, StragglerDeadline: 50 * time.Millisecond})
	c := client(srv, "epochs", n)
	c.Run.Epoch = 1
	// Only rank 0 reports; the deadline salvages the run.
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitTrace(); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 restarts the run; its journal must start empty.
	c.Run.Epoch = 2
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	srv.CrashStop()

	srv2 := startServer(t, collect.Config{OutDir: dir, JournalSync: collect.SyncAlways})
	rec, ok := srv2.Recovery("epochs")
	if !ok || rec.ReplayedFrames != 1 {
		t.Fatalf("epoch-2 journal should replay exactly its own frame: %+v", rec)
	}
	st, _ := srv2.Run("epochs")
	if st.Epoch != 2 || st.State != "collecting" || st.Received != 1 {
		t.Fatalf("recovered run: %+v", st)
	}
}
