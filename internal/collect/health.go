package collect

import (
	"time"

	"github.com/hpcrepro/pilgrim/internal/wire"
)

// The per-run health model: an explicit phase state machine layered
// over the coarse runState, plus live progress counters. runState stays
// the compatibility surface (status JSON, manifests); phase is the
// operator's view of *where in its life* a run is right now.
//
//	admitted → ingesting → awaiting-stragglers ⇄ ingesting
//	        → finalizing → finalized | salvaged | failed
//
// Transitions happen under r.mu; each one publishes a "phase" event on
// the /watch stream and moves the run between buckets of the
// pilgrim_collect_run_phase gauge vector.

type runPhase int

const (
	phaseAdmitted runPhase = iota
	phaseIngesting
	phaseAwaiting // awaiting-stragglers: no arrival for cfg.AwaitStragglers
	phaseFinalizing
	phaseFinalized
	phaseSalvaged
	phaseFailed
)

var phaseNames = [...]string{
	phaseAdmitted:   "admitted",
	phaseIngesting:  "ingesting",
	phaseAwaiting:   "awaiting-stragglers",
	phaseFinalizing: "finalizing",
	phaseFinalized:  "finalized",
	phaseSalvaged:   "salvaged",
	phaseFailed:     "failed",
}

func (p runPhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

func (p runPhase) terminal() bool { return p >= phaseFinalized }

// ewmaAlpha weights the ingest-rate moving average: ~70% of the
// estimate comes from the last three arrivals.
const ewmaAlpha = 0.3

// healthPubInterval rate-limits per-run "health" delta events on the
// watch stream; phase transitions always publish immediately.
const healthPubInterval = 100 * time.Millisecond

// HealthStatus is one run's live health view (GET /runs/{id}/health
// and the payload of "health" watch events).
type HealthStatus struct {
	Run       string `json:"run"`
	Phase     string `json:"phase"`
	Epoch     uint64 `json:"epoch"`
	WorldSize int    `json:"world_size"`
	RanksSeen int    `json:"ranks_seen"`
	Bytes     int64  `json:"bytes"`

	IngestRateBps     float64 `json:"ingest_rate_bps"`      // EWMA over arrivals
	LastArrivalAgeSec float64 `json:"last_arrival_age_sec"` // -1 before the first arrival
	JournalLagNs      int64   `json:"journal_fsync_lag_ns"` // 0 when clean or journaling is off
	MergeBacklog      int64   `json:"merge_backlog"`        // snapshots queued but not yet merged
	ResidentSnapshots int     `json:"resident_snapshots"`   // accepted snapshots whose payloads are in memory

	// Clock-offset estimator state (zero until a v2 client has completed
	// at least one echo round trip).
	ClockOffsetNs int64 `json:"clock_offset_ns,omitempty"`
	ClockDelayNs  int64 `json:"clock_rtt_delay_ns,omitempty"`
	ClockSamples  int64 `json:"clock_samples,omitempty"`

	Reason     string  `json:"reason,omitempty"`
	CreatedSec float64 `json:"created_unix"`
	DoneSec    float64 `json:"finalized_unix,omitempty"`
}

// healthLocked snapshots the run's health (r.mu held).
func (r *run) healthLocked(now time.Time) HealthStatus {
	h := HealthStatus{
		Run:       r.id,
		Phase:     r.phase.String(),
		Epoch:     r.epoch,
		WorldSize: r.world,
		RanksSeen: r.received,
		Bytes:     r.bytes,

		IngestRateBps:     r.ewmaBps,
		LastArrivalAgeSec: -1,
		MergeBacklog:      r.backlog.Load(),
		ResidentSnapshots: r.received - r.spilled,

		Reason:     r.reason,
		CreatedSec: float64(r.created.UnixNano()) / 1e9,
	}
	if !r.lastArrival.IsZero() {
		h.LastArrivalAgeSec = now.Sub(r.lastArrival).Seconds()
	}
	if r.journal != nil {
		h.JournalLagNs = r.journal.fsyncLag(now.UnixNano())
	}
	if off, delay, n, ok := r.clock.estimate(); ok {
		h.ClockOffsetNs, h.ClockDelayNs, h.ClockSamples = off, delay, n
	}
	if !r.doneAt.IsZero() {
		h.DoneSec = float64(r.doneAt.UnixNano()) / 1e9
	}
	return h
}

// Health returns one run's live health view.
func (s *Server) Health(id string) (HealthStatus, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return HealthStatus{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthLocked(time.Now()), true
}

// Healths returns every run's health, in the same order as Runs.
func (s *Server) Healths() []HealthStatus {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	now := time.Now()
	out := make([]HealthStatus, 0, len(runs))
	for _, r := range runs {
		r.mu.Lock()
		out = append(out, r.healthLocked(now))
		r.mu.Unlock()
	}
	return out
}

// enterPhaseLocked moves the run to phase p (r.mu held): gauge buckets
// shift, and a "phase" event goes out on the watch stream immediately.
func (s *Server) enterPhaseLocked(r *run, p runPhase) {
	if r.phase == p {
		return
	}
	prev := r.phase
	r.phase = p
	s.m.RunPhase.With(prev.String()).Add(-1)
	s.m.RunPhase.With(p.String()).Add(1)
	ev := WatchEvent{
		Type: "phase", Run: r.id,
		Phase: p.String(), Prev: prev.String(),
		TsNs: time.Now().UnixNano(),
	}
	if p.terminal() {
		h := r.healthLocked(time.Now())
		ev.Health = &h
	}
	s.watch.publish(ev)
}

// publishHealthLocked emits a rate-limited "health" delta event
// (r.mu held). Phase transitions bypass this via enterPhaseLocked.
func (s *Server) publishHealthLocked(r *run, now time.Time) {
	if s.watch == nil || s.watch.n.Load() == 0 {
		return
	}
	if now.Sub(r.lastHealthPub) < healthPubInterval {
		return
	}
	r.lastHealthPub = now
	h := r.healthLocked(now)
	s.watch.publish(WatchEvent{
		Type: "health", Run: r.id, Phase: h.Phase,
		TsNs: now.UnixNano(), Health: &h,
	})
}

// noteArrivalLocked folds one accepted snapshot into the progress
// counters (r.mu held): EWMA ingest rate, last-arrival clock, phase,
// and the straggler-await idle timer.
func (s *Server) noteArrivalLocked(r *run, bytes int64, now time.Time) {
	if !r.lastArrival.IsZero() {
		if dt := now.Sub(r.lastArrival).Seconds(); dt > 0 {
			inst := float64(bytes) / dt
			if r.ewmaBps == 0 {
				r.ewmaBps = inst
			} else {
				r.ewmaBps = ewmaAlpha*inst + (1-ewmaAlpha)*r.ewmaBps
			}
		}
	}
	r.lastArrival = now
	if r.phase == phaseAdmitted || r.phase == phaseAwaiting {
		s.enterPhaseLocked(r, phaseIngesting)
	}
	if r.received < r.world {
		s.armIdleLocked(r)
	} else if r.idle != nil {
		r.idle.Stop()
	}
	s.publishHealthLocked(r, now)
}

// armIdleLocked (re)starts the awaiting-stragglers timer (r.mu held):
// when no snapshot arrives for cfg.AwaitStragglers while ranks are
// still missing, the run's phase flips to awaiting-stragglers so an
// operator can tell a draining run from a stuck one.
func (s *Server) armIdleLocked(r *run) {
	d := s.cfg.AwaitStragglers
	if d <= 0 {
		return
	}
	if r.idle == nil {
		r.idle = time.AfterFunc(d, func() { s.idleFired(r) })
		return
	}
	r.idle.Reset(d)
}

// idleFired marks a quiet, incomplete run as awaiting stragglers.
func (s *Server) idleFired(r *run) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phase == phaseIngesting && r.received < r.world {
		s.enterPhaseLocked(r, phaseAwaiting)
	}
}

// feedClockEcho folds a hello's echoed timing 4-tuple (a completed
// earlier hello/ack round trip, stamped T1/T4 by the client and T2/T3
// by us) into the run's clock-offset estimator. No-op for v1 hellos,
// echoes that fail the causality check, or unknown runs.
func (s *Server) feedClockEcho(h *wire.Hello) {
	if !h.Echo.Valid() {
		return
	}
	s.mu.Lock()
	r, ok := s.runs[h.RunID]
	s.mu.Unlock()
	if !ok {
		return
	}
	r.mu.Lock()
	if r.epoch == h.Epoch {
		if off, ok := r.clock.addSample(h.Echo.T1, h.Echo.T2, h.Echo.T3, h.Echo.T4); ok {
			// The echo carries the original exchange's own send/receive
			// pair, so every completed round trip yields exactly one
			// corrected one-way latency sample — even a producer that
			// ships a single snapshot per connection.
			lat := (h.Echo.T2 - off) - h.Echo.T1
			if lat < 0 {
				lat = 0
			}
			s.m.E2eLatency.Observe(lat)
		}
	}
	r.mu.Unlock()
}
