package collect_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// v1Send plays a Version-1 producer for one rank: raw frames over a
// raw TCP connection, no span context, no clock echo — exactly the
// bytes an old binary would put on the wire.
func v1Send(t *testing.T, addr, runID string, world int, s *core.Snapshot) *wire.Ack {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	h := &wire.Hello{Version: 1, RunID: runID, WorldSize: world, Rank: s.Rank}
	if err := wire.WriteFrame(conn, wire.TypeHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.TypeSnapshot, wire.EncodeSnapshot(s)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeAck {
		t.Fatalf("v1 rank %d got frame 0x%02x, want ack", s.Rank, typ)
	}
	ack, err := wire.DecodeAck(body)
	if err != nil {
		t.Fatalf("v1 rank %d ack: %v", s.Rank, err)
	}
	return ack
}

// TestV1ClientCompat is the backward-compat contract: a Version-1
// producer (no span-context trailer) against the Version-2 collector
// must (a) get v1-shaped acks — no trailing timestamps that would trip
// an old DecodeAck's trailing-bytes check, (b) finalize to the exact
// bytes core.FinalizeSnapshots produces, and (c) land in health phase
// "finalized" like any other run.
func TestV1ClientCompat(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})

	for _, s := range snaps {
		ack := v1Send(t, srv.Addr(), "v1run", n, s)
		if ack.Status != wire.AckOK {
			t.Fatalf("rank %d ack status %d, want OK", s.Rank, ack.Status)
		}
		// The collector must answer in kind: a v1 hello gets an ack with
		// no timestamp trailer, because a real v1 DecodeAck rejects
		// trailing bytes.
		if ack.RecvNs != 0 || ack.SendNs != 0 {
			t.Fatalf("rank %d v1 ack carries timestamps (%d, %d)", s.Rank, ack.RecvNs, ack.SendNs)
		}
	}

	// Fetch the trace over a v1 wait (wait frames are unversioned).
	data, err := client(srv, "v1run", n).WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	if want := serialize(t, local); !bytes.Equal(data, want) {
		t.Fatalf("v1-ingested trace differs from local finalize: %d vs %d bytes", len(data), len(want))
	}

	h, ok := srv.Health("v1run")
	if !ok {
		t.Fatal("no health for v1 run")
	}
	if h.Phase != "finalized" {
		t.Fatalf("v1 run health phase %q, want finalized", h.Phase)
	}
	if h.RanksSeen != n {
		t.Fatalf("v1 run ranks_seen %d, want %d", h.RanksSeen, n)
	}
	// No v2 client ever spoke: the clock estimator must be empty.
	if h.ClockSamples != 0 {
		t.Fatalf("v1-only run has %d clock samples", h.ClockSamples)
	}
}

// TestV1DuplicateAndMixedVersions: v1 and v2 producers interleaved on
// one run — dedupe and merge are version-blind, and the v2 side still
// feeds the clock estimator.
func TestV1DuplicateAndMixedVersions(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})

	// Rank 0 arrives via v1, twice: second ack is a duplicate.
	if ack := v1Send(t, srv.Addr(), "mixed", n, snaps[0]); ack.Status != wire.AckOK {
		t.Fatalf("first v1 send status %d", ack.Status)
	}
	if ack := v1Send(t, srv.Addr(), "mixed", n, snaps[0]); ack.Status != wire.AckDuplicate {
		t.Fatalf("v1 re-send status %d, want duplicate", ack.Status)
	}
	// Rank 1 arrives via the current (v2) client.
	if err := client(srv, "mixed", n).SendSnapshot(snaps[1]); err != nil {
		t.Fatal(err)
	}
	data, err := client(srv, "mixed", n).WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	if want := serialize(t, local); !bytes.Equal(data, want) {
		t.Fatal("mixed-version run differs from local finalize")
	}
	if got := srv.Metrics().IngestSnapshots.Load(); got != n {
		t.Fatalf("merged %d snapshots, want %d", got, n)
	}
}
