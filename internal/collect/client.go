package collect

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// RetryPolicy bounds the client's connect/send retry loop.
type RetryPolicy struct {
	// MaxAttempts per snapshot (default 5). Each attempt is a fresh
	// connection: dial, hello, snapshot, ack.
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms); each retry doubles
	// it up to MaxDelay (default 2s), jittered to avoid a thundering
	// herd of ranks retrying in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxElapsed caps the whole retry loop's wall-clock budget (default
	// 30s): a backoff that would sleep past the deadline gives up
	// immediately instead, so a rank never stalls its producer longer
	// than the budget no matter how MaxAttempts and MaxDelay combine.
	// Negative means no deadline.
	MaxElapsed time.Duration
	// Seed fixes the jitter source for deterministic tests; 0 derives
	// one from the clock and PID (concurrent producer processes must
	// not jitter in lockstep).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxElapsed == 0 {
		p.MaxElapsed = 30 * time.Second
	}
	return p
}

// deadline converts MaxElapsed into an absolute retry deadline.
func (p RetryPolicy) deadline(now time.Time) time.Time {
	if p.MaxElapsed < 0 {
		return time.Time{} // no deadline
	}
	return now.Add(p.MaxElapsed)
}

// OverLimitError is the client-side face of an admission NACK: the
// collector is up but refused the work (max-runs, max-run-bytes, or
// max-conns). It is permanent — retrying the same bytes would only
// hammer an overloaded daemon — so callers fall back to local
// finalize immediately.
type OverLimitError struct {
	Code   uint8 // wire.NackMaxRuns, NackRunBytes, NackMaxConns
	Detail string
}

func (e *OverLimitError) Error() string {
	return fmt.Sprintf("collector over limit (%s): %s", wire.NackCodeString(e.Code), e.Detail)
}

// IsOverLimit reports whether err stems from an admission NACK.
func IsOverLimit(err error) bool {
	var ol *OverLimitError
	return errors.As(err, &ol)
}

// RunInfo identifies the run a client's snapshots belong to.
type RunInfo struct {
	RunID     string
	WorldSize int
	// Epoch keys the server's idempotent dedupe: re-sends of the same
	// (RunID, Rank, Epoch) ack as duplicates, and a higher epoch
	// restarts a finished run under the same RunID. Use a fresh value
	// per logical run (pilgrim.RunSim uses wall-clock nanoseconds) —
	// reusing a (RunID, Epoch) pair makes the collector treat the new
	// run's snapshots as duplicates of the old one and serve the old
	// trace back.
	Epoch      uint64
	TimingMode uint8
	TimingBase float64
}

// Client ships rank snapshots to a collector. Sends are idempotent —
// the server dedupes on (run, rank, epoch) — so any failure is safely
// retried with a full re-send.
type Client struct {
	Addr  string
	Run   RunInfo
	Retry RetryPolicy
	// IOTimeout bounds each dial/read/write (default 30s). WaitTrace
	// reads are exempt: they legitimately block until the run
	// finalizes.
	IOTimeout time.Duration
	// Dial overrides the transport (tests inject flaky listeners);
	// nil dials TCP.
	Dial func(addr string) (net.Conn, error)
	Logf func(format string, args ...any)
	// Obs, when non-nil, records the client's side of the pipeline:
	// dial/send spans per attempt, backoff and NACK instants, and the
	// wait for the finalized trace. Nil disables tracing.
	Obs *obs.Sink

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// echo holds the latest completed hello/ack timing 4-tuple, carried
	// back to the collector on the next hello (and flushed best-effort
	// before each connection closes) to feed its clock-offset estimator.
	echoMu sync.Mutex
	echo   wire.ClockEcho
}

// storeEcho saves a completed round-trip sample for the next hello.
func (c *Client) storeEcho(e wire.ClockEcho) {
	c.echoMu.Lock()
	c.echo = e
	c.echoMu.Unlock()
}

// takeEcho returns the pending sample and clears it, so each round
// trip feeds the collector's estimator exactly once.
func (c *Client) takeEcho() wire.ClockEcho {
	c.echoMu.Lock()
	e := c.echo
	c.echo = wire.ClockEcho{}
	c.echoMu.Unlock()
	return e
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 30 * time.Second
}

func (c *Client) dial() (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(c.Addr)
	}
	return net.DialTimeout("tcp", c.Addr, c.ioTimeout())
}

// backoff returns the jittered delay before retry attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	p := c.Retry.withDefaults()
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		seed := p.Seed
		if seed == 0 {
			// Mix the PID in: ranks in separate producer processes can
			// observe the same clock reading, and identical seeds would
			// recreate exactly the lockstep herd the jitter exists to break.
			seed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
		}
		c.jitter = rand.New(rand.NewSource(seed))
	}
	// Half fixed, half uniform random: spreads lockstep ranks without
	// ever collapsing the delay to zero.
	d = d/2 + time.Duration(c.jitter.Int63n(int64(d/2)+1))
	c.jitterMu.Unlock()
	return d
}

func (c *Client) hello(rank int) *wire.Hello {
	return &wire.Hello{
		Version:    wire.Version,
		RunID:      c.Run.RunID,
		WorldSize:  c.Run.WorldSize,
		Rank:       rank,
		Epoch:      c.Run.Epoch,
		TimingMode: c.Run.TimingMode,
		TimingBase: c.Run.TimingBase,
	}
}

// sendOnce runs one full attempt: dial, hello, snapshot, ack. The
// hello carries live span context (a fresh span ID also stamped on the
// client.send span, plus the send timestamp) so the collector can link
// its ingest spans to ours and correct the one-way latency for clock
// offset.
func (c *Client) sendOnce(s *core.Snapshot) error {
	dsp := c.Obs.Start("client", "client.dial").WithRun(c.Run.RunID, s.Rank, c.Run.Epoch)
	conn, err := c.dial()
	if err != nil {
		dsp.WithStr("result", "error").End()
		return err
	}
	dsp.End()
	defer conn.Close()
	spanID := obs.NextSpanID()
	ssp := c.Obs.Start("client", "client.send").WithRun(c.Run.RunID, s.Rank, c.Run.Epoch).
		WithSpanID(spanID)
	deadline := time.Now().Add(c.ioTimeout())
	conn.SetDeadline(deadline)
	h := c.hello(s.Rank)
	h.SpanID = spanID
	h.Echo = c.takeEcho()
	h.SendNs = time.Now().UnixNano() // T1 of this exchange
	if err := wire.WriteFrame(conn, wire.TypeHello, h.Encode()); err != nil {
		ssp.WithStr("result", "error").End()
		return fmt.Errorf("send hello: %w", err)
	}
	body := wire.EncodeSnapshot(s)
	ssp = ssp.WithAttr("bytes", int64(len(body)))
	if err := wire.WriteFrame(conn, wire.TypeSnapshot, body); err != nil {
		ssp.WithStr("result", "error").End()
		return fmt.Errorf("send snapshot: %w", err)
	}
	typ, body, err := wire.ReadFrame(conn)
	ackRecvNs := time.Now().UnixNano() // T4 of this exchange
	if err != nil {
		ssp.WithStr("result", "error").End()
		return fmt.Errorf("read ack: %w", err)
	}
	ssp.End()
	switch typ {
	case wire.TypeAck:
		ack, err := wire.DecodeAck(body)
		if err != nil {
			return err
		}
		if ack.RecvNs != 0 && ack.SendNs != 0 {
			sample := wire.ClockEcho{T1: h.SendNs, T2: ack.RecvNs, T3: ack.SendNs, T4: ackRecvNs}
			if sample.Valid() {
				c.storeEcho(sample)
				// Best-effort trailing flush: without it, a producer whose
				// connections each carry one snapshot would never get a
				// completed sample back to the collector.
				fh := c.hello(s.Rank)
				fh.Echo = sample
				fh.SendNs = time.Now().UnixNano()
				wire.WriteFrame(conn, wire.TypeHello, fh.Encode())
			}
		}
		if ack.Status == wire.AckError {
			// The server understood us and said no (epoch mismatch, run
			// already finalized): retrying the same bytes cannot succeed.
			return &permanentError{fmt.Errorf("collector rejected rank %d: %s", s.Rank, ack.Detail)}
		}
		return nil // AckOK or AckDuplicate — the snapshot is merged
	case wire.TypeNack:
		nack, err := wire.DecodeNack(body)
		if err != nil {
			return err
		}
		c.Obs.Start("client", "client.nack").WithRun(c.Run.RunID, s.Rank, c.Run.Epoch).
			WithStr("code", wire.NackCodeString(nack.Code)).Emit()
		return &permanentError{&OverLimitError{Code: nack.Code, Detail: nack.Detail}}
	case wire.TypeError:
		return &permanentError{fmt.Errorf("collector error: %s", body)}
	default:
		return fmt.Errorf("unexpected reply frame 0x%02x", typ)
	}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// SendSnapshot ships one rank's snapshot, retrying transient failures
// (refused connections, mid-stream resets) with jittered exponential
// backoff, bounded by both MaxAttempts and the MaxElapsed deadline.
func (c *Client) SendSnapshot(s *core.Snapshot) error {
	p := c.Retry.withDefaults()
	deadline := p.deadline(time.Now())
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		err := c.sendOnce(s)
		if err == nil {
			return nil
		}
		if pe, ok := err.(*permanentError); ok {
			return pe.err
		}
		last = err
		if attempt < p.MaxAttempts {
			d := c.backoff(attempt)
			if !deadline.IsZero() && time.Until(deadline) < d {
				return fmt.Errorf("rank %d: retry deadline (%s) exceeded after %d attempts: %w",
					s.Rank, p.MaxElapsed, attempt, last)
			}
			c.logf("collect: rank %d attempt %d/%d failed (%v); retrying in %s",
				s.Rank, attempt, p.MaxAttempts, err, d)
			c.Obs.Start("client", "client.backoff").WithRun(c.Run.RunID, s.Rank, c.Run.Epoch).
				WithAttr("attempt", int64(attempt)).WithAttr("delay_ns", int64(d)).Emit()
			time.Sleep(d)
		}
	}
	return fmt.Errorf("rank %d: %d attempts exhausted: %w", s.Rank, p.MaxAttempts, last)
}

// SendAll ships every snapshot over a bounded pool of connections and
// returns the first failure (all sends still run to completion —
// partial delivery is fine, the straggler deadline or a later retry
// covers the rest).
func (c *Client) SendAll(snaps []*core.Snapshot) error {
	workers := 8
	if len(snaps) < workers {
		workers = len(snaps)
	}
	jobs := make(chan *core.Snapshot)
	errs := make(chan error, len(snaps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				errs <- c.SendSnapshot(s)
			}
		}()
	}
	for _, s := range snaps {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WaitTrace blocks until the run finalizes at the collector and
// returns the serialized trace bytes.
func (c *Client) WaitTrace() ([]byte, error) {
	p := c.Retry.withDefaults()
	deadline := p.deadline(time.Now())
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		data, err := c.waitOnce()
		if err == nil {
			return data, nil
		}
		if pe, ok := err.(*permanentError); ok {
			return nil, pe.err
		}
		last = err
		if attempt < p.MaxAttempts {
			d := c.backoff(attempt)
			if !deadline.IsZero() && time.Until(deadline) < d {
				return nil, fmt.Errorf("wait for trace: retry deadline (%s) exceeded after %d attempts: %w",
					p.MaxElapsed, attempt, last)
			}
			c.Obs.Start("client", "client.backoff").WithRun(c.Run.RunID, -1, c.Run.Epoch).
				WithAttr("attempt", int64(attempt)).WithAttr("delay_ns", int64(d)).Emit()
			time.Sleep(d)
		}
	}
	return nil, fmt.Errorf("wait for trace: %d attempts exhausted: %w", p.MaxAttempts, last)
}

func (c *Client) waitOnce() ([]byte, error) {
	wsp := c.Obs.Start("client", "client.wait").WithRun(c.Run.RunID, -1, c.Run.Epoch)
	conn, err := c.dial()
	if err != nil {
		wsp.WithStr("result", "error").End()
		return nil, err
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(c.ioTimeout()))
	if err := wire.WriteFrame(conn, wire.TypeWait, (&wire.Wait{RunID: c.Run.RunID}).Encode()); err != nil {
		wsp.WithStr("result", "error").End()
		return nil, fmt.Errorf("send wait: %w", err)
	}
	// No read deadline: the reply comes when the run finalizes. A dead
	// collector closes the connection and we fall out with an error.
	typ, body, err := wire.ReadFrame(conn)
	if err != nil {
		wsp.WithStr("result", "error").End()
		return nil, fmt.Errorf("read trace: %w", err)
	}
	wsp.WithAttr("bytes", int64(len(body))).End()
	switch typ {
	case wire.TypeTrace:
		return body, nil
	case wire.TypeNack:
		nack, err := wire.DecodeNack(body)
		if err != nil {
			return nil, err
		}
		return nil, &permanentError{&OverLimitError{Code: nack.Code, Detail: nack.Detail}}
	case wire.TypeError:
		return nil, &permanentError{fmt.Errorf("collector error: %s", body)}
	default:
		return nil, fmt.Errorf("unexpected reply frame 0x%02x", typ)
	}
}

// Collect ships every snapshot and blocks for the finalized trace —
// the remote equivalent of core.FinalizeSnapshots. Callers fall back
// to the local merge on any error.
func (c *Client) Collect(snaps []*core.Snapshot) (*trace.File, error) {
	if err := c.SendAll(snaps); err != nil {
		return nil, err
	}
	data, err := c.WaitTrace()
	if err != nil {
		return nil, err
	}
	file, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("parse collected trace: %w", err)
	}
	return file, nil
}
