package collect

import "github.com/hpcrepro/pilgrim/internal/metrics"

// Metrics bundles the collector daemon's instrument handles, built on
// the same registry primitives as the tracer's self-observability
// layer so one Prometheus/expvar endpoint serves both.
type Metrics struct {
	Reg *metrics.Registry

	IngestSnapshots   *metrics.Counter   // snapshots accepted into a merge
	IngestBytes       *metrics.Counter   // wire frame body bytes ingested
	DupSnapshots      *metrics.Counter   // idempotent re-sends deduplicated
	RejectedSnapshots *metrics.Counter   // snapshots refused (bad run/epoch/decode)
	MergeNs           *metrics.Histogram // per-snapshot incremental CST merge latency
	FinalizeNs        *metrics.Histogram // per-run finalize (relabel+dedup+pack+write) latency
	ActiveRuns        *metrics.Gauge     // runs currently collecting
	ActiveConns       *metrics.Gauge     // open ingest connections
	FinalizedRuns     *metrics.Counter   // runs finalized with every rank reported
	SalvagedRuns      *metrics.Counter   // runs salvaged by the straggler deadline
	TraceBytesOut     *metrics.Counter   // serialized trace bytes produced
}

// NewMetrics registers the collector families on reg (a fresh
// registry when nil).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Metrics{
		Reg:               reg,
		IngestSnapshots:   reg.Counter("pilgrim_collect_ingest_snapshots_total", "rank snapshots accepted into a run merge"),
		IngestBytes:       reg.Counter("pilgrim_collect_ingest_bytes_total", "wire frame body bytes ingested"),
		DupSnapshots:      reg.Counter("pilgrim_collect_duplicate_snapshots_total", "idempotent snapshot re-sends deduplicated by (run, rank, epoch)"),
		RejectedSnapshots: reg.Counter("pilgrim_collect_rejected_snapshots_total", "snapshots refused (unknown run, epoch mismatch, decode error)"),
		MergeNs:           reg.Histogram("pilgrim_collect_merge_ns", "incremental CST merge latency per arriving snapshot (ns)"),
		FinalizeNs:        reg.Histogram("pilgrim_collect_finalize_ns", "per-run finalize latency: relabel, grammar dedup, pack, serialize (ns)"),
		ActiveRuns:        reg.Gauge("pilgrim_collect_active_runs", "runs currently collecting snapshots"),
		ActiveConns:       reg.Gauge("pilgrim_collect_active_conns", "open ingest connections"),
		FinalizedRuns:     reg.Counter("pilgrim_collect_finalized_runs_total", "runs finalized with every rank reported"),
		SalvagedRuns:      reg.Counter("pilgrim_collect_salvaged_runs_total", "runs salvaged at the straggler deadline with ranks missing"),
		TraceBytesOut:     reg.Counter("pilgrim_collect_trace_bytes_total", "serialized trace bytes produced by finalized runs"),
	}
}
