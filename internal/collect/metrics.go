package collect

import (
	"runtime"
	"runtime/debug"
	"time"

	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/obs"
)

// Metrics bundles the collector daemon's instrument handles, built on
// the same registry primitives as the tracer's self-observability
// layer so one Prometheus/expvar endpoint serves both.
type Metrics struct {
	Reg *metrics.Registry

	IngestSnapshots   *metrics.Counter   // snapshots accepted into a merge
	IngestBytes       *metrics.Counter   // wire frame body bytes ingested
	DupSnapshots      *metrics.Counter   // idempotent re-sends deduplicated
	RejectedSnapshots *metrics.Counter   // snapshots refused (bad run/epoch/decode)
	MergeNs           *metrics.Histogram // per-snapshot incremental CST merge latency
	MergeBacklog      *metrics.Gauge     // snapshots decoded and queued but not yet merged
	FinalizeNs        *metrics.Histogram // per-run finalize (relabel+dedup+pack+write) latency
	ActiveRuns        *metrics.Gauge     // runs currently collecting
	ActiveConns       *metrics.Gauge     // open ingest connections
	FinalizedRuns     *metrics.Counter   // runs finalized with every rank reported
	SalvagedRuns      *metrics.Counter   // runs salvaged by the straggler deadline
	TraceBytesOut     *metrics.Counter   // serialized trace bytes produced

	JournalFrames         *metrics.Counter // snapshot frame pairs appended to run journals
	JournalBytes          *metrics.Counter // journal bytes appended (framing included)
	JournalFsyncs         *metrics.Counter // journal fsync calls issued
	JournalErrors         *metrics.Counter // journals marked broken by an I/O error
	JournalReplayedFrames *metrics.Counter // journaled snapshots replayed into runs at startup
	JournalTornTails      *metrics.Counter // torn/corrupt journal tails truncated during recovery
	RecoveredRuns         *metrics.Counter // runs restored from journals at startup

	AdmissionRejectedRuns  *metrics.Counter // hellos NACKed by the max-runs cap
	AdmissionRejectedSnaps *metrics.Counter // snapshots NACKed by the max-run-bytes cap
	AdmissionRejectedConns *metrics.Counter // connections NACKed by the max-conns cap

	E2eLatency       *metrics.Histogram // clock-corrected client→collector one-way latency
	JournalFsyncLag  *metrics.Histogram // age of the oldest unsynced journal byte at fsync
	RunPhase         *metrics.GaugeVec  // runs per health phase (label: phase)
	WatchSubscribers *metrics.Gauge     // live /watch SSE subscribers
	WatchEvents      *metrics.Counter   // events published on the watch stream
	WatchDropped     *metrics.Counter   // watch messages dropped to slow subscribers
}

// NewMetrics registers the collector families on reg (a fresh
// registry when nil).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Metrics{
		Reg:               reg,
		IngestSnapshots:   reg.Counter("pilgrim_collect_ingest_snapshots_total", "rank snapshots accepted into a run merge"),
		IngestBytes:       reg.Counter("pilgrim_collect_ingest_bytes_total", "wire frame body bytes ingested"),
		DupSnapshots:      reg.Counter("pilgrim_collect_duplicate_snapshots_total", "idempotent snapshot re-sends deduplicated by (run, rank, epoch)"),
		RejectedSnapshots: reg.Counter("pilgrim_collect_rejected_snapshots_total", "snapshots refused (unknown run, epoch mismatch, decode error)"),
		MergeNs:           reg.Histogram("pilgrim_collect_merge_ns", "incremental CST merge latency per arriving snapshot (ns)"),
		MergeBacklog:      reg.Gauge("pilgrim_collect_merge_backlog", "snapshots decoded and enqueued for merge but not yet merged (all runs)"),
		FinalizeNs:        reg.Histogram("pilgrim_collect_finalize_ns", "per-run finalize latency: relabel, grammar dedup, pack, serialize (ns)"),
		ActiveRuns:        reg.Gauge("pilgrim_collect_active_runs", "runs currently collecting snapshots"),
		ActiveConns:       reg.Gauge("pilgrim_collect_active_conns", "open ingest connections"),
		FinalizedRuns:     reg.Counter("pilgrim_collect_finalized_runs_total", "runs finalized with every rank reported"),
		SalvagedRuns:      reg.Counter("pilgrim_collect_salvaged_runs_total", "runs salvaged at the straggler deadline with ranks missing"),
		TraceBytesOut:     reg.Counter("pilgrim_collect_trace_bytes_total", "serialized trace bytes produced by finalized runs"),

		JournalFrames:         reg.Counter("pilgrim_collect_journal_frames_total", "snapshot frame pairs appended to run journals"),
		JournalBytes:          reg.Counter("pilgrim_collect_journal_bytes_total", "run journal bytes appended, wire framing included"),
		JournalFsyncs:         reg.Counter("pilgrim_collect_journal_fsyncs_total", "journal fsync calls issued (always: per frame; batch: per interval)"),
		JournalErrors:         reg.Counter("pilgrim_collect_journal_errors_total", "journals marked broken by an I/O error (run continues memory-only)"),
		JournalReplayedFrames: reg.Counter("pilgrim_collect_journal_replayed_frames_total", "journaled snapshots replayed through ingest during startup recovery"),
		JournalTornTails:      reg.Counter("pilgrim_collect_journal_torn_tails_total", "torn or corrupt journal tails truncated during recovery"),
		RecoveredRuns:         reg.Counter("pilgrim_collect_recovered_runs_total", "runs restored from journals at startup (replayed or re-registered)"),

		AdmissionRejectedRuns:  reg.Counter("pilgrim_collect_admission_rejected_runs_total", "run creations refused by the max-runs cap"),
		AdmissionRejectedSnaps: reg.Counter("pilgrim_collect_admission_rejected_snapshots_total", "snapshots refused by the max-run-bytes cap"),
		AdmissionRejectedConns: reg.Counter("pilgrim_collect_admission_rejected_conns_total", "connections refused by the max-conns cap"),

		E2eLatency:       reg.Histogram("pilgrim_collect_e2e_latency_ns", "clock-corrected client→collector one-way snapshot latency (ns)"),
		JournalFsyncLag:  reg.Histogram("pilgrim_collect_journal_fsync_lag_ns", "age of the oldest unsynced journal byte when its fsync lands (ns)"),
		RunPhase:         reg.GaugeVec("pilgrim_collect_run_phase", "runs currently in each health phase", "phase"),
		WatchSubscribers: reg.Gauge("pilgrim_collect_watch_subscribers", "live /watch SSE subscribers"),
		WatchEvents:      reg.Counter("pilgrim_collect_watch_events_total", "lifecycle and health events published on the watch stream"),
		WatchDropped:     reg.Counter("pilgrim_collect_watch_dropped_total", "watch messages dropped to slow or stalled subscribers (drop-oldest)"),
	}
}

// buildVersion resolves the module version baked into the binary;
// source builds (go run, go test) report "devel".
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// registerProcess adds the process-level series to the registry: build
// identity (the Prometheus build-info idiom), uptime, goroutine count,
// and — when the flight recorder is on — its drop counter. Scrape-time
// functions throughout; nothing is sampled on the hot path.
func (m *Metrics) registerProcess(start time.Time, sink *obs.Sink) {
	m.Reg.Info("pilgrim_build_info", "build metadata of the running collector",
		"version", buildVersion(), "goversion", runtime.Version())
	m.Reg.GaugeFunc("pilgrim_collect_uptime_seconds", "seconds since the collector started",
		func() float64 { return time.Since(start).Seconds() })
	m.Reg.GaugeFunc("pilgrim_collect_goroutines", "goroutines in the collector process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	if sink != nil {
		m.Reg.CounterFunc("pilgrim_obs_dropped_total", "flight-recorder events overwritten before being read",
			func() int64 { return sink.Dropped() })
	}
}
