package collect

import (
	"math/rand"
	"testing"
	"time"
)

// simClock simulates a client whose clock runs `skew` ahead of the
// collector's, exchanging over links with asymmetric delay plus
// bounded random queueing jitter.
type simClock struct {
	rng         *rand.Rand
	skewNs      int64 // client clock − collector clock
	upNs, dnNs  int64 // base one-way delays (client→collector, back)
	jitterNs    int64 // max extra queueing per direction
	collectorNs int64 // current collector-clock time
}

// exchange runs one hello/ack round trip and returns the 4-tuple as
// the client would echo it.
func (s *simClock) exchange() (t1, t2, t3, t4 int64) {
	up := s.upNs + s.rng.Int63n(s.jitterNs+1)
	hold := int64(50_000) // server processing between recv and ack
	dn := s.dnNs + s.rng.Int63n(s.jitterNs+1)
	t1 = s.collectorNs + s.skewNs // client stamps its own clock
	t2 = s.collectorNs + up
	t3 = t2 + hold
	t4 = t3 + dn + s.skewNs
	s.collectorNs = t3 + dn + int64(time.Millisecond)
	return
}

// TestClockEstimatorBoundedError: with true offset θ* and asymmetric
// delays, NTP's θ error is bounded by δ/2 ≤ (up+dn+2·jitter)/2. The
// min-delay filter should land well inside that bound.
func TestClockEstimatorBoundedError(t *testing.T) {
	const (
		skew   = int64(25 * time.Millisecond) // client 25ms ahead
		up     = int64(400_000)               // 400µs up
		dn     = int64(900_000)               // 900µs down: asymmetric
		jitter = int64(300_000)
	)
	sim := &simClock{rng: rand.New(rand.NewSource(7)), skewNs: -skew,
		upNs: up, dnNs: dn, jitterNs: jitter, collectorNs: 1_000_000_000}
	var est clockEstimator
	for i := 0; i < 50; i++ {
		est.addSample(sim.exchange())
	}
	off, delay, samples, ok := est.estimate()
	if !ok || samples != 50 {
		t.Fatalf("estimate: ok=%v samples=%d", ok, samples)
	}
	// True offset (collector − client) is +skew. The provable bound is
	// δ/2; asymmetry (dn−up)/2 = 250µs is the systematic floor.
	bound := delay / 2
	err := off - skew
	if err < 0 {
		err = -err
	}
	if err > bound {
		t.Fatalf("offset error %dns exceeds δ/2=%dns (off=%d, true=%d)", err, bound, off, skew)
	}
	if err > int64(time.Millisecond) {
		t.Fatalf("offset error %dns implausibly large for µs-scale delays", err)
	}
}

// TestClockEstimatorMonotonicCorrected: correcting a monotone sequence
// of client send timestamps with the (stable) estimated offset keeps
// them monotone — 10ms send spacing against ≤2ms network jitter.
func TestClockEstimatorMonotonicCorrected(t *testing.T) {
	sim := &simClock{rng: rand.New(rand.NewSource(42)), skewNs: int64(3 * time.Second),
		upNs: 500_000, dnNs: 500_000, jitterNs: int64(2 * time.Millisecond),
		collectorNs: 5_000_000_000}
	var est clockEstimator
	prev := int64(-1 << 62)
	for i := 0; i < 40; i++ {
		t1, t2, t3, t4 := sim.exchange()
		off, ok := est.addSample(t1, t2, t3, t4)
		if !ok {
			t.Fatal("no estimate after first sample")
		}
		corrected := t1 + off // client timestamp mapped onto the collector clock
		if corrected <= prev {
			t.Fatalf("exchange %d: corrected timestamp %d not after %d", i, corrected, prev)
		}
		prev = corrected
		sim.collectorNs += int64(10 * time.Millisecond) // 10ms apart ≫ 2ms jitter
	}
}

// TestClockEstimatorRejectsGarbage: non-causal tuples (clock steps,
// corrupt echoes) must not move the estimate.
func TestClockEstimatorRejectsGarbage(t *testing.T) {
	var est clockEstimator
	est.addSample(1000, 2000, 2100, 3000) // clean: off ≈ +500
	before, _, n, _ := est.estimate()
	if n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
	est.addSample(5000, 2000, 2100, 4000)    // T4 < T1: ack before send
	est.addSample(1000, 9000, 2000, 3000)    // T3 < T2: server time ran backward
	est.addSample(1000, 2000, 999_999, 3000) // hold exceeds RTT
	if off, _, n, _ := est.estimate(); n != 1 || off != before {
		t.Fatalf("garbage moved the estimate: off %d→%d, samples %d", before, off, n)
	}
}

// TestClockOneWay: the corrected one-way latency recovers the true
// uplink delay despite a large skew, and clamps at zero.
func TestClockOneWay(t *testing.T) {
	sim := &simClock{rng: rand.New(rand.NewSource(3)), skewNs: -int64(time.Hour),
		upNs: 700_000, dnNs: 700_000, jitterNs: 1, collectorNs: 10_000_000_000}
	var est clockEstimator
	var lastT1, lastT2 int64
	for i := 0; i < 10; i++ {
		t1, t2, t3, t4 := sim.exchange()
		est.addSample(t1, t2, t3, t4)
		lastT1, lastT2 = t1, t2
	}
	lat, ok := est.oneWay(lastT1, lastT2)
	if !ok {
		t.Fatal("no estimate")
	}
	// Raw t2−t1 is off by an hour; corrected must be ~700µs.
	if lat < 100_000 || lat > 2_000_000 {
		t.Fatalf("one-way latency %dns, want ≈700µs", lat)
	}
	if lat, _ := est.oneWay(lastT2+int64(time.Hour), lastT2); lat != 0 {
		t.Fatalf("future send not clamped to 0: %d", lat)
	}
	var empty clockEstimator
	if _, ok := empty.oneWay(1, 2); ok {
		t.Fatal("estimate from zero samples")
	}
}
