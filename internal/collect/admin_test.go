package collect_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/traceevent"
)

// TestAdminRoutesTable drives every admin endpoint through the route
// table: status codes, Content-Types, 404s on unknown runs, and the
// flight-recorder endpoints added with internal/obs.
func TestAdminRoutesTable(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	sink := obs.NewSink(1024)
	srv := startServer(t, collect.Config{OutDir: t.TempDir(), Obs: sink})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	c := client(srv, "admintab", n)
	for _, s := range snaps {
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.WaitTrace(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		path     string
		wantCode int
		wantCT   string // Content-Type prefix; "" skips the check
		wantBody []string
	}{
		{"index", "/", 200, "text/plain",
			[]string{"/healthz", "/runs", "/runs/{id}", "/runs/{id}/trace",
				"/runs/{id}/recovery", "/runs/{id}/spans", "/debug/flight",
				"/metrics", "/debug/vars", "/runs/{id}/health", "/watch",
				"/runs/{id}/watch"}},
		{"healthz", "/healthz", 200, "application/json", []string{`"ok": true`}},
		{"runs", "/runs", 200, "application/json", []string{`"admintab"`}},
		{"run", "/runs/admintab", 200, "application/json", []string{`"state": "finalized"`}},
		{"run unknown", "/runs/ghost", 404, "", nil},
		{"trace", "/runs/admintab/trace", 200, "application/octet-stream", nil},
		{"trace unknown", "/runs/ghost/trace", 404, "", nil},
		{"recovery", "/runs/admintab/recovery", 200, "application/json", []string{`"recovered"`}},
		{"recovery unknown", "/runs/ghost/recovery", 404, "", nil},
		{"health", "/runs/admintab/health", 200, "application/json",
			[]string{`"phase": "finalized"`, `"ranks_seen": 2`, `"ingest_rate_bps"`}},
		{"health unknown", "/runs/ghost/health", 404, "", nil},
		{"watch unknown run", "/runs/ghost/watch", 404, "", nil},
		{"spans", "/runs/admintab/spans", 200, "application/json",
			[]string{`"run": "admintab"`, "finalize.run"}},
		{"spans unknown", "/runs/ghost/spans", 404, "", nil},
		{"spans trace format", "/runs/admintab/spans?format=trace", 200, "application/json",
			[]string{"traceEvents", "finalize.run"}},
		{"flight", "/debug/flight", 200, "application/json", []string{"traceEvents"}},
		{"flight raw", "/debug/flight?raw=1", 200, "application/json",
			[]string{`"dropped_total"`, `"events"`}},
		{"metrics", "/metrics", 200, "text/plain", []string{
			"pilgrim_collect_ingest_snapshots_total",
			"pilgrim_build_info{version=",
			"pilgrim_collect_uptime_seconds",
			"pilgrim_collect_goroutines",
			"pilgrim_obs_dropped_total",
			"pilgrim_collect_e2e_latency_ns",
			"pilgrim_collect_journal_fsync_lag_ns",
			`pilgrim_collect_run_phase{phase="finalized"}`,
			"pilgrim_collect_watch_subscribers"}},
		{"vars", "/debug/vars", 200, "application/json", nil},
		{"unknown path", "/nope", 404, "", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := admin.Client().Get(admin.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("GET %s = %d, want %d (%s)", tc.path, resp.StatusCode, tc.wantCode, body)
			}
			if tc.wantCT != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), tc.wantCT) {
				t.Fatalf("GET %s Content-Type = %q, want prefix %q",
					tc.path, resp.Header.Get("Content-Type"), tc.wantCT)
			}
			for _, want := range tc.wantBody {
				if !strings.Contains(string(body), want) {
					t.Fatalf("GET %s body missing %q:\n%s", tc.path, want, body)
				}
			}
		})
	}

	// The flight dump must be loadable as Chrome trace-event JSON.
	resp, err := admin.Client().Get(admin.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc traceevent.Doc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/flight is not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/flight has no events after a full run")
	}
}

// TestAdminObsDisabled pins the degraded mode: with no flight recorder
// configured, the obs endpoints answer 503, everything else still works.
func TestAdminObsDisabled(t *testing.T) {
	snaps := traceWorkload(t, 1)
	srv := startServer(t, collect.Config{})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	c := client(srv, "noobs", 1)
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/flight", "/runs/noobs/spans"} {
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("GET %s with obs disabled = %d, want 503", path, resp.StatusCode)
		}
	}
	// An unknown run still 404s before the obs check.
	resp, err := admin.Client().Get(admin.URL + "/runs/ghost/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown run spans = %d, want 404", resp.StatusCode)
	}
}

// TestRunsSortedByID: the run list is deterministic — sorted by run ID
// regardless of creation order.
func TestRunsSortedByID(t *testing.T) {
	snaps := traceWorkload(t, 1)
	srv := startServer(t, collect.Config{})
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if err := client(srv, id, 1).SendSnapshot(snaps[0]); err != nil {
			t.Fatal(err)
		}
	}
	runs := srv.Runs()
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	ids := make([]string, len(runs))
	for i, r := range runs {
		ids[i] = r.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("run list not sorted by ID: %v", ids)
	}
}
