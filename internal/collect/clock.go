package collect

// NTP-style clock-offset estimation over Hello/Ack round trips.
//
// The client timestamps a hello as it leaves (T1); the collector stamps
// receipt (T2) and ack transmit (T3); the client stamps ack receipt
// (T4) and echoes the completed 4-tuple on its next hello. From one
// sample:
//
//	offset θ = ((T2-T1) + (T3-T4)) / 2   (collector clock − client clock)
//	delay  δ = (T4-T1) - (T3-T2)         (round-trip minus server hold)
//
// θ's error is bounded by δ/2, so the estimator keeps a small window of
// recent samples and trusts the one with the smallest delay (the
// classic NTP clock filter): queueing inflates δ symmetrically-ish, and
// the minimum-delay exchange is the least-queued, hence least-skewed.

const clockWindow = 8

type clockSample struct {
	offNs   int64 // θ
	delayNs int64 // δ
}

// clockEstimator is not self-locking; callers hold the owning run's mu.
type clockEstimator struct {
	win   [clockWindow]clockSample
	n     int // samples stored (≤ clockWindow)
	next  int // ring write cursor
	total int64
}

// addSample folds one completed round trip into the filter and returns
// the current best offset estimate. ok is false until at least one
// plausible sample has been seen.
func (c *clockEstimator) addSample(t1, t2, t3, t4 int64) (offNs int64, ok bool) {
	delay := (t4 - t1) - (t3 - t2)
	if t4 < t1 || t3 < t2 || delay < 0 {
		// Non-causal tuple: clock stepped mid-exchange or a corrupt echo.
		return c.estimateOff()
	}
	off := ((t2 - t1) + (t3 - t4)) / 2
	c.win[c.next] = clockSample{offNs: off, delayNs: delay}
	c.next = (c.next + 1) % clockWindow
	if c.n < clockWindow {
		c.n++
	}
	c.total++
	return c.estimateOff()
}

func (c *clockEstimator) estimateOff() (int64, bool) {
	off, _, _, ok := c.estimate()
	return off, ok
}

// estimate returns the minimum-delay sample in the window.
func (c *clockEstimator) estimate() (offNs, delayNs, samples int64, ok bool) {
	if c.n == 0 {
		return 0, 0, 0, false
	}
	best := c.win[0]
	for i := 1; i < c.n; i++ {
		if c.win[i].delayNs < best.delayNs {
			best = c.win[i]
		}
	}
	return best.offNs, best.delayNs, c.total, true
}

// oneWay converts a client send timestamp and a collector receive
// timestamp into a corrected one-way latency, clamped at zero (the
// estimate can overshoot by up to δ/2).
func (c *clockEstimator) oneWay(sendNs, recvNs int64) (int64, bool) {
	off, ok := c.estimateOff()
	if !ok {
		return 0, false
	}
	// recvNs is on the collector clock; subtracting θ maps it onto the
	// client clock, where sendNs lives.
	l := (recvNs - off) - sendNs
	if l < 0 {
		l = 0
	}
	return l, true
}
