package collect_test

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// Tests for the bounded-memory ingest path: payload spilling to the
// run journal under MaxResidentSnapshots, the streamed finalize that
// reads them back, off-lock merge workers, and the queue's
// backpressure contract (slow acks, never drops).

// TestSpilledPayloadsMatchLocalFinalize caps resident snapshots far
// below the world size: most payloads are stripped to journal refs on
// arrival and streamed back at finalize, and the trace must still be
// byte-identical to the in-memory local finalize.
func TestSpilledPayloadsMatchLocalFinalize(t *testing.T) {
	const n = 16
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	for _, limit := range []int{1, 3} {
		srv := startServer(t, collect.Config{OutDir: t.TempDir(), MaxResidentSnapshots: limit})
		c := client(srv, "spilled", n)
		remote, err := c.Collect(snaps)
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		if got := serialize(t, remote); !bytes.Equal(got, want) {
			t.Fatalf("limit=%d: spilled-finalize trace differs from local (%d vs %d bytes)",
				limit, len(got), len(want))
		}
	}
}

// TestMergeWorkerCountIrrelevant runs the same snapshots through
// servers with one and many merge workers: scheduling must never show
// up in the bytes.
func TestMergeWorkerCountIrrelevant(t *testing.T) {
	const n = 12
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	for _, workers := range []int{1, 4} {
		srv := startServer(t, collect.Config{MergeWorkers: workers})
		c := client(srv, "mworkers", n)
		remote, err := c.Collect(snaps)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := serialize(t, remote); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: trace differs from local finalize", workers)
		}
	}
}

// TestResidentSnapshotsBounded checks the health view mid-run: with a
// resident cap of 2, an incomplete run holding 5 accepted snapshots
// reports exactly 2 resident, and the admin health endpoint carries
// the new fields.
func TestResidentSnapshotsBounded(t *testing.T) {
	const n, limit = 6, 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{OutDir: t.TempDir(), MaxResidentSnapshots: limit})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	c := client(srv, "resident", n)
	for _, s := range snaps[:n-1] {
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	h, ok := srv.Health("resident")
	if !ok {
		t.Fatal("no health for live run")
	}
	if h.RanksSeen != n-1 {
		t.Fatalf("ranks seen %d, want %d", h.RanksSeen, n-1)
	}
	if h.ResidentSnapshots != limit {
		t.Fatalf("resident snapshots %d, want %d (cap)", h.ResidentSnapshots, limit)
	}
	if h.MergeBacklog < 0 {
		t.Fatalf("merge backlog %d negative", h.MergeBacklog)
	}
	resp, err := admin.Client().Get(admin.URL + "/runs/resident/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 ||
		!strings.Contains(string(body), `"merge_backlog"`) ||
		!strings.Contains(string(body), `"resident_snapshots"`) {
		t.Fatalf("health endpoint: %d %s", resp.StatusCode, body)
	}

	// Completing the run drains the backlog and finalizes from the
	// spilled payloads.
	if err := c.SendSnapshot(snaps[n-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitTrace(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().MergeBacklog.Load(); got != 0 {
		t.Fatalf("merge backlog gauge %v after finalize, want 0", got)
	}
}

// TestBackpressureNeverDrops floods a single merge worker from many
// concurrent producers: a full merge queue may slow acks, but every
// send must succeed and every snapshot must merge exactly once.
func TestBackpressureNeverDrops(t *testing.T) {
	const n = 48
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	srv := startServer(t, collect.Config{MergeWorkers: 1})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = client(srv, "flood", n).SendSnapshot(snaps[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d send failed under backpressure: %v", i, err)
		}
	}
	got, err := client(srv, "flood", n).WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flooded trace differs from local finalize")
	}
	if merged := srv.Metrics().IngestSnapshots.Load(); merged != n {
		t.Fatalf("merged %d snapshots, want %d", merged, n)
	}
}

// TestStragglerSalvageWithSpill exercises the streamed finalize on the
// salvage path: spilled payloads plus a missing rank must still
// produce a decodable salvage trace naming the straggler.
func TestStragglerSalvageWithSpill(t *testing.T) {
	const n = 5
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{
		OutDir:               t.TempDir(),
		MaxResidentSnapshots: 1,
		StragglerDeadline:    300 * time.Millisecond,
	})
	c := client(srv, "spillstraggler", n)
	for _, s := range snaps {
		if s.Rank == 3 {
			continue
		}
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	f, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if f.Salvage == nil || len(f.Salvage.FailedRanks) != 1 || f.Salvage.FailedRanks[0] != 3 {
		t.Fatalf("salvage info = %+v, want failed rank 3", f.Salvage)
	}
	for r := 0; r < n; r++ {
		calls, err := core.DecodeRank(f, r)
		if err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
		if r != 3 && int64(len(calls)) != snaps[r].Calls {
			t.Fatalf("rank %d decoded %d calls, want %d", r, len(calls), snaps[r].Calls)
		}
	}
}

// TestCrashRecoveryWithSpill restarts a resident-capped daemon mid-run:
// replay re-spills beyond the cap, late ranks finish the run, and the
// trace is byte-identical to an uninterrupted in-memory finalize.
func TestCrashRecoveryWithSpill(t *testing.T) {
	const n = 8
	snaps := traceWorkload(t, n)
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)
	want := serialize(t, local)

	dir := t.TempDir()
	cfg := collect.Config{OutDir: dir, JournalSync: collect.SyncAlways, MaxResidentSnapshots: 2}
	srv := startServer(t, cfg)
	c := client(srv, "spillcrash", n)
	for i := 0; i < n/2; i++ {
		if err := c.SendSnapshot(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	srv.CrashStop()

	srv2 := startServer(t, cfg)
	if rec, ok := srv2.Recovery("spillcrash"); !ok || !rec.Recovered || rec.ReplayedFrames != n/2 {
		t.Fatalf("recovery = %+v ok=%v", rec, ok)
	}
	if h, ok := srv2.Health("spillcrash"); !ok || h.ResidentSnapshots != 2 {
		t.Fatalf("post-replay resident snapshots = %+v (ok=%v), want 2", h, ok)
	}
	c2 := client(srv2, "spillcrash", n)
	for i := n / 2; i < n; i++ {
		if err := c2.SendSnapshot(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c2.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered spilled trace differs from uninterrupted finalize: %d vs %d bytes",
			len(got), len(want))
	}
}
