package collect_test

import (
	"bytes"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// traceWorkload runs a real workload on n simulated ranks with a
// tracer per rank and returns every rank's snapshot — the same state
// the collector path and the local finalize path both start from.
func traceWorkload(t *testing.T, n int) []*core.Snapshot {
	t.Helper()
	tracers := make([]*core.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := 0; i < n; i++ {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	body, err := workloads.Get("stencil2d", 3, n)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.RunOpt(n, mpi.Options{Interceptors: ics}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]*core.Snapshot, n)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	return snaps
}

func serialize(t *testing.T, f *trace.File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func startServer(t *testing.T, cfg collect.Config) *collect.Server {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	srv, err := collect.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func client(srv *collect.Server, runID string, world int) *collect.Client {
	return &collect.Client{
		Addr:  srv.Addr(),
		Run:   collect.RunInfo{RunID: runID, WorldSize: world},
		Retry: collect.RetryPolicy{Seed: 1},
	}
}

// TestStreamingMatchesLocalFinalize is the subsystem's core claim: a
// 16-rank workload's snapshots streamed through the collector (in
// arbitrary per-connection order, merged incrementally on arrival)
// finalize to the exact bytes core.FinalizeSnapshots produces from the
// same snapshots in-process.
func TestStreamingMatchesLocalFinalize(t *testing.T) {
	const n = 16
	snaps := traceWorkload(t, n)

	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir})
	c := client(srv, "byteident", n)
	remote, err := c.Collect(snaps)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := core.FinalizeSnapshots(snaps, core.Options{}, nil)

	remoteBytes := serialize(t, remote)
	localBytes := serialize(t, local)
	if !bytes.Equal(remoteBytes, localBytes) {
		t.Fatalf("streamed trace differs from local finalize: %d vs %d bytes",
			len(remoteBytes), len(localBytes))
	}
	// The trace written under OutDir is that same artifact.
	onDisk, err := os.ReadFile(filepath.Join(dir, "byteident.pilgrim"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, localBytes) {
		t.Fatal("on-disk trace differs from local finalize")
	}
	// And it decodes: every rank's stream reconstructs.
	for r := 0; r < n; r++ {
		lc, err1 := core.DecodeRank(local, r)
		rc, err2 := core.DecodeRank(remote, r)
		if err1 != nil || err2 != nil {
			t.Fatalf("decode rank %d: %v / %v", r, err1, err2)
		}
		if len(lc) != len(rc) {
			t.Fatalf("rank %d stream length %d != %d", r, len(rc), len(lc))
		}
	}
	if got := srv.Metrics().IngestSnapshots.Load(); got != n {
		t.Fatalf("ingest counter %d, want %d", got, n)
	}
}

// TestArrivalOrderIrrelevant streams the same snapshots in reversed
// order into a second run: the merge tree is fixed by world size, so
// the bytes must still match.
func TestArrivalOrderIrrelevant(t *testing.T) {
	const n = 7
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})

	c1 := client(srv, "fwd", n)
	for _, s := range snaps {
		if err := c1.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	c2 := client(srv, "rev", n)
	for i := n - 1; i >= 0; i-- {
		if err := c2.SendSnapshot(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	fwd, err := c1.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	rev, err := c2.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fwd, rev) {
		t.Fatal("arrival order changed the finalized trace")
	}
}

// TestStragglerSalvage holds back one rank past the deadline: the run
// must finalize as a salvage trace naming exactly the missing rank,
// with the reported ranks' call counts intact.
func TestStragglerSalvage(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{StragglerDeadline: 300 * time.Millisecond})
	c := client(srv, "straggler", n)
	for _, s := range snaps {
		if s.Rank == 2 {
			continue // rank 2 never reports
		}
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	f, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if f.Salvage == nil {
		t.Fatal("straggler run finalized without salvage info")
	}
	if len(f.Salvage.FailedRanks) != 1 || f.Salvage.FailedRanks[0] != 2 {
		t.Fatalf("failed ranks %v, want [2]", f.Salvage.FailedRanks)
	}
	if !strings.Contains(f.Salvage.Reason, "straggler deadline") {
		t.Fatalf("reason %q does not name the deadline", f.Salvage.Reason)
	}
	for r := 0; r < n; r++ {
		want := int64(0)
		if r != 2 {
			want = snaps[r].Calls
		}
		if f.Salvage.Calls[r] != want {
			t.Fatalf("salvage calls[%d] = %d, want %d", r, f.Salvage.Calls[r], want)
		}
	}
	// The reported ranks' streams decode; the straggler's is empty.
	for r := 0; r < n; r++ {
		calls, err := core.DecodeRank(f, r)
		if err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
		if r == 2 && len(calls) != 0 {
			t.Fatalf("straggler rank decoded %d calls", len(calls))
		}
		if r != 2 && int64(len(calls)) != snaps[r].Calls {
			t.Fatalf("rank %d decoded %d calls, want %d", r, len(calls), snaps[r].Calls)
		}
	}
	if srv.Metrics().SalvagedRuns.Load() != 1 {
		t.Fatal("salvaged-run counter not incremented")
	}
}

// TestIdempotentResend re-sends every snapshot: the duplicates must be
// acked (not errored) and merged exactly once.
func TestIdempotentResend(t *testing.T) {
	const n = 3
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	c := client(srv, "dup", n)
	// First rank twice before the run completes, then the rest, then
	// everything again after finalize.
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatalf("live duplicate rejected: %v", err)
	}
	for _, s := range snaps[1:] {
		if err := c.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range snaps {
		if err := c.SendSnapshot(s); err != nil {
			t.Fatalf("post-finalize duplicate rejected: %v", err)
		}
	}
	m := srv.Metrics()
	if got := m.IngestSnapshots.Load(); got != n {
		t.Fatalf("merged %d snapshots, want %d", got, n)
	}
	if got := m.DupSnapshots.Load(); got != n+1 {
		t.Fatalf("dedup counter %d, want %d", got, n+1)
	}
}

// flakyDialer fails the first failDials dials outright and resets the
// next failWrites connections mid-stream (the connection dies after a
// few bytes), then behaves. Both failure modes must be absorbed by
// the client's retry loop.
type flakyDialer struct {
	addr       string
	mu         sync.Mutex
	failDials  int
	failWrites int
}

func (d *flakyDialer) dial(string) (net.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failDials > 0 {
		d.failDials--
		return nil, &net.OpError{Op: "dial", Err: io.ErrClosedPipe}
	}
	conn, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	if d.failWrites > 0 {
		d.failWrites--
		return &droppingConn{Conn: conn, budget: 9}, nil
	}
	return conn, nil
}

// droppingConn kills the connection after budget written bytes —
// mid-frame, so the server sees a truncated stream.
type droppingConn struct {
	net.Conn
	budget int64
}

func (c *droppingConn) Write(b []byte) (int, error) {
	rem := atomic.AddInt64(&c.budget, -int64(len(b)))
	if rem < 0 {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	return c.Conn.Write(b)
}

func TestRetryAbsorbsFlakyTransport(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	d := &flakyDialer{addr: srv.Addr(), failDials: 3, failWrites: 3}
	c := client(srv, "flaky", n)
	c.Retry = collect.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 42}
	c.Dial = d.dial
	if err := c.SendAll(snaps); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitTrace(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	// Mid-stream resets may or may not have delivered a full snapshot
	// before dying; dedupe guarantees exactly n merges either way.
	if got := m.IngestSnapshots.Load(); got != n {
		t.Fatalf("merged %d snapshots, want %d", got, n)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	snaps := traceWorkload(t, 1)
	c := &collect.Client{
		Addr:  "127.0.0.1:1", // nothing listens here
		Run:   collect.RunInfo{RunID: "nope", WorldSize: 1},
		Retry: collect.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7},
	}
	start := time.Now()
	err := c.SendSnapshot(snaps[0])
	if err == nil {
		t.Fatal("send to dead address succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %q does not report exhausted attempts", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop took implausibly long")
	}
}

// TestEpochSemantics: a retried producer with a higher epoch restarts
// a finished run; an epoch mismatch against a live run is rejected.
func TestEpochSemantics(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})

	c0 := client(srv, "epochs", n)
	for _, s := range snaps {
		if err := c0.SendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 on the finished run: fresh instance, collects again.
	c1 := client(srv, "epochs", n)
	c1.Run.Epoch = 1
	if err := c1.SendSnapshot(snaps[0]); err != nil {
		t.Fatalf("higher epoch on finished run rejected: %v", err)
	}
	// Epoch 0 now mismatches the live epoch-1 run: rejected, no retry.
	if err := c0.SendSnapshot(snaps[1]); err == nil {
		t.Fatal("stale epoch accepted against live run")
	}
	if srv.Metrics().RejectedSnapshots.Load() == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestCloseUnblocksWaiters: Close() while a waiter is parked on an
// incomplete run (no straggler deadline — the run can never finalize)
// must return promptly; the waiter errors out and its producer falls
// back to local finalize.
func TestCloseUnblocksWaiters(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	c := client(srv, "halfrun", n)
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() {
		w := client(srv, "halfrun", n)
		w.Retry = collect.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 3}
		_, err := w.WaitTrace()
		waitErr <- err
	}()
	// Let the wait frame land and its handler park on the run.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().ActiveConns.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a waiter parked on an incomplete run")
	}
	if err := <-waitErr; err == nil {
		t.Fatal("waiter got a trace from an incomplete run")
	}
}

// TestRetentionEvictsToDisk: after Retention elapses a finalized run's
// trace bytes leave server memory, but waiters and admin fetches are
// still served — from the OutDir copy.
func TestRetentionEvictsToDisk(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{OutDir: t.TempDir(), Retention: 20 * time.Millisecond})
	c := client(srv, "evicted", n)
	remote, err := c.Collect(snaps)
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(t, remote)
	deadline := time.Now().Add(5 * time.Second)
	for !srv.TraceEvicted("evicted") {
		if time.Now().After(deadline) {
			t.Fatal("retention never evicted the finalized run's bytes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, ok := srv.TraceBytes("evicted")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("post-eviction fetch: ok=%v, %d bytes, want %d", ok, len(got), len(want))
	}
	st, ok := srv.Run("evicted")
	if !ok || st.TraceBytes != len(want) {
		t.Fatalf("post-eviction status reports %d trace bytes, want %d", st.TraceBytes, len(want))
	}
	// A late waiter is served from disk too.
	data, err := client(srv, "evicted", n).WaitTrace()
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("post-eviction wait: %v, %d bytes, want %d", err, len(data), len(want))
	}
}

func TestBadRunIDRejected(t *testing.T) {
	snaps := traceWorkload(t, 1)
	srv := startServer(t, collect.Config{OutDir: t.TempDir()})
	for _, id := range []string{"../escape", "a/b", ".hidden"} {
		c := client(srv, id, 1)
		if err := c.SendSnapshot(snaps[0]); err == nil {
			t.Fatalf("run id %q accepted", id)
		}
	}
}

func TestAdminAPI(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	get := func(path string) (int, []byte) {
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, _ := get("/runs/ghost"); code != 404 {
		t.Fatalf("unknown run status %d, want 404", code)
	}

	c := client(srv, "adminrun", n)
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/runs/adminrun"); code != 200 ||
		!strings.Contains(string(body), `"state": "collecting"`) ||
		!strings.Contains(string(body), `"missing"`) {
		t.Fatalf("collecting status: %d %s", code, body)
	}
	if code, _ := get("/runs/adminrun/trace"); code != 409 {
		t.Fatalf("trace of collecting run gave %d, want 409", code)
	}

	if err := c.SendSnapshot(snaps[1]); err != nil {
		t.Fatal(err)
	}
	data, err := c.WaitTrace()
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get("/runs/adminrun/trace"); code != 200 || !bytes.Equal(body, data) {
		t.Fatalf("downloaded trace differs (%d, %d bytes vs %d)", code, len(body), len(data))
	}
	if code, body := get("/runs"); code != 200 || !strings.Contains(string(body), `"adminrun"`) {
		t.Fatalf("run list: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(string(body), "pilgrim_collect_ingest_snapshots_total 2") {
		t.Fatalf("metrics: %d %s", code, body)
	}
}

// TestWaitUnknownRun: waiting on a run nobody announced fails fast
// (permanent error, no retry storm).
func TestWaitUnknownRun(t *testing.T) {
	srv := startServer(t, collect.Config{})
	c := client(srv, "never-announced", 1)
	start := time.Now()
	if _, err := c.WaitTrace(); err == nil {
		t.Fatal("wait on unknown run succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("unknown-run wait retried instead of failing fast")
	}
}

// TestGarbageConnection: raw junk on the ingest port must not wedge or
// crash the server.
func TestGarbageConnection(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(bytes.Repeat([]byte{0xAB}, 4096))
	conn.Close()
	// The server still collects a clean run afterwards.
	c := client(srv, "after-garbage", n)
	if _, err := c.Collect(snaps); err != nil {
		t.Fatal(err)
	}
}
