package collect

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseManifestRoundTrip pins the manifest schema: what the
// journal writes, recovery accepts.
func TestParseManifestRoundTrip(t *testing.T) {
	in := manifest{
		RunID: "run-1", Epoch: 7, World: 16,
		TimingMode: 1, TimingBase: 1.01,
		CreatedSec: 1754600000.25, State: "collecting",
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := parseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if *out != in {
		t.Fatalf("round trip: %+v != %+v", *out, in)
	}
}

// TestParseManifestRejectsHostileInput: recovery reads the journal
// directory with the same distrust as the wire.
func TestParseManifestRejectsHostileInput(t *testing.T) {
	for _, tc := range []struct{ name, body string }{
		{"not json", "not json"},
		{"empty run", `{"run":"","nranks":2,"state":"collecting"}`},
		{"path escape", `{"run":"../evil","nranks":2,"state":"collecting"}`},
		{"dotfile", `{"run":".hidden","nranks":2,"state":"collecting"}`},
		{"zero world", `{"run":"r","nranks":0,"state":"collecting"}`},
		{"huge world", `{"run":"r","nranks":99999999,"state":"collecting"}`},
		{"bad state", `{"run":"r","nranks":2,"state":"exploded"}`},
		{"negative base", `{"run":"r","nranks":2,"state":"collecting","timing_base":-3}`},
	} {
		if _, err := parseManifest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.body)
		}
	}
}

// FuzzManifest: parseManifest must never panic and must only accept
// manifests whose identity fields survive its own validation rules.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"run":"demo","epoch":1,"nranks":8,"timing_mode":0,"timing_base":0,"created_unix":1.7e9,"state":"collecting"}`))
	f.Add([]byte(`{"run":"demo","nranks":1,"state":"finalized"}`))
	f.Add([]byte(`{"run":"x","nranks":2,"state":"salvaged","reason":"deadline"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"run":"../../etc","nranks":2,"state":"collecting"}`))
	f.Add([]byte(`{"run":"r","nranks":-1,"state":"collecting"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		if !runIDOK(m.RunID) || strings.ContainsAny(m.RunID, "/\\") {
			t.Fatalf("accepted hostile run id %q", m.RunID)
		}
		if m.World < 1 {
			t.Fatalf("accepted world size %d", m.World)
		}
		switch m.State {
		case "collecting", "finalized", "salvaged":
		default:
			t.Fatalf("accepted state %q", m.State)
		}
	})
}
