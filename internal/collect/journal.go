package collect

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// The collector's crash-recovery layer: every accepted snapshot frame
// is appended to a per-run journal under OutDir/journal/<run>/, and a
// restarted daemon replays intact frames through the normal idempotent
// ingest path before accepting new connections. The journal reuses the
// CRC32C wire framing verbatim — one (Hello, Snapshot) frame pair per
// accepted snapshot — so replay is literally the ingest loop pointed
// at a file, torn tails are detected by the same checksum that guards
// the network, and the file doubles as a spill format any wire reader
// can consume.

// SyncMode is the journal's fsync policy.
type SyncMode string

const (
	// SyncAlways fsyncs after every appended frame pair; the ack for a
	// snapshot is not sent until its journal entry is durable.
	SyncAlways SyncMode = "always"
	// SyncBatch (the default) fsyncs at most once per batchSyncInterval;
	// a crash of the whole machine can lose the last interval's frames
	// (a daemon crash alone loses nothing — the OS page cache survives).
	SyncBatch SyncMode = "batch"
	// SyncOff never fsyncs; durability is whatever the OS provides.
	SyncOff SyncMode = "off"
)

// batchSyncInterval is SyncBatch's maximum fsync latency.
const batchSyncInterval = 100 * time.Millisecond

// ParseSyncMode validates a -journal-sync flag value ("" = batch).
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case "":
		return SyncBatch, nil
	case SyncAlways, SyncBatch, SyncOff:
		return SyncMode(s), nil
	default:
		return "", fmt.Errorf("collect: unknown journal sync mode %q (want always, batch, or off)", s)
	}
}

const (
	manifestName = "MANIFEST.json"
	framesName   = "frames.jnl"
)

// manifest is a run's durable identity, written when the run is
// created and rewritten when it completes. Recovery trusts nothing
// else: a journal directory without a parseable manifest is skipped.
type manifest struct {
	RunID      string  `json:"run"`
	Epoch      uint64  `json:"epoch"`
	World      int     `json:"nranks"`
	TimingMode uint8   `json:"timing_mode"`
	TimingBase float64 `json:"timing_base"`
	CreatedSec float64 `json:"created_unix"`
	State      string  `json:"state"` // collecting | finalized | salvaged
	Reason     string  `json:"reason,omitempty"`
}

// parseManifest decodes and validates manifest bytes with the same
// distrust as the wire decoders: the journal directory is an input the
// daemon did not necessarily write (crashes truncate, operators edit).
func parseManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("collect: manifest: %w", err)
	}
	if !runIDOK(m.RunID) || len(m.RunID) > wire.MaxRunID {
		return nil, fmt.Errorf("collect: manifest run id %q invalid", m.RunID)
	}
	if m.World < 1 || m.World > wire.MaxWorldSize {
		return nil, fmt.Errorf("collect: manifest world size %d outside [1,%d]", m.World, wire.MaxWorldSize)
	}
	switch m.State {
	case "collecting", "finalized", "salvaged":
	default:
		return nil, fmt.Errorf("collect: manifest state %q unknown", m.State)
	}
	if math.IsNaN(m.TimingBase) || math.IsInf(m.TimingBase, 0) || m.TimingBase < 0 {
		return nil, fmt.Errorf("collect: manifest timing base %v implausible", m.TimingBase)
	}
	if math.IsNaN(m.CreatedSec) || math.IsInf(m.CreatedSec, 0) {
		return nil, fmt.Errorf("collect: manifest created time %v implausible", m.CreatedSec)
	}
	return &m, nil
}

// journal is one run's durable frame log. All file I/O happens on a
// dedicated par.Queue worker, never under the server or run locks; the
// queue's FIFO order preserves append order because entries are
// enqueued under the run lock.
type journal struct {
	dir     string
	mode    SyncMode
	man     manifest
	m       *Metrics
	obs     *obs.Sink
	logf    func(format string, args ...any)
	q       *par.Queue
	lagWarn time.Duration // warn when fsync lag exceeds this; <=0 disables
	keep    bool          // capture mode: retain frames.jnl after finalize

	// nextOff is the file offset the next appended entry will land at.
	// It is caller-synchronized, not atomic: every appendSnapshot for a
	// journal runs under its run's r.mu, which is also what makes the
	// queue's FIFO order match append order. Recovery primes it to the
	// replayed file's intact length before reattaching.
	nextOff int64

	// Queue-goroutine-owned state.
	f     *os.File
	dirty bool

	// Cross-goroutine observability (admin recovery view).
	frames   atomic.Int64
	bytes    atomic.Int64
	broken   atomic.Bool
	flushArm atomic.Bool

	// oldestDirty is the UnixNano timestamp of the first append since
	// the last fsync (0 = clean); health reads it cross-goroutine.
	oldestDirty atomic.Int64
	lastLagWarn atomic.Int64
}

// newJournal builds the run's journal and enqueues its open: MkdirAll,
// create/truncate the frames file (fresh runs truncate so an epoch
// restart of a reused run ID cannot replay stale frames), and persist
// the manifest. No I/O happens on the caller's goroutine.
func newJournal(dir string, mode SyncMode, man manifest, m *Metrics, sink *obs.Sink, logf func(string, ...any), fresh bool, lagWarn time.Duration, keep bool) *journal {
	j := &journal{dir: dir, mode: mode, man: man, m: m, obs: sink, logf: logf, q: par.NewQueue(64), lagWarn: lagWarn, keep: keep}
	j.q.Do(func() {
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			j.fail("create journal dir", err)
			return
		}
		flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
		if fresh {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(filepath.Join(j.dir, framesName), flags, 0o644)
		if err != nil {
			j.fail("open journal", err)
			return
		}
		j.f = f
		if fresh {
			j.writeManifestNow()
		}
	})
	return j
}

func (j *journal) fail(what string, err error) {
	if j.broken.CompareAndSwap(false, true) {
		j.m.JournalErrors.Inc()
		j.logf("run %s: journal %s: %v (run continues memory-only)", j.man.RunID, what, err)
	}
}

// writeManifestNow persists the manifest atomically (tmp + rename +
// fsync). Queue goroutine only.
func (j *journal) writeManifestNow() {
	data, err := json.MarshalIndent(&j.man, "", "  ")
	if err != nil {
		j.fail("encode manifest", err)
		return
	}
	tmp := filepath.Join(j.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		j.fail("write manifest", err)
		return
	}
	_, werr := f.Write(append(data, '\n'))
	if werr == nil && j.mode != SyncOff {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(j.dir, manifestName))
	}
	if werr != nil {
		j.fail("write manifest", werr)
	}
}

// appendSnapshot enqueues one accepted snapshot's (Hello, Snapshot)
// frame pair. It copies both into a private buffer first, so the
// caller's scratch body can be reused immediately. The returned
// (off, length) locate the entry in frames.jnl — valid because
// appends are caller-ordered under r.mu — letting the bounded-memory
// ingest path treat the journal as its payload spill. The returned
// wait function is non-nil only under SyncAlways: the caller must
// invoke it (outside any lock) before acking, and it blocks until the
// entry is fsynced.
func (j *journal) appendSnapshot(h *wire.Hello, body []byte) (off, length int64, wait func()) {
	var buf bytes.Buffer
	buf.Grow(len(body) + 96)
	wire.WriteFrame(&buf, wire.TypeHello, h.Encode())
	wire.WriteFrame(&buf, wire.TypeSnapshot, body)
	entry := buf.Bytes()
	off, length = j.nextOff, int64(len(entry))
	j.nextOff += length
	var done chan struct{}
	if j.mode == SyncAlways {
		done = make(chan struct{})
	}
	ok := j.q.Do(func() {
		if done != nil {
			defer close(done)
		}
		if j.f == nil || j.broken.Load() {
			return
		}
		asp := j.obs.Start("journal", "journal.append").
			WithRun(j.man.RunID, -1, j.man.Epoch).WithAttr("bytes", int64(len(entry)))
		if _, err := j.f.Write(entry); err != nil {
			j.fail("append", err)
			asp.WithStr("result", "error").End()
			return
		}
		asp.End()
		j.oldestDirty.CompareAndSwap(0, time.Now().UnixNano())
		j.frames.Add(1)
		j.bytes.Add(int64(len(entry)))
		j.m.JournalFrames.Inc()
		j.m.JournalBytes.Add(int64(len(entry)))
		switch j.mode {
		case SyncAlways:
			j.fsyncNow()
		case SyncBatch:
			j.dirty = true
			j.armFlush()
		}
	})
	if !ok || done == nil {
		return off, length, nil
	}
	return off, length, func() { <-done }
}

// fsyncNow flushes the frames file. Queue goroutine only.
func (j *journal) fsyncNow() {
	if j.f == nil {
		return
	}
	ssp := j.obs.Start("journal", "journal.fsync").WithRun(j.man.RunID, -1, j.man.Epoch)
	if err := j.f.Sync(); err != nil {
		j.fail("fsync", err)
		ssp.WithStr("result", "error").End()
		return
	}
	ssp.End()
	j.dirty = false
	j.m.JournalFsyncs.Inc()
	if oldest := j.oldestDirty.Swap(0); oldest != 0 {
		lag := time.Now().UnixNano() - oldest
		if lag < 0 {
			lag = 0
		}
		j.m.JournalFsyncLag.Observe(lag)
		j.maybeWarnLag(lag)
	}
}

// lagWarnInterval spaces journal-lag warnings: one line per journal
// per interval no matter how many slow fsyncs land.
const lagWarnInterval = 30 * time.Second

func (j *journal) maybeWarnLag(lagNs int64) {
	if j.lagWarn <= 0 || time.Duration(lagNs) <= j.lagWarn {
		return
	}
	now := time.Now().UnixNano()
	last := j.lastLagWarn.Load()
	if now-last < int64(lagWarnInterval) || !j.lastLagWarn.CompareAndSwap(last, now) {
		return
	}
	j.logf("run %s: journal fsync lag %s exceeds -journal-lag-warn=%s (disk keeping up?)",
		j.man.RunID, time.Duration(lagNs), j.lagWarn)
}

// fsyncLag reports how long the oldest unsynced byte has been waiting
// (0 when clean). Safe from any goroutine; health reads it live.
func (j *journal) fsyncLag(nowNs int64) int64 {
	oldest := j.oldestDirty.Load()
	if oldest == 0 {
		return 0
	}
	if lag := nowNs - oldest; lag > 0 {
		return lag
	}
	return 0
}

// armFlush schedules one batched fsync if none is pending.
func (j *journal) armFlush() {
	if j.flushArm.CompareAndSwap(false, true) {
		time.AfterFunc(batchSyncInterval, func() {
			j.q.Do(func() {
				j.flushArm.Store(false)
				if j.dirty {
					j.fsyncNow()
				}
			})
		})
	}
}

// finalizeRun records the run's terminal state in the manifest and
// drops the frames file — the finalized trace under OutDir is the
// durable artifact now, and a restart re-registers the run from the
// manifest alone. Ordered after every pending append by the queue.
// Capture mode (KeepJournalFrames) skips the drop, fsyncing instead so
// the retained recording is complete.
func (j *journal) finalizeRun(state, reason string) {
	j.q.Do(func() {
		j.man.State = state
		j.man.Reason = reason
		j.writeManifestNow()
		if j.f != nil {
			if j.keep && j.dirty && j.mode != SyncOff {
				j.fsyncNow()
			}
			j.f.Close()
			j.f = nil
		}
		if j.keep {
			return
		}
		if err := os.Remove(filepath.Join(j.dir, framesName)); err != nil && !errors.Is(err, os.ErrNotExist) {
			j.fail("remove frames", err)
		}
	})
	// Drain and stop the worker off the finalize path; appends cannot
	// arrive after finalize (ingest rejects non-collecting runs).
	go j.q.Close()
}

// close flushes and closes the journal gracefully (daemon shutdown:
// the run is still collecting, so the frames must survive for the
// restarted daemon to replay).
func (j *journal) close() {
	j.q.Do(func() {
		if j.f != nil {
			if j.dirty && j.mode != SyncOff {
				j.fsyncNow()
			}
			j.f.Close()
			j.f = nil
		}
	})
	j.q.Close()
}

// crash severs the journal the way SIGKILL would: pending queue writes
// drain (a real kill loses them; their snapshots were never acked
// under SyncAlways, so producers re-send either way), but nothing is
// fsynced and the manifest is left untouched. Test hook.
func (j *journal) crash() {
	j.q.Close()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// status snapshots the journal counters for the admin recovery view.
func (j *journal) status() (frames, bytes int64, broken bool) {
	return j.frames.Load(), j.bytes.Load(), j.broken.Load()
}

// --- recovery ----------------------------------------------------------------

// journalRoot is where run journals live under OutDir.
func journalRoot(outDir string) string { return filepath.Join(outDir, "journal") }

// RecoveryStatus is the admin view of one run's crash-recovery state
// and journal health (GET /runs/{id}/recovery).
type RecoveryStatus struct {
	Recovered      bool    `json:"recovered"`       // run was restored on startup
	FromManifest   bool    `json:"from_manifest"`   // restored as already-finalized (no replay)
	ReplayedFrames int     `json:"replayed_frames"` // snapshot frames replayed through ingest
	ReplayedBytes  int64   `json:"replayed_bytes"`
	TornTail       bool    `json:"torn_tail"` // journal ended in a torn/corrupt frame
	TruncatedBytes int64   `json:"truncated_bytes"`
	JournalPath    string  `json:"journal_path,omitempty"`
	JournalSync    string  `json:"journal_sync,omitempty"`
	JournalFrames  int64   `json:"journal_frames"`
	JournalBytes   int64   `json:"journal_bytes"`
	JournalBroken  bool    `json:"journal_broken,omitempty"`
	DeadlineSec    float64 `json:"straggler_deadline_restored_sec,omitempty"`
}

// recoverJournals scans OutDir/journal on startup and restores every
// run it can: finalized runs re-register from their manifest (serving
// the on-disk trace), collecting runs replay their frame log through
// the idempotent ingest path. Runs before the listener accepts, so a
// reconnecting producer never races its own replay.
func (s *Server) recoverJournals() {
	root := journalRoot(s.cfg.OutDir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return // no journal dir: fresh OutDir
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		s.recoverRun(filepath.Join(root, e.Name()))
	}
}

// recoverRun restores one journal directory. Any malformed state is
// logged and skipped — recovery must never prevent startup.
func (s *Server) recoverRun(jdir string) {
	mdata, err := os.ReadFile(filepath.Join(jdir, manifestName))
	if err != nil {
		s.logf("recover %s: %v (skipped)", jdir, err)
		return
	}
	m, err := parseManifest(mdata)
	if err != nil {
		s.logf("recover %s: %v (skipped)", jdir, err)
		return
	}
	if filepath.Base(jdir) != m.RunID {
		s.logf("recover %s: manifest names run %q (skipped)", jdir, m.RunID)
		return
	}
	if m.State != "collecting" {
		s.recoverFinalized(m, jdir)
		return
	}
	s.replayRun(m, jdir)
}

// recoverFinalized re-registers a completed run from its manifest so
// late waiters, duplicate re-sends, and admin fetches behave exactly
// as they would had the daemon not restarted. The trace itself is
// served from the OutDir file.
func (s *Server) recoverFinalized(m *manifest, jdir string) {
	tracePath := filepath.Join(s.cfg.OutDir, m.RunID+".pilgrim")
	fi, err := os.Stat(tracePath)
	if err != nil {
		// Manifest says done but the trace is gone; if frames survived
		// (crash between trace write and frame removal), replay rebuilds
		// the identical trace. Otherwise there is nothing to restore.
		if _, ferr := os.Stat(filepath.Join(jdir, framesName)); ferr == nil {
			m.State = "collecting"
			s.replayRun(m, jdir)
		} else {
			s.logf("recover run %s: finalized but trace and frames both missing (skipped)", m.RunID)
		}
		return
	}
	r := s.registerRecovered(m)
	r.mu.Lock()
	r.tracePath = tracePath
	r.traceLen = int(fi.Size())
	r.doneAt = time.Now()
	if m.State == "salvaged" {
		r.state = stateSalvaged
		r.reason = m.Reason
		s.enterPhaseLocked(r, phaseSalvaged)
	} else {
		r.state = stateFinalized
		s.enterPhaseLocked(r, phaseFinalized)
	}
	r.recovery = &RecoveryStatus{
		Recovered:    true,
		FromManifest: true,
		JournalPath:  jdir,
		JournalSync:  string(s.cfg.JournalSync),
	}
	close(r.done)
	r.mu.Unlock()
	s.m.RecoveredRuns.Inc()
	s.obs.Start("recover", "recover.manifest").WithRun(m.RunID, -1, m.Epoch).
		WithAttr("trace_bytes", fi.Size()).WithStr("state", m.State).Emit()
	s.logf("run %s: recovered as %s (trace %d bytes on disk)", m.RunID, m.State, fi.Size())
}

// registerRecovered creates the registry entry for a recovered run
// without admission checks — it was admitted before the crash.
func (s *Server) registerRecovered(m *manifest) *run {
	r := newRun(m.RunID, m.World, m.Epoch, m.TimingMode, m.TimingBase, s.cfg.FinalizeWorkers)
	r.opts.ObsSink = s.obs
	r.opts.MaxResidentSnapshots = s.cfg.MaxResidentSnapshots
	r.created = time.Unix(0, int64(m.CreatedSec*1e9))
	s.mu.Lock()
	s.runs[m.RunID] = r
	s.mu.Unlock()
	s.m.RunPhase.With(phaseAdmitted.String()).Add(1)
	return r
}

// countingReader tracks how many bytes a reader consumed, so replay
// knows the offset of the last intact frame pair.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	k, err := c.r.Read(p)
	c.n += int64(k)
	return k, err
}

// replayPair is one intact journaled frame pair plus its location in
// frames.jnl, so replay can hand bounded-memory ingest the same
// (offset, length) spill ref a live append would have produced.
type replayPair struct {
	hello, snap []byte
	off, length int64
}

// replayRun replays a collecting run's frame log through the normal
// ingest path. The first CRC failure, truncated read, or frame that
// does not belong to this run truncates the file there — a torn tail
// is expected after a crash and must never fail the whole run.
func (s *Server) replayRun(m *manifest, jdir string) {
	fpath := filepath.Join(jdir, framesName)
	var pairs []replayPair
	var goodOff, fileSize int64
	torn := false
	if f, err := os.Open(fpath); err == nil {
		if fi, err := f.Stat(); err == nil {
			fileSize = fi.Size()
		}
		cr := &countingReader{r: f}
		for {
			ht, hbody, err := wire.ReadFrame(cr)
			if err != nil {
				torn = !errors.Is(err, io.EOF) || cr.n != goodOff
				break
			}
			st, sbody, err := wire.ReadFrame(cr)
			if err != nil || ht != wire.TypeHello || st != wire.TypeSnapshot {
				torn = true
				break
			}
			h, err := wire.DecodeHello(hbody)
			if err != nil || h.RunID != m.RunID || h.Epoch != m.Epoch || h.WorldSize != m.World {
				torn = true
				break
			}
			pairs = append(pairs, replayPair{hello: hbody, snap: sbody, off: goodOff, length: cr.n - goodOff})
			goodOff = cr.n
		}
		f.Close()
		if goodOff < fileSize {
			if err := os.Truncate(fpath, goodOff); err != nil {
				s.logf("recover run %s: truncate torn tail: %v", m.RunID, err)
			}
			s.m.JournalTornTails.Inc()
		}
	}

	// Register the run, restore its straggler deadline from the
	// manifest's creation time (clamped so reconnecting producers get a
	// post-restart grace window), and reattach the journal in append
	// mode with its counters primed to what the file holds.
	rsp := s.obs.Start("recover", "recover.replay").WithRun(m.RunID, -1, m.Epoch).
		WithAttr("frames", int64(len(pairs))).WithAttr("bytes", goodOff)
	if torn {
		rsp = rsp.WithStr("torn", "true")
	}
	r := s.registerRecovered(m)
	rec := &RecoveryStatus{
		Recovered:      true,
		ReplayedFrames: len(pairs),
		ReplayedBytes:  goodOff,
		TornTail:       torn,
		TruncatedBytes: fileSize - goodOff,
		JournalPath:    jdir,
		JournalSync:    string(s.cfg.JournalSync),
	}
	r.mu.Lock()
	if d := s.cfg.StragglerDeadline; d > 0 {
		remaining := d - time.Since(r.created)
		if min := 2 * time.Second; remaining < min {
			remaining = min
		}
		if remaining > d {
			remaining = d
		}
		r.timer = time.AfterFunc(remaining, func() { s.salvageRun(r, d) })
		rec.DeadlineSec = remaining.Seconds()
	}
	r.recovery = rec
	r.journal = newJournal(jdir, s.cfg.JournalSync, *m, s.m, s.obs, s.logf, false, s.cfg.JournalLagWarn, s.cfg.KeepJournalFrames)
	r.journal.frames.Store(int64(len(pairs)))
	r.journal.bytes.Store(goodOff)
	r.journal.nextOff = goodOff
	r.mu.Unlock()
	s.collecting.Add(1)
	s.m.ActiveRuns.Add(1)
	s.m.RecoveredRuns.Inc()

	for _, p := range pairs {
		h, err := wire.DecodeHello(p.hello)
		if err != nil {
			continue // validated above; unreachable
		}
		ack, _ := s.ingest(h, p.snap, nil, true, [2]int64{p.off, p.length})
		if ack != nil && ack.Status == wire.AckOK {
			s.m.JournalReplayedFrames.Inc()
		}
	}
	rsp.WithAttr("ranks", int64(r.receivedNow())).End()
	s.logf("run %s: recovered (%d frames replayed, torn=%v, %d/%d ranks)",
		m.RunID, len(pairs), torn, r.receivedNow(), m.World)
}
