package collect_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/obs"
)

// sseEvent is one decoded server-sent event from a /watch stream.
type sseEvent struct {
	Type string
	Data map[string]any
}

// readSSE consumes a /watch response body until wantTerminal returns
// true for some event (or the stream ends), returning everything read.
func readSSE(t *testing.T, body *bufio.Scanner, done func(sseEvent) bool) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = map[string]any{}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
		case line == "":
			if cur.Type != "" || cur.Data != nil {
				out = append(out, cur)
				if done != nil && done(cur) {
					return out
				}
				cur = sseEvent{}
			}
		}
	}
	return out
}

// TestWatchStreamsRunLifecycle subscribes to the fleet /watch stream
// before a run starts and asserts the full event sequence: admission,
// phase transitions ending in "finalized", with the terminal phase
// event carrying an attached health snapshot.
func TestWatchStreamsRunLifecycle(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", admin.URL+"/watch", nil)
	resp, err := admin.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("/watch Content-Type %q", ct)
	}

	// Drive a run while the subscriber is attached.
	go func() {
		c := client(srv, "watched", n)
		for _, s := range snaps {
			c.SendSnapshot(s)
		}
	}()

	events := readSSE(t, bufio.NewScanner(resp.Body), func(ev sseEvent) bool {
		return ev.Type == "phase" && ev.Data["phase"] == "finalized"
	})

	var sawAdmitted, sawIngesting, sawFinalized bool
	for _, ev := range events {
		if ev.Data["run"] != "watched" {
			continue
		}
		switch {
		case ev.Type == "run-admitted":
			sawAdmitted = true
		case ev.Type == "phase" && ev.Data["phase"] == "ingesting":
			sawIngesting = true
		case ev.Type == "phase" && ev.Data["phase"] == "finalized":
			sawFinalized = true
			// Terminal phase events carry the final health snapshot.
			h, ok := ev.Data["health"].(map[string]any)
			if !ok {
				t.Fatal("terminal phase event has no health payload")
			}
			if h["ranks_seen"] != float64(n) {
				t.Fatalf("terminal health ranks_seen %v, want %d", h["ranks_seen"], n)
			}
		}
	}
	if !sawAdmitted || !sawIngesting || !sawFinalized {
		t.Fatalf("lifecycle incomplete: admitted=%v ingesting=%v finalized=%v (%d events)",
			sawAdmitted, sawIngesting, sawFinalized, len(events))
	}
}

// TestWatchScopedStream: /runs/{id}/watch sees only its run and opens
// with an initial health event for an already-known run.
func TestWatchScopedStream(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	// Start run A with one of two ranks so it exists but stays live.
	ca := client(srv, "run-a", n)
	if err := ca.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", admin.URL+"/runs/run-a/watch", nil)
	resp, err := admin.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Noise on another run, then finish run A.
	go func() {
		cb := client(srv, "run-b", 1)
		cb.SendSnapshot(snaps[0])
		ca.SendSnapshot(snaps[1])
	}()

	events := readSSE(t, bufio.NewScanner(resp.Body), func(ev sseEvent) bool {
		return ev.Type == "phase" && ev.Data["phase"] == "finalized"
	})
	if len(events) == 0 {
		t.Fatal("scoped watch saw nothing")
	}
	// First event is the initial health snapshot of the existing run.
	if events[0].Type != "health" || events[0].Data["run"] != "run-a" {
		t.Fatalf("first scoped event = %s/%v, want initial health for run-a",
			events[0].Type, events[0].Data["run"])
	}
	for _, ev := range events {
		if ev.Data["run"] != "run-a" {
			t.Fatalf("scoped stream leaked event for run %v", ev.Data["run"])
		}
	}
}

// TestAwaitStragglersPhase: a quiet, incomplete run flips to
// awaiting-stragglers after the idle window, and back to ingesting
// when a straggler shows up.
func TestAwaitStragglersPhase(t *testing.T) {
	const n = 3
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{AwaitStragglers: 50 * time.Millisecond})

	c := client(srv, "slowrun", n)
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	waitPhase := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			h, ok := srv.Health("slowrun")
			if ok && h.Phase == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("run never reached phase %q (at %q)", want, h.Phase)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitPhase("awaiting-stragglers")
	// A straggler arriving flips it back to ingesting (and re-arms).
	if err := c.SendSnapshot(snaps[1]); err != nil {
		t.Fatal(err)
	}
	waitPhase("awaiting-stragglers")
	// The last rank completes the run.
	if err := c.SendSnapshot(snaps[2]); err != nil {
		t.Fatal(err)
	}
	waitPhase("finalized")
}

// TestSpanContextPropagation runs client and collector against the
// same flight recorder and asserts the cross-process link the wire
// trailer exists for: every collector ingest.merge span carries a
// parent_span attribute matching some client.send span's span_id.
func TestSpanContextPropagation(t *testing.T) {
	const n = 4
	snaps := traceWorkload(t, n)
	sink := obs.NewSink(4096)
	srv := startServer(t, collect.Config{Obs: sink})
	c := client(srv, "linked", n)
	c.Obs = sink
	if _, err := c.Collect(snaps); err != nil {
		t.Fatal(err)
	}

	sendIDs := map[int64]bool{}
	for _, ev := range sink.Events() {
		if ev.Name != "client.send" {
			continue
		}
		for _, a := range ev.Attrs[:ev.NAttrs] {
			if a.Key == obs.AttrSpanID {
				sendIDs[a.Int] = true
			}
		}
	}
	if len(sendIDs) != n {
		t.Fatalf("found %d client.send span IDs, want %d", len(sendIDs), n)
	}
	linked := 0
	for _, ev := range sink.Events() {
		if ev.Name != "ingest.merge" && ev.Name != "ingest.decode" {
			continue
		}
		for _, a := range ev.Attrs[:ev.NAttrs] {
			if a.Key == obs.AttrParentSpan {
				if !sendIDs[a.Int] {
					t.Fatalf("%s parent_span %d matches no client.send span", ev.Name, a.Int)
				}
				linked++
			}
		}
	}
	// Every rank's decode and merge span must link back.
	if linked != 2*n {
		t.Fatalf("%d linked ingest spans, want %d", linked, 2*n)
	}

	// And BuildDoc renders those links as Chrome trace flow arrows.
	doc := sink.TraceDoc()
	var starts, finishes int
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "flow" {
			continue
		}
		switch ev.Ph {
		case "s":
			starts++
		case "f":
			finishes++
		}
	}
	if starts == 0 || finishes == 0 {
		t.Fatalf("trace doc has %d flow starts / %d finishes, want both > 0", starts, finishes)
	}

	// The propagated exchange also fed the e2e latency histogram: the
	// echo flush trails the last ack, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().E2eLatency.Snapshot().Count == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Metrics().E2eLatency.Snapshot().Count == 0 {
		t.Fatal("no e2e latency samples after a full obs-enabled run")
	}
	h, _ := srv.Health("linked")
	if h.ClockSamples == 0 {
		t.Fatal("clock estimator saw no samples from a v2 run")
	}
}

// TestStalledWatcherDoesNotBlockIngest attaches a subscriber that
// never reads and pushes a full run through: ingest must complete
// normally and the drop counter accounts for the unread backlog.
func TestStalledWatcherDoesNotBlockIngest(t *testing.T) {
	const n = 8
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{})
	admin := httptest.NewServer(collect.AdminHandler(srv))
	defer admin.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", admin.URL+"/watch", nil)
	resp, err := admin.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read from: the subscriber is stalled

	done := make(chan error, 1)
	go func() {
		_, err := client(srv, "stalled-watcher", n).Collect(snaps)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingest blocked behind a stalled /watch subscriber")
	}
}
