package collect

// TraceEvicted reports whether a finalized run's in-memory trace
// bytes have been dropped by retention (test hook).
func (s *Server) TraceEvicted(id string) bool {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != stateCollecting && r.traceData == nil
}
