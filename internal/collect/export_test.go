package collect

import "time"

// TraceEvicted reports whether a finalized run's in-memory trace
// bytes have been dropped by retention (test hook).
func (s *Server) TraceEvicted(id string) bool {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != stateCollecting && r.traceData == nil
}

// Backoff exposes the client's jittered backoff for bounds tests.
func (c *Client) Backoff(attempt int) time.Duration { return c.backoff(attempt) }

// CrashStop kills the server the way SIGKILL would (test hook): the
// listener and connections are severed and journals are dropped
// without flushing — no fsync, no manifest update — leaving on-disk
// state exactly as a kill at this instant would (written bytes live in
// the page cache; the process-local rest is gone).
func (s *Server) CrashStop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.shutdown)
	for c := range s.conns {
		c.Close()
	}
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, r := range runs {
		r.mu.Lock()
		if r.timer != nil {
			r.timer.Stop()
		}
		if r.evict != nil {
			r.evict.Stop()
		}
		j := r.journal
		r.mu.Unlock()
		if j != nil {
			j.crash()
		}
	}
	s.wg.Wait()
}
