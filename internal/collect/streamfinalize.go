package collect

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// finalizeStreamedLocked (r.mu held) finalizes a run whose snapshot
// payloads were partly dropped under MaxResidentSnapshots: the grammar
// pass streams them back from the run journal in resident-cap-sized
// batches via core.FinalizePremergedStreamed, so peak finalize memory
// stays bounded by the cap while the trace stays byte-identical to the
// all-resident path.
func (s *Server) finalizeStreamedLocked(r *run, info *trace.SalvageInfo) (*trace.File, error) {
	j := r.journal
	if j == nil {
		return nil, fmt.Errorf("%d spilled payloads but no journal", r.spilled)
	}
	// Every spilled ref points into frames.jnl. Barrier the journal
	// queue so all appends are in the file (its worker never takes
	// r.mu, so blocking here cannot deadlock), then read through a
	// private handle — the append handle belongs to the queue worker.
	j.q.Barrier()
	if j.broken.Load() {
		return nil, fmt.Errorf("journal broken with %d payloads spilled to it", r.spilled)
	}
	f, err := os.Open(filepath.Join(j.dir, framesName))
	if err != nil {
		return nil, fmt.Errorf("open journal frames: %w", err)
	}
	defer f.Close()
	fetch := func(start, n int) ([]*core.Snapshot, error) {
		out := make([]*core.Snapshot, n)
		for i := 0; i < n; i++ {
			rank := start + i
			if ref := r.jrefs[rank]; ref[1] != 0 {
				snap, err := readJournalPair(f, ref[0], ref[1], rank, r.id, r.epoch)
				if err != nil {
					return nil, err
				}
				out[i] = snap
				continue
			}
			out[i] = r.snaps[rank]
		}
		return out, nil
	}
	file, _, err := core.FinalizePremergedStreamed(r.world, fetch, r.inc.Result(), r.mergeNs, r.opts, info)
	return file, err
}

// readJournalPair re-reads and CRC-validates one journaled
// (Hello, Snapshot) frame pair at (off, length), returning the decoded
// snapshot. The identity checks fail loudly if the ref points at the
// wrong entry — a bug, not a torn tail, since refs cover only appends
// the journal accepted.
func readJournalPair(f *os.File, off, length int64, rank int, runID string, epoch uint64) (*core.Snapshot, error) {
	sr := io.NewSectionReader(f, off, length)
	typ, body, err := wire.ReadFrame(sr)
	if err != nil {
		return nil, fmt.Errorf("journal rank %d hello: %w", rank, err)
	}
	if typ != wire.TypeHello {
		return nil, fmt.Errorf("journal rank %d: frame type 0x%02x where hello expected", rank, typ)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		return nil, fmt.Errorf("journal rank %d hello: %w", rank, err)
	}
	if h.Rank != rank || h.RunID != runID || h.Epoch != epoch {
		return nil, fmt.Errorf("journal entry at %d holds run %s rank %d epoch %d, expected %s/%d/%d",
			off, h.RunID, h.Rank, h.Epoch, runID, rank, epoch)
	}
	typ, body, err = wire.ReadFrame(sr)
	if err != nil {
		return nil, fmt.Errorf("journal rank %d snapshot: %w", rank, err)
	}
	if typ != wire.TypeSnapshot {
		return nil, fmt.Errorf("journal rank %d: frame type 0x%02x where snapshot expected", rank, typ)
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("journal rank %d snapshot: %w", rank, err)
	}
	return snap, nil
}
