package collect

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func testEvent(i int) WatchEvent {
	return WatchEvent{Type: "phase", Run: "r", Phase: "ingesting", TsNs: int64(i)}
}

// decodeSSE parses one pre-rendered SSE message back into its event.
func decodeSSE(t *testing.T, msg []byte) WatchEvent {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(msg)), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
		t.Fatalf("malformed SSE message: %q", msg)
	}
	var ev WatchEvent
	if err := json.Unmarshal([]byte(lines[1][len("data: "):]), &ev); err != nil {
		t.Fatalf("bad SSE payload: %v", err)
	}
	return ev
}

// TestBroadcastDropOldest: a subscriber that never drains keeps the
// NEWEST messages — the publisher evicts from the front of its mailbox.
func TestBroadcastDropOldest(t *testing.T) {
	m := NewMetrics(nil)
	b := newBroadcaster(m)
	sub := b.subscribe("")
	total := watchSubBuffer + 50
	for i := 0; i < total; i++ {
		b.publish(testEvent(i))
	}
	if got := sub.dropped.Load(); got != 50 {
		t.Fatalf("dropped %d, want 50", got)
	}
	if got := m.WatchDropped.Load(); got != 50 {
		t.Fatalf("WatchDropped metric %d, want 50", got)
	}
	// The mailbox holds exactly the last watchSubBuffer events in order.
	first := decodeSSE(t, <-sub.ch)
	if first.TsNs != 50 {
		t.Fatalf("oldest surviving event ts=%d, want 50", first.TsNs)
	}
	prev := first.TsNs
	for len(sub.ch) > 0 {
		ev := decodeSSE(t, <-sub.ch)
		if ev.TsNs != prev+1 {
			t.Fatalf("gap in survivors: %d after %d", ev.TsNs, prev)
		}
		prev = ev.TsNs
	}
	if prev != int64(total-1) {
		t.Fatalf("newest survivor ts=%d, want %d", prev, total-1)
	}
	b.unsubscribe(sub)
}

// TestBroadcastScoping: a run-scoped subscriber sees only its run;
// fleet subscribers see everything.
func TestBroadcastScoping(t *testing.T) {
	b := newBroadcaster(NewMetrics(nil))
	fleet := b.subscribe("")
	scoped := b.subscribe("run-a")
	b.publish(WatchEvent{Type: "phase", Run: "run-a", TsNs: 1})
	b.publish(WatchEvent{Type: "phase", Run: "run-b", TsNs: 2})
	if len(fleet.ch) != 2 {
		t.Fatalf("fleet subscriber got %d events, want 2", len(fleet.ch))
	}
	if len(scoped.ch) != 1 {
		t.Fatalf("scoped subscriber got %d events, want 1", len(scoped.ch))
	}
	if ev := decodeSSE(t, <-scoped.ch); ev.Run != "run-a" {
		t.Fatalf("scoped subscriber saw run %q", ev.Run)
	}
}

// TestBroadcastUnsubscribe: gauge tracks subscriber count, double
// unsubscribe is harmless, and a removed subscriber gets nothing.
func TestBroadcastUnsubscribe(t *testing.T) {
	m := NewMetrics(nil)
	b := newBroadcaster(m)
	s1, s2 := b.subscribe(""), b.subscribe("")
	if got := m.WatchSubscribers.Load(); got != 2 {
		t.Fatalf("subscribers gauge %v, want 2", got)
	}
	b.unsubscribe(s1)
	b.unsubscribe(s1) // idempotent
	if got := m.WatchSubscribers.Load(); got != 1 {
		t.Fatalf("subscribers gauge %v after unsubscribe, want 1", got)
	}
	b.publish(testEvent(1))
	if len(s1.ch) != 0 {
		t.Fatal("unsubscribed mailbox received an event")
	}
	if len(s2.ch) != 1 {
		t.Fatal("remaining subscriber missed the event")
	}
	b.unsubscribe(s2)
	if got := m.WatchSubscribers.Load(); got != 0 {
		t.Fatalf("subscribers gauge %v at end, want 0", got)
	}
}

// TestBroadcastConcurrentPublish hammers publish from many goroutines
// against subscribing/unsubscribing/draining peers; -race is the
// assertion.
func TestBroadcastConcurrentPublish(t *testing.T) {
	b := newBroadcaster(NewMetrics(nil))
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.publish(testEvent(i))
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub := b.subscribe("")
				for j := 0; j < 10; j++ {
					select {
					case <-sub.ch:
					default:
					}
				}
				b.unsubscribe(sub)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkPublishNoSubscribers is the ingest-path cost when nobody is
// watching: one atomic load, no marshaling.
func BenchmarkPublishNoSubscribers(b *testing.B) {
	br := newBroadcaster(NewMetrics(nil))
	ev := testEvent(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.publish(ev)
	}
}

// BenchmarkPublishStalledSubscriber is the ingest-path cost with a
// subscriber that never reads: marshal + drop-oldest, still bounded
// and non-blocking.
func BenchmarkPublishStalledSubscriber(b *testing.B) {
	br := newBroadcaster(NewMetrics(nil))
	br.subscribe("") // never drained
	ev := testEvent(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.publish(ev)
	}
}
