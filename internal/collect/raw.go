package collect

import (
	"fmt"
	"net"
	"time"

	"github.com/hpcrepro/pilgrim/internal/wire"
)

// RawConn is the frame-level send path under Client: one collector
// connection that ships pre-encoded frames verbatim. The normal client
// encodes a *core.Snapshot per send; a replayer already holds the
// exact wire bytes (captured journal entries, possibly re-keyed), so
// decoding and re-encoding them would only cost CPU and risk
// byte-level drift. Loadgen keeps thousands of these open, one per
// amplified stream.
type RawConn struct {
	conn    net.Conn
	timeout time.Duration
}

// DialRaw opens a raw frame connection to a collector's ingest
// address. timeout bounds the dial and every subsequent read/write
// (0 means 30s).
func DialRaw(addr string, timeout time.Duration) (*RawConn, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &RawConn{conn: conn, timeout: timeout}, nil
}

// SendFrame writes one pre-encoded frame (header + body + CRC) as-is.
func (rc *RawConn) SendFrame(frame []byte) error {
	rc.conn.SetWriteDeadline(time.Now().Add(rc.timeout))
	_, err := rc.conn.Write(frame)
	return err
}

// SendPair ships a pre-encoded (hello, snapshot) frame pair and reads
// the collector's reply. Exactly one of ack and nack is non-nil on a
// nil error; a TypeError reply or transport failure returns an error
// (the connection should then be dropped, matching serveConn, which
// admits nothing further on it).
func (rc *RawConn) SendPair(helloFrame, snapFrame []byte) (*wire.Ack, *wire.Nack, error) {
	rc.conn.SetWriteDeadline(time.Now().Add(rc.timeout))
	if _, err := rc.conn.Write(helloFrame); err != nil {
		return nil, nil, fmt.Errorf("send hello: %w", err)
	}
	if _, err := rc.conn.Write(snapFrame); err != nil {
		return nil, nil, fmt.Errorf("send snapshot: %w", err)
	}
	rc.conn.SetReadDeadline(time.Now().Add(rc.timeout))
	typ, body, err := wire.ReadFrame(rc.conn)
	if err != nil {
		return nil, nil, fmt.Errorf("read reply: %w", err)
	}
	switch typ {
	case wire.TypeAck:
		ack, err := wire.DecodeAck(body)
		return ack, nil, err
	case wire.TypeNack:
		nack, err := wire.DecodeNack(body)
		return nil, nack, err
	case wire.TypeError:
		return nil, nil, fmt.Errorf("collector error: %s", body)
	default:
		return nil, nil, fmt.Errorf("unexpected reply frame 0x%02x", typ)
	}
}

// WaitTrace blocks until runID finalizes at the collector and returns
// the serialized trace bytes. The read legitimately idles until the
// run completes (bounded server-side by the straggler deadline), so
// the read deadline is cleared, matching Client.WaitTrace.
func (rc *RawConn) WaitTrace(runID string) ([]byte, error) {
	rc.conn.SetWriteDeadline(time.Now().Add(rc.timeout))
	if err := wire.WriteFrame(rc.conn, wire.TypeWait, (&wire.Wait{RunID: runID}).Encode()); err != nil {
		return nil, fmt.Errorf("send wait: %w", err)
	}
	rc.conn.SetReadDeadline(time.Time{})
	typ, body, err := wire.ReadFrame(rc.conn)
	if err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	switch typ {
	case wire.TypeTrace:
		return body, nil
	case wire.TypeError:
		return nil, fmt.Errorf("collector error: %s", body)
	default:
		return nil, fmt.Errorf("unexpected reply frame 0x%02x", typ)
	}
}

// Close drops the connection.
func (rc *RawConn) Close() error { return rc.conn.Close() }
