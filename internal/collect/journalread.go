package collect

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/hpcrepro/pilgrim/internal/wire"
)

// Exported read access to captured run journals. The journal doubles
// as a complete wire-format recording of a run's ingest stream (the
// package comment in journal.go sells exactly that), and this file is
// the consumer side: pilgrim-loadgen replays the raw frames against a
// live collector, pilgrim-dump inspects them. Both get the daemon's
// own torn-tail semantics — a truncated final entry is reported, never
// fatal — without reimplementing the framing.

// JournalManifest is the exported view of a journal's MANIFEST.json.
type JournalManifest struct {
	RunID      string
	Epoch      uint64
	World      int
	TimingMode uint8
	TimingBase float64
	CreatedSec float64
	State      string // collecting | finalized | salvaged
	Reason     string
}

// JournalEntry is one captured ingest event: the (Hello, Snapshot)
// frame pair exactly as it crossed the wire, framing and CRC trailers
// included, plus the decoded hello for pacing and bookkeeping. The
// snapshot body is NOT decoded — replay ships it verbatim.
type JournalEntry struct {
	Hello    *wire.Hello
	HelloRaw []byte // complete hello frame (header + body + CRC)
	SnapRaw  []byte // complete snapshot frame
}

// Bytes is the entry's total on-wire size.
func (e *JournalEntry) Bytes() int64 {
	return int64(len(e.HelloRaw) + len(e.SnapRaw))
}

// JournalReader streams one run journal's frame pairs in capture
// order. After Next returns io.EOF, Torn reports whether the file
// ended in a torn or corrupt entry (expected after a crash) and how
// many trailing bytes were unreadable.
type JournalReader struct {
	dir  string
	man  JournalManifest
	f    *os.File
	cr   *countingReader
	size int64
	good int64 // offset of the last intact frame pair
	done bool
	torn bool
}

// OpenJournal opens the journal directory dir (the per-run directory
// holding MANIFEST.json and frames.jnl). A journal whose frames were
// dropped at finalize (the default outside capture mode) opens fine
// and yields zero entries.
func OpenJournal(dir string) (*JournalReader, error) {
	mdata, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("collect: open journal: %w", err)
	}
	m, err := parseManifest(mdata)
	if err != nil {
		return nil, fmt.Errorf("collect: open journal %s: %w", dir, err)
	}
	jr := &JournalReader{
		dir: dir,
		man: JournalManifest{
			RunID: m.RunID, Epoch: m.Epoch, World: m.World,
			TimingMode: m.TimingMode, TimingBase: m.TimingBase,
			CreatedSec: m.CreatedSec, State: m.State, Reason: m.Reason,
		},
	}
	f, err := os.Open(filepath.Join(dir, framesName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			jr.done = true // finalized without capture mode: no frames left
			return jr, nil
		}
		return nil, fmt.Errorf("collect: open journal frames: %w", err)
	}
	if fi, err := f.Stat(); err == nil {
		jr.size = fi.Size()
	}
	jr.f = f
	jr.cr = &countingReader{r: f}
	return jr, nil
}

// Dir returns the journal directory the reader was opened on.
func (jr *JournalReader) Dir() string { return jr.dir }

// Manifest returns the journal's parsed manifest.
func (jr *JournalReader) Manifest() JournalManifest { return jr.man }

// Next returns the next intact frame pair, or io.EOF when the journal
// is exhausted. A torn or corrupt tail ends the stream with io.EOF and
// is reported through Torn — identical semantics to the daemon's own
// crash-recovery replay.
func (jr *JournalReader) Next() (*JournalEntry, error) {
	if jr.done {
		return nil, io.EOF
	}
	ht, hraw, hbody, err := wire.ReadFrameRaw(jr.cr)
	if err != nil {
		jr.finish(!errors.Is(err, io.EOF) || jr.cr.n != jr.good)
		return nil, io.EOF
	}
	st, sraw, _, err := wire.ReadFrameRaw(jr.cr)
	if err != nil || ht != wire.TypeHello || st != wire.TypeSnapshot {
		jr.finish(true)
		return nil, io.EOF
	}
	h, err := wire.DecodeHello(hbody)
	if err != nil || h.RunID != jr.man.RunID || h.Epoch != jr.man.Epoch || h.WorldSize != jr.man.World {
		jr.finish(true)
		return nil, io.EOF
	}
	jr.good = jr.cr.n
	return &JournalEntry{Hello: h, HelloRaw: hraw, SnapRaw: sraw}, nil
}

// ReadAll drains the reader and returns every intact entry.
func (jr *JournalReader) ReadAll() ([]*JournalEntry, error) {
	var out []*JournalEntry
	for {
		e, err := jr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Torn reports whether the journal ended in a torn or corrupt entry,
// and how many trailing bytes were unreadable. Meaningful once Next
// has returned io.EOF.
func (jr *JournalReader) Torn() (torn bool, truncatedBytes int64) {
	return jr.torn, jr.size - jr.good
}

func (jr *JournalReader) finish(torn bool) {
	jr.done = true
	jr.torn = torn
	if jr.f != nil {
		jr.f.Close()
		jr.f = nil
	}
}

// Close releases the underlying file. Safe after EOF.
func (jr *JournalReader) Close() error {
	jr.finish(jr.torn)
	return nil
}

// FindJournals resolves path to the run journal directories beneath
// it, sorted by run ID. Accepts a single run's journal directory (one
// holding MANIFEST.json), a journal root full of them (OutDir/journal),
// or a collector OutDir (journal/ resolved automatically). Directories
// without a manifest are skipped, matching recovery's distrust.
func FindJournals(path string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(path, manifestName)); err == nil {
		return []string{path}, nil
	}
	root := path
	if _, err := os.Stat(journalRoot(path)); err == nil {
		root = journalRoot(path)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("collect: find journals: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		d := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(d, manifestName)); err == nil {
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("collect: no run journals under %s", path)
	}
	sort.Strings(dirs)
	return dirs, nil
}
