package collect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// AdminHandler exposes the collector's admin API:
//
//	GET /healthz          liveness + uptime
//	GET /runs             every run's status, newest first
//	GET /runs/{id}           one run's status
//	GET /runs/{id}/trace     the finalized trace (application/octet-stream)
//	GET /runs/{id}/recovery  journal health + crash-recovery detail
//	GET /metrics          Prometheus text for the collector's registry
//	GET /debug/vars       expvar-compatible JSON
func AdminHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"ok":          true,
			"ingest_addr": s.Addr(),
			"uptime_sec":  time.Since(s.start).Seconds(),
			"runs":        len(s.Runs()),
		})
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Runs())
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Run(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown run", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		data, ok := s.TraceBytes(id)
		if !ok {
			st, exists := s.Run(id)
			if exists && st.State == "collecting" {
				http.Error(w, "run still collecting", http.StatusConflict)
			} else {
				http.Error(w, "unknown run", http.StatusNotFound)
			}
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", id+".pilgrim"))
		w.Write(data)
	})
	mux.HandleFunc("GET /runs/{id}/recovery", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Recovery(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown run", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.m.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.m.Reg.WriteExpvar(w)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("pilgrim-collectd admin\n  /healthz            liveness\n  /runs               run list\n  /runs/{id}          run status\n  /runs/{id}/trace    finalized trace\n  /runs/{id}/recovery journal + recovery detail\n  /metrics            Prometheus text\n  /debug/vars         expvar JSON\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
