package collect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/hpcrepro/pilgrim/internal/obs"
)

// defaultRunsLimit caps GET /runs when no ?limit= is given: enough for
// any hand-driven fleet, small enough that an amplified soak with
// thousands of synthetic runs cannot turn the endpoint into a
// megabyte-scale response. The response stays a plain JSON array; the
// pre-truncation match count rides in the X-Pilgrim-Total-Runs header.
const defaultRunsLimit = 200

// adminRoute is one admin API endpoint: the Go 1.22 ServeMux pattern it
// registers under and the one-line description the index page shows.
// The help text at GET / is generated from this table, so the two can
// never drift apart.
type adminRoute struct {
	pattern string // method + path, e.g. "GET /runs/{id}"
	desc    string
	handler http.HandlerFunc
}

// adminRoutes builds the route table for one server.
func adminRoutes(s *Server) []adminRoute {
	return []adminRoute{
		{"GET /healthz", "liveness + uptime", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, map[string]any{
				"ok":          true,
				"ingest_addr": s.Addr(),
				"uptime_sec":  time.Since(s.start).Seconds(),
				"runs":        len(s.Runs()),
			})
		}},
		{"GET /runs", "run list (sorted by run ID; ?limit=N, ?prefix=P)", func(w http.ResponseWriter, r *http.Request) {
			q := r.URL.Query()
			// The default cap keeps the endpoint usable when loadgen
			// amplification creates thousands of runs; ?limit=0 lifts it.
			limit := defaultRunsLimit
			if v := q.Get("limit"); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
					return
				}
				limit = n
			}
			out, total := s.RunsFiltered(q.Get("prefix"), limit)
			w.Header().Set("X-Pilgrim-Total-Runs", strconv.Itoa(total))
			writeJSON(w, out)
		}},
		{"GET /runs/{id}", "run status", func(w http.ResponseWriter, r *http.Request) {
			st, ok := s.Run(r.PathValue("id"))
			if !ok {
				http.Error(w, "unknown run", http.StatusNotFound)
				return
			}
			writeJSON(w, st)
		}},
		{"GET /runs/{id}/trace", "finalized trace", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			data, ok := s.TraceBytes(id)
			if !ok {
				st, exists := s.Run(id)
				if exists && st.State == "collecting" {
					http.Error(w, "run still collecting", http.StatusConflict)
				} else {
					http.Error(w, "unknown run", http.StatusNotFound)
				}
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%q", id+".pilgrim"))
			w.Write(data)
		}},
		{"GET /runs/{id}/recovery", "journal + recovery detail", func(w http.ResponseWriter, r *http.Request) {
			st, ok := s.Recovery(r.PathValue("id"))
			if !ok {
				http.Error(w, "unknown run", http.StatusNotFound)
				return
			}
			writeJSON(w, st)
		}},
		{"GET /runs/{id}/health", "live health: phase, progress, rates, clock offset", func(w http.ResponseWriter, r *http.Request) {
			h, ok := s.Health(r.PathValue("id"))
			if !ok {
				http.Error(w, "unknown run", http.StatusNotFound)
				return
			}
			writeJSON(w, h)
		}},
		{"GET /watch", "live fleet event stream (SSE: lifecycle + health deltas)", func(w http.ResponseWriter, r *http.Request) {
			s.serveWatch(w, r, "")
		}},
		{"GET /runs/{id}/watch", "live event stream scoped to one run (SSE)", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if _, ok := s.Run(id); !ok {
				http.Error(w, "unknown run", http.StatusNotFound)
				return
			}
			s.serveWatch(w, r, id)
		}},
		{"GET /runs/{id}/spans", "pipeline span timeline (?format=trace for Perfetto)", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if _, ok := s.Run(id); !ok {
				http.Error(w, "unknown run", http.StatusNotFound)
				return
			}
			if s.obs == nil {
				http.Error(w, "flight recorder disabled (-obs=false)", http.StatusServiceUnavailable)
				return
			}
			evs := s.obs.EventsForRun(id)
			if r.URL.Query().Get("format") == "trace" {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.Header().Set("Content-Disposition",
					fmt.Sprintf("attachment; filename=%q", id+"-spans.json"))
				obs.BuildDoc(evs, 0).Write(w)
				return
			}
			writeJSON(w, map[string]any{
				"run":    id,
				"count":  len(evs),
				"events": evs,
			})
		}},
		{"GET /debug/flight", "flight recorder dump as trace-event JSON (?raw=1 for raw events)", func(w http.ResponseWriter, r *http.Request) {
			if s.obs == nil {
				http.Error(w, "flight recorder disabled (-obs=false)", http.StatusServiceUnavailable)
				return
			}
			if r.URL.Query().Get("raw") == "1" {
				writeJSON(w, map[string]any{
					"dropped_total": s.obs.Dropped(),
					"events":        s.obs.Events(),
				})
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			s.obs.TraceDoc().Write(w)
		}},
		{"GET /metrics", "Prometheus text", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.m.Reg.WritePrometheus(w)
		}},
		{"GET /debug/vars", "expvar JSON", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			s.m.Reg.WriteExpvar(w)
		}},
	}
}

// adminHelp renders the index page from the route table.
func adminHelp(routes []adminRoute) []byte {
	width := 0
	for _, rt := range routes {
		if n := len(rt.pattern) - len("GET "); n > width {
			width = n
		}
	}
	out := []byte("pilgrim-collectd admin\n")
	for _, rt := range routes {
		path := rt.pattern[len("GET "):]
		out = append(out, fmt.Sprintf("  %-*s  %s\n", width, path, rt.desc)...)
	}
	return out
}

// AdminHandler exposes the collector's admin API. The endpoint list
// (and the help text GET / serves) comes from adminRoutes.
func AdminHandler(s *Server) http.Handler {
	routes := adminRoutes(s)
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.pattern, rt.handler)
	}
	help := adminHelp(routes)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(help)
	})
	return mux
}

// watchHeartbeat spaces SSE keepalive comments so idle proxies don't
// reap a quiet stream.
const watchHeartbeat = 15 * time.Second

// serveWatch streams watch events to one SSE subscriber. The
// subscriber gets an initial health snapshot of every matching run,
// then live events as they happen; a subscriber that stops reading is
// fed drop-oldest from its bounded mailbox and never slows ingest.
func (s *Server) serveWatch(w http.ResponseWriter, req *http.Request, runID string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := s.watch.subscribe(runID)
	defer s.watch.unsubscribe(sub)

	// Initial state: one health event per matching run, so a fresh
	// subscriber renders the fleet before the first live transition.
	now := time.Now().UnixNano()
	for _, h := range s.Healths() {
		if runID != "" && h.Run != runID {
			continue
		}
		ev := WatchEvent{Type: "health", Run: h.Run, Phase: h.Phase, TsNs: now, Health: &h}
		if _, err := w.Write(ev.sseMessage()); err != nil {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	ctx := req.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.shutdown:
			return
		case msg := <-sub.ch:
			if _, err := w.Write(msg); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
