// Package collect is Pilgrim's networked trace collection subsystem:
// a TCP collector server that ingests per-rank tracer snapshots
// (framed by internal/wire), merges them incrementally as they
// arrive, and finalizes each run into the same trace file an
// in-process MPI_Finalize merge would have produced — byte for byte —
// plus the client that ships snapshots with retry, backoff, and
// idempotent re-send.
//
// The paper's §3.5 inter-process compression assumes every rank's
// grammar and CST meet inside one job at MPI_Finalize. The collector
// decouples that: producers stream their crash-consistent snapshots
// out, and the log₂P pairwise merge tree runs server-side, each tree
// node merging the moment both children have reported
// (cst.Incremental). Ranks that never report are degraded to salvage
// semantics at a straggler deadline, mirroring core.SalvageFinalize.
package collect

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/par"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// Config configures a collector server.
type Config struct {
	// Listen is the TCP ingest address (host:port; port 0 picks a free
	// one — read it back with Addr).
	Listen string
	// OutDir, when non-empty, is where finalized traces are written as
	// <runID>.pilgrim.
	OutDir string
	// StragglerDeadline bounds how long a run may collect after its
	// first snapshot arrives; when it fires with ranks missing, the run
	// is finalized as a salvage trace (missing ranks listed as failed,
	// their streams empty). Zero means wait forever.
	StragglerDeadline time.Duration
	// IdleTimeout bounds how long a connection may sit between frames
	// (default 5 minutes).
	IdleTimeout time.Duration
	// Retention bounds how long a finalized run's trace bytes stay in
	// server memory once OutDir holds a disk copy; after it elapses the
	// in-memory bytes are dropped and waiters/admin fetches are served
	// from the file, so a long-running daemon does not grow without
	// bound. Zero means a 10-minute default; negative retains forever.
	// Runs without a disk copy (no OutDir, or the write failed) are
	// never evicted.
	Retention time.Duration
	// FinalizeWorkers bounds the worker pool used when finalizing a
	// run (relabel fan-out, grammar hashing, timing packing). 0 means
	// GOMAXPROCS, 1 forces sequential; output bytes are identical for
	// every setting.
	FinalizeWorkers int
	// JournalSync selects the run journal's fsync policy (always,
	// batch, off; "" means batch). The journal itself is active
	// whenever OutDir is set: every accepted snapshot is appended to
	// OutDir/journal/<run>/ so a restarted daemon can replay in-flight
	// runs instead of losing them.
	JournalSync SyncMode
	// MaxRuns caps how many runs may be collecting at once; a hello
	// that would create one more is refused with a NACK and the
	// producer falls back to local finalize. Zero means unlimited.
	MaxRuns int
	// MaxRunBytes caps the snapshot body bytes accepted into one run;
	// the snapshot that would exceed it is NACKed. Zero means
	// unlimited.
	MaxRunBytes int64
	// MaxConns caps concurrent ingest connections; excess connections
	// receive a NACK frame and are closed without being served. Zero
	// means unlimited.
	MaxConns int
	// AwaitStragglers is how long a still-incomplete run may sit with no
	// arrivals before its health phase flips from "ingesting" to
	// "awaiting-stragglers" (an operator signal only — the straggler
	// deadline still governs salvage). Zero means a 2s default; negative
	// disables the transition.
	AwaitStragglers time.Duration
	// JournalLagWarn logs one rate-limited warning when a journal fsync
	// lands later than this after its oldest queued byte. Zero disables.
	JournalLagWarn time.Duration
	// MergeWorkers bounds the shared pool that drains per-run merge
	// queues: snapshots are decoded on their connection goroutine and
	// their CST merges run here, off the run lock, on independent merge
	// tree subtrees (cst.Incremental.AddConcurrent). 0 means GOMAXPROCS.
	MergeWorkers int
	// MaxResidentSnapshots caps how many snapshots per run keep their
	// grammar payloads in memory. Beyond the cap an accepted snapshot's
	// payloads are dropped once its journal entry is appended (the CST
	// table is consumed by the merge either way), and finalize streams
	// them back from the run journal in MaxResidentSnapshots-sized
	// batches — peak finalize memory stays O(cap) instead of O(world)
	// with byte-identical output. Requires OutDir (the journal is the
	// spill); runs without a healthy journal keep everything resident.
	// Zero means unbounded.
	MaxResidentSnapshots int
	// KeepJournalFrames retains each run's frames.jnl after finalize
	// instead of dropping it. Normal operation deletes the frames (the
	// finalized trace is the durable artifact); capture mode keeps them
	// so the journal doubles as a complete wire-format recording that
	// pilgrim-loadgen can replay and pilgrim-dump can inspect.
	KeepJournalFrames bool
	// Metrics receives the collector's instrumentation; nil creates a
	// private registry (reachable via Server.Metrics).
	Metrics *Metrics
	// Obs, when non-nil, is the pipeline flight recorder: connection,
	// ingest, journal, recovery, and finalize spans are recorded into
	// it, and the same sink is threaded through core.Options so the
	// finalize stages land on the same timeline. Nil disables tracing
	// at one pointer check per site.
	Obs *obs.Sink
	// Logf, when non-nil, receives one-line operational logs.
	Logf func(format string, args ...any)
}

// runState is a run's lifecycle position.
type runState int

const (
	stateCollecting runState = iota
	stateFinalized           // every rank reported
	stateSalvaged            // straggler deadline fired with ranks missing
)

func (s runState) String() string {
	switch s {
	case stateCollecting:
		return "collecting"
	case stateFinalized:
		return "finalized"
	default:
		return "salvaged"
	}
}

// run is one trace collection in flight: the per-rank snapshots
// received so far and the incremental merge over them.
type run struct {
	id      string
	world   int
	epoch   uint64
	opts    core.Options
	created time.Time

	// mergeq is the run's bounded merge-on-arrival queue: ingest
	// enqueues each decoded table here (blocking when full — that and
	// the shared pool are the backpressure that slows a producer's ack
	// instead of dropping), then submits one drain task to the server
	// pool. backlog mirrors len(mergeq) for health and metrics.
	mergeq  chan mergeItem
	backlog atomic.Int64

	mu       sync.Mutex
	snaps    []*core.Snapshot // by rank; nil until reported
	received int
	merged   int        // ranks whose CST merge has completed
	spilled  int        // snapshots whose payloads were dropped to the journal
	jrefs    [][2]int64 // rank -> journal (offset, length); nil until first spill
	bytes    int64      // snapshot body bytes accepted (admission accounting)
	inc      *cst.Incremental
	mergeNs  int64
	// pendingInfo carries salvage metadata from salvageRun to the merge
	// worker whose merge completes the run and triggers finalize.
	pendingInfo *trace.SalvageInfo
	timer       *time.Timer
	evict       *time.Timer // retention: drops traceData once on disk
	state       runState
	reason      string // salvage reason, "" otherwise
	traceData   []byte // nil after eviction; reload via tracePath
	traceLen    int
	tracePath   string
	doneAt      time.Time
	done        chan struct{}   // closed once the run finalizes
	journal     *journal        // nil when OutDir is unset
	recovery    *RecoveryStatus // non-nil when restored from a journal

	// Live health model (health.go). phase's zero value is
	// phaseAdmitted, matching a freshly created run.
	phase         runPhase
	lastArrival   time.Time
	ewmaBps       float64     // EWMA ingest rate, bytes/sec
	idle          *time.Timer // flips ingesting → awaiting-stragglers
	clock         clockEstimator
	lastHealthPub time.Time // rate limit for watch health-delta events
}

// mergeItem is one decoded snapshot's CST handed from its connection
// goroutine to a merge worker. qsp is started at enqueue and ended at
// dequeue, so the ingest.queue_wait span measures true queue time.
type mergeItem struct {
	rank   int
	table  *cst.Table
	spanID uint64
	qsp    obs.Span
}

// mergeQueueDepth bounds each run's merge-on-arrival queue. A full
// queue blocks the enqueueing connection goroutine — backpressure,
// never a drop.
const mergeQueueDepth = 64

// newRun builds a run's in-memory state; shared by live creation
// (runFor) and journal recovery (registerRecovered).
func newRun(id string, world int, epoch uint64, timingMode uint8, timingBase float64, workers int) *run {
	return &run{
		id:      id,
		world:   world,
		epoch:   epoch,
		opts:    core.Options{TimingMode: timingMode, TimingBase: timingBase, FinalizeWorkers: workers},
		created: time.Now(),
		snaps:   make([]*core.Snapshot, world),
		inc:     cst.NewIncremental(world),
		mergeq:  make(chan mergeItem, mergeQueueDepth),
		done:    make(chan struct{}),
	}
}

// receivedNow reads the rank count without holding the lock long.
func (r *run) receivedNow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received
}

// traceLocked returns the run's trace bytes (r.mu held), reloading
// the on-disk copy when the in-memory one was evicted by retention.
func (r *run) traceLocked() []byte {
	if r.traceData != nil || r.tracePath == "" {
		return r.traceData
	}
	data, err := os.ReadFile(r.tracePath)
	if err != nil {
		return nil
	}
	return data
}

// Server is the collector daemon's core: TCP ingest plus the run
// registry. HTTP administration is layered on via AdminHandler.
type Server struct {
	cfg   Config
	m     *Metrics
	obs   *obs.Sink
	ln    net.Listener
	watch *broadcaster // /watch SSE fan-out; publish never blocks ingest
	pool  *par.Pool    // shared merge workers draining per-run mergeqs

	// closing gates the finalize trigger during shutdown: merge workers
	// drain their queues but leave in-flight runs unfinalized, matching
	// Close's contract.
	closing atomic.Bool

	mu       sync.Mutex
	runs     map[string]*run
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan struct{} // closed in Close; unblocks parked waiters
	wg       sync.WaitGroup
	start    time.Time

	// collecting counts runs in stateCollecting for MaxRuns admission:
	// incremented under s.mu where runs are created, decremented by
	// finalize (which holds only r.mu), hence atomic.
	collecting atomic.Int64
}

// overLimit is an admission rejection; the wire carries it as a Nack
// frame so the client knows to fall back rather than retry.
type overLimit struct {
	code   uint8
	detail string
}

func (e *overLimit) Error() string {
	return fmt.Sprintf("over limit (%s): %s", wire.NackCodeString(e.code), e.detail)
}

// Start listens on cfg.Listen and serves ingest connections in the
// background until Close.
func Start(cfg Config) (*Server, error) {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.AwaitStragglers == 0 {
		cfg.AwaitStragglers = 2 * time.Second
	}
	mode, err := ParseSyncMode(string(cfg.JournalSync))
	if err != nil {
		return nil, err
	}
	cfg.JournalSync = mode
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		m:        cfg.Metrics,
		obs:      cfg.Obs,
		ln:       ln,
		runs:     make(map[string]*run),
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
		start:    time.Now(),
	}
	if s.m == nil {
		s.m = NewMetrics(nil)
	}
	s.m.registerProcess(s.start, s.obs)
	s.watch = newBroadcaster(s.m)
	s.pool = par.NewPool(cfg.MergeWorkers, mergeQueueDepth)
	// Recovery runs to completion before the listener accepts, so a
	// reconnecting producer can never race the replay of its own run.
	if s.cfg.OutDir != "" {
		s.recoverJournals()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound ingest address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the server's instrumentation bundle.
func (s *Server) Metrics() *Metrics { return s.m }

// Obs returns the server's flight recorder (nil when tracing is off).
func (s *Server) Obs() *obs.Sink { return s.obs }

// Close stops accepting, severs open connections, and waits for
// handlers to drain. In-flight runs are left unfinalized (producers
// fall back to local finalize when the collector vanishes).
func (s *Server) Close() error {
	// Merge workers consult closing before triggering finalize: queued
	// merges still drain (every enqueued item has or will have a drain
	// task), but a run completing during shutdown stays unfinalized.
	s.closing.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Unblock every handler parked in serveWait on an incomplete run:
	// closing its connection does not wake a goroutine blocked on the
	// run's done channel, and with the run timers about to stop, an
	// incomplete run would never finalize — wg.Wait would hang forever.
	close(s.shutdown)
	for c := range s.conns {
		c.Close()
	}
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, r := range runs {
		r.mu.Lock()
		if r.timer != nil {
			r.timer.Stop()
		}
		if r.evict != nil {
			r.evict.Stop()
		}
		if r.idle != nil {
			r.idle.Stop()
		}
		j := r.journal
		r.mu.Unlock()
		if j != nil {
			// Graceful shutdown flushes the journal so the next daemon
			// replays the run exactly as left; the manifest stays
			// "collecting" on purpose.
			j.close()
		}
	}
	// Handler goroutines may be parked in mergeq sends or pool.Submit;
	// they need live workers to drain, so the pool closes only after
	// every handler has exited. Close then runs the remaining drain
	// tasks to completion before returning.
	s.wg.Wait()
	s.pool.Close()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.m.AdmissionRejectedConns.Inc()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				nack := &wire.Nack{Code: wire.NackMaxConns, Detail: fmt.Sprintf("collector at max-conns=%d", s.cfg.MaxConns)}
				wire.WriteFrame(conn, wire.TypeNack, nack.Encode())
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.m.ActiveConns.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn runs one connection's frame loop. A connection carries
// any sequence of (Hello, Snapshot) pairs — one per rank the producer
// ships over it — and/or a Wait that blocks until its run finalizes.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	csp := s.obs.Start("collect", "conn")
	frames := int64(0)
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.m.ActiveConns.Add(-1)
		csp.WithAttr("frames", frames).End()
	}()
	// One decode scratch per connection: the frame-body buffer and
	// decoder cursor are reused across every frame this producer ships,
	// so steady-state ingest allocates only what each decoded snapshot
	// itself retains.
	var hello *wire.Hello
	var helloRecvNs int64
	var sc wire.DecodeScratch
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		typ, body, err := sc.ReadFrame(conn)
		if err != nil {
			return // EOF, deadline, or garbage — drop the connection
		}
		recvNs := time.Now().UnixNano()
		frames++
		switch typ {
		case wire.TypeHello:
			h, err := wire.DecodeHello(body)
			if err != nil {
				s.m.RejectedSnapshots.Inc()
				s.sendError(conn, err.Error())
				return
			}
			s.m.IngestBytes.Add(int64(len(body)))
			// A v2 hello may echo the completed timing 4-tuple of an
			// earlier exchange; every echo feeds the run's clock-offset
			// estimator, including the trailing flush hello a client
			// sends with no snapshot behind it.
			s.feedClockEcho(h)
			hello, helloRecvNs = h, recvNs
		case wire.TypeSnapshot:
			if hello == nil {
				s.sendError(conn, "snapshot before hello")
				return
			}
			s.m.IngestBytes.Add(int64(len(body)))
			ack, nack := s.ingest(hello, body, &sc, false, [2]int64{})
			v2 := hello.Version >= 2
			hello = nil
			if nack != nil {
				// Admission rejection: tell the producer precisely why so
				// it can fall back to local finalize, then drop the
				// connection — nothing further on it would be admitted.
				s.send(conn, wire.TypeNack, nack.Encode())
				return
			}
			if v2 {
				// Server-side NTP timestamps: when the hello was read (T2)
				// and when its ack leaves (T3). A v1 peer's strict decoder
				// rejects trailing bytes, so only v2 hellos earn them.
				ack.RecvNs = helloRecvNs
				ack.SendNs = time.Now().UnixNano()
			}
			if err := s.send(conn, wire.TypeAck, ack.Encode()); err != nil {
				return
			}
		case wire.TypeWait:
			w, err := wire.DecodeWait(body)
			if err != nil {
				s.sendError(conn, err.Error())
				return
			}
			if !s.serveWait(conn, w.RunID) {
				return
			}
		default:
			s.sendError(conn, fmt.Sprintf("unexpected frame type 0x%02x", typ))
			return
		}
	}
}

func (s *Server) send(conn net.Conn, typ byte, body []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
	return wire.WriteFrame(conn, typ, body)
}

func (s *Server) sendError(conn net.Conn, msg string) {
	s.send(conn, wire.TypeError, []byte(msg))
}

// runIDOK rejects identifiers that could escape OutDir or bloat the
// registry; the wire layer already bounds the length.
func runIDOK(id string) bool {
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return id != "" && id[0] != '.'
}

// runFor resolves (creating if needed) the run a hello addresses.
// Journal replay passes fromJournal to bypass admission: a recovered
// run was admitted before the crash.
func (s *Server) runFor(h *wire.Hello, fromJournal bool) (*run, error) {
	if !runIDOK(h.RunID) {
		return nil, fmt.Errorf("invalid run id %q", h.RunID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("collector shutting down")
	}
	r, ok := s.runs[h.RunID]
	if ok {
		r.mu.Lock()
		sameEpoch := r.epoch == h.Epoch
		finished := r.state != stateCollecting
		r.mu.Unlock()
		if sameEpoch {
			if r.world != h.WorldSize {
				return nil, fmt.Errorf("run %s world size %d != announced %d", h.RunID, r.world, h.WorldSize)
			}
			return r, nil
		}
		// A higher epoch restarts a finished run (a producer retrying
		// after a salvage); it can never mutate one mid-collection.
		if !finished || h.Epoch < r.epoch {
			return nil, fmt.Errorf("run %s is epoch %d; refusing epoch %d", h.RunID, r.epoch, h.Epoch)
		}
		// Quiesce the finished epoch's journal before the new epoch's
		// journal opens the same directory: its queue may still hold the
		// finalize cleanup (manifest rewrite, frame removal), which must
		// not land on top of the successor's files.
		r.mu.Lock()
		old := r.journal
		r.mu.Unlock()
		if old != nil {
			old.q.Close()
		}
	}
	if !fromJournal && s.cfg.MaxRuns > 0 && int(s.collecting.Load()) >= s.cfg.MaxRuns {
		return nil, &overLimit{code: wire.NackMaxRuns,
			detail: fmt.Sprintf("collector at max-runs=%d", s.cfg.MaxRuns)}
	}
	r = newRun(h.RunID, h.WorldSize, h.Epoch, h.TimingMode, h.TimingBase, s.cfg.FinalizeWorkers)
	r.opts.ObsSink = s.obs
	r.opts.MaxResidentSnapshots = s.cfg.MaxResidentSnapshots
	if d := s.cfg.StragglerDeadline; d > 0 {
		r.timer = time.AfterFunc(d, func() { s.salvageRun(r, d) })
	}
	if s.cfg.OutDir != "" {
		man := manifest{
			RunID: h.RunID, Epoch: h.Epoch, World: h.WorldSize,
			TimingMode: h.TimingMode, TimingBase: h.TimingBase,
			CreatedSec: float64(r.created.UnixNano()) / 1e9,
			State:      "collecting",
		}
		// fresh=true truncates any stale frames: an epoch restart of a
		// reused run ID must never replay the previous epoch's journal.
		r.journal = newJournal(filepath.Join(journalRoot(s.cfg.OutDir), h.RunID),
			s.cfg.JournalSync, man, s.m, s.obs, s.logf, true, s.cfg.JournalLagWarn, s.cfg.KeepJournalFrames)
	}
	s.runs[h.RunID] = r
	s.collecting.Add(1)
	s.m.ActiveRuns.Add(1)
	s.m.RunPhase.With(phaseAdmitted.String()).Add(1)
	s.watch.publish(WatchEvent{Type: "run-admitted", Run: r.id,
		Phase: phaseAdmitted.String(), TsNs: time.Now().UnixNano()})
	s.logf("run %s: created (world=%d epoch=%d)", r.id, r.world, r.epoch)
	return r, nil
}

// ingest decodes one snapshot on the calling (connection) goroutine,
// registers it under the run lock, and hands its CST to the run's
// merge queue — the merge itself runs on the shared worker pool, off
// r.mu (see mergeSnapshot). Returns either the ack or the admission
// NACK to send (exactly one is non-nil). Re-sends of a (run, rank,
// epoch) already accepted ack as duplicates — the idempotency that
// makes both client retry and journal replay safe. fromJournal marks
// recovery replay: admission is bypassed, the frame is not
// re-journaled (jref locates the existing journal entry), and the
// merge runs inline so recovery completes before the listener accepts.
func (s *Server) ingest(h *wire.Hello, body []byte, sc *wire.DecodeScratch, fromJournal bool, jref [2]int64) (*wire.Ack, *wire.Nack) {
	dsp := s.obs.Start("collect", "ingest.decode").
		WithRun(h.RunID, h.Rank, h.Epoch).WithAttr("bytes", int64(len(body))).
		WithParent(h.SpanID)
	var snap *core.Snapshot
	var err error
	if sc != nil {
		snap, err = sc.DecodeSnapshot(body)
	} else {
		snap, err = wire.DecodeSnapshot(body)
	}
	if err != nil {
		s.m.RejectedSnapshots.Inc()
		dsp.WithStr("result", "reject").End()
		return &wire.Ack{Status: wire.AckError, Detail: err.Error()}, nil
	}
	dsp.End()
	if snap.Rank != h.Rank {
		s.m.RejectedSnapshots.Inc()
		s.obs.Start("collect", "ingest.reject").WithRun(h.RunID, h.Rank, h.Epoch).
			WithStr("reason", "rank-mismatch").Emit()
		return &wire.Ack{Status: wire.AckError, Detail: fmt.Sprintf("snapshot rank %d != hello rank %d", snap.Rank, h.Rank)}, nil
	}
	r, err := s.runFor(h, fromJournal)
	if err != nil {
		var ol *overLimit
		if errors.As(err, &ol) {
			s.m.AdmissionRejectedRuns.Inc()
			s.obs.Start("collect", "ingest.nack").WithRun(h.RunID, h.Rank, h.Epoch).
				WithStr("code", wire.NackCodeString(ol.code)).Emit()
			return nil, &wire.Nack{Code: ol.code, Detail: ol.detail}
		}
		s.m.RejectedSnapshots.Inc()
		s.obs.Start("collect", "ingest.reject").WithRun(h.RunID, h.Rank, h.Epoch).
			WithStr("reason", "bad-run").Emit()
		return &wire.Ack{Status: wire.AckError, Detail: err.Error()}, nil
	}
	r.mu.Lock()
	// The duplicate check precedes the state check so a retry whose ack
	// was lost still succeeds after the run finalized. That is safe only
	// because runFor keyed the run by (id, epoch): a new logical run
	// reusing the id arrives with a fresh epoch and restarts the run
	// instead of landing here.
	if r.snaps[snap.Rank] != nil {
		r.mu.Unlock()
		s.m.DupSnapshots.Inc()
		s.obs.Start("collect", "ingest.dup").WithRun(h.RunID, h.Rank, h.Epoch).Emit()
		return &wire.Ack{Status: wire.AckDuplicate, Detail: fmt.Sprintf("rank %d already merged", snap.Rank)}, nil
	}
	if r.state != stateCollecting {
		// A run recovered from a finalized manifest has no snapshots in
		// memory, so the duplicate check above cannot catch re-sends whose
		// ack the crash ate. Every rank of a finalized run reported by
		// definition: ack them as duplicates, same as before the crash.
		if r.state == stateFinalized && r.recovery != nil && r.recovery.FromManifest {
			r.mu.Unlock()
			s.m.DupSnapshots.Inc()
			s.obs.Start("collect", "ingest.dup").WithRun(h.RunID, h.Rank, h.Epoch).
				WithStr("reason", "pre-restart").Emit()
			return &wire.Ack{Status: wire.AckDuplicate, Detail: fmt.Sprintf("rank %d merged before daemon restart", snap.Rank)}, nil
		}
		r.mu.Unlock()
		s.m.RejectedSnapshots.Inc()
		s.obs.Start("collect", "ingest.reject").WithRun(h.RunID, h.Rank, h.Epoch).
			WithStr("reason", "run-finished").Emit()
		return &wire.Ack{Status: wire.AckError, Detail: fmt.Sprintf("run %s already %s", r.id, r.state)}, nil
	}
	if !fromJournal && s.cfg.MaxRunBytes > 0 && r.bytes+int64(len(body)) > s.cfg.MaxRunBytes {
		r.mu.Unlock()
		s.m.AdmissionRejectedSnaps.Inc()
		s.obs.Start("collect", "ingest.nack").WithRun(h.RunID, h.Rank, h.Epoch).
			WithStr("code", wire.NackCodeString(wire.NackRunBytes)).Emit()
		return nil, &wire.Nack{Code: wire.NackRunBytes,
			Detail: fmt.Sprintf("run %s at max-run-bytes=%d", r.id, s.cfg.MaxRunBytes)}
	}
	r.snaps[snap.Rank] = snap
	r.received++
	r.bytes += int64(len(body))
	s.m.IngestSnapshots.Inc()
	s.noteArrivalLocked(r, int64(len(body)), time.Now())
	// Journal the accepted frame pair. The append is enqueued under
	// r.mu (preserving order) but all file I/O runs on the journal's
	// queue worker; under SyncAlways the ack below is withheld — via
	// jwait, outside the lock — until the entry is fsynced.
	var jwait func()
	joff, jlen := jref[0], jref[1]
	if r.journal != nil && !fromJournal {
		joff, jlen, jwait = r.journal.appendSnapshot(h, body)
	}
	// The CST merge happens off this lock: capture the decoded table
	// for the merge queue and drop the snapshot's reference, so the
	// merge owns it exclusively (finalize never reads leaf tables).
	table := snap.Table
	snap.Table = nil
	// Bounded-memory mode: beyond the resident cap, the snapshot's
	// grammar payloads live only in the journal until finalize streams
	// them back (finalizeStreamedLocked).
	if limit := s.cfg.MaxResidentSnapshots; limit > 0 && jlen > 0 && r.journal != nil &&
		!r.journal.broken.Load() && r.received-r.spilled > limit {
		if r.jrefs == nil {
			r.jrefs = make([][2]int64, r.world)
		}
		r.jrefs[snap.Rank] = [2]int64{joff, jlen}
		r.spilled++
		snap.Grammar, snap.DurGrammar, snap.IntGrammar = nil, nil, nil
		snap.RawSigs, snap.RawTimes = nil, nil
	}
	r.mu.Unlock()
	if fromJournal {
		// Recovery replay merges synchronously: the run must be fully
		// merged (and possibly finalized) before the listener accepts.
		s.mergeSnapshot(r, snap.Rank, table, h.SpanID)
		return &wire.Ack{Status: wire.AckOK}, nil
	}
	// Merge-on-arrival: enqueue the item first, then submit one drain
	// task — every submitted task is guaranteed a waiting item, so pool
	// workers never block on an empty queue. Both the bounded queue and
	// the bounded pool push back by blocking this connection goroutine,
	// which slows the producer's ack; frames are never dropped.
	qsp := s.obs.Start("collect", "ingest.queue_wait").
		WithRun(h.RunID, h.Rank, h.Epoch).WithParent(h.SpanID)
	r.backlog.Add(1)
	s.m.MergeBacklog.Add(1)
	r.mergeq <- mergeItem{rank: snap.Rank, table: table, spanID: h.SpanID, qsp: qsp}
	if !s.pool.Submit(func() { s.drainMerge(r) }) {
		s.drainMerge(r) // pool already closed (shutdown): drain inline
	}
	if jwait != nil {
		jwait()
	}
	return &wire.Ack{Status: wire.AckOK}, nil
}

// drainMerge consumes exactly one queued merge item for r. It is
// submitted to the pool only after its item is enqueued, so the
// receive never blocks on an empty queue.
func (s *Server) drainMerge(r *run) {
	it := <-r.mergeq
	r.backlog.Add(-1)
	s.m.MergeBacklog.Add(-1)
	it.qsp.End()
	s.mergeSnapshot(r, it.rank, it.table, it.spanID)
}

// mergeSnapshot folds one rank's CST into the run's merge tree off the
// run lock (cst.Incremental.AddConcurrent; independent subtrees merge
// in parallel, the table is absorbed without cloning) and, when it
// completes the last of world merges, finalizes the run. The finalize
// trigger is sound under concurrency because every worker increments
// r.merged under r.mu after its merge returns: the worker that
// observes merged == world also observes every other merge's writes.
func (s *Server) mergeSnapshot(r *run, rank int, t *cst.Table, parent uint64) {
	msp := s.obs.Start("collect", "ingest.merge").
		WithRun(r.id, rank, r.epoch).WithParent(parent)
	t0 := time.Now()
	_, err := r.inc.AddConcurrent(rank, t, true)
	mergeNs := time.Since(t0).Nanoseconds()
	if err != nil {
		// Unreachable: ingest and salvage dedup by r.snaps under r.mu
		// before feeding a rank. Log rather than corrupt the count.
		msp.WithStr("result", "reject").End()
		s.logf("run %s: merge rank %d: %v", r.id, rank, err)
		return
	}
	msp.End()
	s.m.MergeNs.Observe(mergeNs)
	r.mu.Lock()
	r.mergeNs += mergeNs
	r.merged++
	if r.merged == r.world && r.state == stateCollecting && !s.closing.Load() {
		// finalizeLocked's journal manifest update is enqueued after
		// every append (all were enqueued before their merges); queue
		// order keeps the file consistent.
		s.finalizeLocked(r, r.pendingInfo)
	}
	r.mu.Unlock()
}

// salvageRun fires at the straggler deadline: missing ranks become
// empty failed streams fed through the same concurrent merge path the
// live ranks use, and whichever merge completes the run finalizes it
// as a salvage trace (pendingInfo) — the same degradation
// core.SalvageFinalize applies to crashed ranks.
func (s *Server) salvageRun(r *run, deadline time.Duration) {
	r.mu.Lock()
	if r.state != stateCollecting || r.received == r.world {
		// Fully received: any still-queued merges finish on the workers
		// and the last one finalizes normally.
		r.mu.Unlock()
		return
	}
	s.obs.Start("collect", "salvage").WithRun(r.id, -1, r.epoch).
		WithAttr("received", int64(r.received)).WithAttr("world", int64(r.world)).Emit()
	info := &trace.SalvageInfo{
		Reason: fmt.Sprintf("collector: straggler deadline (%s): %d/%d ranks reported", deadline, r.received, r.world),
		Calls:  make([]int64, r.world),
	}
	var missing []int
	for rank := 0; rank < r.world; rank++ {
		if r.snaps[rank] != nil {
			info.Calls[rank] = r.snaps[rank].Calls
			continue
		}
		info.FailedRanks = append(info.FailedRanks, int32(rank))
		missing = append(missing, rank)
		// Registering the placeholder under r.mu dedups a straggler that
		// arrives after this point: it acks as a duplicate, exactly as it
		// would after finalize.
		r.snaps[rank] = &core.Snapshot{
			Rank:    rank,
			Grammar: sequitur.Serialized(sequitur.New().Serialize()),
		}
	}
	r.pendingInfo = info
	r.mu.Unlock()
	for _, rank := range missing {
		s.mergeSnapshot(r, rank, cst.New(), 0)
	}
}

// finalizeLocked (r.mu held) runs the back half of the §3.5 merge and
// publishes the trace: bytes for waiters, a file under OutDir.
func (s *Server) finalizeLocked(r *run, info *trace.SalvageInfo) {
	if r.timer != nil {
		r.timer.Stop()
	}
	if r.idle != nil {
		r.idle.Stop()
	}
	s.enterPhaseLocked(r, phaseFinalizing)
	fsp := s.obs.Start("collect", "finalize.run").WithRun(r.id, -1, r.epoch).
		WithAttr("ranks", int64(r.world))
	t0 := time.Now()
	var file *trace.File
	var ferr error
	if r.spilled > 0 {
		file, ferr = s.finalizeStreamedLocked(r, info)
	} else {
		file, _ = core.FinalizePremerged(r.snaps, r.inc.Result(), r.mergeNs, r.opts, info)
	}
	var buf bytes.Buffer
	serializeFailed := false
	if ferr != nil {
		// Spilled payloads could not be read back (journal lost after its
		// append was accepted); the run completes with no trace bytes,
		// the same degradation as a serialize failure.
		serializeFailed = true
		r.reason = fmt.Sprintf("finalize reload failed: %v", ferr)
		s.logf("run %s: finalize reload failed: %v", r.id, ferr)
	} else if _, err := file.WriteTo(&buf); err != nil {
		// Serialization of a just-merged trace cannot fail short of OOM;
		// record the run as salvaged-with-no-bytes rather than crash.
		serializeFailed = true
		r.reason = fmt.Sprintf("serialize failed: %v", err)
		s.logf("run %s: serialize failed: %v", r.id, err)
	}
	r.traceData = buf.Bytes()
	r.traceLen = len(r.traceData)
	if info != nil {
		r.state = stateSalvaged
		r.reason = info.Reason
		s.m.SalvagedRuns.Inc()
	} else {
		r.state = stateFinalized
		s.m.FinalizedRuns.Inc()
	}
	r.doneAt = time.Now()
	if s.cfg.OutDir != "" {
		path := filepath.Join(s.cfg.OutDir, r.id+".pilgrim")
		// When journaling, sync the trace before the journal's manifest
		// flips to a terminal state and the frames are dropped — the
		// trace file is the run's only durable artifact after that.
		sync := r.journal != nil && s.cfg.JournalSync != SyncOff
		if err := writeFileMaybeSync(path, r.traceData, sync); err != nil {
			s.logf("run %s: write %s: %v", r.id, path, err)
		} else {
			r.tracePath = path
		}
	}
	// Retention: with the trace safely on disk, the in-memory copy is a
	// cache — drop it after a while so the registry never grows by the
	// full trace size per run for the daemon's lifetime.
	if r.tracePath != "" {
		retain := s.cfg.Retention
		if retain == 0 {
			retain = 10 * time.Minute
		}
		if retain > 0 {
			r.evict = time.AfterFunc(retain, func() { s.evictRun(r) })
		}
	}
	if r.journal != nil {
		r.journal.finalizeRun(r.state.String(), r.reason)
	}
	s.collecting.Add(-1)
	s.m.ActiveRuns.Add(-1)
	s.m.TraceBytesOut.Add(int64(len(r.traceData)))
	s.m.FinalizeNs.Observe(time.Since(t0).Nanoseconds())
	switch {
	case serializeFailed:
		s.enterPhaseLocked(r, phaseFailed)
	case info != nil:
		s.enterPhaseLocked(r, phaseSalvaged)
	default:
		s.enterPhaseLocked(r, phaseFinalized)
	}
	fsp.WithAttr("trace_bytes", int64(len(r.traceData))).WithStr("state", r.state.String()).End()
	s.logf("run %s: %s (%d ranks, %d bytes)", r.id, r.state, r.world, len(r.traceData))
	close(r.done)
}

// writeFileMaybeSync writes path atomically enough for the journal's
// purposes, fsyncing before close when sync is set.
func writeFileMaybeSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil && sync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// evictRun drops a finalized run's in-memory trace bytes; the on-disk
// copy under OutDir keeps serving waiters and admin fetches.
func (s *Server) evictRun(r *run) {
	r.mu.Lock()
	if r.state != stateCollecting && r.tracePath != "" {
		r.traceData = nil
	}
	r.mu.Unlock()
}

// serveWait blocks until the run finalizes, then sends its trace.
// Returns false when the connection should be dropped.
func (s *Server) serveWait(conn net.Conn, runID string) bool {
	s.mu.Lock()
	r, ok := s.runs[runID]
	s.mu.Unlock()
	if !ok {
		s.sendError(conn, fmt.Sprintf("unknown run %q", runID))
		return false
	}
	// Clear the read deadline: the waiter legitimately idles until the
	// run completes (bounded by the straggler deadline, if any).
	conn.SetReadDeadline(time.Time{})
	select {
	case <-r.done:
	case <-s.shutdown:
		// Close() must not wait on an incomplete run; the producer's
		// WaitTrace errors out and it falls back to local finalize.
		return false
	}
	r.mu.Lock()
	data := r.traceLocked()
	r.mu.Unlock()
	return s.send(conn, wire.TypeTrace, data) == nil
}

// --- status ------------------------------------------------------------------

// RunStatus is one run's externally visible state (admin API).
type RunStatus struct {
	ID         string  `json:"id"`
	WorldSize  int     `json:"world_size"`
	Epoch      uint64  `json:"epoch"`
	State      string  `json:"state"`
	Received   int     `json:"received"`
	Missing    []int   `json:"missing,omitempty"`
	Calls      int64   `json:"calls"`
	TraceBytes int     `json:"trace_bytes"`
	TracePath  string  `json:"trace_path,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	CreatedSec float64 `json:"created_unix"`
	DoneSec    float64 `json:"finalized_unix,omitempty"`
}

func (r *run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID: r.id, WorldSize: r.world, Epoch: r.epoch,
		State: r.state.String(), Received: r.received,
		TraceBytes: r.traceLen, TracePath: r.tracePath,
		Reason:     r.reason,
		CreatedSec: float64(r.created.UnixNano()) / 1e9,
	}
	if !r.doneAt.IsZero() {
		st.DoneSec = float64(r.doneAt.UnixNano()) / 1e9
	}
	for rank := 0; rank < r.world; rank++ {
		if s := r.snaps[rank]; s != nil {
			st.Calls += s.Calls
		} else {
			st.Missing = append(st.Missing, rank)
		}
	}
	return st
}

// Runs lists every run's status, deterministically sorted by run ID —
// stable output for admin clients and tests regardless of creation
// timing.
func (s *Server) Runs() []RunStatus {
	out, _ := s.RunsFiltered("", 0)
	return out
}

// RunsFiltered lists run statuses whose IDs start with prefix (""
// matches all), sorted by run ID and truncated to limit entries
// (limit <= 0 means no cap). total is the match count before
// truncation, so paging clients — and the ?limit=-capped admin
// endpoint — can report how much a loadgen-amplified fleet was cut.
func (s *Server) RunsFiltered(prefix string, limit int) (out []RunStatus, total int) {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		if prefix == "" || strings.HasPrefix(r.id, prefix) {
			runs = append(runs, r)
		}
	}
	s.mu.Unlock()
	total = len(runs)
	// Sort the (cheap) handles first so a limited listing snapshots only
	// the runs it returns, not every run on a busy daemon.
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
	if limit > 0 && len(runs) > limit {
		runs = runs[:limit]
	}
	out = make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.status()
	}
	return out, total
}

// Run returns one run's status.
func (s *Server) Run(id string) (RunStatus, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, false
	}
	return r.status(), true
}

// Recovery returns one run's crash-recovery and journal view (admin
// GET /runs/{id}/recovery). Live journal counters are read fresh; the
// replay fields are a snapshot taken at startup.
func (s *Server) Recovery(id string) (RecoveryStatus, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RecoveryStatus{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var st RecoveryStatus
	if r.recovery != nil {
		st = *r.recovery
	}
	if r.journal != nil {
		st.JournalFrames, st.JournalBytes, st.JournalBroken = r.journal.status()
		st.JournalPath = r.journal.dir
		st.JournalSync = string(r.journal.mode)
	}
	return st, true
}

// TraceBytes returns a finalized run's serialized trace.
func (s *Server) TraceBytes(id string) ([]byte, bool) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == stateCollecting {
		return nil, false
	}
	return r.traceLocked(), true
}
