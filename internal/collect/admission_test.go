package collect_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/wire"
)

// countingDialer wraps the default transport and counts dials, so
// tests can assert a NACK stops the retry loop instead of hammering.
func countingDialer(n *atomic.Int64) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		n.Add(1)
		return net.DialTimeout("tcp", addr, 5*time.Second)
	}
}

// TestMaxRunsNack: with the run cap reached, a hello for a new run is
// refused with a typed over-limit error on the first attempt — no
// retries — and admission frees up when a run finalizes.
func TestMaxRunsNack(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{MaxRuns: 1})

	cA := client(srv, "runa", n)
	if err := cA.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}

	var dials atomic.Int64
	cB := client(srv, "runb", n)
	cB.Dial = countingDialer(&dials)
	err := cB.SendSnapshot(snaps[0])
	if !collect.IsOverLimit(err) {
		t.Fatalf("want over-limit error, got %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("NACKed send dialed %d times, want 1 (permanent errors must not retry)", got)
	}
	if srv.Metrics().AdmissionRejectedRuns.Load() == 0 {
		t.Fatal("admission metric not incremented")
	}

	// Existing runs are unaffected: run A completes...
	if err := cA.SendSnapshot(snaps[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.WaitTrace(); err != nil {
		t.Fatal(err)
	}
	// ...and the freed slot admits run B.
	if err := cB.SendSnapshot(snaps[0]); err != nil {
		t.Fatalf("send after slot freed: %v", err)
	}
}

// TestMaxRunBytesNack: the snapshot that would push a run past its
// byte budget is refused; everything admitted before stays merged.
func TestMaxRunBytesNack(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	first := int64(len(wire.EncodeSnapshot(snaps[0])))
	srv := startServer(t, collect.Config{MaxRunBytes: first})

	c := client(srv, "bytecap", n)
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatal(err)
	}
	err := c.SendSnapshot(snaps[1])
	if !collect.IsOverLimit(err) {
		t.Fatalf("want over-limit error, got %v", err)
	}
	if srv.Metrics().AdmissionRejectedSnaps.Load() == 0 {
		t.Fatal("admission metric not incremented")
	}
	st, ok := srv.Run("bytecap")
	if !ok || st.Received != 1 {
		t.Fatalf("run state after byte-cap NACK: %+v", st)
	}
}

// TestMaxConnsNack: with the connection cap held by an idle producer,
// a new connection is NACKed and closed; the client errors out within
// its bounded attempt budget instead of spinning.
func TestMaxConnsNack(t *testing.T) {
	const n = 2
	snaps := traceWorkload(t, n)
	srv := startServer(t, collect.Config{MaxConns: 1})

	hog, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	// Wait until the hog occupies the sole slot.
	for wait := time.Now().Add(2 * time.Second); srv.Metrics().ActiveConns.Load() < 1; {
		if time.Now().After(wait) {
			t.Fatal("hog connection never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var dials atomic.Int64
	c := client(srv, "connscap", n)
	c.Dial = countingDialer(&dials)
	c.Retry = collect.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 9}
	err = c.SendSnapshot(snaps[0])
	if err == nil {
		t.Fatal("send through full collector succeeded")
	}
	if got := dials.Load(); got > 3 {
		t.Fatalf("over-limit send dialed %d times, want <= MaxAttempts", got)
	}
	if srv.Metrics().AdmissionRejectedConns.Load() == 0 {
		t.Fatal("admission metric not incremented")
	}

	// Freeing the slot restores service.
	hog.Close()
	for wait := time.Now().Add(2 * time.Second); srv.Metrics().ActiveConns.Load() > 0; {
		if time.Now().After(wait) {
			t.Fatal("hog connection never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.SendSnapshot(snaps[0]); err != nil {
		t.Fatalf("send after slot freed: %v", err)
	}
}

// TestRetryDeadlineCapsBackoff: MaxElapsed bounds the whole retry
// loop's wall clock even when MaxAttempts×MaxDelay would run far
// longer.
func TestRetryDeadlineCapsBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // real port, dead listener: every dial fails fast

	snaps := traceWorkload(t, 1)
	c := &collect.Client{
		Addr: addr,
		Run:  collect.RunInfo{RunID: "deadline", WorldSize: 1},
		Retry: collect.RetryPolicy{
			MaxAttempts: 1000,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    40 * time.Millisecond,
			MaxElapsed:  120 * time.Millisecond,
			Seed:        5,
		},
	}
	t0 := time.Now()
	err = c.SendSnapshot(snaps[0])
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("send to dead collector succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %s; deadline of 120ms not enforced", elapsed)
	}
}

// TestBackoffJitterBounds: every backoff delay is exponential in the
// attempt, capped at MaxDelay, and jittered within [d/2, d] — never
// zero, never above the cap.
func TestBackoffJitterBounds(t *testing.T) {
	c := &collect.Client{
		Retry: collect.RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 11},
	}
	for attempt := 1; attempt <= 12; attempt++ {
		full := 10 * time.Millisecond << (attempt - 1)
		if full > 80*time.Millisecond || full <= 0 {
			full = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := c.Backoff(attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: backoff %s outside [%s, %s]", attempt, d, full/2, full)
			}
		}
	}
}
