package collect

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// WatchEvent is one JSON event on the /watch stream.
type WatchEvent struct {
	Type   string        `json:"type"` // run-admitted | phase | health | run-finalized | ...
	Run    string        `json:"run,omitempty"`
	Phase  string        `json:"phase,omitempty"`
	Prev   string        `json:"prev,omitempty"`
	TsNs   int64         `json:"ts_ns"`
	Health *HealthStatus `json:"health,omitempty"`
}

// sseMessage renders the event as a complete Server-Sent-Events message
// (pre-marshaled once per publish, shared by every subscriber).
func (e WatchEvent) sseMessage() []byte {
	body, err := json.Marshal(e)
	if err != nil {
		body = []byte(`{"type":"error","error":"marshal"}`)
	}
	buf := make([]byte, 0, len(e.Type)+len(body)+24)
	buf = append(buf, "event: "...)
	buf = append(buf, e.Type...)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, body...)
	buf = append(buf, "\n\n"...)
	return buf
}

// watchSub is one /watch subscriber: a bounded mailbox of pre-rendered
// SSE messages. The publisher never blocks on it — when the mailbox is
// full the oldest message is dropped to admit the newest.
type watchSub struct {
	ch      chan []byte
	run     string // "" = fleet-wide
	dropped atomic.Int64
}

// broadcaster fans lifecycle/health events out to /watch subscribers.
// The publish path is designed to cost one atomic load when nobody is
// watching, and to never block the ingest path regardless of how slow
// or stalled any subscriber is.
type broadcaster struct {
	mu   sync.Mutex
	subs map[*watchSub]struct{}
	n    atomic.Int64 // len(subs), readable without mu

	m *Metrics
}

func newBroadcaster(m *Metrics) *broadcaster {
	return &broadcaster{subs: make(map[*watchSub]struct{}), m: m}
}

const watchSubBuffer = 256

func (b *broadcaster) subscribe(run string) *watchSub {
	sub := &watchSub{ch: make(chan []byte, watchSubBuffer), run: run}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.n.Store(int64(len(b.subs)))
	b.mu.Unlock()
	if b.m != nil {
		b.m.WatchSubscribers.Add(1)
	}
	return sub
}

func (b *broadcaster) unsubscribe(sub *watchSub) {
	b.mu.Lock()
	_, present := b.subs[sub]
	delete(b.subs, sub)
	b.n.Store(int64(len(b.subs)))
	b.mu.Unlock()
	if present && b.m != nil {
		b.m.WatchSubscribers.Add(-1)
	}
}

// publish delivers ev to every matching subscriber, dropping each
// subscriber's oldest queued message on overflow. Safe to call from the
// ingest path: no subscriber can make this block.
func (b *broadcaster) publish(ev WatchEvent) {
	if b == nil || b.n.Load() == 0 {
		return
	}
	msg := ev.sseMessage()
	b.mu.Lock()
	for sub := range b.subs {
		if sub.run != "" && sub.run != ev.Run {
			continue
		}
		b.offer(sub, msg)
	}
	b.mu.Unlock()
	if b.m != nil {
		b.m.WatchEvents.Add(1)
	}
}

func (b *broadcaster) offer(sub *watchSub, msg []byte) {
	for {
		select {
		case sub.ch <- msg:
			return
		default:
		}
		// Mailbox full: evict the oldest and retry. The subscriber may
		// race us draining, so the retry loop (not a single attempt)
		// guarantees the *newest* event is what survives.
		select {
		case <-sub.ch:
			sub.dropped.Add(1)
			if b.m != nil {
				b.m.WatchDropped.Add(1)
			}
		default:
		}
	}
}
