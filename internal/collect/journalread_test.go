package collect_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
)

// captureJournal runs a workload through a capture-mode collector
// (KeepJournalFrames) and returns the finalized run's journal
// directory plus the snapshots that produced it.
func captureJournal(t *testing.T, runID string, world int) (jdir string, snaps []*core.Snapshot) {
	t.Helper()
	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir, KeepJournalFrames: true})
	snaps = traceWorkload(t, world)
	c := client(srv, runID, world)
	if _, err := c.Collect(snaps); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	return filepath.Join(dir, "journal", runID), snaps
}

func TestJournalCaptureAndRead(t *testing.T) {
	const world = 4
	jdir, _ := captureJournal(t, "cap", world)

	jr, err := collect.OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	man := jr.Manifest()
	if man.RunID != "cap" || man.World != world || man.State != "finalized" {
		t.Fatalf("manifest = %+v", man)
	}
	entries, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != world {
		t.Fatalf("got %d journal entries, want %d", len(entries), world)
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if e.Hello.RunID != "cap" {
			t.Fatalf("entry run id %q", e.Hello.RunID)
		}
		if e.Bytes() != int64(len(e.HelloRaw)+len(e.SnapRaw)) {
			t.Fatal("Bytes() disagrees with raw lengths")
		}
		seen[e.Hello.Rank] = true
	}
	if len(seen) != world {
		t.Fatalf("entries cover %d distinct ranks, want %d", len(seen), world)
	}
	if torn, trunc := jr.Torn(); torn || trunc != 0 {
		t.Fatalf("clean journal reported torn=%v trunc=%d", torn, trunc)
	}
}

func TestJournalReaderTornTail(t *testing.T) {
	jdir, _ := captureJournal(t, "torn", 2)
	f, err := os.OpenFile(filepath.Join(jdir, "frames.jnl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0x10, 0x00, 0x00, 0x00, 0x02, 0xde, 0xad}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jr, err := collect.OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	entries, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d intact entries, want 2", len(entries))
	}
	torn, trunc := jr.Torn()
	if !torn || trunc != int64(len(garbage)) {
		t.Fatalf("torn=%v trunc=%d, want true %d", torn, trunc, len(garbage))
	}
}

func TestJournalWithoutCaptureModeHasNoFrames(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir})
	snaps := traceWorkload(t, 2)
	if _, err := client(srv, "nocap", 2).Collect(snaps); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	jr, err := collect.OpenJournal(filepath.Join(dir, "journal", "nocap"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := jr.ReadAll()
	if err != nil || len(entries) != 0 {
		t.Fatalf("finalize without capture mode left %d entries (err=%v)", len(entries), err)
	}
}

func TestFindJournals(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, collect.Config{OutDir: dir, KeepJournalFrames: true})
	snaps := traceWorkload(t, 2)
	for _, id := range []string{"find-b", "find-a"} {
		if _, err := client(srv, id, 2).Collect(snaps); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	for _, root := range []string{dir, filepath.Join(dir, "journal")} {
		dirs, err := collect.FindJournals(root)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) != 2 || filepath.Base(dirs[0]) != "find-a" || filepath.Base(dirs[1]) != "find-b" {
			t.Fatalf("FindJournals(%s) = %v", root, dirs)
		}
	}
	one, err := collect.FindJournals(filepath.Join(dir, "journal", "find-a"))
	if err != nil || len(one) != 1 {
		t.Fatalf("single-dir resolve: %v %v", one, err)
	}
	if _, err := collect.FindJournals(t.TempDir()); err == nil {
		t.Fatal("empty dir resolved to journals")
	}
}

func TestRunsFilteredAndAdminQuery(t *testing.T) {
	srv := startServer(t, collect.Config{})
	snaps := traceWorkload(t, 2)
	for _, id := range []string{"lg-001", "lg-002", "lg-003", "other"} {
		if _, err := client(srv, id, 2).Collect(snaps); err != nil {
			t.Fatal(err)
		}
	}
	out, total := srv.RunsFiltered("lg-", 2)
	if total != 3 || len(out) != 2 || out[0].ID != "lg-001" || out[1].ID != "lg-002" {
		t.Fatalf("RunsFiltered = %v (total %d)", out, total)
	}
	if out, total := srv.RunsFiltered("", 0); total != 4 || len(out) != 4 {
		t.Fatalf("uncapped RunsFiltered returned %d/%d", len(out), total)
	}

	ts := httptest.NewServer(collect.AdminHandler(srv))
	defer ts.Close()
	get := func(url string) (*http.Response, []collect.RunStatus) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var runs []collect.RunStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
				t.Fatal(err)
			}
		}
		return resp, runs
	}
	resp, runs := get(ts.URL + "/runs?prefix=lg-&limit=2")
	if len(runs) != 2 || resp.Header.Get("X-Pilgrim-Total-Runs") != "3" {
		t.Fatalf("admin query: %d runs, total header %q", len(runs), resp.Header.Get("X-Pilgrim-Total-Runs"))
	}
	if resp, runs := get(ts.URL + "/runs"); len(runs) != 4 || resp.Header.Get("X-Pilgrim-Total-Runs") != "4" {
		t.Fatalf("default listing: %d runs", len(runs))
	}
	if resp, _ := get(ts.URL + "/runs?limit=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit got %d", resp.StatusCode)
	}
}
