package sig

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// DecodedValue is one decoded signature field. Rank-like fields carry
// their selector so consumers know whether I is a delta (selRel), an
// absolute value (selAbs) or a special constant.
type DecodedValue struct {
	Kind mpispec.ParamKind
	Sel  byte
	I    int64
	Off  uint64 // pointer displacement (heap pointers)
	Dev  int64  // device id (heap pointers)
	Arr  []DecodedValue
	S    string
}

// Resolve returns the absolute value of a rank-like field given the
// caller's rank in the relevant communicator.
func (v DecodedValue) Resolve(base int64) int64 {
	switch v.Sel {
	case selRel:
		return base + v.I
	case selAbs:
		return v.I
	case selProcNull:
		return procNull
	case selAnySrc:
		return anySource
	case selUndef:
		return undefined
	}
	return v.I
}

// IsProcNull reports whether a rank-like field is MPI_PROC_NULL.
func (v DecodedValue) IsProcNull() bool { return v.Sel == selProcNull }

// IsWildcard reports whether a rank-like field is MPI_ANY_SOURCE (or,
// for tags, MPI_ANY_TAG — the two share a selector).
func (v DecodedValue) IsWildcard() bool { return v.Sel == selAnySrc }

// IsUndefined reports whether a rank-like field is MPI_UNDEFINED.
func (v DecodedValue) IsUndefined() bool { return v.Sel == selUndef }

// Decoded is one reconstructed MPI call.
type Decoded struct {
	Func mpispec.FuncID
	Args []DecodedValue
}

// reader is a cursor over signature bytes.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("sig: truncated uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("sig: truncated varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("sig: truncated selector at %d", r.pos)
	}
	b := r.b[r.pos]
	r.pos++
	return b, nil
}

// Decode reconstructs a call from its signature bytes.
func Decode(sigBytes []byte) (Decoded, error) {
	r := &reader{b: sigBytes}
	fid, err := r.uvarint()
	if err != nil {
		return Decoded{}, err
	}
	if fid >= uint64(mpispec.NumFuncs) {
		return Decoded{}, fmt.Errorf("sig: unknown function id %d", fid)
	}
	d := Decoded{Func: mpispec.FuncID(fid)}
	spec := mpispec.Spec[d.Func]
	for _, p := range spec.Params {
		v, err := decodeValue(r, p.Kind)
		if err != nil {
			return Decoded{}, fmt.Errorf("sig: %s.%s: %w", spec.Name, p.Name, err)
		}
		d.Args = append(d.Args, v)
	}
	if r.pos != len(r.b) {
		return Decoded{}, fmt.Errorf("sig: %s: %d trailing bytes", spec.Name, len(r.b)-r.pos)
	}
	return d, nil
}

func decodeValue(r *reader, kind mpispec.ParamKind) (DecodedValue, error) {
	v := DecodedValue{Kind: kind}
	var err error
	switch kind {
	case mpispec.KInt, mpispec.KComm, mpispec.KDatatype, mpispec.KOp,
		mpispec.KGroup, mpispec.KRequest:
		v.I, err = r.varint()
	case mpispec.KRank:
		v.Sel, err = r.byte()
		if err == nil && (v.Sel == selRel || v.Sel == selAbs) {
			v.I, err = r.varint()
		}
	case mpispec.KTag, mpispec.KColor, mpispec.KKey:
		v.Sel, err = r.byte()
		if err == nil && (v.Sel == selRel || v.Sel == selAbs) {
			v.I, err = r.varint()
		}
	case mpispec.KReqArray:
		var n uint64
		n, err = r.uvarint()
		for i := uint64(0); err == nil && i < n; i++ {
			var id int64
			id, err = r.varint()
			v.Arr = append(v.Arr, DecodedValue{Kind: mpispec.KRequest, I: id})
		}
	case mpispec.KStatus:
		return decodeStatus(r)
	case mpispec.KStatArray:
		var n uint64
		n, err = r.uvarint()
		for i := uint64(0); err == nil && i < n; i++ {
			var st DecodedValue
			st, err = decodeStatus(r)
			v.Arr = append(v.Arr, st)
		}
	case mpispec.KPtr:
		v.Sel, err = r.byte()
		if err == nil {
			switch v.Sel {
			case ptrHeap:
				var id, dev uint64
				id, err = r.uvarint()
				if err == nil {
					v.Off, err = r.uvarint()
				}
				if err == nil {
					dev, err = r.uvarint()
					v.Dev = int64(dev)
				}
				v.I = int64(id)
			case ptrStack:
				var id uint64
				id, err = r.uvarint()
				v.I = int64(id)
			case ptrNil:
			default:
				err = fmt.Errorf("bad pointer selector %d", v.Sel)
			}
		}
	case mpispec.KString:
		var n uint64
		n, err = r.uvarint()
		if err == nil {
			if r.pos+int(n) > len(r.b) {
				err = fmt.Errorf("truncated string")
			} else {
				v.S = string(r.b[r.pos : r.pos+int(n)])
				r.pos += int(n)
			}
		}
	case mpispec.KIntArray, mpispec.KIndexArray:
		var n uint64
		n, err = r.uvarint()
		for i := uint64(0); err == nil && i < n; i++ {
			var x int64
			x, err = r.varint()
			v.Arr = append(v.Arr, DecodedValue{Kind: mpispec.KInt, I: x})
		}
	default:
		err = fmt.Errorf("unhandled kind %v", kind)
	}
	return v, err
}

func decodeStatus(r *reader) (DecodedValue, error) {
	v := DecodedValue{Kind: mpispec.KStatus}
	sel, err := r.byte()
	if err != nil {
		return v, err
	}
	src := DecodedValue{Kind: mpispec.KRank, Sel: sel}
	if sel == selRel || sel == selAbs {
		src.I, err = r.varint()
		if err != nil {
			return v, err
		}
	}
	tag, err := r.varint()
	if err != nil {
		return v, err
	}
	v.Arr = []DecodedValue{src, {Kind: mpispec.KTag, Sel: selAbs, I: tag}}
	return v, nil
}

// String renders a decoded call like the paper's examples:
// MPI_Send(buf=seg0+0, count=1, datatype=INT, dest=+1, tag=999, comm=0).
func (d Decoded) String() string {
	spec := mpispec.Spec[d.Func]
	var sb strings.Builder
	sb.WriteString(spec.Name)
	sb.WriteByte('(')
	for i, a := range d.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i < len(spec.Params) {
			sb.WriteString(spec.Params[i].Name)
			sb.WriteByte('=')
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders one decoded value.
func (v DecodedValue) String() string {
	switch v.Kind {
	case mpispec.KRank, mpispec.KTag, mpispec.KColor, mpispec.KKey:
		switch v.Sel {
		case selRel:
			return fmt.Sprintf("%+d", v.I)
		case selAbs:
			return fmt.Sprintf("%d", v.I)
		case selProcNull:
			return "PROC_NULL"
		case selAnySrc:
			if v.Kind == mpispec.KTag {
				return "ANY_TAG"
			}
			return "ANY_SOURCE"
		case selUndef:
			return "UNDEFINED"
		}
		return fmt.Sprintf("%d", v.I)
	case mpispec.KPtr:
		switch v.Sel {
		case ptrHeap:
			if v.Dev != 0 {
				return fmt.Sprintf("seg%d+%d@dev%d", v.I, v.Off, v.Dev)
			}
			return fmt.Sprintf("seg%d+%d", v.I, v.Off)
		case ptrStack:
			return fmt.Sprintf("stack%d", v.I)
		default:
			return "nil"
		}
	case mpispec.KString:
		return fmt.Sprintf("%q", v.S)
	case mpispec.KStatus:
		if len(v.Arr) == 2 {
			return fmt.Sprintf("{src=%s tag=%s}", v.Arr[0], v.Arr[1])
		}
		return "{}"
	case mpispec.KReqArray, mpispec.KStatArray, mpispec.KIntArray, mpispec.KIndexArray:
		parts := make([]string, len(v.Arr))
		for i, x := range v.Arr {
			parts[i] = x.String()
		}
		return "[" + strings.Join(parts, " ") + "]"
	default:
		return fmt.Sprintf("%d", v.I)
	}
}
