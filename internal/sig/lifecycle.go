package sig

import "github.com/hpcrepro/pilgrim/internal/mpispec"

// requestCreatingArg returns the index of the request output argument
// for calls that create a request, or -1.
func requestCreatingArg(f mpispec.FuncID) int {
	switch f {
	case mpispec.FIsend, mpispec.FIbsend, mpispec.FIssend, mpispec.FIrsend, mpispec.FIrecv,
		mpispec.FSendInit, mpispec.FBsendInit, mpispec.FSsendInit, mpispec.FRsendInit, mpispec.FRecvInit:
		return 6
	case mpispec.FIbarrier:
		return 1
	case mpispec.FCommIdup:
		return 2
	case mpispec.FIbcast:
		return 5
	case mpispec.FIgather, mpispec.FIscatter:
		return 8
	case mpispec.FIallgather, mpispec.FIalltoall:
		return 7
	case mpispec.FIreduce:
		return 7
	case mpispec.FIallreduce:
		return 6
	}
	return -1
}

// isPersistentInit reports whether the call creates a persistent
// request, whose id survives completions until MPI_Request_free.
func isPersistentInit(f mpispec.FuncID) bool {
	switch f {
	case mpispec.FSendInit, mpispec.FBsendInit, mpispec.FSsendInit, mpispec.FRsendInit, mpispec.FRecvInit:
		return true
	}
	return false
}

// commCreatingArg returns the index of the newcomm output argument for
// blocking communicator-creating calls, or -1.
func commCreatingArg(f mpispec.FuncID) int {
	switch f {
	case mpispec.FCommDup:
		return 1
	case mpispec.FCommSplit, mpispec.FCommSplitType:
		return 3
	case mpispec.FCommCreate:
		return 2
	case mpispec.FCartCreate:
		return 5
	case mpispec.FCartSub, mpispec.FIntercommMerge:
		return 2
	case mpispec.FIntercommCreate:
		return 5
	}
	return -1
}

// typeCreatingArg returns the newtype output argument index, or -1.
func typeCreatingArg(f mpispec.FuncID) int {
	switch f {
	case mpispec.FTypeContiguous:
		return 2
	case mpispec.FTypeVector, mpispec.FTypeIndexed, mpispec.FTypeCreateStruct:
		return 4
	case mpispec.FTypeDup:
		return 1
	}
	return -1
}

// groupCreatingArgs returns the new-group output argument indices.
func groupCreatingArgs(f mpispec.FuncID) []int {
	switch f {
	case mpispec.FCommGroup:
		return []int{1}
	case mpispec.FGroupIncl, mpispec.FGroupExcl:
		return []int{3}
	case mpispec.FGroupUnion, mpispec.FGroupIntersection, mpispec.FGroupDifference:
		return []int{2}
	}
	return nil
}

// assignCreatedObjects performs the id assignment implied by the call,
// including the group-wide all-reduce for new communicators (§3.3.1).
func (e *Encoder) assignCreatedObjects(rec *mpispec.CallRecord) {
	if i := commCreatingArg(rec.Func); i >= 0 {
		h := rec.Args[i].I
		if h != 0 {
			if _, known := e.commIDs[h]; !known {
				newID := e.maxCommID
				if e.oob != nil {
					// Step 1+2: group-wide max of locally assigned ids.
					newID = e.oob.AllreduceMaxInt32(h, e.maxCommID)
				}
				// Step 3: one plus the group max.
				newID++
				e.commIDs[h] = newID
				if newID > e.maxCommID {
					e.maxCommID = newID
				}
			}
		}
	}
	if rec.Func == mpispec.FCommIdup {
		h := rec.Args[1].I
		if h != 0 && e.oob != nil {
			tok := e.oob.IAllreduceMaxInt32(rec.Args[0].I, e.maxCommID)
			e.pending = append(e.pending, pendingComm{token: tok, commHandle: h})
		}
	}
	if i := typeCreatingArg(rec.Func); i >= 0 {
		if h := rec.Args[i].I; h != 0 {
			if _, known := e.typeIDs[h]; !known {
				e.typeIDs[h] = e.typePool.Get() + predefTypeCount
			}
		}
	}
	for _, i := range groupCreatingArgs(rec.Func) {
		if h := rec.Args[i].I; h != 0 {
			if _, known := e.groupIDs[h]; !known {
				e.groupIDs[h] = e.groupPool.Get()
			}
		}
	}
	if rec.Func == mpispec.FOpCreate {
		if h := rec.Args[2].I; h != 0 {
			if _, known := e.opIDs[h]; !known {
				e.opIDs[h] = e.opPool.Get() + predefOpCount
			}
		}
	}
}

// releaseRequest recycles a completed (or freed) request's id into its
// origin pool; persistent requests keep their id across completions.
func (e *Encoder) releaseRequest(h int64, evenPersistent bool) {
	ent, ok := e.reqIDs[h]
	if !ok {
		return
	}
	if ent.persistent && !evenPersistent {
		return
	}
	e.reqPools.Put(ent.poolKey, ent.id)
	delete(e.reqIDs, h)
}

// releaseCompletedObjects recycles ids after the epilogue: requests
// completed by Wait*/Test*, and objects destroyed by *_free calls.
func (e *Encoder) releaseCompletedObjects(rec *mpispec.CallRecord) {
	args := rec.Args
	switch rec.Func {
	case mpispec.FWait:
		e.releaseRequest(args[0].I, false)
	case mpispec.FTest:
		if args[1].I != 0 {
			e.releaseRequest(args[0].I, false)
		}
	case mpispec.FWaitall:
		for _, h := range args[1].Arr {
			e.releaseRequest(h, false)
		}
	case mpispec.FWaitany:
		if idx := args[2].I; idx >= 0 && int(idx) < len(args[1].Arr) {
			e.releaseRequest(args[1].Arr[idx], false)
		}
	case mpispec.FWaitsome:
		for _, idx := range args[3].Arr {
			if idx >= 0 && int(idx) < len(args[1].Arr) {
				e.releaseRequest(args[1].Arr[idx], false)
			}
		}
	case mpispec.FTestall:
		if args[2].I != 0 {
			for _, h := range args[1].Arr {
				e.releaseRequest(h, false)
			}
		}
	case mpispec.FTestany:
		if args[3].I != 0 {
			if idx := args[2].I; idx >= 0 && int(idx) < len(args[1].Arr) {
				e.releaseRequest(args[1].Arr[idx], false)
			}
		}
	case mpispec.FTestsome:
		for _, idx := range args[3].Arr {
			if idx >= 0 && int(idx) < len(args[1].Arr) {
				e.releaseRequest(args[1].Arr[idx], false)
			}
		}
	case mpispec.FRequestFree:
		e.releaseRequest(args[0].I, true)
	case mpispec.FTypeFree:
		if h := args[0].I; h != 0 {
			if id, ok := e.typeIDs[h]; ok {
				e.typePool.Put(id - predefTypeCount)
				delete(e.typeIDs, h)
			}
		}
	case mpispec.FGroupFree:
		if h := args[0].I; h != 0 {
			if id, ok := e.groupIDs[h]; ok {
				e.groupPool.Put(id)
				delete(e.groupIDs, h)
			}
		}
	case mpispec.FOpFree:
		if h := args[0].I; h != 0 {
			if id, ok := e.opIDs[h]; ok {
				e.opPool.Put(id - predefOpCount)
				delete(e.opIDs, h)
			}
		}
	}
	// Communicator ids are monotonic (group-max + 1) and never reused,
	// so MPI_Comm_free needs no pool action.
}

// pollPending resolves communicator ids whose non-blocking agreement
// (MPI_Comm_idup) has completed. Called from every encode, which
// covers the paper's "check in Wait/Test epilogues" behaviour.
func (e *Encoder) pollPending() {
	if len(e.pending) == 0 || e.oob == nil {
		return
	}
	rest := e.pending[:0]
	for _, pc := range e.pending {
		done, groupMax := e.oob.PollOOB(pc.token)
		if !done {
			rest = append(rest, pc)
			continue
		}
		newID := groupMax + 1
		e.commIDs[pc.commHandle] = newID
		if newID > e.maxCommID {
			e.maxCommID = newID
		}
	}
	e.pending = rest
}

// PendingComms returns how many communicator-id agreements are still
// in flight (diagnostics).
func (e *Encoder) PendingComms() int { return len(e.pending) }
