// Package sig implements Pilgrim's parameter encoding (§3.3): every
// intercepted call is turned into a compact, self-delimiting byte
// signature in which
//
//   - MPI object handles (communicators, datatypes, groups, ops,
//     requests) are replaced by small symbolic ids so that the call
//     creating an object can be matched with the calls using it;
//   - communicator ids are agreed group-wide through an out-of-band
//     all-reduce (§3.3.1), so all members see the same id;
//   - requests draw their ids from per-call-signature pools (§3.4.3),
//     making ids independent of completion order;
//   - source/destination ranks are encoded relative to the caller's
//     rank in the communicator (§3.4.2), with a small window applied
//     to tags, colors and keys;
//   - memory pointers become (segment id, displacement) pairs backed
//     by an AVL tree over intercepted allocations (§3.3.3), with a
//     conservative per-address fallback for stack memory;
//   - statuses keep only MPI_SOURCE and MPI_TAG (§3.3.2).
//
// Identical program behaviour on different ranks therefore yields
// bytewise identical signatures, which is what makes both the CST and
// the inter-process compression effective.
package sig

import (
	"encoding/binary"
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/avl"
	"github.com/hpcrepro/pilgrim/internal/idpool"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// Selectors for rank-like and pointer encodings.
const (
	selRel      = 0 // relative to caller rank
	selAbs      = 1 // absolute value
	selProcNull = 2
	selAnySrc   = 3
	selAnyTag   = 3
	selUndef    = 4

	ptrHeap  = 0
	ptrStack = 1
	ptrNil   = 2

	// commPending is the signature placeholder for a communicator
	// whose group-wide id is still travelling in a non-blocking
	// all-reduce (MPI_Comm_idup).
	commPending = int64(1<<31 - 1)
)

// Special rank values mirrored from the mpi package (kept here so sig
// has no dependency on it).
const (
	procNull  = -1
	anySource = -2
	anyTag    = -1
	undefined = -3
)

// relWindow bounds when tags/colors/keys are encoded relative to the
// caller's rank (they are "possibly rank-related", §3.4.2). Zero means
// only exact matches: a wider window would smear rank-independent
// constants that happen to lie near the rank into extra signature
// classes (one per rank in the window), hurting inter-process
// compression more than relative encoding helps.
const relWindow = 0

// Reserved symbolic-id spaces for predefined objects. These mirror the
// mpi package's well-known handle ranges.
const (
	predefTypeHandleBase = 16
	predefTypeCount      = 16
	predefOpHandleBase   = 64
	predefOpCount        = 16
	worldHandle          = 1
	selfHandle           = 2
)

// reqEntry tracks a live request's symbolic id and its origin pool.
type reqEntry struct {
	id         int32
	poolKey    string
	persistent bool
}

// pendingComm is an in-flight non-blocking comm-id agreement.
type pendingComm struct {
	token      int64
	commHandle int64
}

// Options disables individual encoding optimizations, for the
// ablation experiments that quantify each design choice of §3.3-3.4.
type Options struct {
	// NoRelativeRanks stores peer ranks absolutely (§3.4.2 off).
	NoRelativeRanks bool
	// SharedRequestPool uses a single id pool for all requests instead
	// of one per call signature (§3.4.3 off).
	SharedRequestPool bool
	// NoPointerTracking stores raw addresses instead of
	// (segment, offset) pairs (§3.3.3 off).
	NoPointerTracking bool
}

// Encoder holds all per-process symbolic state. One Encoder exists per
// traced rank.
type Encoder struct {
	rank int
	oob  mpispec.OOB
	opts Options

	commIDs   map[int64]int32
	maxCommID int32

	typeIDs  map[int64]int32
	typePool *idpool.Pool

	groupIDs  map[int64]int32
	groupPool *idpool.Pool

	opIDs  map[int64]int32
	opPool *idpool.Pool

	reqIDs   map[int64]reqEntry
	reqPools *idpool.RequestPools

	mem       avl.Tree
	memPool   *idpool.Pool
	stackIDs  map[uint64]int32
	stackPool *idpool.Pool

	pending []pendingComm

	keyBuf []byte // scratch for §3.4.3 request-pool keys, reused between calls
}

// NewEncoder builds the per-rank symbolic state. oob may be nil when
// no communicator-creating calls will be traced (tests).
func NewEncoder(rank int, oob mpispec.OOB) *Encoder {
	return NewEncoderOpts(rank, oob, Options{})
}

// NewEncoderOpts is NewEncoder with ablation options.
func NewEncoderOpts(rank int, oob mpispec.OOB, opts Options) *Encoder {
	e := &Encoder{
		rank:      rank,
		oob:       oob,
		opts:      opts,
		commIDs:   map[int64]int32{worldHandle: 0, selfHandle: 1},
		maxCommID: 1,
		typeIDs:   map[int64]int32{},
		typePool:  idpool.New(),
		groupIDs:  map[int64]int32{},
		groupPool: idpool.New(),
		opIDs:     map[int64]int32{},
		opPool:    idpool.New(),
		reqIDs:    map[int64]reqEntry{},
		reqPools:  idpool.NewRequestPools(),
		stackIDs:  map[uint64]int32{},
		stackPool: idpool.New(),
		memPool:   idpool.New(),
	}
	return e
}

// SetOOB late-binds the out-of-band collective interface (the rank's
// runtime handle may not exist when the encoder is built).
func (e *Encoder) SetOOB(oob mpispec.OOB) { e.oob = oob }

// MemAlloc registers an intercepted allocation (§3.3.3).
func (e *Encoder) MemAlloc(addr, size uint64, device int32) {
	id := e.memPool.Get()
	e.mem.Insert(avl.Segment{Addr: addr, Size: size, ID: id, Device: device})
}

// MemFree releases an allocation and recycles its id.
func (e *Encoder) MemFree(addr uint64) {
	if seg, ok := e.mem.Lookup(addr); ok {
		e.memPool.Put(seg.ID)
		e.mem.Delete(addr)
	}
}

// LiveSegments returns the number of currently tracked heap segments.
func (e *Encoder) LiveSegments() int { return e.mem.Len() }

// NumRequestPools returns how many distinct request signature pools
// exist (diagnostics for §3.4.3).
func (e *Encoder) NumRequestPools() int { return e.reqPools.NumPools() }

// --- primitive emitters ------------------------------------------------------

func putUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func putVarint(buf []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// commRankOf extracts the caller's rank within the call's communicator
// (carried in the KComm value), falling back to the world rank.
func (e *Encoder) commRankOf(rec *mpispec.CallRecord) int64 {
	for _, a := range rec.Args {
		if a.Kind == mpispec.KComm && len(a.Arr) > 0 {
			return a.Arr[0]
		}
	}
	return int64(e.rank)
}

// peerParam reports whether a KRank parameter is a peer rank
// (source/destination: always relative) rather than a root-like rank
// (absolute, identical on all callers).
func peerParam(name string) bool {
	switch name {
	case "dest", "source", "rank_source", "rank_dest":
		return true
	}
	return false
}

func (e *Encoder) encodeRank(buf []byte, v, base int64, peer bool) []byte {
	switch v {
	case procNull:
		return append(buf, selProcNull)
	case anySource:
		return append(buf, selAnySrc)
	case undefined:
		return append(buf, selUndef)
	}
	if peer && !e.opts.NoRelativeRanks {
		buf = append(buf, selRel)
		return putVarint(buf, v-base)
	}
	buf = append(buf, selAbs)
	return putVarint(buf, v)
}

func (e *Encoder) encodeWindowed(buf []byte, v, base int64) []byte {
	switch v {
	case anyTag: // also matches Undefined for colors: same wire value is fine
		return append(buf, selAnyTag)
	}
	if d := v - base; d >= -relWindow && d <= relWindow && !e.opts.NoRelativeRanks {
		buf = append(buf, selRel)
		return putVarint(buf, d)
	}
	buf = append(buf, selAbs)
	return putVarint(buf, v)
}

func (e *Encoder) encodePtr(buf []byte, addr uint64) []byte {
	if addr == 0 {
		return append(buf, ptrNil)
	}
	if e.opts.NoPointerTracking {
		// Ablation: the raw address, as a "stack" entry keyed by the
		// exact address — what a tool without malloc interception sees.
		buf = append(buf, ptrStack)
		return putUvarint(buf, addr)
	}
	if seg, ok := e.mem.Find(addr); ok {
		buf = append(buf, ptrHeap)
		buf = putUvarint(buf, uint64(seg.ID))
		buf = putUvarint(buf, addr-seg.Addr)
		buf = putUvarint(buf, uint64(seg.Device))
		return buf
	}
	// Stack (or otherwise unknown) address: assign a per-address id,
	// conservatively sized (§3.3.3).
	id, ok := e.stackIDs[addr]
	if !ok {
		id = e.stackPool.Get()
		e.stackIDs[addr] = id
	}
	buf = append(buf, ptrStack)
	return putUvarint(buf, uint64(id))
}

// symbolicType returns (and lazily assigns, for predefined handles)
// the symbolic id of a datatype handle.
func (e *Encoder) symbolicType(h int64) int32 {
	if h >= predefTypeHandleBase && h < predefTypeHandleBase+predefTypeCount {
		return int32(h - predefTypeHandleBase) // reserved ids 0..15
	}
	if id, ok := e.typeIDs[h]; ok {
		return id
	}
	// Unknown derived handle (shouldn't happen in well-formed traces):
	// assign on first sight so encoding stays total.
	id := e.typePool.Get() + predefTypeCount
	e.typeIDs[h] = id
	return id
}

func (e *Encoder) symbolicOp(h int64) int32 {
	if h >= predefOpHandleBase && h < predefOpHandleBase+predefOpCount {
		return int32(h - predefOpHandleBase)
	}
	if id, ok := e.opIDs[h]; ok {
		return id
	}
	id := e.opPool.Get() + predefOpCount
	e.opIDs[h] = id
	return id
}

func (e *Encoder) symbolicGroup(h int64) int32 {
	if id, ok := e.groupIDs[h]; ok {
		return id
	}
	id := e.groupPool.Get()
	e.groupIDs[h] = id
	return id
}

func (e *Encoder) symbolicComm(h int64) int64 {
	if h == 0 {
		return -1
	}
	if id, ok := e.commIDs[h]; ok {
		return int64(id)
	}
	// Comm whose id agreement is still pending (idup before wait).
	return commPending
}

func (e *Encoder) symbolicRequest(h int64) int64 {
	if h == 0 {
		return -1
	}
	if ent, ok := e.reqIDs[h]; ok {
		return int64(ent.id)
	}
	return -2 // unknown request (already released)
}

// Encode turns a completed CallRecord into its signature bytes. It
// also performs the object-lifecycle bookkeeping (id assignment and
// release) that the call implies. The returned slice is freshly
// allocated; hot paths that can recycle a scratch buffer should use
// EncodeTo instead.
func (e *Encoder) Encode(rec *mpispec.CallRecord) []byte {
	return e.EncodeTo(nil, rec)
}

// EncodeTo is Encode appending into buf (usually a caller-owned
// scratch sliced to zero length) and returning the extended slice.
// Once the scratch has grown to the workload's signature sizes the
// common call encodes with zero allocations; the tracer's per-call
// path relies on this.
func (e *Encoder) EncodeTo(buf []byte, rec *mpispec.CallRecord) []byte {
	// Lifecycle, part 1: request-creating calls need the pool key
	// (signature sans request) before the request id can be chosen.
	spec := mpispec.Spec[rec.Func]
	base := e.commRankOf(rec)

	if reqArg := requestCreatingArg(rec.Func); reqArg >= 0 {
		e.keyBuf = e.encodeArgs(e.keyBuf[:0], rec, spec, base, true)
		key := string(e.keyBuf)
		if e.opts.SharedRequestPool {
			key = "" // §3.4.3 off: one pool for every request
		}
		h := rec.Args[reqArg].I
		if h != 0 {
			id := e.reqPools.Get(key)
			e.reqIDs[h] = reqEntry{id: id, poolKey: key, persistent: isPersistentInit(rec.Func)}
		}
	}

	e.assignCreatedObjects(rec)

	buf = putUvarint(buf, uint64(rec.Func))
	buf = e.encodeArgs(buf, rec, spec, base, false)

	e.releaseCompletedObjects(rec)
	e.pollPending()
	return buf
}

// encodeArgs encodes all arguments. When skipRequests is true, request
// values are omitted entirely — that variant is the §3.4.3 pool key.
func (e *Encoder) encodeArgs(buf []byte, rec *mpispec.CallRecord, spec mpispec.FuncSpec, base int64, skipRequests bool) []byte {
	for i, a := range rec.Args {
		var pname string
		if i < len(spec.Params) {
			pname = spec.Params[i].Name
		}
		switch a.Kind {
		case mpispec.KInt:
			buf = putVarint(buf, a.I)
		case mpispec.KRank:
			buf = e.encodeRank(buf, a.I, base, peerParam(pname))
		case mpispec.KTag, mpispec.KColor, mpispec.KKey:
			buf = e.encodeWindowed(buf, a.I, base)
		case mpispec.KComm:
			buf = putVarint(buf, e.symbolicComm(a.I))
		case mpispec.KDatatype:
			if a.I == 0 {
				buf = putVarint(buf, -1)
			} else {
				buf = putVarint(buf, int64(e.symbolicType(a.I)))
			}
		case mpispec.KOp:
			if a.I == 0 {
				buf = putVarint(buf, -1)
			} else {
				buf = putVarint(buf, int64(e.symbolicOp(a.I)))
			}
		case mpispec.KGroup:
			if a.I == 0 {
				buf = putVarint(buf, -1)
			} else {
				buf = putVarint(buf, int64(e.symbolicGroup(a.I)))
			}
		case mpispec.KRequest:
			if skipRequests {
				continue
			}
			buf = putVarint(buf, e.symbolicRequest(a.I))
		case mpispec.KReqArray:
			if skipRequests {
				continue
			}
			buf = putUvarint(buf, uint64(len(a.Arr)))
			for _, h := range a.Arr {
				buf = putVarint(buf, e.symbolicRequest(h))
			}
		case mpispec.KStatus:
			buf = e.encodeStatus(buf, a.Arr, base)
		case mpispec.KStatArray:
			buf = putUvarint(buf, uint64(len(a.Arr)/2))
			for j := 0; j+1 < len(a.Arr); j += 2 {
				buf = e.encodeStatus(buf, a.Arr[j:j+2], base)
			}
		case mpispec.KPtr:
			buf = e.encodePtr(buf, uint64(a.I))
		case mpispec.KString:
			buf = putUvarint(buf, uint64(len(a.S)))
			buf = append(buf, a.S...)
		case mpispec.KIntArray, mpispec.KIndexArray:
			buf = putUvarint(buf, uint64(len(a.Arr)))
			for _, v := range a.Arr {
				buf = putVarint(buf, v)
			}
		default:
			panic(fmt.Sprintf("sig: unhandled kind %v in %s", a.Kind, spec.Name))
		}
	}
	return buf
}

// encodeStatus keeps MPI_SOURCE (relative) and MPI_TAG (§3.3.2).
func (e *Encoder) encodeStatus(buf []byte, st []int64, base int64) []byte {
	var src, tag int64 = undefined, undefined
	if len(st) >= 2 {
		src, tag = st[0], st[1]
	}
	buf = e.encodeRank(buf, src, base, true)
	return putVarint(buf, tag)
}
