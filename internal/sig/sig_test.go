package sig

import (
	"bytes"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// fakeOOB emulates the group-wide max all-reduce: the "group max" is
// whatever the test configured.
type fakeOOB struct {
	groupMax  int32
	nextToken int64
	pendingV  map[int64]int32
	ready     map[int64]bool
}

func newFakeOOB(groupMax int32) *fakeOOB {
	return &fakeOOB{groupMax: groupMax, pendingV: map[int64]int32{}, ready: map[int64]bool{}}
}

func (f *fakeOOB) AllreduceMaxInt32(h int64, v int32) int32 {
	if v > f.groupMax {
		return v
	}
	return f.groupMax
}

func (f *fakeOOB) IAllreduceMaxInt32(h int64, v int32) int64 {
	f.nextToken++
	f.pendingV[f.nextToken] = f.AllreduceMaxInt32(h, v)
	return f.nextToken
}

func (f *fakeOOB) PollOOB(token int64) (bool, int32) {
	if !f.ready[token] {
		return false, 0
	}
	return true, f.pendingV[token]
}

// rec builds a CallRecord for tests.
func rec(rank int, f mpispec.FuncID, args ...mpispec.Value) *mpispec.CallRecord {
	return &mpispec.CallRecord{Func: f, Args: args, Rank: rank}
}

func vi(v int64) mpispec.Value { return mpispec.Value{Kind: mpispec.KInt, I: v} }
func vr(v int64) mpispec.Value { return mpispec.Value{Kind: mpispec.KRank, I: v} }
func vt(v int64) mpispec.Value { return mpispec.Value{Kind: mpispec.KTag, I: v} }
func vc(h, myRank int64) mpispec.Value {
	return mpispec.Value{Kind: mpispec.KComm, I: h, Arr: []int64{myRank}}
}
func vdt(h int64) mpispec.Value { return mpispec.Value{Kind: mpispec.KDatatype, I: h} }
func vp(addr uint64) mpispec.Value {
	return mpispec.Value{Kind: mpispec.KPtr, I: int64(addr)}
}
func vreq(h int64) mpispec.Value { return mpispec.Value{Kind: mpispec.KRequest, I: h} }
func vst(src, tag int64) mpispec.Value {
	return mpispec.Value{Kind: mpispec.KStatus, Arr: []int64{src, tag}}
}

const intHandle = 16 + 2 // MPI_INT predefined handle

// sendRec builds an MPI_Send record: rank sends to dest with tag on
// world (handle 1), from a heap buffer at addr.
func sendRec(rank int, addr uint64, dest, tag int64) *mpispec.CallRecord {
	return rec(rank, mpispec.FSend,
		vp(addr), vi(1), vdt(intHandle), vr(dest), vt(tag), vc(1, int64(rank)))
}

func TestRelativeRankMakesStencilSignaturesIdentical(t *testing.T) {
	// §3.4.2: send(dest=rank+1) must encode identically on all ranks.
	var sigs [][]byte
	for rank := 0; rank < 4; rank++ {
		e := NewEncoder(rank, nil)
		e.MemAlloc(0x1000, 64, 0)
		sigs = append(sigs, e.Encode(sendRec(rank, 0x1000, int64(rank+1), 999)))
	}
	for i := 1; i < len(sigs); i++ {
		if !bytes.Equal(sigs[0], sigs[i]) {
			t.Fatalf("rank %d stencil signature differs:\n%v\n%v", i, sigs[0], sigs[i])
		}
	}
}

func TestAbsoluteRanksDiffer(t *testing.T) {
	// Same destination value from different ranks = different deltas =
	// different signatures (that is the price of relative encoding,
	// and it is correct: the calls really differ in behaviour).
	e0 := NewEncoder(0, nil)
	e0.MemAlloc(0x1000, 64, 0)
	e1 := NewEncoder(1, nil)
	e1.MemAlloc(0x1000, 64, 0)
	s0 := e0.Encode(sendRec(0, 0x1000, 3, 0))
	s1 := e1.Encode(sendRec(1, 0x1000, 3, 0))
	if bytes.Equal(s0, s1) {
		t.Fatal("sends to the same absolute dest from different ranks must differ")
	}
}

func TestRootParamAbsolute(t *testing.T) {
	// Bcast(root=0) must encode identically on every rank: root is a
	// root-class parameter, not a peer, so it is stored absolutely.
	build := func(rank int) []byte {
		e := NewEncoder(rank, nil)
		e.MemAlloc(0x2000, 128, 0)
		return e.Encode(rec(rank, mpispec.FBcast,
			vp(0x2000), vi(4), vdt(intHandle), vr(0), vc(1, int64(rank))))
	}
	ref := build(0)
	for rank := 1; rank < 6; rank++ {
		if !bytes.Equal(ref, build(rank)) {
			t.Fatalf("Bcast signature differs on rank %d", rank)
		}
	}
}

func TestConstantTagEncodesIdentically(t *testing.T) {
	// tag=999 is far outside the relative window on every rank here,
	// so it is stored absolutely and the signatures match.
	a := NewEncoder(3, nil)
	a.MemAlloc(0x1000, 64, 0)
	b := NewEncoder(7, nil)
	b.MemAlloc(0x1000, 64, 0)
	sa := a.Encode(sendRec(3, 0x1000, 4, 999))
	sb := b.Encode(sendRec(7, 0x1000, 8, 999))
	if !bytes.Equal(sa, sb) {
		t.Fatal("constant-tag stencil signatures must match")
	}
}

func TestRankRelatedTagEncodesIdentically(t *testing.T) {
	// tag = rank is within the window: relative encoding kicks in.
	a := NewEncoder(3, nil)
	a.MemAlloc(0x1000, 64, 0)
	b := NewEncoder(9, nil)
	b.MemAlloc(0x1000, 64, 0)
	sa := a.Encode(sendRec(3, 0x1000, 4, 3))
	sb := b.Encode(sendRec(9, 0x1000, 10, 9))
	if !bytes.Equal(sa, sb) {
		t.Fatal("rank-related tag signatures must match")
	}
}

func TestProcNullAndAnySource(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	s1 := e.Encode(rec(0, mpispec.FRecv,
		vp(0x1000), vi(1), vdt(intHandle), vr(-2 /*ANY_SOURCE*/), vt(-1 /*ANY_TAG*/), vc(1, 0), vst(2, 5)))
	d, err := Decode(s1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Args[3].Sel != selAnySrc {
		t.Error("ANY_SOURCE lost")
	}
	if d.Args[4].Sel != selAnyTag {
		t.Error("ANY_TAG lost")
	}
	// Status preserved: source (relative to rank 0) and tag.
	st := d.Args[6]
	if st.Arr[0].Resolve(0) != 2 || st.Arr[1].I != 5 {
		t.Errorf("status lost: %+v", st)
	}
	s2 := e.Encode(sendRec(0, 0x1000, -1 /*PROC_NULL*/, 0))
	d2, _ := Decode(s2)
	if d2.Args[3].Sel != selProcNull {
		t.Error("PROC_NULL lost")
	}
}

func TestCommIDAssignment(t *testing.T) {
	oob := newFakeOOB(1) // group max is the initial max (world=0, self=1)
	e := NewEncoder(0, oob)
	// A Comm_split creating handle 300.
	split := rec(0, mpispec.FCommSplit, vc(1, 0),
		mpispec.Value{Kind: mpispec.KColor, I: 0}, mpispec.Value{Kind: mpispec.KKey, I: 0},
		vc(300, 0))
	s := e.Encode(split)
	d, err := Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Args[0].I != 0 {
		t.Errorf("world comm id = %d, want 0", d.Args[0].I)
	}
	if d.Args[3].I != 2 {
		t.Errorf("new comm id = %d, want 2 (group max 1 + 1)", d.Args[3].I)
	}
	// Use of the new comm sees the same symbolic id.
	e.MemAlloc(0x1000, 64, 0)
	use := e.Encode(rec(0, mpispec.FSend,
		vp(0x1000), vi(1), vdt(intHandle), vr(1), vt(0), vc(300, 0)))
	du, _ := Decode(use)
	if du.Args[5].I != 2 {
		t.Errorf("use of new comm id = %d, want 2", du.Args[5].I)
	}
}

func TestCommIdupPendingThenResolved(t *testing.T) {
	oob := newFakeOOB(1)
	e := NewEncoder(0, oob)
	idup := rec(0, mpispec.FCommIdup, vc(1, 0), vc(400, 0), vreq(77))
	e.Encode(idup)
	if e.PendingComms() != 1 {
		t.Fatalf("pending = %d", e.PendingComms())
	}
	// Using the comm before completion encodes the pending placeholder.
	e.MemAlloc(0x1000, 64, 0)
	use := e.Encode(rec(0, mpispec.FSend,
		vp(0x1000), vi(1), vdt(intHandle), vr(1), vt(0), vc(400, 0)))
	d, _ := Decode(use)
	if d.Args[5].I != commPending {
		t.Errorf("pre-completion comm id = %d, want pending placeholder", d.Args[5].I)
	}
	// Completion arrives; a Wait epilogue polls and resolves.
	oob.ready[1] = true
	wait := e.Encode(rec(0, mpispec.FWait, vreq(77), vst(-3, -3)))
	_ = wait
	if e.PendingComms() != 0 {
		t.Fatal("pending comm not resolved after poll")
	}
	use2 := e.Encode(rec(0, mpispec.FSend,
		vp(0x1000), vi(1), vdt(intHandle), vr(1), vt(0), vc(400, 0)))
	d2, _ := Decode(use2)
	if d2.Args[5].I != 2 {
		t.Errorf("post-completion comm id = %d, want 2", d2.Args[5].I)
	}
}

func TestRequestPoolsStableAcrossCompletionOrders(t *testing.T) {
	// The §3.4.3 scenario: three Irecvs with different sources,
	// completed in a different order each iteration. The signatures of
	// every call must be identical across iterations.
	runIter := func(e *Encoder, order []int) [][]byte {
		var sigs [][]byte
		reqs := []int64{1000, 1001, 1002}
		for i := 0; i < 3; i++ {
			r := rec(0, mpispec.FIrecv,
				vp(0x1000), vi(1), vdt(intHandle), vr(int64(i+1)), vt(0), vc(1, 0), vreq(reqs[i]))
			sigs = append(sigs, e.Encode(r))
		}
		for _, i := range order {
			w := rec(0, mpispec.FWait, vreq(reqs[i]), vst(int64(i+1), 0))
			sigs = append(sigs, e.Encode(w))
		}
		return sigs
	}
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	base := runIter(e, []int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 2, 0}, {0, 2, 1}} {
		got := runIter(e, order)
		for i := 0; i < 3; i++ { // the Irecv signatures
			if !bytes.Equal(base[i], got[i]) {
				t.Fatalf("order %v: Irecv %d signature changed", order, i)
			}
		}
	}
}

func TestSharedPoolWouldBreak(t *testing.T) {
	// Demonstrate that two requests with DIFFERENT signatures get ids
	// from independent pools — both start at 0.
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	s1 := e.Encode(rec(0, mpispec.FIrecv, vp(0x1000), vi(1), vdt(intHandle), vr(1), vt(0), vc(1, 0), vreq(10)))
	s2 := e.Encode(rec(0, mpispec.FIrecv, vp(0x1000), vi(1), vdt(intHandle), vr(2), vt(0), vc(1, 0), vreq(11)))
	d1, _ := Decode(s1)
	d2, _ := Decode(s2)
	if d1.Args[6].I != 0 || d2.Args[6].I != 0 {
		t.Fatalf("per-signature pools must both start at 0: %d %d", d1.Args[6].I, d2.Args[6].I)
	}
	if e.NumRequestPools() != 2 {
		t.Fatalf("NumRequestPools = %d", e.NumRequestPools())
	}
}

func TestPersistentRequestKeepsIDAcrossWaits(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	e.Encode(rec(0, mpispec.FSendInit, vp(0x1000), vi(1), vdtv(), vr(1), vt(0), vc(1, 0), vreq(50)))
	sigStart1 := e.Encode(rec(0, mpispec.FStart, vreq(50)))
	e.Encode(rec(0, mpispec.FWait, vreq(50), vst(-3, -3)))
	sigStart2 := e.Encode(rec(0, mpispec.FStart, vreq(50)))
	if !bytes.Equal(sigStart1, sigStart2) {
		t.Fatal("persistent request id changed across Start/Wait cycle")
	}
	// After Request_free the id is recycled.
	e.Encode(rec(0, mpispec.FRequestFree, vreq(50)))
	e.Encode(rec(0, mpispec.FSendInit, vp(0x1000), vi(1), vdtv(), vr(1), vt(0), vc(1, 0), vreq(51)))
	sigStart3 := e.Encode(rec(0, mpispec.FStart, vreq(51)))
	if !bytes.Equal(sigStart1, sigStart3) {
		t.Fatal("recycled persistent id should reproduce the original signature")
	}
}

func vdtv() mpispec.Value { return vdt(intHandle) }

func TestMemoryPointerEncoding(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 256, 0)
	e.MemAlloc(0x2000, 256, 1) // device allocation
	// Interior pointer into the first segment.
	s := e.Encode(sendRec(0, 0x1000+128, 1, 0))
	d, _ := Decode(s)
	if d.Args[0].Sel != ptrHeap || d.Args[0].I != 0 || d.Args[0].Off != 128 {
		t.Errorf("interior pointer decoded as %+v", d.Args[0])
	}
	// Device pointer.
	s2 := e.Encode(sendRec(0, 0x2000, 1, 0))
	d2, _ := Decode(s2)
	if d2.Args[0].I != 1 || d2.Args[0].Dev != 1 {
		t.Errorf("device pointer decoded as %+v", d2.Args[0])
	}
	// Unknown (stack) address: conservative fallback.
	s3 := e.Encode(sendRec(0, 0x7f0000000000, 1, 0))
	d3, _ := Decode(s3)
	if d3.Args[0].Sel != ptrStack {
		t.Errorf("stack pointer decoded as %+v", d3.Args[0])
	}
	// Same stack address keeps its id.
	s4 := e.Encode(sendRec(0, 0x7f0000000000, 1, 0))
	if !bytes.Equal(s3, s4) {
		t.Error("stack id not stable")
	}
	// Free + realloc reuses segment id 0.
	e.MemFree(0x1000)
	e.MemAlloc(0x9000, 64, 0)
	s5 := e.Encode(sendRec(0, 0x9000, 1, 0))
	d5, _ := Decode(s5)
	if d5.Args[0].I != 0 {
		t.Errorf("segment id not recycled: %+v", d5.Args[0])
	}
}

func TestNilPointer(t *testing.T) {
	e := NewEncoder(0, nil)
	s := e.Encode(sendRec(0, 0, 1, 0))
	d, _ := Decode(s)
	if d.Args[0].Sel != ptrNil {
		t.Errorf("nil pointer decoded as %+v", d.Args[0])
	}
}

func TestDatatypeLifecycle(t *testing.T) {
	e := NewEncoder(0, nil)
	// Create a derived type (handle 500): gets symbolic id 16 (after
	// the 16 predefined).
	s := e.Encode(rec(0, mpispec.FTypeContiguous, vi(4), vdt(intHandle), vdt(500)))
	d, _ := Decode(s)
	if d.Args[1].I != 2 { // MPI_INT predefined id
		t.Errorf("MPI_INT symbolic id = %d", d.Args[1].I)
	}
	if d.Args[2].I != 16 {
		t.Errorf("derived type id = %d, want 16", d.Args[2].I)
	}
	// Use in a send, then free, then create another: id reused.
	e.MemAlloc(0x1000, 64, 0)
	use := e.Encode(rec(0, mpispec.FSend, vp(0x1000), vi(1), vdt(500), vr(1), vt(0), vc(1, 0)))
	du, _ := Decode(use)
	if du.Args[2].I != 16 {
		t.Errorf("type id in use = %d", du.Args[2].I)
	}
	e.Encode(rec(0, mpispec.FTypeFree, vdt(500)))
	s2 := e.Encode(rec(0, mpispec.FTypeContiguous, vi(8), vdt(intHandle), vdt(501)))
	d2, _ := Decode(s2)
	if d2.Args[2].I != 16 {
		t.Errorf("freed type id not recycled: %d", d2.Args[2].I)
	}
}

func TestGroupAndOpLifecycle(t *testing.T) {
	e := NewEncoder(0, nil)
	s := e.Encode(rec(0, mpispec.FCommGroup, vc(1, 0), mpispec.Value{Kind: mpispec.KGroup, I: 600}))
	d, _ := Decode(s)
	if d.Args[1].I != 0 {
		t.Errorf("group id = %d", d.Args[1].I)
	}
	e.Encode(rec(0, mpispec.FGroupFree, mpispec.Value{Kind: mpispec.KGroup, I: 600}))
	s2 := e.Encode(rec(0, mpispec.FCommGroup, vc(1, 0), mpispec.Value{Kind: mpispec.KGroup, I: 601}))
	d2, _ := Decode(s2)
	if d2.Args[1].I != 0 {
		t.Errorf("group id not recycled: %d", d2.Args[1].I)
	}
	// Predefined op MPI_SUM has reserved id 0.
	e.MemAlloc(0x3000, 64, 0)
	ar := e.Encode(rec(0, mpispec.FAllreduce, vp(0x3000), vp(0x3000+32), vi(1), vdt(intHandle),
		mpispec.Value{Kind: mpispec.KOp, I: 64}, vc(1, 0)))
	da, _ := Decode(ar)
	if da.Args[4].I != 0 {
		t.Errorf("MPI_SUM id = %d", da.Args[4].I)
	}
	// User op: pool id after the 16 reserved.
	s3 := e.Encode(rec(0, mpispec.FOpCreate, vi(0), vi(1), mpispec.Value{Kind: mpispec.KOp, I: 700}))
	d3, _ := Decode(s3)
	if d3.Args[2].I != 16 {
		t.Errorf("user op id = %d", d3.Args[2].I)
	}
}

func TestWaitallReleasesRequests(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	mk := func(h int64, src int64) []byte {
		return e.Encode(rec(0, mpispec.FIrecv, vp(0x1000), vi(1), vdt(intHandle), vr(src), vt(0), vc(1, 0), vreq(h)))
	}
	a1 := mk(1, 1)
	mk(2, 2)
	// Waitall over both.
	e.Encode(rec(0, mpispec.FWaitall, vi(2),
		mpispec.Value{Kind: mpispec.KReqArray, Arr: []int64{1, 2}},
		mpispec.Value{Kind: mpispec.KStatArray, Arr: []int64{1, 0, 2, 0}}))
	// Reissue: ids recycled, signatures identical.
	b1 := mk(3, 1)
	if !bytes.Equal(a1, b1) {
		t.Fatal("request ids not recycled after Waitall")
	}
}

func TestTestsomePartialRelease(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	for h := int64(1); h <= 3; h++ {
		e.Encode(rec(0, mpispec.FIrecv, vp(0x1000), vi(1), vdt(intHandle), vr(h), vt(0), vc(1, 0), vreq(h)))
	}
	// Testsome completes only index 1.
	e.Encode(rec(0, mpispec.FTestsome, vi(3),
		mpispec.Value{Kind: mpispec.KReqArray, Arr: []int64{1, 2, 3}},
		vi(1),
		mpispec.Value{Kind: mpispec.KIndexArray, Arr: []int64{1}},
		mpispec.Value{Kind: mpispec.KStatArray, Arr: []int64{2, 0}}))
	// Request 2's id is free again; a new Irecv with the same
	// signature (src=2) gets id 0 back.
	s := e.Encode(rec(0, mpispec.FIrecv, vp(0x1000), vi(1), vdt(intHandle), vr(2), vt(0), vc(1, 0), vreq(9)))
	d, _ := Decode(s)
	if d.Args[6].I != 0 {
		t.Errorf("recycled request id = %d, want 0", d.Args[6].I)
	}
	// Requests 1 and 3 still live: their ids are 0 in their own pools
	// (per-signature isolation).
	s1 := e.Encode(rec(0, mpispec.FWait, vreq(1), vst(1, 0)))
	d1, _ := Decode(s1)
	if d1.Args[0].I != 0 {
		t.Errorf("live request id = %d", d1.Args[0].I)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty signature should fail")
	}
	if _, err := Decode([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("unknown function id should fail")
	}
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	s := e.Encode(sendRec(0, 0x1000, 1, 0))
	if _, err := Decode(s[:len(s)-1]); err == nil {
		t.Error("truncated signature should fail")
	}
	if _, err := Decode(append(s, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestDecodeRoundtripAllKinds(t *testing.T) {
	e := NewEncoder(2, nil)
	e.MemAlloc(0x1000, 4096, 0)
	records := []*mpispec.CallRecord{
		rec(2, mpispec.FInit),
		sendRec(2, 0x1000, 3, 999),
		rec(2, mpispec.FAlltoallv,
			vp(0x1000), mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{1, 2, 3}},
			mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{0, 1, 3}}, vdt(intHandle),
			vp(0x1100), mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{3, 2, 1}},
			mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{0, 3, 5}}, vdt(intHandle),
			vc(1, 2)),
		rec(2, mpispec.FCommSetName, vc(1, 2), mpispec.Value{Kind: mpispec.KString, S: "my-comm"}),
		rec(2, mpispec.FWaitsome, vi(2),
			mpispec.Value{Kind: mpispec.KReqArray, Arr: []int64{0, 0}},
			vi(1), mpispec.Value{Kind: mpispec.KIndexArray, Arr: []int64{0}},
			mpispec.Value{Kind: mpispec.KStatArray, Arr: []int64{1, 5}}),
	}
	for _, r := range records {
		s := e.Encode(r)
		d, err := Decode(s)
		if err != nil {
			t.Fatalf("%s: %v", mpispec.Spec[r.Func].Name, err)
		}
		if d.Func != r.Func {
			t.Fatalf("func mismatch: %v vs %v", d.Func, r.Func)
		}
		if len(d.Args) != len(r.Args) {
			t.Fatalf("%s: %d args decoded, want %d", mpispec.Spec[r.Func].Name, len(d.Args), len(r.Args))
		}
		if d.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 64, 0)
	s := e.Encode(sendRec(0, 0x1000, 1, 999))
	d, _ := Decode(s)
	str := d.String()
	want := "MPI_Send(buf=seg0+0, count=1, datatype=2, dest=+1, tag=999, comm=0)"
	if str != want {
		t.Errorf("String() = %q, want %q", str, want)
	}
}
