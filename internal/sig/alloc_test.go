package sig

import "testing"

// TestEncodeToWarmPathAllocFree pins the tracer's per-call encoding
// cost: once the scratch buffer has grown to the workload's signature
// sizes, EncodeTo of a plain point-to-point call must not allocate.
func TestEncodeToWarmPathAllocFree(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 4096, 0)
	r := sendRec(0, 0x1010, 1, 7)

	var buf []byte
	// Warm up: grow the scratch and settle lifecycle state.
	for i := 0; i < 4; i++ {
		buf = e.EncodeTo(buf[:0], r)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		buf = e.EncodeTo(buf[:0], r)
	})
	if allocs != 0 {
		t.Fatalf("EncodeTo warm path allocates %v times per call, want 0", allocs)
	}
}
