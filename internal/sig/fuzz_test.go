package sig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// TestDecodeNeverPanics feeds random byte strings to the decoder; it
// must reject or decode them, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeBitFlips corrupts valid signatures one byte at a time; the
// decoder must never panic and never silently accept trailing garbage.
func TestDecodeBitFlips(t *testing.T) {
	e := NewEncoder(0, nil)
	e.MemAlloc(0x1000, 1024, 0)
	sigs := [][]byte{
		e.Encode(sendRec(0, 0x1000, 1, 999)),
		e.Encode(rec(0, mpispec.FAlltoallv,
			vp(0x1000), mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{1, 2}},
			mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{0, 1}}, vdt(intHandle),
			vp(0x1100), mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{2, 1}},
			mpispec.Value{Kind: mpispec.KIntArray, Arr: []int64{0, 2}}, vdt(intHandle),
			vc(1, 0))),
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range sigs {
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), s...)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder panicked on bit flip: %v", r)
					}
				}()
				Decode(mut)
			}()
		}
	}
}

// TestEncodeDecodeRandomRecords round-trips randomized (but
// spec-shaped) records through encode+decode and checks the decoded
// argument count and kinds.
func TestEncodeDecodeRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	e := NewEncoder(3, nil)
	e.MemAlloc(0x1000, 1<<16, 0)
	funcs := []mpispec.FuncID{mpispec.FSend, mpispec.FRecv, mpispec.FBcast,
		mpispec.FAllreduce, mpispec.FBarrier, mpispec.FAlltoallv, mpispec.FCommSetName}
	for trial := 0; trial < 500; trial++ {
		fid := funcs[rng.Intn(len(funcs))]
		spec := mpispec.Spec[fid]
		args := make([]mpispec.Value, len(spec.Params))
		for i, p := range spec.Params {
			v := mpispec.Value{Kind: p.Kind}
			switch p.Kind {
			case mpispec.KInt:
				v.I = int64(rng.Intn(1 << 20))
			case mpispec.KRank:
				v.I = int64(rng.Intn(64))
			case mpispec.KTag, mpispec.KColor, mpispec.KKey:
				v.I = int64(rng.Intn(2000) - 1)
			case mpispec.KComm:
				v.I = 1
				v.Arr = []int64{3}
			case mpispec.KDatatype:
				v.I = intHandle
			case mpispec.KOp:
				v.I = 64
			case mpispec.KPtr:
				v.I = 0x1000 + int64(rng.Intn(1<<15))
			case mpispec.KString:
				v.S = "abcdefgh"[:rng.Intn(8)]
			case mpispec.KIntArray, mpispec.KIndexArray:
				n := rng.Intn(8)
				for k := 0; k < n; k++ {
					v.Arr = append(v.Arr, int64(rng.Intn(100)-5))
				}
			case mpispec.KStatus:
				v.Arr = []int64{int64(rng.Intn(8)), int64(rng.Intn(100))}
			case mpispec.KStatArray:
				v.Arr = []int64{1, 2, 3, 4}
			case mpispec.KRequest:
				v.I = 0
			case mpispec.KReqArray:
				v.Arr = []int64{0, 0}
			}
			args[i] = v
		}
		s := e.Encode(&mpispec.CallRecord{Func: fid, Args: args, Rank: 3})
		d, err := Decode(s)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, spec.Name, err)
		}
		if d.Func != fid || len(d.Args) != len(args) {
			t.Fatalf("trial %d: decoded shape mismatch", trial)
		}
		for i, p := range spec.Params {
			if d.Args[i].Kind != p.Kind {
				t.Fatalf("trial %d arg %d: kind %v, want %v", trial, i, d.Args[i].Kind, p.Kind)
			}
		}
	}
}
