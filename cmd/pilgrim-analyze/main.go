// pilgrim-analyze computes derived views of a compressed Pilgrim
// trace: a rank×rank communication matrix, a per-function time
// profile with load-imbalance factors, late-sender/late-receiver
// statistics over matched point-to-point pairs, a critical-path
// estimate, and exports to Chrome trace-event JSON (Perfetto) or CSV.
//
// Usage:
//
//	pilgrim-analyze trace.pilgrim                  # summary
//	pilgrim-analyze -comm-matrix trace.pilgrim
//	pilgrim-analyze -profile trace.pilgrim
//	pilgrim-analyze -critical-path trace.pilgrim
//	pilgrim-analyze -perfetto out.json trace.pilgrim
//	pilgrim-analyze -csv outdir trace.pilgrim
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/analysis"
)

func main() {
	var (
		commMatrix = flag.Bool("comm-matrix", false, "print the rank×rank message/byte matrix")
		profile    = flag.Bool("profile", false, "print the per-function time profile")
		critPath   = flag.Bool("critical-path", false, "print the estimated critical path")
		perfetto   = flag.String("perfetto", "", "write Chrome trace-event JSON to this file (load in ui.perfetto.dev)")
		csvDir     = flag.String("csv", "", "write comm_matrix.csv, profile.csv and messages.csv into this directory")
		topN       = flag.Int("top", 0, "limit profile/critical-path output to the top N rows (0 = all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilgrim-analyze [flags] trace.pilgrim")
		flag.PrintDefaults()
		os.Exit(2)
	}

	file, err := pilgrim.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a, err := pilgrim.Analyze(file)
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	any := false
	if *perfetto != "" {
		any = true
		if err := writePerfetto(a, *perfetto); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote %s (%d events, %d flow pairs)\n", *perfetto, totalEvents(a), len(a.Matches))
	}
	if *csvDir != "" {
		any = true
		if err := writeCSVs(a, *csvDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote %s/{comm_matrix,profile,messages}.csv\n", *csvDir)
	}
	if *commMatrix {
		any = true
		printMatrix(w, a)
	}
	if *profile {
		any = true
		printProfile(w, a, *topN)
	}
	if *critPath {
		any = true
		printCriticalPath(w, a, *topN)
	}
	if !any {
		printSummary(w, a)
	}
}

func totalEvents(a *pilgrim.Analysis) int {
	n := 0
	for _, evs := range a.Events {
		n += len(evs)
	}
	return n
}

func printSummary(w *bufio.Writer, a *pilgrim.Analysis) {
	timing := "aggregated (synthesized per-rank timelines)"
	if a.File.TimingMode == pilgrim.TimingLossy {
		timing = "lossy (recovered per-call wall clock)"
	}
	fmt.Fprintf(w, "ranks:    %d\n", a.File.NumRanks)
	fmt.Fprintf(w, "events:   %d MPI calls, wall %s\n", totalEvents(a), fmtNs(a.WallNs()))
	fmt.Fprintf(w, "timing:   %s\n", timing)
	fmt.Fprintf(w, "p2p:      %d sends, %d recvs, %d matched, %d/%d unmatched\n",
		len(a.Sends), len(a.Recvs), len(a.Matches), len(a.UnmatchedSends), len(a.UnmatchedRecvs))
	fmt.Fprintf(w, "traffic:  %d messages, %d bytes\n", a.Matrix.TotalMsgs(), a.Matrix.TotalBytes())
	ls := a.Late
	fmt.Fprintf(w, "late:     %d late senders (recv idle %s, max %s), %d late receivers (send ahead %s, max %s)\n",
		ls.LateSenders, fmtNs(ls.RecvWaitNs), fmtNs(ls.MaxRecvWaitNs),
		ls.LateReceivers, fmtNs(ls.SendWaitNs), fmtNs(ls.MaxSendWaitNs))
	if len(a.Profile.Funcs) > 0 {
		top := a.Profile.Funcs[0]
		fmt.Fprintf(w, "top func: %s (%d calls, %s total, imbalance %.2f)\n",
			top.Func.Name(), top.Calls, fmtNs(top.TotalNs), top.Imbalance)
	}
	fmt.Fprintln(w, "\nrun with -comm-matrix, -profile, -critical-path, -perfetto out.json, or -csv dir for details")
}

func printMatrix(w *bufio.Writer, a *pilgrim.Analysis) {
	m := a.Matrix
	fmt.Fprintln(w, "# communication matrix: messages (bytes) per src→dst pair")
	fmt.Fprintf(w, "%6s", "")
	for d := 0; d < m.Ranks; d++ {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("→%d", d))
	}
	fmt.Fprintln(w)
	for s := 0; s < m.Ranks; s++ {
		fmt.Fprintf(w, "%6d", s)
		for d := 0; d < m.Ranks; d++ {
			if m.Count[s][d] == 0 {
				fmt.Fprintf(w, " %14s", ".")
			} else {
				fmt.Fprintf(w, " %14s", fmt.Sprintf("%d (%s)", m.Count[s][d], fmtBytes(m.Bytes[s][d])))
			}
		}
		fmt.Fprintln(w)
	}
}

func printProfile(w *bufio.Writer, a *pilgrim.Analysis, topN int) {
	fmt.Fprintf(w, "%-24s %9s %12s %12s %12s %12s %10s\n",
		"function", "calls", "total", "min/rank", "mean/rank", "max/rank", "imbalance")
	for i, fp := range a.Profile.Funcs {
		if topN > 0 && i >= topN {
			fmt.Fprintf(w, "... (%d more functions)\n", len(a.Profile.Funcs)-i)
			break
		}
		fmt.Fprintf(w, "%-24s %9d %12s %12s %12s %12s %10.2f\n",
			fp.Func.Name(), fp.Calls, fmtNs(fp.TotalNs),
			fmtNs(fp.MinRankNs), fmtNs(int64(fp.MeanNs)), fmtNs(fp.MaxRankNs), fp.Imbalance)
	}
}

func printCriticalPath(w *bufio.Writer, a *pilgrim.Analysis, topN int) {
	path := a.CriticalPath()
	if a.File.TimingMode != pilgrim.TimingLossy {
		fmt.Fprintln(w, "# note: aggregated timing mode — per-rank timelines are synthesized, cross-rank ordering is approximate")
	}
	var onPath int64
	for _, st := range path {
		onPath += st.WaitNs
	}
	fmt.Fprintf(w, "# critical path: %d steps, wall %s\n", len(path), fmtNs(a.WallNs()))
	fmt.Fprintf(w, "%-6s %-8s %-24s %14s %14s %6s\n", "rank", "call", "function", "end", "wait", "edge")
	for i, st := range path {
		if topN > 0 && i >= topN {
			fmt.Fprintf(w, "... (%d more steps)\n", len(path)-i)
			break
		}
		edge := ""
		if st.ViaMsg {
			edge = "msg"
		}
		fmt.Fprintf(w, "%-6d %-8d %-24s %14s %14s %6s\n",
			st.Rank, st.Index, st.Func.Name(), fmtNs(st.TEnd), fmtNs(st.WaitNs), edge)
	}
}

func writePerfetto(a *pilgrim.Analysis, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSVs(a *pilgrim.Analysis, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range []struct {
		name  string
		write func(*analysis.Analysis, *os.File) error
	}{
		{"comm_matrix.csv", func(a *analysis.Analysis, f *os.File) error { return a.WriteCommMatrixCSV(f) }},
		{"profile.csv", func(a *analysis.Analysis, f *os.File) error { return a.WriteProfileCSV(f) }},
		{"messages.csv", func(a *analysis.Analysis, f *os.File) error { return a.WriteMessagesCSV(f) }},
	} {
		f, err := os.Create(filepath.Join(dir, t.name))
		if err != nil {
			return err
		}
		if err := t.write(a, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-analyze:", err)
	os.Exit(1)
}
