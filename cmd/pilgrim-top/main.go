// pilgrim-top is a live terminal dashboard for a pilgrim-collectd
// fleet view: it subscribes to the collector's /watch SSE stream and
// scrapes /debug/vars, rendering a runs table (phase, rank progress
// bar, bytes, ingest rate, last arrival age), ingest/finalize/e2e
// latency percentiles, and obs-drop / journal-lag / watch-drop gauges.
// Dependency-free: plain net/http plus ANSI escapes.
//
// Usage:
//
//	pilgrim-top -admin localhost:7778          # live dashboard, 1s refresh
//	pilgrim-top -admin localhost:7778 -once    # one snapshot to stdout (CI/scripts)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// healthRow mirrors internal/collect.HealthStatus (decoded from JSON;
// no import so the binary stays a pure admin-API consumer).
type healthRow struct {
	Run               string  `json:"run"`
	Phase             string  `json:"phase"`
	Epoch             uint64  `json:"epoch"`
	WorldSize         int     `json:"world_size"`
	RanksSeen         int     `json:"ranks_seen"`
	Bytes             int64   `json:"bytes"`
	IngestRateBps     float64 `json:"ingest_rate_bps"`
	LastArrivalAgeSec float64 `json:"last_arrival_age_sec"`
	JournalLagNs      int64   `json:"journal_fsync_lag_ns"`
	MergeBacklog      int64   `json:"merge_backlog"`
	ClockOffsetNs     int64   `json:"clock_offset_ns"`
}

// watchEvent is the /watch stream's JSON payload.
type watchEvent struct {
	Type   string     `json:"type"`
	Run    string     `json:"run"`
	Phase  string     `json:"phase"`
	Prev   string     `json:"prev"`
	TsNs   int64      `json:"ts_ns"`
	Health *healthRow `json:"health"`
}

// model is the dashboard's state, fed by the watch stream and scrapes.
type model struct {
	mu        sync.Mutex
	runs      map[string]*healthRow
	events    []string // recent event log lines, newest last
	vars      map[string]json.RawMessage
	connected bool
	scrapeErr string
	maxRows   int // cap the runs table to the top-N by ingest rate; <=0 unbounded
}

func newModel() *model { return &model{runs: make(map[string]*healthRow)} }

func (m *model) applyEvent(ev watchEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Health != nil {
		m.runs[ev.Health.Run] = ev.Health
	} else if ev.Run != "" && ev.Phase != "" {
		if r, ok := m.runs[ev.Run]; ok {
			r.Phase = ev.Phase
		} else {
			m.runs[ev.Run] = &healthRow{Run: ev.Run, Phase: ev.Phase}
		}
	}
	if ev.Type == "phase" || ev.Type == "run-admitted" {
		line := fmt.Sprintf("%s  %-12s %s", time.Unix(0, ev.TsNs).Format("15:04:05"), ev.Type, ev.Run)
		if ev.Type == "phase" {
			line += fmt.Sprintf(": %s → %s", ev.Prev, ev.Phase)
		}
		m.events = append(m.events, line)
		if len(m.events) > 8 {
			m.events = m.events[len(m.events)-8:]
		}
	}
}

// watchLoop follows the SSE stream, reconnecting with backoff.
func (m *model) watchLoop(base string, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		err := m.watchOnce(base, done)
		m.mu.Lock()
		m.connected = false
		if err != nil {
			m.scrapeErr = err.Error()
		}
		m.mu.Unlock()
		select {
		case <-done:
			return
		case <-time.After(time.Second):
		}
	}
}

func (m *model) watchOnce(base string, done <-chan struct{}) error {
	resp, err := http.Get(base + "/watch")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/watch: %s", resp.Status)
	}
	m.mu.Lock()
	m.connected, m.scrapeErr = true, ""
	m.mu.Unlock()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-done:
			resp.Body.Close() // unblocks the scanner
		case <-stop:
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event: lines, keepalive comments, blank separators
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		m.applyEvent(ev)
	}
	return sc.Err()
}

// scrape pulls /runs + per-run health + /debug/vars once.
func (m *model) scrape(base string) error {
	var runs []struct {
		ID string `json:"id"`
	}
	if err := getJSON(base+"/runs", &runs); err != nil {
		return err
	}
	seen := make(map[string]bool, len(runs))
	for _, r := range runs {
		var h healthRow
		if err := getJSON(base+"/runs/"+r.ID+"/health", &h); err != nil {
			continue
		}
		seen[r.ID] = true
		m.mu.Lock()
		m.runs[h.Run] = &h
		m.mu.Unlock()
	}
	m.mu.Lock()
	for id := range m.runs {
		if !seen[id] {
			delete(m.runs, id)
		}
	}
	m.mu.Unlock()
	var vars map[string]json.RawMessage
	if err := getJSON(base+"/debug/vars", &vars); err != nil {
		return err
	}
	m.mu.Lock()
	m.vars = vars
	m.mu.Unlock()
	return nil
}

func getJSON(url string, v any) error {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// histo is the expvar shape the metrics registry emits for histograms.
type histo struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (m *model) histo(name string) (histo, bool) {
	var h histo
	raw, ok := m.vars[name]
	if !ok {
		return h, false
	}
	return h, json.Unmarshal(raw, &h) == nil
}

func (m *model) scalar(name string) float64 {
	var v float64
	if raw, ok := m.vars[name]; ok {
		json.Unmarshal(raw, &v)
	}
	return v
}

// --- rendering ---------------------------------------------------------------

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtDurNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// bar renders an N-cell progress bar.
func bar(got, want, width int) string {
	if want <= 0 {
		want = 1
	}
	fill := got * width / want
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

func phaseColor(phase string, color bool) (string, string) {
	if !color {
		return "", ""
	}
	switch phase {
	case "finalized":
		return "\x1b[32m", "\x1b[0m" // green
	case "salvaged", "awaiting-stragglers":
		return "\x1b[33m", "\x1b[0m" // yellow
	case "failed":
		return "\x1b[31m", "\x1b[0m" // red
	case "ingesting", "finalizing":
		return "\x1b[36m", "\x1b[0m" // cyan
	default:
		return "", ""
	}
}

func (m *model) render(w *strings.Builder, base string, color bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	link := "live"
	if !m.connected {
		link = "polling"
		if m.scrapeErr != "" {
			link = "disconnected (" + m.scrapeErr + ")"
		}
	}
	fmt.Fprintf(w, "pilgrim-top — %s — %s — %s\n\n", base, time.Now().Format("15:04:05"), link)

	// Hottest runs first: an amplified loadgen fleet can hold thousands
	// of runs, so the table shows the top-N by ingest rate (ID as the
	// deterministic tie-break) and counts the rest in a footer.
	ids := make([]string, 0, len(m.runs))
	for id := range m.runs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := m.runs[ids[i]], m.runs[ids[j]]
		if ri.IngestRateBps != rj.IngestRateBps {
			return ri.IngestRateBps > rj.IngestRateBps
		}
		return ids[i] < ids[j]
	})
	shown := ids
	if m.maxRows > 0 && len(shown) > m.maxRows {
		shown = shown[:m.maxRows]
	}
	fmt.Fprintf(w, "%-20s %-20s %-22s %10s %10s %9s %9s %8s\n",
		"RUN", "PHASE", "RANKS", "BYTES", "RATE", "LAST-ARR", "JLAG", "BACKLOG")
	if len(ids) == 0 {
		fmt.Fprintf(w, "  (no runs)\n")
	}
	for _, id := range shown {
		r := m.runs[id]
		on, off := phaseColor(r.Phase, color)
		ranks := fmt.Sprintf("%s %d/%d", bar(r.RanksSeen, r.WorldSize, 10), r.RanksSeen, r.WorldSize)
		age := "-"
		if r.LastArrivalAgeSec >= 0 {
			age = fmt.Sprintf("%.1fs", r.LastArrivalAgeSec)
		}
		jlag := "-"
		if r.JournalLagNs > 0 {
			jlag = fmtDurNs(float64(r.JournalLagNs))
		}
		backlog := "-"
		if r.MergeBacklog > 0 {
			backlog = fmt.Sprintf("%d", r.MergeBacklog)
		}
		fmt.Fprintf(w, "%-20s %s%-20s%s %-22s %10s %8.0f/s %9s %9s %8s\n",
			r.Run, on, r.Phase, off, ranks, fmtBytes(r.Bytes), r.IngestRateBps, age, jlag, backlog)
	}
	if k := len(ids) - len(shown); k > 0 {
		fmt.Fprintf(w, "  … and %d more\n", k)
	}

	fmt.Fprintf(w, "\n%-28s %10s %10s %10s %10s\n", "LATENCY", "count", "p50", "p95", "p99")
	for _, h := range []struct{ label, name string }{
		{"merge", "pilgrim_collect_merge_ns"},
		{"finalize", "pilgrim_collect_finalize_ns"},
		{"e2e client→collector", "pilgrim_collect_e2e_latency_ns"},
		{"journal fsync lag", "pilgrim_collect_journal_fsync_lag_ns"},
	} {
		hi, ok := m.histo(h.name)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-28s %10d %10s %10s %10s\n", h.label, hi.Count,
			fmtDurNs(hi.P50), fmtDurNs(hi.P95), fmtDurNs(hi.P99))
	}

	fmt.Fprintf(w, "\nsnapshots=%d dup=%d rejected=%d  conns=%.0f  watch: subs=%.0f events=%d dropped=%d  obs-drops=%d\n",
		int64(m.scalar("pilgrim_collect_ingest_snapshots_total")),
		int64(m.scalar("pilgrim_collect_duplicate_snapshots_total")),
		int64(m.scalar("pilgrim_collect_rejected_snapshots_total")),
		m.scalar("pilgrim_collect_active_conns"),
		m.scalar("pilgrim_collect_watch_subscribers"),
		int64(m.scalar("pilgrim_collect_watch_events_total")),
		int64(m.scalar("pilgrim_collect_watch_dropped_total")),
		int64(m.scalar("pilgrim_obs_dropped_total")))

	if len(m.events) > 0 {
		fmt.Fprintf(w, "\nRECENT\n")
		for _, line := range m.events {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

func main() {
	var (
		admin    = flag.String("admin", "localhost:7778", "collector admin API address (host:port or URL)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (scripts/CI)")
		noColor  = flag.Bool("no-color", false, "disable ANSI colors")
		maxRows  = flag.Int("max-rows", 20, "cap the runs table to the top-N by ingest rate (0 = unbounded)")
	)
	flag.Parse()

	base := *admin
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	m := newModel()
	m.maxRows = *maxRows

	if *once {
		if err := m.scrape(base); err != nil {
			fmt.Fprintln(os.Stderr, "pilgrim-top:", err)
			os.Exit(1)
		}
		var b strings.Builder
		m.render(&b, base, false)
		fmt.Print(b.String())
		return
	}

	color := !*noColor && os.Getenv("NO_COLOR") == ""
	done := make(chan struct{})
	go m.watchLoop(base, done)
	defer close(done)

	// Alternate screen buffer so exiting restores the terminal.
	fmt.Print("\x1b[?1049h\x1b[?25l")
	defer fmt.Print("\x1b[?25h\x1b[?1049l")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := m.scrape(base); err != nil {
			m.mu.Lock()
			m.scrapeErr = err.Error()
			m.mu.Unlock()
		}
		var b strings.Builder
		b.WriteString("\x1b[H\x1b[2J")
		m.render(&b, base, color)
		fmt.Print(b.String())
		select {
		case <-tick.C:
		case <-sig:
			return // deferred escapes restore the terminal
		}
	}
}
