// pilgrim-loadgen replays captured collector journals against a live
// collector — the soak/stress harness for the collector fleet. It
// reads wire-format captures (directories holding MANIFEST.json +
// frames.jnl, recorded by pilgrim-collectd -keep-journal), re-keys
// them onto synthetic run IDs for N-way amplification, paces the
// replay either closed-loop (recorded timing ÷ -speedup) or open-loop
// (-rate pairs/sec regardless of collector backpressure), and injects
// chaos: jitter, drops, duplicates, reorders, and per-rank straggler
// hold-back that drives the collector's salvage path.
//
// Usage:
//
//	pilgrim-collectd -out-dir cap -keep-journal     # record a capture
//	pilgrim-trace -workload stencil2d -procs 8 -collector localhost:7777 -run-id src
//	pilgrim-loadgen -addr localhost:7777 -journal cap -amplify 200 -speedup 10 -drop 0.01
//
// A live progress line tracks streams and acks; the final JSON run
// report (offered vs. achieved rate, ack latency percentiles, chaos
// and NACK counts) goes to stdout or -report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/loadgen"
	"github.com/hpcrepro/pilgrim/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7777", "collector TCP ingest address")
		journal   = flag.String("journal", "", "captured journal to replay: a run journal dir, a journal root, or a collector out-dir")
		amplify   = flag.Int("amplify", 1, "synthetic copies of each journal to replay (re-keyed onto <run>-lg<i> when > 1)")
		prefix    = flag.String("run-prefix", "", "synthetic run ID prefix (forces re-keying even at -amplify 1)")
		speedup   = flag.Float64("speedup", 1, "divide the capture's recorded inter-frame gaps (closed-loop pacing)")
		rate      = flag.Float64("rate", 0, "open-loop pacing: offer this many pairs/sec across all streams (overrides -speedup)")
		seed      = flag.Int64("seed", 0, "chaos RNG seed for reproducible campaigns")
		jitter    = flag.Float64("jitter", 0, "scale each pacing delay by ±this fraction")
		drop      = flag.Float64("drop", 0, "probability a frame pair is silently skipped")
		dup       = flag.Float64("dup", 0, "probability a frame pair is sent twice")
		reorder   = flag.Float64("reorder", 0, "probability a frame pair swaps with its successor")
		holdRanks = flag.Int("hold-ranks", 0, "hold back each stream's highest N ranks (synthetic stragglers)")
		holdFor   = flag.Duration("hold-for", 0, "release held ranks after this delay (0 with -hold-ranks = withhold entirely, forcing salvage)")
		wait      = flag.Bool("wait", false, "block on each run's finalized trace after sending (closed-loop completion check)")
		maxConns  = flag.Int("max-conns", 64, "concurrently replaying streams")
		ioTimeout = flag.Duration("io-timeout", 30*time.Second, "per-dial/read/write deadline")
		report    = flag.String("report", "", "write the JSON run report here instead of stdout")
		quiet     = flag.Bool("q", false, "suppress the live progress line")
		verbose   = flag.Bool("v", false, "log per-stream trouble (rejects, retries, NACKs)")
	)
	flag.Parse()
	if *journal == "" {
		fmt.Fprintln(os.Stderr, "usage: pilgrim-loadgen -addr <collector> -journal <dir> [-amplify N] [-speedup X | -rate N] [chaos flags]")
		os.Exit(2)
	}
	dirs, err := collect.FindJournals(*journal)
	if err != nil {
		fatal(err)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pilgrim-loadgen: "+format+"\n", args...)
		}
	}
	r, err := loadgen.New(loadgen.Config{
		Addr:      *addr,
		Journals:  dirs,
		Amplify:   *amplify,
		RunPrefix: *prefix,
		Speedup:   *speedup,
		Rate:      *rate,
		Seed:      *seed,
		Jitter:    *jitter,
		Drop:      *drop,
		Dup:       *dup,
		Reorder:   *reorder,
		HoldRanks: *holdRanks,
		HoldFor:   *holdFor,
		Wait:      *wait,
		MaxConns:  *maxConns,
		IOTimeout: *ioTimeout,
		Obs:       obs.NewSink(obs.DefaultBuf),
		Logf:      logf,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	streams, pairs := r.Planned()
	fmt.Fprintf(os.Stderr, "pilgrim-loadgen: %d journals → %d streams, %d pairs planned against %s\n",
		len(dirs), streams, pairs, *addr)

	progressDone := make(chan struct{})
	if !*quiet {
		go progressLoop(ctx, r, streams, pairs, progressDone)
	} else {
		close(progressDone)
	}

	rep, runErr := r.Run(ctx)
	stop()
	<-progressDone
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "pilgrim-loadgen: interrupted: %v\n", runErr)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *report != "" {
		if err := os.WriteFile(*report, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pilgrim-loadgen: report written to %s\n", *report)
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr,
		"pilgrim-loadgen: %d/%d pairs acked in %.1fs (offered %.0f/s, achieved %.0f/s, p99 %.2fms), nacks=%d errors=%d\n",
		rep.Acks+rep.AckDups, rep.PairsPlanned, rep.ElapsedSec,
		rep.OfferedRatePps, rep.AchievedRatePps, rep.AckLatencyP99Ms,
		rep.Nacks, rep.SendErrs)
	if runErr != nil {
		os.Exit(1)
	}
}

// progressLoop repaints one stderr status line until the campaign
// finishes (or forever if ctx never fires — the main goroutine closing
// done via ctx cancellation after Run returns ends it either way).
func progressLoop(ctx context.Context, r *loadgen.Runner, streams int, pairs int64, done chan<- struct{}) {
	defer close(done)
	m := r.Metrics()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr)
			return
		case <-tick.C:
		}
		fmt.Fprintf(os.Stderr,
			"\r\x1b[Kstreams %d/%d  sent %d/%d  acks %d  dup %d  nack %d  err %d  chaos d/%d D/%d r/%d h/%d",
			r.DoneStreams(), streams,
			m.PairsSent.Load(), pairs,
			m.Acks.Load(), m.AckDups.Load(), m.Nacks.Load(), m.SendErrs.Load(),
			m.ChaosDropped.Load(), m.ChaosDuped.Load(), m.ChaosReordered.Load(), m.ChaosHeld.Load())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-loadgen:", err)
	os.Exit(1)
}
