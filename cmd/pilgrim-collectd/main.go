// pilgrim-collectd is the networked trace collector daemon: it
// ingests per-rank tracer snapshots over TCP, runs the inter-process
// merge server-side as ranks report, and writes each run's finalized
// trace — byte-identical to an in-process finalize — under -out-dir.
// An HTTP admin API lists runs, reports per-run status, serves
// finalized traces, and exposes the daemon's Prometheus metrics.
//
// The daemon is crash-recoverable: every accepted snapshot is
// journaled under <out-dir>/journal/<run>/ (fsync policy set by
// -journal-sync), and a restarted daemon replays in-flight runs from
// their journals before accepting connections — producers that
// reconnect and re-send are deduplicated, and the recovered trace is
// byte-identical to an uninterrupted run. Admission caps (-max-runs,
// -max-run-bytes, -max-conns) shed overload with explicit NACKs that
// make producers fall back to local finalize instead of retrying.
//
// The daemon also records its own pipeline into a flight recorder
// (-obs, on by default): connection, ingest, journal, recovery, and
// finalize spans land in a fixed-size ring served at GET /debug/flight
// as Perfetto-loadable trace-event JSON, auto-dumped each second to
// <out-dir>/flight-live.json so even a SIGKILLed daemon leaves a
// loadable timeline behind.
//
// Usage:
//
//	pilgrim-collectd -listen :7777 -admin :7778 -out-dir ./traces
//	pilgrim-trace -workload stencil2d -procs 16 -collector localhost:7777 -run-id demo
//	curl localhost:7778/runs/demo
//	curl -o demo.pilgrim localhost:7778/runs/demo/trace
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/obs"
)

func main() {
	var (
		listen    = flag.String("listen", ":7777", "TCP ingest address for tracer snapshots")
		admin     = flag.String("admin", ":7778", "HTTP admin API address (runs, traces, metrics); empty disables")
		outDir    = flag.String("out-dir", ".", "directory for finalized traces (<run-id>.pilgrim)")
		deadline  = flag.Duration("deadline", 0, "straggler deadline per run: finalize as a salvage trace once this elapses with ranks missing (0 = wait forever)")
		idle      = flag.Duration("idle-timeout", 5*time.Minute, "drop ingest connections idle longer than this")
		retention = flag.Duration("retention", 10*time.Minute, "keep a finalized run's trace in memory this long before serving it from -out-dir only (negative = forever)")
		workers   = flag.Int("finalize-workers", 0, "worker pool size for run finalization (0 = GOMAXPROCS, 1 = sequential; output identical either way)")
		mworkers  = flag.Int("merge-workers", 0, "worker pool size for merge-on-arrival: decoded snapshots merge off the run lock on this many workers (0 = GOMAXPROCS; output identical either way)")
		maxResid  = flag.Int("max-resident-snapshots", 0, "max snapshots per run kept fully in memory; beyond it payloads spill to the run journal and finalize streams them back in bounded batches (0 = unlimited, requires -out-dir journaling)")
		jsync     = flag.String("journal-sync", "batch", "run journal fsync policy: always (durable ack per snapshot), batch (fsync every 100ms), off (never fsync)")
		maxRuns   = flag.Int("max-runs", 0, "max runs collecting at once; further run creations are NACKed (0 = unlimited)")
		maxBytes  = flag.Int64("max-run-bytes", 0, "max snapshot bytes accepted per run; the snapshot exceeding it is NACKed (0 = unlimited)")
		maxConns  = flag.Int("max-conns", 0, "max concurrent ingest connections; further connections are NACKed and closed (0 = unlimited)")
		await     = flag.Duration("await-stragglers", 2*time.Second, "mark an incomplete run's health phase awaiting-stragglers after this long with no arrivals (negative disables)")
		lagWarn   = flag.Duration("journal-lag-warn", time.Second, "warn (rate-limited) when a journal fsync lands later than this after its oldest queued byte (0 disables)")
		keepJnl   = flag.Bool("keep-journal", false, "retain each run's journal frames after finalize (capture mode: the journal becomes a replayable wire recording for pilgrim-loadgen)")
		obsOn     = flag.Bool("obs", true, "enable the pipeline flight recorder (span tracing; GET /debug/flight)")
		obsBuf    = flag.Int("obs-buf", obs.DefaultBuf, "flight recorder capacity in events (overflow drops oldest)")
		obsDump   = flag.String("obs-dump", "", "directory for flight recorder crash dumps (flight-*.json); empty = -out-dir, \"off\" disables")
		verbose   = flag.Bool("v", false, "log per-run lifecycle events")
	)
	flag.Parse()

	syncMode, err := collect.ParseSyncMode(*jsync)
	if err != nil {
		fatal(err)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	// Flight recorder: a fixed-size ring of pipeline spans, dumped as
	// Chrome trace-event JSON. The live dump (flight-live.json, rewritten
	// every second) is what survives even a SIGKILL; SIGTERM and panics
	// additionally write a timestamped snapshot.
	var sink *obs.Sink
	dumpDir := *obsDump
	if dumpDir == "" {
		dumpDir = *outDir
	}
	if *obsOn {
		sink = obs.NewSink(*obsBuf)
		if dumpDir != "off" && dumpDir != "" {
			stop := sink.AutoDump(filepath.Join(dumpDir, "flight-live.json"), time.Second)
			defer stop()
		}
	}
	crashDump := func() {
		if sink == nil || dumpDir == "off" || dumpDir == "" {
			return
		}
		path := filepath.Join(dumpDir, "flight-"+strconv.FormatInt(time.Now().Unix(), 10)+".json")
		if err := sink.DumpFile(path); err == nil {
			log.Printf("pilgrim-collectd: flight recorder dumped to %s", path)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			crashDump()
			panic(r)
		}
	}()

	srv, err := collect.Start(collect.Config{
		Listen:               *listen,
		OutDir:               *outDir,
		StragglerDeadline:    *deadline,
		IdleTimeout:          *idle,
		Retention:            *retention,
		FinalizeWorkers:      *workers,
		MergeWorkers:         *mworkers,
		MaxResidentSnapshots: *maxResid,
		JournalSync:          syncMode,
		MaxRuns:              *maxRuns,
		MaxRunBytes:          *maxBytes,
		MaxConns:             *maxConns,
		AwaitStragglers:      *await,
		JournalLagWarn:       *lagWarn,
		KeepJournalFrames:    *keepJnl,
		Obs:                  sink,
		Logf:                 logf,
	})
	if err != nil {
		fatal(err)
	}
	log.Printf("pilgrim-collectd: ingest on %s, traces to %s", srv.Addr(), *outDir)

	var adminSrv *http.Server
	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal(err)
		}
		adminSrv = &http.Server{
			Handler:           collect.AdminHandler(srv),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go adminSrv.Serve(ln)
		log.Printf("pilgrim-collectd: admin API on %s", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("pilgrim-collectd: shutting down")
	crashDump()
	if adminSrv != nil {
		adminSrv.Close()
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-collectd:", err)
	os.Exit(1)
}
