// pilgrim-trace runs a workload skeleton on the simulated MPI runtime
// with the Pilgrim tracer attached to every rank and writes the
// compressed trace file.
//
// Usage:
//
//	pilgrim-trace -workload stencil2d -procs 16 -iters 100 -o out.pilgrim
//	pilgrim-trace -workload stencil2d -procs 8 -crash-rank 3 -crash-at 50 -salvage -o partial.pilgrim
//	pilgrim-trace -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	var (
		name    = flag.String("workload", "stencil2d", "workload skeleton to run (see -list)")
		procs   = flag.Int("procs", 16, "number of simulated MPI ranks")
		iters   = flag.Int("iters", 0, "iterations (0 = workload default)")
		out     = flag.String("o", "trace.pilgrim", "output trace file")
		timing  = flag.String("timing", "aggregated", "timing mode: aggregated or lossy")
		base    = flag.Float64("timing-base", 1.2, "exponential bin base for lossy timing")
		workers = flag.Int("finalize-workers", 0, "finalize worker pool size (0 = GOMAXPROCS, 1 = sequential; output identical either way)")
		list    = flag.Bool("list", false, "list available workloads and exit")
		verbose = flag.Bool("v", false, "print per-rank statistics")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address during the run (e.g. :9090)")
		metricsJSON = flag.String("metrics-json", "", "write the final metrics report as JSON to this file")
		progress    = flag.Duration("progress", 0, "print a one-line progress report at this interval (e.g. 2s)")

		collector = flag.String("collector", "", "stream rank snapshots to a pilgrim-collectd at this address instead of merging locally (falls back to local merge if unreachable)")
		runID     = flag.String("run-id", "", "run identifier at the collector (default: generated)")

		spillDir    = flag.String("spill-dir", "", "finalize via an on-disk snapshot spill under this directory instead of holding every rank in memory (journal-format, byte-identical output; ignored with -collector)")
		maxResident = flag.Int("max-resident", 0, "max rank snapshots resident during a -spill-dir finalize; the merge streams them back from disk in batches this size (0 = all)")

		obsOn   = flag.Bool("obs", false, "record pipeline spans (finalize stages, collector client) into a flight recorder")
		obsBuf  = flag.Int("obs-buf", 0, "flight recorder capacity in events (0 = 4096 default; overflow drops oldest)")
		obsDump = flag.String("obs-dump", "", "write the flight recorder as trace-event JSON to this file after the run (implies -obs)")

		salvage   = flag.Bool("salvage", false, "on failure, write the salvaged partial trace instead of exiting empty-handed")
		seed      = flag.Int64("seed", 0, "simulator seed (0 = default)")
		crashRank = flag.Int("crash-rank", -1, "inject: crash this rank (with -crash-at)")
		crashAt   = flag.Int64("crash-at", 0, "inject: 1-based MPI call index the crash fires at")
		dropRank  = flag.Int("drop-rank", -1, "inject: drop the next message this rank sends at/after -drop-at")
		dropAt    = flag.Int64("drop-at", 0, "inject: 1-based MPI call index arming the message drop")
	)
	flag.Parse()

	if *list {
		for _, info := range workloads.List() {
			fmt.Printf("%-14s %s\n", info.Name, info.Description)
		}
		return
	}

	body, err := workloads.Get(*name, *iters, *procs)
	if err != nil {
		fatal(err)
	}
	opts := pilgrim.Options{}
	switch *timing {
	case "aggregated":
		opts.TimingMode = pilgrim.TimingAggregated
	case "lossy":
		opts.TimingMode = pilgrim.TimingLossy
		opts.TimingBase = *base
	default:
		fatal(fmt.Errorf("unknown timing mode %q", *timing))
	}

	if *metricsAddr != "" || *metricsJSON != "" || *progress > 0 {
		opts.Collector = pilgrim.NewMetricsCollector()
		opts.MetricsAddr = *metricsAddr
		opts.ProgressEvery = *progress
	}
	opts.CollectorAddr = *collector
	opts.CollectorRunID = *runID
	opts.FinalizeWorkers = *workers
	opts.SpillDir = *spillDir
	opts.MaxResidentSnapshots = *maxResident
	if *obsOn || *obsDump != "" {
		opts.ObsSink = pilgrim.NewObsSink(*obsBuf)
	}

	simOpts := mpi.Options{Seed: *seed}
	var plan mpi.FaultPlan
	if *crashRank >= 0 {
		plan.Faults = append(plan.Faults, mpi.Fault{Kind: mpi.FaultCrash, Rank: *crashRank, AtCall: *crashAt})
	}
	if *dropRank >= 0 {
		plan.Faults = append(plan.Faults, mpi.Fault{Kind: mpi.FaultDropMsg, Rank: *dropRank, AtCall: *dropAt})
	}
	if len(plan.Faults) > 0 {
		simOpts.FaultPlan = &plan
	}

	file, stats, err := pilgrim.RunSim(*procs, opts, simOpts, body)
	writeObsDump(*obsDump, opts.ObsSink)
	if err != nil {
		if !*salvage || file == nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pilgrim-trace: run failed: %v\n", err)
		if err := file.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("salvaged partial trace: %s (%d bytes)\n", *out, stats.TraceBytes)
		if file.Salvage != nil {
			fmt.Printf("failed ranks: %v\n", file.Salvage.FailedRanks)
			fmt.Printf("reason: %s\n", file.Salvage.Reason)
		}
		fmt.Printf("calls captured before failure: %d\n", stats.TotalCalls)
		writeMetricsJSON(*metricsJSON, stats.Metrics)
		return
	}
	if err := file.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("traced %d MPI calls on %d ranks\n", stats.TotalCalls, *procs)
	fmt.Printf("trace file: %s (%d bytes, %.2f KB)\n", *out, stats.TraceBytes, float64(stats.TraceBytes)/1024)
	fmt.Printf("global CST entries: %d, unique grammars: %d\n", stats.GlobalCST, stats.UniqueCFGs)
	if stats.TotalCalls > 0 {
		fmt.Printf("compression: %.1f bytes/call\n", float64(stats.TraceBytes)/float64(stats.TotalCalls))
	}
	if *verbose {
		cstB, cfgB, durB, intB := file.SectionSizes()
		fmt.Printf("sections: CST=%dB grammars=%dB duration=%dB interval=%dB\n", cstB, cfgB, durB, intB)
		fmt.Printf("compression time: intra=%.2fms cst-merge=%.2fms cfg-merge=%.2fms\n",
			float64(stats.IntraNs)/1e6, float64(stats.CSTMergeNs)/1e6, float64(stats.CFGMergeNs)/1e6)
	}
	writeMetricsJSON(*metricsJSON, stats.Metrics)
}

// writeObsDump persists the pipeline flight recorder as Perfetto-
// loadable trace-event JSON (nil-safe: needs both a path and a sink).
func writeObsDump(path string, sink *pilgrim.ObsSink) {
	if path == "" || sink == nil {
		return
	}
	if err := sink.DumpFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline spans: %s (%d events, %d dropped)\n", path, sink.Len(), sink.Dropped())
}

// writeMetricsJSON dumps the final metrics report (nil-safe: nothing
// happens unless both a path and a report exist).
func writeMetricsJSON(path string, rep *pilgrim.MetricsReport) {
	if path == "" {
		return
	}
	if rep == nil {
		fatal(fmt.Errorf("no metrics report produced (finalize did not run?)"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics report: %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-trace:", err)
	os.Exit(1)
}
