// pilgrim-replay re-executes a Pilgrim trace on a fresh simulated MPI
// world (the paper's mini-app-generator direction), optionally
// re-tracing the replay and verifying it matches the input trace. It
// can also convert a trace to the OTF-style text format.
//
// Usage:
//
//	pilgrim-replay trace.pilgrim               # replay
//	pilgrim-replay -verify trace.pilgrim       # replay, re-trace, compare
//	pilgrim-replay -otf out.txt trace.pilgrim  # convert to text events
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/otf"
	"github.com/hpcrepro/pilgrim/internal/replay"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	var (
		verify  = flag.Bool("verify", false, "re-trace the replay and compare with the input trace")
		otfPath = flag.String("otf", "", "convert to OTF-style text at this path instead of replaying")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilgrim-replay [-verify | -otf out.txt] trace.pilgrim")
		os.Exit(2)
	}
	file, err := pilgrim.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *otfPath != "" {
		out, err := os.Create(*otfPath)
		if err != nil {
			fatal(err)
		}
		if err := otf.Convert(file, out); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("converted %d ranks to %s\n", file.NumRanks, *otfPath)
		return
	}

	simOpts := mpi.Options{Timeout: 10 * time.Minute}
	if !*verify {
		if err := replay.Run(file, simOpts); err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d ranks successfully\n", file.NumRanks)
		return
	}

	re, stats, err := pilgrim.RunSim(file.NumRanks, pilgrim.Options{}, simOpts, replay.Body(file))
	if err != nil {
		fatal(err)
	}
	for r := 0; r < file.NumRanks; r++ {
		a, err := pilgrim.DecodeRank(file, r)
		if err != nil {
			fatal(err)
		}
		b, err := pilgrim.DecodeRank(re, r)
		if err != nil {
			fatal(err)
		}
		if len(a) != len(b) {
			fatal(fmt.Errorf("rank %d: original %d calls, replay %d", r, len(a), len(b)))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				fatal(fmt.Errorf("rank %d call %d differs:\n  original: %s\n  replayed: %s",
					r, i, a[i].Decoded, b[i].Decoded))
			}
		}
	}
	fmt.Printf("replayed and verified %d ranks, %d calls: traces identical\n",
		file.NumRanks, stats.TotalCalls)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-replay:", err)
	os.Exit(1)
}
