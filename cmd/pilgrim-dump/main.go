// pilgrim-dump decompresses a Pilgrim trace file and prints the
// recovered call stream — the decoder the paper uses to check that
// compression is lossless. It can dump one rank or summarize all, and
// with -journal it inspects a captured collector journal instead: the
// capture-side debugging companion to pilgrim-loadgen.
//
// Usage:
//
//	pilgrim-dump -rank 0 trace.pilgrim
//	pilgrim-dump -summary trace.pilgrim
//	pilgrim-dump -journal out/journal/myrun
//	pilgrim-dump -journal out            # every run journal beneath
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/sig"
)

func main() {
	var (
		rank    = flag.Int("rank", 0, "rank whose call stream to dump")
		summary = flag.Bool("summary", false, "print per-function call counts for all ranks instead")
		top     = flag.Int("top", 0, "print only the top N functions by call count (implies -summary)")
		grammar = flag.Bool("grammar", false, "print the rank's grammar rules instead of the expanded stream")
		limit   = flag.Int("n", 0, "dump at most n calls (0 = all)")
		journal = flag.String("journal", "", "inspect captured run journal(s) under this directory instead of a trace")
	)
	flag.Parse()
	if *journal != "" {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		dumpJournals(w, *journal)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilgrim-dump [-rank N | -summary] trace.pilgrim | pilgrim-dump -journal <dir>")
		os.Exit(2)
	}
	file, err := pilgrim.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	fmt.Fprintf(w, "# ranks=%d timing=%s cst=%d grammars=%d size=%dB\n",
		file.NumRanks, timingName(file.TimingMode), file.CST.Len(), len(file.Grammars), file.SizeBytes())
	// Section sizes are nominal (int32-width) pre-varint numbers; show
	// the composition as shares of their own total, not of the file.
	cstB, cfgB, durB, intB := file.SectionSizes()
	secTotal := cstB + cfgB + durB + intB
	fmt.Fprintf(w, "# sections: cst=%dB (%s) grammars=%dB (%s) duration=%dB (%s) interval=%dB (%s)\n",
		cstB, pct(cstB, secTotal), cfgB, pct(cfgB, secTotal),
		durB, pct(durB, secTotal), intB, pct(intB, secTotal))
	if raw, total := file.UncompressedEstimate(), file.SizeBytes(); raw > 0 && total > 0 {
		fmt.Fprintf(w, "# compression: %d calls replayed raw ≈ %dB, ratio %.1fx\n",
			file.CST.Calls(), raw, float64(raw)/float64(total))
	}
	if s := file.Salvage; s != nil {
		fmt.Fprintf(w, "# SALVAGED trace: failed ranks=%v reason=%q\n", s.FailedRanks, s.Reason)
		fmt.Fprintf(w, "# calls captured per rank: %v\n", s.Calls)
	}

	if *summary || *top > 0 {
		total := map[mpispec.FuncID]int{}
		grand := 0
		for r := 0; r < file.NumRanks; r++ {
			calls, err := pilgrim.DecodeRank(file, r)
			if err != nil {
				fatal(err)
			}
			for f, n := range core.CallCounts(calls) {
				total[f] += n
				grand += n
			}
		}
		type kv struct {
			f mpispec.FuncID
			n int
		}
		var rows []kv
		for f, n := range total {
			rows = append(rows, kv{f, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].f < rows[j].f
		})
		for i, r := range rows {
			if *top > 0 && i >= *top {
				fmt.Fprintf(w, "... (%d more functions)\n", len(rows)-i)
				break
			}
			fmt.Fprintf(w, "%10d  %5s  %s\n", r.n, pct(r.n, grand), r.f.Name())
		}
		return
	}

	if *grammar {
		dumpGrammar(w, file, *rank)
		return
	}

	calls, err := pilgrim.DecodeRank(file, *rank)
	if err != nil {
		fatal(err)
	}
	for i, c := range calls {
		if *limit > 0 && i >= *limit {
			fmt.Fprintf(w, "... (%d more calls)\n", len(calls)-i)
			break
		}
		if file.TimingMode == pilgrim.TimingLossy {
			fmt.Fprintf(w, "[%d] t=%d..%d %s\n", i, c.TStart, c.TEnd, c.Decoded)
		} else {
			fmt.Fprintf(w, "[%d] avg=%dns %s\n", i, c.AvgDuration, c.Decoded)
		}
	}
}

// dumpGrammar prints the rank's production rules with the decoded
// call each terminal stands for — the compressed representation
// itself, as in the paper's Figure 1.
func dumpGrammar(w *bufio.Writer, file *pilgrim.TraceFile, rank int) {
	idx, err := file.GrammarIndex()
	if err != nil {
		fatal(err)
	}
	if rank < 0 || rank >= len(idx) {
		fatal(fmt.Errorf("rank %d out of range", rank))
	}
	g := file.Grammars[idx[rank]]
	rules := g.Rules()
	fmt.Fprintf(w, "# rank %d uses grammar %d (%d rules, %d calls when expanded)\n",
		rank, idx[rank], len(rules), g.InputLen())
	for ri, body := range rules {
		fmt.Fprintf(w, "R%d ->", ri)
		for _, s := range body {
			if s.Val < 0 {
				fmt.Fprintf(w, " R%d", -s.Val-1)
			} else {
				fmt.Fprintf(w, " t%d", s.Val)
			}
			if s.Exp > 1 {
				fmt.Fprintf(w, "^%d", s.Exp)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "# terminals:")
	seen := map[int32]bool{}
	for _, body := range rules {
		for _, s := range body {
			if s.Val >= 0 && !seen[s.Val] {
				seen[s.Val] = true
				if d, err := sig.Decode(file.CST.Sig(s.Val)); err == nil {
					fmt.Fprintf(w, "t%d = %s\n", s.Val, d)
				}
			}
		}
	}
}

// dumpJournals prints each run journal under path: manifest identity,
// frame counts and byte totals per (rank, epoch), and the torn-tail
// report — what a capture actually holds before loadgen replays it.
func dumpJournals(w *bufio.Writer, path string) {
	dirs, err := collect.FindJournals(path)
	if err != nil {
		fatal(err)
	}
	for _, dir := range dirs {
		jr, err := collect.OpenJournal(dir)
		if err != nil {
			fatal(err)
		}
		man := jr.Manifest()
		fmt.Fprintf(w, "journal %s\n", dir)
		fmt.Fprintf(w, "  run=%s epoch=%d world=%d state=%s", man.RunID, man.Epoch, man.World, man.State)
		if man.Reason != "" {
			fmt.Fprintf(w, " reason=%q", man.Reason)
		}
		fmt.Fprintln(w)

		type key struct {
			rank  int
			epoch uint64
		}
		counts := map[key]int{}
		bytes := map[key]int64{}
		var keys []key
		var pairs int
		var total int64
		for {
			e, err := jr.Next()
			if err != nil {
				break // io.EOF; torn tails reported below
			}
			k := key{e.Hello.Rank, e.Hello.Epoch}
			if counts[k] == 0 {
				keys = append(keys, k)
			}
			counts[k]++
			bytes[k] += e.Bytes()
			pairs++
			total += e.Bytes()
		}
		jr.Close()
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].epoch != keys[j].epoch {
				return keys[i].epoch < keys[j].epoch
			}
			return keys[i].rank < keys[j].rank
		})
		fmt.Fprintf(w, "  frames: %d pairs, %dB on the wire\n", pairs, total)
		for _, k := range keys {
			fmt.Fprintf(w, "    rank %4d epoch %d: %d pairs, %dB\n", k.rank, k.epoch, counts[k], bytes[k])
		}
		if torn, trunc := jr.Torn(); torn {
			fmt.Fprintf(w, "  TORN TAIL: %d trailing bytes unreadable\n", trunc)
		} else if pairs == 0 {
			fmt.Fprintf(w, "  (no frames — captured without -keep-journal, or dropped at finalize)\n")
		}
	}
}

// pct formats part/total as a percentage.
func pct(part, total int) string {
	if total <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func timingName(mode uint8) string {
	if mode == pilgrim.TimingLossy {
		return "lossy"
	}
	return "aggregated"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-dump:", err)
	os.Exit(1)
}
