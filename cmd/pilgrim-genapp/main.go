// pilgrim-genapp generates a standalone Go proxy application from a
// Pilgrim trace (the paper's mini-app generator, §6): the generated
// program has the same communication pattern as the traced one, with
// loops reconstructed from the trace's grammar rules.
//
// Usage:
//
//	pilgrim-genapp -o proxy/main.go trace.pilgrim
//	go run ./proxy
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/genapp"
)

func main() {
	out := flag.String("o", "proxy_main.go", "output Go source path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilgrim-genapp [-o main.go] trace.pilgrim")
		os.Exit(2)
	}
	file, err := pilgrim.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src, err := genapp.Generate(file)
	if err != nil {
		fatal(err)
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s (%d bytes) for %d ranks, %d grammars\n",
		*out, len(src), file.NumRanks, len(file.Grammars))
	fmt.Println("note: the generated source imports this module's internal packages,")
	fmt.Println("so place it inside this repository (e.g. ./proxy/main.go) to build.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-genapp:", err)
	os.Exit(1)
}
