// pilgrim-bench regenerates the paper's evaluation tables and figures
// (§4) on the simulated substrate and prints their data series.
//
// Usage:
//
//	pilgrim-bench -exp all -scale standard
//	pilgrim-bench -exp fig5 -scale full
//
// Experiments: table1, stencil, osu, fig5, fig6, fig7, fig8, fig9,
// fig10, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hpcrepro/pilgrim/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment(s), comma separated")
		scaleStr = flag.String("scale", "quick", "sweep scale: quick, standard, full")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleStr {
	case "quick":
		scale = experiments.Quick
	case "standard":
		scale = experiments.Standard
	case "full":
		scale = experiments.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleStr))
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s took %.1fs)\n", name, time.Since(t0).Seconds())
	}

	w := os.Stdout
	run("table1", func() error {
		experiments.RunTable1().Print(w)
		return nil
	})
	run("stencil", func() error {
		r, err := experiments.RunStencil(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("osu", func() error {
		r, err := experiments.RunOSU(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig5", func() error {
		r, err := experiments.RunFig5(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig6", func() error {
		r, err := experiments.RunFig6(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig7", func() error {
		r, err := experiments.RunFig7(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig8", func() error {
		r, err := experiments.RunFig8(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig9", func() error {
		r, err := experiments.RunFig9(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("ablation", func() error {
		r, err := experiments.RunAblation(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
	run("fig10", func() error {
		r, err := experiments.RunFig10(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-bench:", err)
	os.Exit(1)
}
