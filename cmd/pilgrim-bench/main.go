// pilgrim-bench regenerates the paper's evaluation tables and figures
// (§4) on the simulated substrate and prints their data series.
//
// Usage:
//
//	pilgrim-bench -exp all -scale standard
//	pilgrim-bench -exp fig5 -scale full
//	pilgrim-bench -exp stencil -scale quick -json
//	pilgrim-bench -exp stencil -json=out/dir
//
// Experiments: table1, stencil, osu, fig5, fig6, fig7, fig8, fig9,
// fig10, ablation, collect, finalize, finalize_mem, loadgen, all.
//
// With -json, each experiment additionally writes BENCH_<exp>.json —
// the experiment's data series plus the run's self-observability
// metrics report — to the current directory (or the directory given as
// -json=DIR). EXPERIMENTS.md documents the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/experiments"
)

// jsonFlag lets -json work both bare (write to the current directory)
// and as -json=DIR.
type jsonFlag struct {
	set bool
	dir string
}

func (j *jsonFlag) String() string { return j.dir }

func (j *jsonFlag) Set(v string) error {
	j.set = true
	if v == "" || v == "true" {
		j.dir = "."
	} else {
		j.dir = v
	}
	return nil
}

func (j *jsonFlag) IsBoolFlag() bool { return true }

// benchRecord is the BENCH_<exp>.json schema (see EXPERIMENTS.md).
type benchRecord struct {
	Experiment string                 `json:"experiment"`
	Scale      string                 `json:"scale"`
	ElapsedSec float64                `json:"elapsed_sec"`
	Result     any                    `json:"result"`
	Metrics    *pilgrim.MetricsReport `json:"metrics,omitempty"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment(s), comma separated")
		scaleStr = flag.String("scale", "quick", "sweep scale: quick, standard, full")
		jsonOut  jsonFlag
	)
	flag.Var(&jsonOut, "json", "also write BENCH_<exp>.json (optionally to `dir`)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleStr {
	case "quick":
		scale = experiments.Quick
	case "standard":
		scale = experiments.Standard
	case "full":
		scale = experiments.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleStr))
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout
	// run executes one experiment; f returns the result object that both
	// prints the table and, under -json, lands in BENCH_<name>.json.
	run := func(name string, f func() (any, error)) {
		if !all && !want[name] {
			return
		}
		var col *pilgrim.MetricsCollector
		if jsonOut.set {
			// A fresh collector per experiment so each BENCH file holds
			// only its own run's metrics.
			col = pilgrim.NewMetricsCollector()
			experiments.SetCollector(col)
			defer experiments.SetCollector(nil)
		}
		t0 := time.Now()
		res, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		elapsed := time.Since(t0).Seconds()
		fmt.Printf("(%s took %.1fs)\n", name, elapsed)
		if jsonOut.set {
			rec := benchRecord{
				Experiment: name,
				Scale:      *scaleStr,
				ElapsedSec: elapsed,
				Result:     res,
			}
			if col != nil {
				rec.Metrics = col.Report()
			}
			if err := writeBench(jsonOut.dir, name, rec); err != nil {
				fatal(err)
			}
		}
	}

	run("table1", func() (any, error) {
		r := experiments.RunTable1()
		r.Print(w)
		return r, nil
	})
	run("stencil", func() (any, error) {
		r, err := experiments.RunStencil(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("osu", func() (any, error) {
		r, err := experiments.RunOSU(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig5", func() (any, error) {
		r, err := experiments.RunFig5(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig6", func() (any, error) {
		r, err := experiments.RunFig6(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig7", func() (any, error) {
		r, err := experiments.RunFig7(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig8", func() (any, error) {
		r, err := experiments.RunFig8(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig9", func() (any, error) {
		r, err := experiments.RunFig9(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("ablation", func() (any, error) {
		r, err := experiments.RunAblation(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("fig10", func() (any, error) {
		r, err := experiments.RunFig10(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("collect", func() (any, error) {
		r, err := experiments.RunCollect(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("finalize", func() (any, error) {
		r, err := experiments.RunFinalize(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("finalize_mem", func() (any, error) {
		r, err := experiments.RunFinalizeMem(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
	run("loadgen", func() (any, error) {
		r, err := experiments.RunLoadgen(scale)
		if err != nil {
			return nil, err
		}
		r.Print(w)
		return r, nil
	})
}

func writeBench(dir, name string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench output dir: %w", err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", name, err)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilgrim-bench:", err)
	os.Exit(1)
}
