// Package pilgrim is a Go reproduction of "Pilgrim: Scalable and
// (near) Lossless MPI Tracing" (Wang, Balaji, Snir — SC '21): a
// tracing tool that records every MPI call with every parameter and
// compresses the stream online with a call signature table plus an
// incrementally built context-free grammar (optimized Sequitur),
// followed by inter-process compression at finalize.
//
// Since Go has no MPI bindings, the traced substrate is the bundled
// simulated MPI runtime (package mpi): goroutine ranks with full MPI
// matching semantics. The tracer attaches to it exactly as the real
// tool attaches to PMPI.
//
// Quick start:
//
//	file, stats, err := pilgrim.Run(4, pilgrim.Options{}, func(p *mpi.Proc) {
//	    p.Init()
//	    // ... MPI program ...
//	    p.Finalize()
//	})
//	fmt.Println(stats.TraceBytes, "bytes for", stats.TotalCalls, "calls")
//	calls, _ := pilgrim.DecodeRank(file, 0)
package pilgrim

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hpcrepro/pilgrim/internal/analysis"
	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/obs"
	"github.com/hpcrepro/pilgrim/internal/spill"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/mpi"
)

// Options configures tracing. The zero value means aggregated timing
// (mean duration per call signature) with verification off.
type Options = core.Options

// Timing modes for Options.TimingMode.
const (
	TimingAggregated = trace.TimingAggregated
	TimingLossy      = trace.TimingLossy
)

// Tracer is the per-rank interceptor; attach it to a simulated rank
// via mpi.Options.Interceptors or Proc.SetInterceptor.
type Tracer = core.Tracer

// TraceFile is a complete compressed trace (CST + unique grammars +
// rank map + optional timing grammars).
type TraceFile = trace.File

// FinalizeStats reports trace size, call counts, and where the
// compression time went.
type FinalizeStats = core.FinalizeStats

// DecodedCall is one reconstructed call from a compressed trace.
type DecodedCall = core.DecodedCall

// NewTracer builds a tracer for one rank. The OOB interface gives it
// PMPI-level collectives for communicator-id agreement; pass the
// rank's *mpi.Proc.
func NewTracer(rank int, oob mpispec.OOB, opts Options) *Tracer {
	return core.NewTracer(rank, oob, opts)
}

// Run executes body as an SPMD program on n simulated ranks with a
// tracer attached to each, then performs inter-process compression and
// returns the trace.
func Run(n int, opts Options, body func(p *mpi.Proc)) (*TraceFile, FinalizeStats, error) {
	return RunSim(n, opts, mpi.Options{}, body)
}

// RunSim is Run with explicit simulator options (seed, timeout,
// fault plan). When the simulation fails — injected crash, Abort,
// deadlock, panic — RunSim salvages: it runs the same inter-process
// merge over whatever every rank traced before the failure and returns
// the partial trace (tagged with trace.SalvageInfo) alongside the
// non-nil error. Callers that only check err keep the old behavior;
// callers that want the partial trace use the file even when err != nil.
func RunSim(n int, opts Options, simOpts mpi.Options, body func(p *mpi.Proc)) (*TraceFile, FinalizeStats, error) {
	// Self-observability: an explicit Collector wins; otherwise asking
	// for an endpoint or a progress reporter implies one.
	col := opts.Collector
	if col == nil && (opts.MetricsAddr != "" || opts.ProgressEvery > 0) {
		col = metrics.NewCollector()
		opts.Collector = col
	}
	if col != nil {
		if opts.MetricsAddr != "" {
			srv, err := metrics.Serve(opts.MetricsAddr, col)
			if err != nil {
				return nil, FinalizeStats{}, err
			}
			defer srv.Close()
		}
		if opts.ProgressEvery > 0 {
			stop := col.StartReporter(os.Stderr, opts.ProgressEvery)
			defer stop()
		}
		simOpts.Metrics = col
	}
	tracers := make([]*Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := 0; i < n; i++ {
		tracers[i] = core.NewTracer(i, nil, opts)
		ics[i] = tracers[i]
	}
	if col != nil {
		// Live-state probes feed the CST/grammar/memory gauges while the
		// run is in flight; removed before return so a reused collector
		// (pilgrim-bench sweeps) never double-counts finished runs.
		for i := 0; i < n; i++ {
			remove := col.AddTracerProbe(tracers[i].ProbeStats)
			defer remove()
		}
	}
	simOpts.Interceptors = ics
	err := mpi.RunOpt(n, simOpts, func(p *mpi.Proc) {
		// Late-bind the OOB interface: the Proc exists only now.
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		if opts.SpillDir != "" && opts.CollectorAddr == "" {
			file, stats, serr := spillSalvage(tracers, err, opts)
			if serr != nil {
				// The spill consumed tracer state, so there is no safe
				// in-memory fallback: the salvage trace is lost, the run
				// error still stands.
				fmt.Fprintf(os.Stderr, "pilgrim: spill salvage finalize failed: %v\n", serr)
				return nil, stats, err
			}
			return file, stats, err
		}
		file, stats := SalvageFinalize(tracers, err)
		return file, stats, err
	}
	if opts.CollectorAddr != "" {
		file, stats := collectFinalize(tracers, opts)
		if col != nil {
			stats.Metrics = col.Report()
		}
		return file, stats, nil
	}
	if opts.SpillDir != "" {
		// Streaming, bounded-memory finalize: snapshots spill to disk in
		// batches of MaxResidentSnapshots and merge back from the spill,
		// byte-identical to the in-memory path.
		file, stats, ferr := spill.Finalize(tracers, nil, "", opts)
		if ferr != nil {
			return nil, stats, fmt.Errorf("pilgrim: spill finalize: %w", ferr)
		}
		return file, stats, nil
	}
	file, stats := core.Finalize(tracers)
	return file, stats, nil
}

// spillSalvage is the failure-path streaming finalize: the same
// failed-rank classification as SalvageFinalize, run through the
// on-disk spill instead of all-resident snapshots.
func spillSalvage(tracers []*Tracer, err error, opts Options) (*TraceFile, FinalizeStats, error) {
	failed := map[int]error{}
	for r, e := range mpi.FailedRanks(err) {
		if !errors.Is(e, mpi.ErrRevoked) {
			failed[r] = e
		}
	}
	reason, _, _ := strings.Cut(err.Error(), "\n")
	return spill.Finalize(tracers, failed, reason, opts)
}

// collectFinalize is the networked finalize path: every rank's
// snapshot streams to the pilgrim-collectd at Options.CollectorAddr,
// the log₂P merge runs server-side, and the finalized trace is fetched
// back — byte-identical to what core.Finalize would have produced.
// Any failure (collector down, network partition, rejection) falls
// back to the local merge over the same snapshots, so the run always
// succeeds.
func collectFinalize(tracers []*Tracer, opts Options) (*TraceFile, FinalizeStats) {
	snaps := make([]*core.Snapshot, len(tracers))
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	runID := opts.CollectorRunID
	if runID == "" {
		runID = "run-" + strconv.FormatInt(time.Now().UnixNano(), 36) +
			"-" + strconv.Itoa(os.Getpid())
	}
	client := &collect.Client{
		Addr: opts.CollectorAddr,
		Run: collect.RunInfo{
			RunID:     runID,
			WorldSize: len(tracers),
			// A fresh epoch per run: the collector dedupes snapshots on
			// (run, rank, epoch), so a reused CollectorRunID must restart
			// the run under a new epoch — with a stale epoch every send
			// would ack as a duplicate of the previous run and WaitTrace
			// would silently hand back the previous run's trace.
			Epoch:      uint64(time.Now().UnixNano()),
			TimingMode: opts.TimingMode,
			TimingBase: opts.TimingBase,
		},
		// The run's flight recorder covers the networked path too: dial,
		// send, backoff, NACK, and wait spans land next to the finalize
		// stages on the same timeline.
		Obs: opts.ObsSink,
	}
	file, err := client.Collect(snaps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pilgrim: collector %s unreachable (%v); finalizing locally\n",
			opts.CollectorAddr, err)
		return core.FinalizeSnapshots(snaps, opts, nil)
	}
	var st FinalizeStats
	for _, s := range snaps {
		st.TotalCalls += s.Calls
		st.IntraNs += s.IntraNs
	}
	st.TraceBytes = file.SizeBytes()
	st.GlobalCST = file.CST.Len()
	st.UniqueCFGs = len(file.Grammars)
	return file, st
}

// SalvageFinalize performs the failure-path inter-process merge: it
// snapshots every tracer, merges the survivors' full call streams with
// the failed ranks' partial ones, and tags the trace with which ranks
// originated the failure (ranks that merely unwound with ErrRevoked
// are not listed as failed) and why. err is the error RunOpt returned.
func SalvageFinalize(tracers []*Tracer, err error) (*TraceFile, FinalizeStats) {
	failed := map[int]error{}
	for r, e := range mpi.FailedRanks(err) {
		// Revoked ranks were innocent bystanders torn down by the
		// runtime; only ranks that crashed/aborted/paniced are "failed".
		if !errors.Is(e, mpi.ErrRevoked) {
			failed[r] = e
		}
	}
	reason := ""
	if err != nil {
		reason, _, _ = strings.Cut(err.Error(), "\n")
	}
	return core.SalvageFinalize(tracers, failed, reason)
}

// VerifySalvaged checks a salvaged trace against the tracers: salvage
// info present, recorded call counts matching, and the decoded streams
// lossless up to each rank's failure point.
func VerifySalvaged(f *TraceFile, tracers []*Tracer) error {
	return core.VerifySalvaged(f, tracers)
}

// SalvageInfo tags a salvaged trace with the failure that ended the
// run; TraceFile.Salvage is non-nil exactly for salvaged traces.
type SalvageInfo = trace.SalvageInfo

// BindOOB attaches a rank's out-of-band collective interface (its
// *mpi.Proc) to a tracer built before the simulation started. RunSim
// does this automatically; callers wiring tracers manually must call
// it before any communicator-creating call is traced.
func BindOOB(t *Tracer, oob mpispec.OOB) { core.BindOOB(t, oob) }

// Finalize runs the inter-process compression over explicit tracers
// (for callers managing their own simulation).
func Finalize(tracers []*Tracer) (*TraceFile, FinalizeStats) {
	return core.Finalize(tracers)
}

// DecodeRank reconstructs one rank's call stream from a trace.
func DecodeRank(f *TraceFile, rank int) ([]DecodedCall, error) {
	return core.DecodeRank(f, rank)
}

// VerifyLossless checks that the trace decodes to exactly the streams
// the tracers saw (Options.Verify must have been set).
func VerifyLossless(f *TraceFile, tracers []*Tracer) error {
	return core.VerifyLossless(f, tracers)
}

// Load reads a trace file from disk.
func Load(path string) (*TraceFile, error) { return trace.Load(path) }

// Analysis holds every derived view of one trace: per-rank event
// timelines, the rank×rank communication matrix, the per-function
// time profile, matched point-to-point pairs with late-sender /
// late-receiver statistics, and exporters to Chrome trace-event JSON
// (Perfetto) and CSV. See internal/analysis for the semantics.
type Analysis = analysis.Analysis

// Analyze decodes a whole trace and computes every derived view
// (communication matrix, time profile, p2p matching, late statistics).
func Analyze(f *TraceFile) (*Analysis, error) { return analysis.Analyze(f) }

// MetricsCollector is a run-scoped metrics registry plus pre-registered
// instrument handles for the tracer, the simulated runtime, and the
// trace writer. Attach one via Options.Collector to observe a run; nil
// (the default) disables all instrumentation at a single pointer check
// per call.
type MetricsCollector = metrics.Collector

// MetricsReport is the final snapshot of every instrument, returned in
// FinalizeStats.Metrics and serialized by pilgrim-trace -metrics-json
// and pilgrim-bench -json.
type MetricsReport = metrics.Report

// NewMetricsCollector builds an empty collector. One collector may
// observe several runs in sequence (counters accumulate); gauges always
// reflect the latest run.
func NewMetricsCollector() *MetricsCollector { return metrics.NewCollector() }

// MetricsServer is a live observability endpoint: Prometheus text at
// /metrics, expvar JSON at /debug/vars, and net/http/pprof under
// /debug/pprof/.
type MetricsServer = metrics.Server

// ServeMetrics starts a MetricsServer on addr (use ":0" for an
// ephemeral port; Addr() reports the bound address). RunSim starts one
// automatically when Options.MetricsAddr is set.
func ServeMetrics(addr string, c *MetricsCollector) (*MetricsServer, error) {
	return metrics.Serve(addr, c)
}

// StartProgressReporter emits a one-line summary of c every interval
// until the returned stop func is called. RunSim starts one
// automatically when Options.ProgressEvery is set.
func StartProgressReporter(w io.Writer, c *MetricsCollector, every time.Duration) (stop func()) {
	return c.StartReporter(w, every)
}

// ObsSink is the pipeline flight recorder: a fixed-size ring buffer of
// typed span/instant events covering the tracer finalize stages and
// (when Options.CollectorAddr is set) the client's networked path.
// Attach one via Options.ObsSink; nil (the default) disables recording
// at one pointer check per instrumented site. Dump it with
// ObsSink.DumpFile — the output is Chrome trace-event JSON loadable in
// Perfetto.
type ObsSink = obs.Sink

// NewObsSink builds a flight recorder holding up to bufEvents events
// (<= 0 means the 4096-event default). Overflow drops oldest.
func NewObsSink(bufEvents int) *ObsSink { return obs.NewSink(bufEvents) }

// Version is the library version.
const Version = "1.0.0"
