package pilgrim_test

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// TestMetricsEndpointDuringRun boots a simulation with
// Options.MetricsAddr set and scrapes the Prometheus endpoint while
// ranks are still running: the response must carry counters from all
// three instrumented layers (tracer, mpi runtime, trace writer after
// finalize).
func TestMetricsEndpointDuringRun(t *testing.T) {
	addr := freeAddr(t)
	opts := pilgrim.Options{MetricsAddr: addr}

	type scrape struct {
		body string
		err  error
	}
	mid := make(chan scrape, 1)
	go func() {
		// Poll until the endpoint is up and the tracer has counted
		// calls — that is by construction mid-run.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			body, err := httpGet("http://" + addr + "/metrics")
			if err == nil && strings.Contains(body, "pilgrim_tracer_calls_total") &&
				!strings.Contains(body, "pilgrim_tracer_calls_total 0\n") {
				mid <- scrape{body: body}
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		mid <- scrape{err: io.EOF}
	}()

	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 3000})
	_, stats, err := pilgrim.RunSim(9, opts, mpi.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	s := <-mid
	if s.err != nil {
		t.Fatal("never scraped a live /metrics with nonzero tracer calls")
	}
	for _, family := range []string{
		"pilgrim_tracer_calls_total", // tracer layer
		"pilgrim_tracer_post_ns",     // tracer overhead histogram
		"pilgrim_mpi_messages_total", // runtime layer
		"pilgrim_tracer_cst_entries", // live probe gauge
	} {
		if !strings.Contains(s.body, family) {
			t.Errorf("mid-run scrape missing %s:\n%s", family, s.body[:min(len(s.body), 2000)])
		}
	}

	// The final report covers the writer layer too.
	if stats.Metrics == nil {
		t.Fatal("FinalizeStats.Metrics nil with MetricsAddr set")
	}
	if stats.Metrics.Counters["pilgrim_tracer_calls_total"] != stats.TotalCalls {
		t.Fatalf("metrics calls %d != stats calls %d",
			stats.Metrics.Counters["pilgrim_tracer_calls_total"], stats.TotalCalls)
	}
	if got := stats.Metrics.Gauges["pilgrim_trace_bytes"]; got != float64(stats.TraceBytes) {
		t.Fatalf("trace bytes gauge %v != stats %d", got, stats.TraceBytes)
	}
	if stats.Metrics.Gauges["pilgrim_trace_compression_ratio"] <= 1 {
		t.Fatalf("compression ratio %v, want > 1", stats.Metrics.Gauges["pilgrim_trace_compression_ratio"])
	}
	if mpiMsgs := sumPrefixed(stats.Metrics.Counters, "pilgrim_mpi_messages_total{"); mpiMsgs == 0 {
		t.Fatal("no per-rank mpi message counters in final report")
	}

	// The server must be gone after RunSim returns.
	if _, err := httpGet("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics server still up after RunSim returned")
	}
}

// TestRunSimNoMetricsByDefault pins the disabled default: no collector,
// no report.
func TestRunSimNoMetricsByDefault(t *testing.T) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 5})
	_, stats, err := pilgrim.Run(4, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Metrics != nil {
		t.Fatal("Metrics non-nil without a collector")
	}
}

// TestCollectorAcrossRuns reuses one collector for two runs: counters
// accumulate, probe gauges only reflect live tracers (zero after both
// runs detach their probes).
func TestCollectorAcrossRuns(t *testing.T) {
	col := pilgrim.NewMetricsCollector()
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 10})
	_, stats1, err := pilgrim.Run(4, pilgrim.Options{Collector: col}, body)
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := pilgrim.Run(4, pilgrim.Options{Collector: col}, body)
	if err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	want := stats1.TotalCalls + stats2.TotalCalls
	if got := rep.Counters["pilgrim_tracer_calls_total"]; got != want {
		t.Fatalf("accumulated calls = %d, want %d", got, want)
	}
	// Probes were removed on return; after the cache window the live
	// gauges must read zero, not the dead tracers' state.
	time.Sleep(25 * time.Millisecond)
	rep = col.Report()
	if got := rep.Gauges["pilgrim_tracer_cst_entries"]; got != 0 {
		t.Fatalf("live CST gauge = %v after runs finished", got)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func httpGet(url string) (string, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func sumPrefixed(m map[string]int64, prefix string) int64 {
	var n int64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			n += v
		}
	}
	return n
}
