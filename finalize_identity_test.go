package pilgrim_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/mpi"
)

// The parallel finalize pipeline must be byte-identical to sequential
// finalize for every worker count: the merge tree's shape is a pure
// function of the rank count, each pair merge is deterministic in its
// inputs, and every ordering-sensitive pass (grammar dedup, rank map)
// stays sequential. These tests pin that guarantee over the golden
// cases: odd and even rank counts, lossy timing, salvage finalize, and
// the collector's premerged path.

// identityBody is a small SPMD body exercising point-to-point (with
// rank-dependent peers, so grammars differ across ranks) plus a
// collective; it degrades gracefully to a single rank.
func identityBody(iters int) func(p *mpi.Proc) {
	return func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		n := p.Size()
		buf := p.Alloc(8)
		out := p.Alloc(8)
		for i := 0; i < iters; i++ {
			p.Compute(1000)
			if n > 1 {
				right := (p.Rank() + 1) % n
				left := (p.Rank() - 1 + n) % n
				p.Sendrecv(buf.Ptr(0), 1, mpi.Double, right, 7,
					out.Ptr(0), 1, mpi.Double, left, 7, w, nil)
			}
			p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, mpi.Double, mpi.OpSum, w)
		}
		buf.Free()
		out.Free()
		p.Finalize()
	}
}

// snapshotsFor runs identityBody on n ranks and snapshots every tracer
// exactly once, so repeated finalizes consume identical inputs.
func snapshotsFor(t *testing.T, n int, opts core.Options) []*core.Snapshot {
	t.Helper()
	tracers := make([]*core.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = core.NewTracer(i, nil, opts)
		ics[i] = tracers[i]
	}
	so := simOpts()
	so.Interceptors = ics
	if err := mpi.RunOpt(n, so, identityBody(6)); err != nil {
		t.Fatal(err)
	}
	snaps := make([]*core.Snapshot, n)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	return snaps
}

func traceBytes(t *testing.T, f *trace.File) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// workerSweep finalizes snaps with workers=1 and then with several
// parallel widths (including 0 = GOMAXPROCS), failing unless every
// trace is byte-identical to the sequential one.
func workerSweep(t *testing.T, snaps []*core.Snapshot, opts core.Options, info *trace.SalvageInfo) {
	t.Helper()
	opts.FinalizeWorkers = 1
	seq, _ := core.FinalizeSnapshots(snaps, opts, info)
	want := traceBytes(t, seq)
	for _, w := range []int{2, 3, 8, 0} {
		opts.FinalizeWorkers = w
		par, _ := core.FinalizeSnapshots(snaps, opts, info)
		if got := traceBytes(t, par); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: trace differs from sequential (%d vs %d bytes)", w, len(got), len(want))
		}
	}
}

func TestFinalizeWorkersByteIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, core.Options{})
			workerSweep(t, snaps, core.Options{}, nil)
		})
	}
}

func TestFinalizeWorkersByteIdenticalLossyTiming(t *testing.T) {
	opts := core.Options{TimingMode: trace.TimingLossy, TimingBase: 1.2}
	for _, n := range []int{2, 7, 16} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, opts)
			workerSweep(t, snaps, opts, nil)
		})
	}
}

func TestFinalizeWorkersByteIdenticalSalvage(t *testing.T) {
	const n = 7
	snaps := snapshotsFor(t, n, core.Options{})
	info := &trace.SalvageInfo{Reason: "identity test", FailedRanks: []int32{2, 5}, Calls: make([]int64, n)}
	for i, s := range snaps {
		info.Calls[i] = s.Calls
	}
	workerSweep(t, snaps, core.Options{}, info)
}

// TestFinalizePremergedWorkersByteIdentical covers the collector path:
// tables merged incrementally in an arbitrary arrival order must
// finalize (at any worker count) to the same bytes as a local
// sequential finalize of the same snapshots.
func TestFinalizePremergedWorkersByteIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, core.Options{})
			opts := core.Options{FinalizeWorkers: 1}
			seq, _ := core.FinalizeSnapshots(snaps, opts, nil)
			want := traceBytes(t, seq)

			// Feed the incremental merge out of rank order (a fixed
			// stride walks every rank for the sizes used here).
			inc := cst.NewIncremental(n)
			stride := 3
			if n%stride == 0 {
				stride = 1
			}
			for i := 0; i < n; i++ {
				r := (i * stride) % n
				if err := inc.Add(r, snaps[r].Table); err != nil {
					t.Fatal(err)
				}
			}
			merged := inc.Result()
			for _, w := range []int{1, 3, 0} {
				opts.FinalizeWorkers = w
				f, _ := core.FinalizePremerged(snaps, merged, 0, opts, nil)
				if got := traceBytes(t, f); !bytes.Equal(got, want) {
					t.Errorf("premerged workers=%d: trace differs from local sequential finalize", w)
				}
			}
		})
	}
}
