module github.com/hpcrepro/pilgrim

go 1.22
