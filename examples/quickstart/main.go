// Quickstart: trace a small MPI program with Pilgrim, inspect the
// compressed trace, and decode one rank's call stream.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	// The traced program: a 4-rank ring exchange with a reduction,
	// written against the simulated MPI runtime exactly like an MPI
	// program (compare the paper's Figure 1 snippet).
	program := func(p *mpi.Proc) {
		p.Init()
		world := p.World()
		n := p.CommSize(world)
		rank := p.CommRank(world)
		if rank == 0 {
			p.CommSetName(world, "my-comm")
		}

		buf := p.Alloc(8)
		sum := p.Alloc(8)
		right := (rank + 1) % n
		left := (rank - 1 + n) % n
		for i := 0; i < 10; i++ {
			p.Sendrecv(buf.Ptr(0), 1, mpi.Double, right, 999,
				sum.Ptr(0), 1, mpi.Double, left, 999, world, nil)
			p.Allreduce(buf.Ptr(0), sum.Ptr(0), 1, mpi.Double, mpi.OpSum, world)
		}
		buf.Free()
		sum.Free()
		p.Finalize()
	}

	// Run it with a tracer attached to every rank; finalize performs
	// the inter-process compression (CST merge + grammar dedup).
	file, stats, err := pilgrim.Run(4, pilgrim.Options{}, program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traced %d MPI calls from 4 ranks\n", stats.TotalCalls)
	fmt.Printf("compressed trace: %d bytes (%.2f bytes/call)\n",
		stats.TraceBytes, float64(stats.TraceBytes)/float64(stats.TotalCalls))
	fmt.Printf("unique call signatures: %d, unique grammars: %d\n\n",
		stats.GlobalCST, stats.UniqueCFGs)

	// Decode rank 1: lossless recovery of every call and parameter.
	calls, err := pilgrim.DecodeRank(file, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank 1's first six calls, decoded from the trace:")
	for i, c := range calls[:6] {
		fmt.Printf("  [%d] %s\n", i, c.Decoded)
	}
	fmt.Printf("  ... %d more\n", len(calls)-6)
}
