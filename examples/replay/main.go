// Replay demo: trace an application, re-execute the trace on a fresh
// simulated world (the paper's "mini-app generator" direction), trace
// the replay, and confirm the two traces decode identically — the
// strongest losslessness check in the repository.
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/replay"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	const procs = 16
	body := workloads.MILC(workloads.MILCConfig{Trajectories: 1})

	original, stats, err := pilgrim.Run(procs, pilgrim.Options{}, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original run: %d calls, trace %d bytes\n", stats.TotalCalls, original.SizeBytes())

	// Replay the trace on a fresh world, tracing the replay itself.
	replayed, rstats, err := pilgrim.RunSim(procs, pilgrim.Options{}, mpi.Options{}, replay.Body(original))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed run: %d calls, trace %d bytes\n", rstats.TotalCalls, replayed.SizeBytes())

	// Compare the decoded call streams of every rank.
	mismatches := 0
	for r := 0; r < procs; r++ {
		a, err := pilgrim.DecodeRank(original, r)
		if err != nil {
			log.Fatal(err)
		}
		b, err := pilgrim.DecodeRank(replayed, r)
		if err != nil {
			log.Fatal(err)
		}
		if len(a) != len(b) {
			log.Fatalf("rank %d: call counts differ (%d vs %d)", r, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				mismatches++
			}
		}
	}
	if mismatches == 0 {
		fmt.Println("verified: replayed trace is call-for-call identical to the original")
	} else {
		fmt.Printf("FAILED: %d mismatching calls\n", mismatches)
	}
}
