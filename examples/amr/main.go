// AMR demo: an adaptive-mesh workload (the FLASH Cellular skeleton)
// changes its communication pattern at every refinement epoch, so —
// unlike the regular stencil — its trace grows with iteration count.
// The Pilgrim trace still stays far smaller than the ScalaTrace-model
// baseline, and unlike the baseline it keeps every Waitall, request id
// and buffer identity (Figure 6e of the paper).
//
//	go run ./examples/amr
package main

import (
	"fmt"
	"log"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/scalatrace"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	const procs = 8
	fmt.Println("FLASH Cellular skeleton (PARAMESH AMR) on 8 ranks:")
	fmt.Printf("%8s %12s %16s %18s %8s\n", "iters", "MPI calls", "Pilgrim bytes", "ScalaTrace bytes", "ratio")
	for _, iters := range []int{50, 100, 200, 400} {
		body := workloads.Cellular(workloads.FlashConfig{Iters: iters})
		file, stats, err := pilgrim.Run(procs, pilgrim.Options{}, body)
		if err != nil {
			log.Fatal(err)
		}

		// Same run under the ScalaTrace-model baseline.
		tracers := make([]*scalatrace.Tracer, procs)
		ics := make([]mpi.Interceptor, procs)
		for i := range tracers {
			tracers[i] = scalatrace.NewTracer(i)
			ics[i] = tracers[i]
		}
		body2 := workloads.Cellular(workloads.FlashConfig{Iters: iters})
		if err := mpi.RunOpt(procs, mpi.Options{Interceptors: ics, Timeout: 2 * time.Minute}, body2); err != nil {
			log.Fatal(err)
		}
		st := scalatrace.Finalize(tracers)

		fmt.Printf("%8d %12d %16d %18d %7.1fx\n",
			iters, stats.TotalCalls, file.SizeBytes(), st.TraceBytes,
			float64(st.TraceBytes)/float64(file.SizeBytes()))
		_ = stats
	}
	fmt.Println("\nthe baseline also silently dropped every call outside its")
	fmt.Println("supported subset; Pilgrim recorded all of them.")
}
