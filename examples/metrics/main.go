// Self-observability demo: attach a metrics collector to a traced run,
// serve the live Prometheus/expvar/pprof endpoint on an ephemeral
// port, scrape it mid-run like a monitoring agent would, and print the
// final report the tracer returns at finalize.
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
)

func main() {
	col := pilgrim.NewMetricsCollector()
	srv, err := pilgrim.ServeMetrics("127.0.0.1:0", col)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("metrics endpoint: http://%s/metrics (plus /debug/vars, /debug/pprof/)\n", srv.Addr())

	// Run a stencil in the background with the collector attached.
	type result struct {
		stats pilgrim.FinalizeStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		body := workloads.Stencil2D(workloads.StencilConfig{Iters: 4000})
		_, stats, err := pilgrim.Run(16, pilgrim.Options{Collector: col}, body)
		done <- result{stats, err}
	}()

	// Scrape mid-run, once the tracer has seen some calls.
	var scrape string
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		s, err := get("http://" + srv.Addr() + "/metrics")
		if err == nil && strings.Contains(s, "pilgrim_tracer_calls_total") {
			scrape = s
			break
		}
	}
	fmt.Println("\nlive scrape (selected families):")
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "pilgrim_tracer_calls_total") ||
			strings.HasPrefix(line, "pilgrim_tracer_cst_entries") ||
			strings.HasPrefix(line, "pilgrim_tracer_grammar_rules") {
			fmt.Println(" ", line)
		}
	}

	r := <-done
	if r.err != nil {
		log.Fatal(r.err)
	}
	rep := r.stats.Metrics
	fmt.Println("\nfinal report:")
	fmt.Printf("  tracer calls: %d, CST hits: %d, misses: %d\n",
		rep.Counters["pilgrim_tracer_calls_total"],
		rep.Counters["pilgrim_tracer_cst_hits_total"],
		rep.Counters["pilgrim_tracer_cst_misses_total"])
	if h, ok := rep.Histograms["pilgrim_tracer_post_ns"]; ok {
		fmt.Printf("  per-call tracer overhead: mean %.0fns, p95 %.0fns\n", h.Mean, h.P95)
	}
	fmt.Printf("  trace bytes: %.0f, compression ratio: %.1fx\n",
		rep.Gauges["pilgrim_trace_bytes"], rep.Gauges["pilgrim_trace_compression_ratio"])
	fmt.Println("\nthe run self-observed its own tracer, runtime, and writer.")
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
