// Lossy timing demo (§3.2): with TimingLossy, Pilgrim keeps per-call
// durations and intervals in two extra Sequitur grammars, binned
// exponentially with base b — the recovered wall-clock times carry a
// relative error below b−1 (20% here), verified call by call.
//
//	go run ./examples/timing
package main

import (
	"fmt"
	"log"
	"math"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

func main() {
	const procs, base = 8, 1.2

	// Trace with verification enabled so the true timestamps are kept
	// for comparison.
	body := workloads.Stencil3D(workloads.StencilConfig{Iters: 20})
	tracers := make([]*pilgrim.Tracer, procs)
	ics := make([]mpi.Interceptor, procs)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{
			TimingMode: pilgrim.TimingLossy, TimingBase: base, Verify: true})
		ics[i] = tracers[i]
	}
	err := mpi.RunOpt(procs, mpi.Options{Interceptors: ics}, func(p *mpi.Proc) {
		pilgrim.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		log.Fatal(err)
	}
	file, stats := pilgrim.Finalize(tracers)

	cstB, cfgB, durB, intB := file.SectionSizes()
	fmt.Printf("traced %d calls; trace %d bytes\n", stats.TotalCalls, file.SizeBytes())
	fmt.Printf("sections: CST=%dB callGrammars=%dB durationGrammars=%dB intervalGrammars=%dB\n\n",
		cstB, cfgB, durB, intB)

	// Recover rank 3's timestamps and measure the worst relative error
	// against the true (captured) values.
	calls, err := pilgrim.DecodeRank(file, 3)
	if err != nil {
		log.Fatal(err)
	}
	truth := tracers[3].RawTimes()
	worstStart, worstDur := 0.0, 0.0
	for i, c := range calls {
		ts, te := truth[i][0], truth[i][1]
		if ts > 0 {
			worstStart = math.Max(worstStart, math.Abs(float64(c.TStart-ts))/float64(ts))
		}
		if d := te - ts; d > 0 {
			worstDur = math.Max(worstDur, math.Abs(float64((c.TEnd-c.TStart)-d))/float64(d))
		}
	}
	fmt.Printf("rank 3: %d calls recovered with timing\n", len(calls))
	fmt.Printf("worst relative error: start=%.3f duration=%.3f (bound: %.2f)\n",
		worstStart, worstDur, base-1)
	fmt.Println("\nfirst three recovered calls:")
	for i := 0; i < 3; i++ {
		c := calls[i]
		fmt.Printf("  t=[%d..%d]ns (true [%d..%d]) %s\n",
			c.TStart, c.TEnd, truth[i][0], truth[i][1], c.Func.Name())
	}
}
