// Stencil scaling demo (§4.1 of the paper): the compressed trace of a
// regular 2D stencil stays constant in size regardless of the number
// of iterations and of processes beyond 9 (all 4 corners, 4 sides and
// the interior have appeared on a 3×3 grid).
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
)

func main() {
	fmt.Println("2D 5-point stencil (non-periodic), varying process count:")
	fmt.Printf("%8s %12s %14s %16s\n", "procs", "MPI calls", "trace bytes", "unique grammars")
	for _, procs := range []int{4, 9, 16, 36, 64, 100} {
		body := workloads.Stencil2D(workloads.StencilConfig{Iters: 50})
		file, stats, err := pilgrim.Run(procs, pilgrim.Options{}, body)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %14d %16d\n", procs, stats.TotalCalls, file.SizeBytes(), stats.UniqueCFGs)
	}

	fmt.Println("\nsame stencil at 16 procs, varying iteration count:")
	fmt.Printf("%8s %12s %14s\n", "iters", "MPI calls", "trace bytes")
	for _, iters := range []int{10, 100, 1000, 10000} {
		body := workloads.Stencil2D(workloads.StencilConfig{Iters: iters})
		file, stats, err := pilgrim.Run(16, pilgrim.Options{}, body)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %14d\n", iters, stats.TotalCalls, file.SizeBytes())
	}
	fmt.Println("\nloops compress to run-length rules (A → Bᴺ), so only the")
	fmt.Println("iteration counters widen — by a logarithmic number of bits.")
}
