// Post-mortem analysis demo: trace a 16-rank 2D stencil, then turn
// the compressed trace back into insight — per-rank event timelines,
// the rank×rank communication matrix, a per-function time profile
// with load-imbalance factors, late-sender statistics over matched
// point-to-point pairs, a critical-path estimate, and a
// Perfetto-loadable Chrome trace-event JSON.
//
//	go run ./examples/analyze
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/workloads"
)

func main() {
	const procs = 16

	// Lossy timing mode keeps per-call wall-clock times (within the
	// configured error bound), which is what makes cross-rank views
	// like the critical path meaningful.
	file, stats, err := pilgrim.Run(procs,
		pilgrim.Options{TimingMode: pilgrim.TimingLossy, TimingBase: 1.2},
		workloads.Stencil2D(workloads.StencilConfig{Iters: 10, Points: 64}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d calls into %d bytes\n", stats.TotalCalls, file.SizeBytes())

	a, err := pilgrim.Analyze(file)
	if err != nil {
		log.Fatal(err)
	}

	events := 0
	for _, evs := range a.Events {
		events += len(evs)
	}
	fmt.Printf("decoded %d events across %d rank timelines\n", events, len(a.Events))
	fmt.Printf("p2p: %d sends, all matched to receives: %v\n",
		len(a.Sends), len(a.Matches) == len(a.Sends))
	fmt.Printf("traffic: %d messages, %d bytes\n", a.Matrix.TotalMsgs(), a.Matrix.TotalBytes())
	fmt.Printf("late senders: %d (receiver idle %dns total)\n",
		a.Late.LateSenders, a.Late.RecvWaitNs)

	fmt.Println("\ntop functions by total time:")
	for i, fp := range a.Profile.Funcs {
		if i == 3 {
			break
		}
		fmt.Printf("  %-18s %6d calls  imbalance %.2f\n", fp.Func.Name(), fp.Calls, fp.Imbalance)
	}

	path := a.CriticalPath()
	hops := 0
	for _, st := range path {
		if st.ViaMsg {
			hops++
		}
	}
	fmt.Printf("\ncritical path: %d steps, %d cross-rank message hops\n", len(path), hops)

	out := filepath.Join(os.TempDir(), "stencil.perfetto.json")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.WritePerfetto(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: one track per rank, %d flow events — load it in ui.perfetto.dev\n",
		out, len(a.Matches))
}
