package pilgrim_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main and checks for its
// success marker, so the documented entry points cannot rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "decoded from the trace"},
		{"stencil", "logarithmic number of bits"},
		{"amr", "Pilgrim recorded all of them"},
		{"timing", "bound: 0.20"},
		{"replay", "call-for-call identical"},
		{"metrics", "self-observed"},
		{"analyze", "flow events"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
