package mpi

import (
	"encoding/binary"
	"math"
)

// Reduction combine kernels. Lanes are chosen by the datatype's base
// kind: integer types reduce as int64 lanes of the type's size,
// floating types as float64/float32. dst = dst OP src, elementwise.

func lanes(dt *Datatype) (size int, float bool) {
	base := dt.baseKind()
	switch base {
	case baseFloat32:
		return 4, true
	case baseFloat64:
		return 8, true
	default:
		s := dt.laneSize()
		if s <= 0 {
			s = 1
		}
		return s, false
	}
}

func eachLane(dst, src []byte, dt *Datatype, intF func(a, b int64) int64, fF func(a, b float64) float64) {
	size, isFloat := lanes(dt)
	n := min(len(dst), len(src))
	for off := 0; off+size <= n; off += size {
		if isFloat {
			if size == 4 {
				a := math.Float32frombits(binary.LittleEndian.Uint32(dst[off:]))
				b := math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))
				binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(float32(fF(float64(a), float64(b)))))
			} else {
				a := math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
				b := math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
				binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(fF(a, b)))
			}
			continue
		}
		a := readInt(dst[off:], size)
		b := readInt(src[off:], size)
		writeInt(dst[off:], size, intF(a, b))
	}
}

func readInt(b []byte, size int) int64 {
	switch size {
	case 1:
		return int64(int8(b[0]))
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(b)))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(b)))
	default:
		return int64(binary.LittleEndian.Uint64(b))
	}
}

func writeInt(b []byte, size int, v int64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, uint64(v))
	}
}

func combineSum(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
}

func combineProd(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
}

func combineMax(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return max(a, b) }, math.Max)
}

func combineMin(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return min(a, b) }, math.Min)
}

func combineLand(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	}, func(a, b float64) float64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	})
}

func combineLor(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}, func(a, b float64) float64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	})
}

func combineBand(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return a & b }, func(a, b float64) float64 { return a })
}

func combineBor(dst, src []byte, dt *Datatype) {
	eachLane(dst, src, dt, func(a, b int64) int64 { return a | b }, func(a, b float64) float64 { return a })
}
