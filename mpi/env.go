package mpi

import (
	"fmt"
	"runtime"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

type funcIDT = mpispec.FuncID

func yield() { runtime.Gosched() }

// Init marks the process initialized (traced like MPI_Init).
func (p *Proc) Init() error {
	if p.initialized {
		return fmt.Errorf("mpi: rank %d double MPI_Init", p.rank)
	}
	p.icall(fInit, nil, func() {
		p.initialized = true
	})
	return nil
}

// Finalize marks the process finalized.
func (p *Proc) Finalize() error {
	if p.finalized {
		return fmt.Errorf("mpi: rank %d double MPI_Finalize", p.rank)
	}
	p.icall(fFinalize, nil, func() {
		p.finalized = true
	})
	return nil
}

// Initialized reports whether Init has been called.
func (p *Proc) Initialized() bool {
	args := []Value{vInt(0)}
	var flag bool
	p.icall(fInitialized, args, func() {
		flag = p.initialized
		args[0].I = b2i(flag)
	})
	return flag
}

// Finalized reports whether Finalize has been called.
func (p *Proc) Finalized() bool {
	args := []Value{vInt(0)}
	var flag bool
	p.icall(fFinalized, args, func() {
		flag = p.finalized
		args[0].I = b2i(flag)
	})
	return flag
}

// Abort terminates the whole simulated job, as MPI_Abort does: the
// world is revoked so every other rank unblocks promptly with an
// ErrRevoked-wrapped error, and this rank unwinds with an AbortError
// (Run returns both inside a *RunError).
func (p *Proc) Abort(c *Comm, errorcode int) {
	args := []Value{vComm(c), vInt(errorcode)}
	p.icall(fAbort, args, func() {})
	err := &AbortError{Rank: p.rank, Code: errorcode, Comm: c.name}
	p.world.revoke(err)
	panic(err)
}

// GetProcessorName returns a synthetic host name for the rank.
func (p *Proc) GetProcessorName() string {
	name := fmt.Sprintf("node%04d", p.rank/16) // 16 ranks per simulated node
	args := []Value{vString(""), vInt(0)}
	p.icall(fGetProcessorName, args, func() {
		args[0].S = name
		args[1].I = int64(len(name))
	})
	return name
}

// CommSize returns the size of the communicator (traced).
func (p *Proc) CommSize(c *Comm) int {
	args := []Value{vComm(c), vInt(0)}
	var n int
	p.icall(fCommSize, args, func() {
		n = len(c.group)
		args[1].I = int64(n)
	})
	return n
}

// CommRank returns the calling process's rank in the communicator.
func (p *Proc) CommRank(c *Comm) int {
	args := []Value{vComm(c), vRank(0)}
	var r int
	p.icall(fCommRank, args, func() {
		r = c.myRank
		args[1].I = int64(r)
	})
	return r
}

// --- Persistent requests ----------------------------------------------------

func (p *Proc) persistInitCommon(id funcIDT, buf Ptr, count int, dt *Datatype, peer, tag int, c *Comm, isRecv, syncMode bool) (*Request, error) {
	if err := dt.checkUsable(); err != nil {
		return nil, err
	}
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	kind := rkPersistSend
	if isRecv {
		kind = rkPersistRecv
	}
	req := p.newRequest(kind)
	req.persistent = true
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(peer), vTag(tag), vComm(c), vReq(req)}
	p.icall(id, args, func() {
		req.restart = func(r *Request) {
			if peer == ProcNull {
				r.complete(Status{Source: ProcNull, Tag: AnyTag}, p.clock.Load())
				return
			}
			if isRecv {
				r.target = recvTarget(c, peer, tag)
				nbytes := count * dt.size
				dst := buf.data
				if len(dst) > nbytes {
					dst = dst[:nbytes]
				}
				rp := &recvPost{srcSel: peer, tagSel: tag, buf: dst, req: r}
				r.post = rp
				p.world.postRecv(c.ctx, p.rank, rp)
				return
			}
			destWorld, err := c.resolveDest(peer)
			if err != nil {
				r.complete(Status{Source: Undefined, Tag: Undefined, Error: 1}, p.clock.Load())
				return
			}
			nbytes := count * dt.size
			data := make([]byte, nbytes)
			copy(data, buf.data)
			e := &envelope{src: c.senderRankFor(), tag: tag, data: data, sentAt: p.clock.Load()}
			if syncMode {
				e.sreq = r
				r.target = sendTarget(c, destWorld, peer, tag)
				p.postEnvelope(c.ctx, destWorld, e)
			} else {
				p.postEnvelope(c.ctx, destWorld, e)
				r.complete(Status{Source: c.myRank, Tag: tag, Count: nbytes}, p.clock.Load())
			}
		}
	})
	return req, nil
}

// SendInit creates a persistent standard-mode send request.
func (p *Proc) SendInit(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.persistInitCommon(fSendInit, buf, count, dt, dest, tag, c, false, false)
}

// BsendInit creates a persistent buffered send request.
func (p *Proc) BsendInit(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.persistInitCommon(fBsendInit, buf, count, dt, dest, tag, c, false, false)
}

// SsendInit creates a persistent synchronous send request.
func (p *Proc) SsendInit(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.persistInitCommon(fSsendInit, buf, count, dt, dest, tag, c, false, true)
}

// RsendInit creates a persistent ready send request.
func (p *Proc) RsendInit(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.persistInitCommon(fRsendInit, buf, count, dt, dest, tag, c, false, false)
}

// RecvInit creates a persistent receive request.
func (p *Proc) RecvInit(buf Ptr, count int, dt *Datatype, source, tag int, c *Comm) (*Request, error) {
	return p.persistInitCommon(fRecvInit, buf, count, dt, source, tag, c, true, false)
}

// Start activates a persistent request.
func (p *Proc) Start(r *Request) error {
	if r == nil || !r.persistent || r.restart == nil {
		return fmt.Errorf("mpi: Start on non-persistent request")
	}
	args := []Value{vReq(r)}
	p.icall(fStart, args, func() {
		p.mu.Lock()
		r.active = true
		p.mu.Unlock()
		r.restart(r)
	})
	return nil
}

// Startall activates a set of persistent requests.
func (p *Proc) Startall(rs []*Request) error {
	for _, r := range rs {
		if r == nil || !r.persistent || r.restart == nil {
			return fmt.Errorf("mpi: Startall on non-persistent request")
		}
	}
	args := []Value{vInt(len(rs)), vReqArray(rs)}
	p.icall(fStartall, args, func() {
		for _, r := range rs {
			p.mu.Lock()
			r.active = true
			p.mu.Unlock()
			r.restart(r)
		}
	})
	return nil
}

// GetCount returns the number of dt elements described by a status.
func (p *Proc) GetCount(st Status, dt *Datatype) int {
	args := []Value{{Kind: mpispec.KStatus, Arr: []int64{int64(st.Source), int64(st.Tag)}}, vType(dt), vInt(0)}
	var n int
	p.icall(fGetCount, args, func() {
		if dt.size > 0 {
			n = st.Count / dt.size
		}
		args[2].I = int64(n)
	})
	return n
}

// GetElements returns the number of primitive elements in a status.
func (p *Proc) GetElements(st Status, dt *Datatype) int {
	args := []Value{{Kind: mpispec.KStatus, Arr: []int64{int64(st.Source), int64(st.Tag)}}, vType(dt), vInt(0)}
	var n int
	p.icall(fGetElements, args, func() {
		if dt.lane > 0 {
			n = st.Count / dt.lane
		}
		args[2].I = int64(n)
	})
	return n
}
