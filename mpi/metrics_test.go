package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hpcrepro/pilgrim/internal/metrics"
)

// TestRunMetricsCounters checks the per-rank message/byte/collective
// counters against a run with a known traffic pattern.
func TestRunMetricsCounters(t *testing.T) {
	col := metrics.NewCollector()
	const n = 4
	const iters = 10
	err := RunOpt(n, Options{Metrics: col}, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		out := p.Alloc(8)
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		for i := 0; i < iters; i++ {
			p.Sendrecv(buf.Ptr(0), 1, Double, right, 7,
				out.Ptr(0), 1, Double, left, 7, w, nil)
			p.Barrier(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	// Each rank posts one 8-byte message per iteration.
	wantMsgs := int64(n * iters)
	if got := rep.Counters[fmt.Sprintf("pilgrim_mpi_messages_total{rank=%q}", "0")]; got != iters {
		t.Fatalf("rank 0 messages = %d, want %d", got, iters)
	}
	if got := col.MsgsSent.Sum(); got != wantMsgs {
		t.Fatalf("total messages = %d, want %d", got, wantMsgs)
	}
	if got := col.BytesSent.Sum(); got != wantMsgs*8 {
		t.Fatalf("total bytes = %d, want %d", got, wantMsgs*8)
	}
	// One Barrier per iteration per rank.
	if got := col.Collectives.Sum(); got != int64(n*iters) {
		t.Fatalf("collectives = %d, want %d", got, n*iters)
	}
	// Blocked-time histogram saw at least the barrier rendezvous.
	if s := col.BlockedNs.Snapshot(); s.Count == 0 {
		t.Fatal("blocked-time histogram empty")
	}
	// No failures in a clean run.
	if got := col.RankFailures.Sum(); got != 0 {
		t.Fatalf("rank failures = %d in a clean run", got)
	}
}

// TestFaultAndFailureMetrics checks fault-event counting and the
// failure classification fed through *RunError's error tree.
func TestFaultAndFailureMetrics(t *testing.T) {
	col := metrics.NewCollector()
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultCrash, Rank: 1, AtCall: 5}}}
	err := RunOpt(4, Options{Timeout: 30 * time.Second, FaultPlan: plan, Metrics: col}, ringBody(100))
	if err == nil {
		t.Fatal("expected run error")
	}
	rep := col.Report()
	if got := rep.Counters[`pilgrim_mpi_fault_events_total{kind="crash"}`]; got != 1 {
		t.Fatalf("crash fault events = %d, want 1", got)
	}
	if got := rep.Counters[`pilgrim_mpi_rank_failures_total{kind="crash"}`]; got != 1 {
		t.Fatalf("crash failures = %d, want 1", got)
	}
	// The other three ranks unwound with ErrRevoked.
	if got := rep.Counters[`pilgrim_mpi_rank_failures_total{kind="revoked"}`]; got != 3 {
		t.Fatalf("revoked failures = %d, want 3", got)
	}
}

// TestDeadlockMetric checks the watchdog counter.
func TestDeadlockMetric(t *testing.T) {
	col := metrics.NewCollector()
	err := RunOpt(2, Options{Timeout: 30 * time.Second, Metrics: col}, func(p *Proc) {
		// Both ranks receive first: classic cycle.
		buf := p.Alloc(8)
		p.Recv(buf.Ptr(0), 1, Double, 1-p.Rank(), 0, p.World(), nil)
	})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	if got := col.Deadlocks.Load(); got != 1 {
		t.Fatalf("deadlocks = %d, want 1", got)
	}
	if got := col.RankFailures.Sum(); got != 2 {
		t.Fatalf("rank failures = %d, want 2 (both revoked)", got)
	}
}

// TestRunErrorUnwrapTree pins the errors.Is/As contract of *RunError:
// Unwrap() []error exposes the cause and every rank error, which is
// exactly what the metrics failure classifier traverses.
func TestRunErrorUnwrapTree(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultCrash, Rank: 0, AtCall: 3}}}
	err := RunOpt(3, Options{Timeout: 30 * time.Second, FaultPlan: plan}, ringBody(50))
	if err == nil {
		t.Fatal("expected run error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("not a *RunError: %v", err)
	}
	// errors.As finds the CrashError through the multi-error tree.
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 0 {
		t.Fatalf("errors.As(CrashError) = %v via %v", ce, err)
	}
	// errors.Is finds ErrRevoked (the bystander ranks' unwind).
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("errors.Is(ErrRevoked) false for %v", err)
	}
	// Unwrap returns cause first, then the remaining rank errors.
	unwrapped := re.Unwrap()
	if len(unwrapped) == 0 || unwrapped[0] != re.Cause {
		t.Fatalf("Unwrap()[0] != Cause: %v", unwrapped)
	}
	seen := 0
	for _, e := range unwrapped {
		if errors.Is(e, ErrRevoked) {
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("revoked errors in Unwrap = %d, want 2", seen)
	}
	// And the classifier agrees with the tree.
	if k := classifyRankError(re.Ranks[0]); k != "crash" {
		t.Fatalf("classify(rank0) = %q", k)
	}
	for _, r := range []int{1, 2} {
		if k := classifyRankError(re.Ranks[r]); k != "revoked" {
			t.Fatalf("classify(rank%d) = %q", r, k)
		}
	}
}

// TestClassifyRankError covers the classifier's non-run branches.
func TestClassifyRankError(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{fmt.Errorf("wrap: %w", ErrRevoked), "revoked"},
		{&CrashError{Rank: 1}, "crash"},
		{&AbortError{Rank: 1}, "abort"},
		{&PanicError{Rank: 1}, "panic"},
		{errors.New("mystery"), "other"},
	}
	for _, c := range cases {
		if got := classifyRankError(c.err); got != c.want {
			t.Errorf("classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestMetricsDisabledNilSafe runs the same traffic with no collector:
// every hook must be a nil check, not a panic.
func TestMetricsDisabledNilSafe(t *testing.T) {
	if err := RunOpt(2, Options{}, ringBody(5)); err != nil {
		t.Fatal(err)
	}
}
