package mpi

import "fmt"

// GroupSize returns the number of ranks in the group.
func (p *Proc) GroupSize(g *Group) int {
	var n int
	args := []Value{vGroup(g), vInt(0)}
	p.icall(fGroupSize, args, func() {
		n = len(g.ranks)
		args[1].I = int64(n)
	})
	return n
}

// GroupRank returns the calling process's rank in the group, or
// Undefined if it is not a member.
func (p *Proc) GroupRank(g *Group) int {
	r := Undefined
	args := []Value{vGroup(g), vRank(0)}
	p.icall(fGroupRank, args, func() {
		for i, wr := range g.ranks {
			if wr == p.rank {
				r = i
				break
			}
		}
		args[1].I = int64(r)
	})
	return r
}

// GroupIncl builds a new group containing ranks[i] of g, in order.
func (p *Proc) GroupIncl(g *Group, ranks []int) (*Group, error) {
	for _, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, fmt.Errorf("mpi: GroupIncl rank %d out of range", r)
		}
	}
	var ng *Group
	args := []Value{vGroup(g), vInt(len(ranks)), vIntArray(ranks), vGroup(nil)}
	p.icall(fGroupIncl, args, func() {
		nr := make([]int, len(ranks))
		for i, r := range ranks {
			nr[i] = g.ranks[r]
		}
		ng = &Group{handle: p.newHandle(), ranks: nr}
		args[3] = vGroup(ng)
	})
	return ng, nil
}

// GroupExcl builds a new group with ranks removed, preserving order.
func (p *Proc) GroupExcl(g *Group, ranks []int) (*Group, error) {
	excl := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, fmt.Errorf("mpi: GroupExcl rank %d out of range", r)
		}
		excl[r] = true
	}
	var ng *Group
	args := []Value{vGroup(g), vInt(len(ranks)), vIntArray(ranks), vGroup(nil)}
	p.icall(fGroupExcl, args, func() {
		var nr []int
		for i, wr := range g.ranks {
			if !excl[i] {
				nr = append(nr, wr)
			}
		}
		ng = &Group{handle: p.newHandle(), ranks: nr}
		args[3] = vGroup(ng)
	})
	return ng, nil
}

// GroupFree releases a group.
func (p *Proc) GroupFree(g *Group) error {
	if g == nil || g.freed {
		return fmt.Errorf("mpi: GroupFree on invalid group")
	}
	args := []Value{vGroup(g)}
	p.icall(fGroupFree, args, func() {
		g.freed = true
	})
	return nil
}

// GroupTranslateRanks maps ranks of g1 to the corresponding ranks in
// g2 (Undefined where absent).
func (p *Proc) GroupTranslateRanks(g1 *Group, ranks1 []int, g2 *Group) ([]int, error) {
	out := make([]int, len(ranks1))
	args := []Value{vGroup(g1), vInt(len(ranks1)), vIntArray(ranks1), vGroup(g2), vIntArray(nil)}
	p.icall(fGroupTranslateRanks, args, func() {
		pos := map[int]int{}
		for i, wr := range g2.ranks {
			pos[wr] = i
		}
		for i, r1 := range ranks1 {
			out[i] = Undefined
			if r1 >= 0 && r1 < len(g1.ranks) {
				if r2, ok := pos[g1.ranks[r1]]; ok {
					out[i] = r2
				}
			}
		}
		args[4] = vIntArray(out)
	})
	return out, nil
}

// GroupUnion returns the union of two groups (g1's order first).
func (p *Proc) GroupUnion(g1, g2 *Group) (*Group, error) {
	var ng *Group
	args := []Value{vGroup(g1), vGroup(g2), vGroup(nil)}
	p.icall(fGroupUnion, args, func() {
		seen := map[int]bool{}
		var nr []int
		for _, r := range g1.ranks {
			if !seen[r] {
				seen[r] = true
				nr = append(nr, r)
			}
		}
		for _, r := range g2.ranks {
			if !seen[r] {
				seen[r] = true
				nr = append(nr, r)
			}
		}
		ng = &Group{handle: p.newHandle(), ranks: nr}
		args[2] = vGroup(ng)
	})
	return ng, nil
}

// GroupIntersection returns the ranks present in both groups, in g1
// order.
func (p *Proc) GroupIntersection(g1, g2 *Group) (*Group, error) {
	var ng *Group
	args := []Value{vGroup(g1), vGroup(g2), vGroup(nil)}
	p.icall(fGroupIntersection, args, func() {
		in2 := map[int]bool{}
		for _, r := range g2.ranks {
			in2[r] = true
		}
		var nr []int
		for _, r := range g1.ranks {
			if in2[r] {
				nr = append(nr, r)
			}
		}
		ng = &Group{handle: p.newHandle(), ranks: nr}
		args[2] = vGroup(ng)
	})
	return ng, nil
}

// GroupDifference returns the ranks of g1 not in g2, in g1 order.
func (p *Proc) GroupDifference(g1, g2 *Group) (*Group, error) {
	var ng *Group
	args := []Value{vGroup(g1), vGroup(g2), vGroup(nil)}
	p.icall(fGroupDifference, args, func() {
		in2 := map[int]bool{}
		for _, r := range g2.ranks {
			in2[r] = true
		}
		var nr []int
		for _, r := range g1.ranks {
			if !in2[r] {
				nr = append(nr, r)
			}
		}
		ng = &Group{handle: p.newHandle(), ranks: nr}
		args[2] = vGroup(ng)
	})
	return ng, nil
}
